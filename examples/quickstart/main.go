// Quickstart: the smallest end-to-end CCA run.
//
// Three coffee kiosks with limited staff must serve twelve office
// workers; each worker goes to exactly one kiosk, each kiosk serves at
// most its capacity, and we want to minimize the total walking distance.
// This is the capacity constrained assignment problem on a napkin.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	cca "repro"
)

func main() {
	// The customer set P: twelve office workers.
	workers := []cca.Point{
		{X: 1, Y: 1}, {X: 2, Y: 1}, {X: 1, Y: 2}, {X: 2.5, Y: 2.5},
		{X: 8, Y: 1}, {X: 9, Y: 2}, {X: 8.5, Y: 3}, {X: 9.5, Y: 1.5},
		{X: 4, Y: 8}, {X: 5, Y: 9}, {X: 6, Y: 8.5}, {X: 5.5, Y: 7.5},
	}
	customers, err := cca.IndexCustomers(workers)
	if err != nil {
		log.Fatal(err)
	}
	defer customers.Close()

	// The provider set Q: three kiosks with capacities 3, 5, 4.
	kiosks := []cca.Provider{
		{Pt: cca.Point{X: 2, Y: 2}, Cap: 3},
		{Pt: cca.Point{X: 8, Y: 2}, Cap: 5},
		{Pt: cca.Point{X: 5, Y: 8}, Cap: 4},
	}

	// Exact optimal assignment (IDA under the hood).
	result, err := cca.Assign(kiosks, customers, nil)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("assigned %d workers, total walking distance %.2f\n\n",
		result.Size, result.Cost)
	perKiosk := map[int][]int64{}
	for _, pair := range result.Pairs {
		perKiosk[pair.Provider] = append(perKiosk[pair.Provider], pair.CustomerID)
	}
	for qi, kiosk := range kiosks {
		fmt.Printf("kiosk %d at (%.0f,%.0f), capacity %d, serves workers %v\n",
			qi, kiosk.Pt.X, kiosk.Pt.Y, kiosk.Cap, perKiosk[qi])
	}

	// Sanity: the library can check the matching for you.
	if err := cca.Validate(kiosks, customers, result); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nmatching validated: capacities respected, size = min(|P|, Σk)")
}
