// Schools: district assignment with an approximation trade-off (§1, §4).
//
// A municipality assigns 20 000 children to 30 schools with individual
// seat counts, minimizing summed travel distance. At this size the exact
// solver still runs, but the CA approximation answers much faster with a
// provable error bound (Theorem 4: Ψ(M) ≤ Ψ(optimal) + γ·δ) — the
// trade-off a planning department would actually use.
//
// Run with: go run ./examples/schools
package main

import (
	"fmt"
	"log"
	"time"

	cca "repro"
	"repro/internal/datagen"
)

func main() {
	space := cca.Rect{Min: cca.Point{X: 0, Y: 0}, Max: cca.Point{X: 1000, Y: 1000}}
	net := datagen.NewNetwork(32, space, 7)

	children := net.Points(datagen.Config{N: 20000, Dist: datagen.Clustered, Seed: 8})
	customers, err := cca.IndexCustomers(children)
	if err != nil {
		log.Fatal(err)
	}
	defer customers.Close()

	// 30 schools with mixed seat counts (400–900 seats).
	schoolPts := net.Points(datagen.Config{N: 30, Dist: datagen.Clustered, Seed: 9})
	seatCounts := datagen.Capacities(30, 400, 900, 10)
	schools := make([]cca.Provider, 30)
	totalSeats := 0
	for i := range schools {
		schools[i] = cca.Provider{Pt: schoolPts[i], Cap: seatCounts[i]}
		totalSeats += seatCounts[i]
	}
	fmt.Printf("20000 children, 30 schools, %d seats total\n\n", totalSeats)

	// Approximate assignment first: CA with the paper's tuned δ=10.
	caStart := time.Now()
	approxRes, err := cca.AssignApproxCA(schools, customers, cca.ApproxOptions{Delta: 10})
	if err != nil {
		log.Fatal(err)
	}
	caTime := time.Since(caStart)
	fmt.Printf("CA (δ=10):  cost %.0f in %v (%d groups, bound: ≤ optimal + %.0f)\n",
		approxRes.Cost, caTime.Round(time.Millisecond), approxRes.Groups, approxRes.ErrorBound)

	// Exact assignment for comparison.
	exactStart := time.Now()
	exact, err := cca.Assign(schools, customers, nil)
	if err != nil {
		log.Fatal(err)
	}
	exactTime := time.Since(exactStart)
	fmt.Printf("IDA exact:  cost %.0f in %v\n", exact.Cost, exactTime.Round(time.Millisecond))

	fmt.Printf("\nmeasured quality Ψ(CA)/Ψ(opt) = %.4f (Theorem 4 guarantees ≤ %.4f)\n",
		approxRes.Cost/exact.Cost, (exact.Cost+approxRes.ErrorBound)/exact.Cost)
	fmt.Printf("speedup: %.1fx\n", float64(exactTime)/float64(caTime))

	// Average walk per child under the exact assignment.
	fmt.Printf("average distance per assigned child: %.1f units (exact), %.1f (CA)\n",
		exact.Cost/float64(exact.Size), approxRes.Cost/float64(approxRes.Size))
}
