// WiFi: the paper's motivating scenario (§1).
//
// A campus operator deploys wireless access points, each able to serve a
// bounded number of receivers. Receivers cluster in buildings; the naive
// "connect to the nearest AP" policy (the Voronoi assignment of Figure 1)
// overloads the APs near dense buildings. This example:
//
//  1. generates a clustered workload of receivers on a synthetic road
//     network (the paper's §5.1 recipe),
//  2. compares the nearest-AP greedy matching with the optimal CCA
//     matching, and
//  3. reports the total and worst-case receiver-to-AP distances.
//
// Run with: go run ./examples/wifi
package main

import (
	"fmt"
	"log"
	"time"

	cca "repro"
	"repro/internal/datagen"
)

func main() {
	space := cca.Rect{Min: cca.Point{X: 0, Y: 0}, Max: cca.Point{X: 1000, Y: 1000}}
	net := datagen.NewNetwork(24, space, 42)

	// 2000 receivers, 80% clustered in 10 buildings.
	receiverPts := net.Points(datagen.Config{N: 2000, Dist: datagen.Clustered, Seed: 1})
	customers, err := cca.IndexCustomers(receiverPts)
	if err != nil {
		log.Fatal(err)
	}
	defer customers.Close()

	// 25 access points spread uniformly over the campus, 80 clients each
	// (2000 slots for 2000 receivers: everything must connect somewhere).
	apPts := net.Points(datagen.Config{N: 25, Dist: datagen.Uniform, Seed: 2})
	aps := make([]cca.Provider, len(apPts))
	for i, pt := range apPts {
		aps[i] = cca.Provider{Pt: pt, Cap: 80}
	}

	greedyStart := time.Now()
	greedy, err := cca.GreedyAssign(aps, customers, nil)
	if err != nil {
		log.Fatal(err)
	}
	greedyTime := time.Since(greedyStart)

	optStart := time.Now()
	optimal, err := cca.Assign(aps, customers, nil)
	if err != nil {
		log.Fatal(err)
	}
	optTime := time.Since(optStart)

	fmt.Println("wifi capacity-constrained association, 2000 receivers, 25 APs × 80 slots")
	fmt.Printf("%-22s %12s %12s %10s\n", "", "total dist", "worst dist", "cpu")
	fmt.Printf("%-22s %12.1f %12.1f %10v\n", "greedy (SM join)",
		greedy.Cost, worst(greedy), greedyTime.Round(time.Millisecond))
	fmt.Printf("%-22s %12.1f %12.1f %10v\n", "optimal CCA (IDA)",
		optimal.Cost, worst(optimal), optTime.Round(time.Millisecond))
	fmt.Printf("\noptimal matching saves %.1f%% total distance over greedy\n",
		100*(greedy.Cost-optimal.Cost)/greedy.Cost)

	// Per-AP load (both matchings respect the 80-client capacity).
	over := 0
	load := make([]int, len(aps))
	for _, p := range optimal.Pairs {
		load[p.Provider]++
	}
	for _, l := range load {
		if l > 80 {
			over++
		}
	}
	fmt.Printf("APs over capacity under CCA: %d (guaranteed 0)\n", over)
}

func worst(r *cca.Result) float64 {
	w := 0.0
	for _, p := range r.Pairs {
		if p.Dist > w {
			w = p.Dist
		}
	}
	return w
}
