// Clinics: disk-resident data and I/O accounting (§1, §5).
//
// A health authority assigns residents to public clinics with fixed
// intake capacities. The resident registry is large and lives on disk:
// this example persists the R-tree to a page file, reopens it with the
// paper's buffer configuration (1 KB pages, LRU buffer = 1% of the
// tree), and reports the page faults and simulated I/O time (10 ms per
// fault) alongside the assignment — the full disk-based setting the
// paper evaluates.
//
// Run with: go run ./examples/clinics
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	cca "repro"
	"repro/internal/datagen"
)

func main() {
	space := cca.Rect{Min: cca.Point{X: 0, Y: 0}, Max: cca.Point{X: 1000, Y: 1000}}
	net := datagen.NewNetwork(32, space, 11)

	dir, err := os.MkdirTemp("", "cca-clinics")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	dbPath := filepath.Join(dir, "residents.db")

	// Build the registry once and persist it.
	residents := net.Points(datagen.Config{N: 20000, Dist: datagen.Clustered, Seed: 12})
	built, err := cca.IndexCustomersConfig(residents, cca.IndexConfig{Path: dbPath})
	if err != nil {
		log.Fatal(err)
	}
	pages := built.Tree().PageCount()
	if err := built.Close(); err != nil {
		log.Fatal(err)
	}
	fi, _ := os.Stat(dbPath)
	fmt.Printf("resident registry: 20000 points, %d pages (%d KB on disk at %s)\n",
		pages, fi.Size()/1024, dbPath)

	// Reopen cold, with the paper's 1% LRU buffer.
	registry, err := cca.OpenCustomers(dbPath, cca.IndexConfig{})
	if err != nil {
		log.Fatal(err)
	}
	defer registry.Close()

	// 40 clinics, mixed intake capacities 300–650.
	clinicPts := net.Points(datagen.Config{N: 40, Dist: datagen.Uniform, Seed: 13})
	intakes := datagen.Capacities(40, 300, 650, 14)
	clinics := make([]cca.Provider, 40)
	for i := range clinics {
		clinics[i] = cca.Provider{Pt: clinicPts[i], Cap: intakes[i]}
	}

	registry.ResetIOStats()
	start := time.Now()
	res, err := cca.Assign(clinics, registry, nil)
	if err != nil {
		log.Fatal(err)
	}
	cpu := time.Since(start)

	io := registry.IOStats()
	fmt.Printf("\nassigned %d residents, total distance %.0f\n", res.Size, res.Cost)
	fmt.Printf("subgraph explored: %d of %d possible edges (%.2f%%)\n",
		res.Metrics.SubgraphEdges, res.Metrics.FullGraphEdges,
		100*float64(res.Metrics.SubgraphEdges)/float64(res.Metrics.FullGraphEdges))
	fmt.Printf("CPU time: %v\n", cpu.Round(time.Millisecond))
	fmt.Printf("I/O: %d logical reads, %d faults, %d hits (%.1f%% hit rate)\n",
		io.LogicalReads(), io.Faults, io.Hits,
		100*float64(io.Hits)/float64(io.LogicalReads()))
	fmt.Printf("simulated I/O time at 10ms/fault: %v\n", io.IOTime())

	// Unserved residents (capacity shortfall) are simply unassigned —
	// CCA maximizes the matching size first.
	total := 0
	for _, c := range clinics {
		total += c.Cap
	}
	if res.Size < registry.Len() {
		fmt.Printf("\n%d residents unassigned (capacity %d < %d residents)\n",
			registry.Len()-res.Size, total, registry.Len())
	}
}
