package cca

import (
	"fmt"
	"runtime"
	"sync"
	"time"
)

// Instance is one independent CCA scenario in a batch: a provider set,
// a customer dataset, and the solver to run. Several instances may
// reference the same *Customers — the engine gives every in-flight
// solve its own cold handle (Customers.Clone), so LRU buffers and I/O
// counters never race and results do not depend on scheduling order.
type Instance struct {
	// Label identifies the instance in results (optional).
	Label string
	// Providers is the capacitated provider set Q.
	Providers []Provider
	// Customers is the indexed customer set P.
	Customers *Customers
	// Solver is the registry name to run ("" selects "ida").
	Solver string
	// Options tunes the solve; the zero value is the paper's defaults.
	Options SolverOptions
}

// InstanceResult is one instance's outcome within a batch.
type InstanceResult struct {
	// Index is the instance's position in the submitted batch.
	Index int
	// Label echoes Instance.Label.
	Label string
	// Solver is the canonical name of the solver that ran (the
	// requested name when Err is set before a solver ran).
	Solver string
	// Result is the matching (nil when Err is set).
	Result *SolverResult
	// Err is the instance's failure, if any; other instances still run.
	Err error
	// Wall is this instance's own solve time.
	Wall time.Duration
}

// FleetMetrics aggregates a batch run.
type FleetMetrics struct {
	Instances int           // instances submitted
	Solved    int           // instances that produced a matching
	Errors    int           // instances that failed
	Workers   int           // worker-pool size used
	Wall      time.Duration // batch wall-clock time
	SolveWall time.Duration // Σ per-instance wall time (≥ Wall when parallel)
	CPUTime   time.Duration // Σ solver-reported CPU time
	IOTime    time.Duration // Σ simulated I/O time (10 ms per fault)
	Faults    int           // Σ page faults
	Pairs     int           // Σ matching sizes
	Cost      float64       // Σ matching costs Ψ(M)
}

// BatchResult is the outcome of Engine.Run: per-instance results in
// submission order plus fleet-level aggregates.
type BatchResult struct {
	Results []InstanceResult
	Fleet   FleetMetrics
}

// Engine executes batches of independent CCA instances across a bounded
// worker pool. The zero value is ready to use:
//
//	var engine cca.Engine
//	batch, err := engine.Run(instances)
//
// Per-instance results are byte-identical to running the instances
// sequentially (every solve starts on a fresh cold buffer handle), so
// Workers only changes wall-clock time, never answers.
type Engine struct {
	// Workers bounds the number of concurrent solves; values < 1 select
	// runtime.GOMAXPROCS(0).
	Workers int
	// DefaultSolver is used by instances with an empty Solver field
	// ("" selects "ida").
	DefaultSolver string
}

// workers returns the effective pool size for n instances.
func (e *Engine) workers(n int) int {
	w := e.Workers
	if w < 1 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// solverFor resolves an instance's solver name.
func (e *Engine) solverFor(in Instance) string {
	if in.Solver != "" {
		return in.Solver
	}
	if e.DefaultSolver != "" {
		return e.DefaultSolver
	}
	return "ida"
}

// Run solves every instance and returns per-instance results (in input
// order) plus fleet metrics. Solver failures are reported per instance
// in InstanceResult.Err and counted in FleetMetrics.Errors; Run itself
// only fails on malformed input (a nil Customers).
func (e *Engine) Run(instances []Instance) (*BatchResult, error) {
	for i, in := range instances {
		if in.Customers == nil {
			return nil, fmt.Errorf("cca: engine: instance %d has nil Customers", i)
		}
	}
	start := time.Now()
	results := make([]InstanceResult, len(instances))
	workers := e.workers(len(instances))

	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range jobs {
				results[idx] = e.runOne(idx, instances[idx])
			}
		}()
	}
	for idx := range instances {
		jobs <- idx
	}
	close(jobs)
	wg.Wait()

	fleet := FleetMetrics{
		Instances: len(instances),
		Workers:   workers,
		Wall:      time.Since(start),
	}
	for _, r := range results {
		fleet.SolveWall += r.Wall
		if r.Err != nil {
			fleet.Errors++
			continue
		}
		fleet.Solved++
		fleet.CPUTime += r.Result.Metrics.CPUTime
		fleet.IOTime += r.Result.Metrics.IOTime
		fleet.Faults += r.Result.Metrics.IO.Faults
		fleet.Pairs += r.Result.Size
		fleet.Cost += r.Result.Cost
	}
	return &BatchResult{Results: results, Fleet: fleet}, nil
}

// runOne executes a single instance on its own dataset handle.
func (e *Engine) runOne(idx int, in Instance) InstanceResult {
	out := InstanceResult{Index: idx, Label: in.Label, Solver: e.solverFor(in)}
	begin := time.Now()
	defer func() { out.Wall = time.Since(begin) }()

	handle, err := in.Customers.Clone()
	if err != nil {
		out.Err = fmt.Errorf("cca: engine: instance %d: clone dataset: %w", idx, err)
		return out
	}
	defer handle.Close()

	res, err := Solve(out.Solver, in.Providers, handle, &in.Options)
	if err != nil {
		out.Err = fmt.Errorf("cca: engine: instance %d (%s): %w", idx, out.Solver, err)
		return out
	}
	out.Solver = res.Solver // canonicalize aliases/casing ("SM" → "greedy")
	out.Result = res
	return out
}
