package cca

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/lru"
	"repro/internal/obs"
	"repro/internal/sched"
)

// Lane is a scheduling priority class; see the sched package. The zero
// value is LaneInteractive, so ad-hoc Submit calls get low latency by
// default; bulk work should mark its instances LaneBatch.
type Lane = sched.Lane

// Scheduling lanes for Instance.Lane.
const (
	// LaneInteractive is drained before LaneBatch, so small interactive
	// solves are never starved behind huge batch instances.
	LaneInteractive = sched.Interactive
	// LaneBatch is the bulk lane for throughput work.
	LaneBatch = sched.Batch
)

// ErrEngineClosed is reported by submissions made after Engine.Close.
var ErrEngineClosed = errors.New("cca: engine is closed")

// Instance is one independent CCA scenario: a provider set, a customer
// dataset, and the solver to run. Several instances may reference the
// same *Customers — the engine gives every in-flight solve its own cold
// handle (Customers.Clone), so LRU buffers and I/O counters never race
// and results do not depend on scheduling order.
type Instance struct {
	// Label identifies the instance in results (optional).
	Label string
	// Providers is the capacitated provider set Q.
	Providers []Provider
	// Customers is the indexed customer set P.
	Customers *Customers
	// Solver is the registry name to run ("" selects "ida").
	Solver string
	// Options tunes the solve; the zero value is the paper's defaults.
	Options SolverOptions
	// Lane selects the scheduling priority (default LaneInteractive).
	// Lanes change only when an instance runs, never its result.
	Lane Lane
	// NoCache excludes this instance from the engine's cross-instance
	// result cache (no lookup, no insertion). Set it when the instance
	// can never repeat — e.g. a server solving a per-request dataset
	// whose identity is unique — so one-shot solves do not evict
	// reusable entries.
	NoCache bool
}

// InstanceResult is one instance's outcome.
type InstanceResult struct {
	// Index is the instance's position in the submitted batch (0 for a
	// direct Submit).
	Index int
	// Label echoes Instance.Label.
	Label string
	// Solver is the canonical name of the solver that ran (the
	// requested name when Err is set before a solver ran).
	Solver string
	// Result is the matching (nil when Err is set). Results served from
	// the engine's cross-instance cache are shared — treat as read-only.
	Result *SolverResult
	// Err is the instance's failure, if any; other instances still run.
	Err error
	// Wall is this instance's own solve time (near zero on a cache hit).
	Wall time.Duration
	// QueueWait is the time the instance waited for a worker.
	QueueWait time.Duration
	// Worker is the index of the pool worker that ran the instance
	// (-1 when it never reached a worker).
	Worker int
	// Cached reports that Result was served from the engine's
	// cross-instance result cache instead of being recomputed.
	Cached bool
}

// WorkerStats is one worker's share of a batch; see sched.WorkerStats.
type WorkerStats = sched.WorkerStats

// LatencyHistogram is a point-in-time latency distribution (bounds in
// seconds); see obs.Snapshot.
type LatencyHistogram = obs.Snapshot

// FleetMetrics aggregates a batch run.
type FleetMetrics struct {
	Instances int           // instances submitted
	Solved    int           // instances that produced a matching
	Errors    int           // instances that failed
	Workers   int           // effective parallelism for this batch
	Wall      time.Duration // batch wall-clock time
	SolveWall time.Duration // Σ per-instance wall time (≥ Wall when parallel)
	// QueueWait is the mean time an instance waited for a worker — the
	// mean of QueueWaitHist. (It was a Σ before the histogram existed;
	// the sum is QueueWaitHist.Sum seconds.)
	QueueWait time.Duration
	// QueueWaitHist is the distribution of per-instance queue waits.
	QueueWaitHist LatencyHistogram
	// CPUTime, IOTime, and Faults count work this batch actually
	// performed: instances served from the result cache contribute to
	// Pairs/Cost but not to these.
	CPUTime   time.Duration // Σ solver-reported CPU time
	IOTime    time.Duration // Σ simulated I/O time (10 ms per fault)
	Faults    int           // Σ page faults
	Pairs     int           // Σ matching sizes
	Cost      float64       // Σ matching costs Ψ(M)
	CacheHits int           // results served from the cross-instance cache
	// PerWorker aggregates this batch's instances by the worker that ran
	// them (indexed by worker, length = highest worker index used + 1):
	// task counts, busy time (Σ instance wall), and utilization against
	// the batch wall. Derived from the batch's own results, so it stays
	// exact when concurrent batches share the pool.
	PerWorker []WorkerStats
}

// BatchResult is the outcome of Engine.Run: per-instance results in
// submission order plus fleet-level aggregates.
type BatchResult struct {
	Results []InstanceResult
	Fleet   FleetMetrics
}

// DefaultCacheSize is the result cache capacity an Engine with
// CacheSize 0 uses.
const DefaultCacheSize = 256

// Engine executes CCA instances across a long-lived bounded worker pool.
// The zero value is ready to use:
//
//	var engine cca.Engine
//	batch, err := engine.Run(instances)
//
// Beyond one-shot batches, the engine is a streaming scheduler service:
// Submit enqueues a single instance and returns its result channel,
// RunStream consumes a channel of instances, and both honor context
// cancellation — a dead context stops instances before they are
// scheduled and interrupts solves between augmenting iterations.
// Identical instances (same dataset, providers, solver, and options)
// are served from a digest-keyed LRU result cache; CacheStats reports
// its hit rate.
//
// Per-instance results are byte-identical to running the instances
// sequentially (every solve starts on a fresh cold buffer handle), so
// Workers only changes wall-clock time, never answers.
//
// The pool and cache are created on first use and freed by Close (or by
// the garbage collector when an unclosed Engine becomes unreachable).
// Workers, DefaultSolver, and CacheSize must be set before first use;
// later mutations are ignored.
type Engine struct {
	// Workers bounds the number of concurrent solves; values < 1 select
	// runtime.GOMAXPROCS(0).
	Workers int
	// DefaultSolver is used by instances with an empty Solver field
	// ("" selects "ida").
	DefaultSolver string
	// CacheSize bounds the cross-instance result cache: 0 selects
	// DefaultCacheSize, negative disables caching.
	CacheSize int

	mu     sync.Mutex
	pool   *sched.Pool
	cache  *lru.Cache[resultKey, *SolverResult]
	tables *lru.Cache[tableKey, *tableEntry]
	closed bool
}

// service returns the engine's pool, building it (and the result cache)
// on first use. It returns nil once the engine is closed.
func (e *Engine) service() *sched.Pool {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil
	}
	if e.pool == nil {
		e.pool = sched.New(sched.Config{Workers: e.Workers})
		if e.CacheSize >= 0 {
			size := e.CacheSize
			if size == 0 {
				size = DefaultCacheSize
			}
			e.cache = lru.New[resultKey, *SolverResult](size)
		}
		// A dropped, unclosed Engine must not leak its workers: close
		// the pool when the Engine becomes unreachable. Queued tasks
		// keep the Engine reachable through their closures, so cleanup
		// cannot fire while work is still pending.
		runtime.AddCleanup(e, func(p *sched.Pool) { p.Close() }, e.pool)
	}
	return e.pool
}

// Close stops accepting new submissions, waits for queued and in-flight
// instances to finish, and releases the workers. Idempotent and safe
// for concurrent callers. A never-used Engine closes trivially, without
// ever spinning up a pool.
func (e *Engine) Close() {
	e.mu.Lock()
	e.closed = true
	p := e.pool
	e.mu.Unlock()
	if p != nil {
		p.Close()
	}
}

// CacheStats returns the result cache's lifetime hit/miss/eviction
// counters (all zero when caching is disabled or the engine has not run
// anything yet).
func (e *Engine) CacheStats() lru.Stats {
	e.mu.Lock()
	c := e.cache
	e.mu.Unlock()
	if c == nil {
		return lru.Stats{}
	}
	return c.Stats()
}

// PoolMetrics returns the scheduler's lifetime telemetry: queue depth,
// aggregate and per-worker utilization, and queue-wait statistics (the
// zero Metrics before the engine first runs anything). Completion
// accounting lands just after a result is delivered, so a metric read
// racing the last delivery may trail by a task; Close first for final
// numbers.
func (e *Engine) PoolMetrics() sched.Metrics {
	e.mu.Lock()
	p := e.pool
	e.mu.Unlock()
	if p == nil {
		return sched.Metrics{}
	}
	return p.Metrics()
}

// workers returns the effective parallelism for n instances.
func (e *Engine) workers(n int) int {
	w := e.Workers
	if w < 1 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// solverFor resolves an instance's solver name.
func (e *Engine) solverFor(in Instance) string {
	if in.Solver != "" {
		return in.Solver
	}
	if e.DefaultSolver != "" {
		return e.DefaultSolver
	}
	return "ida"
}

// Run solves every instance and returns per-instance results (in input
// order) plus fleet metrics. Solver failures are reported per instance
// in InstanceResult.Err and counted in FleetMetrics.Errors; Run itself
// only fails on malformed input (a nil Customers). It is a thin wrapper
// over RunContext with a background context.
func (e *Engine) Run(instances []Instance) (*BatchResult, error) {
	return e.RunContext(context.Background(), instances)
}

// RunContext is Run with cancellation: when ctx dies mid-batch, no
// further instance starts solving, in-flight solves return between
// augmenting iterations, and every unfinished instance's result carries
// ctx.Err(). The returned error is nil unless the input was malformed;
// inspect per-instance Err (or ctx.Err()) for cancellation.
func (e *Engine) RunContext(ctx context.Context, instances []Instance) (*BatchResult, error) {
	for i, in := range instances {
		if in.Customers == nil {
			return nil, fmt.Errorf("cca: engine: instance %d has nil Customers", i)
		}
	}
	out := &BatchResult{Results: make([]InstanceResult, len(instances))}
	out.Fleet.Instances = len(instances)
	out.Fleet.Workers = e.workers(len(instances))
	if len(instances) == 0 {
		return out, nil
	}

	start := time.Now()
	chans := make([]<-chan InstanceResult, len(instances))
	for i := range instances {
		chans[i] = e.submit(ctx, instances[i], i)
	}
	for i, ch := range chans {
		out.Results[i] = <-ch
	}
	out.Fleet.Wall = time.Since(start)
	out.Fleet.PerWorker = perWorkerStats(out.Results, out.Fleet.Wall)

	qh := obs.NewHistogram(obs.LatencyBounds)
	for _, r := range out.Results {
		out.Fleet.SolveWall += r.Wall
		qh.ObserveDuration(r.QueueWait)
		if r.Cached {
			out.Fleet.CacheHits++
		}
		if r.Err != nil {
			out.Fleet.Errors++
			continue
		}
		out.Fleet.Solved++
		out.Fleet.Pairs += r.Result.Size
		out.Fleet.Cost += r.Result.Cost
		if r.Cached {
			// A cached result's Metrics describe the original solve; the
			// work counters below report work *this batch* performed, so
			// served-from-cache instances contribute nothing to them.
			continue
		}
		out.Fleet.CPUTime += r.Result.Metrics.CPUTime
		out.Fleet.IOTime += r.Result.Metrics.IOTime
		out.Fleet.Faults += r.Result.Metrics.IO.Faults
	}
	out.Fleet.QueueWaitHist = qh.Snapshot()
	out.Fleet.QueueWait = out.Fleet.QueueWaitHist.MeanDuration()
	return out, nil
}

// perWorkerStats aggregates a batch's own results by the worker that
// ran each instance, with utilization measured against the batch wall.
// Built from the results — not pool snapshots — so it is exact even
// when other batches share the pool concurrently.
func perWorkerStats(results []InstanceResult, wall time.Duration) []WorkerStats {
	workers := 0
	for _, r := range results {
		if r.Worker >= workers {
			workers = r.Worker + 1
		}
	}
	out := make([]WorkerStats, workers)
	for _, r := range results {
		if r.Worker < 0 {
			continue // never reached a worker (rejected or pre-cancelled)
		}
		out[r.Worker].Tasks++
		out[r.Worker].Busy += r.Wall
	}
	if wall > 0 {
		for i := range out {
			out[i].Utilization = float64(out[i].Busy) / float64(wall)
		}
	}
	return out
}
