package cca

import (
	"repro/internal/approx"
	"repro/internal/core"
)

func opt(opts *Options) Options {
	if opts == nil {
		return Options{}
	}
	return *opts
}

// Assign computes the exact optimal CCA matching with IDA (§3.3), the
// paper's best exact algorithm. Pass nil opts for the defaults.
func Assign(providers []Provider, customers *Customers, opts *Options) (*Result, error) {
	return core.IDA(providers, customers.tree, opt(opts))
}

// AssignRIA computes the exact matching with the Range Incremental
// Algorithm (§3.1).
func AssignRIA(providers []Provider, customers *Customers, opts *Options) (*Result, error) {
	return core.RIA(providers, customers.tree, opt(opts))
}

// AssignNIA computes the exact matching with the Nearest Neighbor
// Incremental Algorithm (§3.2).
func AssignNIA(providers []Provider, customers *Customers, opts *Options) (*Result, error) {
	return core.NIA(providers, customers.tree, opt(opts))
}

// AssignSSPA computes the exact matching with the classical Successive
// Shortest Path Algorithm on the complete bipartite graph (§2.2). It
// reads the entire customer set into memory first; use it only as a
// baseline on small instances.
func AssignSSPA(providers []Provider, customers *Customers, opts *Options) (*Result, error) {
	items, err := customers.All()
	if err != nil {
		return nil, err
	}
	return core.SSPA(providers, items, opt(opts))
}

// GreedyAssign computes the (suboptimal) greedy spatial-matching join of
// the related work (§2.3): repeatedly commit the globally closest
// (provider, customer) pair. Fast, valid, but not cost-optimal.
func GreedyAssign(providers []Provider, customers *Customers, opts *Options) (*Result, error) {
	return core.SMJoin(providers, customers.tree, opt(opts))
}

// AssignHungarian computes the exact matching with the classical
// Hungarian (Kuhn–Munkres) algorithm on a dense (Σ q.k)·|P| cost matrix
// (§2.1). It reads all customers into memory and refuses absurdly large
// instances — the exact limitation that motivates the paper's
// incremental algorithms. For baselines and tiny instances only. Pass
// nil opts for the defaults.
func AssignHungarian(providers []Provider, customers *Customers, opts *Options) (*Result, error) {
	items, err := customers.All()
	if err != nil {
		return nil, err
	}
	return core.HungarianAssign(providers, items, opt(opts))
}

// Refinement selects the approximation refinement heuristic (§4.3).
type Refinement = approx.Refinement

// Refinement heuristics for the approximate solvers.
const (
	RefineNN        = approx.RefineNN
	RefineExclusive = approx.RefineExclusive
)

// ApproxOptions tunes the approximate solvers; see approx.Options.
type ApproxOptions = approx.Options

// ApproxResult is an approximate matching with its error bound and
// phase timings.
type ApproxResult = approx.Result

// AssignApproxSA computes an approximate matching with the
// Service-provider Approximation (§4.1). The assignment cost exceeds the
// optimum by at most 2·γ·δ (Theorem 3).
func AssignApproxSA(providers []Provider, customers *Customers, opts ApproxOptions) (*ApproxResult, error) {
	return approx.SA(providers, customers.tree, opts)
}

// AssignApproxCA computes an approximate matching with the Customer
// Approximation (§4.2), the paper's method of choice: typically
// near-optimal and orders of magnitude faster than the exact solvers.
// The assignment cost exceeds the optimum by at most γ·δ (Theorem 4).
func AssignApproxCA(providers []Provider, customers *Customers, opts ApproxOptions) (*ApproxResult, error) {
	return approx.CA(providers, customers.tree, opts)
}

// SAErrorBound returns Theorem 3's bound on the SA assignment cost error
// for a matching of size gamma computed with diagonal delta.
func SAErrorBound(gamma int, delta float64) float64 { return approx.SABound(gamma, delta) }

// CAErrorBound returns Theorem 4's bound on the CA assignment cost error.
func CAErrorBound(gamma int, delta float64) float64 { return approx.CABound(gamma, delta) }
