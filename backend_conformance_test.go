package cca

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"repro/internal/datagen"
	"repro/internal/geo"
	"repro/internal/geo/netmetric"
)

// backendFingerprint renders everything result-bearing about a solve at
// full float precision (Go's %v prints the shortest round-tripping
// form, so equal strings mean equal bits). Timings are excluded;
// they're the only thing allowed to differ between backends.
func backendFingerprint(res *SolverResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "size=%d cost=%x bound=%x esub=%d pairs=", res.Size,
		math.Float64bits(res.Cost), math.Float64bits(res.ErrorBound), res.Metrics.SubgraphEdges)
	for _, p := range res.Pairs {
		fmt.Fprintf(&sb, "(%d,%d,%x)", p.Provider, p.CustomerID, math.Float64bits(p.Dist))
	}
	return sb.String()
}

// TestNetworkBackendConformance pins the tentpole contract of the ALT /
// distance-table work: switching the network metric's point-query
// backend (ALT A* vs plain Dijkstra) or pre-resolving the provider
// distance table must change *nothing* about any solver's output — not
// a pair, not an ulp of cost. All three run the same canonical forward
// relaxation, so their floats are identical, not merely close; the
// solvers are deterministic given identical distances, so the whole
// matching is.
func TestNetworkBackendConformance(t *testing.T) {
	space := geo.Rect{Min: geo.Point{X: 0, Y: 0}, Max: geo.Point{X: 1000, Y: 1000}}
	net := datagen.NewNetwork(16, space, 2008)

	// 8 providers × 600 customers = 4800 pairs, above the solver layer's
	// distance-table gate (1<<12), so the "table" backend really builds.
	cpts := net.Points(datagen.Config{N: 600, Dist: datagen.Clustered, Seed: 5})
	customers, err := IndexCustomers(cpts)
	if err != nil {
		t.Fatal(err)
	}
	defer customers.Close()
	qpts := net.Points(datagen.Config{N: 8, Dist: datagen.Uniform, Seed: 9})
	caps := datagen.Capacities(len(qpts), 20, 60, 3)
	providers := make([]Provider, len(qpts))
	for i := range providers {
		providers[i] = Provider{Pt: qpts[i], Cap: caps[i]}
	}

	backends := []struct {
		name      string
		landmarks int // SetLandmarks argument
		distTable int // core.Options.DistTable
		ch        int // SetCH argument (0 = off; the 256-node grid is below auto)
	}{
		{"alt", -1, -1, 0},       // default landmarks, point queries only
		{"dijkstra", 0, -1, 0},   // landmarks off, plain forward Dijkstra
		{"table", -1, 0, 0},      // bulk many-to-many table, auto budget
		{"table-plain", 0, 0, 0}, // table without landmarks
		{"ch", -1, -1, 1},        // contraction-hierarchy point queries
		{"ch-plain", 0, -1, 1},   // hierarchy without landmarks
		{"ch+table", -1, 0, 1},   // table built through the hierarchy sweep
	}

	for _, algo := range []string{"ida", "sspa", "greedy", "sharded:ida"} {
		var ref, refBackend string
		for _, b := range backends {
			metric := netmetric.FromNetwork(net)
			metric.SetLandmarks(b.landmarks)
			metric.SetCH(b.ch)
			opts := &SolverOptions{}
			opts.Core.Metric = metric
			opts.Core.DistTable = b.distTable
			if strings.HasPrefix(algo, "sharded") {
				opts.Core.Shards = 4
			}
			res, err := Solve(algo, providers, customers, opts)
			if err != nil {
				t.Fatalf("%s/%s: %v", algo, b.name, err)
			}
			if res.Size == 0 {
				t.Fatalf("%s/%s: empty matching", algo, b.name)
			}
			// The table backend must actually have engaged: with every
			// provider's endpoint vectors materialized, no solver Dist
			// call reaches the point-query path, so the node-pair cache
			// records no misses (point backends record thousands).
			if misses := metric.Stats().NodeMisses; b.distTable == 0 && misses != 0 {
				t.Errorf("%s/%s: %d node-cache misses; distance table never engaged", algo, b.name, misses)
			}
			// Likewise the hierarchy rows must actually route their point
			// queries through chDist, not silently fall through to ALT.
			if q, _ := metric.CHStats(); b.ch == 1 && b.distTable != 0 && q == 0 {
				t.Errorf("%s/%s: hierarchy enabled but no chDist queries recorded", algo, b.name)
			}
			fp := backendFingerprint(res)
			if ref == "" {
				ref, refBackend = fp, b.name
			} else if fp != ref {
				t.Errorf("%s: backend %q diverged from %q:\n%s\nvs\n%s", algo, b.name, refBackend, fp, ref)
			}
		}
	}
}
