package cca

import (
	"math"
	"math/rand"
	"path/filepath"
	"testing"

	"repro/internal/datagen"
)

func testWorkload(t *testing.T, nq, nc, k int, seed int64) ([]Provider, *Customers) {
	t.Helper()
	net := datagen.NewNetwork(20, core_DefaultSpace(), seed)
	cpts := net.Points(datagen.Config{N: nc, Dist: datagen.Clustered, Seed: seed + 1})
	qpts := net.Points(datagen.Config{N: nq, Dist: datagen.Clustered, Seed: seed + 2})
	providers := make([]Provider, nq)
	for i := range providers {
		providers[i] = Provider{Pt: qpts[i], Cap: k}
	}
	customers, err := IndexCustomers(cpts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { customers.Close() })
	return providers, customers
}

func core_DefaultSpace() Rect {
	return Rect{Min: Point{X: 0, Y: 0}, Max: Point{X: 1000, Y: 1000}}
}

// All exact entry points must agree on cost and validate.
func TestPublicExactAgreement(t *testing.T) {
	providers, customers := testWorkload(t, 6, 200, 10, 77)
	ida, err := Assign(providers, customers, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(providers, customers, ida); err != nil {
		t.Fatal(err)
	}
	for name, run := range map[string]func() (*Result, error){
		"RIA":  func() (*Result, error) { return AssignRIA(providers, customers, &Options{Theta: 25}) },
		"NIA":  func() (*Result, error) { return AssignNIA(providers, customers, nil) },
		"SSPA": func() (*Result, error) { return AssignSSPA(providers, customers, nil) },
	} {
		res, err := run()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := Validate(providers, customers, res); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if math.Abs(res.Cost-ida.Cost) > 1e-6*(1+ida.Cost) {
			t.Fatalf("%s cost %v != IDA cost %v", name, res.Cost, ida.Cost)
		}
	}
}

// Greedy is valid but never better than optimal.
func TestPublicGreedy(t *testing.T) {
	providers, customers := testWorkload(t, 5, 150, 10, 33)
	opt, err := Assign(providers, customers, nil)
	if err != nil {
		t.Fatal(err)
	}
	greedy, err := GreedyAssign(providers, customers, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(providers, customers, greedy); err != nil {
		t.Fatal(err)
	}
	if greedy.Cost < opt.Cost-1e-6 {
		t.Fatalf("greedy %v beat optimal %v", greedy.Cost, opt.Cost)
	}
}

// Approximations respect their bounds through the public API.
func TestPublicApprox(t *testing.T) {
	providers, customers := testWorkload(t, 6, 250, 10, 55)
	opt, err := Assign(providers, customers, nil)
	if err != nil {
		t.Fatal(err)
	}
	sa, err := AssignApproxSA(providers, customers, ApproxOptions{Delta: 40})
	if err != nil {
		t.Fatal(err)
	}
	ca, err := AssignApproxCA(providers, customers, ApproxOptions{Delta: 10})
	if err != nil {
		t.Fatal(err)
	}
	gamma := opt.Size
	if sa.Cost > opt.Cost+SAErrorBound(gamma, 40)+1e-6 {
		t.Fatalf("SA violates Theorem 3: err %v > %v", sa.Cost-opt.Cost, SAErrorBound(gamma, 40))
	}
	if ca.Cost > opt.Cost+CAErrorBound(gamma, 10)+1e-6 {
		t.Fatalf("CA violates Theorem 4: err %v > %v", ca.Cost-opt.Cost, CAErrorBound(gamma, 10))
	}
	if sa.Size != gamma || ca.Size != gamma {
		t.Fatalf("approximate matchings not full size: SA %d CA %d want %d", sa.Size, ca.Size, gamma)
	}
}

// Disk-backed datasets: index to a file, reopen, and solve.
func TestPublicDiskBackedRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	pts := make([]Point, 3000)
	for i := range pts {
		pts[i] = Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}
	}
	path := filepath.Join(t.TempDir(), "customers.db")
	customers, err := IndexCustomersConfig(pts, IndexConfig{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	providers := []Provider{
		{Pt: Point{X: 250, Y: 250}, Cap: 40},
		{Pt: Point{X: 750, Y: 750}, Cap: 40},
	}
	res1, err := Assign(providers, customers, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := customers.Close(); err != nil {
		t.Fatal(err)
	}

	reopened, err := OpenCustomers(path, IndexConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	if reopened.Len() != 3000 {
		t.Fatalf("reopened Len = %d", reopened.Len())
	}
	res2, err := Assign(providers, reopened, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res1.Cost-res2.Cost) > 1e-9 {
		t.Fatalf("cost changed across reopen: %v vs %v", res1.Cost, res2.Cost)
	}
	if reopened.IOStats().Faults == 0 {
		t.Fatal("disk-backed run must report page faults")
	}
}

// Validate must reject broken matchings.
func TestValidateRejects(t *testing.T) {
	providers, customers := testWorkload(t, 3, 50, 5, 21)
	res, err := Assign(providers, customers, nil)
	if err != nil {
		t.Fatal(err)
	}
	good := *res
	if err := Validate(providers, customers, &good); err != nil {
		t.Fatal(err)
	}

	dup := *res
	dup.Pairs = append(append([]Pair(nil), res.Pairs...), res.Pairs[0])
	dup.Size++
	if err := Validate(providers, customers, &dup); err == nil {
		t.Fatal("duplicate customer not rejected")
	}

	short := *res
	short.Pairs = res.Pairs[:len(res.Pairs)-1]
	short.Size--
	if err := Validate(providers, customers, &short); err == nil {
		t.Fatal("undersized matching not rejected")
	}

	badCost := *res
	badCost.Cost += 5
	if err := Validate(providers, customers, &badCost); err == nil {
		t.Fatal("inconsistent cost not rejected")
	}
}

// IO accounting via the public API.
func TestPublicIOAccounting(t *testing.T) {
	providers, customers := testWorkload(t, 4, 2000, 20, 13)
	customers.DropCache()
	customers.ResetIOStats()
	if _, err := Assign(providers, customers, nil); err != nil {
		t.Fatal(err)
	}
	st := customers.IOStats()
	if st.Faults == 0 {
		t.Fatal("expected faults on cold cache")
	}
	if st.IOTime() <= 0 {
		t.Fatal("IOTime must be positive")
	}
	customers.ResetIOStats()
	if customers.IOStats().Faults != 0 {
		t.Fatal("ResetIOStats did not reset")
	}
}

// The Hungarian baseline must agree with IDA through the public API.
func TestPublicHungarian(t *testing.T) {
	providers, customers := testWorkload(t, 3, 40, 5, 91)
	ida, err := Assign(providers, customers, nil)
	if err != nil {
		t.Fatal(err)
	}
	hung, err := AssignHungarian(providers, customers, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(hung.Cost-ida.Cost) > 1e-6*(1+ida.Cost) {
		t.Fatalf("Hungarian cost %v != IDA cost %v", hung.Cost, ida.Cost)
	}
	if err := Validate(providers, customers, hung); err != nil {
		t.Fatal(err)
	}
}

// The dynamic matcher must track the batch optimum through the public
// API.
func TestPublicDynamicMatcher(t *testing.T) {
	providers := []Provider{
		{Pt: Point{X: 100, Y: 100}, Cap: 2},
		{Pt: Point{X: 900, Y: 900}, Cap: 2},
	}
	m := NewDynamicMatcher(providers)
	rng := rand.New(rand.NewSource(17))
	pts := make([]Point, 8)
	for i := range pts {
		pts[i] = Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}
		if _, err := m.Arrive(pts[i], int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	customers, err := IndexCustomers(pts)
	if err != nil {
		t.Fatal(err)
	}
	defer customers.Close()
	batch, err := Assign(providers, customers, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Cost()-batch.Cost) > 1e-6*(1+batch.Cost) {
		t.Fatalf("dynamic cost %v != batch cost %v", m.Cost(), batch.Cost)
	}
	if m.Size() != batch.Size || m.Matching().Size != batch.Size {
		t.Fatalf("dynamic size %d != batch %d", m.Size(), batch.Size)
	}
}

// Spatial queries on the customer dataset must match brute force.
func TestPublicSpatialQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	pts := make([]Point, 500)
	for i := range pts {
		pts[i] = Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}
	}
	customers, err := IndexCustomers(pts)
	if err != nil {
		t.Fatal(err)
	}
	defer customers.Close()

	center := Point{X: 400, Y: 600}
	got, err := customers.RangeSearch(center, 120)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, p := range pts {
		if center.Dist(p) <= 120 {
			want++
		}
	}
	if len(got) != want {
		t.Fatalf("range: %d want %d", len(got), want)
	}

	nn, err := customers.KNN(center, 5)
	if err != nil || len(nn) != 5 {
		t.Fatalf("KNN: %d items, %v", len(nn), err)
	}
	prev := -1.0
	for _, it := range nn {
		d := center.Dist(it.Pt)
		if d < prev {
			t.Fatal("KNN not sorted by distance")
		}
		prev = d
	}
	// The 5th NN distance must not exceed any unreturned point's distance.
	returned := map[int64]bool{}
	for _, it := range nn {
		returned[it.ID] = true
	}
	for _, c := range pts {
		_ = c
	}
	all, _ := customers.All()
	for _, it := range all {
		if !returned[it.ID] && center.Dist(it.Pt) < prev-1e-9 {
			t.Fatalf("point %d closer than the returned 5th NN", it.ID)
		}
	}
}

// The library is single-threaded per solver, but independent solvers on
// independent datasets must be safe to run concurrently (verified under
// -race).
func TestConcurrentIndependentSolvers(t *testing.T) {
	done := make(chan error, 4)
	for g := 0; g < 4; g++ {
		go func(seed int64) {
			rng := rand.New(rand.NewSource(seed))
			pts := make([]Point, 300)
			for i := range pts {
				pts[i] = Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}
			}
			customers, err := IndexCustomers(pts)
			if err != nil {
				done <- err
				return
			}
			defer customers.Close()
			providers := []Provider{
				{Pt: Point{X: 250, Y: 250}, Cap: 30},
				{Pt: Point{X: 750, Y: 750}, Cap: 30},
			}
			res, err := Assign(providers, customers, nil)
			if err != nil {
				done <- err
				return
			}
			done <- Validate(providers, customers, res)
		}(int64(g))
	}
	for g := 0; g < 4; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
