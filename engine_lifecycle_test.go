package cca

import (
	"context"
	"errors"
	"sync"
	"testing"
)

// Server lifecycle hardening: a long-lived daemon closes its engine on
// drain while stragglers may still be submitting. None of these paths
// may panic; all must return clean errors.

// Double (and concurrent) Close must be idempotent on both a used and a
// never-used engine.
func TestEngineDoubleClose(t *testing.T) {
	// Never used: no pool was ever spun up.
	var idle Engine
	idle.Close()
	idle.Close()

	// Used: pool exists, queued work drains before the first Close
	// returns, the second is a no-op.
	batch, customers := engineWorkload(t, 3, 120)
	defer customers.Close()
	used := &Engine{Workers: 2}
	if _, err := used.Run(batch); err != nil {
		t.Fatal(err)
	}
	used.Close()
	used.Close()

	// Concurrent closers must all return (sched.Pool.Close waits for the
	// workers) without panicking or deadlocking.
	racy := &Engine{Workers: 2}
	if _, err := racy.Run(batch[:1]); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			racy.Close()
		}()
	}
	wg.Wait()
}

// Submit, Run, and RunStream after Close must report ErrEngineClosed
// per instance instead of panicking or hanging.
func TestEngineSubmitAfterClose(t *testing.T) {
	batch, customers := engineWorkload(t, 2, 120)
	defer customers.Close()

	e := &Engine{Workers: 2}
	if _, err := e.Run(batch[:1]); err != nil {
		t.Fatal(err)
	}
	e.Close()

	r := <-e.Submit(context.Background(), batch[0])
	if !errors.Is(r.Err, ErrEngineClosed) {
		t.Fatalf("Submit after Close: err = %v, want ErrEngineClosed", r.Err)
	}
	if r.Worker != -1 {
		t.Fatalf("rejected instance reports worker %d, want -1", r.Worker)
	}

	out, err := e.Run(batch)
	if err != nil {
		t.Fatalf("Run after Close returned a top-level error: %v", err)
	}
	if out.Fleet.Errors != len(batch) {
		t.Fatalf("Run after Close: %d errors, want %d", out.Fleet.Errors, len(batch))
	}
	for _, r := range out.Results {
		if !errors.Is(r.Err, ErrEngineClosed) {
			t.Fatalf("instance %d: err = %v, want ErrEngineClosed", r.Index, r.Err)
		}
	}

	in := make(chan Instance, 1)
	in <- batch[0]
	close(in)
	for r := range e.RunStream(context.Background(), in) {
		if !errors.Is(r.Err, ErrEngineClosed) {
			t.Fatalf("RunStream after Close: err = %v, want ErrEngineClosed", r.Err)
		}
	}

	// A closed engine's telemetry stays readable.
	if m := e.PoolMetrics(); m.Workers != 2 {
		t.Fatalf("PoolMetrics after Close: workers = %d, want 2", m.Workers)
	}
	_ = e.CacheStats()
}

// Submit on a never-used closed engine must not lazily build a pool.
func TestEngineSubmitOnClosedFreshEngine(t *testing.T) {
	batch, customers := engineWorkload(t, 1, 60)
	defer customers.Close()

	e := &Engine{}
	e.Close()
	r := <-e.Submit(context.Background(), batch[0])
	if !errors.Is(r.Err, ErrEngineClosed) {
		t.Fatalf("err = %v, want ErrEngineClosed", r.Err)
	}
	if m := e.PoolMetrics(); m.Workers != 0 {
		t.Fatalf("closed fresh engine grew a pool: %+v", m)
	}
}

// Close racing in-flight Submits: every submission either completes with
// a result or reports ErrEngineClosed; nothing panics, nothing hangs.
func TestEngineCloseRacesSubmit(t *testing.T) {
	batch, customers := engineWorkload(t, 4, 120)
	defer customers.Close()

	e := &Engine{Workers: 2}
	var wg sync.WaitGroup
	results := make(chan InstanceResult, 64)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results <- <-e.Submit(context.Background(), batch[i%len(batch)])
		}(i)
	}
	e.Close()
	wg.Wait()
	close(results)
	for r := range results {
		if r.Err != nil && !errors.Is(r.Err, ErrEngineClosed) {
			t.Fatalf("unexpected error: %v", r.Err)
		}
		if r.Err == nil && r.Result == nil {
			t.Fatal("successful instance without a result")
		}
	}
}
