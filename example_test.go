package cca_test

import (
	"fmt"
	"log"

	cca "repro"
)

// Example reproduces the spirit of the paper's Figure 1: a cluster of
// customers overloads the provider whose Voronoi cell they fall into, so
// the capacity-respecting optimum must send some of them elsewhere —
// and it does so with the minimum possible total distance.
func Example() {
	customers, err := cca.IndexCustomers([]cca.Point{
		// Four customers huddled around the small provider...
		{X: 0, Y: 1}, {X: 1, Y: 0}, {X: 1, Y: 1}, {X: 0, Y: 2},
		// ...and one customer near the big provider.
		{X: 10, Y: 1},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer customers.Close()

	providers := []cca.Provider{
		{Pt: cca.Point{X: 0, Y: 0}, Cap: 2},  // overloaded by the cluster
		{Pt: cca.Point{X: 10, Y: 0}, Cap: 3}, // has room to help
	}

	result, err := cca.Assign(providers, customers, nil)
	if err != nil {
		log.Fatal(err)
	}
	load := make([]int, len(providers))
	for _, pair := range result.Pairs {
		load[pair.Provider]++
	}
	fmt.Printf("matched %d customers, load %v, total distance %.2f\n",
		result.Size, load, result.Cost)
	// Output:
	// matched 5 customers, load [2 3], total distance 22.06
}

// ExampleAssignApproxCA shows the accuracy/time trade-off of the CA
// approximation: the error is bounded by γ·δ (Theorem 4).
func ExampleAssignApproxCA() {
	pts := make([]cca.Point, 0, 100)
	for i := 0; i < 100; i++ {
		pts = append(pts, cca.Point{X: float64(i % 10), Y: float64(i / 10)})
	}
	customers, err := cca.IndexCustomers(pts)
	if err != nil {
		log.Fatal(err)
	}
	defer customers.Close()
	providers := []cca.Provider{
		{Pt: cca.Point{X: 0, Y: 0}, Cap: 50},
		{Pt: cca.Point{X: 9, Y: 9}, Cap: 50},
	}
	res, err := cca.AssignApproxCA(providers, customers, cca.ApproxOptions{Delta: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("matched %d, error bound ≤ %.0f\n", res.Size, res.ErrorBound)
	// Output:
	// matched 100, error bound ≤ 200
}
