package cca

// Benchmarks regenerating every figure of the paper's evaluation (§5).
// Each BenchmarkFigNN executes the corresponding figure's full parameter
// sweep through the experiment harness at a reduced scale (the harness
// preserves the k·|Q|/|P| ratios that drive the paper's trends, so the
// shapes survive scaling). For larger runs use:
//
//	go run ./cmd/ccabench -fig <n> -scale 0.1
//
// Additional micro-benchmarks cover the hot substrate paths: flow-graph
// iterations, R-tree search, and the solvers through the public API.

import (
	"math/rand"
	"testing"

	"repro/internal/expr"
)

// benchScale keeps the full sweeps fast enough for `go test -bench=.` on
// one core while still exercising every code path of every figure.
const benchScale = 0.01

// BenchmarkFig08 — CPU vs k on the small instance, SSPA baseline
// included (Figure 8: SSPA is orders of magnitude slower).
func BenchmarkFig08(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := expr.Fig8(benchScale, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig09 — |Esub| and time vs capacity k (Figure 9).
func BenchmarkFig09(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := expr.Fig9(benchScale, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig10 — performance vs |Q| (Figure 10).
func BenchmarkFig10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := expr.Fig10(benchScale, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig11 — performance vs |P| (Figure 11).
func BenchmarkFig11(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := expr.Fig11(benchScale, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig12 — mixed capacities (Figure 12).
func BenchmarkFig12(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := expr.Fig12(benchScale, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig13 — distribution combinations (Figure 13).
func BenchmarkFig13(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := expr.Fig13(benchScale, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig14 — approximation quality/time vs δ (Figure 14).
func BenchmarkFig14(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := expr.Fig14(benchScale, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig15 — approximation vs k (Figure 15).
func BenchmarkFig15(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := expr.Fig15(benchScale, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig16 — approximation vs |Q| (Figure 16).
func BenchmarkFig16(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := expr.Fig16(benchScale, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig17 — approximation vs |P| (Figure 17).
func BenchmarkFig17(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := expr.Fig17(benchScale, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig18 — approximation across distributions (Figure 18).
func BenchmarkFig18(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := expr.Fig18(benchScale, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation — the §3.3–§3.4 optimization ablations.
func BenchmarkAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := expr.Ablation(benchScale, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBaselineScaling — §2.1's Hungarian/SSPA/IDA scaling claim.
func BenchmarkBaselineScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := expr.BaselineScaling(benchScale, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIndexPolicy — STR vs quadratic vs R* index construction.
func BenchmarkIndexPolicy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := expr.IndexPolicy(benchScale, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkThetaSensitivity — RIA's θ trade-off (§3.2 motivation).
func BenchmarkThetaSensitivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := expr.ThetaSensitivity(benchScale, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// --- solver micro-benchmarks through the public API ---

func benchWorkload(b *testing.B, nc int) ([]Provider, *Customers) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	pts := make([]Point, nc)
	for i := range pts {
		pts[i] = Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}
	}
	customers, err := IndexCustomers(pts)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { customers.Close() })
	providers := make([]Provider, 10)
	for i := range providers {
		providers[i] = Provider{
			Pt:  Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000},
			Cap: nc / 20,
		}
	}
	return providers, customers
}

// BenchmarkAssignIDA measures the paper's best exact algorithm end to
// end (10 providers, 2000 customers, half the customers assignable).
func BenchmarkAssignIDA(b *testing.B) {
	providers, customers := benchWorkload(b, 2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Assign(providers, customers, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAssignNIA measures NIA on the same workload.
func BenchmarkAssignNIA(b *testing.B) {
	providers, customers := benchWorkload(b, 2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := AssignNIA(providers, customers, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAssignApproxCA measures the paper's recommended approximate
// method on the same workload.
func BenchmarkAssignApproxCA(b *testing.B) {
	providers, customers := benchWorkload(b, 2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := AssignApproxCA(providers, customers, ApproxOptions{Delta: 10}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGreedyAssign measures the SM-join baseline.
func BenchmarkGreedyAssign(b *testing.B) {
	providers, customers := benchWorkload(b, 2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := GreedyAssign(providers, customers, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIndexCustomers measures STR bulk loading of the R-tree.
func BenchmarkIndexCustomers(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	pts := make([]Point, 10000)
	for i := range pts {
		pts[i] = Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		customers, err := IndexCustomers(pts)
		if err != nil {
			b.Fatal(err)
		}
		customers.Close()
	}
}
