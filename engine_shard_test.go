package cca

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/datagen"
	"repro/internal/geo"
	"repro/internal/geo/netmetric"
)

// shardedBatch builds instances that all run the sharded meta-solver
// over ONE shared dataset and ONE shared NetworkMetric — the stress
// shape where engine workers race on the metric's caches while every
// instance internally fans out onto its own region pool. Run under
// -race (the CI race job) this is the sharded path's thread-safety
// test; the assertions below extend the byte-identical determinism
// suite to it.
func shardedBatch(t testing.TB, instances int) ([]Instance, *Customers, *netmetric.NetworkMetric) {
	t.Helper()
	space := geo.Rect{Min: geo.Point{X: 0, Y: 0}, Max: geo.Point{X: 1000, Y: 1000}}
	net := datagen.NewNetwork(12, space, 2008)
	metric := netmetric.FromNetwork(net)

	cpts := net.Points(datagen.Config{N: 600, Dist: datagen.Clustered, Seed: 9})
	customers, err := IndexCustomers(cpts)
	if err != nil {
		t.Fatal(err)
	}
	batch := make([]Instance, instances)
	for i := range batch {
		qpts := net.Points(datagen.Config{N: 6 + i%4, Dist: datagen.Uniform, Seed: int64(300 + i)})
		caps := datagen.Capacities(len(qpts), 3, 20, int64(i))
		providers := make([]Provider, len(qpts))
		for q := range providers {
			providers[q] = Provider{Pt: qpts[q], Cap: caps[q]}
		}
		in := Instance{
			Label:     fmt.Sprintf("sharded-%d", i),
			Providers: providers,
			Customers: customers,
			Solver:    []string{"sharded:ida", "sharded:sspa", "sharded:greedy"}[i%3],
		}
		in.Options.Core.Metric = metric
		in.Options.Core.Shards = 2 + i%2
		in.Options.Core.ShardWorkers = 2
		batch[i] = in
	}
	return batch, customers, metric
}

// TestEngineShardedDeterminism: many concurrent sharded solves through
// one shared Engine and one shared NetworkMetric must be byte-identical
// to the serial run — engine parallelism on the outside and region
// parallelism on the inside change scheduling only, never answers.
func TestEngineShardedDeterminism(t *testing.T) {
	batch, customers, metric := shardedBatch(t, 9)
	defer customers.Close()

	serialEngine := &Engine{Workers: 1}
	defer serialEngine.Close()
	seq, err := serialEngine.Run(batch)
	if err != nil {
		t.Fatal(err)
	}
	parEngine := &Engine{Workers: 8}
	defer parEngine.Close()
	par, err := parEngine.Run(batch)
	if err != nil {
		t.Fatal(err)
	}
	if seq.Fleet.Solved != len(batch) || par.Fleet.Solved != len(batch) {
		t.Fatalf("solved %d/%d of %d", seq.Fleet.Solved, par.Fleet.Solved, len(batch))
	}
	for i := range batch {
		a, b := fingerprint(seq.Results[i]), fingerprint(par.Results[i])
		if a != b {
			t.Errorf("instance %d diverged under concurrent sharded solving:\nsequential: %s\nparallel:   %s", i, a, b)
		}
	}
	if st := metric.Stats(); st.NodeHits == 0 {
		t.Errorf("shared metric caches never hit across the sharded batch: %+v", st)
	}
	for i, r := range par.Results {
		if err := Validate(batch[i].Providers, customers, &r.Result.Result); err != nil {
			t.Errorf("instance %d: %v", i, err)
		}
		if r.Result.Kind != SolverHeuristic || r.Result.Groups < 1 {
			t.Errorf("instance %d: sharded metadata %v/%d", i, r.Result.Kind, r.Result.Groups)
		}
	}
}

// TestEngineShardedStress hammers one engine from many submitting
// goroutines (Submit, not Run) so sharded region pools, the result
// cache, and the shared metric all interleave — a pure -race target
// with a cheap determinism check on repeated instances.
func TestEngineShardedStress(t *testing.T) {
	batch, customers, _ := shardedBatch(t, 6)
	defer customers.Close()

	engine := &Engine{Workers: 6}
	defer engine.Close()

	const rounds = 4
	results := make([][]InstanceResult, rounds)
	var wg sync.WaitGroup
	for round := 0; round < rounds; round++ {
		round := round
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[round] = make([]InstanceResult, len(batch))
			chans := make([]<-chan InstanceResult, len(batch))
			for i := range batch {
				chans[i] = engine.Submit(nil, batch[i])
			}
			for i := range chans {
				results[round][i] = <-chans[i]
			}
		}()
	}
	wg.Wait()

	// Which round computes and which is served from the result cache is
	// scheduling-dependent, but the payload must not be (fingerprint
	// ignores the Cached flag and wall timings).
	for round := 1; round < rounds; round++ {
		for i := range batch {
			a, b := fingerprint(results[0][i]), fingerprint(results[round][i])
			if a != b {
				t.Errorf("round %d instance %d diverged:\n%s\n%s", round, i, a, b)
			}
		}
	}
	if st := engine.CacheStats(); st.Hits == 0 {
		t.Errorf("repeated sharded instances never hit the result cache: %+v", st)
	}
}
