package cca

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"
)

// TestEngineRunEmpty: an empty instance slice returns an empty
// BatchResult, not a hang or a zero-division.
func TestEngineRunEmpty(t *testing.T) {
	engine := &Engine{}
	defer engine.Close()
	out, err := engine.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 0 || out.Fleet.Instances != 0 || out.Fleet.Solved != 0 {
		t.Fatalf("empty batch produced %+v", out.Fleet)
	}
	out, err = engine.Run([]Instance{})
	if err != nil || len(out.Results) != 0 {
		t.Fatalf("empty non-nil batch: %v, %+v", err, out.Fleet)
	}
}

// TestEngineWorkersZero: the pool-sizing helper clamps degenerate
// inputs — zero instances, zero workers — to a usable size.
func TestEngineWorkersZero(t *testing.T) {
	e := &Engine{}
	if got := e.workers(0); got != 1 {
		t.Errorf("workers(0) = %d, want 1", got)
	}
	if got := e.workers(5); got < 1 || got > runtime.GOMAXPROCS(0) {
		t.Errorf("workers(5) = %d, want in [1, GOMAXPROCS]", got)
	}
	neg := &Engine{Workers: -3}
	if got := neg.workers(2); got < 1 || got > 2 {
		t.Errorf("negative Workers: workers(2) = %d, want in [1,2]", got)
	}
}

// TestSubmitCancelledContext: a Submit with an already-cancelled context
// returns promptly with context.Canceled — the instance never reaches a
// worker.
func TestSubmitCancelledContext(t *testing.T) {
	batch, customers := engineWorkload(t, 1, 200)
	defer customers.Close()
	engine := &Engine{Workers: 2}
	defer engine.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	select {
	case res := <-engine.Submit(ctx, batch[0]):
		if !errors.Is(res.Err, context.Canceled) {
			t.Fatalf("Err = %v, want context.Canceled", res.Err)
		}
		if res.Result != nil || res.Worker != -1 {
			t.Fatalf("cancelled submit still produced %+v", res)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled Submit did not return promptly")
	}
}

// TestRunContextMidBatchCancel: cancelling mid-batch stops scheduling
// new instances — later instances report ctx.Err() without solving —
// while already-finished results stay intact. Run under -race by CI.
func TestRunContextMidBatchCancel(t *testing.T) {
	batch, customers := engineWorkload(t, 16, 600)
	defer customers.Close()
	engine := &Engine{Workers: 1, CacheSize: -1}
	defer engine.Close()

	// Cancel as soon as the first instance completes: with one worker,
	// most of the queue is still waiting at that point.
	ctx, cancel := context.WithCancel(context.Background())
	first := engine.Submit(ctx, batch[0])
	go func() {
		<-first
		cancel()
	}()
	out, err := engine.RunContext(ctx, batch)
	if err != nil {
		t.Fatal(err)
	}
	cancelled := 0
	for i, r := range out.Results {
		if r.Err == nil {
			continue
		}
		if !errors.Is(r.Err, context.Canceled) {
			t.Fatalf("instance %d failed with %v, want context.Canceled", i, r.Err)
		}
		if r.Result != nil {
			t.Fatalf("instance %d has both a result and an error", i)
		}
		cancelled++
	}
	if cancelled == 0 {
		t.Skip("batch finished before cancellation landed (fast machine, tiny batch)")
	}
	if out.Fleet.Errors != cancelled {
		t.Errorf("fleet errors %d != cancelled %d", out.Fleet.Errors, cancelled)
	}
}

// TestRunStreamMatchesRun: streaming submission of a batch yields
// byte-identical per-instance results to Engine.Run on the same
// instances (the golden-determinism guarantee extended to the
// streaming path). Caching is disabled so both paths genuinely solve.
func TestRunStreamMatchesRun(t *testing.T) {
	batch, customers := engineWorkload(t, 9, 600)
	defer customers.Close()

	run := &Engine{Workers: 4, CacheSize: -1}
	defer run.Close()
	ref, err := run.Run(batch)
	if err != nil {
		t.Fatal(err)
	}

	stream := &Engine{Workers: 4, CacheSize: -1}
	defer stream.Close()
	feed := make(chan Instance)
	go func() {
		defer close(feed)
		for _, in := range batch {
			feed <- in
		}
	}()
	got := make([]*InstanceResult, len(batch))
	n := 0
	for res := range stream.RunStream(context.Background(), feed) {
		res := res
		if res.Index < 0 || res.Index >= len(batch) || got[res.Index] != nil {
			t.Fatalf("bad or duplicate stream index %d", res.Index)
		}
		got[res.Index] = &res
		n++
	}
	if n != len(batch) {
		t.Fatalf("stream delivered %d of %d results", n, len(batch))
	}
	for i := range batch {
		a, b := fingerprint(ref.Results[i]), fingerprint(*got[i])
		if a != b {
			t.Errorf("instance %d diverged between Run and RunStream:\nrun:    %s\nstream: %s", i, a, b)
		}
	}
}

// TestResultCacheHits: repeated identical instances are served from the
// digest-keyed result cache, report Cached, and return the identical
// matching; different instances never collide.
func TestResultCacheHits(t *testing.T) {
	batch, customers := engineWorkload(t, 4, 400)
	defer customers.Close()
	engine := &Engine{Workers: 2}
	defer engine.Close()

	first, err := engine.Run(batch)
	if err != nil {
		t.Fatal(err)
	}
	if first.Fleet.CacheHits != 0 {
		t.Fatalf("distinct instances produced %d cache hits", first.Fleet.CacheHits)
	}
	second, err := engine.Run(batch)
	if err != nil {
		t.Fatal(err)
	}
	if second.Fleet.CacheHits != len(batch) {
		t.Fatalf("second run hit cache %d times, want %d", second.Fleet.CacheHits, len(batch))
	}
	for i := range batch {
		if !second.Results[i].Cached {
			t.Errorf("instance %d not served from cache", i)
		}
		if fingerprint(first.Results[i]) != fingerprint(second.Results[i]) {
			t.Errorf("instance %d: cached result differs from computed", i)
		}
	}
	st := engine.CacheStats()
	if st.Hits != uint64(len(batch)) || st.Misses != uint64(len(batch)) {
		t.Errorf("cache stats %+v, want %d hits and %d misses", st, len(batch), len(batch))
	}
	if st.HitRate() != 0.5 {
		t.Errorf("hit rate %g, want 0.5", st.HitRate())
	}
}

// TestCacheKeySensitivity: any observable change — providers, solver,
// options, dataset — must miss the cache.
func TestCacheKeySensitivity(t *testing.T) {
	batch, customers := engineWorkload(t, 1, 300)
	defer customers.Close()
	engine := &Engine{}
	defer engine.Close()
	base := batch[0]
	if _, err := engine.Run([]Instance{base}); err != nil {
		t.Fatal(err)
	}

	providers := append([]Provider(nil), base.Providers...)
	providers[0].Cap++
	variants := []Instance{base, base, base}
	variants[0].Providers = providers
	variants[1].Solver = "nia"
	variants[2].Options.Core.Theta = 2.5
	out, err := engine.Run(variants)
	if err != nil {
		t.Fatal(err)
	}
	if out.Fleet.CacheHits != 0 {
		t.Fatalf("perturbed instances hit the cache %d times", out.Fleet.CacheHits)
	}

	// The identical instance, resubmitted via Submit, does hit.
	res := <-engine.Submit(context.Background(), base)
	if res.Err != nil || !res.Cached {
		t.Fatalf("identical resubmission missed the cache: %+v", res.Err)
	}
}

// TestFleetTelemetry: FleetMetrics reports per-worker utilization and
// queue-wait for the batch, and the scheduler's lifetime metrics add up.
func TestFleetTelemetry(t *testing.T) {
	batch, customers := engineWorkload(t, 8, 500)
	defer customers.Close()
	engine := &Engine{Workers: 2, CacheSize: -1}
	defer engine.Close()
	out, err := engine.Run(batch)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(out.Fleet.PerWorker); n < 1 || n > 2 {
		t.Fatalf("PerWorker has %d entries, want 1..2 for a 2-worker pool", n)
	}
	tasks, busy := 0, time.Duration(0)
	for _, w := range out.Fleet.PerWorker {
		if w.Utilization < 0 || w.Utilization > 1.5 { // small timing slack
			t.Errorf("utilization %g out of range", w.Utilization)
		}
		tasks += w.Tasks
		busy += w.Busy
	}
	if tasks != len(batch) {
		t.Errorf("per-worker tasks sum to %d, want %d", tasks, len(batch))
	}
	if busy == 0 {
		t.Error("no busy time recorded for a real batch")
	}
	if out.Fleet.QueueWait < 0 {
		t.Errorf("negative queue wait %v", out.Fleet.QueueWait)
	}
	// QueueWait is the mean of the per-instance histogram: every
	// instance is observed once, and the legacy field must equal the
	// histogram's own mean exactly (it is computed from it).
	qh := out.Fleet.QueueWaitHist
	if got, want := qh.Count, uint64(len(batch)); got != want {
		t.Errorf("QueueWaitHist.Count = %d, want %d", got, want)
	}
	if out.Fleet.QueueWait != qh.MeanDuration() {
		t.Errorf("QueueWait %v != QueueWaitHist mean %v", out.Fleet.QueueWait, qh.MeanDuration())
	}
	var inBuckets uint64
	for _, n := range qh.Counts {
		inBuckets += n
	}
	if inBuckets != qh.Count {
		t.Errorf("bucket counts sum to %d, want Count %d", inBuckets, qh.Count)
	}
	for i, r := range out.Results {
		if r.Worker < 0 || r.Worker >= 2 {
			t.Errorf("instance %d ran on worker %d", i, r.Worker)
		}
	}
	// Close drains the pool, making the lifetime counters final (a
	// snapshot racing the last delivery may trail by a task).
	engine.Close()
	pm := engine.PoolMetrics()
	if pm.Completed != len(batch) || pm.Workers != 2 {
		t.Errorf("pool metrics %+v, want %d completed on 2 workers", pm, len(batch))
	}
}

// TestEngineClosed: submissions after Close fail fast with
// ErrEngineClosed instead of hanging.
func TestEngineClosed(t *testing.T) {
	batch, customers := engineWorkload(t, 1, 200)
	defer customers.Close()
	engine := &Engine{Workers: 1}
	engine.Close()
	res := <-engine.Submit(context.Background(), batch[0])
	if !errors.Is(res.Err, ErrEngineClosed) {
		t.Fatalf("Err = %v, want ErrEngineClosed", res.Err)
	}
	engine.Close() // idempotent
}

// TestSubmitTimeout: a deadline interrupts a slow solver (SSPA on a
// deliberately oversized instance) mid-solve.
func TestSubmitTimeout(t *testing.T) {
	batch, customers := engineWorkload(t, 1, 4000)
	defer customers.Close()
	in := batch[0]
	in.Solver = "sspa"
	providers := make([]Provider, 40)
	for i := range providers {
		providers[i] = Provider{Pt: Point{X: float64(25 * i), Y: float64(1000 - 25*i)}, Cap: 100}
	}
	in.Providers = providers

	engine := &Engine{Workers: 1, CacheSize: -1}
	defer engine.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	start := time.Now()
	res := <-engine.Submit(ctx, in)
	if !errors.Is(res.Err, context.DeadlineExceeded) {
		if res.Err == nil {
			t.Skip("instance solved inside the deadline; nothing to interrupt")
		}
		t.Fatalf("Err = %v, want context.DeadlineExceeded", res.Err)
	}
	if waited := time.Since(start); waited > 10*time.Second {
		t.Fatalf("cancellation took %v, deadline not honored mid-solve", waited)
	}
}

// BenchmarkEngineStream measures the streaming path end to end: a batch
// fed through RunStream on a warm engine, caching disabled. The CI
// workflow runs it with -benchtime=1x as a scheduler smoke test.
func BenchmarkEngineStream(b *testing.B) {
	nWorkers := runtime.GOMAXPROCS(0)
	if nWorkers < 2 {
		nWorkers = 2
	}
	batch, customers := engineWorkload(b, 2*nWorkers, 1000)
	defer customers.Close()
	for i := range batch {
		batch[i].Solver = "ida"
		batch[i].Lane = LaneBatch
	}
	engine := &Engine{Workers: nWorkers, CacheSize: -1}
	defer engine.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		feed := make(chan Instance)
		go func() {
			defer close(feed)
			for _, in := range batch {
				feed <- in
			}
		}()
		n := 0
		for res := range engine.RunStream(context.Background(), feed) {
			if res.Err != nil {
				b.Fatal(res.Err)
			}
			n++
		}
		if n != len(batch) {
			b.Fatalf("stream delivered %d of %d", n, len(batch))
		}
	}
	b.ReportMetric(float64(len(batch)), "instances/op")
	if m := engine.PoolMetrics(); m.Completed > 0 {
		b.ReportMetric(float64(m.QueueWait.Nanoseconds())/float64(m.Completed), "queue-wait-ns/instance")
	}
}

// ExampleEngine_Submit demonstrates the streaming engine: a long-lived
// engine serving ad-hoc solves with a deadline.
func ExampleEngine_Submit() {
	pts := make([]Point, 64)
	for i := range pts {
		pts[i] = Point{X: float64(i % 8), Y: float64(i / 8)}
	}
	customers, _ := IndexCustomers(pts)
	defer customers.Close()

	engine := &Engine{Workers: 2}
	defer engine.Close()

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	res := <-engine.Submit(ctx, Instance{
		Providers: []Provider{{Pt: Point{X: 3, Y: 3}, Cap: 4}},
		Customers: customers,
	})
	fmt.Println(res.Solver, res.Result.Size, res.Err)
	// Output: ida 4 <nil>
}
