package cca

import (
	"crypto/sha256"
	"encoding/binary"
	"math"
	"sync"

	"repro/internal/geo"
	"repro/internal/geo/netmetric"
	"repro/internal/lru"
	"repro/internal/solver"
)

// tableMemoSize bounds the engine's shared distance-table memo. Tables
// are provider-sourced, so one entry per distinct (network, provider
// set, budget) triple; batches rarely carry more than a handful.
const tableMemoSize = 32

// tableKey identifies one provider-sourced bulk distance table: the
// network-metric instance (pointer identity — two metrics over the same
// grid/seed still have independent caches and must not share tables)
// plus a digest of the provider points and the table budget.
type tableKey struct {
	metric *netmetric.NetworkMetric
	digest [32]byte
}

// tableEntry is one memoized table, built at most once. Concurrent
// instances that race to the same key block on the first build instead
// of sweeping the network once each.
type tableEntry struct {
	once sync.Once
	t    *netmetric.Table
}

// sharedTable returns the memoized bulk distance table for in's
// (metric, providers, budget), building it on first use, or nil when
// the instance does not qualify: not a network metric, the precompute
// disabled (DistTable < 0), or too few provider×customer pairs to
// amortize the sweeps (the same gate the solver registry applies, so
// memo and per-solve behavior agree).
//
// Without the memo, a batch that repeats one provider set across
// instances — the same workload under every solver, or one dataset
// swept over θ — rebuilds an identical table per instance; each build
// is |Q| full-graph sweeps. The memo makes it one build per distinct
// table. Safe because a table is immutable once built and returns
// byte-identical distances to point queries (pinned by the network
// backend conformance suite), so sharing never changes results.
func (e *Engine) sharedTable(in Instance) *netmetric.Table {
	nm, ok := in.Options.Core.Metric.(*netmetric.NetworkMetric)
	if !ok || in.Options.Core.DistTable < 0 || len(in.Providers) == 0 ||
		len(in.Providers)*in.Customers.Len() < solver.DistTableMinPairs {
		return nil
	}

	h := sha256.New()
	var scratch [8]byte
	put64 := func(v uint64) {
		binary.LittleEndian.PutUint64(scratch[:], v)
		h.Write(scratch[:])
	}
	for _, q := range in.Providers {
		put64(math.Float64bits(q.Pt.X))
		put64(math.Float64bits(q.Pt.Y))
	}
	put64(uint64(int64(in.Options.Core.DistTable)))
	key := tableKey{metric: nm}
	h.Sum(key.digest[:0])

	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	if e.tables == nil {
		e.tables = lru.New[tableKey, *tableEntry](tableMemoSize)
	}
	ent, ok := e.tables.Get(key)
	if !ok {
		ent = &tableEntry{}
		e.tables.Put(key, ent)
	}
	e.mu.Unlock()

	// Build outside the engine lock: a sweep over a big network takes
	// long enough that holding mu would serialize unrelated submissions.
	ent.once.Do(func() {
		pts := make([]geo.Point, len(in.Providers))
		for i := range in.Providers {
			pts[i] = in.Providers[i].Pt
		}
		// BuildTable declines over-budget requests by returning nil; the
		// entry memoizes that decision too, so repeat instances skip the
		// sizing arithmetic.
		ent.t = nm.BuildTable(pts, in.Options.Core.DistTable)
	})
	return ent.t
}

// TableMemoStats returns the shared distance-table memo's lifetime
// hit/miss/eviction counters (all zero before the first network-metric
// instance large enough to qualify).
func (e *Engine) TableMemoStats() lru.Stats {
	e.mu.Lock()
	c := e.tables
	e.mu.Unlock()
	if c == nil {
		return lru.Stats{}
	}
	return c.Stats()
}
