package cca

import (
	"repro/internal/datagen"
	"repro/internal/geo"
	"repro/internal/geo/netmetric"
)

// Metric is the pluggable distance backend edge costs are computed
// with; set it via SolverOptions.Core.Metric (nil selects Euclidean).
// Non-Euclidean metrics must lower-bound to Euclidean distance for the
// exact solvers to stay exact — see the geo.Metric contract.
type Metric = geo.Metric

// EuclideanMetric returns the straight-line L2 backend — the paper's
// setting and the default everywhere.
func EuclideanMetric() Metric { return geo.Euclidean }

// RoadNetworkMetric builds the shortest-path distance backend over the
// synthetic road network with the given grid size, data space, and
// seed (the same recipe ccagen and the experiment harness use, so a
// workload generated with one seed measures travel distance on its own
// network). Points are snapped to their nearest edge; node-pair
// distances are memoized in concurrency-safe caches, so one metric
// value can (and should) be shared across a whole Engine batch. The
// returned metric satisfies the Euclidean lower bound, keeping every
// exact solver exact.
func RoadNetworkMetric(gridN int, space Rect, seed int64) Metric {
	return netmetric.FromNetwork(datagen.NewNetwork(gridN, space, seed))
}
