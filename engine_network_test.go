package cca

import (
	"fmt"
	"testing"

	"repro/internal/datagen"
	"repro/internal/geo"
	"repro/internal/geo/netmetric"
)

// networkBatch builds a batch whose every instance shares ONE
// NetworkMetric — the deployment shape the metric's concurrent caches
// exist for: engine workers race on the snap and node-pair maps while
// solving independent scenarios. Run under -race (the CI test job does)
// this is the engine/metric thread-safety test the issue calls for.
func networkBatch(t testing.TB, instances int) ([]Instance, *Customers, *netmetric.NetworkMetric) {
	t.Helper()
	space := geo.Rect{Min: geo.Point{X: 0, Y: 0}, Max: geo.Point{X: 1000, Y: 1000}}
	net := datagen.NewNetwork(16, space, 2008)
	metric := netmetric.FromNetwork(net)

	cpts := net.Points(datagen.Config{N: 500, Dist: datagen.Clustered, Seed: 5})
	customers, err := IndexCustomers(cpts)
	if err != nil {
		t.Fatal(err)
	}
	batch := make([]Instance, instances)
	for i := range batch {
		qpts := net.Points(datagen.Config{N: 3 + i%3, Dist: datagen.Uniform, Seed: int64(100 + i)})
		caps := datagen.Capacities(len(qpts), 2, 8, int64(i))
		providers := make([]Provider, len(qpts))
		for q := range providers {
			providers[q] = Provider{Pt: qpts[q], Cap: caps[q]}
		}
		in := Instance{
			Label:     fmt.Sprintf("net-%d", i),
			Providers: providers,
			Customers: customers,
			Solver:    []string{"ida", "nia", "ria", "greedy"}[i%4],
		}
		in.Options.Core.Metric = metric
		batch[i] = in
	}
	return batch, customers, metric
}

// TestEngineBatchNetworkMetric runs a parallel batch over one shared
// NetworkMetric and asserts (a) no result depends on scheduling — the
// parallel run is byte-identical to the sequential one even though the
// second run hits a cache warmed in racy order — and (b) the shared
// caches actually absorbed work across instances.
func TestEngineBatchNetworkMetric(t *testing.T) {
	batch, customers, metric := networkBatch(t, 12)
	defer customers.Close()

	seq, err := (&Engine{Workers: 1}).Run(batch)
	if err != nil {
		t.Fatal(err)
	}
	par, err := (&Engine{Workers: 8}).Run(batch)
	if err != nil {
		t.Fatal(err)
	}
	if seq.Fleet.Solved != len(batch) || par.Fleet.Solved != len(batch) {
		t.Fatalf("solved %d/%d of %d", seq.Fleet.Solved, par.Fleet.Solved, len(batch))
	}
	for i := range batch {
		a, b := fingerprint(seq.Results[i]), fingerprint(par.Results[i])
		if a != b {
			t.Errorf("instance %d diverged under the shared metric:\nsequential: %s\nparallel:   %s", i, a, b)
		}
	}
	st := metric.Stats()
	if st.NodeHits == 0 || st.SnapHits == 0 {
		t.Errorf("shared metric caches never hit across the batch: %+v", st)
	}
	// Exact instances must validate under the network metric too: the
	// validator checks structure and cost-sum consistency, which are
	// metric-independent.
	for i, r := range par.Results {
		if batch[i].Solver == "greedy" {
			continue
		}
		if err := Validate(batch[i].Providers, customers, &r.Result.Result); err != nil {
			t.Errorf("instance %d: %v", i, err)
		}
	}
}
