package cca

import (
	"fmt"
	"testing"

	"repro/internal/datagen"
	"repro/internal/geo"
	"repro/internal/geo/netmetric"
)

// networkBatch builds a batch whose every instance shares ONE
// NetworkMetric — the deployment shape the metric's concurrent caches
// exist for: engine workers race on the snap and node-pair maps while
// solving independent scenarios. Run under -race (the CI test job does)
// this is the engine/metric thread-safety test the issue calls for.
func networkBatch(t testing.TB, instances int) ([]Instance, *Customers, *netmetric.NetworkMetric) {
	t.Helper()
	space := geo.Rect{Min: geo.Point{X: 0, Y: 0}, Max: geo.Point{X: 1000, Y: 1000}}
	net := datagen.NewNetwork(16, space, 2008)
	metric := netmetric.FromNetwork(net)

	cpts := net.Points(datagen.Config{N: 500, Dist: datagen.Clustered, Seed: 5})
	customers, err := IndexCustomers(cpts)
	if err != nil {
		t.Fatal(err)
	}
	batch := make([]Instance, instances)
	for i := range batch {
		qpts := net.Points(datagen.Config{N: 3 + i%3, Dist: datagen.Uniform, Seed: int64(100 + i)})
		caps := datagen.Capacities(len(qpts), 2, 8, int64(i))
		providers := make([]Provider, len(qpts))
		for q := range providers {
			providers[q] = Provider{Pt: qpts[q], Cap: caps[q]}
		}
		in := Instance{
			Label:     fmt.Sprintf("net-%d", i),
			Providers: providers,
			Customers: customers,
			Solver:    []string{"ida", "nia", "ria", "greedy"}[i%4],
		}
		in.Options.Core.Metric = metric
		batch[i] = in
	}
	return batch, customers, metric
}

// TestEngineSharedTableMemo: a batch repeating one provider set across
// solvers must build the bulk distance table once (engine memo) and
// serve every other instance from it, with results byte-identical to
// the table-disabled point-query path.
func TestEngineSharedTableMemo(t *testing.T) {
	space := geo.Rect{Min: geo.Point{X: 0, Y: 0}, Max: geo.Point{X: 1000, Y: 1000}}
	net := datagen.NewNetwork(16, space, 2008)
	metric := netmetric.FromNetwork(net)

	cpts := net.Points(datagen.Config{N: 500, Dist: datagen.Clustered, Seed: 5})
	customers, err := IndexCustomers(cpts)
	if err != nil {
		t.Fatal(err)
	}
	defer customers.Close()

	// 10 providers × 500 customers = 5000 pairs, over DistTableMinPairs,
	// so every instance qualifies for the shared table.
	qpts := net.Points(datagen.Config{N: 10, Dist: datagen.Uniform, Seed: 42})
	caps := datagen.Capacities(len(qpts), 20, 60, 7)
	providers := make([]Provider, len(qpts))
	for q := range providers {
		providers[q] = Provider{Pt: qpts[q], Cap: caps[q]}
	}
	solvers := []string{"ida", "nia", "ria", "sspa", "greedy"}
	batch := make([]Instance, len(solvers))
	for i, s := range solvers {
		in := Instance{Label: s, Providers: providers, Customers: customers, Solver: s}
		in.Options.Core.Metric = metric
		batch[i] = in
	}

	eng := &Engine{Workers: 4}
	defer eng.Close()
	got, err := eng.Run(batch)
	if err != nil {
		t.Fatal(err)
	}
	if got.Fleet.Solved != len(batch) {
		t.Fatalf("solved %d of %d", got.Fleet.Solved, len(batch))
	}
	st := eng.TableMemoStats()
	if st.Misses != 1 || st.Hits != uint64(len(batch)-1) {
		t.Errorf("table memo: %d misses / %d hits, want 1 / %d (one build, shared by the rest)",
			st.Misses, st.Hits, len(batch)-1)
	}

	// Point-query reference: same batch with the precompute disabled.
	ref := make([]Instance, len(batch))
	copy(ref, batch)
	for i := range ref {
		ref[i].Options.Core.DistTable = -1
	}
	refEng := &Engine{Workers: 1}
	defer refEng.Close()
	want, err := refEng.Run(ref)
	if err != nil {
		t.Fatal(err)
	}
	if s := refEng.TableMemoStats(); s.Hits != 0 || s.Misses != 0 {
		t.Errorf("disabled precompute still touched the memo: %+v", s)
	}
	for i := range batch {
		a, b := fingerprint(got.Results[i]), fingerprint(want.Results[i])
		if a != b {
			t.Errorf("solver %s: shared table diverged from point queries:\ntable: %s\npoint: %s", solvers[i], a, b)
		}
	}
}

// TestEngineBatchNetworkMetric runs a parallel batch over one shared
// NetworkMetric and asserts (a) no result depends on scheduling — the
// parallel run is byte-identical to the sequential one even though the
// second run hits a cache warmed in racy order — and (b) the shared
// caches actually absorbed work across instances.
func TestEngineBatchNetworkMetric(t *testing.T) {
	batch, customers, metric := networkBatch(t, 12)
	defer customers.Close()

	seq, err := (&Engine{Workers: 1}).Run(batch)
	if err != nil {
		t.Fatal(err)
	}
	par, err := (&Engine{Workers: 8}).Run(batch)
	if err != nil {
		t.Fatal(err)
	}
	if seq.Fleet.Solved != len(batch) || par.Fleet.Solved != len(batch) {
		t.Fatalf("solved %d/%d of %d", seq.Fleet.Solved, par.Fleet.Solved, len(batch))
	}
	for i := range batch {
		a, b := fingerprint(seq.Results[i]), fingerprint(par.Results[i])
		if a != b {
			t.Errorf("instance %d diverged under the shared metric:\nsequential: %s\nparallel:   %s", i, a, b)
		}
	}
	st := metric.Stats()
	if st.NodeHits == 0 || st.SnapHits == 0 {
		t.Errorf("shared metric caches never hit across the batch: %+v", st)
	}
	// Exact instances must validate under the network metric too: the
	// validator checks structure and cost-sum consistency, which are
	// metric-independent.
	for i, r := range par.Results {
		if batch[i].Solver == "greedy" {
			continue
		}
		if err := Validate(batch[i].Providers, customers, &r.Result.Result); err != nil {
			t.Errorf("instance %d: %v", i, err)
		}
	}
}
