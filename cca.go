// Package cca is a Go implementation of Capacity Constrained Assignment
// in spatial databases, reproducing "Capacity Constrained Assignment in
// Spatial Databases" (Leong Hou U, Man Lung Yiu, Kyriakos Mouratidis,
// Nikos Mamoulis; SIGMOD 2008).
//
// Given a large set of customers P (points, disk-resident, R-tree
// indexed) and a small set of service providers Q (points with
// capacities), CCA computes the maximum-size matching M ⊆ Q×P that
// respects every provider's capacity, assigns each customer at most
// once, and minimizes the total Euclidean distance Ψ(M).
//
// The package exposes:
//
//   - exact solvers: Assign (IDA, the paper's best), AssignRIA,
//     AssignNIA, AssignSSPA (the classical main-memory baseline), and
//     GreedyAssign (the spatial-matching join of the related work);
//   - approximate solvers with theoretical error bounds:
//     AssignApproxSA and AssignApproxCA (Theorems 3 and 4);
//   - a Customers dataset type wrapping the paged, LRU-buffered R-tree,
//     with in-memory and on-disk backends and I/O accounting under the
//     paper's 10 ms/page-fault cost model.
//
// A minimal end-to-end use:
//
//	customers, _ := cca.IndexCustomers(points)
//	providers := []cca.Provider{{Pt: cca.Point{X: 10, Y: 20}, Cap: 3}}
//	result, _ := cca.Assign(providers, customers, nil)
//	for _, pair := range result.Pairs { ... }
package cca

import (
	"fmt"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/rtree"
	"repro/internal/storage"
)

// Point is a location in the plane.
type Point = geo.Point

// Rect is an axis-aligned rectangle (used for data-space hints).
type Rect = geo.Rect

// Provider is a capacitated service provider (q with capacity q.k).
type Provider = core.Provider

// Pair is one (provider, customer) assignment in a matching.
type Pair = core.Pair

// Result is a computed matching with its cost Ψ(M) and run metrics.
type Result = core.Result

// Metrics describes the work an algorithm performed (subgraph size, CPU
// time, simulated I/O time, ...).
type Metrics = core.Metrics

// Options tunes the exact algorithms; nil selects the paper's defaults.
type Options = core.Options

// IOStats aggregates buffer-manager activity.
type IOStats = storage.Stats

// Customer is a point with an identifier, as stored in the R-tree.
type Customer = rtree.Item

// Customers is the customer dataset: an R-tree over paged storage with
// an LRU buffer, as the paper's setting prescribes (§5.1).
type Customers struct {
	tree  *rtree.Tree
	buf   *storage.Buffer
	store storage.Store
	owner bool // this handle owns (and Close closes) the page store
	// id identifies the underlying dataset across handles: clones share
	// it, distinct datasets never do. The engine's cross-instance result
	// cache keys on it, so a recycled pointer can never alias a stale
	// cache entry the way a raw *Customers key could.
	id uint64
}

// datasetIDs hands out process-unique dataset identities.
var datasetIDs atomic.Uint64

// IndexConfig controls how a customer dataset is indexed.
type IndexConfig struct {
	// PageSize is the R-tree page size in bytes (default 1024, the
	// paper's setting).
	PageSize int
	// BufferFraction sizes the LRU buffer as a fraction of the tree
	// (default 0.01, the paper's 1%). Ignored when BufferPages > 0.
	BufferFraction float64
	// BufferPages sizes the LRU buffer in pages directly.
	BufferPages int
	// Path, when non-empty, stores the R-tree in a page file on disk;
	// otherwise an in-memory page store simulates the disk.
	Path string
}

func (c IndexConfig) withDefaults() IndexConfig {
	if c.PageSize <= 0 {
		c.PageSize = storage.DefaultPageSize
	}
	if c.BufferFraction <= 0 {
		c.BufferFraction = 0.01
	}
	return c
}

// IndexCustomers bulk-loads points into a fresh R-tree using the default
// configuration (1 KB pages, in-memory store, 1% LRU buffer).
func IndexCustomers(points []Point) (*Customers, error) {
	return IndexCustomersConfig(points, IndexConfig{})
}

// IndexCustomersConfig bulk-loads points into a fresh R-tree.
func IndexCustomersConfig(points []Point, cfg IndexConfig) (*Customers, error) {
	cfg = cfg.withDefaults()
	items := make([]rtree.Item, len(points))
	for i, p := range points {
		items[i] = rtree.Item{ID: int64(i), Pt: p}
	}
	return IndexItems(items, cfg)
}

// IndexItems bulk-loads pre-identified items into a fresh R-tree.
func IndexItems(items []rtree.Item, cfg IndexConfig) (*Customers, error) {
	cfg = cfg.withDefaults()
	var store storage.Store
	if cfg.Path != "" {
		fs, err := storage.CreateFileStore(cfg.Path, cfg.PageSize)
		if err != nil {
			return nil, err
		}
		store = fs
	} else {
		store = storage.NewMemStore(cfg.PageSize)
	}
	// Bulk-load through a large temporary buffer, then rewrap with the
	// experiment-sized buffer so loading does not distort query stats.
	loadBuf := storage.NewBuffer(store, 1<<20)
	tree, err := rtree.Bulk(loadBuf, items)
	if err != nil {
		store.Close()
		return nil, err
	}
	if err := tree.Flush(); err != nil {
		store.Close()
		return nil, err
	}
	buf := storage.NewBuffer(store, cfg.frames(store))
	reopened, err := rtree.Open(buf)
	if err != nil {
		store.Close()
		return nil, err
	}
	return &Customers{tree: reopened, buf: buf, store: store, owner: true, id: datasetIDs.Add(1)}, nil
}

// frames computes the effective LRU buffer size in pages, clamped to at
// least one frame: a fractional buffer over a small store truncates to
// zero, and relying on storage.NewBuffer's hidden clamp would leave the
// effective size unobservable. Callers can read the result back through
// Customers.BufferFrames.
func (c IndexConfig) frames(store storage.Store) int {
	frames := c.BufferPages
	if frames <= 0 {
		frames = int(c.BufferFraction * float64(store.NumPages()))
	}
	if frames < 1 {
		frames = 1
	}
	return frames
}

// OpenCustomers opens a customer R-tree previously persisted to a page
// file by IndexItems/IndexCustomersConfig with a non-empty Path.
func OpenCustomers(path string, cfg IndexConfig) (*Customers, error) {
	cfg = cfg.withDefaults()
	fs, err := storage.OpenFileStore(path, cfg.PageSize)
	if err != nil {
		return nil, err
	}
	buf := storage.NewBuffer(fs, cfg.frames(fs))
	tree, err := rtree.Open(buf)
	if err != nil {
		fs.Close()
		return nil, err
	}
	return &Customers{tree: tree, buf: buf, store: fs, owner: true, id: datasetIDs.Add(1)}, nil
}

// Clone returns an independent handle onto the same customer data: a
// fresh (cold) LRU buffer of the same capacity over the shared page
// store, with its own I/O counters. Handles never share mutable state,
// so distinct handles can serve queries from distinct goroutines
// concurrently — the batch engine gives each in-flight solve its own
// handle for exactly this reason. Closing a clone does not close the
// shared store; only the original handle's Close does.
func (c *Customers) Clone() (*Customers, error) {
	buf := storage.NewBuffer(c.store, c.buf.Frames())
	tree, err := rtree.Open(buf)
	if err != nil {
		return nil, err
	}
	return &Customers{tree: tree, buf: buf, store: c.store, owner: false, id: c.id}, nil
}

// Len returns the number of indexed customers.
func (c *Customers) Len() int { return c.tree.Size() }

// Pages returns the number of pages in the dataset's page store.
func (c *Customers) Pages() int { return c.store.NumPages() }

// PageSize returns the dataset's page size in bytes.
func (c *Customers) PageSize() int { return c.store.PageSize() }

// BufferResident returns the number of pages currently cached in this
// handle's LRU buffer.
func (c *Customers) BufferResident() int { return c.buf.Resident() }

// BufferFrames returns the effective LRU buffer capacity in pages — the
// explicitly clamped size computed at indexing time.
func (c *Customers) BufferFrames() int { return c.buf.Frames() }

// Tree exposes the underlying R-tree (for advanced use and experiments).
func (c *Customers) Tree() *rtree.Tree { return c.tree }

// IOStats returns the buffer-manager counters accumulated so far.
func (c *Customers) IOStats() IOStats { return c.buf.Stats() }

// ResetIOStats zeroes the I/O counters (the cache content is kept).
func (c *Customers) ResetIOStats() { c.buf.ResetStats() }

// DropCache evicts all buffered pages, forcing a cold start.
func (c *Customers) DropCache() { c.buf.DropCache() }

// All returns every indexed customer.
func (c *Customers) All() ([]Customer, error) { return c.tree.All() }

// RangeSearch returns the customers within Euclidean distance r of
// center (the r-range query of §2.3).
func (c *Customers) RangeSearch(center Point, r float64) ([]Customer, error) {
	return c.tree.RangeSearch(center, r)
}

// KNN returns the k customers closest to q in ascending distance order
// (the K-nearest-neighbor query of §2.3, via best-first search [7]).
func (c *Customers) KNN(q Point, k int) ([]Customer, error) {
	return c.tree.KNN(q, k)
}

// Close releases the underlying page store. On a handle produced by
// Clone it is a no-op: the original handle owns the store.
func (c *Customers) Close() error {
	if !c.owner {
		return nil
	}
	return c.store.Close()
}

// Validate checks a result against the problem definition: every
// provider within capacity, every customer at most once, pair distances
// consistent, and |M| = min(|P|, Σ q.k). It returns nil for a valid
// optimal-size matching.
func Validate(providers []Provider, customers *Customers, res *Result) error {
	used := make([]int, len(providers))
	seen := make(map[int64]bool, len(res.Pairs))
	sum := 0.0
	for _, p := range res.Pairs {
		if p.Provider < 0 || p.Provider >= len(providers) {
			return fmt.Errorf("cca: pair references provider %d of %d", p.Provider, len(providers))
		}
		if seen[p.CustomerID] {
			return fmt.Errorf("cca: customer %d assigned twice", p.CustomerID)
		}
		seen[p.CustomerID] = true
		used[p.Provider]++
		sum += p.Dist
	}
	for q, u := range used {
		if u > providers[q].Cap {
			return fmt.Errorf("cca: provider %d over capacity (%d > %d)", q, u, providers[q].Cap)
		}
	}
	gamma := 0
	for _, p := range providers {
		gamma += p.Cap
	}
	if n := customers.Len(); n < gamma {
		gamma = n
	}
	if res.Size != gamma {
		return fmt.Errorf("cca: matching size %d, want γ = %d", res.Size, gamma)
	}
	if d := sum - res.Cost; d > 1e-6 || d < -1e-6 {
		return fmt.Errorf("cca: cost %v does not match pair sum %v", res.Cost, sum)
	}
	return nil
}
