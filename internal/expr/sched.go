package expr

import (
	"context"
	"sync"

	"repro/internal/sched"
)

// The harness runs every figure sweep through the shared scheduler
// (internal/sched) instead of hand-rolled loops — the same execution
// core that backs cca.Engine. One experiment *point* (one generated
// workload plus the algorithms measured on it) is one scheduled task:
// algorithms within a point stay sequential on a cold-dropped buffer,
// preserving the paper's measurement protocol, while distinct points
// can run concurrently when the caller raises the worker count
// (ccabench -stream). The default of one worker reproduces the
// historical sequential sweep exactly — including CPU-time fidelity,
// which parallel points would perturb.
var (
	poolMu      sync.Mutex
	pool        *sched.Pool
	poolWorkers = 1
)

// SetStreamWorkers sizes the harness scheduler (values < 1 select 1,
// the sequential, measurement-faithful default). Raising it overlaps
// workload generation and solves across figure points — useful for
// shape-only runs where wall-clock matters more than clean CPU timings.
// Call it between sweeps, not during one: resizing closes the current
// pool, and a sweep still submitting to it would see its remaining
// points rejected. (An existing pool does finish its queued points
// before the close returns.)
func SetStreamWorkers(n int) {
	if n < 1 {
		n = 1
	}
	poolMu.Lock()
	var old *sched.Pool
	if pool != nil && poolWorkers != n {
		old = pool
		pool = nil
	}
	poolWorkers = n
	poolMu.Unlock()
	if old != nil {
		old.Close()
	}
}

// StreamWorkers returns the current scheduler width.
func StreamWorkers() int {
	poolMu.Lock()
	defer poolMu.Unlock()
	return poolWorkers
}

// StreamMetrics snapshots the harness scheduler's telemetry (queue
// waits, per-worker utilization); ccabench prints it after a -stream
// run.
func StreamMetrics() sched.Metrics {
	return schedPool().Metrics()
}

func schedPool() *sched.Pool {
	poolMu.Lock()
	defer poolMu.Unlock()
	if pool == nil {
		pool = sched.New(sched.Config{Workers: poolWorkers})
	}
	return pool
}

// runPoints executes one job per experiment point on the shared
// scheduler and concatenates the returned rows in point order, so
// tables read identically no matter how many workers ran the sweep.
// The first error wins; other points still run to completion.
func runPoints(n int, job func(i int) ([]Row, error)) ([]Row, error) {
	type point struct {
		rows []Row
		err  error
	}
	outs := make([]point, n)
	p := schedPool()
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		err := p.Submit(context.Background(), sched.Batch, func(context.Context, sched.TaskInfo) {
			defer wg.Done()
			rows, err := job(i)
			outs[i] = point{rows: rows, err: err}
		})
		if err != nil {
			wg.Done()
			outs[i] = point{err: err}
		}
	}
	wg.Wait()
	var rows []Row
	for _, o := range outs {
		if o.err != nil {
			return nil, o.err
		}
		rows = append(rows, o.rows...)
	}
	return rows, nil
}
