package expr

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
)

// churnBudgets is the ChurnDrift sweep: the unlimited row first (the
// trajectory's CPU anchor and exactness reference), then tightening
// re-opt budgets.
var churnBudgets = []int{0, 1, 2, 8}

// ChurnDrift is the online-matching trajectory behind BENCH_churn.json:
// one ride-hailing churn session (arrivals, departures, capacity
// resizes; 10K events at scale 1) replayed through the dynamic matcher
// under a sweep of re-opt budgets, with a periodic Bellman–Ford full
// re-solve measuring how far each budget lets cost optimality drift.
//
// Row fields, reused from the batch sweeps:
//
//	Label    "exact" (budget 0, every event leaves the optimum) or
//	         "budget=k"
//	CPU      summed event-application time (oracle checks excluded)
//	Cost     final Ψ(M) — deterministic, gated exactly by benchgate
//	Size     final matching size — identical across budgets, because
//	         augmentation is never budgeted
//	Quality  MaxDrift: worst (Ψ − Ψopt)/Ψopt seen at any oracle check
//	Esub     negative residual cycles canceled across the session
//	KeyUpd   augmenting paths applied
//	Faults   events that exhausted the budget and deferred debt
//
// The replayed stream and the repair algorithm are deterministic, so
// every non-CPU field round-trips exactly across machines; cmd/
// benchgate pins them and enforces the drift ceiling in CI.
func ChurnDrift(s float64, out io.Writer) ([]Row, error) {
	p := Default(s)
	events := int(10000 * s)
	if events < 200 {
		events = 200
	}
	// The ridehail live pool is set by the scenario's lifetimes (~25
	// customers in steady state), not by the stream length, so the
	// fleet size is fixed rather than scaled: 6 providers ≈ 20 slots
	// keep capacity scarce, the regime where departures and resizes
	// actually strand repair debt and budgets bind. Scale governs the
	// session length only.
	const fleet = 6
	n := datagen.NewNetwork(32, Space, p.Seed)
	w, err := datagen.NewChurn("ridehail", n, datagen.ChurnConfig{
		Events: events, Providers: fleet, Seed: p.Seed,
	})
	if err != nil {
		return nil, err
	}
	providers := make([]core.Provider, len(w.Providers))
	for i, q := range w.Providers {
		providers[i] = core.Provider{Pt: q.Pt, Cap: q.Cap}
	}
	oracleEvery := events / 25
	if oracleEvery < 1 {
		oracleEvery = 1
	}

	var rows []Row
	for _, budget := range churnBudgets {
		row, err := runChurnSession(providers, w.Events, budget, oracleEvery)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	PrintRows(out, fmt.Sprintf("Online churn drift: ridehail, %d events, |Q|=%d, oracle every %d events",
		events, len(providers), oracleEvery), rows, true)
	fmt.Fprintf(out, "Quality = worst cost drift vs full re-solve; Esub = cycles canceled; KeyUpd = augmenting paths; Faults = deferred events\n")
	return rows, nil
}

// runChurnSession replays one event stream under one budget. Oracle
// checks run outside the timed sections, so CPU measures only the
// incremental repair work the budget is supposed to bound.
func runChurnSession(providers []core.Provider, events []datagen.Event, budget, oracleEvery int) (Row, error) {
	m := core.NewDynamicMatcherOpts(providers, core.DynamicOptions{ReoptBudget: budget})
	var cpu time.Duration
	for i, ev := range events {
		start := time.Now()
		var err error
		switch ev.Kind {
		case datagen.EventArrive:
			_, err = m.Arrive(ev.Pt, ev.ID)
		case datagen.EventDepart:
			_, err = m.Depart(ev.ID)
		case datagen.EventResize:
			err = m.ResizeProvider(ev.Provider, ev.NewCap)
		}
		cpu += time.Since(start)
		if err != nil {
			return Row{}, fmt.Errorf("churn event %d (%v): %w", i, ev.Kind, err)
		}
		if (i+1)%oracleEvery == 0 {
			m.OracleDrift()
		}
	}
	st := m.Stats()
	label := "exact"
	if budget > 0 {
		label = fmt.Sprintf("budget=%d", budget)
	}
	return Row{
		Label:   label,
		Algo:    "dynamic",
		CPU:     cpu,
		Cost:    m.Cost(),
		Size:    m.Size(),
		Quality: st.MaxDrift,
		Esub:    st.Cycles,
		KeyUpd:  st.Augments,
		Faults:  st.Deferred,
	}, nil
}
