package expr

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/rtree"
	"repro/internal/storage"
)

// BaselineScaling reproduces §2.1's claim that the classical main-memory
// baselines stop scaling long before the incremental methods: it runs
// the Hungarian algorithm, SSPA and IDA on growing instances (fixed
// k·|Q|/|P| ratio) and reports CPU time. Expected shape: Hungarian's
// Θ(n³) blows up first, SSPA's Θ(γ·|Q|·|P|) second, while IDA stays
// comfortably ahead; eventually Hungarian refuses outright (matrix too
// large), which is reported as a table note.
func BaselineScaling(s float64, out io.Writer) ([]Row, error) {
	sizes := []struct {
		nq, np, k int
	}{
		{5, 250, 4},
		{10, 1000, 8},
		{20, 4000, 16},
		{40, 16000, 32},
	}
	rows, err := runPoints(len(sizes), func(i int) ([]Row, error) {
		p := Default(s)
		p.NQ = max(1, int(float64(sizes[i].nq)*s*20)) // s=0.05 → the sizes above
		p.NP = max(2, int(float64(sizes[i].np)*s*20))
		p.K = sizes[i].k
		w, err := Build(p)
		if err != nil {
			return nil, err
		}
		label := fmt.Sprintf("|Q|=%d,|P|=%d", p.NQ, p.NP)

		hungRow, err := runExact("hungarian", w, coreOptions(p))
		if err != nil {
			// The §2.1 blow-up: report as an unavailable point.
			hungRow = Row{Algo: "Hungarian(refused)"}
		} else {
			hungRow.Algo = "Hungarian"
		}
		hungRow.Label = label
		rows := []Row{hungRow}

		sspaRow, err := runExact("SSPA", w, coreOptions(p))
		if err != nil {
			return nil, err
		}
		sspaRow.Label = label
		rows = append(rows, sspaRow)

		idaRow, err := runExact("IDA", w, coreOptions(p))
		if err != nil {
			return nil, err
		}
		idaRow.Label = label
		return append(rows, idaRow), nil
	})
	if err != nil {
		return nil, err
	}
	if out != nil {
		PrintRows(out, fmt.Sprintf("Baseline scaling (§2.1): Hungarian vs SSPA vs IDA (scale %g)", s), rows, false)
	}
	return rows, nil
}

// IndexPolicy compares the R-tree construction policies' effect on IDA's
// I/O: STR bulk loading (the evaluation default), dynamic insertion with
// Guttman's quadratic split, and dynamic insertion with the R* split
// [2]. Expected shape: STR (packed, square MBRs) needs the least I/O;
// R* beats quadratic on clustered data; the matching cost is identical
// under all three (the index changes access paths, not the optimum).
func IndexPolicy(s float64, out io.Writer) ([]Row, error) {
	p := Default(s)
	net := datagen.NewNetwork(32, Space, p.Seed)
	qpts := net.Points(datagen.Config{N: p.NQ, Dist: p.DistQ, Seed: p.Seed + 1})
	ppts := net.Points(datagen.Config{N: p.NP, Dist: p.DistP, Seed: p.Seed + 2})
	providers := make([]core.Provider, p.NQ)
	for i := range providers {
		providers[i] = core.Provider{Pt: qpts[i], Cap: p.K}
	}
	items := datagen.Items(ppts)

	build := func(kind string) (*rtree.Tree, *storage.Buffer, error) {
		store := storage.NewMemStore(storage.DefaultPageSize)
		loadBuf := storage.NewBuffer(store, 1<<20)
		var (
			tree *rtree.Tree
			err  error
		)
		switch kind {
		case "STR":
			tree, err = rtree.Bulk(loadBuf, items)
		case "quadratic":
			tree, err = rtree.NewWithPolicy(loadBuf, rtree.Quadratic)
		case "R*":
			tree, err = rtree.NewWithPolicy(loadBuf, rtree.RStar)
		}
		if err != nil {
			return nil, nil, err
		}
		if kind != "STR" {
			for _, it := range items {
				if err := tree.Insert(it); err != nil {
					return nil, nil, err
				}
			}
		}
		if err := tree.Flush(); err != nil {
			return nil, nil, err
		}
		frames := store.NumPages() / 100
		if frames < 4 {
			frames = 4
		}
		buf := storage.NewBuffer(store, frames)
		queryTree, err := rtree.Open(buf)
		return queryTree, buf, err
	}

	kinds := []string{"STR", "quadratic", "R*"}
	rows, err := runPoints(len(kinds), func(i int) ([]Row, error) {
		tree, buf, err := build(kinds[i])
		if err != nil {
			return nil, err
		}
		w := &Workload{Providers: providers, Tree: tree, Buffer: buf, Items: items}
		row, err := runExact("IDA", w, coreOptions(p))
		if err != nil {
			return nil, err
		}
		row.Label = kinds[i]
		return []Row{row}, nil
	})
	if err != nil {
		return nil, err
	}
	if out != nil {
		PrintRows(out, fmt.Sprintf("Index construction policy vs IDA I/O (scale %g)", s), rows, false)
	}
	return rows, nil
}
