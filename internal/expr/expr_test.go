package expr

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// tiny scale keeps the harness tests fast while still exercising every
// figure end to end.
const testScale = 0.01

func TestBuildWorkload(t *testing.T) {
	p := Default(testScale)
	w, err := Build(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Providers) != p.NQ || w.Tree.Size() != p.NP {
		t.Fatalf("workload sizes: %d providers, %d customers; want %d, %d",
			len(w.Providers), w.Tree.Size(), p.NQ, p.NP)
	}
	for _, q := range w.Providers {
		if q.Cap != 80 {
			t.Fatalf("default capacity %d want 80", q.Cap)
		}
		if !Space.Contains(q.Pt) {
			t.Fatalf("provider outside space: %v", q.Pt)
		}
	}
	// Same params → same workload (determinism matters for comparisons).
	w2, err := Build(p)
	if err != nil {
		t.Fatal(err)
	}
	if w.Providers[0].Pt != w2.Providers[0].Pt {
		t.Fatal("workload generation is not deterministic")
	}
}

func TestBuildMixedCaps(t *testing.T) {
	p := Default(testScale)
	p.KLo, p.KHi = 10, 30
	w, err := Build(p)
	if err != nil {
		t.Fatal(err)
	}
	seenDifferent := false
	for _, q := range w.Providers {
		if q.Cap < 10 || q.Cap > 30 {
			t.Fatalf("capacity %d out of range", q.Cap)
		}
		if q.Cap != w.Providers[0].Cap {
			seenDifferent = true
		}
	}
	if !seenDifferent {
		t.Fatal("mixed capacities all equal")
	}
}

// Every exact algorithm must produce identical cost within a figure
// point — the harness depends on it when reporting.
func TestFig9AgreesOnCost(t *testing.T) {
	rows, err := Fig9(testScale, nil)
	if err != nil {
		t.Fatal(err)
	}
	byLabel := map[string][]Row{}
	for _, r := range rows {
		byLabel[r.Label] = append(byLabel[r.Label], r)
	}
	if len(byLabel) != 5 {
		t.Fatalf("expected 5 k-points, got %d", len(byLabel))
	}
	for label, rs := range byLabel {
		if len(rs) != 3 {
			t.Fatalf("%s: %d algorithms", label, len(rs))
		}
		for _, r := range rs[1:] {
			if math.Abs(r.Cost-rs[0].Cost) > 1e-6*(1+rs[0].Cost) {
				t.Fatalf("%s: %s cost %v != %s cost %v",
					label, r.Algo, r.Cost, rs[0].Algo, rs[0].Cost)
			}
		}
		for _, r := range rs {
			if r.Esub > r.Full {
				t.Fatalf("%s/%s: Esub %d exceeds FULL %d", label, r.Algo, r.Esub, r.Full)
			}
		}
	}
}

// Figure 8's headline claim: SSPA is far slower than the incremental
// algorithms on the same instance.
func TestFig8SSPASlower(t *testing.T) {
	rows, err := Fig8(0.02, nil)
	if err != nil {
		t.Fatal(err)
	}
	var sspa, ida float64
	for _, r := range rows {
		if r.Label != "k=80" {
			continue
		}
		switch r.Algo {
		case "SSPA":
			sspa = float64(r.CPU)
		case "IDA":
			ida = float64(r.CPU)
		}
	}
	if sspa == 0 || ida == 0 {
		t.Fatal("missing rows")
	}
	if sspa < ida {
		t.Fatalf("SSPA (%v) should be slower than IDA (%v)", sspa, ida)
	}
}

// Figure 14's quality ratios must be >= 1 and finite, and CA must respect
// Theorem 4 (quality bounded via γ·δ).
func TestFig14Quality(t *testing.T) {
	rows, err := Fig14(testScale, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Quality < 1-1e-9 {
			t.Fatalf("%s at %s: quality %v below 1", r.Algo, r.Label, r.Quality)
		}
		if math.IsInf(r.Quality, 0) || math.IsNaN(r.Quality) {
			t.Fatalf("%s: bad quality %v", r.Algo, r.Quality)
		}
		if r.Algo == "IDA" && math.Abs(r.Quality-1) > 1e-9 {
			t.Fatalf("IDA quality must be exactly 1, got %v", r.Quality)
		}
	}
}

// The ablation harness must keep the optimal cost invariant across
// optimization toggles.
func TestAblationCostInvariant(t *testing.T) {
	rows, err := Ablation(testScale, nil)
	if err != nil {
		t.Fatal(err)
	}
	var optCost float64
	for _, r := range rows {
		if r.Label == "IDA (full)" {
			optCost = r.Cost
		}
	}
	for _, r := range rows {
		if strings.HasPrefix(r.Label, "IDA") || strings.HasPrefix(r.Label, "NIA") {
			if math.Abs(r.Cost-optCost) > 1e-6*(1+optCost) {
				t.Fatalf("%s changed the optimal cost: %v vs %v", r.Label, r.Cost, optCost)
			}
		}
		if r.Label == "SM greedy" && r.Cost < optCost-1e-6 {
			t.Fatalf("greedy cheaper than optimal: %v < %v", r.Cost, optCost)
		}
	}
	// The optimizations must actually matter: disabling ANN costs I/O.
	byLabel := map[string]Row{}
	for _, r := range rows {
		byLabel[r.Label] = r
	}
	if byLabel["IDA -ANN"].Faults <= byLabel["IDA (full)"].Faults {
		t.Errorf("disabling ANN should increase faults: %d vs %d",
			byLabel["IDA -ANN"].Faults, byLabel["IDA (full)"].Faults)
	}
	if byLabel["IDA -PUA"].CPU < byLabel["IDA (full)"].CPU {
		t.Logf("note: -PUA CPU %v < full %v (timing noise possible at tiny scale)",
			byLabel["IDA -PUA"].CPU, byLabel["IDA (full)"].CPU)
	}
}

func TestThetaSensitivity(t *testing.T) {
	rows, err := ThetaSensitivity(testScale, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("got %d rows", len(rows))
	}
	// Smaller θ must issue at least as many range searches → faults grow.
	if rows[0].Faults < rows[len(rows)-1].Faults {
		t.Logf("θ sensitivity: faults %d (small θ) vs %d (large θ)",
			rows[0].Faults, rows[len(rows)-1].Faults)
	}
	base := rows[0].Cost
	for _, r := range rows {
		if math.Abs(r.Cost-base) > 1e-6*(1+base) {
			t.Fatalf("θ changed the optimal cost: %v vs %v", r.Cost, base)
		}
	}
}

// PrintRows must render both table shapes without panicking.
func TestPrintRows(t *testing.T) {
	rows := []Row{{Label: "k=80", Algo: "IDA", Esub: 10, Full: 100, Quality: 1.02}}
	var buf bytes.Buffer
	PrintRows(&buf, "test", rows, false)
	if !strings.Contains(buf.String(), "IDA") {
		t.Fatal("exact table missing content")
	}
	buf.Reset()
	PrintRows(&buf, "test", rows, true)
	if !strings.Contains(buf.String(), "1.02") {
		t.Fatal("quality table missing content")
	}
}

// The distribution figures run end-to-end at tiny scale.
func TestFig13And18Run(t *testing.T) {
	rows, err := Fig13(testScale, nil)
	if err != nil {
		t.Fatal(err)
	}
	labels := map[string]bool{}
	for _, r := range rows {
		labels[r.Label] = true
	}
	for _, want := range []string{"UvsU", "UvsC", "CvsU", "CvsC"} {
		if !labels[want] {
			t.Fatalf("missing combination %s (have %v)", want, labels)
		}
	}
	if _, err := Fig18(testScale, nil); err != nil {
		t.Fatal(err)
	}
}
