package expr

import (
	"fmt"
	"io"

	"repro/internal/datagen"
	"repro/internal/geo/netmetric"
)

// NetBackends is the distance-backend trajectory behind BENCH_net.json:
// one instance (the Table 2 default at the given scale, shard-sweep
// capacities), solved cold by IDA under every network-distance backend
// plus the Euclidean baseline for context. Each network row rebuilds a
// fresh metric, so nothing is amortized across rows — the CPU column is
// the full cold cost including landmark/table preprocessing (the solver
// charges table builds to CPUTime).
//
// Rows:
//
//	euclid    straight-line distance (the paper's setting)
//	bidi      legacy bidirectional Dijkstra point queries — the
//	          pre-ALT baseline benchgate measures speedups against
//	dijkstra  canonical plain forward Dijkstra, landmarks disabled
//	alt       ALT A* with default landmarks (the point-query default)
//	table     ALT plus the bulk many-to-many distance table
//
// dijkstra, alt and table return byte-identical matchings (the root
// conformance suite pins this); bidi agrees only to rounding error,
// which is exactly why it was demoted to a baseline.
func NetBackends(s float64, out io.Writer) ([]Row, error) {
	p := Default(s)
	// The figure sweeps run on the default 32×32 grid (1K nodes), where
	// a point Dijkstra is microseconds and the solver itself dominates —
	// no distance backend could show its shape there (Amdahl caps the
	// end-to-end gain near 1). This sweep is *about* the distance
	// backend, so it uses a road network at a realistic granularity:
	// 128×128 ≈ 16K nodes, the regime ALT and bulk tables exist for.
	const netGrid = 128

	// The workload (points, tree, buffer) is metric-independent; build
	// it once and swap a fresh metric in per row so every solve is cold.
	w, err := BuildOnGrid(p, netGrid)
	if err != nil {
		return nil, err
	}

	backends := []struct {
		name  string
		setup func(m *netmetric.NetworkMetric) // nil = Euclidean row
		table int                              // core.Options.DistTable for the row
	}{
		{"euclid", nil, 0},
		{"bidi", func(m *netmetric.NetworkMetric) { m.SetLandmarks(0); m.SetLegacyBidi(true) }, -1},
		{"dijkstra", func(m *netmetric.NetworkMetric) { m.SetLandmarks(0) }, -1},
		{"alt", func(m *netmetric.NetworkMetric) {}, -1},
		{"table", func(m *netmetric.NetworkMetric) {}, 0},
	}

	var rows []Row
	for _, b := range backends {
		if b.setup == nil {
			w.Metric = nil
		} else {
			m := netmetric.FromNetwork(datagen.NewNetwork(netGrid, Space, p.Seed))
			b.setup(m)
			w.Metric = m
		}
		opts := coreOptions(p)
		opts.DistTable = b.table
		row, err := runExact("ida", w, opts)
		if err != nil {
			return nil, err
		}
		row.Label = b.name
		rows = append(rows, row)
	}
	PrintRows(out, fmt.Sprintf("Network distance backends: cold ida solves, |Q|=%d |P|=%d k(cap)=%d",
		p.NQ, p.NP, p.K), rows, false)

	speedup := func(name string) float64 {
		for _, r := range rows {
			if r.Label == name && r.CPU > 0 {
				return float64(rows[1].CPU) / float64(r.CPU)
			}
		}
		return 0
	}
	fmt.Fprintf(out, "cold-solve speedup vs bidi baseline: dijkstra %.2fx, alt %.2fx, table %.2fx\n",
		speedup("dijkstra"), speedup("alt"), speedup("table"))
	return rows, nil
}
