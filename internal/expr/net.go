package expr

import (
	"fmt"
	"io"
	"time"

	"repro/internal/datagen"
	"repro/internal/geo"
	"repro/internal/geo/netmetric"
)

// NetBackends is the distance-backend trajectory behind BENCH_net.json:
// one instance (the Table 2 default at the given scale, shard-sweep
// capacities), solved cold by IDA under every network-distance backend
// plus the Euclidean baseline for context. Each network row rebuilds a
// fresh metric, so nothing is amortized across rows — the CPU column is
// the full cold cost including landmark/table preprocessing (the solver
// charges table builds to CPUTime).
//
// Rows:
//
//	euclid    straight-line distance (the paper's setting)
//	bidi      legacy bidirectional Dijkstra point queries — the
//	          pre-ALT baseline benchgate measures speedups against
//	dijkstra  canonical plain forward Dijkstra, landmarks disabled
//	alt       ALT A* with default landmarks (the point-query default)
//	ch        contraction-hierarchy point queries (table disabled, so
//	          the row isolates the cold point-query win over alt)
//	table     ALT plus the bulk many-to-many distance table
//
// dijkstra, alt, ch and table return byte-identical matchings (the
// root conformance suite pins this); bidi agrees only to rounding
// error, which is exactly why it was demoted to a baseline. The
// pre-existing rows pin SetCH(0) so automatic CH enablement (16K nodes
// clears DefaultCHMinNodes) cannot reroute their point queries.
//
// Every network row also records QueryNS, the mean cold point-query
// latency of its backend measured by coldQueryNS on a second fresh
// metric. The solve CPU column answers "what does a whole assignment
// cost end to end" — where Amdahl caps any backend's win at the
// solver's share — while QueryNS answers "what does one uncached
// distance cost", the figure the CH hierarchy exists to shrink and the
// one benchgate's CH-vs-ALT floor gates on.
func NetBackends(s float64, out io.Writer) ([]Row, error) {
	p := Default(s)
	// The figure sweeps run on the default 32×32 grid (1K nodes), where
	// a point Dijkstra is microseconds and the solver itself dominates —
	// no distance backend could show its shape there (Amdahl caps the
	// end-to-end gain near 1). This sweep is *about* the distance
	// backend, so it uses a road network at a realistic granularity:
	// 128×128 ≈ 16K nodes, the regime ALT and bulk tables exist for.
	const netGrid = 128

	// The workload (points, tree, buffer) is metric-independent; build
	// it once and swap a fresh metric in per row so every solve is cold.
	w, err := BuildOnGrid(p, netGrid)
	if err != nil {
		return nil, err
	}

	backends := []struct {
		name  string
		setup func(m *netmetric.NetworkMetric) // nil = Euclidean row
		table int                              // core.Options.DistTable for the row
	}{
		{"euclid", nil, 0},
		{"bidi", func(m *netmetric.NetworkMetric) { m.SetLandmarks(0); m.SetLegacyBidi(true); m.SetCH(0) }, -1},
		{"dijkstra", func(m *netmetric.NetworkMetric) { m.SetLandmarks(0); m.SetCH(0) }, -1},
		{"alt", func(m *netmetric.NetworkMetric) { m.SetCH(0) }, -1},
		{"ch", func(m *netmetric.NetworkMetric) { m.SetCH(1) }, -1},
		{"table", func(m *netmetric.NetworkMetric) { m.SetCH(0) }, 0},
	}

	var rows []Row
	for _, b := range backends {
		if b.setup == nil {
			w.Metric = nil
		} else {
			m := netmetric.FromNetwork(datagen.NewNetwork(netGrid, Space, p.Seed))
			b.setup(m)
			w.Metric = m
		}
		opts := coreOptions(p)
		opts.DistTable = b.table
		row, err := runExact("ida", w, opts)
		if err != nil {
			return nil, err
		}
		row.Label = b.name
		if b.setup != nil {
			// Cold point-query latency on a *second* fresh metric, so the
			// measurement never warms the solve (which stays cold) and the
			// solve never warms the measurement. This is the per-query
			// figure benchgate's CH floor gates on; preprocessing (landmark
			// selection, hierarchy construction) is excluded — the CPU
			// column already charges it to the cold solve.
			mq := netmetric.FromNetwork(datagen.NewNetwork(netGrid, Space, p.Seed))
			b.setup(mq)
			row.QueryNS = coldQueryNS(mq, w)
		}
		rows = append(rows, row)
	}
	PrintRows(out, fmt.Sprintf("Network distance backends: cold ida solves, |Q|=%d |P|=%d k(cap)=%d",
		p.NQ, p.NP, p.K), rows, false)

	speedup := func(name string) float64 {
		for _, r := range rows {
			if r.Label == name && r.CPU > 0 {
				return float64(rows[1].CPU) / float64(r.CPU)
			}
		}
		return 0
	}
	fmt.Fprintf(out, "cold-solve speedup vs bidi baseline: dijkstra %.2fx, alt %.2fx, ch %.2fx, table %.2fx\n",
		speedup("dijkstra"), speedup("alt"), speedup("ch"), speedup("table"))
	query := func(name string) time.Duration {
		for _, r := range rows {
			if r.Label == name {
				return r.QueryNS
			}
		}
		return 0
	}
	if qa, qc := query("alt"), query("ch"); qa > 0 && qc > 0 {
		fmt.Fprintf(out, "cold point query: alt %v, ch %v (%.1fx)\n",
			qa.Round(time.Microsecond), qc.Round(time.Microsecond), float64(qa)/float64(qc))
	}
	return rows, nil
}

// queryProbes is the number of cold point queries coldQueryNS averages
// over. Distinct customer endpoints keep every probe a first touch;
// 256 is enough to swamp timer noise on either side of the ~100x
// dijkstra-vs-CH spread without warming a meaningful share of the
// working set.
const queryProbes = 256

// coldQueryNS measures the mean cold point-query latency of a fresh
// metric against the sweep's own workload: probe i pairs provider
// i mod |Q| with customer i, so every probe is a pair the metric has
// never answered (caches empty, cones unbuilt). One untimed warmup
// query on customer points outside the probe range forces the one-off
// preprocessing (landmark selection, hierarchy construction) first —
// those are charged to the cold-solve CPU column, not to the per-query
// figure this feeds benchgate's CH floor.
func coldQueryNS(m geo.Metric, w *Workload) time.Duration {
	if len(w.Providers) == 0 || len(w.Items) <= queryProbes+1 {
		return 0
	}
	m.Dist(w.Items[queryProbes].Pt, w.Items[queryProbes+1].Pt)
	var sink float64
	start := time.Now()
	for i := 0; i < queryProbes; i++ {
		sink += m.Dist(w.Providers[i%len(w.Providers)].Pt, w.Items[i].Pt)
	}
	el := time.Since(start)
	if sink < 0 {
		panic("negative distance sum")
	}
	return el / queryProbes
}
