// Package expr is the experiment harness: it regenerates every figure of
// the paper's evaluation (§5, Figures 8–18) as printed tables with the
// same series the paper plots — subgraph size |Esub|, CPU time, simulated
// I/O time (10 ms per page fault), and, for the approximate methods,
// assignment quality Ψ(M)/Ψ(M_CCA).
//
// Absolute numbers differ from the paper's 2008 C++/Pentium-D testbed;
// the harness exists to reproduce the *shapes*: who wins, by what factor,
// and where behaviour changes (e.g. the k·|Q| vs |P| crossover).
//
// Every figure accepts a scale factor that proportionally shrinks |Q| and
// |P| (capacities are kept, preserving the k·|Q|/|P| ratios that drive
// the trends), so the full sweep finishes on a laptop; scale=1 reproduces
// the paper's cardinalities.
package expr

import (
	"context"
	"fmt"
	"io"
	"math"
	"strings"
	"text/tabwriter"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/geo"
	"repro/internal/geo/netmetric"
	"repro/internal/rtree"
	"repro/internal/solver"
	"repro/internal/storage"
)

// Space is the normalized data space of §5.1.
var Space = geo.Rect{Min: geo.Point{X: 0, Y: 0}, Max: geo.Point{X: 1000, Y: 1000}}

// metricName selects the distance backend every Build attaches to its
// workload: "euclidean" (the paper's setting, default) or "network"
// (shortest-path distance over the same road network the points are
// generated on). ccabench's -metric flag sets it.
var metricName = geo.Euclidean.Name()

// SetMetric selects the distance backend by name.
func SetMetric(name string) error {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "", geo.Euclidean.Name():
		metricName = geo.Euclidean.Name()
	case netmetric.Name:
		metricName = netmetric.Name
	default:
		return fmt.Errorf("expr: unknown metric %q (available: %s, %s)",
			name, geo.Euclidean.Name(), netmetric.Name)
	}
	return nil
}

// MetricName returns the selected distance backend's name.
func MetricName() string { return metricName }

// netLandmarks carries ccabench's -landmarks flag into every network
// workload: -1 = the package default, 0 = landmark pruning disabled
// (plain Dijkstra point queries), positive = explicit count. Purely a
// performance knob — distances are byte-identical either way.
var netLandmarks = -1

// netDistTable carries ccabench's -table flag into every sweep's
// options (core.Options.DistTable encoding: 0 auto, -1 off, positive =
// budget in float64 cells).
var netDistTable = 0

// SetLandmarks sets the ALT landmark count for network workloads.
func SetLandmarks(k int) { netLandmarks = k }

// netCH carries ccabench's -ch flag into every network workload:
// -1 = automatic by network size (the package default), 0 = hierarchy
// disabled, 1 = forced on. Purely a performance knob — distances are
// byte-identical either way.
var netCH = -1

// SetCH sets the contraction-hierarchy mode for network workloads.
func SetCH(v int) { netCH = v }

// SetDistTable sets the bulk distance-table gate threaded into every
// sweep's options.
func SetDistTable(v int) { netDistTable = v }

// Params describes one experiment configuration (Table 2 plus
// distribution selectors and a seed).
type Params struct {
	NQ    int // |Q|
	NP    int // |P|
	K     int // capacity (used when KLo==KHi==0)
	KLo   int // mixed capacities: lower bound (Fig 12)
	KHi   int // mixed capacities: upper bound
	DistQ datagen.Distribution
	DistP datagen.Distribution
	Theta float64 // RIA θ
	Seed  int64
}

// Default returns the paper's default setting (Table 2) scaled by s:
// |Q| = 1000·s, |P| = 100000·s, k = 80. The paper fine-tunes RIA's θ to
// 0.8 "for fairness" at its density; density scales with s, so
// nearest-neighbor distances (and the appropriate θ) scale with 1/√s.
// The constant is re-tuned for this harness's workloads with the
// ThetaSensitivity sweep (total time is minimized near θ ≈ 8/√s; see
// EXPERIMENTS.md).
func Default(s float64) Params {
	return Params{
		NQ:    max(1, int(1000*s)),
		NP:    max(2, int(100000*s)),
		K:     80,
		DistQ: datagen.Clustered,
		DistP: datagen.Clustered,
		Theta: 8 / math.Sqrt(s),
		Seed:  2008,
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Workload is a generated problem instance.
type Workload struct {
	Providers []core.Provider
	Tree      *rtree.Tree
	Buffer    *storage.Buffer
	Items     []rtree.Item
	// Metric is the distance backend the workload was built for; nil
	// means Euclidean. The shortest-path metric shares the road network
	// the points were placed on, so network distances are meaningful
	// travel distances, not detours to an unrelated graph.
	Metric geo.Metric
}

// Dataset adapts the workload for registry solvers. The items are
// served from memory, so the main-memory baselines (SSPA, Hungarian)
// incur no tree I/O — matching how the paper charges them.
func (w *Workload) Dataset() solver.Dataset {
	return solver.FromTreeItems(w.Tree, w.Items)
}

// Build generates a workload: points on a synthetic road network
// (§5.1's recipe), customers bulk-loaded into a 1 KB-page R-tree with a
// 1% LRU buffer.
func Build(p Params) (*Workload, error) {
	return BuildOnGrid(p, 32)
}

// BuildOnGrid is Build with an explicit road-network grid size. The
// figure sweeps all use the default 32 (1K nodes); the net-backend
// sweep uses a finer grid, where shortest-path cost actually matters.
func BuildOnGrid(p Params, grid int) (*Workload, error) {
	net := datagen.NewNetwork(grid, Space, p.Seed)
	var metric geo.Metric
	if metricName == netmetric.Name {
		m := netmetric.FromNetwork(net)
		m.SetLandmarks(netLandmarks)
		m.SetCH(netCH)
		metric = m
	}
	qpts := net.Points(datagen.Config{N: p.NQ, Dist: p.DistQ, Seed: p.Seed + 1})
	ppts := net.Points(datagen.Config{N: p.NP, Dist: p.DistP, Seed: p.Seed + 2})

	caps := datagen.Capacities(p.NQ, p.kLo(), p.kHi(), p.Seed+3)
	providers := make([]core.Provider, p.NQ)
	for i := range providers {
		providers[i] = core.Provider{Pt: qpts[i], Cap: caps[i]}
	}
	items := datagen.Items(ppts)

	store := storage.NewMemStore(storage.DefaultPageSize)
	loadBuf := storage.NewBuffer(store, 1<<20)
	tree, err := rtree.Bulk(loadBuf, items)
	if err != nil {
		return nil, err
	}
	// Query through the experiment buffer: 1% of the tree (min 4 pages).
	frames := store.NumPages() / 100
	if frames < 4 {
		frames = 4
	}
	buf := storage.NewBuffer(store, frames)
	if err := tree.Flush(); err != nil {
		return nil, err
	}
	queryTree, err := rtree.Open(buf)
	if err != nil {
		return nil, err
	}
	return &Workload{Providers: providers, Tree: queryTree, Buffer: buf, Items: items, Metric: metric}, nil
}

func (p Params) kLo() int {
	if p.KLo > 0 {
		return p.KLo
	}
	return p.K
}

func (p Params) kHi() int {
	if p.KHi > 0 {
		return p.KHi
	}
	return p.K
}

// Row is one measurement: an (experiment point, algorithm) pair.
type Row struct {
	Label    string // x-axis value, e.g. "k=80" or "UvsC"
	Algo     string
	Esub     int
	Full     int
	CPU      time.Duration
	IO       time.Duration
	Faults   int
	Cost     float64
	Quality  float64 // Ψ/Ψopt for approximate methods (0 when unset)
	Size     int
	KeyUpd   int // IDA key updates
	Augments int // augmenting iterations run (successful augmentations)
	// QueryNS is the mean cold point-query latency of the row's distance
	// backend, measured on a fresh metric separate from the solve (net
	// sweep only; 0 elsewhere and in pre-measurement baselines).
	QueryNS time.Duration
}

// runExact executes one algorithm cold (cache dropped, stats reset) by
// registry name and converts the result into a Row.
func runExact(algo string, w *Workload, opts core.Options) (Row, error) {
	s, err := solver.Get(algo)
	if err != nil {
		return Row{}, fmt.Errorf("expr: %w", err)
	}
	if w.Metric != nil {
		opts.Metric = w.Metric
	}
	w.Buffer.DropCache()
	w.Buffer.ResetStats()
	res, err := s.Solve(context.Background(), w.Providers, w.Dataset(), solver.Options{Core: opts})
	if err != nil {
		return Row{}, fmt.Errorf("expr: %s: %w", algo, err)
	}
	return Row{
		Algo:     algo,
		Esub:     res.Metrics.SubgraphEdges,
		Full:     res.Metrics.FullGraphEdges,
		CPU:      res.Metrics.CPUTime,
		IO:       res.Metrics.IOTime,
		Faults:   res.Metrics.IO.Faults,
		Cost:     res.Cost,
		Size:     res.Size,
		KeyUpd:   res.Metrics.KeyUpdates,
		Augments: res.Metrics.Augments,
	}, nil
}

// PrintRows renders rows as an aligned table.
func PrintRows(out io.Writer, title string, rows []Row, withQuality bool) {
	fmt.Fprintf(out, "\n%s\n", title)
	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	if withQuality {
		fmt.Fprintln(tw, "point\talgo\tquality\tcpu\tio\ttotal\tcost")
		for _, r := range rows {
			fmt.Fprintf(tw, "%s\t%s\t%.4f\t%v\t%v\t%v\t%.1f\n",
				r.Label, r.Algo, r.Quality, r.CPU.Round(time.Millisecond),
				r.IO.Round(time.Millisecond), (r.CPU + r.IO).Round(time.Millisecond), r.Cost)
		}
	} else {
		fmt.Fprintln(tw, "point\talgo\t|Esub|\t|FULL|\tcpu\tio\ttotal\tfaults\tcost")
		for _, r := range rows {
			fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%v\t%v\t%v\t%d\t%.1f\n",
				r.Label, r.Algo, r.Esub, r.Full, r.CPU.Round(time.Millisecond),
				r.IO.Round(time.Millisecond), (r.CPU + r.IO).Round(time.Millisecond),
				r.Faults, r.Cost)
		}
	}
	tw.Flush()
}
