package expr

import (
	"fmt"
	"io"
	"runtime"
)

// shardCount is the region count ccabench's -shards flag applies to
// every sweep (0 = the shard layer's data-derived automatic count). It
// only matters for sharded:* solvers selected via -algos.
var shardCount = 0

// SetShards sets the shard count threaded into every sweep's options
// (ccabench's -shards flag).
func SetShards(k int) { shardCount = k }

// ShardScaling is the sharded-solving trajectory behind
// BENCH_shard.json: one large instance (the Table 2 default at the
// given scale), solved serially by the base and then by sharded:<base>
// across a shard-count sweep. Expected shape: wall time drops toward
// serial/min(k, cores) while the cost column stays within the
// documented gap of the serial optimum — the measured tradeoff the
// README's "Sharded solving" section quotes.
func ShardScaling(s float64, out io.Writer) ([]Row, error) {
	p := Default(s)
	p.K = 8 // smaller capacities keep the serial baseline tractable at any scale
	w, err := Build(p)
	if err != nil {
		return nil, err
	}
	base := "ida"
	var rows []Row
	serial, err := runExact(base, w, coreOptions(p))
	if err != nil {
		return nil, err
	}
	serial.Label = "serial"
	rows = append(rows, serial)
	for _, k := range []int{2, 4, 8} {
		opts := coreOptions(p)
		opts.Shards = k
		row, err := runExact("sharded:"+base, w, opts)
		if err != nil {
			return nil, err
		}
		row.Label = fmt.Sprintf("k=%d", k)
		row.Quality = row.Cost / serial.Cost
		rows = append(rows, row)
	}
	PrintRows(out, fmt.Sprintf("Sharded scaling: %s vs sharded:%s, |Q|=%d |P|=%d k(cap)=%d, %d workers",
		base, base, p.NQ, p.NP, p.K, runtime.GOMAXPROCS(0)), rows, true)
	return rows, nil
}
