package expr

import (
	"math"
	"testing"

	"repro/internal/geo"
)

// TestSetMetric: selection, validation, and the workload actually
// carrying the backend. Restores the default so sibling tests keep
// running under Euclidean.
func TestSetMetric(t *testing.T) {
	defer func() {
		if err := SetMetric("euclidean"); err != nil {
			t.Fatal(err)
		}
	}()
	if err := SetMetric("no-such-metric"); err == nil {
		t.Fatal("bogus metric accepted")
	}
	if MetricName() != "euclidean" {
		t.Fatalf("failed SetMetric changed the selection to %q", MetricName())
	}
	if err := SetMetric("Network"); err != nil { // case-insensitive
		t.Fatal(err)
	}
	if MetricName() != "network" {
		t.Fatalf("MetricName = %q want network", MetricName())
	}
	w, err := Build(Default(testScale))
	if err != nil {
		t.Fatal(err)
	}
	if w.Metric == nil || w.Metric.Name() != "network" {
		t.Fatalf("network workload carries metric %v", w.Metric)
	}
}

// TestNetworkMetricFigurePoint runs one exact figure point under the
// network backend: all exact algorithms must agree on cost, and that
// cost must dominate the Euclidean one (network distance lower-bounds).
func TestNetworkMetricFigurePoint(t *testing.T) {
	p := Default(testScale)
	euclid, err := Build(p)
	if err != nil {
		t.Fatal(err)
	}
	baseRow, err := runExact("ida", euclid, coreOptions(p))
	if err != nil {
		t.Fatal(err)
	}

	if err := SetMetric("network"); err != nil {
		t.Fatal(err)
	}
	defer SetMetric("euclidean")
	w, err := Build(p)
	if err != nil {
		t.Fatal(err)
	}
	var costs []float64
	for _, algo := range []string{"ida", "nia", "ria"} {
		row, err := runExact(algo, w, coreOptions(p))
		if err != nil {
			t.Fatal(err)
		}
		costs = append(costs, row.Cost)
	}
	for _, c := range costs[1:] {
		if math.Abs(c-costs[0]) > 1e-6*(1+costs[0]) {
			t.Fatalf("exact algorithms disagree under network metric: %v", costs)
		}
	}
	if costs[0] < baseRow.Cost-1e-6 {
		t.Fatalf("network-metric cost %.3f below Euclidean optimum %.3f (violates the lower bound)",
			costs[0], baseRow.Cost)
	}
	var _ geo.Metric = w.Metric // the workload exposes the backend to callers
}
