package expr

import (
	"fmt"
	"testing"
)

// stripTiming zeroes the wall-clock field so rows can be compared across
// scheduler widths; everything else (labels, algorithms, subgraph sizes,
// fault counts, costs) is deterministic per point.
func stripTiming(rows []Row) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		r.CPU = 0
		out[i] = fmt.Sprintf("%+v", r)
	}
	return out
}

// TestStreamWorkersEquivalence: running a figure sweep on a wide
// scheduler returns the same rows in the same order as the sequential
// default — points are independent workloads and runPoints re-assembles
// them in point order.
func TestStreamWorkersEquivalence(t *testing.T) {
	SetStreamWorkers(1)
	seq, err := Fig9(testScale, nil)
	if err != nil {
		t.Fatal(err)
	}
	SetStreamWorkers(4)
	defer SetStreamWorkers(1)
	par, err := Fig9(testScale, nil)
	if err != nil {
		t.Fatal(err)
	}
	a, b := stripTiming(seq), stripTiming(par)
	if len(a) != len(b) {
		t.Fatalf("row counts diverged: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("row %d diverged across scheduler widths:\nseq: %s\npar: %s", i, a[i], b[i])
		}
	}
	if StreamWorkers() != 4 {
		t.Errorf("StreamWorkers = %d, want 4", StreamWorkers())
	}
	m := StreamMetrics()
	if m.Workers != 4 || m.Completed == 0 {
		t.Errorf("stream metrics %+v, want 4 workers with completed points", m)
	}
}
