package expr

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/solver"
)

// exactAlgos are the incremental methods compared in Figures 9–13,
// resolved by name through the solver registry.
var exactAlgos = []string{"RIA", "NIA", "IDA"}

// SetExactAlgos overrides the solver set swept by Figures 9–13 after
// validating every name against the registry (ccabench's -algos flag).
func SetExactAlgos(names []string) error {
	for _, n := range names {
		if _, err := solver.Get(n); err != nil {
			return err
		}
	}
	exactAlgos = names
	return nil
}

// ExactAlgos returns the solver names currently swept by Figures 9–13.
func ExactAlgos() []string { return append([]string(nil), exactAlgos...) }

// sweepExact runs the exact algorithms over a list of parameter points,
// one scheduled task per point (see runPoints): the algorithms within a
// point stay sequential on the point's own workload, points overlap
// when the scheduler has more than one worker.
func sweepExact(points []Params, labels []string, algos []string) ([]Row, error) {
	return runPoints(len(points), func(i int) ([]Row, error) {
		w, err := Build(points[i])
		if err != nil {
			return nil, err
		}
		var rows []Row
		for _, algo := range algos {
			row, err := runExact(algo, w, coreOptions(points[i]))
			if err != nil {
				return nil, err
			}
			row.Label = labels[i]
			rows = append(rows, row)
		}
		return rows, nil
	})
}

func coreOptions(p Params) core.Options {
	return core.Options{Theta: p.Theta, Space: Space, Shards: shardCount, DistTable: netDistTable}
}

// Fig8 reproduces Figure 8: CPU time vs capacity k on the small instance
// (|Q| = 250·s, |P| = 25000·s, memory R-tree) including the SSPA
// baseline. Expected shape: SSPA is one to three orders of magnitude
// slower than RIA/NIA/IDA across all k.
func Fig8(s float64, out io.Writer) ([]Row, error) {
	ks := []int{20, 40, 80, 160, 320}
	points := make([]Params, len(ks))
	labels := make([]string, len(ks))
	for i, k := range ks {
		p := Default(s)
		p.NQ = max(1, int(250*s))
		p.NP = max(2, int(25000*s))
		p.K = k
		points[i] = p
		labels[i] = fmt.Sprintf("k=%d", k)
	}
	rows, err := sweepExact(points, labels, []string{"SSPA", "RIA", "NIA", "IDA"})
	if err != nil {
		return nil, err
	}
	if out != nil {
		PrintRows(out, fmt.Sprintf("Figure 8: CPU time vs k (small instance, scale %g, SSPA baseline)", s), rows, false)
	}
	return rows, nil
}

// Fig9 reproduces Figure 9: |Esub| and total time vs capacity k at the
// default cardinalities. Expected shape: |Esub| ≪ FULL for all methods;
// IDA explores the fewest edges while k·|Q| < |P|, and the advantage
// disappears once k·|Q| > |P|.
func Fig9(s float64, out io.Writer) ([]Row, error) {
	ks := []int{20, 40, 80, 160, 320}
	points := make([]Params, len(ks))
	labels := make([]string, len(ks))
	for i, k := range ks {
		p := Default(s)
		p.K = k
		points[i] = p
		labels[i] = fmt.Sprintf("k=%d", k)
	}
	rows, err := sweepExact(points, labels, exactAlgos)
	if err != nil {
		return nil, err
	}
	if out != nil {
		PrintRows(out, fmt.Sprintf("Figure 9: |Esub| and time vs k (scale %g)", s), rows, false)
	}
	return rows, nil
}

// Fig10 reproduces Figure 10: performance vs |Q| ∈ {0.25, 0.5, 1, 2.5,
// 5}K (scaled). Expected shape: cost grows with |Q| but saturates once
// k·|Q| > |P|.
func Fig10(s float64, out io.Writer) ([]Row, error) {
	qs := []int{250, 500, 1000, 2500, 5000}
	var points []Params
	var labels []string
	for _, nq := range qs {
		p := Default(s)
		p.NQ = max(1, int(float64(nq)*s))
		points = append(points, p)
		labels = append(labels, fmt.Sprintf("|Q|=%g", float64(nq)/1000))
	}
	rows, err := sweepExact(points, labels, exactAlgos)
	if err != nil {
		return nil, err
	}
	if out != nil {
		PrintRows(out, fmt.Sprintf("Figure 10: performance vs |Q| (scale %g)", s), rows, false)
	}
	return rows, nil
}

// Fig11 reproduces Figure 11: performance vs |P| ∈ {25, 50, 100, 150,
// 200}K (scaled). Expected shape: the subgraph *shrinks* as |P| grows
// (denser customers mean closer NNs), modulo an I/O bump when the R-tree
// gains a level.
func Fig11(s float64, out io.Writer) ([]Row, error) {
	ps := []int{25000, 50000, 100000, 150000, 200000}
	var points []Params
	var labels []string
	for _, np := range ps {
		p := Default(s)
		p.NP = max(2, int(float64(np)*s))
		points = append(points, p)
		labels = append(labels, fmt.Sprintf("|P|=%dK", np/1000))
	}
	rows, err := sweepExact(points, labels, exactAlgos)
	if err != nil {
		return nil, err
	}
	if out != nil {
		PrintRows(out, fmt.Sprintf("Figure 11: performance vs |P| (scale %g)", s), rows, false)
	}
	return rows, nil
}

// Fig12 reproduces Figure 12: mixed capacities drawn uniformly from the
// labelled ranges. Expected shape: same trends as Figure 9 — mixing does
// not hurt the pruning.
func Fig12(s float64, out io.Writer) ([]Row, error) {
	ranges := [][2]int{{10, 30}, {20, 60}, {40, 120}, {80, 240}, {160, 480}}
	var points []Params
	var labels []string
	for _, r := range ranges {
		p := Default(s)
		p.KLo, p.KHi = r[0], r[1]
		points = append(points, p)
		labels = append(labels, fmt.Sprintf("%d~%d", r[0], r[1]))
	}
	rows, err := sweepExact(points, labels, exactAlgos)
	if err != nil {
		return nil, err
	}
	if out != nil {
		PrintRows(out, fmt.Sprintf("Figure 12: mixed capacities (scale %g)", s), rows, false)
	}
	return rows, nil
}

// Fig13 reproduces Figure 13: every combination of uniform/clustered Q
// and P. Expected shape: differently-distributed Q and P inflate |Esub|
// and cost substantially, and NIA falls behind RIA there (one-by-one
// edge retrieval is invoked too many times).
func Fig13(s float64, out io.Writer) ([]Row, error) {
	combos := []struct {
		q, p datagen.Distribution
	}{
		{datagen.Uniform, datagen.Uniform},
		{datagen.Uniform, datagen.Clustered},
		{datagen.Clustered, datagen.Uniform},
		{datagen.Clustered, datagen.Clustered},
	}
	var points []Params
	var labels []string
	for _, c := range combos {
		p := Default(s)
		p.DistQ, p.DistP = c.q, c.p
		points = append(points, p)
		labels = append(labels, fmt.Sprintf("%svs%s", c.q, c.p))
	}
	rows, err := sweepExact(points, labels, exactAlgos)
	if err != nil {
		return nil, err
	}
	if out != nil {
		PrintRows(out, fmt.Sprintf("Figure 13: distribution combinations (scale %g)", s), rows, false)
	}
	return rows, nil
}
