package expr

import (
	"context"
	"fmt"
	"io"
	"time"

	"repro/internal/approx"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/solver"
)

// approxVariant names one approximate configuration: a registry solver
// (sa or ca) with the NN-based ("N") or exclusive-NN ("E") refinement —
// the paper's SAN, SAE, CAN, CAE series.
type approxVariant struct {
	name   string
	solver string
	refine solver.Refinement
}

var approxVariants = []approxVariant{
	{"SAN", "sa", solver.RefineNN},
	{"SAE", "sa", solver.RefineExclusive},
	{"CAN", "ca", solver.RefineNN},
	{"CAE", "ca", solver.RefineExclusive},
}

// runApprox executes one approximate variant cold and fills a Row; opt
// is the optimal cost used for the quality ratio.
func runApprox(v approxVariant, w *Workload, delta float64, opt float64) (Row, error) {
	s, err := solver.Get(v.solver)
	if err != nil {
		return Row{}, fmt.Errorf("expr: %w", err)
	}
	w.Buffer.DropCache()
	w.Buffer.ResetStats()
	io0 := w.Buffer.Stats()
	// The workload's metric rides along so the quality ratio compares
	// costs measured the same way as the exact reference. (Theorems 3–4
	// bound the error for the Euclidean metric only.)
	opts := solver.Options{Delta: delta, Refinement: v.refine, Core: core.Options{Space: Space, Metric: w.Metric}}
	res, err := s.Solve(context.Background(), w.Providers, w.Dataset(), opts)
	if err != nil {
		return Row{}, fmt.Errorf("expr: %s: %w", v.name, err)
	}
	ioN := w.Buffer.Stats()
	faults := ioN.Faults - io0.Faults
	quality := 1.0
	if opt > 0 {
		quality = res.Cost / opt
	}
	return Row{
		Algo:    v.name,
		Esub:    res.ConciseEdges,
		CPU:     res.Metrics.CPUTime,
		IO:      time.Duration(faults) * 10 * time.Millisecond,
		Faults:  faults,
		Cost:    res.Cost,
		Quality: quality,
		Size:    res.Size,
	}, nil
}

// deltaFor returns the paper's tuned δ per method (40 for SA, 10 for CA)
// used by Figures 15–18.
func deltaFor(v approxVariant) float64 {
	if v.solver == "sa" {
		return approx.DefaultDeltaSA
	}
	return approx.DefaultDeltaCA
}

// approxPoint measures IDA (as both the exact reference and a series of
// its own) plus all four approximate variants at one parameter point.
func approxPoint(p Params, label string, deltas func(approxVariant) float64) ([]Row, error) {
	w, err := Build(p)
	if err != nil {
		return nil, err
	}
	idaRow, err := runExact("IDA", w, coreOptions(p))
	if err != nil {
		return nil, err
	}
	idaRow.Label = label
	idaRow.Quality = 1
	rows := []Row{idaRow}
	for _, v := range approxVariants {
		row, err := runApprox(v, w, deltas(v), idaRow.Cost)
		if err != nil {
			return nil, err
		}
		row.Label = label
		rows = append(rows, row)
	}
	return rows, nil
}

// Fig14 reproduces Figure 14: approximation quality and running time as
// a function of δ. Expected shape: quality degrades and time improves
// as δ grows; CA dominates SA except at the smallest δ; CA at δ=10 is
// near-optimal and much faster than IDA.
func Fig14(s float64, out io.Writer) ([]Row, error) {
	deltas := []float64{10, 20, 40, 80, 160}
	rows, err := runPoints(len(deltas), func(i int) ([]Row, error) {
		d := deltas[i]
		return approxPoint(Default(s), fmt.Sprintf("δ=%g", d),
			func(approxVariant) float64 { return d })
	})
	if err != nil {
		return nil, err
	}
	if out != nil {
		PrintRows(out, fmt.Sprintf("Figure 14: approximation quality/time vs δ (scale %g)", s), rows, true)
	}
	return rows, nil
}

// Fig15 reproduces Figure 15: approximation quality and time vs k with
// the tuned δ (SA: 40, CA: 10). Expected shape: quality improves with k;
// CA stays within ~10–25% of optimal and is several times faster than
// IDA.
func Fig15(s float64, out io.Writer) ([]Row, error) {
	ks := []int{20, 40, 80, 160, 320}
	rows, err := runPoints(len(ks), func(i int) ([]Row, error) {
		p := Default(s)
		p.K = ks[i]
		return approxPoint(p, fmt.Sprintf("k=%d", ks[i]), deltaFor)
	})
	if err != nil {
		return nil, err
	}
	if out != nil {
		PrintRows(out, fmt.Sprintf("Figure 15: approximation vs k (scale %g)", s), rows, true)
	}
	return rows, nil
}

// Fig16 reproduces Figure 16: approximation vs |Q|. Expected shape: CA
// beats SA throughout; CA quality degrades mildly as |Q| grows (more
// providers near each customer group mean more chances for a suboptimal
// pair).
func Fig16(s float64, out io.Writer) ([]Row, error) {
	qs := []int{250, 500, 1000, 2500, 5000}
	rows, err := runPoints(len(qs), func(i int) ([]Row, error) {
		p := Default(s)
		p.NQ = max(1, int(float64(qs[i])*s))
		return approxPoint(p, fmt.Sprintf("|Q|=%g", float64(qs[i])/1000), deltaFor)
	})
	if err != nil {
		return nil, err
	}
	if out != nil {
		PrintRows(out, fmt.Sprintf("Figure 16: approximation vs |Q| (scale %g)", s), rows, true)
	}
	return rows, nil
}

// Fig17 reproduces Figure 17: approximation vs |P|. Expected shape: SA
// quality degrades as |P| grows (denser customers around provider
// groups); CA is much less affected.
func Fig17(s float64, out io.Writer) ([]Row, error) {
	ps := []int{25000, 50000, 100000, 150000, 200000}
	rows, err := runPoints(len(ps), func(i int) ([]Row, error) {
		p := Default(s)
		p.NP = max(2, int(float64(ps[i])*s))
		return approxPoint(p, fmt.Sprintf("|P|=%dK", ps[i]/1000), deltaFor)
	})
	if err != nil {
		return nil, err
	}
	if out != nil {
		PrintRows(out, fmt.Sprintf("Figure 17: approximation vs |P| (scale %g)", s), rows, true)
	}
	return rows, nil
}

// Fig18 reproduces Figure 18: approximation across distribution
// combinations. Expected shape: CA is fastest everywhere and more
// accurate than SA when Q and P are distributed alike; with differing
// distributions both are close to optimal.
func Fig18(s float64, out io.Writer) ([]Row, error) {
	combos := []struct {
		q, p datagen.Distribution
	}{
		{datagen.Uniform, datagen.Uniform},
		{datagen.Uniform, datagen.Clustered},
		{datagen.Clustered, datagen.Uniform},
		{datagen.Clustered, datagen.Clustered},
	}
	rows, err := runPoints(len(combos), func(i int) ([]Row, error) {
		p := Default(s)
		p.DistQ, p.DistP = combos[i].q, combos[i].p
		return approxPoint(p, fmt.Sprintf("%svs%s", combos[i].q, combos[i].p), deltaFor)
	})
	if err != nil {
		return nil, err
	}
	if out != nil {
		PrintRows(out, fmt.Sprintf("Figure 18: approximation across distributions (scale %g)", s), rows, true)
	}
	return rows, nil
}
