package expr

import (
	"fmt"
	"io"

	"repro/internal/core"
)

// Ablation measures the design choices the paper calls out in §3.3–§3.4
// by disabling them one at a time on the default workload:
//
//   - IDA without the Theorem 2 fast path (§3.3);
//   - NIA without PUA Dijkstra reuse (§3.4.1);
//   - IDA without the grouped incremental ANN search (§3.4.2);
//   - the greedy SM join (related work, §2.3), to quantify the cost gap
//     between greedy local assignment and the optimal matching.
//
// Expected shape: every optimization reduces CPU time (T2, PUA) or I/O
// (ANN) without changing the matching cost; SM is fast but measurably
// more expensive in Ψ(M).
func Ablation(s float64, out io.Writer) ([]Row, error) {
	p := Default(s)
	w, err := Build(p)
	if err != nil {
		return nil, err
	}
	base := coreOptions(p)
	configs := []struct {
		label string
		algo  string
		opts  core.Options
	}{
		{"IDA (full)", "IDA", base},
		{"IDA -Theorem2", "IDA", with(base, func(o *core.Options) { o.DisableTheorem2 = true })},
		{"IDA -PUA", "IDA", with(base, func(o *core.Options) { o.DisablePUA = true })},
		{"IDA -ANN", "IDA", with(base, func(o *core.Options) { o.DisableANN = true })},
		{"IDA bare", "IDA", with(base, func(o *core.Options) {
			o.DisableTheorem2 = true
			o.DisablePUA = true
			o.DisableANN = true
		})},
		{"NIA (full)", "NIA", base},
		{"NIA -PUA", "NIA", with(base, func(o *core.Options) { o.DisablePUA = true })},
		{"SM greedy", "SM", base},
	}
	// One scheduled point: the configs share a single workload, so they
	// must stay sequential on its buffer.
	rows, err := runPoints(1, func(int) ([]Row, error) {
		var rows []Row
		for _, cfg := range configs {
			row, err := runExact(cfg.algo, w, cfg.opts)
			if err != nil {
				return nil, err
			}
			row.Label = cfg.label
			rows = append(rows, row)
		}
		return rows, nil
	})
	if err != nil {
		return nil, err
	}
	if out != nil {
		PrintRows(out, fmt.Sprintf("Ablation: optimizations of §3.3–§3.4 (scale %g)", s), rows, false)
	}
	return rows, nil
}

func with(o core.Options, f func(*core.Options)) core.Options {
	f(&o)
	return o
}

// ThetaSensitivity measures RIA's sensitivity to its θ parameter (§3.2
// motivates NIA by how hard θ is to tune): small θ multiplies range
// searches (I/O), large θ bloats Esub (CPU).
func ThetaSensitivity(s float64, out io.Writer) ([]Row, error) {
	p := Default(s)
	w, err := Build(p)
	if err != nil {
		return nil, err
	}
	// One scheduled point: the θ settings share the workload's buffer.
	rows, err := runPoints(1, func(int) ([]Row, error) {
		var rows []Row
		for _, theta := range []float64{0.2, 0.8, 3.2, 12.8, 51.2} {
			opts := coreOptions(p)
			opts.Theta = theta
			row, err := runExact("RIA", w, opts)
			if err != nil {
				return nil, err
			}
			row.Label = fmt.Sprintf("θ=%g", theta)
			rows = append(rows, row)
		}
		return rows, nil
	})
	if err != nil {
		return nil, err
	}
	if out != nil {
		PrintRows(out, fmt.Sprintf("RIA θ sensitivity (scale %g)", s), rows, false)
	}
	return rows, nil
}
