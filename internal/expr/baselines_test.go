package expr

import (
	"math"
	"testing"
)

// All three baselines must agree on the optimal cost at every size, and
// Hungarian's CPU must grow faster than IDA's.
func TestBaselineScalingAgreement(t *testing.T) {
	rows, err := BaselineScaling(testScale, nil)
	if err != nil {
		t.Fatal(err)
	}
	byLabel := map[string]map[string]Row{}
	for _, r := range rows {
		if byLabel[r.Label] == nil {
			byLabel[r.Label] = map[string]Row{}
		}
		byLabel[r.Label][r.Algo] = r
	}
	for label, m := range byLabel {
		hung, ok := m["Hungarian"]
		if !ok {
			continue // refused at this size; acceptable at large scale
		}
		for _, algo := range []string{"SSPA", "IDA"} {
			if math.Abs(m[algo].Cost-hung.Cost) > 1e-6*(1+hung.Cost) {
				t.Fatalf("%s: %s cost %v != Hungarian %v", label, algo, m[algo].Cost, hung.Cost)
			}
		}
	}
}

// The three index construction policies must not change the matching
// cost; STR (packed) must not lose to the dynamic builds on I/O.
func TestIndexPolicyInvariants(t *testing.T) {
	rows, err := IndexPolicy(testScale, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("want 3 rows, got %d", len(rows))
	}
	base := rows[0]
	if base.Label != "STR" {
		t.Fatalf("first row should be STR, got %s", base.Label)
	}
	for _, r := range rows[1:] {
		if math.Abs(r.Cost-base.Cost) > 1e-6*(1+base.Cost) {
			t.Fatalf("%s changed the optimal cost: %v vs %v", r.Label, r.Cost, base.Cost)
		}
		if base.Faults > r.Faults+r.Faults/5 {
			t.Fatalf("STR should not need much more I/O than %s: %d vs %d faults",
				r.Label, base.Faults, r.Faults)
		}
	}
}
