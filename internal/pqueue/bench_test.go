package pqueue

import (
	"math/rand"
	"testing"
)

func BenchmarkPushPop(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	keys := make([]float64, 1024)
	for i := range keys {
		keys[i] = rng.Float64()
	}
	b.ResetTimer()
	var h Heap[int]
	for i := 0; i < b.N; i++ {
		h.Push(i, keys[i%len(keys)])
		if h.Len() > 512 {
			h.Pop()
		}
	}
}

func BenchmarkDecreaseKey(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	var h Heap[int]
	items := make([]*Item[int], 4096)
	for i := range items {
		items[i] = h.Push(i, 1e9+rng.Float64())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it := items[i%len(items)]
		if it.InHeap() {
			h.Update(it, it.Key()-1)
		}
	}
}
