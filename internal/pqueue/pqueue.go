// Package pqueue provides an addressable binary min-heap with float64
// keys and O(log n) key updates.
//
// Every search structure in this reproduction is built on it: Dijkstra's
// algorithm and the Path Update Algorithm need decrease-key (§2.2,
// §3.4.1), the NIA/IDA edge heaps need in-place key *increases* when a
// full provider's α changes (§3.3), and the R-tree best-first search and
// incremental ANN need plain ordered extraction (§2.3, §3.4.2).
package pqueue

// Item is a heap entry handle. It stays valid (and addressable) from Push
// until Pop/Remove returns it, so callers can update its key in place.
type Item[T any] struct {
	Value T
	key   float64
	index int // position in the heap slice; -1 when not enqueued
}

// Key returns the item's current key.
func (it *Item[T]) Key() float64 { return it.key }

// InHeap reports whether the item is currently enqueued.
func (it *Item[T]) InHeap() bool { return it.index >= 0 }

// Heap is an addressable min-heap. The zero value is ready to use.
type Heap[T any] struct {
	items []*Item[T]
}

// Len returns the number of enqueued items.
func (h *Heap[T]) Len() int { return len(h.items) }

// Push enqueues value with the given key and returns its handle.
func (h *Heap[T]) Push(value T, key float64) *Item[T] {
	it := &Item[T]{Value: value, key: key, index: len(h.items)}
	h.items = append(h.items, it)
	h.up(it.index)
	return it
}

// Peek returns the minimum item without removing it, or nil when empty.
func (h *Heap[T]) Peek() *Item[T] {
	if len(h.items) == 0 {
		return nil
	}
	return h.items[0]
}

// Pop removes and returns the minimum item, or nil when empty.
func (h *Heap[T]) Pop() *Item[T] {
	if len(h.items) == 0 {
		return nil
	}
	top := h.items[0]
	h.swap(0, len(h.items)-1)
	h.items = h.items[:len(h.items)-1]
	if len(h.items) > 0 {
		h.down(0)
	}
	top.index = -1
	return top
}

// Update changes it's key and restores heap order. It must be enqueued.
func (h *Heap[T]) Update(it *Item[T], key float64) {
	old := it.key
	it.key = key
	switch {
	case key < old:
		h.up(it.index)
	case key > old:
		h.down(it.index)
	}
}

// Remove deletes an enqueued item from the heap.
func (h *Heap[T]) Remove(it *Item[T]) {
	i := it.index
	last := len(h.items) - 1
	h.swap(i, last)
	h.items = h.items[:last]
	if i < last {
		h.down(i)
		h.up(i)
	}
	it.index = -1
}

// Clear empties the heap, invalidating all handles. Slots are nilled
// so a cleared heap whose backing array is retained (e.g. in a pool)
// does not pin the removed items.
func (h *Heap[T]) Clear() {
	for i, it := range h.items {
		it.index = -1
		h.items[i] = nil
	}
	h.items = h.items[:0]
}

func (h *Heap[T]) swap(i, j int) {
	h.items[i], h.items[j] = h.items[j], h.items[i]
	h.items[i].index = i
	h.items[j].index = j
}

func (h *Heap[T]) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if h.items[parent].key <= h.items[i].key {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *Heap[T]) down(i int) {
	n := len(h.items)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		smallest := left
		if right := left + 1; right < n && h.items[right].key < h.items[left].key {
			smallest = right
		}
		if h.items[i].key <= h.items[smallest].key {
			return
		}
		h.swap(i, smallest)
		i = smallest
	}
}
