package pqueue

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func drain(h *Heap[int]) []float64 {
	var keys []float64
	for h.Len() > 0 {
		keys = append(keys, h.Pop().Key())
	}
	return keys
}

func TestPushPopOrdered(t *testing.T) {
	var h Heap[int]
	in := []float64{5, 3, 8, 1, 9, 2, 7}
	for i, k := range in {
		h.Push(i, k)
	}
	got := drain(&h)
	want := append([]float64(nil), in...)
	sort.Float64s(want)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pop order %v want %v", got, want)
		}
	}
	if h.Pop() != nil || h.Peek() != nil {
		t.Fatal("empty heap must return nil")
	}
}

func TestDuplicateKeys(t *testing.T) {
	var h Heap[int]
	for i := 0; i < 10; i++ {
		h.Push(i, 1.0)
	}
	seen := make(map[int]bool)
	for h.Len() > 0 {
		it := h.Pop()
		if seen[it.Value] {
			t.Fatalf("value %d popped twice", it.Value)
		}
		seen[it.Value] = true
	}
	if len(seen) != 10 {
		t.Fatalf("lost items: %d", len(seen))
	}
}

func TestUpdateDecrease(t *testing.T) {
	var h Heap[string]
	h.Push("a", 10)
	b := h.Push("b", 20)
	h.Push("c", 30)
	h.Update(b, 5)
	if got := h.Pop().Value; got != "b" {
		t.Fatalf("decrease-key: got %q want b", got)
	}
}

func TestUpdateIncrease(t *testing.T) {
	var h Heap[string]
	a := h.Push("a", 10)
	h.Push("b", 20)
	h.Update(a, 25)
	if got := h.Pop().Value; got != "b" {
		t.Fatalf("increase-key: got %q want b", got)
	}
	if got := h.Pop().Value; got != "a" {
		t.Fatalf("increase-key second: got %q want a", got)
	}
}

func TestRemove(t *testing.T) {
	var h Heap[int]
	items := make([]*Item[int], 10)
	for i := range items {
		items[i] = h.Push(i, float64(i))
	}
	h.Remove(items[0]) // min
	h.Remove(items[5]) // middle
	h.Remove(items[9]) // max
	if items[0].InHeap() || items[5].InHeap() || items[9].InHeap() {
		t.Fatal("removed items must not report InHeap")
	}
	got := drain(&h)
	want := []float64{1, 2, 3, 4, 6, 7, 8}
	if len(got) != len(want) {
		t.Fatalf("got %v want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
}

func TestClear(t *testing.T) {
	var h Heap[int]
	it := h.Push(1, 1)
	h.Clear()
	if h.Len() != 0 || it.InHeap() {
		t.Fatal("Clear must empty the heap and invalidate handles")
	}
	h.Push(2, 2)
	if h.Pop().Value != 2 {
		t.Fatal("heap must be reusable after Clear")
	}
}

// Property: for any sequence of pushes and random key updates, popping
// yields keys in non-decreasing order and returns every surviving item.
func TestHeapPropertyUnderUpdates(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var h Heap[int]
		n := 50 + rng.Intn(100)
		items := make([]*Item[int], n)
		for i := range items {
			items[i] = h.Push(i, rng.Float64()*100)
		}
		for i := 0; i < n/2; i++ {
			h.Update(items[rng.Intn(n)], rng.Float64()*100)
		}
		prev := -1.0
		count := 0
		for h.Len() > 0 {
			it := h.Pop()
			if it.Key() < prev {
				return false
			}
			prev = it.Key()
			count++
		}
		return count == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPeekDoesNotRemove(t *testing.T) {
	var h Heap[int]
	h.Push(1, 2)
	h.Push(2, 1)
	if h.Peek().Value != 2 || h.Len() != 2 {
		t.Fatal("Peek must not remove")
	}
}
