package shard

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/obs"
	"repro/internal/rtree"
	"repro/internal/sched"
	"repro/internal/storage"
)

// SubSolver solves one in-memory sub-instance (a region's providers and
// customers, or the reconciliation instance). The sharded meta-solver in
// internal/solver adapts any registered solver to this shape; opts is
// the caller's core options with the instance-wide fields
// (TotalCustomerCap, Shards) already cleared for the sub-instance.
type SubSolver func(ctx context.Context, providers []core.Provider, tree *rtree.Tree, items []rtree.Item, opts core.Options) (*core.Result, error)

// Config tunes a sharded solve.
type Config struct {
	// Shards is the region count (0 = automatic, see Count).
	Shards int
	// Band is the boundary band width (0 = default, see Band).
	Band float64
	// Workers bounds concurrent region solves. 0 (the default) runs
	// regions on the package's shared GOMAXPROCS-wide pool, so any
	// number of concurrent sharded solves — e.g. a full engine batch of
	// them — stays bounded by the core count instead of oversubscribing
	// it with per-solve pools. A positive value gives this solve a
	// dedicated pool of exactly that width. Either way it only changes
	// wall-clock time: the merge is deterministic regardless of
	// completion order.
	Workers int
	// Base runs the per-region and reconciliation solves.
	Base SubSolver
}

// regionPool is the shared execution pool for default-width sharded
// solves: one process-wide sched.Pool of GOMAXPROCS workers, created on
// first use and kept for the process lifetime (idle workers just wait).
// Region tasks never submit further work to it, so solves waiting on
// their regions cannot deadlock the pool.
var regionPool struct {
	sync.Mutex
	pool *sched.Pool
}

func sharedPool() *sched.Pool {
	regionPool.Lock()
	defer regionPool.Unlock()
	if regionPool.pool == nil {
		regionPool.pool = sched.New(sched.Config{Workers: runtime.GOMAXPROCS(0)})
	}
	return regionPool.pool
}

// Stats describes what one sharded solve did.
type Stats struct {
	Shards             int           // regions solved
	BoundaryCustomers  int           // customers inside the boundary band
	Released           int           // region assignments released for reconciliation
	Stranded           int           // customers no region could absorb (capacity overflow)
	ReconcileCustomers int           // customers in the reconciliation re-solve
	ReconcileProviders int           // providers with residual capacity in the re-solve
	ShardWall          time.Duration // wall time of the concurrent region phase
	ReconcileWall      time.Duration // wall time of the reconciliation phase
}

// releaseEps absorbs floating-point drift in the lower-bound release
// test, mirroring core's Theorem 1 epsilon.
const releaseEps = 1e-9

// Solve runs one instance through the spatial decomposition: partition
// (Partition), concurrent per-region solves on an internal/sched pool,
// then the reconciliation pass — release every boundary-band assignment
// and every assignment whose cost exceeds the customer's global lower
// bound by more than the band width, and re-solve those customers
// together with the nearest stranded ones against the residual provider
// capacities. The returned matching is feasible and maximum
// (|M| = min(Σ capacity, |P|)) whenever Base produces feasible maximum
// matchings (every registered solver does), and it is byte-identical
// across Workers settings: sub-results land in region-indexed slots and
// the merge walks them in region order.
//
// opts.CustomerCap and opts.PairCapacity are not supported (the
// feasibility argument assumes unit customer capacity); callers gate on
// that before calling.
func Solve(ctx context.Context, providers []core.Provider, items []rtree.Item, cfg Config, opts core.Options) (*core.Result, *Stats, error) {
	start := time.Now()
	space := opts.Space
	if space.IsEmpty() {
		space = core.DefaultSpace
	}
	k := Count(cfg.Shards, len(providers), len(items))
	band := Band(cfg.Band, space)
	stats := &Stats{Shards: k}

	totalCap := 0
	for _, q := range providers {
		totalCap += q.Cap
	}
	gamma := totalCap
	if len(items) < gamma {
		gamma = len(items)
	}
	if gamma == 0 {
		return &core.Result{Metrics: core.Metrics{FullGraphEdges: len(providers) * len(items)}}, stats, nil
	}

	span := obs.FromContext(ctx)
	pspan := span.StartChild("partition")
	plan := Partition(providers, itemPoints(items), k, band, space)
	k = len(plan.Regions)
	stats.Shards = k
	for r := range plan.Regions {
		stats.BoundaryCustomers += len(plan.Regions[r].Boundary)
	}
	pspan.SetInt("regions", int64(k))
	pspan.SetFloat("band", plan.Band)
	pspan.End()

	// Phase 1: solve every region concurrently. Results land in
	// region-indexed slots, so the merge below never depends on
	// completion order.
	subOpts := opts
	subOpts.TotalCustomerCap = 0 // sub-instances have their own totals
	subOpts.Shards = 1           // sub-solves are never themselves sharded
	results := make([]*core.Result, k)
	errs := make([]error, k)
	shardStart := time.Now()
	runRegion := func(ctx context.Context, r int) {
		reg := &plan.Regions[r]
		// The span starts here — inside the (possibly pooled) task — so
		// its duration is the region's actual run, not its queue wait.
		rspan := obs.FromContext(ctx).StartChild("region-solve")
		rspan.SetInt("region", int64(r))
		rspan.SetInt("providers", int64(len(reg.Providers)))
		rspan.SetInt("customers", int64(len(reg.Owned)))
		defer rspan.End()
		if len(reg.Owned) == 0 {
			results[r] = &core.Result{}
			return
		}
		subProviders := make([]core.Provider, len(reg.Providers))
		for i, qi := range reg.Providers {
			subProviders[i] = providers[qi]
		}
		subItems := make([]rtree.Item, len(reg.Owned))
		for i, j := range reg.Owned {
			subItems[i] = items[j]
		}
		results[r], errs[r] = solveSub(obs.WithSpan(ctx, rspan), cfg.Base, subProviders, subItems, subOpts)
	}
	if workers := poolWorkers(cfg.Workers, k); workers > 1 {
		pool := sharedPool()
		dedicated := cfg.Workers > 0
		if dedicated {
			pool = sched.New(sched.Config{Workers: workers})
		}
		var wg sync.WaitGroup
		for r := 0; r < k; r++ {
			r := r
			wg.Add(1)
			if err := pool.Submit(ctx, sched.Batch, func(ctx context.Context, _ sched.TaskInfo) {
				defer wg.Done()
				runRegion(ctx, r)
			}); err != nil {
				wg.Done()
				errs[r] = err
			}
		}
		wg.Wait()
		if dedicated {
			pool.Close()
		}
	} else {
		for r := 0; r < k; r++ {
			runRegion(ctx, r)
		}
	}
	stats.ShardWall = time.Since(shardStart)
	for r := 0; r < k; r++ { // first error in region order, deterministic
		if errs[r] != nil {
			return nil, stats, errs[r]
		}
	}
	if err := ctxErr(ctx); err != nil {
		return nil, stats, err
	}

	// Phase 2: merge with release. An assignment is kept unless the
	// customer sits in the boundary band or its cost exceeds the global
	// lower bound (distance to the overall nearest provider — valid
	// under every metric honoring the geo.Metric lower-bound contract)
	// by more than the band width.
	indexOf := make(map[int64]int, len(items))
	for j, it := range items {
		indexOf[it.ID] = j
	}
	kept := make([]core.Pair, 0, gamma)
	used := make([]int, len(providers))
	assigned := make([]bool, len(items))
	var released []int
	agg := core.Metrics{FullGraphEdges: len(providers) * len(items)}
	for r := 0; r < k; r++ {
		res := results[r]
		addMetrics(&agg, &res.Metrics)
		reg := &plan.Regions[r]
		for _, pr := range res.Pairs {
			j, ok := indexOf[pr.CustomerID]
			if !ok {
				return nil, stats, fmt.Errorf("shard: region %d assigned unknown customer %d", r, pr.CustomerID)
			}
			assigned[j] = true
			if plan.InBand(j) || pr.Dist > plan.OwnDist[j]+plan.Band+releaseEps {
				released = append(released, j)
				continue // re-solved in phase 3
			}
			global := pr
			global.Provider = reg.Providers[pr.Provider]
			kept = append(kept, global)
			used[global.Provider]++
		}
	}
	stats.Released = len(released)

	// Phase 3: reconciliation. Candidates are every released customer
	// plus the nearest stranded ones (owned by a capacity-starved
	// region) — at least γ − |kept| of them, so the re-solve provably
	// restores |M| = γ, and at most a few multiples of the residual
	// capacity, so it stays a fraction of the instance.
	residualTotal := totalCap - len(kept)
	var unassigned []int
	for j := range items {
		if !assigned[j] {
			unassigned = append(unassigned, j)
		}
	}
	stats.Stranded = len(unassigned)
	reconcile := append(released, nearestUnassigned(unassigned, plan.OwnDist, 3*residualTotal+64)...)
	stats.ReconcileCustomers = len(reconcile)

	reconStart := time.Now()
	cspan := span.StartChild("reconcile")
	cspan.SetInt("customers", int64(len(reconcile)))
	cspan.SetInt("released", int64(len(released)))
	if residualTotal > 0 && len(reconcile) > 0 {
		subProviders := make([]core.Provider, 0, len(providers))
		provMap := make([]int, 0, len(providers))
		for qi, q := range providers {
			if res := q.Cap - used[qi]; res > 0 {
				subProviders = append(subProviders, core.Provider{Pt: q.Pt, Cap: res})
				provMap = append(provMap, qi)
			}
		}
		stats.ReconcileProviders = len(subProviders)
		subItems := make([]rtree.Item, len(reconcile))
		for i, j := range reconcile {
			subItems[i] = items[j]
		}
		res, err := solveSub(obs.WithSpan(ctx, cspan), cfg.Base, subProviders, subItems, subOpts)
		if err != nil {
			cspan.End()
			return nil, stats, err
		}
		addMetrics(&agg, &res.Metrics)
		for _, pr := range res.Pairs {
			global := pr
			global.Provider = provMap[pr.Provider]
			kept = append(kept, global)
		}
	}
	cspan.SetInt("providers", int64(stats.ReconcileProviders))
	cspan.End()
	stats.ReconcileWall = time.Since(reconStart)

	cost := 0.0
	for _, pr := range kept {
		cost += pr.Dist
	}
	// CPUTime reports the sharded solve's wall clock — the honest
	// "time to answer" when regions overlap — not the (larger) sum of
	// per-region CPU times.
	agg.CPUTime = time.Since(start)
	return &core.Result{Pairs: kept, Cost: cost, Size: len(kept), Metrics: agg}, stats, nil
}

// solveSub builds a fresh in-memory R-tree over the sub-instance's
// items and runs the base solver on it. The bulk-load buffer is sized
// so the sub-solve never faults: shard-local trees are main-memory
// scratch, not the paper's disk-resident dataset — the original
// dataset's I/O is charged once, by the All scan that materialized the
// items.
func solveSub(ctx context.Context, base SubSolver, providers []core.Provider, items []rtree.Item, opts core.Options) (*core.Result, error) {
	buf := storage.NewBuffer(storage.NewMemStore(storage.DefaultPageSize), 1<<20)
	tree, err := rtree.Bulk(buf, items)
	if err != nil {
		return nil, err
	}
	return base(ctx, providers, tree, items, opts)
}

func itemPoints(items []rtree.Item) []geo.Point {
	pts := make([]geo.Point, len(items))
	for i, it := range items {
		pts[i] = it.Pt
	}
	return pts
}

// poolWorkers sizes the region-solve pool: never wider than the region
// count, GOMAXPROCS by default.
func poolWorkers(requested, k int) int {
	w := requested
	if w < 1 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > k {
		w = k
	}
	return w
}

func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// addMetrics accumulates a sub-solve's work counters into the sharded
// result's aggregate (timings are handled by the caller).
func addMetrics(dst, src *core.Metrics) {
	dst.SubgraphEdges += src.SubgraphEdges
	dst.Dijkstras += src.Dijkstras
	dst.Resumes += src.Resumes
	dst.Pops += src.Pops
	dst.Relaxations += src.Relaxations
	dst.Repairs += src.Repairs
	dst.RangeSearches += src.RangeSearches
	dst.NNRetrievals += src.NNRetrievals
	dst.KeyUpdates += src.KeyUpdates
	dst.Augments += src.Augments
	dst.IO.Hits += src.IO.Hits
	dst.IO.Faults += src.IO.Faults
	dst.IO.PhysicalReads += src.IO.PhysicalReads
	dst.IO.PhysicalWrites += src.IO.PhysicalWrites
	dst.IOTime += src.IOTime
}
