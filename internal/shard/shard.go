// Package shard decomposes one huge CCA instance into k spatially
// compact, capacity-balanced regions so the existing solvers can attack
// it concurrently — the boundary-region decomposition the ROADMAP's last
// named scaling step asks for.
//
// The decomposition is a Hilbert-order sweep over the providers
// (reusing internal/hilbert, the same ordering the paper uses for ANN
// grouping and the SA partition): providers are sorted along the curve
// and cut into k contiguous runs of near-equal total capacity, so every
// region is a spatially tight provider cluster with roughly 1/k of the
// service capacity. Every customer is then routed to the region owning
// its (Euclidean) nearest provider; region interiors are disjoint and
// cover the instance.
//
// Cut edges are what a naive partition gets wrong: a customer near a
// region border may be served more cheaply by the neighboring region,
// and a capacity-starved region strands customers another region could
// absorb. Both are repaired by the reconciliation pass in Solve: a
// configurable boundary band flags every customer whose nearest
// foreign-region provider is within Band of its own region's nearest
// provider, and after the per-region solves the band — together with
// stranded customers and any assignment whose cost exceeds the
// customer's global lower bound by more than the band width — is
// released and re-solved exactly against the residual capacities of all
// providers. The merged matching is always feasible and maximum
// (|M| = min(Σ capacity, |P|)); its cost gap against the exact optimum
// is pinned empirically by the cross-shard conformance suite in
// internal/solver.
package shard

import (
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/hilbert"
)

// DefaultBandFraction sizes the default boundary band as a fraction of
// the data-space diagonal. 5% is wide enough that, on the conformance
// workloads, releasing the band recovers the exact optimum to within
// GapBound, and narrow enough that the reconciliation re-solve stays a
// small fraction of the instance.
const DefaultBandFraction = 0.05

// GapBound is the relative optimality gap the cross-shard conformance
// suite pins: with the default band, Ψ(sharded) ≤ (1+GapBound)·Ψ(opt)
// on every suite instance. It is an empirical bound for the default
// knobs, not a theorem — widening the band tightens it toward 0 (the
// whole instance is re-solved exactly), shrinking it trades quality for
// speed.
const GapBound = 0.05

// MaxAutoShards caps the automatic shard count.
const MaxAutoShards = 16

// autoCustomersPerShard is the minimum owned-customer mass that
// justifies one more automatic shard: below it, partition and
// reconciliation overhead dominates the saved solve time.
const autoCustomersPerShard = 2048

// Count resolves the effective shard count for an instance: requested
// (opts.Shards) when positive, otherwise a data-derived automatic count
// that never exceeds the provider count (each region needs at least one
// provider) and only grows as the customer mass does. The rule is a
// pure function of the instance, so results — and the engine's result
// cache — never depend on the machine.
func Count(requested, providers, customers int) int {
	k := requested
	if k <= 0 {
		k = 1 + customers/autoCustomersPerShard
		if k > MaxAutoShards {
			k = MaxAutoShards
		}
	}
	if k > providers {
		k = providers
	}
	if k < 1 {
		k = 1
	}
	return k
}

// Band resolves the effective boundary band width within a data space.
func Band(requested float64, space geo.Rect) float64 {
	if requested > 0 {
		return requested
	}
	if space.IsEmpty() {
		space = core.DefaultSpace
	}
	dx, dy := space.Max.X-space.Min.X, space.Max.Y-space.Min.Y
	return DefaultBandFraction * math.Hypot(dx, dy)
}

// Region is one shard of a partitioned instance.
type Region struct {
	// Providers are the region's provider indexes into the instance's
	// provider slice, contiguous in Hilbert order.
	Providers []int
	// Capacity is the summed capacity of Providers.
	Capacity int
	// Owned are the customer indexes routed to this region (nearest
	// provider is one of Providers). Interiors — Owned minus Boundary —
	// are disjoint across regions, and Owned covers the instance.
	Owned []int
	// Boundary is the subset of Owned inside the boundary band: a
	// foreign region's provider is within Band of the owning distance.
	Boundary []int
}

// Plan is a spatial partition of one instance.
type Plan struct {
	Regions []Region
	// Owner maps each customer index to its owning region.
	Owner []int
	// OwnDist is each customer's Euclidean distance to the nearest
	// provider of its owning region — by construction also its distance
	// to the globally nearest provider, i.e. a lower bound on the
	// customer's assignment cost under any lower-bounded metric.
	OwnDist []float64
	// OtherDist is each customer's Euclidean distance to the nearest
	// provider outside its owning region (+Inf with a single region).
	OtherDist []float64
	// ProviderRegion maps each provider index to its region.
	ProviderRegion []int
	// Band is the boundary band width the plan was built with.
	Band float64
}

// InBand reports whether customer j lies in the boundary band: the
// nearest foreign-region provider is within Band of the owning one.
func (p *Plan) InBand(j int) bool {
	return p.OtherDist[j]-p.OwnDist[j] <= p.Band
}

// Partition splits an instance into k capacity-balanced spatial regions.
// Providers are swept in Hilbert order over space and cut into k
// contiguous runs of near-equal total capacity; each customer is owned
// by the region of its nearest provider. k is clamped to [1, |Q|];
// band < 0 is treated as 0 (every tie-adjacent customer still enters
// the band because the test is ≤).
func Partition(providers []core.Provider, customers []geo.Point, k int, band float64, space geo.Rect) *Plan {
	if space.IsEmpty() {
		space = core.DefaultSpace
	}
	if k > len(providers) {
		k = len(providers)
	}
	if k < 1 {
		k = 1
	}
	if band < 0 {
		band = 0
	}

	qpts := make([]geo.Point, len(providers))
	total := 0
	for i, q := range providers {
		qpts[i] = q.Pt
		total += q.Cap
	}
	order := hilbert.SortByKey(qpts, space)

	plan := &Plan{
		Regions:        make([]Region, 0, k),
		Owner:          make([]int, len(customers)),
		OwnDist:        make([]float64, len(customers)),
		OtherDist:      make([]float64, len(customers)),
		ProviderRegion: make([]int, len(providers)),
		Band:           band,
	}

	// Capacity-balanced contiguous cut: each region closes once it holds
	// its fair share of the remaining capacity, except that every region
	// still to come is guaranteed at least one provider.
	remainingCap := total
	cur := Region{}
	for i, qi := range order {
		cur.Providers = append(cur.Providers, qi)
		cur.Capacity += providers[qi].Cap
		plan.ProviderRegion[qi] = len(plan.Regions)
		providersLeft := len(order) - i - 1
		regionsLeft := k - len(plan.Regions) - 1
		target := (remainingCap + regionsLeft) / (regionsLeft + 1)
		if (cur.Capacity >= target || providersLeft == regionsLeft) && regionsLeft > 0 {
			remainingCap -= cur.Capacity
			plan.Regions = append(plan.Regions, cur)
			cur = Region{}
		}
	}
	plan.Regions = append(plan.Regions, cur)

	// Route customers: one pass per customer over the providers, keeping
	// the best distance per region; the owner is the globally nearest
	// provider's region (ties to the lowest region index).
	best := make([]float64, len(plan.Regions))
	for j, p := range customers {
		for r := range best {
			best[r] = math.Inf(1)
		}
		for qi, q := range providers {
			if d := p.Dist(q.Pt); d < best[plan.ProviderRegion[qi]] {
				best[plan.ProviderRegion[qi]] = d
			}
		}
		owner := 0
		for r := 1; r < len(best); r++ {
			if best[r] < best[owner] {
				owner = r
			}
		}
		other := math.Inf(1)
		for r := range best {
			if r != owner && best[r] < other {
				other = best[r]
			}
		}
		plan.Owner[j] = owner
		plan.OwnDist[j] = best[owner]
		plan.OtherDist[j] = other
		reg := &plan.Regions[owner]
		reg.Owned = append(reg.Owned, j)
		if plan.InBand(j) {
			reg.Boundary = append(reg.Boundary, j)
		}
	}
	return plan
}

// nearestUnassigned returns up to limit unassigned customer indexes in
// ascending (OwnDist, index) order — the deterministic candidate order
// the reconciliation pass feeds stranded customers in.
func nearestUnassigned(unassigned []int, ownDist []float64, limit int) []int {
	if limit < 0 {
		limit = 0
	}
	sort.Slice(unassigned, func(a, b int) bool {
		ia, ib := unassigned[a], unassigned[b]
		if ownDist[ia] != ownDist[ib] {
			return ownDist[ia] < ownDist[ib]
		}
		return ia < ib
	})
	if len(unassigned) > limit {
		unassigned = unassigned[:limit]
	}
	return unassigned
}
