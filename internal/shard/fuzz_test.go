package shard

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/hilbert"
)

// fuzzInstance expands a fuzz input into a CCA instance. Coordinates
// are drawn in the default space, with a duplicate-point cluster mixed
// in on some seeds (Hilbert ties and zero distances are the partition's
// edge cases).
func fuzzInstance(seed int64, nq, np int) ([]core.Provider, []geo.Point) {
	rng := rand.New(rand.NewSource(seed))
	providers := make([]core.Provider, nq)
	for i := range providers {
		pt := geo.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}
		if seed%3 == 0 && i%2 == 0 {
			pt = geo.Point{X: 500, Y: 500} // co-located providers
		}
		providers[i] = core.Provider{Pt: pt, Cap: 1 + rng.Intn(7)}
	}
	pts := make([]geo.Point, np)
	for i := range pts {
		pts[i] = geo.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}
		if seed%5 == 0 && i%3 == 0 {
			pts[i] = providers[i%nq].Pt // customers on top of providers
		}
	}
	return providers, pts
}

// FuzzShardPartition checks the partition invariants the sharded solve
// relies on, over fuzzed instances, shard counts, and band widths:
//
//   - the regions cover the instance and their interiors are disjoint
//     (every customer owned by exactly one region);
//   - every provider sits in exactly one region, regions are contiguous
//     along the Hilbert curve, and no region is empty of providers;
//   - the boundary band contains exactly the customers within the band
//     width (OtherDist − OwnDist ≤ band), and OwnDist is the true
//     global nearest-provider distance (the lower bound the release
//     rule quotes);
//   - aggregate region capacity equals the instance capacity, so
//     whenever the instance is feasible (Σ capacity ≥ |P|) the shards
//     collectively still are.
func FuzzShardPartition(f *testing.F) {
	f.Add(int64(1), uint8(5), uint8(40), uint8(2), 25.0)
	f.Add(int64(2), uint8(1), uint8(10), uint8(1), 0.0)
	f.Add(int64(3), uint8(12), uint8(200), uint8(4), 70.0)
	f.Add(int64(6), uint8(9), uint8(90), uint8(200), -5.0)
	f.Add(int64(10), uint8(6), uint8(0), uint8(3), 1000.0)
	f.Fuzz(func(t *testing.T, seed int64, nqRaw, npRaw, kRaw uint8, band float64) {
		nq := 1 + int(nqRaw)%32
		np := int(npRaw)
		k := int(kRaw)
		if math.IsNaN(band) || math.IsInf(band, 0) {
			band = 0
		}
		providers, pts := fuzzInstance(seed, nq, np)
		plan := Partition(providers, pts, k, band, core.DefaultSpace)

		wantK := k
		if wantK > nq {
			wantK = nq
		}
		if wantK < 1 {
			wantK = 1
		}
		if len(plan.Regions) != wantK {
			t.Fatalf("got %d regions, want %d (k=%d, nq=%d)", len(plan.Regions), wantK, k, nq)
		}

		// Providers: exactly one region each, no empty region, capacity
		// conserved, Hilbert-contiguous runs.
		seenProv := make([]int, nq)
		totalCap, shardCap := 0, 0
		for _, q := range providers {
			totalCap += q.Cap
		}
		prevMax := uint64(0)
		for r, reg := range plan.Regions {
			if len(reg.Providers) == 0 {
				t.Fatalf("region %d has no providers", r)
			}
			capSum := 0
			minKey, maxKey := ^uint64(0), uint64(0)
			for _, qi := range reg.Providers {
				seenProv[qi]++
				capSum += providers[qi].Cap
				if plan.ProviderRegion[qi] != r {
					t.Fatalf("provider %d: ProviderRegion %d, member of region %d", qi, plan.ProviderRegion[qi], r)
				}
				key := hilbert.PointKey(providers[qi].Pt, core.DefaultSpace)
				if key < minKey {
					minKey = key
				}
				if key > maxKey {
					maxKey = key
				}
			}
			if capSum != reg.Capacity {
				t.Fatalf("region %d capacity %d, Σ members %d", r, reg.Capacity, capSum)
			}
			shardCap += reg.Capacity
			if r > 0 && minKey < prevMax {
				t.Fatalf("region %d overlaps region %d on the Hilbert curve (%d < %d)", r, r-1, minKey, prevMax)
			}
			prevMax = maxKey
		}
		for qi, n := range seenProv {
			if n != 1 {
				t.Fatalf("provider %d appears in %d regions", qi, n)
			}
		}
		if shardCap != totalCap {
			t.Fatalf("aggregate region capacity %d != instance capacity %d", shardCap, totalCap)
		}
		if np > 0 && totalCap >= np && shardCap < np {
			t.Fatalf("feasible instance (Σk=%d >= |P|=%d) lost capacity to sharding (%d)", totalCap, np, shardCap)
		}

		// Customers: covered once, owner is the global nearest provider's
		// region, band membership matches the definition exactly.
		effBand := band
		if effBand < 0 {
			effBand = 0
		}
		seenCust := make([]int, np)
		for r, reg := range plan.Regions {
			inBoundary := make(map[int]bool, len(reg.Boundary))
			for _, j := range reg.Boundary {
				inBoundary[j] = true
			}
			for _, j := range reg.Owned {
				seenCust[j]++
				if plan.Owner[j] != r {
					t.Fatalf("customer %d: Owner %d but owned by region %d", j, plan.Owner[j], r)
				}
				if inBand := plan.OtherDist[j]-plan.OwnDist[j] <= effBand; inBand != inBoundary[j] {
					t.Fatalf("customer %d: band membership %v, want %v (own %g, other %g, band %g)",
						j, inBoundary[j], inBand, plan.OwnDist[j], plan.OtherDist[j], effBand)
				}
			}
		}
		for j, n := range seenCust {
			if n != 1 {
				t.Fatalf("customer %d owned by %d regions", j, n)
			}
		}
		for j, p := range pts {
			best := math.Inf(1)
			for _, q := range providers {
				if d := p.Dist(q.Pt); d < best {
					best = d
				}
			}
			if math.Abs(best-plan.OwnDist[j]) > 1e-9 {
				t.Fatalf("customer %d: OwnDist %g is not the global nearest-provider distance %g", j, plan.OwnDist[j], best)
			}
			ownBest := math.Inf(1)
			for _, qi := range plan.Regions[plan.Owner[j]].Providers {
				if d := p.Dist(providers[qi].Pt); d < ownBest {
					ownBest = d
				}
			}
			if math.Abs(ownBest-plan.OwnDist[j]) > 1e-9 {
				t.Fatalf("customer %d: owner region's nearest provider %g != OwnDist %g", j, ownBest, plan.OwnDist[j])
			}
		}
	})
}
