package shard_test

import (
	"context"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/rtree"
	"repro/internal/shard"
)

// sspaBase adapts core.SSPA as the shard SubSolver — the exact
// main-memory baseline, independent of the solver registry (which this
// package must not import).
func sspaBase(ctx context.Context, providers []core.Provider, _ *rtree.Tree, items []rtree.Item, opts core.Options) (*core.Result, error) {
	opts.Ctx = ctx
	return core.SSPA(providers, items, opts)
}

func instance(seed int64, nq, np, capLo, capHi int) ([]core.Provider, []rtree.Item) {
	rng := rand.New(rand.NewSource(seed))
	providers := make([]core.Provider, nq)
	for i := range providers {
		providers[i] = core.Provider{
			Pt:  geo.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000},
			Cap: capLo + rng.Intn(capHi-capLo+1),
		}
	}
	items := make([]rtree.Item, np)
	for i := range items {
		items[i] = rtree.Item{ID: int64(i), Pt: geo.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}}
	}
	return providers, items
}

func checkFeasible(t *testing.T, providers []core.Provider, np int, res *core.Result) {
	t.Helper()
	used := make([]int, len(providers))
	seen := make(map[int64]bool)
	sum := 0.0
	for _, pr := range res.Pairs {
		if seen[pr.CustomerID] {
			t.Fatalf("customer %d assigned twice", pr.CustomerID)
		}
		seen[pr.CustomerID] = true
		used[pr.Provider]++
		sum += pr.Dist
	}
	gamma := 0
	for qi, q := range providers {
		gamma += q.Cap
		if used[qi] > q.Cap {
			t.Fatalf("provider %d over capacity (%d > %d)", qi, used[qi], q.Cap)
		}
	}
	if np < gamma {
		gamma = np
	}
	if res.Size != gamma {
		t.Fatalf("matching size %d, want γ = %d", res.Size, gamma)
	}
	if math.Abs(sum-res.Cost) > 1e-6 {
		t.Fatalf("cost %v does not match pair sum %v", res.Cost, sum)
	}
}

// TestSolveFeasibleBothRegimes: the merged matching is feasible and
// maximum whether the provider side binds (tight) or the customer side
// does (loose, with capacity-starved regions stranding customers).
func TestSolveFeasibleBothRegimes(t *testing.T) {
	for _, tc := range []struct{ capLo, capHi int }{{1, 6}, {80, 120}} {
		for seed := int64(1); seed <= 4; seed++ {
			providers, items := instance(seed, 9, 300, tc.capLo, tc.capHi)
			res, stats, err := shard.Solve(context.Background(), providers, items,
				shard.Config{Shards: 3, Base: sspaBase}, core.Options{})
			if err != nil {
				t.Fatalf("seed %d caps [%d,%d]: %v", seed, tc.capLo, tc.capHi, err)
			}
			if stats.Shards != 3 {
				t.Fatalf("solved %d regions, want 3", stats.Shards)
			}
			checkFeasible(t, providers, len(items), res)
		}
	}
}

// TestSolveDeterministicAcrossWorkers: the worker count must change
// wall-clock time only — the merged pairs are byte-identical.
func TestSolveDeterministicAcrossWorkers(t *testing.T) {
	providers, items := instance(11, 12, 500, 4, 20)
	var ref *core.Result
	for _, workers := range []int{1, 2, 8} {
		res, _, err := shard.Solve(context.Background(), providers, items,
			shard.Config{Shards: 4, Workers: workers, Base: sspaBase}, core.Options{})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if ref == nil {
			ref = res
			continue
		}
		if !reflect.DeepEqual(ref.Pairs, res.Pairs) || ref.Cost != res.Cost || ref.Size != res.Size {
			t.Fatalf("workers=%d diverged: cost %v size %d vs cost %v size %d",
				workers, res.Cost, res.Size, ref.Cost, ref.Size)
		}
	}
}

// TestSolveCancellation: a dead context surfaces as an error, not a
// partial matching.
func TestSolveCancellation(t *testing.T) {
	providers, items := instance(5, 8, 400, 10, 30)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := shard.Solve(ctx, providers, items,
		shard.Config{Shards: 3, Base: sspaBase}, core.Options{}); err == nil {
		t.Fatal("cancelled sharded solve returned no error")
	}
}

// TestSolveEmpty: degenerate inputs produce empty matchings, not
// panics.
func TestSolveEmpty(t *testing.T) {
	providers, items := instance(2, 4, 50, 1, 3)
	res, _, err := shard.Solve(context.Background(), providers, nil,
		shard.Config{Shards: 2, Base: sspaBase}, core.Options{})
	if err != nil || res.Size != 0 {
		t.Fatalf("no customers: res %+v, err %v", res, err)
	}
	res, _, err = shard.Solve(context.Background(), nil, items,
		shard.Config{Shards: 2, Base: sspaBase}, core.Options{})
	if err != nil || res.Size != 0 {
		t.Fatalf("no providers: res %+v, err %v", res, err)
	}
	_ = providers
}
