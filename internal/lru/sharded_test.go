package lru

import (
	"fmt"
	"sync"
	"testing"
)

func TestShardedBasics(t *testing.T) {
	s := NewSharded[int, string](64, 4)
	if s.Shards() != 4 {
		t.Fatalf("shards = %d, want 4", s.Shards())
	}
	if s.Cap() < 64 {
		t.Fatalf("cap = %d, want >= 64", s.Cap())
	}
	if _, ok := s.Get(1); ok {
		t.Fatal("hit on empty cache")
	}
	s.Put(1, "a")
	s.Put(2, "b")
	if v, ok := s.Get(1); !ok || v != "a" {
		t.Fatalf("Get(1) = %q, %v", v, ok)
	}
	s.Put(1, "a2") // refresh
	if v, _ := s.Get(1); v != "a2" {
		t.Fatalf("refresh lost: %q", v)
	}
	if s.Len() != 2 {
		t.Fatalf("len = %d, want 2", s.Len())
	}
	st := s.Stats()
	if st.Hits != 2 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want 2 hits / 1 miss", st)
	}
}

// Shard counts round up to a power of two and every shard holds at
// least one entry, so the total bound is never below the request.
func TestShardedRounding(t *testing.T) {
	s := NewSharded[int, int](5, 3)
	if s.Shards() != 4 {
		t.Fatalf("shards = %d, want 4 (3 rounded up)", s.Shards())
	}
	if s.Cap() < 5 {
		t.Fatalf("cap = %d, want >= 5", s.Cap())
	}
	tiny := NewSharded[int, int](1, 0)
	if tiny.Shards() != DefaultShards {
		t.Fatalf("default shards = %d, want %d", tiny.Shards(), DefaultShards)
	}
	if tiny.Cap() < 1 {
		t.Fatal("zero-capacity shard")
	}
}

// The total entry count stays bounded under sustained inserts: each
// shard evicts its own LRU tail.
func TestShardedEviction(t *testing.T) {
	s := NewSharded[int, int](32, 8)
	for i := 0; i < 10_000; i++ {
		s.Put(i, i)
	}
	if s.Len() > s.Cap() {
		t.Fatalf("len %d exceeds cap %d", s.Len(), s.Cap())
	}
	if ev := s.Stats().Evictions; ev == 0 {
		t.Fatal("no evictions recorded after 10k inserts into a 32-entry cache")
	}
}

// Concurrent mixed Get/Put from many goroutines must be race-free and
// never lose the bound (run under -race in CI).
func TestShardedConcurrent(t *testing.T) {
	s := NewSharded[int, int](128, 8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				k := (g*31 + i) % 500
				if v, ok := s.Get(k); ok && v != k {
					t.Errorf("Get(%d) = %d", k, v)
					return
				}
				s.Put(k, k)
			}
		}(g)
	}
	wg.Wait()
	if s.Len() > s.Cap() {
		t.Fatalf("len %d exceeds cap %d", s.Len(), s.Cap())
	}
}

// The ROADMAP-noted contention tradeoff: warm hits on the single-lock
// Cache serialize every reader behind one mutex, while the sharded
// variant spreads them over independently locked shards. Compare:
//
//	go test ./internal/lru -run '^$' -bench WarmHitParallel -cpu 8
type warmCache interface {
	Get(int) (int, bool)
	Put(int, int)
}

func benchWarmHits(b *testing.B, c warmCache) {
	const keys = 1024
	for i := 0; i < keys; i++ {
		c.Put(i, i)
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			k := i & (keys - 1)
			if _, ok := c.Get(k); !ok {
				b.Fatal("warm miss")
			}
			i++
		}
	})
}

func BenchmarkWarmHitParallelSingle(b *testing.B) {
	benchWarmHits(b, New[int, int](2048))
}

func BenchmarkWarmHitParallelSharded(b *testing.B) {
	for _, shards := range []int{4, 16, 64} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			benchWarmHits(b, NewSharded[int, int](2048, shards))
		})
	}
}
