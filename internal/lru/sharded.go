package lru

import "hash/maphash"

// DefaultShards is the shard count NewSharded uses for counts < 1: high
// enough that GOMAXPROCS-many workers hammering one warm cache rarely
// collide on a shard mutex, low enough that per-shard capacity stays
// meaningful for small caches.
const DefaultShards = 16

// Sharded is a bounded LRU split into independently locked shards by key
// hash. Semantically it is a Cache whose recency order is approximate
// across shards (each shard evicts its own LRU entry), which is exactly
// the tradeoff wanted under contention: a hit takes one *shard* mutex
// instead of serializing every reader behind a single cache-wide lock.
// The road-network metric's snap and node-pair caches use it so many
// engine workers sharing one warm metric scale instead of convoying.
//
// All methods are safe for concurrent use. The zero value is not usable;
// build one with NewSharded.
type Sharded[K comparable, V any] struct {
	seed   maphash.Seed
	shards []*Cache[K, V]
	mask   uint64
}

// NewSharded returns a sharded cache bounded to (at least) capacity
// entries in total, split over shards independently locked LRUs. The
// shard count is rounded up to a power of two (counts < 1 select
// DefaultShards); capacity is divided evenly with each shard holding at
// least one entry, so the total bound is capacity rounded up to a
// multiple of the shard count.
func NewSharded[K comparable, V any](capacity, shards int) *Sharded[K, V] {
	if shards < 1 {
		shards = DefaultShards
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	per := (capacity + n - 1) / n
	if per < 1 {
		per = 1
	}
	s := &Sharded[K, V]{
		seed:   maphash.MakeSeed(),
		shards: make([]*Cache[K, V], n),
		mask:   uint64(n - 1),
	}
	for i := range s.shards {
		s.shards[i] = New[K, V](per)
	}
	return s
}

// shard returns the cache responsible for key.
func (s *Sharded[K, V]) shard(key K) *Cache[K, V] {
	return s.shards[maphash.Comparable(s.seed, key)&s.mask]
}

// Get returns the cached value for key, marking it most recently used
// within its shard.
func (s *Sharded[K, V]) Get(key K) (V, bool) { return s.shard(key).Get(key) }

// Put inserts or refreshes key's value, evicting its shard's least
// recently used entry when that shard is full.
func (s *Sharded[K, V]) Put(key K, value V) { s.shard(key).Put(key, value) }

// Len returns the total number of cached entries across shards.
func (s *Sharded[K, V]) Len() int {
	n := 0
	for _, c := range s.shards {
		n += c.Len()
	}
	return n
}

// Cap returns the total capacity across shards.
func (s *Sharded[K, V]) Cap() int {
	n := 0
	for _, c := range s.shards {
		n += c.Cap()
	}
	return n
}

// Shards returns the shard count.
func (s *Sharded[K, V]) Shards() int { return len(s.shards) }

// Stats returns the summed activity counters of every shard. The sum is
// not a single atomic snapshot — shards are read one at a time — but
// each counter is monotone, so the result is a consistent lower bound.
func (s *Sharded[K, V]) Stats() Stats {
	var out Stats
	for _, c := range s.shards {
		st := c.Stats()
		out.Hits += st.Hits
		out.Misses += st.Misses
		out.Evictions += st.Evictions
	}
	return out
}
