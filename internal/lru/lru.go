// Package lru provides a small, concurrency-safe, bounded LRU cache
// with hit/miss/eviction accounting. It backs every long-lived cache in
// the repository — the scheduler's cross-instance result cache and the
// road-network metric's snap and node-pair caches — so server processes
// hold their working sets without growing without bound.
package lru

import "sync"

// Stats is a snapshot of a cache's activity counters.
type Stats struct {
	Hits      uint64 // Get calls served from the cache
	Misses    uint64 // Get calls that found nothing
	Evictions uint64 // entries displaced by Put on a full cache
}

// HitRate returns the fraction of lookups served from the cache
// (0 when no lookups happened).
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// entry is one cache slot, threaded onto an intrusive recency list.
type entry[K comparable, V any] struct {
	key        K
	value      V
	prev, next *entry[K, V]
}

// Cache is a bounded least-recently-used cache. The zero value is not
// usable; build one with New. All methods are safe for concurrent use.
type Cache[K comparable, V any] struct {
	mu      sync.Mutex
	cap     int
	entries map[K]*entry[K, V]
	// head is most recently used, tail least; nil when empty.
	head, tail *entry[K, V]
	stats      Stats
}

// New returns a cache bounded to capacity entries. Capacities < 1 are
// clamped to 1: a zero-capacity LRU is indistinguishable from a bug at
// the call site, and callers that want "no cache" should not build one.
// The map grows on demand rather than preallocating the full bound —
// million-entry capacities are working-set ceilings, not expected
// sizes, and a fresh metric's caches should not cost tens of megabytes
// of empty buckets.
func New[K comparable, V any](capacity int) *Cache[K, V] {
	hint := capacity
	if hint > 4096 {
		hint = 4096
	}
	if capacity < 1 {
		capacity = 1
	}
	return &Cache[K, V]{
		cap:     capacity,
		entries: make(map[K]*entry[K, V], hint),
	}
}

// Get returns the cached value for key, marking it most recently used.
func (c *Cache[K, V]) Get(key K) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok {
		c.stats.Misses++
		var zero V
		return zero, false
	}
	c.stats.Hits++
	c.moveToFront(e)
	return e.value, true
}

// Put inserts or refreshes key's value, evicting the least recently
// used entry when the cache is at capacity.
func (c *Cache[K, V]) Put(key K, value V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[key]; ok {
		e.value = value
		c.moveToFront(e)
		return
	}
	if len(c.entries) >= c.cap {
		c.evictLocked()
	}
	e := &entry[K, V]{key: key, value: value}
	c.entries[key] = e
	c.pushFront(e)
}

// Len returns the number of cached entries.
func (c *Cache[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Cap returns the cache's capacity.
func (c *Cache[K, V]) Cap() int { return c.cap }

// Stats returns a snapshot of the activity counters.
func (c *Cache[K, V]) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

func (c *Cache[K, V]) evictLocked() {
	t := c.tail
	if t == nil {
		return
	}
	c.unlink(t)
	delete(c.entries, t.key)
	c.stats.Evictions++
}

func (c *Cache[K, V]) pushFront(e *entry[K, V]) {
	e.prev = nil
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *Cache[K, V]) moveToFront(e *entry[K, V]) {
	if c.head == e {
		return
	}
	c.unlink(e)
	c.pushFront(e)
}

func (c *Cache[K, V]) unlink(e *entry[K, V]) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}
