package lru

import (
	"fmt"
	"sync"
	"testing"
)

func TestEvictionOrder(t *testing.T) {
	c := New[int, string](2)
	c.Put(1, "a")
	c.Put(2, "b")
	if _, ok := c.Get(1); !ok { // 1 becomes most recent
		t.Fatal("1 missing")
	}
	c.Put(3, "c") // evicts 2, the LRU entry
	if _, ok := c.Get(2); ok {
		t.Error("2 should have been evicted")
	}
	if v, ok := c.Get(1); !ok || v != "a" {
		t.Errorf("1 = %q/%v, want a/true", v, ok)
	}
	if v, ok := c.Get(3); !ok || v != "c" {
		t.Errorf("3 = %q/%v, want c/true", v, ok)
	}
	st := c.Stats()
	if st.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", st.Evictions)
	}
	if st.Hits != 3 || st.Misses != 1 {
		t.Errorf("hits/misses = %d/%d, want 3/1", st.Hits, st.Misses)
	}
	if c.Len() != 2 {
		t.Errorf("len = %d, want 2", c.Len())
	}
}

func TestPutRefreshesExisting(t *testing.T) {
	c := New[string, int](2)
	c.Put("x", 1)
	c.Put("y", 2)
	c.Put("x", 3) // refresh, not insert: no eviction
	c.Put("z", 4) // evicts y (x was refreshed more recently)
	if _, ok := c.Get("y"); ok {
		t.Error("y should have been evicted")
	}
	if v, _ := c.Get("x"); v != 3 {
		t.Errorf("x = %d, want refreshed value 3", v)
	}
	if got := c.Stats().Evictions; got != 1 {
		t.Errorf("evictions = %d, want 1", got)
	}
}

func TestCapacityClamped(t *testing.T) {
	c := New[int, int](0)
	if c.Cap() != 1 {
		t.Fatalf("cap = %d, want clamp to 1", c.Cap())
	}
	c.Put(1, 1)
	c.Put(2, 2)
	if c.Len() != 1 {
		t.Errorf("len = %d, want 1", c.Len())
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New[string, int](64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := fmt.Sprintf("k%d", (g*31+i)%100)
				if v, ok := c.Get(k); ok && v < 0 {
					t.Error("negative value cached")
				}
				c.Put(k, i)
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 64 {
		t.Errorf("len = %d exceeds capacity 64", c.Len())
	}
}
