package flowgraph

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"repro/internal/pqueue"
)

// searchState holds the per-iteration Dijkstra labels. Arrays are epoch
// stamped so a new iteration does not pay O(V) re-initialization.
type searchState struct {
	epoch   int64
	alpha   []float64
	prev    []NodeID
	seenAt  []int64 // epoch when alpha/prev were last written
	doneAt  []int64 // epoch when the node was finalized (popped)
	heapIt  []*pqueue.Item[NodeID]
	heapAt  []int64 // epoch when heapIt is valid
	visited []NodeID

	heap   pqueue.Heap[NodeID] // Hd: the main Dijkstra frontier
	repair pqueue.Heap[NodeID] // Hf: the PUA repair frontier
	repIt  []*pqueue.Item[NodeID]
	repAt  []int64

	tBest float64 // shortest known source→sink cost this iteration
	vmin  NodeID  // finalized non-full customer realizing tBest
}

// statePool recycles searchState scratch across graphs, so back-to-back
// solves (the batch engine's workload) stop allocating label arrays and
// heap storage. The epoch counter is deliberately preserved across
// reuses: it only ever increments, so stamps written by a previous owner
// can never equal a later owner's epoch and the arrays need no zeroing.
var statePool = sync.Pool{New: func() any { return &searchState{} }}

// acquireSearchState returns a pooled searchState grown to n nodes with
// empty heaps.
func acquireSearchState(n int) *searchState {
	s := statePool.Get().(*searchState)
	s.grow(n)
	s.heap.Clear()
	s.repair.Clear()
	s.visited = s.visited[:0]
	s.tBest = math.Inf(1)
	s.vmin = -1
	return s
}

// release returns the state to the pool. Handle arrays are nilled so
// the pooled state does not pin the last solve's pqueue items (Clear
// truncates the heaps but keeps their backing arrays; the nil stores
// below make the retained slots unreachable too).
func (s *searchState) release() {
	s.heap.Clear()
	s.repair.Clear()
	for i := range s.heapIt {
		s.heapIt[i] = nil
	}
	for i := range s.repIt {
		s.repIt[i] = nil
	}
	statePool.Put(s)
}

func (s *searchState) grow(n int) {
	for len(s.alpha) < n {
		s.alpha = append(s.alpha, 0)
		s.prev = append(s.prev, 0)
		s.seenAt = append(s.seenAt, 0)
		s.doneAt = append(s.doneAt, 0)
		s.heapIt = append(s.heapIt, nil)
		s.heapAt = append(s.heapAt, 0)
		s.repIt = append(s.repIt, nil)
		s.repAt = append(s.repAt, 0)
	}
}

func (s *searchState) seen(v NodeID) bool { return s.seenAt[v] == s.epoch }
func (s *searchState) done(v NodeID) bool { return s.doneAt[v] == s.epoch }

// BeginIteration starts a fresh shortest-path search for the current
// residual graph: the frontier is seeded with every non-full provider at
// α(q) = w(s,q) = q.τ − s.τ.
func (g *Graph) BeginIteration() {
	s := g.search
	s.epoch++
	s.grow(len(g.providers) + len(g.customers))
	s.heap.Clear()
	s.repair.Clear()
	s.visited = s.visited[:0]
	s.tBest = math.Inf(1)
	s.vmin = -1
	g.stats.Dijkstras++
	for q := range g.providers {
		if g.ProviderFull(int32(q)) {
			continue
		}
		v := NodeID(q)
		a := g.tau[v] - g.sTau
		if a < 0 {
			a = 0 // guard against float drift; theory keeps this >= 0
		}
		s.alpha[v] = a
		s.prev[v] = sourceNode
		s.seenAt[v] = s.epoch
		s.heapIt[v] = s.heap.Push(v, a)
		s.heapAt[v] = s.epoch
	}
}

// Search continues the current iteration's Dijkstra until the sink's
// shortest path is finalized. It returns the terminal customer node vmin
// and the path cost (vmin.α in the paper's terms). ok is false when the
// sink is unreachable in the current Esub.
func (g *Graph) Search() (vmin NodeID, cost float64, ok bool) {
	s := g.search
	for s.heap.Len() > 0 {
		if top := s.heap.Peek(); top.Key() >= s.tBest {
			break
		}
		it := s.heap.Pop()
		v := it.Value
		s.heapIt[v] = nil
		s.doneAt[v] = s.epoch
		s.visited = append(s.visited, v)
		g.stats.Pops++
		if g.isCustomerNode(v) {
			c := g.custIdx(v)
			if !g.CustomerFull(c) {
				// Zero-cost edge to the sink: this path ends here, and no
				// other node at key >= α(v) can improve on it.
				s.tBest = s.alpha[v]
				s.vmin = v
				continue
			}
			g.relaxCustomer(c)
		} else {
			g.lastAlpha[v] = s.alpha[v]
			g.relaxProvider(int32(v))
		}
		// A relaxation may have improved an already-finalized node (this
		// happens in resumed searches after mid-iteration edge inserts);
		// propagate such improvements before the next pop.
		if s.repair.Len() > 0 {
			g.drainRepair()
		}
	}
	if s.vmin < 0 {
		return -1, math.Inf(1), false
	}
	return s.vmin, s.tBest, true
}

// relaxProvider relaxes every forward residual edge out of provider q.
func (g *Graph) relaxProvider(q int32) {
	s := g.search
	base := s.alpha[q] - g.tau[q]
	if g.complete {
		for c := range g.customers {
			c32 := int32(c)
			if g.forwardSaturated(c32, q) {
				continue
			}
			node := g.customerNode(c32)
			g.relax(node, base+g.dist(q, c32)+g.tau[node], NodeID(q))
		}
		return
	}
	for _, he := range g.adj[q] {
		if g.forwardSaturated(he.cust, q) {
			continue
		}
		node := g.customerNode(he.cust)
		g.relax(node, base+he.dist+g.tau[node], NodeID(q))
	}
}

// relaxCustomer relaxes the reversed residual edges out of customer c
// (one per provider c is assigned to).
func (g *Graph) relaxCustomer(c int32) {
	s := g.search
	node := g.customerNode(c)
	base := s.alpha[node] - g.tau[node]
	for _, q := range g.assigned[c] {
		// Reversed edge cost: −dist − τ(p) + τ(q).
		g.relax(NodeID(q), base-g.dist(q, c)+g.tau[q], node)
	}
}

// relax offers node v a path of cost nd via from.
func (g *Graph) relax(v NodeID, nd float64, from NodeID) {
	g.stats.Relaxations++
	g.offer(v, nd, from)
}

// InsertEdgeAndRepair adds edge (q,c) to Esub mid-iteration and repairs
// the current search state with the Path Update Algorithm (§3.4.1)
// instead of restarting Dijkstra. Call Search afterwards to resume.
func (g *Graph) InsertEdgeAndRepair(q, c int32) {
	d := g.AddEdge(q, c)
	s := g.search
	g.stats.Resumes++
	if !s.seen(NodeID(q)) {
		// q unreached so far: the new edge cannot shorten anything yet;
		// it will be relaxed if/when q is popped.
		return
	}
	// Offer the new edge. If q is still on the frontier this is a plain
	// relaxation (q's out-edges are relaxed again when popped); if q is
	// finalized, the improvement ripples through the settled region.
	node := g.customerNode(c)
	g.offer(node, s.alpha[q]-g.tau[q]+d+g.tau[node], NodeID(q))
	g.drainRepair()
}

// improveEps is the minimum improvement a relaxation must achieve to be
// applied. When per-pair capacity exceeds 1, the forward and reversed
// residual edges of a partially-assigned pair coexist with reduced costs
// that sum to zero in exact arithmetic; floating-point rounding can make
// that sum infinitesimally negative, and without this guard the prev
// pointers could form a 2-cycle of "improvements" that never terminates.
const improveEps = 1e-12

// offer is PUA's relaxation: like relax, but improvements to finalized
// nodes are queued on the repair heap Hf so they propagate onward.
func (g *Graph) offer(v NodeID, nd float64, from NodeID) {
	s := g.search
	if s.seen(v) && nd >= s.alpha[v]-improveEps {
		return
	}
	s.alpha[v] = nd
	s.prev[v] = from
	s.seenAt[v] = s.epoch
	if s.done(v) {
		// Finalized node improved: update tBest if it is a terminal, and
		// schedule re-relaxation of its out-edges.
		if g.isCustomerNode(v) && !g.CustomerFull(g.custIdx(v)) && nd < s.tBest {
			s.tBest = nd
			s.vmin = v
		}
		if s.repAt[v] == s.epoch && s.repIt[v] != nil && s.repIt[v].InHeap() {
			s.repair.Update(s.repIt[v], nd)
		} else {
			s.repIt[v] = s.repair.Push(v, nd)
			s.repAt[v] = s.epoch
		}
		return
	}
	// Frontier (or fresh) node: update Hd.
	if s.heapAt[v] == s.epoch && s.heapIt[v] != nil {
		s.heap.Update(s.heapIt[v], nd)
	} else {
		s.heapIt[v] = s.heap.Push(v, nd)
		s.heapAt[v] = s.epoch
	}
}

// drainRepair propagates PUA improvements in ascending α order until the
// settled region is consistent again.
func (g *Graph) drainRepair() {
	s := g.search
	for s.repair.Len() > 0 {
		it := s.repair.Pop()
		v := it.Value
		g.stats.Repairs++
		if g.isCustomerNode(v) {
			c := g.custIdx(v)
			if g.CustomerFull(c) {
				node := g.customerNode(c)
				base := s.alpha[node] - g.tau[node]
				for _, q := range g.assigned[c] {
					g.offer(NodeID(q), base-g.dist(q, c)+g.tau[q], node)
				}
			}
			continue
		}
		q := int32(v)
		g.lastAlpha[q] = s.alpha[v]
		base := s.alpha[v] - g.tau[v]
		for _, he := range g.adj[q] {
			if g.forwardSaturated(he.cust, q) {
				continue
			}
			node := g.customerNode(he.cust)
			g.offer(node, base+he.dist+g.tau[node], NodeID(q))
		}
	}
}

// ErrNoPath is returned by Augment when no shortest path was found.
var ErrNoPath = errors.New("flowgraph: no augmenting path to apply")

// Augment applies the shortest path found by Search: the path's edges are
// reversed (assignments flipped) and the potentials of all visited nodes
// are updated by τ(v) += sp.cost − α(v), exactly as SSPA does (Algorithm
// 1, Lines 4–11).
func (g *Graph) Augment() error {
	s := g.search
	if s.vmin < 0 {
		return ErrNoPath
	}
	// Flip the path from vmin back to the source. The walk is bounded by
	// the node count: Dijkstra paths are simple, so exceeding it means
	// the prev pointers were corrupted (made impossible by improveEps,
	// but guarded against regression).
	v := s.vmin
	maxSteps := len(g.providers) + len(g.customers) + 1
	for steps := 0; ; steps++ {
		if steps > maxSteps {
			return fmt.Errorf("flowgraph: augmenting path exceeds %d nodes (prev cycle)", maxSteps)
		}
		u := s.prev[v]
		if u == sourceNode {
			g.provUsed[v]++
			break
		}
		if g.isCustomerNode(v) {
			c := g.custIdx(v)
			g.assign(c, int32(u), g.dist(int32(u), c))
		} else {
			c := g.custIdx(u)
			if err := g.unassign(c, int32(v)); err != nil {
				return err
			}
		}
		v = u
	}
	g.custUsed[g.custIdx(s.vmin)]++

	if g.noPotentials {
		return nil
	}
	// Potential update for visited nodes (the paper's Lines 8-9); nodes
	// finalized above the final sp cost keep their potential, matching
	// the min(α, cost) form that preserves non-negative reduced costs.
	for _, v := range s.visited {
		if delta := s.tBest - s.alpha[v]; delta > 0 {
			g.tau[v] += delta
		}
	}
	g.sTau += s.tBest
	// Recompute τmax over providers (Line 10).
	g.tauMax = 0
	for q := range g.providers {
		if g.tau[q] > g.tauMax {
			g.tauMax = g.tau[q]
		}
	}
	return nil
}

// CheckReducedCosts verifies that every residual edge has non-negative
// reduced cost under the current potentials — the invariant Dijkstra
// correctness rests on. Test helper; tol absorbs float drift.
func (g *Graph) CheckReducedCosts(tol float64) error {
	for q := range g.providers {
		q32 := int32(q)
		if !g.ProviderFull(q32) {
			if w := g.tau[q] - g.sTau; w < -tol {
				return fmt.Errorf("edge s->q%d has reduced cost %g", q, w)
			}
		}
		for _, he := range g.adj[q] {
			node := g.customerNode(he.cust)
			if g.instanceCount(he.cust, q32) > 0 {
				// Reversed edge p->q exists.
				if w := -he.dist - g.tau[node] + g.tau[q]; w < -tol {
					return fmt.Errorf("edge p%d->q%d has reduced cost %g", he.cust, q, w)
				}
			}
			if !g.forwardSaturated(he.cust, q32) {
				if w := he.dist - g.tau[q] + g.tau[node]; w < -tol {
					return fmt.Errorf("edge q%d->p%d has reduced cost %g", q, he.cust, w)
				}
			}
		}
	}
	for c := range g.customers {
		if !g.CustomerFull(int32(c)) {
			node := g.customerNode(int32(c))
			if w := -g.tau[node]; w < -tol {
				return fmt.Errorf("edge p%d->t has reduced cost %g", c, w)
			}
		}
	}
	return nil
}
