package flowgraph

import "fmt"

// This file holds the residual-graph primitives behind the full churn
// model of the dynamic matcher: customer removal, provider capacity
// resize, and negative-cycle canceling. The successive-shortest-path
// invariant only covers *arrivals* (augmenting along a shortest path
// from an optimal state stays optimal); removing flow or adding source
// capacity can create negative cycles in the residual graph, so repair
// after a departure or resize is: restore maximality by augmenting,
// then cancel negative residual cycles until none remain. Every cancel
// strictly reduces Ψ(M) at unchanged flow value, so the process
// terminates, and a residual graph with no negative cycle certifies a
// minimum-cost flow at its value — regardless of the order repairs ran
// in. All of this requires DisablePotentials mode (raw edge costs).

// IsLive reports whether customer c is still present (not removed).
func (g *Graph) IsLive(c int32) bool {
	return int(c) < len(g.livePos) && g.livePos[c] >= 0
}

// LiveCount returns the number of customers currently present.
func (g *Graph) LiveCount() int { return len(g.live) }

// LiveCustomers returns a fresh snapshot of the customers still
// present, in live-list order (arbitrary after removals). The oracle
// side of the churn conformance suite re-solves from this snapshot.
func (g *Graph) LiveCustomers() []Customer {
	out := make([]Customer, 0, len(g.live))
	for _, c := range g.live {
		out = append(out, g.customers[c])
	}
	return out
}

// ProviderUsed returns the flow on e(s,q): how many assignments
// provider q currently carries.
func (g *Graph) ProviderUsed(q int32) int { return g.provUsed[q] }

// CustomerProviders returns the providers customer c is assigned to
// (usually zero or one in the exact pair-capacity-1 setting).
func (g *Graph) CustomerProviders(c int32) []int32 { return g.assigned[c] }

// RemoveCustomer deletes customer c from the graph: its assignments
// are released (freeing provider capacity), its own capacity is zeroed
// so it can never terminate a path again, and it is dropped from the
// live list so the label-correcting searches stop visiting it. The
// resulting matching is feasible but possibly neither maximum nor
// minimum-cost; callers repair with augmenting searches and
// CancelNegativeCycle.
func (g *Graph) RemoveCustomer(c int32) error {
	if !g.IsLive(c) {
		return fmt.Errorf("flowgraph: remove: customer %d not live", c)
	}
	for _, q := range g.assigned[c] {
		g.provUsed[q]--
	}
	g.assigned[c] = g.assigned[c][:0]
	g.custUsed[c] = 0
	g.customers[c].Cap = 0
	pos := g.livePos[c]
	last := g.live[len(g.live)-1]
	g.live[pos] = last
	g.livePos[last] = pos
	g.live = g.live[:len(g.live)-1]
	g.livePos[c] = -1
	return nil
}

// SetProviderCap changes provider q's capacity. Growing may open
// augmenting opportunities and can also create negative residual
// cycles (a customer matched elsewhere may now prefer q); shrinking
// below the current usage leaves e(s,q) over-saturated until the
// caller evicts assignments (EvictLongestAssignment). The provider
// slice must be owned by this graph's caller — the dynamic matcher
// copies it at construction.
func (g *Graph) SetProviderCap(q int32, newCap int) error {
	if q < 0 || int(q) >= len(g.providers) {
		return fmt.Errorf("flowgraph: resize: provider %d out of range [0,%d)", q, len(g.providers))
	}
	if newCap < 0 {
		return fmt.Errorf("flowgraph: resize: provider %d capacity %d is negative", q, newCap)
	}
	g.providers[q].Cap = newCap
	return nil
}

// EvictLongestAssignment unassigns provider q's longest current
// assignment edge and returns the customer it was serving (now
// unmatched but still live). Used when a resize shrinks q below its
// usage: the longest edge is the costliest to keep, and the follow-up
// repair re-routes the evicted customer optimally anyway.
func (g *Graph) EvictLongestAssignment(q int32) (int32, error) {
	best := int32(-1)
	bestD := -1.0
	for _, c := range g.live {
		for _, a := range g.assigned[c] {
			if a != q {
				continue
			}
			if d := g.dist(q, c); d > bestD {
				bestD, best = d, c
			}
		}
	}
	if best < 0 {
		return -1, fmt.Errorf("flowgraph: evict: provider %d has no assignments", q)
	}
	if err := g.unassign(best, q); err != nil {
		return -1, err
	}
	g.provUsed[q]--
	g.custUsed[best]--
	return best, nil
}

// CheckFlowConservation verifies the residual graph's flow invariants:
// every provider's e(s,q) flow equals its assignment count, every live
// customer's e(p,t) flow equals its assignment count and respects its
// capacity, and removed customers carry nothing. The churn fuzz suite
// calls this after every event.
func (g *Graph) CheckFlowConservation() error {
	perProv := make([]int, len(g.providers))
	for c := range g.customers {
		c32 := int32(c)
		for _, q := range g.assigned[c] {
			perProv[q]++
		}
		if !g.IsLive(c32) {
			if len(g.assigned[c]) != 0 || g.custUsed[c] != 0 {
				return fmt.Errorf("flowgraph: removed customer %d still carries %d assignments, custUsed %d",
					c, len(g.assigned[c]), g.custUsed[c])
			}
			continue
		}
		if g.custUsed[c] != len(g.assigned[c]) {
			return fmt.Errorf("flowgraph: customer %d custUsed %d != %d assignments",
				c, g.custUsed[c], len(g.assigned[c]))
		}
		if g.custUsed[c] > g.customers[c].Cap {
			return fmt.Errorf("flowgraph: customer %d custUsed %d > cap %d",
				c, g.custUsed[c], g.customers[c].Cap)
		}
	}
	for q := range g.providers {
		if g.provUsed[q] != perProv[q] {
			return fmt.Errorf("flowgraph: provider %d provUsed %d != %d assignments",
				q, g.provUsed[q], perProv[q])
		}
		if g.provUsed[q] > g.providers[q].Cap {
			return fmt.Errorf("flowgraph: provider %d provUsed %d > cap %d",
				q, g.provUsed[q], g.providers[q].Cap)
		}
	}
	return nil
}

// cycleEps is the minimum per-edge improvement a cycle-detecting
// relaxation must achieve. It guarantees termination (every cancel
// strictly reduces Ψ(M)) while tolerating only float-noise
// sub-optimality. It must not exceed improveEps: any cycle the SPFA
// searches can keep relaxing around (and hence flag as
// ErrNegativeCycle) must be one CancelNegativeCycle can find, or the
// cancel-and-retry loop in the dynamic matcher would spin.
const cycleEps = improveEps

// CancelNegativeCycle finds one negative-cost cycle in the residual
// graph — including cycles through the implicit source s (capacity
// rebalancing between providers) and sink t (swapping which customer
// is matched) — and cancels it, strictly reducing the matching cost at
// unchanged size. It returns false when no such cycle exists, which
// certifies the current matching is a minimum-cost flow at its value.
// Requires DisablePotentials mode.
//
// The search is a Bellman–Ford pass from a virtual super-source (every
// node starts at distance 0), over the explicit node set providers +
// customers + s + t; a relaxation still firing after |V| rounds pins a
// negative cycle, recovered by walking the prev chain.
func (g *Graph) CancelNegativeCycle() (bool, error) {
	nq := len(g.providers)
	n := nq + len(g.customers) + 2
	sNode := NodeID(n - 2)
	tNode := NodeID(n - 1)
	dist := make([]float64, n)
	prev := make([]NodeID, n)
	for i := range prev {
		prev[i] = -1
	}
	g.stats.Dijkstras++
	// Removed customers have no residual edges, so convergence (and any
	// cycle's length) is bounded by the active node count, not n.
	active := nq + len(g.live) + 2
	improved := NodeID(-1)
	for round := 0; round <= active; round++ {
		improved = -1
		relax := func(u, v NodeID, w float64) {
			if nd := dist[u] + w; nd < dist[v]-cycleEps {
				dist[v] = nd
				prev[v] = u
				improved = v
				g.stats.Relaxations++
			}
		}
		for q := 0; q < nq; q++ {
			q32 := int32(q)
			if !g.ProviderFull(q32) {
				relax(sNode, NodeID(q), 0)
			}
			if g.provUsed[q] > 0 {
				relax(NodeID(q), sNode, 0)
			}
		}
		for _, c := range g.live {
			node := g.customerNode(c)
			if g.complete {
				for q := 0; q < nq; q++ {
					q32 := int32(q)
					if !g.forwardSaturated(c, q32) {
						relax(NodeID(q), node, g.dist(q32, c))
					}
				}
			}
			for _, q := range g.assigned[c] {
				relax(node, NodeID(q), -g.dist(q, c))
			}
			if !g.CustomerFull(c) {
				relax(node, tNode, 0)
			}
			if g.custUsed[c] > 0 {
				relax(tNode, node, 0)
			}
		}
		if !g.complete {
			for q := 0; q < nq; q++ {
				q32 := int32(q)
				for _, he := range g.adj[q] {
					if !g.IsLive(he.cust) || g.forwardSaturated(he.cust, q32) {
						continue
					}
					relax(NodeID(q), g.customerNode(he.cust), he.dist)
				}
			}
		}
		if improved < 0 {
			return false, nil
		}
	}
	// A node relaxed on the final round is reachable from a negative
	// cycle; `active` prev-steps land inside it.
	v := improved
	for i := 0; i < active; i++ {
		v = prev[v]
	}
	cycle := []NodeID{v}
	for u := prev[v]; u != v; u = prev[u] {
		cycle = append(cycle, u)
		if len(cycle) > active {
			return false, fmt.Errorf("flowgraph: cycle walk exceeded %d nodes", active)
		}
	}
	for _, w := range cycle {
		if err := g.applyResidualEdge(prev[w], w, sNode, tNode); err != nil {
			return false, err
		}
	}
	return true, nil
}

// applyResidualEdge pushes one unit of flow along residual edge u→v,
// where u and v are CancelNegativeCycle's node ids (providers,
// customers, or the explicit s/t).
func (g *Graph) applyResidualEdge(u, v, sNode, tNode NodeID) error {
	switch {
	case u == sNode: // s→q: provider takes on one more unit
		if v < 0 || int(v) >= len(g.providers) {
			return fmt.Errorf("flowgraph: cycle edge s->%d is not a provider", v)
		}
		g.provUsed[v]++
	case v == sNode: // q→s: provider releases one unit
		if u < 0 || int(u) >= len(g.providers) {
			return fmt.Errorf("flowgraph: cycle edge %d->s is not a provider", u)
		}
		g.provUsed[u]--
	case u == tNode: // t→p: customer loses its sink flow
		if !g.isCustomerNode(v) {
			return fmt.Errorf("flowgraph: cycle edge t->%d is not a customer", v)
		}
		g.custUsed[g.custIdx(v)]--
	case v == tNode: // p→t: customer becomes matched
		if !g.isCustomerNode(u) {
			return fmt.Errorf("flowgraph: cycle edge %d->t is not a customer", u)
		}
		g.custUsed[g.custIdx(u)]++
	case g.isCustomerNode(u): // reversed p→q: unassign
		if g.isCustomerNode(v) {
			return fmt.Errorf("flowgraph: cycle edge %d->%d joins two customers", u, v)
		}
		return g.unassign(g.custIdx(u), int32(v))
	default: // forward q→p: assign
		if !g.isCustomerNode(v) {
			return fmt.Errorf("flowgraph: cycle edge %d->%d joins two providers", u, v)
		}
		c := g.custIdx(v)
		g.assign(c, int32(u), g.dist(int32(u), c))
	}
	return nil
}
