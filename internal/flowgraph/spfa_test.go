package flowgraph

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geo"
)

// Label-correcting iterations over raw costs must solve the same MCF as
// the potential-based Dijkstra iterations.
func TestLabelCorrectingMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 20; trial++ {
		providers := randProviders(2+rng.Intn(4), func(int) int { return 1 + rng.Intn(4) }, rng)
		customers := randCustomers(1+rng.Intn(20), rng)
		g := NewGraph(providers, true)
		g.DisablePotentials()
		for _, c := range customers {
			g.AddCustomer(c.Pt, c.Cap, c.ExtID)
		}
		for {
			if _, _, ok, err := g.SearchLabelCorrecting(); err != nil {
				t.Fatal(err)
			} else if !ok {
				break
			}
			if err := g.Augment(); err != nil {
				t.Fatal(err)
			}
		}
		_, want := RefSolve(providers, customers)
		if math.Abs(g.Cost()-want) > 1e-6*(1+want) {
			t.Fatalf("trial %d: cost %v want %v", trial, g.Cost(), want)
		}
	}
}

// SwapArrival: with zero remaining capacity, a strictly closer customer
// must displace the most expensive one; a farther customer must be left
// out.
func TestSwapArrival(t *testing.T) {
	providers := []Provider{{Pt: geo.Point{X: 0, Y: 0}, Cap: 1}}
	g := NewGraph(providers, true)
	g.DisablePotentials()

	far := g.AddCustomer(geo.Point{X: 10, Y: 0}, 1, 1)
	if _, _, ok, err := g.SearchLabelCorrecting(); err != nil {
		t.Fatal(err)
	} else if !ok {
		t.Fatal("first customer must match")
	}
	if err := g.Augment(); err != nil {
		t.Fatal(err)
	}
	if g.Cost() != 10 {
		t.Fatalf("cost %v want 10", g.Cost())
	}

	// A closer customer arrives with no capacity left: swap in.
	near := g.AddCustomer(geo.Point{X: 2, Y: 0}, 1, 2)
	swapped, err := g.SwapArrival(near)
	if err != nil {
		t.Fatal(err)
	}
	if !swapped {
		t.Fatal("closer customer should swap in")
	}
	if g.Cost() != 2 || g.CustomerFull(far) || !g.CustomerFull(near) {
		t.Fatalf("after swap: cost %v, far full=%v near full=%v",
			g.Cost(), g.CustomerFull(far), g.CustomerFull(near))
	}

	// A farther customer arrives: no improvement, no swap.
	worse := g.AddCustomer(geo.Point{X: 50, Y: 0}, 1, 3)
	swapped, err = g.SwapArrival(worse)
	if err != nil {
		t.Fatal(err)
	}
	if swapped || g.Cost() != 2 || g.CustomerFull(worse) {
		t.Fatalf("farther customer must not swap (swapped=%v cost=%v)", swapped, g.Cost())
	}
}

// Multi-hop swaps: the improving cycle may reroute intermediate
// customers across providers.
func TestSwapArrivalMultiHop(t *testing.T) {
	// q1 at 0, q2 at 10, both capacity 1.
	providers := []Provider{
		{Pt: geo.Point{X: 0, Y: 0}, Cap: 1},
		{Pt: geo.Point{X: 10, Y: 0}, Cap: 1},
	}
	g := NewGraph(providers, true)
	g.DisablePotentials()
	add := func(x float64, id int64) int32 { return g.AddCustomer(geo.Point{X: x, Y: 0}, 1, id) }
	match := func() {
		if _, _, ok, err := g.SearchLabelCorrecting(); err != nil {
			t.Fatal(err)
		} else if !ok {
			t.Fatal("no path")
		}
		if err := g.Augment(); err != nil {
			t.Fatal(err)
		}
	}
	add(4, 1) // between the providers, nearer q1
	match()
	add(11, 2) // near q2
	match()
	// Both providers full: matching is {q1:4 (cost 4), q2:11 (cost 1)} = 5.
	if math.Abs(g.Cost()-5) > 1e-9 {
		t.Fatalf("setup cost %v want 5", g.Cost())
	}
	// A customer at 0.5 arrives: optimal is {q1:0.5, q2:11} = 1.5,
	// evicting customer 1 entirely.
	cNew := add(0.5, 3)
	swapped, err := g.SwapArrival(cNew)
	if err != nil {
		t.Fatal(err)
	}
	if !swapped || math.Abs(g.Cost()-1.5) > 1e-9 {
		t.Fatalf("swap: %v cost %v want 1.5", swapped, g.Cost())
	}
}

func TestAccessors(t *testing.T) {
	providers := []Provider{{Pt: geo.Point{X: 0, Y: 0}, Cap: 3}}
	g := NewGraph(providers, false)
	g.SetPairCapacity(5)
	if g.NumProviders() != 1 || g.NumCustomers() != 0 {
		t.Fatal("counts wrong")
	}
	if g.PairCapacity() != 5 {
		t.Fatalf("PairCapacity = %d", g.PairCapacity())
	}
	c := g.AddCustomer(geo.Point{X: 1, Y: 0}, 2, 7)
	if g.NumCustomers() != 1 {
		t.Fatal("customer count")
	}
	if g.ProviderRemaining(0) != 3 || g.CustomerRemaining(c) != 2 {
		t.Fatal("remaining capacities wrong")
	}
	g.AddEdge(0, c)
	g.DirectAssign(0, c, 1)
	if g.ProviderRemaining(0) != 2 || g.CustomerRemaining(c) != 1 {
		t.Fatal("remaining capacities after assign wrong")
	}
	if g.LastAlpha(0) != 0 {
		t.Fatal("LastAlpha should start at 0")
	}
}
