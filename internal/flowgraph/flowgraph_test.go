package flowgraph

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geo"
)

// runSSPA drives the graph like the SSPA baseline: γ iterations of
// search + augment over the complete bipartite graph.
func runSSPA(t *testing.T, providers []Provider, customers []Customer) *Graph {
	t.Helper()
	g := NewGraph(providers, true)
	for _, c := range customers {
		g.AddCustomer(c.Pt, c.Cap, c.ExtID)
	}
	custCap := 0
	for _, c := range customers {
		custCap += c.Cap
	}
	gamma := g.TotalCapacity()
	if custCap < gamma {
		gamma = custCap
	}
	for i := 0; i < gamma; i++ {
		g.BeginIteration()
		if _, _, ok := g.Search(); !ok {
			t.Fatalf("iteration %d: no augmenting path", i)
		}
		if err := g.Augment(); err != nil {
			t.Fatal(err)
		}
		if err := g.CheckReducedCosts(1e-9); err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
	}
	return g
}

// TestPaperFigure2Example reproduces the worked SSPA example of Figures
// 2–3: P = {p1,p2}, Q = {q1 (k=1), q2 (k=2)}, distances q1p1=4, q1p2=3,
// q2p1=10, q2p2=7. Iteration 1 finds sp1 = {s,q1,p2,t} (cost 3);
// iteration 2 finds sp2 = {s,q2,p2,q1,p1,t} which reroutes p2 from q1 to
// q2, yielding the optimal matching {(q1,p1),(q2,p2)} with cost 4+7=11.
func TestPaperFigure2Example(t *testing.T) {
	// Coordinates engineered to produce the paper's pairwise distances.
	// With q1=(0,0), p1=(4,0), p2=(-3,0) we have q1p1=4, q1p2=3; place
	// q2=(x,y) so that q2p1=10 and q2p2=7:
	//   (x-4)²+y²=100 and (x+3)²+y²=49  =>  -14x+7=51  =>  x=-22/7,
	//   y² = 49-(-22/7+3)² = 49-1/49 = 2400/49.
	q2 := geo.Point{X: -22.0 / 7, Y: math.Sqrt(2400) / 7}
	providers := []Provider{
		{Pt: geo.Point{X: 0, Y: 0}, Cap: 1}, // q1
		{Pt: q2, Cap: 2},                    // q2
	}
	customers := []Customer{
		{Pt: geo.Point{X: 4, Y: 0}, Cap: 1, ExtID: 1},  // p1
		{Pt: geo.Point{X: -3, Y: 0}, Cap: 1, ExtID: 2}, // p2
	}
	// Sanity-check the engineered distances.
	if d := providers[0].Pt.Dist(customers[0].Pt); math.Abs(d-4) > 1e-9 {
		t.Fatalf("dist(q1,p1) = %v", d)
	}
	if d := providers[0].Pt.Dist(customers[1].Pt); math.Abs(d-3) > 1e-9 {
		t.Fatalf("dist(q1,p2) = %v", d)
	}
	if d := providers[1].Pt.Dist(customers[0].Pt); math.Abs(d-10) > 1e-9 {
		t.Fatalf("dist(q2,p1) = %v", d)
	}
	if d := providers[1].Pt.Dist(customers[1].Pt); math.Abs(d-7) > 1e-9 {
		t.Fatalf("dist(q2,p2) = %v", d)
	}

	g := NewGraph(providers, true)
	for _, c := range customers {
		g.AddCustomer(c.Pt, c.Cap, c.ExtID)
	}

	// Iteration 1: sp1 = {s, q1, p2, t} with cost 3.
	g.BeginIteration()
	vmin, cost, ok := g.Search()
	if !ok || math.Abs(cost-3) > 1e-9 {
		t.Fatalf("sp1 cost = %v ok=%v, want 3", cost, ok)
	}
	if g.custIdx(vmin) != 1 {
		t.Fatalf("sp1 should end at p2, got customer %d", g.custIdx(vmin))
	}
	if err := g.Augment(); err != nil {
		t.Fatal(err)
	}
	// Paper: after sp1, τ(s)=τ(q1)=τ(q2)=3 (all visited at α=0).
	if math.Abs(g.sTau-3) > 1e-9 || math.Abs(g.tau[0]-3) > 1e-9 || math.Abs(g.tau[1]-3) > 1e-9 {
		t.Fatalf("potentials after sp1: s=%v q1=%v q2=%v, want all 3", g.sTau, g.tau[0], g.tau[1])
	}
	if math.Abs(g.TauMax()-3) > 1e-9 {
		t.Fatalf("tauMax = %v want 3", g.TauMax())
	}

	// Iteration 2: sp2 = {s, q2, p2, q1, p1, t}. In reduced costs:
	// w(s,q2)=0, w(q2,p2)=7-3+0=4, w(p2,q1)=-3-0+3=0, w(q1,p1)=4-3+0=1,
	// so vmin.α = 5 (original edge-length cost 7-3+4 = 8).
	g.BeginIteration()
	vmin, cost, ok = g.Search()
	if !ok {
		t.Fatal("sp2 not found")
	}
	if g.custIdx(vmin) != 0 {
		t.Fatalf("sp2 should end at p1, got customer %d", g.custIdx(vmin))
	}
	if math.Abs(cost-5) > 1e-9 {
		t.Fatalf("sp2 reduced cost = %v want 5", cost)
	}
	if err := g.Augment(); err != nil {
		t.Fatal(err)
	}

	// Final matching: (q1,p1), (q2,p2), total cost 4+7 = 11.
	pairs := g.Pairs()
	if len(pairs) != 2 {
		t.Fatalf("matching size %d want 2", len(pairs))
	}
	if math.Abs(g.Cost()-11) > 1e-9 {
		t.Fatalf("Ψ(M) = %v want 11", g.Cost())
	}
	for _, pr := range pairs {
		if pr.Customer == 0 && pr.Provider != 0 {
			t.Errorf("p1 assigned to q%d want q1", pr.Provider+1)
		}
		if pr.Customer == 1 && pr.Provider != 1 {
			t.Errorf("p2 assigned to q%d want q2", pr.Provider+1)
		}
	}
}

func randProviders(n int, capFn func(i int) int, rng *rand.Rand) []Provider {
	out := make([]Provider, n)
	for i := range out {
		out[i] = Provider{
			Pt:  geo.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100},
			Cap: capFn(i),
		}
	}
	return out
}

func randCustomers(n int, rng *rand.Rand) []Customer {
	out := make([]Customer, n)
	for i := range out {
		out[i] = Customer{
			Pt:    geo.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100},
			Cap:   1,
			ExtID: int64(i),
		}
	}
	return out
}

// The potential-based SSPA must match the Bellman–Ford reference on
// random instances, across under-, exactly-, and over-capacitated mixes.
func TestSSPAMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 30; trial++ {
		nq := 2 + rng.Intn(5)
		nc := 1 + rng.Intn(25)
		k := 1 + rng.Intn(6)
		providers := randProviders(nq, func(int) int { return k }, rng)
		customers := randCustomers(nc, rng)

		g := runSSPA(t, providers, customers)
		_, wantCost := RefSolve(providers, customers)
		if math.Abs(g.Cost()-wantCost) > 1e-6*(1+wantCost) {
			t.Fatalf("trial %d (nq=%d nc=%d k=%d): cost %v want %v",
				trial, nq, nc, k, g.Cost(), wantCost)
		}
		wantSize := nq * k
		if nc < wantSize {
			wantSize = nc
		}
		if g.AssignedCount() != wantSize {
			t.Fatalf("trial %d: matching size %d want %d", trial, g.AssignedCount(), wantSize)
		}
	}
}

// Matching validity: no provider exceeds its capacity, no customer its
// capacity, and no (q,p) pair repeats.
func TestMatchingValidity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nq := 1 + rng.Intn(6)
		nc := 1 + rng.Intn(30)
		providers := randProviders(nq, func(int) int { return 1 + rng.Intn(5) }, rng)
		customers := randCustomers(nc, rng)
		g := runSSPA(t, providers, customers)

		provCount := make(map[int]int)
		custCount := make(map[int]int)
		pairSeen := make(map[[2]int]bool)
		for _, pr := range g.Pairs() {
			provCount[pr.Provider]++
			custCount[pr.Customer]++
			key := [2]int{pr.Provider, pr.Customer}
			if pairSeen[key] {
				return false
			}
			pairSeen[key] = true
		}
		for q, n := range provCount {
			if n > providers[q].Cap {
				return false
			}
		}
		for c, n := range custCount {
			if n > customers[c].Cap {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Customer capacities > 1 (the CA concise-matching configuration) must
// also be optimal vs the reference.
func TestCustomerCapacities(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 15; trial++ {
		nq := 2 + rng.Intn(4)
		nc := 1 + rng.Intn(8)
		providers := randProviders(nq, func(int) int { return 1 + rng.Intn(4) }, rng)
		customers := randCustomers(nc, rng)
		for i := range customers {
			customers[i].Cap = 1 + rng.Intn(4)
		}
		g := NewGraph(providers, true)
		for _, c := range customers {
			g.AddCustomer(c.Pt, c.Cap, c.ExtID)
		}
		// With per-pair capacity 1, the max matching can be smaller than
		// min(Σ q.k, Σ p.cap): a customer can hold at most one instance
		// per provider. Augment until no path remains (max flow).
		for {
			g.BeginIteration()
			if _, _, ok := g.Search(); !ok {
				break
			}
			if err := g.Augment(); err != nil {
				t.Fatal(err)
			}
		}
		wantPairs, wantCost := RefSolve(providers, customers)
		if math.Abs(g.Cost()-wantCost) > 1e-6*(1+wantCost) {
			t.Fatalf("trial %d: cost %v want %v", trial, g.Cost(), wantCost)
		}
		if g.AssignedCount() != len(wantPairs) {
			t.Fatalf("trial %d: size %d want %d", trial, g.AssignedCount(), len(wantPairs))
		}
	}
}

// Incremental mode with PUA: insert edges one by one in ascending length
// (as NIA does) and verify the final matching is still optimal.
func TestIncrementalWithPUAMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 20; trial++ {
		nq := 2 + rng.Intn(4)
		nc := 2 + rng.Intn(15)
		k := 1 + rng.Intn(3)
		providers := randProviders(nq, func(int) int { return k }, rng)
		customers := randCustomers(nc, rng)

		g := NewGraph(providers, false)
		for _, c := range customers {
			g.AddCustomer(c.Pt, c.Cap, c.ExtID)
		}
		// All candidate edges sorted ascending by length (a NIA-style
		// discovery order).
		type cand struct {
			q, c int32
			d    float64
		}
		var cands []cand
		for q := 0; q < nq; q++ {
			for c := 0; c < nc; c++ {
				cands = append(cands, cand{int32(q), int32(c),
					providers[q].Pt.Dist(customers[c].Pt)})
			}
		}
		for i := 1; i < len(cands); i++ {
			for j := i; j > 0 && cands[j].d < cands[j-1].d; j-- {
				cands[j], cands[j-1] = cands[j-1], cands[j]
			}
		}
		gamma := nq * k
		if nc < gamma {
			gamma = nc
		}
		next := 0
		for done := 0; done < gamma; done++ {
			g.BeginIteration()
			for {
				_, cost, ok := g.Search()
				// The NIA validity bound: remaining undiscovered edges
				// all have length >= cands[next].d.
				bound := math.Inf(1)
				if next < len(cands) {
					bound = cands[next].d
				}
				if ok && cost <= bound-g.TauMax()+1e-12 {
					break
				}
				if next >= len(cands) {
					t.Fatalf("trial %d: ran out of edges", trial)
				}
				g.InsertEdgeAndRepair(cands[next].q, cands[next].c)
				next++
			}
			if err := g.Augment(); err != nil {
				t.Fatal(err)
			}
			if err := g.CheckReducedCosts(1e-9); err != nil {
				t.Fatalf("trial %d after augment %d: %v", trial, done, err)
			}
		}
		_, wantCost := RefSolve(providers, customers)
		if math.Abs(g.Cost()-wantCost) > 1e-6*(1+wantCost) {
			t.Fatalf("trial %d: incremental cost %v want %v (|Esub|=%d of %d)",
				trial, g.Cost(), wantCost, g.EdgeCount(), len(cands))
		}
		if g.EdgeCount() >= len(cands) && nq*nc > gamma+2 {
			t.Logf("trial %d: no pruning achieved (|Esub|=%d)", trial, g.EdgeCount())
		}
	}
}

// Theorem 2 fast path: DirectAssign + LeaveFastPhase must leave the graph
// in a state where subsequent Dijkstra searches still find the optimum.
func TestFastPhaseHandoff(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 20; trial++ {
		nq := 2 + rng.Intn(3)
		nc := 4 + rng.Intn(12)
		k := 1 + rng.Intn(2)
		providers := randProviders(nq, func(int) int { return k }, rng)
		customers := randCustomers(nc, rng)

		g := NewGraph(providers, false)
		for _, c := range customers {
			g.AddCustomer(c.Pt, c.Cap, c.ExtID)
		}
		type cand struct {
			q, c int32
			d    float64
		}
		var cands []cand
		for q := 0; q < nq; q++ {
			for c := 0; c < nc; c++ {
				cands = append(cands, cand{int32(q), int32(c), providers[q].Pt.Dist(customers[c].Pt)})
			}
		}
		for i := 1; i < len(cands); i++ {
			for j := i; j > 0 && cands[j].d < cands[j-1].d; j-- {
				cands[j], cands[j-1] = cands[j-1], cands[j]
			}
		}
		gamma := nq * k
		if nc < gamma {
			gamma = nc
		}

		// Fast phase: IDA's Theorem 2 regime — pop ascending edges,
		// skip full customers, assign non-full ones directly, until a
		// provider fills up.
		next := 0
		done := 0
		lastLen := 0.0
		for done < gamma {
			if next >= len(cands) {
				break
			}
			e := cands[next]
			next++
			g.AddEdge(e.q, e.c)
			if g.ProviderFull(e.q) || g.CustomerFull(e.c) {
				continue
			}
			g.DirectAssign(e.q, e.c, e.d)
			lastLen = e.d
			done++
			if g.ProviderFull(e.q) {
				break // leave the Theorem 2 regime
			}
		}
		g.LeaveFastPhase(lastLen)
		if err := g.CheckReducedCosts(1e-9); err != nil {
			t.Fatalf("trial %d after fast phase: %v", trial, err)
		}

		// Finish with Dijkstra iterations (NIA-style with validity bound).
		for ; done < gamma; done++ {
			g.BeginIteration()
			for {
				_, cost, ok := g.Search()
				bound := math.Inf(1)
				if next < len(cands) {
					bound = cands[next].d
				}
				if ok && cost <= bound-g.TauMax()+1e-12 {
					break
				}
				if next >= len(cands) {
					t.Fatalf("trial %d: out of edges", trial)
				}
				g.InsertEdgeAndRepair(cands[next].q, cands[next].c)
				next++
			}
			if err := g.Augment(); err != nil {
				t.Fatal(err)
			}
		}
		_, wantCost := RefSolve(providers, customers)
		if math.Abs(g.Cost()-wantCost) > 1e-6*(1+wantCost) {
			t.Fatalf("trial %d: fast-phase cost %v want %v", trial, g.Cost(), wantCost)
		}
	}
}

// Degenerate inputs.
func TestDegenerateInstances(t *testing.T) {
	t.Run("no customers", func(t *testing.T) {
		g := NewGraph([]Provider{{Pt: geo.Point{X: 0, Y: 0}, Cap: 2}}, true)
		g.BeginIteration()
		if _, _, ok := g.Search(); ok {
			t.Fatal("no customers: search must fail")
		}
	})
	t.Run("coincident points", func(t *testing.T) {
		providers := []Provider{
			{Pt: geo.Point{X: 5, Y: 5}, Cap: 1},
			{Pt: geo.Point{X: 5, Y: 5}, Cap: 1},
		}
		customers := []Customer{
			{Pt: geo.Point{X: 5, Y: 5}, Cap: 1, ExtID: 0},
			{Pt: geo.Point{X: 5, Y: 5}, Cap: 1, ExtID: 1},
		}
		g := runSSPA(t, providers, customers)
		if g.Cost() != 0 || g.AssignedCount() != 2 {
			t.Fatalf("coincident: cost %v size %d", g.Cost(), g.AssignedCount())
		}
	})
	t.Run("one of each", func(t *testing.T) {
		providers := []Provider{{Pt: geo.Point{X: 0, Y: 0}, Cap: 5}}
		customers := []Customer{{Pt: geo.Point{X: 3, Y: 4}, Cap: 1, ExtID: 9}}
		g := runSSPA(t, providers, customers)
		if math.Abs(g.Cost()-5) > 1e-9 {
			t.Fatalf("cost %v want 5", g.Cost())
		}
		pairs := g.Pairs()
		if len(pairs) != 1 || pairs[0].CustID != 9 {
			t.Fatalf("pairs %+v", pairs)
		}
	})
}

// Greedy (Voronoi) assignment is not optimal under capacity constraints:
// the flow-based matching must beat it on the paper's Figure 1 style of
// instance (a cluster overloading its closest provider).
func TestBeatsGreedyOnOverload(t *testing.T) {
	providers := []Provider{
		{Pt: geo.Point{X: 0, Y: 0}, Cap: 1},
		{Pt: geo.Point{X: 10, Y: 0}, Cap: 2},
	}
	// Two customers right next to q1; greedy would want both on q1.
	customers := []Customer{
		{Pt: geo.Point{X: 0, Y: 1}, Cap: 1, ExtID: 0},
		{Pt: geo.Point{X: 1, Y: 0}, Cap: 1, ExtID: 1},
	}
	g := runSSPA(t, providers, customers)
	// Optimal: p1->q1 (1), p2->q2 (9); or p2->q1 (1), p1->q2 (sqrt(101)).
	want := 1 + 9.0
	if math.Abs(g.Cost()-want) > 1e-9 {
		t.Fatalf("cost %v want %v", g.Cost(), want)
	}
	// Both providers within capacity.
	used := map[int]int{}
	for _, pr := range g.Pairs() {
		used[pr.Provider]++
	}
	if used[0] > 1 || used[1] > 2 {
		t.Fatalf("capacity violated: %v", used)
	}
}

func TestStatsAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	providers := randProviders(3, func(int) int { return 2 }, rng)
	customers := randCustomers(10, rng)
	g := runSSPA(t, providers, customers)
	st := g.Stats()
	if st.Dijkstras != 6 {
		t.Fatalf("Dijkstras = %d want 6 (γ iterations)", st.Dijkstras)
	}
	if st.Pops == 0 || st.Relaxations == 0 {
		t.Fatalf("missing work counters: %+v", st)
	}
}
