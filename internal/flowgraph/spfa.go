package flowgraph

import (
	"errors"
	"fmt"
	"math"
)

// DisablePotentials switches the graph to raw edge costs (all τ pinned at
// zero, no updates on augmentation). In this mode shortest paths must be
// computed with SearchLabelCorrecting, since reversed residual edges have
// negative raw costs.
//
// The dynamic matcher uses this mode: newly arriving customers would
// invalidate potential-based reduced costs (their incident edges can turn
// negative under the old potentials), whereas a label-correcting search
// needs no potentials at all.
func (g *Graph) DisablePotentials() { g.noPotentials = true }

// ErrNegativeCycle reports that a label-correcting search ran into a
// negative residual cycle — possible only when a bounded re-opt budget
// deferred repair work. The caller must cancel a cycle
// (CancelNegativeCycle) and retry the search.
var ErrNegativeCycle = errors.New("flowgraph: residual graph has a negative cycle")

// SearchLabelCorrecting computes the shortest augmenting path with a
// queue-based Bellman–Ford (SPFA) over raw costs: +dist on forward
// edges, −dist on reversed edges. It fills the same search state as
// Search, so Augment applies the path identically. A min-cost-flow
// residual graph built from fully repaired states has no negative
// cycles, so the search terminates; when deferred repair debt does
// leave one, the standard SPFA enqueue-count bound detects it and the
// search aborts with ErrNegativeCycle instead of relaxing forever.
func (g *Graph) SearchLabelCorrecting() (vmin NodeID, cost float64, ok bool, err error) {
	s := g.search
	s.epoch++
	n := len(g.providers) + len(g.customers)
	s.grow(n)
	s.heap.Clear()
	s.repair.Clear()
	s.visited = s.visited[:0]
	s.tBest = math.Inf(1)
	s.vmin = -1
	g.stats.Dijkstras++

	queue := make([]NodeID, 0, n)
	inQueue := make([]bool, n)
	enq := make([]int32, n)
	cycle := false
	push := func(v NodeID) {
		if !inQueue[v] {
			inQueue[v] = true
			queue = append(queue, v)
			if enq[v]++; int(enq[v]) > n+1 {
				cycle = true
			}
		}
	}
	relax := func(v NodeID, nd float64, from NodeID) {
		if s.seen(v) && nd >= s.alpha[v]-improveEps {
			return
		}
		g.stats.Relaxations++
		s.alpha[v] = nd
		s.prev[v] = from
		s.seenAt[v] = s.epoch
		push(v)
	}

	for q := range g.providers {
		if !g.ProviderFull(int32(q)) {
			s.alpha[q] = 0
			s.prev[q] = sourceNode
			s.seenAt[q] = s.epoch
			push(NodeID(q))
		}
	}
	for len(queue) > 0 && !cycle {
		v := queue[0]
		queue = queue[1:]
		inQueue[v] = false
		g.stats.Pops++
		if g.isCustomerNode(v) {
			c := g.custIdx(v)
			base := s.alpha[v]
			for _, q := range g.assigned[c] {
				relax(NodeID(q), base-g.dist(q, c), v)
			}
			continue
		}
		q := int32(v)
		base := s.alpha[v]
		if g.complete {
			for _, c32 := range g.live {
				if g.forwardSaturated(c32, q) {
					continue
				}
				relax(g.customerNode(c32), base+g.dist(q, c32), v)
			}
		} else {
			for _, he := range g.adj[q] {
				if !g.IsLive(he.cust) || g.forwardSaturated(he.cust, q) {
					continue
				}
				relax(g.customerNode(he.cust), base+he.dist, v)
			}
		}
	}
	// The sink's distance: the cheapest non-full customer (its p→t edge
	// costs 0 under raw costs).
	for _, c32 := range g.live {
		node := g.customerNode(c32)
		if g.CustomerFull(c32) || !s.seen(node) {
			continue
		}
		if s.alpha[node] < s.tBest {
			s.tBest = s.alpha[node]
			s.vmin = node
		}
	}
	if cycle {
		return -1, math.Inf(1), false, ErrNegativeCycle
	}
	if s.vmin < 0 {
		return -1, math.Inf(1), false, nil
	}
	return s.vmin, s.tBest, true, nil
}

// sinkSeed marks prev-chains that start at the sink's reversed edge
// (t→p for a matched customer p), used by SwapArrival.
const sinkSeed NodeID = -2

// SwapArrival restores optimality after customer cNew arrived with no
// provider capacity left. The matching size cannot grow, but its
// composition can improve: the minimum-cost residual cycle through
// cNew's sink edge unassigns one currently-matched customer and routes
// cNew in instead. Because only one unit of flow can ever pass through
// cNew, canceling this single cycle (when negative) restores the
// min-cost maximum matching. Requires DisablePotentials mode.
//
// It returns whether cNew was swapped in. Like SearchLabelCorrecting,
// it aborts with ErrNegativeCycle if deferred repair debt left a
// negative cycle elsewhere in the residual graph.
func (g *Graph) SwapArrival(cNew int32) (bool, error) {
	// A forced cycle cancel between search attempts can route flow
	// through cNew's sink edge, matching it as a side effect; swapping
	// again would double-assign it.
	if g.custUsed[cNew] > 0 {
		return false, nil
	}
	s := g.search
	s.epoch++
	n := len(g.providers) + len(g.customers)
	s.grow(n)
	s.visited = s.visited[:0]
	g.stats.Dijkstras++

	queue := make([]NodeID, 0, n)
	inQueue := make([]bool, n)
	enq := make([]int32, n)
	cycle := false
	push := func(v NodeID) {
		if !inQueue[v] {
			inQueue[v] = true
			queue = append(queue, v)
			if enq[v]++; int(enq[v]) > n+1 {
				cycle = true
			}
		}
	}
	relax := func(v NodeID, nd float64, from NodeID) {
		if s.seen(v) && nd >= s.alpha[v]-improveEps {
			return
		}
		g.stats.Relaxations++
		s.alpha[v] = nd
		s.prev[v] = from
		s.seenAt[v] = s.epoch
		push(v)
	}
	// Seeds: reversed sink edges t→p of customers carrying flow.
	for _, c32 := range g.live {
		if g.custUsed[c32] == 0 || c32 == cNew {
			continue
		}
		node := g.customerNode(c32)
		s.alpha[node] = 0
		s.prev[node] = sinkSeed
		s.seenAt[node] = s.epoch
		push(node)
	}
	target := g.customerNode(cNew)
	for len(queue) > 0 && !cycle {
		v := queue[0]
		queue = queue[1:]
		inQueue[v] = false
		g.stats.Pops++
		if v == target {
			continue // cNew's only out-edge is its sink edge (the cycle end)
		}
		if g.isCustomerNode(v) {
			c := g.custIdx(v)
			base := s.alpha[v]
			for _, q := range g.assigned[c] {
				relax(NodeID(q), base-g.dist(q, c), v)
			}
			continue
		}
		q := int32(v)
		base := s.alpha[v]
		if g.complete {
			for _, c32 := range g.live {
				if g.forwardSaturated(c32, q) {
					continue
				}
				relax(g.customerNode(c32), base+g.dist(q, c32), v)
			}
		} else {
			for _, he := range g.adj[q] {
				if !g.IsLive(he.cust) || g.forwardSaturated(he.cust, q) {
					continue
				}
				relax(g.customerNode(he.cust), base+he.dist, v)
			}
		}
	}
	if cycle {
		return false, ErrNegativeCycle
	}
	if !s.seen(target) || s.alpha[target] >= -improveEps {
		return false, nil // no swap available: the matching is already optimal
	}
	// Apply the cycle: flip assignments along the path, move the sink
	// flow from the seed customer to cNew.
	v := target
	maxSteps := n + 1
	for steps := 0; ; steps++ {
		if steps > maxSteps {
			return false, fmt.Errorf("flowgraph: swap path exceeds %d nodes", maxSteps)
		}
		u := s.prev[v]
		if g.isCustomerNode(v) {
			if u == sinkSeed {
				g.custUsed[g.custIdx(v)]--
				break
			}
			c := g.custIdx(v)
			g.assign(c, int32(u), g.dist(int32(u), c))
		} else {
			if err := g.unassign(g.custIdx(u), int32(v)); err != nil {
				return false, err
			}
		}
		v = u
	}
	g.custUsed[cNew]++
	return true, nil
}
