package flowgraph

import "testing"

// raceEnabled is set by race_test.go under -race, where sync.Pool reuse
// is deliberately defeated and allocation budgets cannot hold.
var raceEnabled bool

// TestAllocsGraphConstruction pins the pooled construction budget: once
// the pools are warm, building a graph, registering its customers and
// edges, and releasing it must not allocate per-customer or per-edge
// state — only the Graph header itself (and, rarely, a pool miss when
// GC clears the pools mid-run, hence the small slack). Before the
// graphArrays pool this sat at ~8 allocations per cycle just for the
// construction arrays, plus one per customer for the assignment lists.
func TestAllocsGraphConstruction(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation budgets don't hold under the race detector")
	}
	providers, customers := benchInstance(16, 512, 4)
	cycle := func() {
		g := NewGraph(providers, false)
		for _, c := range customers {
			ci := g.AddCustomer(c.Pt, c.Cap, c.ExtID)
			g.AddEdge(int32(int(ci)%len(providers)), ci)
		}
		g.Release()
	}
	// Warm the pools and grow every backing array to its steady size.
	for i := 0; i < 3; i++ {
		cycle()
	}
	avg := testing.AllocsPerRun(50, cycle)
	// One alloc for the Graph struct; a little slack for incidental
	// pool churn. The point is the absence of O(customers) allocation.
	if avg > 4 {
		t.Fatalf("graph construct/release cycle allocates %.1f times; want <= 4 (pooled scratch)", avg)
	}
}

// BenchmarkGraphConstruction measures the pooled build/release cycle the
// batch engine pays per solve.
func BenchmarkGraphConstruction(b *testing.B) {
	providers, customers := benchInstance(16, 512, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := NewGraph(providers, false)
		for _, c := range customers {
			ci := g.AddCustomer(c.Pt, c.Cap, c.ExtID)
			g.AddEdge(int32(int(ci)%len(providers)), ci)
		}
		g.Release()
	}
}
