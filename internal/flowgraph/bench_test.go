package flowgraph

import (
	"math/rand"
	"testing"

	"repro/internal/geo"
)

func benchInstance(nq, nc, k int) ([]Provider, []Customer) {
	rng := rand.New(rand.NewSource(11))
	providers := make([]Provider, nq)
	for i := range providers {
		providers[i] = Provider{Pt: geo.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}, Cap: k}
	}
	customers := make([]Customer, nc)
	for i := range customers {
		customers[i] = Customer{Pt: geo.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}, Cap: 1, ExtID: int64(i)}
	}
	return providers, customers
}

// BenchmarkSSPAComplete measures γ successive-shortest-path iterations
// on the implicit complete bipartite graph (the §2.2 baseline's core).
func BenchmarkSSPAComplete(b *testing.B) {
	providers, customers := benchInstance(10, 500, 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := NewGraph(providers, true)
		for _, c := range customers {
			g.AddCustomer(c.Pt, c.Cap, c.ExtID)
		}
		for it := 0; it < 200; it++ {
			g.BeginIteration()
			if _, _, ok := g.Search(); !ok {
				b.Fatal("no path")
			}
			if err := g.Augment(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkDijkstraSparse measures searches over a sparse Esub with PUA
// repairs, the inner loop of NIA/IDA.
func BenchmarkDijkstraSparse(b *testing.B) {
	providers, customers := benchInstance(20, 2000, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		g := NewGraph(providers, false)
		idx := make([]int32, len(customers))
		for ci, c := range customers {
			idx[ci] = g.AddCustomer(c.Pt, c.Cap, c.ExtID)
		}
		// Pre-populate Esub with each provider's 100 nearest customers.
		for q := range providers {
			type dc struct {
				c int32
				d float64
			}
			var ds []dc
			for ci := range customers {
				ds = append(ds, dc{idx[ci], providers[q].Pt.Dist(customers[ci].Pt)})
			}
			for a := 0; a < 100; a++ {
				min := a
				for b2 := a + 1; b2 < len(ds); b2++ {
					if ds[b2].d < ds[min].d {
						min = b2
					}
				}
				ds[a], ds[min] = ds[min], ds[a]
				g.AddEdge(int32(q), ds[a].c)
			}
		}
		b.StartTimer()
		for it := 0; it < 200; it++ {
			g.BeginIteration()
			if _, _, ok := g.Search(); !ok {
				break
			}
			if err := g.Augment(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkRefSolve measures the Bellman–Ford oracle (tests-only code,
// benchmarked to keep its cost visible).
func BenchmarkRefSolve(b *testing.B) {
	providers, customers := benchInstance(5, 100, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RefSolve(providers, customers)
	}
}
