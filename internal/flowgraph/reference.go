package flowgraph

import (
	"math"

	"repro/internal/geo"
)

// RefSolve computes the optimal CCA matching with a deliberately simple
// successive-shortest-path algorithm: Bellman–Ford on the explicit
// residual graph with negative reversed-edge costs and no potentials.
// It is O(γ·V·E) and exists purely as a correctness oracle for tests —
// every production algorithm (SSPA, RIA, NIA, IDA) must produce a
// matching of identical total cost.
func RefSolve(providers []Provider, customers []Customer) ([]Pair, float64) {
	return RefSolveCap(providers, customers, 1)
}

// RefSolveCap is RefSolve with a configurable per-pair capacity: each
// (q,p) pair may appear up to pairCap times in the matching (CA's concise
// matching uses an effectively unbounded pair capacity). Repeated
// instances of a pair are reported as repeated Pairs.
func RefSolveCap(providers []Provider, customers []Customer, pairCap int) ([]Pair, float64) {
	return RefSolveMetric(providers, customers, pairCap, geo.Euclidean)
}

// RefSolveMetric is RefSolveCap under an arbitrary edge-cost metric —
// the cross-metric conformance suites compare every exact solver against
// it under the road-network distance backend. The oracle materializes
// the complete cost matrix up front, so it never depends on the R-tree
// pruning machinery whose metric-soundness is under test.
func RefSolveMetric(providers []Provider, customers []Customer, pairCap int, metric geo.Metric) ([]Pair, float64) {
	if metric == nil {
		metric = geo.Euclidean
	}
	nq, nc := len(providers), len(customers)
	dist := make([][]float64, nq)
	for q := range dist {
		dist[q] = make([]float64, nc)
		for c := range dist[q] {
			dist[q][c] = metric.Dist(providers[q].Pt, customers[c].Pt)
		}
	}
	provUsed := make([]int, nq)
	custUsed := make([]int, nc)
	// flow[q][c] counts the matching instances of pair (q, c).
	flow := make([][]int, nq)
	for q := range flow {
		flow[q] = make([]int, nc)
	}

	totalCap := 0
	for _, p := range providers {
		totalCap += p.Cap
	}
	custCap := 0
	for _, c := range customers {
		custCap += c.Cap
	}
	gamma := totalCap
	if custCap < gamma {
		gamma = custCap
	}

	// Node ids: 0..nq-1 providers, nq..nq+nc-1 customers, s = nq+nc,
	// t = nq+nc+1.
	n := nq + nc + 2
	s, t := n-2, n-1
	for iter := 0; iter < gamma; iter++ {
		// Bellman–Ford from s.
		d := make([]float64, n)
		prev := make([]int, n)
		for i := range d {
			d[i] = math.Inf(1)
			prev[i] = -1
		}
		d[s] = 0
		for round := 0; round < n; round++ {
			changed := false
			// s -> q for non-full providers (cost 0).
			for q := 0; q < nq; q++ {
				if provUsed[q] < providers[q].Cap && d[s] < d[q] {
					d[q], prev[q] = d[s], s
					changed = true
				}
			}
			for q := 0; q < nq; q++ {
				if math.IsInf(d[q], 1) {
					continue
				}
				for c := 0; c < nc; c++ {
					if flow[q][c] >= pairCap {
						continue
					}
					if nd := d[q] + dist[q][c]; nd < d[nq+c]-1e-12 {
						d[nq+c], prev[nq+c] = nd, q
						changed = true
					}
				}
			}
			for c := 0; c < nc; c++ {
				if math.IsInf(d[nq+c], 1) {
					continue
				}
				// Reversed edges c -> q with negative cost.
				for q := 0; q < nq; q++ {
					if flow[q][c] == 0 {
						continue
					}
					if nd := d[nq+c] - dist[q][c]; nd < d[q]-1e-12 {
						d[q], prev[q] = nd, nq+c
						changed = true
					}
				}
				// c -> t when the customer has remaining capacity.
				if custUsed[c] < customers[c].Cap && d[nq+c] < d[t]-1e-12 {
					d[t], prev[t] = d[nq+c], nq+c
					changed = true
				}
			}
			if !changed {
				break
			}
		}
		if math.IsInf(d[t], 1) {
			break // no more augmenting paths
		}
		// Apply the path.
		v := prev[t]
		custUsed[v-nq]++
		for v != s {
			u := prev[v]
			if u == s {
				provUsed[v]++
			} else if v >= nq { // u is a provider, v a customer: assign
				flow[u][v-nq]++
			} else { // u is a customer, v a provider: unassign
				flow[v][u-nq]--
			}
			v = u
		}
	}

	var pairs []Pair
	total := 0.0
	for q := 0; q < nq; q++ {
		for c := 0; c < nc; c++ {
			for i := 0; i < flow[q][c]; i++ {
				pairs = append(pairs, Pair{
					Provider: q, Customer: c,
					CustID: customers[c].ExtID,
					Dist:   dist[q][c],
				})
				total += dist[q][c]
			}
		}
	}
	return pairs, total
}
