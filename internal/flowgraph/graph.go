// Package flowgraph implements the residual bipartite flow graph that
// underlies every CCA algorithm in the paper (§2.1–§2.2), with the
// spatial extensions of §3:
//
//   - node potentials τ and reduced-cost Dijkstra, following the paper's
//     convention w(u,v) = c(u,v) − u.τ + v.τ with c = +dist on forward
//     (q→p) edges, −dist on reversed (p→q) edges, and 0 on source/sink
//     edges;
//   - incremental edge insertion, so the subgraph Esub grows on demand
//     (Theorem 1 gating is performed by the callers in internal/core);
//   - the Path Update Algorithm (PUA, §3.4.1), which repairs the current
//     Dijkstra state after an edge insertion instead of restarting;
//   - customer-side capacities, needed by the CA approximation whose
//     customer representatives carry weights (§4.2);
//   - an implicit complete-bipartite mode for the SSPA baseline, which
//     visits every (q,p) pair without materializing O(|Q|·|P|) edges.
//
// The graph is deliberately source/sink-free in memory: an s→q edge is
// represented by the provider's remaining capacity, and a p→t edge by the
// customer's remaining capacity, since no s→t shortest path ever re-enters
// s or leaves t.
package flowgraph

import (
	"fmt"
	"sync"

	"repro/internal/geo"
)

// NodeID identifies a graph node: providers occupy [0, NumProviders),
// customers follow at NumProviders + customerIndex.
type NodeID = int32

// sourceNode is the prev-pointer sentinel for paths starting at s.
const sourceNode NodeID = -1

// Provider is a service provider q with capacity Cap (q.k in the paper).
type Provider struct {
	Pt  geo.Point
	Cap int
}

// Customer is a customer p. Cap is 1 in the exact algorithms; the CA
// approximation uses representatives with Cap > 1 (§4.2). ExtID carries
// the caller's identifier through to the matching.
type Customer struct {
	Pt    geo.Point
	Cap   int
	ExtID int64
}

// Pair is one (q, p) assignment in the matching, with its Euclidean
// distance (the pair's contribution to Ψ(M), Equation 1).
type Pair struct {
	Provider int       // provider index
	Customer int       // customer index within the graph
	CustID   int64     // caller's customer identifier
	CustPt   geo.Point // customer location
	Dist     float64
}

// halfEdge is a forward bipartite edge q→p stored in a provider's
// adjacency list.
type halfEdge struct {
	cust int32
	dist float64
}

// Stats counts the work the graph performed.
type Stats struct {
	Dijkstras   int // full searches started (BeginIteration calls)
	Resumes     int // resumed searches after edge insertions
	Pops        int // nodes finalized across all searches
	Relaxations int // edges relaxed across all searches
	Repairs     int // PUA repair propagations
}

// Graph is the (residual) flow graph state.
type Graph struct {
	providers []Provider
	customers []Customer
	provUsed  []int // flow on e(s,q)
	custUsed  []int // flow on e(p,t)

	// assigned[c] lists the providers customer c is currently assigned
	// to (each at most once); it encodes the reversed residual edges.
	assigned [][]int32
	// assignedLen[c] is the largest edge length among c's assignments;
	// used to derive potentials when IDA leaves the Theorem 2 regime
	// (§3.3).
	assignedLen []float64

	adj       [][]halfEdge // Esub: forward adjacency per provider
	edgeCount int
	complete  bool // implicit complete bipartite graph (SSPA baseline)
	pairCap   int  // max instances per (q,p) pair; 0 means 1 (the paper's
	// exact setting). CA's concise matching uses an unbounded pair
	// capacity so one customer representative can send several of its
	// instances to the same provider (§4.2).

	tau    []float64 // node potentials, indexed by NodeID
	sTau   float64   // potential of the source
	tauMax float64   // max provider potential (Theorem 1's τmax)

	// lastAlpha persists each provider's most recent finalized Dijkstra
	// distance; IDA keys heap entries of full providers by it (§3.3).
	lastAlpha []float64

	// noPotentials pins every τ at zero; shortest paths must then be
	// found with SearchLabelCorrecting (see spfa.go).
	noPotentials bool

	// live lists the customer indices that are still present; livePos
	// inverts it (-1 once removed). Batch solves never remove customers,
	// so only the churn paths (RemoveCustomer, the label-correcting
	// searches, CancelNegativeCycle) consult these — the potential-based
	// Dijkstra paths are untouched.
	live    []int32
	livePos []int32

	// metric computes edge costs (default geo.Euclidean). See geo.Metric
	// for the lower-bound contract non-Euclidean metrics must satisfy.
	metric geo.Metric

	search *searchState
	arr    *graphArrays
	stats  Stats
}

// graphArrays bundles a graph's construction-time arrays so they can be
// pooled across solves, like the searchState scratch: the batch
// engine's workload builds one graph per solve, and without pooling the
// provider/customer arrays alone dominate its steady-state allocation
// (BenchmarkGraphConstruction and TestAllocsGraphConstruction pin the
// budget). Provider-indexed arrays are re-zeroed on acquire; the
// customer-indexed ones only ever append, so truncation suffices.
type graphArrays struct {
	provUsed    []int
	adj         [][]halfEdge
	tau         []float64
	lastAlpha   []float64
	customers   []Customer
	custUsed    []int
	assigned    [][]int32
	assignedLen []float64
	live        []int32
	livePos     []int32
}

var arraysPool = sync.Pool{New: func() any { return &graphArrays{} }}

// growZero returns s with length n and every element zeroed, reusing
// its backing array when the capacity allows.
func growZero[T int | float64](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

// acquireArrays returns pooled construction arrays sized for n
// providers: provider-indexed arrays zeroed at length n, customer-
// indexed arrays empty with their backing storage (including the
// per-customer assignment lists and per-provider adjacency lists)
// retained for reuse.
func acquireArrays(n int) *graphArrays {
	a := arraysPool.Get().(*graphArrays)
	a.provUsed = growZero(a.provUsed, n)
	a.tau = growZero(a.tau, n)
	a.lastAlpha = growZero(a.lastAlpha, n)
	if cap(a.adj) < n {
		a.adj = append(a.adj[:cap(a.adj)], make([][]halfEdge, n-cap(a.adj))...)
	}
	a.adj = a.adj[:n]
	for i := range a.adj {
		a.adj[i] = a.adj[i][:0]
	}
	a.customers = a.customers[:0]
	a.custUsed = a.custUsed[:0]
	a.assigned = a.assigned[:0]
	a.assignedLen = a.assignedLen[:0]
	a.live = a.live[:0]
	a.livePos = a.livePos[:0]
	return a
}

// NewGraph creates a graph over the given providers. When complete is
// true the graph behaves as the full bipartite graph over all customers
// added so far (SSPA baseline); otherwise only explicitly added edges
// exist (the incremental algorithms).
//
// The Dijkstra scratch state and the construction arrays are drawn from
// shared pools; callers that solve many instances back to back should
// call Release when done with the graph so repeated solves stop
// allocating.
func NewGraph(providers []Provider, complete bool) *Graph {
	a := acquireArrays(len(providers))
	g := &Graph{
		providers:   providers,
		provUsed:    a.provUsed,
		adj:         a.adj,
		tau:         a.tau,
		lastAlpha:   a.lastAlpha,
		customers:   a.customers,
		custUsed:    a.custUsed,
		assigned:    a.assigned,
		assignedLen: a.assignedLen,
		live:        a.live,
		livePos:     a.livePos,
		complete:    complete,
		metric:      geo.Euclidean,
		arr:         a,
	}
	g.search = acquireSearchState(len(providers))
	return g
}

// SetMetric installs the edge-cost metric. Must be called before any
// customer or edge is added; the default is geo.Euclidean.
func (g *Graph) SetMetric(m geo.Metric) {
	if m != nil {
		g.metric = m
	}
}

// Metric returns the edge-cost metric in use.
func (g *Graph) Metric() geo.Metric { return g.metric }

// Release returns the graph's pooled scratch — the Dijkstra search
// state and the construction arrays — for reuse. The graph must not be
// used at all afterwards: searching, augmenting, and reading the
// matching (Pairs, Cost, Stats counters excepted) are invalid once the
// arrays may belong to another solve, so extract results first (the
// core algorithms do, via finish, before their deferred Release runs).
// Calling Release more than once is a no-op.
func (g *Graph) Release() {
	if g.search != nil {
		g.search.release()
		g.search = nil
	}
	if g.arr == nil {
		return
	}
	// Hand the (possibly grown) arrays back and nil the graph's views,
	// so a use-after-release fails loudly instead of reading an array
	// recycled into a concurrent solve.
	*g.arr = graphArrays{
		provUsed:    g.provUsed,
		adj:         g.adj,
		tau:         g.tau,
		lastAlpha:   g.lastAlpha,
		customers:   g.customers,
		custUsed:    g.custUsed,
		assigned:    g.assigned,
		assignedLen: g.assignedLen,
		live:        g.live,
		livePos:     g.livePos,
	}
	arraysPool.Put(g.arr)
	g.arr = nil
	g.provUsed, g.adj, g.tau, g.lastAlpha = nil, nil, nil, nil
	g.customers, g.custUsed, g.assigned, g.assignedLen = nil, nil, nil, nil
	g.live, g.livePos = nil, nil
}

// NumProviders returns |Q|.
func (g *Graph) NumProviders() int { return len(g.providers) }

// NumCustomers returns the number of customers currently in the graph.
func (g *Graph) NumCustomers() int { return len(g.customers) }

// EdgeCount returns |Esub|, the number of bipartite edges inserted.
// In complete mode it returns |Q|·|P|.
func (g *Graph) EdgeCount() int {
	if g.complete {
		return len(g.providers) * len(g.customers)
	}
	return g.edgeCount
}

// Stats returns the accumulated work counters.
func (g *Graph) Stats() Stats { return g.stats }

// TotalCapacity returns Σ q.k over all providers.
func (g *Graph) TotalCapacity() int {
	total := 0
	for _, p := range g.providers {
		total += p.Cap
	}
	return total
}

// AddCustomer registers a customer and returns its node-local index.
func (g *Graph) AddCustomer(pt geo.Point, capacity int, extID int64) int32 {
	g.customers = append(g.customers, Customer{Pt: pt, Cap: capacity, ExtID: extID})
	g.custUsed = append(g.custUsed, 0)
	// Extend in place while pooled capacity remains: appending nil
	// would overwrite the slot and discard the recycled assignment
	// list's backing array.
	if n := len(g.assigned); n < cap(g.assigned) {
		g.assigned = g.assigned[:n+1]
		g.assigned[n] = g.assigned[n][:0]
	} else {
		g.assigned = append(g.assigned, nil)
	}
	g.assignedLen = append(g.assignedLen, 0)
	g.tau = append(g.tau, 0)
	c := int32(len(g.customers) - 1)
	g.livePos = append(g.livePos, int32(len(g.live)))
	g.live = append(g.live, c)
	g.search.grow(len(g.providers) + len(g.customers))
	return c
}

// AddEdge inserts the forward edge q→c into Esub and returns its length.
func (g *Graph) AddEdge(q, c int32) float64 {
	d := g.metric.Dist(g.providers[q].Pt, g.customers[c].Pt)
	g.adj[q] = append(g.adj[q], halfEdge{cust: c, dist: d})
	g.edgeCount++
	return d
}

// ProviderFull reports whether e(s,q) is saturated (Definition 2).
func (g *Graph) ProviderFull(q int32) bool {
	return g.provUsed[q] >= g.providers[q].Cap
}

// ProviderRemaining returns provider q's unused capacity.
func (g *Graph) ProviderRemaining(q int32) int {
	return g.providers[q].Cap - g.provUsed[q]
}

// CustomerRemaining returns customer c's unused capacity.
func (g *Graph) CustomerRemaining(c int32) int {
	return g.customers[c].Cap - g.custUsed[c]
}

// PairCapacity returns the effective per-pair instance limit.
func (g *Graph) PairCapacity() int { return g.pairCapacity() }

// CustomerFull reports whether e(p,t) is saturated (Definition 3).
func (g *Graph) CustomerFull(c int32) bool {
	return g.custUsed[c] >= g.customers[c].Cap
}

// LastAlpha returns the provider's most recent finalized Dijkstra
// distance (0 until first finalized).
func (g *Graph) LastAlpha(q int32) float64 { return g.lastAlpha[q] }

// TauMax returns max{q.τ | q ∈ Q}, the bound used by Theorem 1.
func (g *Graph) TauMax() float64 { return g.tauMax }

// AssignedCount returns the total size of the current matching.
func (g *Graph) AssignedCount() int {
	total := 0
	for _, u := range g.provUsed {
		total += u
	}
	return total
}

// Pairs extracts the matching M: every (q,p) with a reversed edge.
func (g *Graph) Pairs() []Pair {
	var out []Pair
	for c := range g.customers {
		for _, q := range g.assigned[c] {
			out = append(out, Pair{
				Provider: int(q),
				Customer: c,
				CustID:   g.customers[c].ExtID,
				CustPt:   g.customers[c].Pt,
				Dist:     g.dist(q, int32(c)),
			})
		}
	}
	return out
}

// Cost returns Ψ(M) of the current matching.
func (g *Graph) Cost() float64 {
	total := 0.0
	for c := range g.customers {
		for _, q := range g.assigned[c] {
			total += g.dist(q, int32(c))
		}
	}
	return total
}

func (g *Graph) customerNode(c int32) NodeID { return NodeID(len(g.providers)) + c }

func (g *Graph) isCustomerNode(v NodeID) bool { return int(v) >= len(g.providers) }

func (g *Graph) custIdx(v NodeID) int32 { return v - NodeID(len(g.providers)) }

// SetPairCapacity sets the maximum number of matching instances per
// (q,p) pair. The exact CCA problem uses 1 (the default); pass a large
// value for CA's concise matching. Must be called before any search.
func (g *Graph) SetPairCapacity(n int) { g.pairCap = n }

// pairCapacity returns the effective per-pair capacity.
func (g *Graph) pairCapacity() int {
	if g.pairCap <= 0 {
		return 1
	}
	return g.pairCap
}

// instanceCount returns how many instances of (q, c) are in the matching.
func (g *Graph) instanceCount(c, q int32) int {
	n := 0
	for _, a := range g.assigned[c] {
		if a == q {
			n++
		}
	}
	return n
}

// forwardSaturated reports whether edge (q,c) has no forward residual
// capacity left.
func (g *Graph) forwardSaturated(c, q int32) bool {
	return g.instanceCount(c, q) >= g.pairCapacity()
}

func (g *Graph) assign(c, q int32, length float64) {
	g.assigned[c] = append(g.assigned[c], q)
	if len(g.assigned[c]) == 1 || length > g.assignedLen[c] {
		g.assignedLen[c] = length
	}
}

func (g *Graph) unassign(c, q int32) error {
	for i, a := range g.assigned[c] {
		if a == q {
			g.assigned[c] = append(g.assigned[c][:i], g.assigned[c][i+1:]...)
			return nil
		}
	}
	return fmt.Errorf("flowgraph: unassign: customer %d not assigned to provider %d", c, q)
}

// DirectAssign performs a Theorem 2 fast-path augmentation: the shortest
// path is {s, q, c, t}, so the assignment is applied without running
// Dijkstra. The edge must already be in Esub. Valid only while no
// provider is full (the caller guarantees this, per Theorem 2).
func (g *Graph) DirectAssign(q, c int32, length float64) {
	g.assign(c, q, length)
	g.provUsed[q]++
	g.custUsed[c]++
}

// LeaveFastPhase installs potentials equivalent to those the Theorem 2
// fast-path augmentations would have produced, so that subsequent
// Dijkstra searches see non-negative reduced costs. lastLen is the length
// of the last fast-path-augmented edge. Because the IDA heap pops edges
// in ascending length:
//
//   - every provider potential equals lastLen (providers are visited at
//     α = 0 in every conceptual iteration), as does the source's;
//   - a full customer c gets τ(c) = lastLen − ℓmax(c), where ℓmax(c) is
//     its longest assignment edge: this keeps the reversed edges
//     (−ℓ − τ(c) + lastLen ≥ 0) and the forward edges into c (inserted
//     only after c was full, hence with length ≥ ℓmax(c)) non-negative;
//   - a non-full customer keeps τ = 0, so its sink edge stays cost 0.
func (g *Graph) LeaveFastPhase(lastLen float64) {
	g.sTau = lastLen
	for q := range g.providers {
		g.tau[q] = lastLen
	}
	for c := range g.customers {
		node := g.customerNode(int32(c))
		g.tau[node] = 0
		if g.CustomerFull(int32(c)) && len(g.assigned[c]) > 0 {
			if t := lastLen - g.assignedLen[c]; t > 0 {
				g.tau[node] = t
			}
		}
	}
	g.tauMax = lastLen
}

// dist returns the metric distance between provider q and customer c.
func (g *Graph) dist(q, c int32) float64 {
	return g.metric.Dist(g.providers[q].Pt, g.customers[c].Pt)
}
