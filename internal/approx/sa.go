package approx

import (
	"time"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/rtree"
)

// SA computes an approximate CCA matching with the Service-provider
// Approximation (§4.1): providers are grouped along the Hilbert curve
// into δ-diagonal clusters, each cluster is replaced by one
// capacity-weighted-centroid representative carrying the summed capacity,
// an exact concise matching is solved between the representatives Q′ and
// the full customer tree P (via IDA), and each group's share is refined
// into per-provider assignments. The assignment cost error is at most
// 2·γ·δ (Theorem 3).
func SA(providers []core.Provider, tree *rtree.Tree, opts Options) (*Result, error) {
	opts = opts.withDefaults(true)
	start := time.Now()

	// Phase 1: partition Q (§4.1).
	pts := make([]geo.Point, len(providers))
	for i, p := range providers {
		pts[i] = p.Pt
	}
	groups := hilbertGroups(pts, opts.Space, opts.Delta)

	// One representative per group: capacity-weighted centroid with the
	// summed capacity.
	reps := make([]core.Provider, len(groups))
	for gi, g := range groups {
		gpts := make([]geo.Point, len(g.members))
		w := make([]float64, len(g.members))
		cap := 0
		for i, m := range g.members {
			gpts[i] = providers[m].Pt
			w[i] = float64(providers[m].Cap)
			cap += providers[m].Cap
		}
		reps[gi] = core.Provider{Pt: geo.Centroid(gpts, w), Cap: cap}
	}

	// Phase 2: concise matching between Q′ and P via IDA (§4.1).
	conciseStart := time.Now()
	concise, err := core.IDA(reps, tree, opts.Core)
	if err != nil {
		return nil, err
	}
	conciseTime := time.Since(conciseStart)

	// Phase 3: refinement (§4.3). The concise matching tells every group
	// which customers it serves; distribute them among the group's own
	// providers, each bounded by its own capacity q.k.
	refineStart := time.Now()
	perGroup := make([][]rtree.Item, len(groups))
	for _, pair := range concise.Pairs {
		perGroup[pair.Provider] = append(perGroup[pair.Provider], rtree.Item{
			ID: pair.CustomerID,
			Pt: pair.CustomerPt,
		})
	}
	var pairs []core.Pair
	for gi, g := range groups {
		// The concise IDA run above already observes Core.Ctx; poll it
		// between group refinements too, so a deadline lands within one
		// (small, δ-bounded) group instead of after the whole phase.
		if ctx := opts.Core.Ctx; ctx != nil {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		if len(perGroup[gi]) == 0 {
			continue
		}
		members := make([]core.Provider, len(g.members))
		budgets := make([]int, len(g.members))
		for i, m := range g.members {
			members[i] = providers[m]
			budgets[i] = providers[m].Cap
		}
		var local []core.Pair
		refine(opts.Refinement, opts.Core.Metric, members, budgets, perGroup[gi], &local)
		for _, lp := range local {
			pairs = append(pairs, core.Pair{
				Provider:   g.members[lp.Provider],
				CustomerID: lp.CustomerID,
				CustomerPt: lp.CustomerPt,
				Dist:       lp.Dist,
			})
		}
	}
	refineTime := time.Since(refineStart)

	cost := 0.0
	for _, p := range pairs {
		cost += p.Dist
	}
	m := concise.Metrics
	m.CPUTime = time.Since(start)
	res := &Result{
		Result: core.Result{
			Pairs:   pairs,
			Cost:    cost,
			Size:    len(pairs),
			Metrics: m,
		},
		Groups:       len(groups),
		ConciseTime:  conciseTime,
		RefineTime:   refineTime,
		ErrorBound:   SABound(concise.Size, opts.Delta),
		ConciseEdges: concise.Metrics.SubgraphEdges,
	}
	return res, nil
}
