package approx

import (
	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/hungarian"
	"repro/internal/rtree"
)

// refineExact solves the group's assignment problem optimally with the
// Hungarian algorithm: provider slots (replicated per budget) against
// the group's customers. §4.3 notes this option and rejects it for cost;
// groups are small under the paper's δ values, so it is offered as the
// highest-quality refinement and as the reference point for the
// refinement-quality ablation.
func refineExact(metric geo.Metric, providers []core.Provider, budgets []int, customers []rtree.Item, out *[]core.Pair) {
	slotOwner := make([]int, 0)
	for qi, b := range budgets {
		for i := 0; i < b; i++ {
			slotOwner = append(slotOwner, qi)
		}
	}
	if len(slotOwner) == 0 || len(customers) == 0 {
		return
	}
	// Hungarian needs rows <= columns.
	rowsAreCustomers := len(customers) <= len(slotOwner)
	var rows, cols int
	if rowsAreCustomers {
		rows, cols = len(customers), len(slotOwner)
	} else {
		rows, cols = len(slotOwner), len(customers)
	}
	cost := make([][]float64, rows)
	for r := range cost {
		cost[r] = make([]float64, cols)
		for c := range cost[r] {
			var qi, ci int
			if rowsAreCustomers {
				ci, qi = r, slotOwner[c]
			} else {
				qi, ci = slotOwner[r], c
			}
			cost[r][c] = metric.Dist(providers[qi].Pt, customers[ci].Pt)
		}
	}
	assign, _, err := hungarian.Solve(cost)
	if err != nil {
		// Cannot happen for well-formed rectangular input; degrade to the
		// NN heuristic rather than dropping the group.
		refineNN(metric, providers, budgets, customers, out)
		return
	}
	for r, c := range assign {
		var qi, ci int
		if rowsAreCustomers {
			ci, qi = r, slotOwner[c]
		} else {
			qi, ci = slotOwner[r], c
		}
		*out = append(*out, core.Pair{
			Provider:   qi,
			CustomerID: customers[ci].ID,
			CustomerPt: customers[ci].Pt,
			Dist:       metric.Dist(providers[qi].Pt, customers[ci].Pt),
		})
	}
}
