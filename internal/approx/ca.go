package approx

import (
	"math"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/hilbert"
	"repro/internal/rtree"
)

// caPart is a δ-bounded piece of P produced by the traversal: either an
// R-tree entry (points fetched lazily at refinement) or a conceptual
// piece of an oversized leaf (points already in hand).
type caPart struct {
	mbr   geo.Rect
	count int
	entry rtree.Entry  // valid when items == nil
	items []rtree.Item // conceptual leaf-split pieces
}

// caGroup is a merged hyper-entry: one customer representative.
type caGroup struct {
	mbr   geo.Rect
	parts []caPart
	count int
}

// CA computes an approximate CCA matching with the Customer
// Approximation (§4.2): the R-tree of P is traversed top-down collecting
// entries whose MBR diagonal is at most δ (conceptually splitting
// oversized leaves), the entries are merged into δ-bounded hyper-entries,
// each hyper-entry becomes one weighted customer representative at its
// MBR center, an exact concise matching between Q and the representatives
// P′ is solved in memory (IDA with customer capacities and unbounded
// per-pair multiplicity), and each group's instances are refined into
// per-customer assignments. The assignment cost error is at most γ·δ
// (Theorem 4).
func CA(providers []core.Provider, tree *rtree.Tree, opts Options) (*Result, error) {
	opts = opts.withDefaults(false)
	start := time.Now()

	// Phase 1a: δ-bounded traversal of the R-tree (§4.2).
	parts, err := caPartition(tree, opts.Delta)
	if err != nil {
		return nil, err
	}
	// Phase 1b: merge entries into hyper-entries along the Hilbert curve.
	groups := caMerge(parts, opts.Space, opts.Delta)

	// Representatives: MBR center, weight = points in the group.
	reps := make([]rtree.Item, len(groups))
	weights := make([]int, len(groups))
	totalWeight := 0
	for gi, g := range groups {
		reps[gi] = rtree.Item{ID: int64(gi), Pt: g.mbr.Center()}
		weights[gi] = g.count
		totalWeight += g.count
	}

	// Phase 2: concise matching between Q and P′, in memory (§4.2).
	conciseStart := time.Now()
	repTree, err := memTree(reps)
	if err != nil {
		return nil, err
	}
	copts := opts.Core
	copts.CustomerCap = func(id int64) int { return weights[id] }
	copts.TotalCustomerCap = totalWeight
	copts.PairCapacity = math.MaxInt32
	concise, err := core.IDA(providers, repTree, copts)
	if err != nil {
		return nil, err
	}
	conciseTime := time.Since(conciseStart)

	// Phase 3: refinement (§4.3). For each group, distribute its actual
	// customers among the providers that received instances of its
	// representative, respecting the per-provider instance counts.
	refineStart := time.Now()
	instances := make([]map[int]int, len(groups)) // group -> provider -> count
	for _, pair := range concise.Pairs {
		gi := int(pair.CustomerID)
		if instances[gi] == nil {
			instances[gi] = make(map[int]int)
		}
		instances[gi][pair.Provider]++
	}
	var pairs []core.Pair
	for gi, g := range groups {
		// The concise IDA run above already observes Core.Ctx; poll it
		// between group refinements too, so a deadline lands within one
		// (small, δ-bounded) group instead of after the whole phase.
		if ctx := opts.Core.Ctx; ctx != nil {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		if len(instances[gi]) == 0 {
			continue
		}
		items, err := caItems(tree, g)
		if err != nil {
			return nil, err
		}
		provIdx := make([]int, 0, len(instances[gi]))
		for q := range instances[gi] {
			provIdx = append(provIdx, q)
		}
		sort.Ints(provIdx)
		members := make([]core.Provider, len(provIdx))
		budgets := make([]int, len(provIdx))
		for i, q := range provIdx {
			members[i] = providers[q]
			budgets[i] = instances[gi][q]
		}
		var local []core.Pair
		refine(opts.Refinement, opts.Core.Metric, members, budgets, items, &local)
		for _, lp := range local {
			pairs = append(pairs, core.Pair{
				Provider:   provIdx[lp.Provider],
				CustomerID: lp.CustomerID,
				CustomerPt: lp.CustomerPt,
				Dist:       lp.Dist,
			})
		}
	}
	refineTime := time.Since(refineStart)

	cost := 0.0
	for _, p := range pairs {
		cost += p.Dist
	}
	m := concise.Metrics
	m.CPUTime = time.Since(start)
	if buf := tree.Buffer(); buf != nil {
		// CA's I/O comes from the partitioning traversal and the
		// refinement leaf reads, not the in-memory concise matching.
		m.IO = buf.Stats()
	}
	return &Result{
		Result: core.Result{
			Pairs:   pairs,
			Cost:    cost,
			Size:    len(pairs),
			Metrics: m,
		},
		Groups:       len(groups),
		ConciseTime:  conciseTime,
		RefineTime:   refineTime,
		ErrorBound:   CABound(concise.Size, opts.Delta),
		ConciseEdges: concise.Metrics.SubgraphEdges,
	}, nil
}

// caPartition walks the R-tree collecting δ-bounded parts: entries whose
// MBR diagonal fits are taken whole; directory entries that do not fit
// are descended; oversized leaves are conceptually split in halves along
// their longest dimension until every piece fits (§4.2).
func caPartition(tree *rtree.Tree, delta float64) ([]caPart, error) {
	root, err := tree.RootEntry()
	if err != nil {
		return nil, err
	}
	if root.Count == 0 {
		return nil, nil
	}
	var parts []caPart
	var walk func(e rtree.Entry) error
	walk = func(e rtree.Entry) error {
		if e.MBR.Diagonal() <= delta {
			parts = append(parts, caPart{mbr: e.MBR, count: e.Count, entry: e})
			return nil
		}
		if e.Leaf {
			items, err := tree.LeafItems(e)
			if err != nil {
				return err
			}
			splitConceptual(e.MBR, items, delta, &parts)
			return nil
		}
		kids, err := tree.Children(e)
		if err != nil {
			return err
		}
		for _, k := range kids {
			if err := walk(k); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(root); err != nil {
		return nil, err
	}
	return parts, nil
}

// splitConceptual recursively halves rect along its longest dimension
// until each piece's diagonal fits delta, emitting non-empty pieces.
func splitConceptual(rect geo.Rect, items []rtree.Item, delta float64, out *[]caPart) {
	if len(items) == 0 {
		return
	}
	if rect.Diagonal() <= delta {
		*out = append(*out, caPart{mbr: rect, count: len(items), items: items})
		return
	}
	a, b := rect.SplitLongest()
	var left, right []rtree.Item
	// Assign boundary points to the left half only, so pieces partition
	// the leaf.
	vertical := rect.Max.X-rect.Min.X >= rect.Max.Y-rect.Min.Y
	for _, it := range items {
		if (vertical && it.Pt.X <= a.Max.X) || (!vertical && it.Pt.Y <= a.Max.Y) {
			left = append(left, it)
		} else {
			right = append(right, it)
		}
	}
	splitConceptual(a, left, delta, out)
	splitConceptual(b, right, delta, out)
}

// caMerge packs δ-bounded parts into hyper-entries whose union MBR still
// fits δ, following the parts' Hilbert order (§4.2's merge step).
func caMerge(parts []caPart, space geo.Rect, delta float64) []caGroup {
	centers := make([]geo.Point, len(parts))
	for i, p := range parts {
		centers[i] = p.mbr.Center()
	}
	order := hilbert.SortByKey(centers, space)
	var groups []caGroup
	for _, idx := range order {
		p := parts[idx]
		placed := false
		for gi := len(groups) - 1; gi >= 0 && gi >= len(groups)-4; gi-- {
			u := groups[gi].mbr.Union(p.mbr)
			if u.Diagonal() <= delta {
				groups[gi].mbr = u
				groups[gi].parts = append(groups[gi].parts, p)
				groups[gi].count += p.count
				placed = true
				break
			}
		}
		if !placed {
			groups = append(groups, caGroup{mbr: p.mbr, parts: []caPart{p}, count: p.count})
		}
	}
	return groups
}

// caItems materializes the actual customers of a group, reading R-tree
// subtrees for entry parts and reusing in-hand items for conceptual ones.
func caItems(tree *rtree.Tree, g caGroup) ([]rtree.Item, error) {
	var out []rtree.Item
	for _, p := range g.parts {
		if p.items != nil {
			out = append(out, p.items...)
			continue
		}
		items, err := tree.CollectItems(p.entry)
		if err != nil {
			return nil, err
		}
		out = append(out, items...)
	}
	return out, nil
}
