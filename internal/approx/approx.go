// Package approx implements the paper's approximate CCA methods (§4):
// Service-provider Approximation (SA) and Customer Approximation (CA),
// with the NN-based and exclusive-NN refinement heuristics (§4.3) and the
// theoretical error bounds of Theorems 3 and 4.
//
// Both methods follow the same three phases:
//
//  1. Partitioning: group the chosen side into clusters whose MBR
//     diagonal is at most δ (Hilbert-order greedy grouping for SA; an
//     R-tree entry traversal with conceptual leaf splitting and
//     hyper-entry merging for CA).
//  2. Concise matching: solve a small *exact* CCA problem (via IDA) over
//     one weighted representative per group.
//  3. Refinement: expand each group's concise assignment into per-point
//     assignments with a cheap heuristic.
//
// The assignment cost error is bounded by 2·γ·δ for SA (Theorem 3) and
// γ·δ for CA (Theorem 4), so δ tunes the accuracy/time trade-off.
package approx

import (
	"fmt"
	"math"
	"time"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/hilbert"
	"repro/internal/rtree"
	"repro/internal/storage"
)

// Refinement selects the heuristic used to expand the concise matching.
type Refinement int

const (
	// RefineNN is the NN-based refinement (§4.3): providers take turns,
	// each claiming its nearest unassigned customer.
	RefineNN Refinement = iota
	// RefineExclusive is the exclusive NN refinement (§4.3): the
	// globally closest (provider, customer) pair is committed first.
	RefineExclusive
	// RefineExact solves each group's small assignment problem exactly
	// with the Hungarian algorithm — the option §4.3 mentions and
	// dismisses as expensive. Groups are small, so it is affordable
	// here and gives the best refinement quality; it is the natural
	// upper bound for the quality ablation.
	RefineExact
)

// String implements fmt.Stringer.
func (r Refinement) String() string {
	switch r {
	case RefineNN:
		return "NN"
	case RefineExclusive:
		return "exclusive-NN"
	case RefineExact:
		return "exact"
	default:
		return fmt.Sprintf("Refinement(%d)", int(r))
	}
}

// Options configures SA and CA.
type Options struct {
	// Delta is the maximum group MBR diagonal δ. The paper's tuned
	// defaults are 40 for SA and 10 for CA (Figure 14); zero selects
	// them.
	Delta float64
	// Refinement is the expansion heuristic (default RefineNN).
	Refinement Refinement
	// Space is the data space for Hilbert ordering (default [0,1000]²).
	Space geo.Rect
	// Core tunes the concise-matching IDA run.
	Core core.Options
}

// DefaultDeltaSA and DefaultDeltaCA are the paper's tuned δ values.
const (
	DefaultDeltaSA = 40.0
	DefaultDeltaCA = 10.0
)

func (o Options) withDefaults(isSA bool) Options {
	if o.Delta <= 0 {
		if isSA {
			o.Delta = DefaultDeltaSA
		} else {
			o.Delta = DefaultDeltaCA
		}
	}
	if o.Space.IsEmpty() {
		o.Space = core.DefaultSpace
	}
	if o.Core.Metric == nil {
		// Resolve the metric here too (core does its own defaulting):
		// the refinement phase measures pair distances directly, and they
		// must be in the same metric the concise matching optimized.
		o.Core.Metric = geo.Euclidean
	}
	return o
}

// SABound returns Theorem 3's upper bound on Ψ(M) − Ψ(M_CCA) for SA.
func SABound(gamma int, delta float64) float64 { return 2 * float64(gamma) * delta }

// CABound returns Theorem 4's upper bound on Ψ(M) − Ψ(M_CCA) for CA.
func CABound(gamma int, delta float64) float64 { return float64(gamma) * delta }

// group is a δ-bounded cluster of providers (SA).
type group struct {
	mbr     geo.Rect
	members []int // provider indexes
}

// hilbertGroup greedily packs points (in Hilbert order) into groups whose
// MBR diagonal stays within delta — the SA partitioning procedure (§4.1),
// also reused by CA's hyper-entry merging (§4.2).
func hilbertGroups(pts []geo.Point, space geo.Rect, delta float64) []group {
	order := hilbert.SortByKey(pts, space)
	var groups []group
	for _, idx := range order {
		placed := false
		// Scan existing groups, most recent first: Hilbert locality makes
		// the latest group the overwhelmingly likely host.
		for gi := len(groups) - 1; gi >= 0; gi-- {
			ext := groups[gi].mbr.ExtendPoint(pts[idx])
			if ext.Diagonal() <= delta {
				groups[gi].mbr = ext
				groups[gi].members = append(groups[gi].members, idx)
				placed = true
				break
			}
		}
		if !placed {
			groups = append(groups, group{
				mbr:     geo.RectFromPoint(pts[idx]),
				members: []int{idx},
			})
		}
	}
	return groups
}

// refine distributes customers P” among providers Q” (with per-provider
// budgets) using the requested heuristic, appending pairs to out. Pair
// distances are measured in metric — the same one the concise matching
// optimized — so Result.Cost stays consistent under non-Euclidean
// backends. Both heuristics run on small in-memory sets, as §4.3
// prescribes.
func refine(method Refinement, metric geo.Metric, providers []core.Provider, budgets []int,
	customers []rtree.Item, out *[]core.Pair) {
	switch method {
	case RefineExclusive:
		refineExclusive(metric, providers, budgets, customers, out)
	case RefineExact:
		refineExact(metric, providers, budgets, customers, out)
	default:
		refineNN(metric, providers, budgets, customers, out)
	}
}

// refineNN: round-robin over providers; each takes its nearest remaining
// customer until its budget is exhausted.
func refineNN(metric geo.Metric, providers []core.Provider, budgets []int, customers []rtree.Item, out *[]core.Pair) {
	taken := make([]bool, len(customers))
	remaining := len(customers)
	budget := append([]int(nil), budgets...)
	for remaining > 0 {
		progress := false
		for qi := range providers {
			if budget[qi] == 0 || remaining == 0 {
				continue
			}
			best, bestD := -1, math.Inf(1)
			for ci, c := range customers {
				if taken[ci] {
					continue
				}
				if d := metric.Dist(providers[qi].Pt, c.Pt); d < bestD {
					best, bestD = ci, d
				}
			}
			if best < 0 {
				continue
			}
			*out = append(*out, core.Pair{
				Provider:   qi, // caller remaps to global index
				CustomerID: customers[best].ID,
				CustomerPt: customers[best].Pt,
				Dist:       bestD,
			})
			taken[best] = true
			remaining--
			budget[qi]--
			progress = true
		}
		if !progress {
			break // all budgets exhausted; leftover customers unassigned
		}
	}
}

// refineExclusive: repeatedly commit the globally closest pair between a
// budgeted provider and an unassigned customer.
func refineExclusive(metric geo.Metric, providers []core.Provider, budgets []int, customers []rtree.Item, out *[]core.Pair) {
	taken := make([]bool, len(customers))
	remaining := len(customers)
	budget := append([]int(nil), budgets...)
	totalBudget := 0
	for _, b := range budget {
		totalBudget += b
	}
	for remaining > 0 && totalBudget > 0 {
		bq, bc, bd := -1, -1, math.Inf(1)
		for qi := range providers {
			if budget[qi] == 0 {
				continue
			}
			for ci, c := range customers {
				if taken[ci] {
					continue
				}
				if d := metric.Dist(providers[qi].Pt, c.Pt); d < bd {
					bq, bc, bd = qi, ci, d
				}
			}
		}
		if bq < 0 {
			break
		}
		*out = append(*out, core.Pair{Provider: bq, CustomerID: customers[bc].ID, CustomerPt: customers[bc].Pt, Dist: bd})
		taken[bc] = true
		remaining--
		budget[bq]--
		totalBudget--
	}
}

// Result wraps a core.Result with approximation-specific metadata.
type Result struct {
	core.Result
	Groups       int           // number of partition groups
	ConciseTime  time.Duration // time spent in the concise matching
	RefineTime   time.Duration // time spent refining
	ErrorBound   float64       // Theorem 3/4 bound on Ψ(M) − Ψ(M_CCA)
	ConciseEdges int           // |Esub| of the concise matching
}

// memTree bulk-loads items into a throwaway in-memory R-tree (used for
// the concise matching inputs that live in main memory).
func memTree(items []rtree.Item) (*rtree.Tree, error) {
	buf := storage.NewBuffer(storage.NewMemStore(storage.DefaultPageSize), 1<<20)
	return rtree.Bulk(buf, items)
}
