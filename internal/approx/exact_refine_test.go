package approx

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/rtree"
)

// Exact refinement must never be worse than either heuristic on the same
// group (it solves the group's assignment optimally).
func TestRefineExactDominatesHeuristics(t *testing.T) {
	in := genInstance(t, 6, 150, 12, 611)
	costs := map[Refinement]float64{}
	for _, method := range []Refinement{RefineNN, RefineExclusive, RefineExact} {
		res, err := CA(in.providers, in.tree, Options{Delta: 40, Refinement: method})
		if err != nil {
			t.Fatal(err)
		}
		checkValidApprox(t, in, res)
		costs[method] = res.Cost
	}
	if costs[RefineExact] > costs[RefineNN]+1e-6 {
		t.Errorf("exact refinement (%v) worse than NN (%v)", costs[RefineExact], costs[RefineNN])
	}
	if costs[RefineExact] > costs[RefineExclusive]+1e-6 {
		t.Errorf("exact refinement (%v) worse than exclusive (%v)", costs[RefineExact], costs[RefineExclusive])
	}
	// And it still respects the Theorem 4 bound against the true optimum.
	opt := in.optimal()
	if costs[RefineExact] > opt+CABound(in.gamma(), 40)+1e-6 {
		t.Errorf("exact refinement exceeds Theorem 4 bound")
	}
}

// refineExact on a single group must reproduce the Hungarian optimum and
// respect budgets.
func TestRefineExactUnit(t *testing.T) {
	providers := []core.Provider{
		{Pt: geo.Point{X: 0, Y: 0}, Cap: 9},
		{Pt: geo.Point{X: 10, Y: 0}, Cap: 9},
	}
	customers := []rtree.Item{
		{ID: 0, Pt: geo.Point{X: 3, Y: 0}},
		{ID: 1, Pt: geo.Point{X: 7, Y: 0}},
		{ID: 2, Pt: geo.Point{X: 1, Y: 0}},
	}
	var out []core.Pair
	refineExact(geo.Euclidean, providers, []int{1, 2}, customers, &out)
	if len(out) != 3 {
		t.Fatalf("assigned %d of 3", len(out))
	}
	counts := map[int]int{}
	total := 0.0
	for _, p := range out {
		counts[p.Provider]++
		total += p.Dist
		if p.CustomerPt == (geo.Point{}) {
			t.Fatal("CustomerPt not filled")
		}
	}
	if counts[0] != 1 || counts[1] != 2 {
		t.Fatalf("budgets violated: %v", counts)
	}
	// Optimal under budgets (1,2): q1<-c2 (1), q2<-c1 (3), q2<-c0 (7) = 11.
	if math.Abs(total-11) > 1e-9 {
		t.Fatalf("total %v want 11", total)
	}

	// Empty inputs are no-ops.
	var empty []core.Pair
	refineExact(geo.Euclidean, providers, []int{0, 0}, customers, &empty)
	if len(empty) != 0 {
		t.Fatal("zero budgets must assign nothing")
	}
	refineExact(geo.Euclidean, providers, []int{1, 1}, nil, &empty)
	if len(empty) != 0 {
		t.Fatal("no customers must assign nothing")
	}
}

// More provider slots than customers exercises the transposed matrix.
func TestRefineExactTransposed(t *testing.T) {
	providers := []core.Provider{
		{Pt: geo.Point{X: 0, Y: 0}, Cap: 9},
		{Pt: geo.Point{X: 10, Y: 0}, Cap: 9},
	}
	customers := []rtree.Item{{ID: 0, Pt: geo.Point{X: 9, Y: 0}}}
	var out []core.Pair
	refineExact(geo.Euclidean, providers, []int{3, 3}, customers, &out)
	if len(out) != 1 || out[0].Provider != 1 {
		t.Fatalf("want single assignment to the near provider, got %+v", out)
	}
}

// All refinements must fill CustomerPt (regression: heuristics used to
// leave it zero).
func TestRefinementsFillCustomerPt(t *testing.T) {
	in := genInstance(t, 4, 60, 8, 613)
	for _, method := range []Refinement{RefineNN, RefineExclusive, RefineExact} {
		for _, run := range []func() (*Result, error){
			func() (*Result, error) { return CA(in.providers, in.tree, Options{Delta: 30, Refinement: method}) },
			func() (*Result, error) { return SA(in.providers, in.tree, Options{Delta: 50, Refinement: method}) },
		} {
			res, err := run()
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range res.Pairs {
				if p.CustomerPt != in.items[p.CustomerID].Pt {
					t.Fatalf("%v: CustomerPt %v != actual %v", method, p.CustomerPt, in.items[p.CustomerID].Pt)
				}
			}
		}
	}
}
