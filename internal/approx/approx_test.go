package approx

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/flowgraph"
	"repro/internal/geo"
	"repro/internal/rtree"
	"repro/internal/storage"
)

type instance struct {
	providers []core.Provider
	items     []rtree.Item
	tree      *rtree.Tree
}

func genInstance(t *testing.T, nq, nc, k int, seed int64) *instance {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	providers := make([]core.Provider, nq)
	for i := range providers {
		providers[i] = core.Provider{
			Pt:  geo.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000},
			Cap: k,
		}
	}
	items := make([]rtree.Item, nc)
	centers := make([]geo.Point, 4)
	for i := range centers {
		centers[i] = geo.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}
	}
	for i := range items {
		var pt geo.Point
		if rng.Float64() < 0.8 {
			c := centers[rng.Intn(len(centers))]
			pt = geo.Point{
				X: clamp(c.X+rng.NormFloat64()*50, 0, 1000),
				Y: clamp(c.Y+rng.NormFloat64()*50, 0, 1000),
			}
		} else {
			pt = geo.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}
		}
		items[i] = rtree.Item{ID: int64(i), Pt: pt}
	}
	tree, err := rtree.Bulk(storage.NewBuffer(storage.NewMemStore(1024), 1024), items)
	if err != nil {
		t.Fatal(err)
	}
	return &instance{providers: providers, items: items, tree: tree}
}

func clamp(v, lo, hi float64) float64 {
	return math.Min(math.Max(v, lo), hi)
}

func (in *instance) optimal() float64 {
	customers := make([]flowgraph.Customer, len(in.items))
	for i, it := range in.items {
		customers[i] = flowgraph.Customer{Pt: it.Pt, Cap: 1, ExtID: it.ID}
	}
	fp := make([]flowgraph.Provider, len(in.providers))
	for i, p := range in.providers {
		fp[i] = flowgraph.Provider{Pt: p.Pt, Cap: p.Cap}
	}
	_, cost := flowgraph.RefSolve(fp, customers)
	return cost
}

func (in *instance) gamma() int {
	total := 0
	for _, p := range in.providers {
		total += p.Cap
	}
	if len(in.items) < total {
		return len(in.items)
	}
	return total
}

// checkValidApprox verifies matching validity: full size, unique
// customers, capacities respected.
func checkValidApprox(t *testing.T, in *instance, res *Result) {
	t.Helper()
	if res.Size != in.gamma() {
		t.Fatalf("matching size %d want γ=%d", res.Size, in.gamma())
	}
	used := make([]int, len(in.providers))
	seen := make(map[int64]bool)
	sum := 0.0
	for _, p := range res.Pairs {
		if seen[p.CustomerID] {
			t.Fatalf("customer %d assigned twice", p.CustomerID)
		}
		seen[p.CustomerID] = true
		used[p.Provider]++
		sum += p.Dist
		// Reported distance must equal the actual geometry.
		want := in.providers[p.Provider].Pt.Dist(in.items[p.CustomerID].Pt)
		if math.Abs(p.Dist-want) > 1e-9 {
			t.Fatalf("pair distance %v does not match geometry %v", p.Dist, want)
		}
	}
	for q, u := range used {
		if u > in.providers[q].Cap {
			t.Fatalf("provider %d over capacity: %d > %d", q, u, in.providers[q].Cap)
		}
	}
	if math.Abs(sum-res.Cost) > 1e-6 {
		t.Fatalf("Cost %v != pair sum %v", res.Cost, sum)
	}
}

// Both approximations, with both refinements, must produce valid
// matchings within their theoretical error bounds (Theorems 3 and 4).
func TestApproxWithinBounds(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		in := genInstance(t, 6, 120, 15, 400+seed)
		opt := in.optimal()
		gamma := in.gamma()
		for _, tc := range []struct {
			name  string
			run   func(Options) (*Result, error)
			delta float64
			bound float64
		}{
			{"SA/NN", func(o Options) (*Result, error) { return SA(in.providers, in.tree, o) }, 60, SABound(gamma, 60)},
			{"SA/excl", func(o Options) (*Result, error) {
				o.Refinement = RefineExclusive
				return SA(in.providers, in.tree, o)
			}, 60, SABound(gamma, 60)},
			{"CA/NN", func(o Options) (*Result, error) { return CA(in.providers, in.tree, o) }, 30, CABound(gamma, 30)},
			{"CA/excl", func(o Options) (*Result, error) {
				o.Refinement = RefineExclusive
				return CA(in.providers, in.tree, o)
			}, 30, CABound(gamma, 30)},
		} {
			res, err := tc.run(Options{Delta: tc.delta})
			if err != nil {
				t.Fatalf("%s: %v", tc.name, err)
			}
			checkValidApprox(t, in, res)
			if res.Cost < opt-1e-6 {
				t.Fatalf("%s seed %d: approximate cost %v beats optimum %v", tc.name, seed, res.Cost, opt)
			}
			if res.Cost > opt+tc.bound+1e-6 {
				t.Fatalf("%s seed %d: error %v exceeds bound %v",
					tc.name, seed, res.Cost-opt, tc.bound)
			}
			if math.Abs(res.ErrorBound-tc.bound) > 1e-9 {
				t.Fatalf("%s: reported bound %v want %v", tc.name, res.ErrorBound, tc.bound)
			}
		}
	}
}

// Shrinking δ must (weakly) improve CA's accuracy and drive it toward
// the optimum — Figure 14's trend.
func TestDeltaControlsAccuracy(t *testing.T) {
	in := genInstance(t, 5, 200, 20, 17)
	opt := in.optimal()
	prevQuality := math.Inf(1)
	improvedOnce := false
	for _, delta := range []float64{160, 40, 5} {
		res, err := CA(in.providers, in.tree, Options{Delta: delta})
		if err != nil {
			t.Fatal(err)
		}
		quality := res.Cost / opt
		if quality < 1-1e-9 {
			t.Fatalf("quality below 1: %v", quality)
		}
		// Allow small non-monotonicity (heuristic refinement) but demand
		// overall improvement from the coarsest to the finest δ.
		if quality < prevQuality-1e-9 {
			improvedOnce = true
		}
		prevQuality = quality
	}
	if !improvedOnce && prevQuality > 1.01 {
		t.Fatalf("accuracy never improved as δ shrank (final quality %v)", prevQuality)
	}
	// δ=5 should be near-optimal on this instance.
	if prevQuality > 1.30 {
		t.Fatalf("CA at δ=5 is far from optimal: quality %v", prevQuality)
	}
}

// SA groups respect δ: verify the partition helper directly.
func TestHilbertGroupsRespectDelta(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	pts := make([]geo.Point, 500)
	for i := range pts {
		pts[i] = geo.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}
	}
	const delta = 75.0
	groups := hilbertGroups(pts, core.DefaultSpace, delta)
	seen := make(map[int]bool)
	for _, g := range groups {
		if g.mbr.Diagonal() > delta+1e-9 {
			t.Fatalf("group diagonal %v exceeds δ", g.mbr.Diagonal())
		}
		for _, m := range g.members {
			if seen[m] {
				t.Fatalf("point %d in two groups", m)
			}
			seen[m] = true
			if !g.mbr.Contains(pts[m]) {
				t.Fatalf("member outside group MBR")
			}
		}
	}
	if len(seen) != len(pts) {
		t.Fatalf("groups cover %d of %d points", len(seen), len(pts))
	}
}

// CA partitioning must cover every point exactly once with δ-bounded
// parts.
func TestCAPartitionCoversP(t *testing.T) {
	in := genInstance(t, 1, 800, 1, 31)
	const delta = 50.0
	parts, err := caPartition(in.tree, delta)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, p := range parts {
		if p.mbr.Diagonal() > delta+1e-9 {
			t.Fatalf("part diagonal %v exceeds δ", p.mbr.Diagonal())
		}
		total += p.count
	}
	if total != 800 {
		t.Fatalf("parts cover %d of 800 points", total)
	}
	// Merged groups must also respect δ and preserve the count.
	groups := caMerge(parts, core.DefaultSpace, delta)
	total = 0
	for _, g := range groups {
		if g.mbr.Diagonal() > delta+1e-9 {
			t.Fatalf("group diagonal %v exceeds δ", g.mbr.Diagonal())
		}
		total += g.count
	}
	if total != 800 {
		t.Fatalf("groups cover %d of 800 points", total)
	}
	if len(groups) > len(parts) {
		t.Fatalf("merge increased the entry count: %d > %d", len(groups), len(parts))
	}
}

// Tiny δ forces conceptual leaf splits; the pipeline must stay correct.
func TestCAConceptualLeafSplit(t *testing.T) {
	in := genInstance(t, 3, 150, 10, 47)
	res, err := CA(in.providers, in.tree, Options{Delta: 2})
	if err != nil {
		t.Fatal(err)
	}
	checkValidApprox(t, in, res)
	// δ=2 is nearly exact.
	opt := in.optimal()
	if res.Cost > opt+CABound(in.gamma(), 2)+1e-6 {
		t.Fatalf("tiny-δ CA error %v exceeds bound", res.Cost-opt)
	}
}

// The refinement heuristics must respect budgets and assign min(|P”|,
// Σbudgets) customers.
func TestRefinementBudgets(t *testing.T) {
	providers := []core.Provider{
		{Pt: geo.Point{X: 0, Y: 0}, Cap: 99},
		{Pt: geo.Point{X: 100, Y: 0}, Cap: 99},
	}
	customers := []rtree.Item{
		{ID: 0, Pt: geo.Point{X: 1, Y: 0}},
		{ID: 1, Pt: geo.Point{X: 2, Y: 0}},
		{ID: 2, Pt: geo.Point{X: 99, Y: 0}},
		{ID: 3, Pt: geo.Point{X: 98, Y: 0}},
	}
	for _, method := range []Refinement{RefineNN, RefineExclusive} {
		var out []core.Pair
		refine(method, geo.Euclidean, providers, []int{2, 2}, customers, &out)
		if len(out) != 4 {
			t.Fatalf("%v: assigned %d of 4", method, len(out))
		}
		counts := map[int]int{}
		for _, p := range out {
			counts[p.Provider]++
		}
		if counts[0] != 2 || counts[1] != 2 {
			t.Fatalf("%v: budgets violated: %v", method, counts)
		}
		// Sensible geometry: customers 0,1 to provider 0; 2,3 to 1.
		for _, p := range out {
			if (p.CustomerID <= 1) != (p.Provider == 0) {
				t.Fatalf("%v: customer %d went to provider %d", method, p.CustomerID, p.Provider)
			}
		}
	}
	// Budget smaller than customer count leaves the excess unassigned.
	var out []core.Pair
	refine(RefineNN, geo.Euclidean, providers, []int{1, 0}, customers, &out)
	if len(out) != 1 {
		t.Fatalf("limited budget: assigned %d want 1", len(out))
	}
}

func TestRefinementStrings(t *testing.T) {
	if RefineNN.String() != "NN" || RefineExclusive.String() != "exclusive-NN" {
		t.Fatal("refinement names changed")
	}
	if Refinement(9).String() == "" {
		t.Fatal("unknown refinement must still print")
	}
}

// CA on an empty tree and SA with no providers must not panic.
func TestApproxDegenerate(t *testing.T) {
	tree, err := rtree.Bulk(storage.NewBuffer(storage.NewMemStore(1024), 64), nil)
	if err != nil {
		t.Fatal(err)
	}
	providers := []core.Provider{{Pt: geo.Point{X: 1, Y: 1}, Cap: 5}}
	if res, err := CA(providers, tree, Options{}); err != nil || res.Size != 0 {
		t.Fatalf("CA empty: %v %+v", err, res)
	}
	if res, err := SA(providers, tree, Options{}); err != nil || res.Size != 0 {
		t.Fatalf("SA empty: %v %+v", err, res)
	}
}
