package hilbert

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geo"
)

func TestEncodeOrder1(t *testing.T) {
	// The order-1 curve visits (0,0), (0,1), (1,1), (1,0).
	want := map[[2]uint32]uint64{
		{0, 0}: 0, {0, 1}: 1, {1, 1}: 2, {1, 0}: 3,
	}
	for cell, d := range want {
		if got := Encode(cell[0], cell[1], 1); got != d {
			t.Errorf("Encode(%v) = %d want %d", cell, got, d)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := func(x, y uint32) bool {
		x &= (1 << Order) - 1
		y &= (1 << Order) - 1
		gx, gy := Decode(Encode(x, y, Order), Order)
		return gx == x && gy == y
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestEncodeBijectiveSmallOrder(t *testing.T) {
	// Exhaustively check order 4: 256 cells must map to 256 distinct
	// positions covering [0,256).
	const order = 4
	seen := make(map[uint64]bool)
	for x := uint32(0); x < 1<<order; x++ {
		for y := uint32(0); y < 1<<order; y++ {
			d := Encode(x, y, order)
			if d >= 1<<(2*order) {
				t.Fatalf("Encode(%d,%d) = %d out of range", x, y, d)
			}
			if seen[d] {
				t.Fatalf("duplicate curve position %d", d)
			}
			seen[d] = true
		}
	}
}

// Consecutive curve positions must be adjacent grid cells (the defining
// locality property of the Hilbert curve).
func TestCurveContinuity(t *testing.T) {
	const order = 5
	px, py := Decode(0, order)
	for d := uint64(1); d < 1<<(2*order); d++ {
		x, y := Decode(d, order)
		dx := int64(x) - int64(px)
		dy := int64(y) - int64(py)
		if dx*dx+dy*dy != 1 {
			t.Fatalf("positions %d and %d are not adjacent: (%d,%d) -> (%d,%d)", d-1, d, px, py, x, y)
		}
		px, py = x, y
	}
}

func TestPointKeyClamping(t *testing.T) {
	space := geo.Rect{Min: geo.Point{X: 0, Y: 0}, Max: geo.Point{X: 1000, Y: 1000}}
	inside := PointKey(geo.Point{X: 500, Y: 500}, space)
	_ = inside
	lo := PointKey(geo.Point{X: -50, Y: -50}, space)
	if lo != PointKey(geo.Point{X: 0, Y: 0}, space) {
		t.Errorf("points below the space must clamp to the min corner")
	}
	hi := PointKey(geo.Point{X: 2000, Y: 2000}, space)
	if hi != PointKey(geo.Point{X: 1000, Y: 1000}, space) {
		t.Errorf("points above the space must clamp to the max corner")
	}
}

func TestPointKeyDegenerateSpace(t *testing.T) {
	space := geo.Rect{Min: geo.Point{X: 5, Y: 5}, Max: geo.Point{X: 5, Y: 5}}
	if got := PointKey(geo.Point{X: 5, Y: 5}, space); got != 0 {
		t.Errorf("degenerate space should map to 0, got %d", got)
	}
}

func TestSortByKeyIsPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	space := geo.Rect{Min: geo.Point{X: 0, Y: 0}, Max: geo.Point{X: 1000, Y: 1000}}
	pts := make([]geo.Point, 100)
	for i := range pts {
		pts[i] = geo.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}
	}
	idx := SortByKey(pts, space)
	if len(idx) != len(pts) {
		t.Fatalf("length mismatch")
	}
	seen := make([]bool, len(pts))
	for _, i := range idx {
		if i < 0 || i >= len(pts) || seen[i] {
			t.Fatalf("not a permutation: %v", idx)
		}
		seen[i] = true
	}
	// Keys must be non-decreasing along the returned order.
	prev := uint64(0)
	for n, i := range idx {
		k := PointKey(pts[i], space)
		if n > 0 && k < prev {
			t.Fatalf("keys not sorted at position %d", n)
		}
		prev = k
	}
}

// Hilbert ordering should have decent locality: the average distance of
// consecutive points in Hilbert order must be far below the average
// distance of consecutive points in random order.
func TestSortByKeyLocality(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	space := geo.Rect{Min: geo.Point{X: 0, Y: 0}, Max: geo.Point{X: 1000, Y: 1000}}
	pts := make([]geo.Point, 2000)
	for i := range pts {
		pts[i] = geo.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}
	}
	idx := SortByKey(pts, space)
	var hilbertHop, randomHop float64
	for i := 1; i < len(idx); i++ {
		hilbertHop += pts[idx[i-1]].Dist(pts[idx[i]])
		randomHop += pts[i-1].Dist(pts[i])
	}
	if hilbertHop*3 > randomHop {
		t.Fatalf("Hilbert order shows poor locality: hop sum %.1f vs random %.1f", hilbertHop, randomHop)
	}
}
