// Package hilbert implements the 2-D Hilbert space-filling curve.
//
// The CCA paper uses Hilbert ordering twice: to group service providers
// into spatially compact batches for the incremental all-nearest-neighbor
// search (§3.4.2) and to partition providers in the SA approximation
// (§4.1). The Hilbert curve is preferred over Z-order because consecutive
// curve positions are always adjacent cells, so consecutive points in
// Hilbert order tend to form tight groups.
package hilbert

import (
	"sort"

	"repro/internal/geo"
)

// Order is the number of bits per coordinate used when quantizing
// float coordinates onto the curve grid. 16 bits (a 65536×65536 grid)
// is far below float64 precision loss and yields 32-bit curve indexes.
const Order = 16

// Encode maps grid cell (x, y) — each in [0, 2^order) — to its position
// along the Hilbert curve of the given order.
func Encode(x, y uint32, order uint) uint64 {
	var d uint64
	for s := uint32(1) << (order - 1); s > 0; s >>= 1 {
		var rx, ry uint32
		if x&s > 0 {
			rx = 1
		}
		if y&s > 0 {
			ry = 1
		}
		d += uint64(s) * uint64(s) * uint64((3*rx)^ry)
		x, y = rotate(s, x, y, rx, ry)
	}
	return d
}

// Decode maps a curve position back to its grid cell, inverting Encode.
func Decode(d uint64, order uint) (x, y uint32) {
	t := d
	for s := uint32(1); s < 1<<order; s <<= 1 {
		rx := uint32(1) & uint32(t/2)
		ry := uint32(1) & uint32(t^uint64(rx))
		x, y = rotate(s, x, y, rx, ry)
		x += s * rx
		y += s * ry
		t /= 4
	}
	return x, y
}

// rotate flips/rotates a quadrant as the curve recursion requires.
func rotate(s, x, y, rx, ry uint32) (uint32, uint32) {
	if ry == 0 {
		if rx == 1 {
			x = s - 1 - x
			y = s - 1 - y
		}
		x, y = y, x
	}
	return x, y
}

// PointKey quantizes p within the bounding space and returns its Hilbert
// curve position. Points outside space are clamped to its boundary.
func PointKey(p geo.Point, space geo.Rect) uint64 {
	return Encode(quantize(p.X, space.Min.X, space.Max.X),
		quantize(p.Y, space.Min.Y, space.Max.Y), Order)
}

func quantize(v, lo, hi float64) uint32 {
	const cells = 1 << Order
	if hi <= lo {
		return 0
	}
	f := (v - lo) / (hi - lo)
	if f < 0 {
		f = 0
	}
	if f > 1 {
		f = 1
	}
	c := uint32(f * cells)
	if c >= cells {
		c = cells - 1
	}
	return c
}

// SortByKey returns the indexes 0..n-1 permuted into ascending Hilbert
// order of pts within space. The caller's slice is not modified.
func SortByKey(pts []geo.Point, space geo.Rect) []int {
	idx := make([]int, len(pts))
	keys := make([]uint64, len(pts))
	for i, p := range pts {
		idx[i] = i
		keys[i] = PointKey(p, space)
	}
	sort.SliceStable(idx, func(a, b int) bool { return keys[idx[a]] < keys[idx[b]] })
	return idx
}
