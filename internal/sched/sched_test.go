package sched

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestPoolRunsEverything: every submitted task runs exactly once and the
// counters agree.
func TestPoolRunsEverything(t *testing.T) {
	p := New(Config{Workers: 4})
	var ran atomic.Int64
	var wg sync.WaitGroup
	const n = 200
	for i := 0; i < n; i++ {
		wg.Add(1)
		lane := Lane(i % int(numLanes))
		if err := p.Submit(context.Background(), lane, func(ctx context.Context, info TaskInfo) {
			defer wg.Done()
			if info.Worker < 0 || info.Worker >= 4 {
				t.Errorf("worker index %d out of range", info.Worker)
			}
			if info.QueueWait < 0 {
				t.Errorf("negative queue wait %v", info.QueueWait)
			}
			ran.Add(1)
		}); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	p.Close()
	if ran.Load() != n {
		t.Fatalf("ran %d of %d tasks", ran.Load(), n)
	}
	m := p.Metrics()
	if m.Submitted != n || m.Completed != n || m.Queued != 0 {
		t.Fatalf("metrics %+v, want %d submitted and completed, 0 queued", m, n)
	}
	tasks, busy := 0, time.Duration(0)
	for _, w := range m.PerWorker {
		tasks += w.Tasks
		busy += w.Busy
	}
	if tasks != n {
		t.Errorf("per-worker task counts sum to %d, want %d", tasks, n)
	}
	if busy < 0 {
		t.Errorf("negative total busy %v", busy)
	}
}

// TestInteractiveLaneOvertakesBatch: with a single blocked worker, an
// interactive task submitted after a pile of batch tasks must run before
// the batch backlog.
func TestInteractiveLaneOvertakesBatch(t *testing.T) {
	p := New(Config{Workers: 1})
	defer p.Close()

	release := make(chan struct{})
	started := make(chan struct{})
	// Occupy the single worker so subsequent submissions queue up.
	if err := p.Submit(context.Background(), Batch, func(context.Context, TaskInfo) {
		close(started)
		<-release
	}); err != nil {
		t.Fatal(err)
	}
	<-started

	var order []string
	var mu sync.Mutex
	var wg sync.WaitGroup
	record := func(name string) Task {
		return func(context.Context, TaskInfo) {
			mu.Lock()
			order = append(order, name)
			mu.Unlock()
			wg.Done()
		}
	}
	wg.Add(4)
	p.Submit(context.Background(), Batch, record("batch-1"))
	p.Submit(context.Background(), Batch, record("batch-2"))
	p.Submit(context.Background(), Batch, record("batch-3"))
	p.Submit(context.Background(), Interactive, record("interactive"))
	close(release)
	wg.Wait()

	if order[0] != "interactive" {
		t.Fatalf("interactive task did not overtake the batch backlog: %v", order)
	}
	for i, want := range []string{"batch-1", "batch-2", "batch-3"} {
		if order[i+1] != want {
			t.Fatalf("batch lane lost FIFO order: %v", order)
		}
	}
}

// TestQueueWaitRecorded: a task that sat behind a long one reports a
// queue wait, and the pool aggregates it.
func TestQueueWaitRecorded(t *testing.T) {
	p := New(Config{Workers: 1})
	defer p.Close()
	var wg sync.WaitGroup
	wg.Add(2)
	p.Submit(context.Background(), Batch, func(context.Context, TaskInfo) {
		time.Sleep(20 * time.Millisecond)
		wg.Done()
	})
	var waited time.Duration
	p.Submit(context.Background(), Batch, func(_ context.Context, info TaskInfo) {
		waited = info.QueueWait
		wg.Done()
	})
	wg.Wait()
	if waited < 10*time.Millisecond {
		t.Errorf("queue wait %v, want at least ~20ms behind the sleeper", waited)
	}
	p.Close() // finalize accounting before reading the counters
	m := p.Metrics()
	if m.QueueWait < waited || m.MaxQueueWait < waited {
		t.Errorf("aggregate queue wait %v / max %v below observed %v", m.QueueWait, m.MaxQueueWait, waited)
	}
}

// TestSubmitAfterClose: Close drains the queue, then Submit fails fast.
func TestSubmitAfterClose(t *testing.T) {
	p := New(Config{Workers: 2})
	var ran atomic.Int64
	for i := 0; i < 10; i++ {
		p.Submit(context.Background(), Batch, func(context.Context, TaskInfo) { ran.Add(1) })
	}
	p.Close()
	if ran.Load() != 10 {
		t.Fatalf("Close did not drain the queue: %d of 10 ran", ran.Load())
	}
	if err := p.Submit(context.Background(), Interactive, func(context.Context, TaskInfo) {}); err != ErrClosed {
		t.Fatalf("Submit after Close = %v, want ErrClosed", err)
	}
	p.Close() // idempotent
}

// TestTaskSeesSubmittersContext: the context passed to Submit is the one
// the task observes, including cancellation.
func TestTaskSeesSubmittersContext(t *testing.T) {
	p := New(Config{Workers: 1})
	defer p.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	done := make(chan error, 1)
	p.Submit(ctx, Interactive, func(ctx context.Context, _ TaskInfo) {
		done <- ctx.Err()
	})
	if err := <-done; err != context.Canceled {
		t.Fatalf("task saw ctx.Err() = %v, want context.Canceled", err)
	}
}

// TestDefaultWorkerCount: Workers < 1 selects GOMAXPROCS.
func TestDefaultWorkerCount(t *testing.T) {
	p := New(Config{})
	defer p.Close()
	if p.Workers() < 1 {
		t.Fatalf("default pool has %d workers", p.Workers())
	}
	if got := len(p.Metrics().PerWorker); got != p.Workers() {
		t.Fatalf("PerWorker has %d entries for %d workers", got, p.Workers())
	}
}
