// Package sched is the repository's streaming work scheduler: a
// long-lived, bounded worker pool with priority lanes, context-aware
// tasks, and per-worker telemetry. It is the execution core under
// cca.Engine (batch and streaming solves) and the experiment harness's
// figure sweeps — any component that needs "run these independent jobs
// on W workers without starving the small ones" submits here instead of
// hand-rolling its own goroutine pool.
//
// Scheduling model. A Pool owns a fixed set of workers and one FIFO
// queue per Lane. Workers always drain the Interactive lane before
// touching the Batch lane, so short latency-sensitive jobs overtake
// bulk work that was queued earlier; within a lane, order is FIFO.
// Tasks carry the submitter's context; the pool itself never cancels a
// running task — it hands the context to the task, which is expected to
// observe it (the CCA solvers check it between augmenting iterations).
//
// Telemetry. The pool records per-worker busy time and task counts,
// plus queue-wait (submit → execution start) aggregates. Callers can
// snapshot Metrics around a batch and diff the two snapshots to get
// batch-scoped utilization (cca.Engine does exactly that for its
// FleetMetrics).
package sched

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"time"
)

// Lane is a priority class for submitted tasks.
type Lane int

const (
	// Interactive is the low-latency lane: workers drain it before the
	// Batch lane, so small solves are never starved by bulk work.
	Interactive Lane = iota
	// Batch is the bulk lane for large or throughput-oriented work.
	Batch

	numLanes
)

// String implements fmt.Stringer.
func (l Lane) String() string {
	switch l {
	case Interactive:
		return "interactive"
	case Batch:
		return "batch"
	default:
		return "unknown"
	}
}

// ErrClosed is returned by Submit after Close has been called.
var ErrClosed = errors.New("sched: pool is closed")

// TaskInfo tells a running task where and how it was scheduled.
type TaskInfo struct {
	// Worker is the index (0..Workers-1) of the worker running the task.
	Worker int
	// Lane is the lane the task was submitted on.
	Lane Lane
	// QueueWait is the time the task spent queued before a worker
	// picked it up.
	QueueWait time.Duration
}

// Task is one unit of work. The context is the submitter's; a task that
// can run long should observe it.
type Task func(ctx context.Context, info TaskInfo)

// Config sizes a Pool.
type Config struct {
	// Workers bounds concurrency; values < 1 select runtime.GOMAXPROCS(0).
	Workers int
}

// WorkerStats describes one worker's activity.
type WorkerStats struct {
	Tasks int           // tasks completed by this worker
	Busy  time.Duration // total time spent running tasks
	// Utilization is Busy divided by the observation window (pool uptime
	// for Pool.Metrics; the batch wall for engine batch diffs).
	Utilization float64
}

// Metrics is a snapshot of a pool's activity since New. Completion
// accounting for a task lands just after the task function returns —
// i.e. after any result the task delivered became observable — so a
// snapshot racing the last delivery may trail by a task; Close the pool
// first for final numbers.
type Metrics struct {
	Workers      int           // pool size
	Submitted    int           // tasks accepted by Submit
	Completed    int           // tasks that finished running
	Queued       int           // tasks currently waiting, all lanes
	QueueWait    time.Duration // Σ queue wait over completed tasks
	MaxQueueWait time.Duration // worst single queue wait observed
	Uptime       time.Duration // time since the pool was created
	PerWorker    []WorkerStats // per-worker breakdown
}

// task is one queued unit.
type task struct {
	ctx  context.Context
	fn   Task
	lane Lane
	enq  time.Time
}

// laneQueue is a FIFO with an advancing head index, so popping is O(1)
// instead of sliding the whole backlog on every dequeue; popped slots
// are zeroed so the backing array does not pin completed tasks, and the
// array is compacted once the dead prefix dominates.
type laneQueue struct {
	items []task
	head  int
}

func (q *laneQueue) push(t task) { q.items = append(q.items, t) }

func (q *laneQueue) len() int { return len(q.items) - q.head }

func (q *laneQueue) pop() (task, bool) {
	if q.head >= len(q.items) {
		return task{}, false
	}
	t := q.items[q.head]
	q.items[q.head] = task{}
	q.head++
	switch {
	case q.head == len(q.items):
		q.items = q.items[:0]
		q.head = 0
	case q.head > 64 && q.head*2 >= len(q.items):
		n := copy(q.items, q.items[q.head:])
		// Clear the vacated tail too: the duplicates left above n would
		// otherwise pin completed tasks' closures until overwritten.
		clear(q.items[n:])
		q.items = q.items[:n]
		q.head = 0
	}
	return t, true
}

// Pool is a long-lived bounded worker pool. Build one with New; it is
// safe for concurrent Submit from any number of goroutines.
type Pool struct {
	workers int
	start   time.Time

	mu     sync.Mutex
	cond   *sync.Cond
	queues [numLanes]laneQueue
	closed bool

	submitted    int
	completed    int
	queueWait    time.Duration
	maxQueueWait time.Duration
	perWorker    []WorkerStats

	wg sync.WaitGroup
}

// New builds and starts a pool.
func New(cfg Config) *Pool {
	w := cfg.Workers
	if w < 1 {
		w = runtime.GOMAXPROCS(0)
	}
	p := &Pool{
		workers:   w,
		start:     time.Now(),
		perWorker: make([]WorkerStats, w),
	}
	p.cond = sync.NewCond(&p.mu)
	p.wg.Add(w)
	for i := 0; i < w; i++ {
		go p.worker(i)
	}
	return p
}

// Workers returns the pool size.
func (p *Pool) Workers() int { return p.workers }

// Submit enqueues fn on the given lane. It never blocks on workers (the
// queues are unbounded) and returns ErrClosed after Close. A nil ctx is
// treated as context.Background(). Submit does not reject tasks whose
// context is already cancelled — the task still runs (immediately
// observing the dead context); callers wanting fail-fast behaviour
// should check ctx.Err() before submitting.
func (p *Pool) Submit(ctx context.Context, lane Lane, fn Task) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if lane < 0 || lane >= numLanes {
		lane = Batch
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return ErrClosed
	}
	p.queues[lane].push(task{ctx: ctx, fn: fn, lane: lane, enq: time.Now()})
	p.submitted++
	p.mu.Unlock()
	p.cond.Signal()
	return nil
}

// Close stops accepting new tasks, runs everything already queued to
// completion, and waits for the workers to exit. It is idempotent.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		p.wg.Wait()
		return
	}
	p.closed = true
	p.mu.Unlock()
	p.cond.Broadcast()
	p.wg.Wait()
}

// Metrics returns a snapshot of the pool's counters. Per-worker
// utilization is measured against pool uptime.
func (p *Pool) Metrics() Metrics {
	p.mu.Lock()
	defer p.mu.Unlock()
	up := time.Since(p.start)
	m := Metrics{
		Workers:      p.workers,
		Submitted:    p.submitted,
		Completed:    p.completed,
		QueueWait:    p.queueWait,
		MaxQueueWait: p.maxQueueWait,
		Uptime:       up,
		PerWorker:    make([]WorkerStats, len(p.perWorker)),
	}
	for lane := range p.queues {
		m.Queued += p.queues[lane].len()
	}
	copy(m.PerWorker, p.perWorker)
	if up > 0 {
		for i := range m.PerWorker {
			m.PerWorker[i].Utilization = float64(m.PerWorker[i].Busy) / float64(up)
		}
	}
	return m
}

// popLocked removes the next task, draining the Interactive lane first.
// Caller holds p.mu.
func (p *Pool) popLocked() (task, bool) {
	for lane := range p.queues {
		if t, ok := p.queues[lane].pop(); ok {
			return t, true
		}
	}
	return task{}, false
}

func (p *Pool) worker(id int) {
	defer p.wg.Done()
	for {
		p.mu.Lock()
		for {
			if t, ok := p.popLocked(); ok {
				p.mu.Unlock()
				p.run(id, t)
				break
			}
			if p.closed {
				p.mu.Unlock()
				return
			}
			p.cond.Wait()
		}
	}
}

func (p *Pool) run(id int, t task) {
	wait := time.Since(t.enq)
	start := time.Now()
	t.fn(t.ctx, TaskInfo{Worker: id, Lane: t.lane, QueueWait: wait})
	busy := time.Since(start)

	p.mu.Lock()
	st := &p.perWorker[id]
	st.Tasks++
	st.Busy += busy
	p.completed++
	p.queueWait += wait
	if wait > p.maxQueueWait {
		p.maxQueueWait = wait
	}
	p.mu.Unlock()
}
