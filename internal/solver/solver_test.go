package solver

import (
	"context"
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/rtree"
	"repro/internal/storage"
)

// buildDataset bulk-loads points into an in-memory R-tree Dataset.
func buildDataset(t *testing.T, pts []geo.Point) Dataset {
	t.Helper()
	items := make([]rtree.Item, len(pts))
	for i, p := range pts {
		items[i] = rtree.Item{ID: int64(i), Pt: p}
	}
	buf := storage.NewBuffer(storage.NewMemStore(storage.DefaultPageSize), 1<<20)
	tree, err := rtree.Bulk(buf, items)
	if err != nil {
		t.Fatalf("bulk load: %v", err)
	}
	return FromTree(tree)
}

// randomInstance draws one CCA instance. Capacities are randomized and,
// on odd seeds, the instance is γ-limited (Σ q.k > |P|, so the customer
// side binds).
func randomInstance(seed int64) ([]core.Provider, []geo.Point) {
	rng := rand.New(rand.NewSource(seed))
	nq := 2 + rng.Intn(5)
	np := 10 + rng.Intn(60)
	providers := make([]core.Provider, nq)
	for i := range providers {
		cap := 1 + rng.Intn(6)
		if seed%2 == 1 {
			// γ-limited: inflate capacities past |P|.
			cap += np/nq + 1
		}
		providers[i] = core.Provider{
			Pt:  geo.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000},
			Cap: cap,
		}
	}
	pts := make([]geo.Point, np)
	for i := range pts {
		pts[i] = geo.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}
	}
	return providers, pts
}

// validate checks the CCA feasibility conditions on a matching.
func validate(t *testing.T, name string, providers []core.Provider, np int, res *Result) {
	t.Helper()
	used := make([]int, len(providers))
	seen := make(map[int64]bool)
	sum := 0.0
	for _, pr := range res.Pairs {
		if pr.Provider < 0 || pr.Provider >= len(providers) {
			t.Fatalf("%s: pair references provider %d of %d", name, pr.Provider, len(providers))
		}
		if seen[pr.CustomerID] {
			t.Fatalf("%s: customer %d assigned twice", name, pr.CustomerID)
		}
		seen[pr.CustomerID] = true
		used[pr.Provider]++
		sum += pr.Dist
	}
	for q, u := range used {
		if u > providers[q].Cap {
			t.Fatalf("%s: provider %d over capacity (%d > %d)", name, q, u, providers[q].Cap)
		}
	}
	gamma := 0
	for _, p := range providers {
		gamma += p.Cap
	}
	if np < gamma {
		gamma = np
	}
	if res.Size != gamma {
		t.Fatalf("%s: matching size %d, want γ = %d", name, res.Size, gamma)
	}
	if d := math.Abs(sum - res.Cost); d > 1e-6 {
		t.Fatalf("%s: cost %v does not match pair sum %v", name, res.Cost, sum)
	}
}

// TestExactConformance iterates every registered exact solver over
// randomized instances (varying |Q|, |P|, capacities, including
// γ-limited cases) and asserts the cost matches the SSPA oracle.
func TestExactConformance(t *testing.T) {
	oracle := MustGet("sspa")
	names := ByKind(Exact)
	if len(names) < 5 {
		t.Fatalf("expected at least 5 exact solvers registered, got %v", names)
	}
	for seed := int64(1); seed <= 12; seed++ {
		providers, pts := randomInstance(seed)
		data := buildDataset(t, pts)
		ref, err := oracle.Solve(context.Background(), providers, data, Options{})
		if err != nil {
			t.Fatalf("seed %d: oracle: %v", seed, err)
		}
		validate(t, "sspa", providers, len(pts), ref)
		for _, name := range names {
			s := MustGet(name)
			res, err := s.Solve(context.Background(), providers, data, Options{})
			if err != nil {
				t.Fatalf("seed %d: %s: %v", seed, name, err)
			}
			if res.Solver != name || res.Kind != Exact {
				t.Fatalf("seed %d: %s: result metadata %q/%v", seed, name, res.Solver, res.Kind)
			}
			if res.ErrorBound != 0 {
				t.Fatalf("seed %d: %s: exact solver reported error bound %g", seed, name, res.ErrorBound)
			}
			validate(t, name, providers, len(pts), res)
			if d := math.Abs(res.Cost - ref.Cost); d > 1e-6 {
				t.Errorf("seed %d: %s cost %.9f != oracle %.9f (Δ %.3g)",
					seed, name, res.Cost, ref.Cost, d)
			}
		}
	}
}

// TestApproxConformance asserts every approximate solver's cost stays
// within its reported ErrorBound of the exact optimum, for both
// refinement heuristics.
func TestApproxConformance(t *testing.T) {
	oracle := MustGet("sspa")
	names := ByKind(Approximate)
	if len(names) < 2 {
		t.Fatalf("expected at least 2 approximate solvers registered, got %v", names)
	}
	for seed := int64(1); seed <= 8; seed++ {
		providers, pts := randomInstance(seed)
		data := buildDataset(t, pts)
		ref, err := oracle.Solve(context.Background(), providers, data, Options{})
		if err != nil {
			t.Fatalf("seed %d: oracle: %v", seed, err)
		}
		for _, name := range names {
			for _, refn := range []Refinement{RefineNN, RefineExclusive} {
				res, err := MustGet(name).Solve(context.Background(), providers, data, Options{Delta: 25, Refinement: refn})
				if err != nil {
					t.Fatalf("seed %d: %s/%v: %v", seed, name, refn, err)
				}
				validate(t, name, providers, len(pts), res)
				if res.ErrorBound <= 0 {
					t.Fatalf("seed %d: %s: missing error bound", seed, name)
				}
				if excess := res.Cost - ref.Cost; excess > res.ErrorBound+1e-6 {
					t.Errorf("seed %d: %s/%v exceeds its bound: cost %.3f, optimal %.3f, bound %.3f",
						seed, name, refn, res.Cost, ref.Cost, res.ErrorBound)
				}
			}
		}
	}
}

// TestHeuristicValidity: heuristic solvers must still produce feasible
// maximum matchings, never cheaper than the optimum.
func TestHeuristicValidity(t *testing.T) {
	oracle := MustGet("sspa")
	for seed := int64(1); seed <= 6; seed++ {
		providers, pts := randomInstance(seed)
		data := buildDataset(t, pts)
		ref, err := oracle.Solve(context.Background(), providers, data, Options{})
		if err != nil {
			t.Fatalf("oracle: %v", err)
		}
		for _, name := range ByKind(Heuristic) {
			res, err := MustGet(name).Solve(context.Background(), providers, data, Options{})
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			validate(t, name, providers, len(pts), res)
			if res.Cost < ref.Cost-1e-6 {
				t.Errorf("%s cost %.3f beats the optimum %.3f", name, res.Cost, ref.Cost)
			}
		}
	}
}

// TestRegistry exercises lookup semantics: case-insensitivity, aliases,
// the unknown-name error, and the Describe/Names helpers.
func TestRegistry(t *testing.T) {
	for _, want := range []string{"ida", "nia", "ria", "sspa", "hungarian", "greedy", "sa", "ca"} {
		if _, err := Get(want); err != nil {
			t.Errorf("Get(%q): %v", want, err)
		}
	}
	if s, err := Get("IDA"); err != nil || s.Name() != "ida" {
		t.Errorf("case-insensitive Get(IDA) = %v, %v", s, err)
	}
	if s, err := Get("SM"); err != nil || s.Name() != "greedy" {
		t.Errorf("alias Get(SM) = %v, %v", s, err)
	}
	if _, err := Get("no-such-solver"); err == nil || !strings.Contains(err.Error(), "ida") {
		t.Errorf("unknown solver error should list registered names, got %v", err)
	}
	names := Names()
	if len(names) != len(Describe()) {
		t.Errorf("Names (%d) and Describe (%d) disagree", len(names), len(Describe()))
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Errorf("Names not sorted: %v", names)
		}
	}
}
