package solver

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/rtree"
	"repro/internal/storage"
)

// benchShardInstance is the acceptance-scale instance: 50k customers,
// 40 providers of capacity 5 (γ = 200) — large enough that serial
// SSPA's per-iteration full-bipartite relaxation dominates, the shape
// sharding exists for.
func benchShardInstance(b *testing.B) ([]core.Provider, Dataset) {
	b.Helper()
	rng := rand.New(rand.NewSource(42))
	const nq, np = 40, 50000
	providers := make([]core.Provider, nq)
	for i := range providers {
		providers[i] = core.Provider{
			Pt:  geo.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000},
			Cap: 5,
		}
	}
	items := make([]rtree.Item, np)
	for i := range items {
		items[i] = rtree.Item{ID: int64(i), Pt: geo.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}}
	}
	buf := storage.NewBuffer(storage.NewMemStore(storage.DefaultPageSize), 1<<20)
	tree, err := rtree.Bulk(buf, items)
	if err != nil {
		b.Fatal(err)
	}
	return providers, FromTreeItems(tree, items)
}

// BenchmarkShardedVsSerial pins the sharding speedup: sharded:sspa on
// 8 regions vs single-worker SSPA on one ≥50k-customer instance. The
// sharded run wins on two axes — regions solve concurrently, and each
// region's bipartite graph is ~k² smaller than the full one — so the
// >1.5× acceptance bar holds even on a single core. CI runs this with
// -benchtime=1x as a smoke step; compare the two sub-benchmark times
// for the measured ratio.
func BenchmarkShardedVsSerial(b *testing.B) {
	providers, data := benchShardInstance(b)
	ctx := context.Background()

	b.Run("serial-sspa", func(b *testing.B) {
		s := MustGet("sspa")
		for i := 0; i < b.N; i++ {
			res, err := s.Solve(ctx, providers, data, Options{})
			if err != nil {
				b.Fatal(err)
			}
			if res.Size != 200 {
				b.Fatalf("matching size %d, want 200", res.Size)
			}
		}
	})
	b.Run("sharded-sspa", func(b *testing.B) {
		s := MustGet("sharded:sspa")
		opts := Options{}
		opts.Core.Shards = 8
		for i := 0; i < b.N; i++ {
			res, err := s.Solve(ctx, providers, data, opts)
			if err != nil {
				b.Fatal(err)
			}
			if res.Size != 200 {
				b.Fatalf("matching size %d, want 200", res.Size)
			}
		}
	})
}
