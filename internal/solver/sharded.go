package solver

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/rtree"
	"repro/internal/shard"
	"repro/internal/storage"
)

// shardedPrefix is the factory family name: "sharded" wraps the default
// base ("sharded:ida"), "sharded:<name>" wraps any registered solver.
const shardedPrefix = "sharded"

// shardedDefaultBase is what a bare "sharded" wraps — the paper's best
// exact method, same as the engine's default.
const shardedDefaultBase = "ida"

func init() {
	RegisterFactory(shardedPrefix, Heuristic,
		`spatially sharded meta-solver: Hilbert-partitions one huge instance into
capacity-balanced regions, solves them concurrently with the wrapped base
solver ("sharded:<base>", default `+shardedDefaultBase+`), then re-solves the
boundary band exactly; tune with core.Options.Shards/ShardBoundary`,
		newSharded)
}

// newSharded builds the sharded meta-solver around a base solver name.
// It is Heuristic regardless of the base's kind: the decomposition
// trades the base's guarantee for parallelism, with the optimality gap
// pinned empirically by the conformance suite (see shard.GapBound).
func newSharded(base string) (Solver, error) {
	if base == "" {
		base = shardedDefaultBase
	}
	bs, err := Get(base)
	if err != nil {
		return nil, fmt.Errorf("solver: sharded base: %w", err)
	}
	if strings.HasPrefix(bs.Name(), shardedPrefix+":") || bs.Name() == shardedPrefix {
		return nil, fmt.Errorf("solver: sharded base %q is itself sharded", bs.Name())
	}
	name := shardedPrefix + ":" + bs.Name()
	doc := "spatially sharded " + bs.Name() + " (concurrent region solves + exact boundary reconciliation)"
	fs := New(name, Heuristic, doc, func(providers []core.Provider, data Dataset, opts Options) (*Result, error) {
		return solveSharded(bs, providers, data, opts)
	}).(*funcSolver)
	// Delegating solver: metric query timing belongs to the region and
	// reconcile sub-solves it runs, not to this outer span.
	fs.meta = true
	return fs, nil
}

// solveSharded adapts one registry solve to shard.Solve: below the
// sharding threshold it delegates to the base solver on the original
// dataset (zero overhead); otherwise it materializes the customers once
// and runs the partition / concurrent-region / reconciliation pipeline,
// with every sub-instance solved by the base solver over a fresh
// in-memory R-tree.
func solveSharded(base Solver, providers []core.Provider, data Dataset, opts Options) (*Result, error) {
	if opts.Core.CustomerCap != nil || opts.Core.PairCapacity > 1 {
		return nil, errors.New("solver: sharded does not support custom customer capacities or pair capacities")
	}
	ctx := opts.Core.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	if k := shard.Count(opts.Core.Shards, len(providers), data.Len()); k < 2 {
		res, err := base.Solve(ctx, providers, data, opts)
		if err != nil {
			return nil, err
		}
		res.Groups = 1 // one region: the base solved the whole instance
		return res, nil
	}
	// The one pass over the paper's disk-resident dataset is the All
	// scan that materializes the customers; charge its I/O to the result
	// (the shard-local trees are in-memory scratch and never fault).
	var before storage.Stats
	buf := data.Tree().Buffer()
	if buf != nil {
		before = buf.Stats()
	}
	items, err := data.All()
	if err != nil {
		return nil, err
	}
	var scanIO storage.Stats
	if buf != nil {
		now := buf.Stats()
		scanIO = storage.Stats{
			Hits:           now.Hits - before.Hits,
			Faults:         now.Faults - before.Faults,
			PhysicalReads:  now.PhysicalReads - before.PhysicalReads,
			PhysicalWrites: now.PhysicalWrites - before.PhysicalWrites,
		}
	}
	cfg := shard.Config{
		Shards:  opts.Core.Shards,
		Band:    opts.Core.ShardBoundary,
		Workers: opts.Core.ShardWorkers,
		Base: func(ctx context.Context, p []core.Provider, tree *rtree.Tree, its []rtree.Item, copts core.Options) (*core.Result, error) {
			sub := opts // carry Delta/Refinement through to approximate bases
			sub.Core = copts
			sub.Core.Ctx = ctx
			res, err := base.Solve(ctx, p, FromTreeItems(tree, its), sub)
			if err != nil {
				return nil, err
			}
			return &res.Result, nil
		},
	}
	res, stats, err := shard.Solve(ctx, providers, items, cfg, opts.Core)
	if err != nil {
		return nil, err
	}
	res.Metrics.IO.Hits += scanIO.Hits
	res.Metrics.IO.Faults += scanIO.Faults
	res.Metrics.IO.PhysicalReads += scanIO.PhysicalReads
	res.Metrics.IO.PhysicalWrites += scanIO.PhysicalWrites
	res.Metrics.IOTime += scanIO.IOTime()
	return &Result{
		Result:      *res,
		Groups:      stats.Shards,
		ConciseTime: stats.ShardWall,
		RefineTime:  stats.ReconcileWall,
	}, nil
}
