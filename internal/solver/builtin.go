package solver

import (
	"repro/internal/approx"
	"repro/internal/core"
)

// Refinement selects the approximate solvers' expansion heuristic; see
// approx.Refinement.
type Refinement = approx.Refinement

// Refinement heuristics, re-exported for Options.
const (
	RefineNN        = approx.RefineNN
	RefineExclusive = approx.RefineExclusive
	RefineExact     = approx.RefineExact
)

// exact wraps a core solver that reads customers through the R-tree.
func exact(fn func([]core.Provider, Dataset, Options) (*core.Result, error)) SolveFunc {
	return func(providers []core.Provider, data Dataset, opts Options) (*Result, error) {
		res, err := fn(providers, data, opts)
		if err != nil {
			return nil, err
		}
		return &Result{Result: *res}, nil
	}
}

// approximate wraps an approx solver, carrying the error bound and phase
// breakdown into the uniform Result.
func approximate(fn func([]core.Provider, Dataset, approx.Options) (*approx.Result, error)) SolveFunc {
	return func(providers []core.Provider, data Dataset, opts Options) (*Result, error) {
		aopts := approx.Options{
			Delta:      opts.Delta,
			Refinement: opts.Refinement,
			Space:      opts.Core.Space,
			Core:       opts.Core,
		}
		res, err := fn(providers, data, aopts)
		if err != nil {
			return nil, err
		}
		return &Result{
			Result:       res.Result,
			ErrorBound:   res.ErrorBound,
			Groups:       res.Groups,
			ConciseEdges: res.ConciseEdges,
			ConciseTime:  res.ConciseTime,
			RefineTime:   res.RefineTime,
		}, nil
	}
}

// The built-in solver family. Every algorithm in the repository
// self-registers here; resolving by name via Get is the only supported
// way to pick one outside this package.
func init() {
	Register(New("ida", Exact,
		"Incremental On-demand Algorithm (§3.3), the paper's best exact method",
		exact(func(p []core.Provider, d Dataset, o Options) (*core.Result, error) {
			return core.IDA(p, d.Tree(), o.Core)
		})))
	Register(New("nia", Exact,
		"Nearest Neighbor Incremental Algorithm (§3.2)",
		exact(func(p []core.Provider, d Dataset, o Options) (*core.Result, error) {
			return core.NIA(p, d.Tree(), o.Core)
		})))
	Register(New("ria", Exact,
		"Range Incremental Algorithm (§3.1), θ-stepped range growth",
		exact(func(p []core.Provider, d Dataset, o Options) (*core.Result, error) {
			return core.RIA(p, d.Tree(), o.Core)
		})))
	Register(New("sspa", Exact,
		"Successive Shortest Path baseline on the full bipartite graph (§2.2)",
		exact(func(p []core.Provider, d Dataset, o Options) (*core.Result, error) {
			items, err := d.All()
			if err != nil {
				return nil, err
			}
			return core.SSPA(p, items, o.Core)
		})))
	Register(New("hungarian", Exact,
		"Kuhn–Munkres on a dense (Σk)·|P| matrix (§2.1); tiny instances only",
		exact(func(p []core.Provider, d Dataset, o Options) (*core.Result, error) {
			items, err := d.All()
			if err != nil {
				return nil, err
			}
			return core.HungarianAssign(p, items, o.Core)
		})))
	Register(New("greedy", Heuristic,
		"greedy exclusive-closest-pair spatial matching join (§2.3 related work)",
		exact(func(p []core.Provider, d Dataset, o Options) (*core.Result, error) {
			return core.SMJoin(p, d.Tree(), o.Core)
		})))
	RegisterAlias("sm", "greedy")

	Register(New("sa", Approximate,
		"Service-provider Approximation (§4.1), error ≤ 2·γ·δ (Theorem 3)",
		approximate(func(p []core.Provider, d Dataset, o approx.Options) (*approx.Result, error) {
			return approx.SA(p, d.Tree(), o)
		})))
	Register(New("ca", Approximate,
		"Customer Approximation (§4.2), error ≤ γ·δ (Theorem 4)",
		approximate(func(p []core.Provider, d Dataset, o approx.Options) (*approx.Result, error) {
			return approx.CA(p, d.Tree(), o)
		})))
}
