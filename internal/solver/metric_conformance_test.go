package solver

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/flowgraph"
	"repro/internal/geo"
	"repro/internal/geo/netmetric"
)

// netSpace is the conformance suite's data space.
var netSpace = geo.Rect{Min: geo.Point{X: 0, Y: 0}, Max: geo.Point{X: 1000, Y: 1000}}

// networkInstance draws one CCA instance with both sides placed on a
// road network (the paper's §5.1 setting), plus — on every third seed —
// one off-network provider, so snapping with a non-zero offset is
// exercised too. Odd seeds are γ-limited.
func networkInstance(net *datagen.Network, seed int64) ([]core.Provider, []geo.Point) {
	rng := rand.New(rand.NewSource(seed))
	nq := 2 + rng.Intn(4)
	np := 8 + rng.Intn(40)
	qpts := net.Points(datagen.Config{N: nq, Dist: datagen.Uniform, Seed: seed * 11})
	providers := make([]core.Provider, nq)
	for i := range providers {
		cap := 1 + rng.Intn(5)
		if seed%2 == 1 {
			cap += np/nq + 1 // γ-limited: the customer side binds
		}
		providers[i] = core.Provider{Pt: qpts[i], Cap: cap}
	}
	if seed%3 == 0 {
		providers[0].Pt = geo.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}
	}
	pts := net.Points(datagen.Config{N: np, Dist: datagen.Clustered, Seed: seed * 13})
	return providers, pts
}

// refCost computes the optimal cost under an arbitrary metric with the
// independent Bellman–Ford oracle (no R-tree, no potentials, full cost
// matrix) — the ground truth the registry solvers must reproduce.
func refCost(providers []core.Provider, pts []geo.Point, m geo.Metric) float64 {
	fp := make([]flowgraph.Provider, len(providers))
	for i, p := range providers {
		fp[i] = flowgraph.Provider{Pt: p.Pt, Cap: p.Cap}
	}
	fc := make([]flowgraph.Customer, len(pts))
	for i, p := range pts {
		fc[i] = flowgraph.Customer{Pt: p, Cap: 1, ExtID: int64(i)}
	}
	_, cost := flowgraph.RefSolveMetric(fp, fc, 1, m)
	return cost
}

// TestCrossMetricExactConformance runs every registered exact solver
// under both distance backends and asserts the cost matches the
// brute-force oracle under the same metric. This is the PR 1 SSPA-oracle
// suite parameterized over metrics: under NetworkMetric it proves the
// refinement-heap NN mode keeps NIA/IDA (and the annulus logic keeps
// RIA) exact when R-tree mindist is only a lower bound.
func TestCrossMetricExactConformance(t *testing.T) {
	net := datagen.NewNetwork(10, netSpace, 2008)
	metrics := map[string]geo.Metric{
		"euclidean": geo.Euclidean,
		"network":   netmetric.FromNetwork(net),
	}
	names := ByKind(Exact)
	if len(names) < 5 {
		t.Fatalf("expected at least 5 exact solvers registered, got %v", names)
	}
	for mName, metric := range metrics {
		t.Run(mName, func(t *testing.T) {
			for seed := int64(1); seed <= 10; seed++ {
				providers, pts := networkInstance(net, seed)
				data := buildDataset(t, pts)
				want := refCost(providers, pts, metric)
				opts := Options{}
				opts.Core.Metric = metric
				for _, name := range names {
					res, err := MustGet(name).Solve(context.Background(), providers, data, opts)
					if err != nil {
						t.Fatalf("seed %d: %s: %v", seed, name, err)
					}
					validate(t, name+"/"+mName, providers, len(pts), res)
					if d := math.Abs(res.Cost - want); d > 1e-6 {
						t.Errorf("seed %d: %s under %s: cost %.9f != oracle %.9f (Δ %.3g)",
							seed, name, mName, res.Cost, want, d)
					}
					// Per-pair distances must be measured in the metric.
					for _, pr := range res.Pairs {
						md := metric.Dist(providers[pr.Provider].Pt, pr.CustomerPt)
						if math.Abs(md-pr.Dist) > 1e-6 {
							t.Fatalf("seed %d: %s under %s: pair dist %.9f != metric %.9f",
								seed, name, mName, pr.Dist, md)
						}
					}
				}
			}
		})
	}
}

// TestCrossMetricHeuristicValidity: the greedy join must stay feasible
// and never beat the optimum under the network metric either.
func TestCrossMetricHeuristicValidity(t *testing.T) {
	net := datagen.NewNetwork(8, netSpace, 77)
	metric := netmetric.FromNetwork(net)
	opts := Options{}
	opts.Core.Metric = metric
	for seed := int64(1); seed <= 6; seed++ {
		providers, pts := networkInstance(net, seed)
		data := buildDataset(t, pts)
		want := refCost(providers, pts, metric)
		for _, name := range ByKind(Heuristic) {
			res, err := MustGet(name).Solve(context.Background(), providers, data, opts)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			validate(t, name+"/network", providers, len(pts), res)
			if res.Cost < want-1e-6 {
				t.Errorf("%s cost %.3f beats the network-metric optimum %.3f", name, res.Cost, want)
			}
		}
	}
}

// TestCrossMetricApproxConsistency: under the network metric the
// approximate solvers must measure every pair — and hence Result.Cost —
// in the network metric too (the refinement phase used to fall back to
// Euclidean, letting SA/CA "beat" the true optimum), and so can never
// come out cheaper than the metric's optimal cost.
func TestCrossMetricApproxConsistency(t *testing.T) {
	net := datagen.NewNetwork(8, netSpace, 41)
	metric := netmetric.FromNetwork(net)
	for seed := int64(1); seed <= 6; seed++ {
		providers, pts := networkInstance(net, seed)
		data := buildDataset(t, pts)
		want := refCost(providers, pts, metric)
		for _, name := range ByKind(Approximate) {
			for _, refn := range []Refinement{RefineNN, RefineExclusive, RefineExact} {
				opts := Options{Delta: 100, Refinement: refn}
				opts.Core.Metric = metric
				res, err := MustGet(name).Solve(context.Background(), providers, data, opts)
				if err != nil {
					t.Fatalf("seed %d: %s/%v: %v", seed, name, refn, err)
				}
				validate(t, name+"/network", providers, len(pts), res)
				for _, pr := range res.Pairs {
					md := metric.Dist(providers[pr.Provider].Pt, pr.CustomerPt)
					if math.Abs(md-pr.Dist) > 1e-6 {
						t.Fatalf("seed %d: %s/%v: pair dist %.9f is not the metric distance %.9f",
							seed, name, refn, pr.Dist, md)
					}
				}
				if res.Cost < want-1e-6 {
					t.Errorf("seed %d: %s/%v: cost %.3f beats the network-metric optimum %.3f (metric mixing)",
						seed, name, refn, res.Cost, want)
				}
			}
		}
	}
}

// TestCrossMetricAblations re-runs the NIA/IDA option matrix under the
// network metric: the refinement layer must stay exact with ANN off,
// PUA off, and the Theorem 2 fast path off.
func TestCrossMetricAblations(t *testing.T) {
	net := datagen.NewNetwork(8, netSpace, 99)
	metric := netmetric.FromNetwork(net)
	variants := map[string]func(*core.Options){
		"ann-off":  func(o *core.Options) { o.DisableANN = true },
		"pua-off":  func(o *core.Options) { o.DisablePUA = true },
		"thm2-off": func(o *core.Options) { o.DisableTheorem2 = true },
		"all-off":  func(o *core.Options) { o.DisableANN = true; o.DisablePUA = true; o.DisableTheorem2 = true },
		"default":  func(o *core.Options) {},
	}
	for seed := int64(2); seed <= 5; seed++ {
		providers, pts := networkInstance(net, seed)
		data := buildDataset(t, pts)
		want := refCost(providers, pts, metric)
		for vn, tweak := range variants {
			for _, name := range []string{"nia", "ida"} {
				opts := Options{}
				opts.Core.Metric = metric
				tweak(&opts.Core)
				res, err := MustGet(name).Solve(context.Background(), providers, data, opts)
				if err != nil {
					t.Fatalf("seed %d: %s/%s: %v", seed, name, vn, err)
				}
				if d := math.Abs(res.Cost - want); d > 1e-6 {
					t.Errorf("seed %d: %s/%s: cost %.9f != oracle %.9f", seed, name, vn, res.Cost, want)
				}
			}
		}
	}
}
