package solver

import (
	"sync/atomic"
	"time"

	"repro/internal/geo"
	"repro/internal/obs"
)

// timedMetric wraps a geo.Metric so every Dist call is counted and its
// latency accumulated — the raw material for the trace's synthetic
// "netmetric-query" span and the per-call point-query histogram. It is
// installed only on traced solves (the registry wraps inside Solve,
// after the cache key and the bulk-table swap are settled), so untraced
// hot paths never see it.
type timedMetric struct {
	m     geo.Metric
	hist  *obs.Histogram // optional per-call latency sink (nil observes nothing)
	calls atomic.Int64
	ns    atomic.Int64 // accumulated Dist wall time
}

func (t *timedMetric) Name() string { return t.m.Name() }

func (t *timedMetric) Dist(p, q geo.Point) float64 {
	start := time.Now()
	d := t.m.Dist(p, q)
	el := time.Since(start)
	t.calls.Add(1)
	t.ns.Add(int64(el))
	t.hist.Observe(el.Seconds())
	return d
}

// timedMetricLB preserves the wrapped metric's LowerBounder capability.
// Lower-bound probes are not timed: they are cheap arithmetic, and the
// exact algorithms' pruning depends on consumers (rtree.RefinedNN)
// still seeing the capability — a wrapper that hid it would silently
// change which metrics get refinement, i.e. change results.
type timedMetricLB struct {
	*timedMetric
	lb geo.LowerBounder
}

func (t *timedMetricLB) LowerBound(p, q geo.Point) float64 { return t.lb.LowerBound(p, q) }

// timeMetric wraps m for Dist timing, preserving LowerBounder when m
// has it. The second return value is the accumulator to read after the
// solve (identical for both wrapper shapes).
func timeMetric(m geo.Metric, hist *obs.Histogram) (geo.Metric, *timedMetric) {
	t := &timedMetric{m: m, hist: hist}
	if lb, ok := m.(geo.LowerBounder); ok {
		return &timedMetricLB{timedMetric: t, lb: lb}, t
	}
	return t, t
}
