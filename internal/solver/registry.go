package solver

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// registry is the process-wide solver table. Registration happens in
// init functions; lookups are concurrent-safe (the batch engine resolves
// solvers from many workers).
var registry = struct {
	sync.RWMutex
	byName    map[string]Solver
	aliases   map[string]string
	factories map[string]factory
	derived   map[string]Solver // memoized factory products ("sharded:sspa")
}{
	byName:    make(map[string]Solver),
	aliases:   make(map[string]string),
	factories: make(map[string]factory),
	derived:   make(map[string]Solver),
}

// factory builds parameterized solvers on demand: Get("prefix:arg")
// calls fn(arg), Get("prefix") alone calls fn("") for the family
// default. kind and doc seed the Describe/Names listings.
type factory struct {
	kind Kind
	doc  string
	fn   func(arg string) (Solver, error)
}

// Register adds a solver under its canonical name (lower-cased). It
// panics on a duplicate name: two algorithms claiming one name is a
// programming error worth failing fast on.
func Register(s Solver) {
	name := strings.ToLower(s.Name())
	registry.Lock()
	defer registry.Unlock()
	if _, dup := registry.byName[name]; dup {
		panic(fmt.Sprintf("solver: duplicate registration of %q", name))
	}
	if _, dup := registry.aliases[name]; dup {
		panic(fmt.Sprintf("solver: name %q already registered as an alias", name))
	}
	if _, dup := registry.factories[name]; dup {
		panic(fmt.Sprintf("solver: name %q already registered as a factory prefix", name))
	}
	registry.byName[name] = s
}

// RegisterFactory adds a parameterized solver family under prefix:
// Get(prefix+":"+arg) builds (and memoizes) an instance with fn(arg),
// and Get(prefix) alone builds the family default (fn("")). The prefix
// appears in Names/Describe like a regular solver — it resolves, via
// the default — with doc as its description. fn itself may resolve
// other solvers with Get (it runs without the registry lock held), but
// must not recurse into its own family.
func RegisterFactory(prefix string, kind Kind, doc string, fn func(arg string) (Solver, error)) {
	prefix = strings.ToLower(prefix)
	if strings.Contains(prefix, ":") {
		panic(fmt.Sprintf("solver: factory prefix %q must not contain ':'", prefix))
	}
	registry.Lock()
	defer registry.Unlock()
	if _, dup := registry.byName[prefix]; dup {
		panic(fmt.Sprintf("solver: factory prefix %q collides with a solver name", prefix))
	}
	if _, dup := registry.aliases[prefix]; dup {
		panic(fmt.Sprintf("solver: factory prefix %q collides with an alias", prefix))
	}
	if _, dup := registry.factories[prefix]; dup {
		panic(fmt.Sprintf("solver: duplicate factory registration of %q", prefix))
	}
	registry.factories[prefix] = factory{kind: kind, doc: doc, fn: fn}
}

// RegisterAlias maps an alternative name onto a canonical one (e.g.
// "sm" → "greedy"). The canonical solver must already be registered.
func RegisterAlias(alias, canonical string) {
	alias, canonical = strings.ToLower(alias), strings.ToLower(canonical)
	registry.Lock()
	defer registry.Unlock()
	if _, ok := registry.byName[canonical]; !ok {
		panic(fmt.Sprintf("solver: alias %q targets unregistered solver %q", alias, canonical))
	}
	if _, dup := registry.byName[alias]; dup {
		panic(fmt.Sprintf("solver: alias %q collides with a solver name", alias))
	}
	if _, dup := registry.factories[alias]; dup {
		panic(fmt.Sprintf("solver: alias %q collides with a factory prefix", alias))
	}
	registry.aliases[alias] = canonical
}

// Get resolves a solver by name or alias, case-insensitively.
// Parameterized names ("sharded:sspa", or a bare factory prefix like
// "sharded" for the family default) are built by their registered
// factory on first use and memoized. The error on a miss lists every
// registered name.
func Get(name string) (Solver, error) {
	key := strings.ToLower(strings.TrimSpace(name))
	registry.RLock()
	if canonical, ok := registry.aliases[key]; ok {
		key = canonical
	}
	if s, ok := registry.byName[key]; ok {
		registry.RUnlock()
		return s, nil
	}
	if s, ok := registry.derived[key]; ok {
		registry.RUnlock()
		return s, nil
	}
	fac, arg, ok := factoryForLocked(key)
	registry.RUnlock()
	if !ok {
		return nil, fmt.Errorf("solver: unknown solver %q (registered: %s)",
			name, strings.Join(Names(), ", "))
	}
	// Build outside the lock: factories resolve their base through Get.
	built, err := fac.fn(arg)
	if err != nil {
		return nil, err
	}
	canonical := strings.ToLower(built.Name())
	registry.Lock()
	defer registry.Unlock()
	if prior, ok := registry.derived[canonical]; ok {
		built = prior // another goroutine won the build race
	} else {
		registry.derived[canonical] = built
	}
	if key != canonical {
		// Memoize the requested spelling too ("sharded" → default base,
		// "sharded:sm" → canonical "sharded:greedy").
		if _, ok := registry.derived[key]; !ok {
			registry.derived[key] = built
		}
	}
	return built, nil
}

// factoryForLocked matches a lookup key against the factory table:
// either a bare prefix (family default) or "prefix:arg". Caller holds
// at least the read lock.
func factoryForLocked(key string) (factory, string, bool) {
	if fac, ok := registry.factories[key]; ok {
		return fac, "", true
	}
	if i := strings.IndexByte(key, ':'); i > 0 {
		if fac, ok := registry.factories[key[:i]]; ok {
			return fac, key[i+1:], true
		}
	}
	return factory{}, "", false
}

// MustGet is Get for static names; it panics on a miss.
func MustGet(name string) Solver {
	s, err := Get(name)
	if err != nil {
		panic(err)
	}
	return s
}

// Names returns every canonical solver name plus every factory prefix
// (each resolvable via Get as its family default), sorted.
func Names() []string {
	registry.RLock()
	defer registry.RUnlock()
	return namesLocked()
}

func namesLocked() []string {
	out := make([]string, 0, len(registry.byName)+len(registry.factories))
	for name := range registry.byName {
		out = append(out, name)
	}
	for prefix := range registry.factories {
		out = append(out, prefix)
	}
	sort.Strings(out)
	return out
}

// ByKind returns the sorted canonical names (and factory prefixes) of
// the solvers of one kind.
func ByKind(k Kind) []string {
	registry.RLock()
	defer registry.RUnlock()
	var out []string
	for name, s := range registry.byName {
		if s.Kind() == k {
			out = append(out, name)
		}
	}
	for prefix, fac := range registry.factories {
		if fac.kind == k {
			out = append(out, prefix)
		}
	}
	sort.Strings(out)
	return out
}

// Describe returns one "name (kind): doc" line per registered solver
// and factory family, sorted by name — the CLIs' -algo help text.
func Describe() []string {
	registry.RLock()
	defer registry.RUnlock()
	names := namesLocked()
	out := make([]string, 0, len(names))
	for _, name := range names {
		var kind Kind
		var doc string
		if s, ok := registry.byName[name]; ok {
			kind = s.Kind()
			if d, ok := s.(Doc); ok {
				doc = d.Doc()
			}
		} else {
			fac := registry.factories[name]
			kind, doc = fac.kind, fac.doc
		}
		line := fmt.Sprintf("%s (%s)", name, kind)
		if doc != "" {
			line += ": " + doc
		}
		out = append(out, line)
	}
	return out
}
