package solver

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// registry is the process-wide solver table. Registration happens in
// init functions; lookups are concurrent-safe (the batch engine resolves
// solvers from many workers).
var registry = struct {
	sync.RWMutex
	byName  map[string]Solver
	aliases map[string]string
}{
	byName:  make(map[string]Solver),
	aliases: make(map[string]string),
}

// Register adds a solver under its canonical name (lower-cased). It
// panics on a duplicate name: two algorithms claiming one name is a
// programming error worth failing fast on.
func Register(s Solver) {
	name := strings.ToLower(s.Name())
	registry.Lock()
	defer registry.Unlock()
	if _, dup := registry.byName[name]; dup {
		panic(fmt.Sprintf("solver: duplicate registration of %q", name))
	}
	if _, dup := registry.aliases[name]; dup {
		panic(fmt.Sprintf("solver: name %q already registered as an alias", name))
	}
	registry.byName[name] = s
}

// RegisterAlias maps an alternative name onto a canonical one (e.g.
// "sm" → "greedy"). The canonical solver must already be registered.
func RegisterAlias(alias, canonical string) {
	alias, canonical = strings.ToLower(alias), strings.ToLower(canonical)
	registry.Lock()
	defer registry.Unlock()
	if _, ok := registry.byName[canonical]; !ok {
		panic(fmt.Sprintf("solver: alias %q targets unregistered solver %q", alias, canonical))
	}
	if _, dup := registry.byName[alias]; dup {
		panic(fmt.Sprintf("solver: alias %q collides with a solver name", alias))
	}
	registry.aliases[alias] = canonical
}

// Get resolves a solver by name or alias, case-insensitively. The error
// on a miss lists every registered name.
func Get(name string) (Solver, error) {
	key := strings.ToLower(strings.TrimSpace(name))
	registry.RLock()
	defer registry.RUnlock()
	if canonical, ok := registry.aliases[key]; ok {
		key = canonical
	}
	if s, ok := registry.byName[key]; ok {
		return s, nil
	}
	return nil, fmt.Errorf("solver: unknown solver %q (registered: %s)",
		name, strings.Join(namesLocked(), ", "))
}

// MustGet is Get for static names; it panics on a miss.
func MustGet(name string) Solver {
	s, err := Get(name)
	if err != nil {
		panic(err)
	}
	return s
}

// Names returns every canonical solver name, sorted.
func Names() []string {
	registry.RLock()
	defer registry.RUnlock()
	return namesLocked()
}

func namesLocked() []string {
	out := make([]string, 0, len(registry.byName))
	for name := range registry.byName {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// ByKind returns the sorted canonical names of the solvers of one kind.
func ByKind(k Kind) []string {
	registry.RLock()
	defer registry.RUnlock()
	var out []string
	for name, s := range registry.byName {
		if s.Kind() == k {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// Describe returns one "name (kind): doc" line per registered solver,
// sorted by name — the CLIs' -algo help text.
func Describe() []string {
	registry.RLock()
	defer registry.RUnlock()
	out := make([]string, 0, len(registry.byName))
	for _, name := range namesLocked() {
		s := registry.byName[name]
		line := fmt.Sprintf("%s (%s)", name, s.Kind())
		if d, ok := s.(Doc); ok && d.Doc() != "" {
			line += ": " + d.Doc()
		}
		out = append(out, line)
	}
	return out
}
