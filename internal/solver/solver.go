// Package solver is the pluggable front door to every CCA algorithm in
// the repository. Each algorithm — exact (IDA, NIA, RIA, SSPA,
// Hungarian), approximate (SA, CA with their Theorem 3/4 error bounds)
// and heuristic (the greedy SM join) — registers itself under a stable
// name, and callers resolve solvers with Get instead of switching on
// algorithm strings. The CLIs (ccarun, ccabench), the experiment
// harness (internal/expr) and the public batch engine (cca.Engine) all
// go through this registry, so adding a solver is one Register call.
package solver

import (
	"context"
	"time"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/geo/netmetric"
	"repro/internal/obs"
	"repro/internal/rtree"
)

// Kind classifies a solver's optimality guarantee.
type Kind int

const (
	// Exact solvers produce the minimum-cost maximum matching.
	Exact Kind = iota
	// Approximate solvers carry a theoretical bound on the cost excess
	// over the optimum (Result.ErrorBound).
	Approximate
	// Heuristic solvers produce a valid maximum matching with no cost
	// guarantee.
	Heuristic
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Exact:
		return "exact"
	case Approximate:
		return "approximate"
	case Heuristic:
		return "heuristic"
	default:
		return "unknown"
	}
}

// Dataset is the customer-side input a solver consumes: a disk-resident,
// R-tree-indexed point set. *cca.Customers satisfies it; the experiment
// harness adapts its workloads; FromTree wraps a bare tree.
type Dataset interface {
	// Tree returns the R-tree over the customers.
	Tree() *rtree.Tree
	// All returns every customer (used by the main-memory baselines).
	All() ([]rtree.Item, error)
	// Len returns the number of customers.
	Len() int
}

// treeDataset adapts a bare R-tree to Dataset.
type treeDataset struct{ tree *rtree.Tree }

func (d treeDataset) Tree() *rtree.Tree          { return d.tree }
func (d treeDataset) All() ([]rtree.Item, error) { return d.tree.All() }
func (d treeDataset) Len() int                   { return d.tree.Size() }

// FromTree wraps an R-tree as a Dataset.
func FromTree(t *rtree.Tree) Dataset { return treeDataset{tree: t} }

// itemsDataset adapts a tree plus a pre-loaded item slice, so the
// main-memory baselines skip the tree scan (and its I/O charges).
type itemsDataset struct {
	tree  *rtree.Tree
	items []rtree.Item
}

func (d itemsDataset) Tree() *rtree.Tree          { return d.tree }
func (d itemsDataset) All() ([]rtree.Item, error) { return d.items, nil }
func (d itemsDataset) Len() int                   { return len(d.items) }

// FromTreeItems wraps an R-tree whose items the caller already holds in
// memory; All returns them without touching the tree.
func FromTreeItems(t *rtree.Tree, items []rtree.Item) Dataset {
	return itemsDataset{tree: t, items: items}
}

// Options tunes a solve. The zero value selects every solver's paper
// defaults.
type Options struct {
	// Core tunes the exact algorithms (θ, ablation switches, metric,
	// data space); see core.Options.
	Core core.Options
	// Delta is the approximate solvers' group-diagonal bound δ
	// (0 selects the paper's tuned default: 40 for SA, 10 for CA).
	Delta float64
	// Refinement selects the approximate solvers' expansion heuristic.
	Refinement Refinement
}

// Result is a solver-agnostic outcome: the matching plus the metadata a
// caller needs to interpret it without knowing which algorithm ran.
type Result struct {
	core.Result

	// Solver is the canonical name of the solver that produced this.
	Solver string
	// Kind is the producing solver's guarantee class.
	Kind Kind
	// ErrorBound bounds Ψ(M) − Ψ(M_CCA) for Approximate solvers
	// (Theorems 3 and 4); it is 0 for Exact solvers and undefined
	// (also 0) for Heuristic ones.
	ErrorBound float64
	// Groups, ConciseEdges, ConciseTime and RefineTime carry the
	// approximate solvers' phase breakdown (zero otherwise). The
	// sharded meta-solver reuses them for its own phases: Groups is the
	// region count, ConciseTime the concurrent region-solve wall and
	// RefineTime the boundary-reconciliation wall.
	Groups       int
	ConciseEdges int
	ConciseTime  time.Duration
	RefineTime   time.Duration
}

// Solver is one CCA algorithm.
type Solver interface {
	// Name returns the canonical registry name (e.g. "ida").
	Name() string
	// Kind returns the guarantee class.
	Kind() Kind
	// Solve computes a matching of providers to the dataset's customers.
	// ctx carries the caller's cancellation/deadline into the solve: it
	// is checked before the solve starts and threaded into the core
	// algorithms' augmenting-iteration loops, so a cancelled solve
	// returns ctx.Err() mid-run instead of computing to completion. Pass
	// context.Background() when no deadline applies.
	Solve(ctx context.Context, providers []core.Provider, data Dataset, opts Options) (*Result, error)
}

// Doc describes a solver for help text; registered solvers implement it.
type Doc interface {
	Doc() string
}

// SolveFunc is the function form of Solver.Solve, minus the context —
// the registry wrapper threads ctx into Options.Core.Ctx before the
// function runs, so implementations read cancellation from there.
type SolveFunc func(providers []core.Provider, data Dataset, opts Options) (*Result, error)

// funcSolver is the registry's concrete Solver.
type funcSolver struct {
	name string
	kind Kind
	doc  string
	fn   SolveFunc
	// meta marks delegating solvers (the sharded family) whose fn runs
	// other registered solvers underneath. A meta solver must not wrap
	// the metric for query timing: the leaf solves it delegates to do,
	// and double-wrapping would count every region's Dist calls twice.
	meta bool
}

func (s *funcSolver) Name() string { return s.name }
func (s *funcSolver) Kind() Kind   { return s.kind }
func (s *funcSolver) Doc() string  { return s.doc }
func (s *funcSolver) Solve(ctx context.Context, providers []core.Provider, data Dataset, opts Options) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	// Fail fast on a dead context, then hand it to the algorithm loops.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	ctx, span := obs.Start(ctx, "solver")
	span.SetStr("name", s.name)
	defer span.End()
	// Hand the (possibly span-carrying) context to the algorithm loops.
	// When the caller pre-set Core.Ctx (the sharded meta-solver does, to
	// the same ctx it passes here) the span-derived context supersedes
	// it so child spans nest under this solver.
	if opts.Core.Ctx == nil || span != nil {
		opts.Core.Ctx = ctx
	}
	// Bulk distance precompute: every solver evaluates P×C metric
	// distances, so for network metrics the registry pre-resolves a
	// provider-sourced table here — once, at the choke point all
	// callers (CLIs, expr, cca.Engine, the sharded meta-solver's outer
	// solve) pass through. Inner sharded sub-solves arrive with the
	// *netmetric.Table already in place and skip the rewrap.
	buildWall := withDistTable(providers, data, &opts)
	if buildWall > 0 {
		span.AddTimed("table-build", buildWall)
	}
	if span != nil && !s.meta && !geo.IsEuclidean(opts.Core.Metric) {
		// Traced leaf solve over a non-Euclidean metric: time every Dist
		// call. Wrapping happens after the engine computed its cache key
		// and after withDistTable's type assertion, so neither sees the
		// wrapper; meta solvers skip it (their leaf sub-solves wrap).
		statted, hasStats := opts.Core.Metric.(interface{ Stats() netmetric.CacheStats })
		var before netmetric.CacheStats
		if hasStats {
			before = statted.Stats()
		}
		wrapped, acc := timeMetric(opts.Core.Metric, span.Sink(obs.PointQuerySink))
		opts.Core.Metric = wrapped
		defer func() {
			// Overlay: point-query time accrues inside the flowgraph-build
			// and augment phases, so it annotates rather than telescopes.
			q := span.AddOverlay("netmetric-query", time.Duration(acc.ns.Load()))
			q.SetInt("calls", acc.calls.Load())
			if hasStats {
				after := statted.Stats()
				q.SetInt("snap_hits", int64(after.SnapHits-before.SnapHits))
				q.SetInt("snap_misses", int64(after.SnapMisses-before.SnapMisses))
				q.SetInt("node_hits", int64(after.NodeHits-before.NodeHits))
				q.SetInt("node_misses", int64(after.NodeMisses-before.NodeMisses))
				q.SetInt("pair_hits", int64(after.PairHits-before.PairHits))
				q.SetInt("pair_misses", int64(after.PairMisses-before.PairMisses))
			}
		}()
	}
	res, err := s.fn(providers, data, opts)
	if err != nil {
		return nil, err
	}
	// The table build ran outside the algorithm's own timers; charge it
	// to the solve's CPU time so the precompute cannot hide from the
	// benchmarks it is supposed to win.
	res.Metrics.CPUTime += buildWall
	if span != nil {
		span.SetInt("faults", int64(res.Metrics.IO.Faults))
		span.SetInt("io_ns", int64(res.Metrics.IOTime))
	}
	res.Solver = s.name
	res.Kind = s.kind
	return res, nil
}

// DistTableMinPairs gates the bulk precompute: below this many
// provider×customer pairs the point-query path (with its warm caches)
// wins, and the sweeps would dominate the solve. Exported so the batch
// engine's shared-table memo applies the identical gate — an instance
// small enough to skip the precompute here also skips the memo there.
const DistTableMinPairs = 1 << 12

// withDistTable swaps opts' metric for a provider-sourced bulk distance
// table (netmetric.Table) when the metric is a road network, the
// precompute is enabled (core.Options.DistTable >= 0) and the instance
// is large enough to amortize the sweeps. Results are byte-identical
// either way — the table returns the same canonical floats as point
// queries — so this is purely a performance decision. Returns the wall
// time the build consumed (0 when skipped or declined over budget).
func withDistTable(providers []core.Provider, data Dataset, opts *Options) time.Duration {
	nm, ok := opts.Core.Metric.(*netmetric.NetworkMetric)
	if !ok || opts.Core.DistTable < 0 || len(providers) == 0 ||
		len(providers)*data.Len() < DistTableMinPairs {
		return 0
	}
	start := time.Now()
	pts := make([]geo.Point, len(providers))
	for i := range providers {
		pts[i] = providers[i].Pt
	}
	if t := nm.BuildTable(pts, opts.Core.DistTable); t != nil {
		opts.Core.Metric = t
	}
	return time.Since(start)
}

// New builds a Solver from a function; doc is a one-line description
// used in CLI help output.
func New(name string, kind Kind, doc string, fn SolveFunc) Solver {
	return &funcSolver{name: name, kind: kind, doc: doc, fn: fn}
}
