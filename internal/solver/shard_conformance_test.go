package solver

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/geo"
	"repro/internal/geo/netmetric"
	"repro/internal/shard"
)

// shardInstance draws one instance big enough that a spatial partition
// is meaningful. regime selects the capacity pressure: "tight" keeps
// Σ capacity well below |P| (the provider side binds and every region
// fills up — the sharding sweet spot), "loose" inflates capacities past
// |P| (the customer side binds, every customer is assigned, and
// capacity-starved regions must strand customers for reconciliation to
// absorb). Customers are a mix of provider-centered clusters and
// uniform background, so region borders actually cut clusters.
func shardInstance(seed int64, regime string) ([]core.Provider, []geo.Point) {
	rng := rand.New(rand.NewSource(seed))
	nq := 8 + rng.Intn(5)
	np := 200 + rng.Intn(200)
	providers := make([]core.Provider, nq)
	for i := range providers {
		var cap int
		switch regime {
		case "tight":
			cap = 1 + rng.Intn(np/(2*nq)+1) // Σ ≈ |P|/4
		default: // loose
			cap = np/nq + 1 + rng.Intn(np/nq+1) // Σ ≈ 1.5·|P|
		}
		providers[i] = core.Provider{
			Pt:  geo.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000},
			Cap: cap,
		}
	}
	pts := make([]geo.Point, np)
	for i := range pts {
		if i%2 == 0 {
			q := providers[rng.Intn(nq)].Pt
			pts[i] = geo.Point{
				X: clamp1000(q.X + rng.NormFloat64()*120),
				Y: clamp1000(q.Y + rng.NormFloat64()*120),
			}
		} else {
			pts[i] = geo.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}
		}
	}
	return providers, pts
}

func clamp1000(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1000 {
		return 1000
	}
	return v
}

// TestShardedConformance is the cross-shard conformance suite: the
// sharded meta-solver over exact bases, across capacity regimes and
// both distance backends, against the independent Bellman–Ford oracle.
// It asserts exact feasibility (every assignment valid, |M| = γ — the
// validate helper) and that the total cost can neither beat the optimum
// nor exceed it by more than the documented gap bound (shard.GapBound,
// for the default band).
func TestShardedConformance(t *testing.T) {
	net := datagen.NewNetwork(10, netSpace, 2008)
	metrics := map[string]geo.Metric{
		"euclidean": geo.Euclidean,
		"network":   netmetric.FromNetwork(net),
	}
	for mName, metric := range metrics {
		t.Run(mName, func(t *testing.T) {
			for _, regime := range []string{"tight", "loose"} {
				for seed := int64(1); seed <= 3; seed++ {
					providers, pts := shardInstance(seed*7, regime)
					data := buildDataset(t, pts)
					want := refCost(providers, pts, metric)
					for _, base := range []string{"sspa", "ida"} {
						for _, shards := range []int{2, 3} {
							opts := Options{}
							opts.Core.Metric = metric
							opts.Core.Shards = shards
							name := "sharded:" + base
							res, err := MustGet(name).Solve(context.Background(), providers, data, opts)
							if err != nil {
								t.Fatalf("%s/%s seed %d k=%d: %v", regime, name, seed, shards, err)
							}
							label := regime + "/" + name + "/" + mName
							validate(t, label, providers, len(pts), res)
							if res.Solver != name || res.Kind != Heuristic {
								t.Fatalf("%s: result metadata %q/%v", label, res.Solver, res.Kind)
							}
							if res.Groups != shards {
								t.Errorf("%s: solved %d regions, want %d", label, res.Groups, shards)
							}
							if res.Cost < want-1e-6 {
								t.Errorf("%s seed %d k=%d: cost %.6f beats the optimum %.6f",
									label, seed, shards, res.Cost, want)
							}
							if limit := want * (1 + shard.GapBound); res.Cost > limit+1e-6 {
								t.Errorf("%s seed %d k=%d: cost %.6f exceeds the gap bound (optimum %.6f, limit %.6f)",
									label, seed, shards, res.Cost, want, limit)
							}
							// Pair distances must be measured in the metric
							// across both the region and reconcile phases.
							for _, pr := range res.Pairs {
								md := metric.Dist(providers[pr.Provider].Pt, pr.CustomerPt)
								if math.Abs(md-pr.Dist) > 1e-6 {
									t.Fatalf("%s seed %d: pair dist %.9f != metric %.9f",
										label, seed, pr.Dist, md)
								}
							}
						}
					}
				}
			}
		})
	}
}

// TestShardedHeuristicBase: wrapping a heuristic base must still yield
// a feasible maximum matching no cheaper than the optimum.
func TestShardedHeuristicBase(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		providers, pts := shardInstance(seed, "tight")
		data := buildDataset(t, pts)
		want := refCost(providers, pts, geo.Euclidean)
		opts := Options{}
		opts.Core.Shards = 3
		res, err := MustGet("sharded:greedy").Solve(context.Background(), providers, data, opts)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		validate(t, "sharded:greedy", providers, len(pts), res)
		if res.Cost < want-1e-6 {
			t.Errorf("seed %d: sharded:greedy cost %.6f beats the optimum %.6f", seed, res.Cost, want)
		}
	}
}

// TestShardedAutoCount: with Shards = 0 the count is data-derived —
// small instances collapse to the unsharded base, large ones split.
func TestShardedAutoCount(t *testing.T) {
	if k := shard.Count(0, 16, 100); k != 1 {
		t.Errorf("auto count on a small instance = %d, want 1", k)
	}
	if k := shard.Count(0, 16, 10000); k < 2 {
		t.Errorf("auto count on a large instance = %d, want >= 2", k)
	}
	if k := shard.Count(0, 3, 1<<20); k != 3 {
		t.Errorf("auto count with 3 providers = %d, want 3 (one provider per region minimum)", k)
	}
	if k := shard.Count(64, 8, 100); k != 8 {
		t.Errorf("requested count must clamp to the provider count: got %d, want 8", k)
	}
}

// TestShardedRegistry exercises the factory resolution path: bare
// family default, parameterized lookup, alias canonicalization,
// memoization, and the error cases.
func TestShardedRegistry(t *testing.T) {
	s, err := Get("sharded")
	if err != nil {
		t.Fatalf("Get(sharded): %v", err)
	}
	if s.Name() != "sharded:ida" {
		t.Errorf("bare sharded resolved to %q, want sharded:ida", s.Name())
	}
	s2, err := Get("SHARDED:IDA")
	if err != nil || s2 != s {
		t.Errorf("Get(SHARDED:IDA) = %v, %v; want the memoized %v", s2, err, s)
	}
	if s3, err := Get("sharded:sm"); err != nil || s3.Name() != "sharded:greedy" {
		t.Errorf("alias base: Get(sharded:sm) = %v, %v; want sharded:greedy", s3, err)
	}
	if _, err := Get("sharded:nope"); err == nil {
		t.Error("Get(sharded:nope) should fail on the unknown base")
	}
	if _, err := Get("sharded:sharded"); err == nil {
		t.Error("Get(sharded:sharded) should reject recursive sharding")
	}
	if _, err := Get("sharded:sharded:sspa"); err == nil {
		t.Error("Get(sharded:sharded:sspa) should reject recursive sharding")
	}
	found := false
	for _, n := range Names() {
		if n == "sharded" {
			found = true
		}
	}
	if !found {
		t.Errorf("Names() should list the sharded family: %v", Names())
	}
	if len(Names()) != len(Describe()) {
		t.Errorf("Names (%d) and Describe (%d) disagree", len(Names()), len(Describe()))
	}
}

// TestShardedRejectsCustomCaps: the decomposition's feasibility
// argument assumes unit customer capacity, so the meta-solver must
// refuse rather than silently miscount.
func TestShardedRejectsCustomCaps(t *testing.T) {
	providers, pts := shardInstance(1, "tight")
	data := buildDataset(t, pts)
	opts := Options{}
	opts.Core.Shards = 2
	opts.Core.CustomerCap = func(int64) int { return 2 }
	if _, err := MustGet("sharded:sspa").Solve(context.Background(), providers, data, opts); err == nil {
		t.Error("sharded solve with CustomerCap should fail")
	}
}
