// Package rtree implements a paged R-tree over the storage substrate,
// the spatial access method the paper assumes for the customer set P
// (§2.3). It provides:
//
//   - STR bulk loading and dynamic insertion/deletion (Guttman splits),
//   - range and annular range search (used by RIA, §3.1),
//   - best-first incremental nearest neighbor search in the style of
//     Hjaltason & Samet (used by NIA/IDA, §3.2–3.3),
//   - grouped incremental all-nearest-neighbor search (§3.4.2), and
//   - an entry-level traversal cursor with per-subtree point counts
//     (used by CA partitioning, §4.2).
//
// Every page access goes through an LRU buffer manager, so experiments
// can account faults exactly as the paper does.
package rtree

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/geo"
	"repro/internal/storage"
)

// Item is a point with an application identifier (a customer).
type Item struct {
	ID int64
	Pt geo.Point
}

// Page layout
//
//	header: kind (1 byte: 0 leaf, 1 dir) | count (uint16)
//	leaf entry:  id int64 | x float64 | y float64                 = 24 B
//	dir  entry:  child uint32 | count uint32 | 4 × float64 MBR    = 40 B
//
// With the paper's 1 KB pages this gives leaf fanout 42 and directory
// fanout 25. Directory entries carry the subtree point count, making the
// tree a (count-)aggregate R-tree; CA partitioning reads representative
// weights from directory entries without descending (§4.2).
const (
	headerSize    = 3
	leafEntrySize = 24
	dirEntrySize  = 40

	kindLeaf = 0
	kindDir  = 1
)

// dirEntry is a decoded directory entry.
type dirEntry struct {
	child storage.PageID
	count int // points in the subtree
	mbr   geo.Rect
}

// node is a decoded page.
type node struct {
	id     storage.PageID
	leaf   bool
	items  []Item     // when leaf
	childs []dirEntry // when directory
}

func (n *node) count() int {
	if n.leaf {
		return len(n.items)
	}
	return len(n.childs)
}

// subtreeCount returns the number of points under this node.
func (n *node) subtreeCount() int {
	if n.leaf {
		return len(n.items)
	}
	total := 0
	for _, c := range n.childs {
		total += c.count
	}
	return total
}

// mbr computes the bounding rectangle of the node's entries.
func (n *node) mbr() geo.Rect {
	r := geo.EmptyRect()
	if n.leaf {
		for _, it := range n.items {
			r = r.ExtendPoint(it.Pt)
		}
	} else {
		for _, c := range n.childs {
			r = r.Union(c.mbr)
		}
	}
	return r
}

// LeafCapacity returns the number of point entries per leaf page.
func LeafCapacity(pageSize int) int { return (pageSize - headerSize) / leafEntrySize }

// DirCapacity returns the number of child entries per directory page.
func DirCapacity(pageSize int) int { return (pageSize - headerSize) / dirEntrySize }

func encodeNode(n *node, pageSize int) ([]byte, error) {
	buf := make([]byte, pageSize)
	if n.leaf {
		if len(n.items) > LeafCapacity(pageSize) {
			return nil, fmt.Errorf("rtree: leaf overflow: %d entries", len(n.items))
		}
		buf[0] = kindLeaf
		binary.LittleEndian.PutUint16(buf[1:3], uint16(len(n.items)))
		off := headerSize
		for _, it := range n.items {
			binary.LittleEndian.PutUint64(buf[off:], uint64(it.ID))
			binary.LittleEndian.PutUint64(buf[off+8:], math.Float64bits(it.Pt.X))
			binary.LittleEndian.PutUint64(buf[off+16:], math.Float64bits(it.Pt.Y))
			off += leafEntrySize
		}
		return buf, nil
	}
	if len(n.childs) > DirCapacity(pageSize) {
		return nil, fmt.Errorf("rtree: directory overflow: %d entries", len(n.childs))
	}
	buf[0] = kindDir
	binary.LittleEndian.PutUint16(buf[1:3], uint16(len(n.childs)))
	off := headerSize
	for _, c := range n.childs {
		binary.LittleEndian.PutUint32(buf[off:], uint32(c.child))
		binary.LittleEndian.PutUint32(buf[off+4:], uint32(c.count))
		binary.LittleEndian.PutUint64(buf[off+8:], math.Float64bits(c.mbr.Min.X))
		binary.LittleEndian.PutUint64(buf[off+16:], math.Float64bits(c.mbr.Min.Y))
		binary.LittleEndian.PutUint64(buf[off+24:], math.Float64bits(c.mbr.Max.X))
		binary.LittleEndian.PutUint64(buf[off+32:], math.Float64bits(c.mbr.Max.Y))
		off += dirEntrySize
	}
	return buf, nil
}

func decodeNode(id storage.PageID, buf []byte) (*node, error) {
	if len(buf) < headerSize {
		return nil, fmt.Errorf("rtree: page %d too small to decode", id)
	}
	n := &node{id: id}
	count := int(binary.LittleEndian.Uint16(buf[1:3]))
	switch buf[0] {
	case kindLeaf:
		n.leaf = true
		if headerSize+count*leafEntrySize > len(buf) {
			return nil, fmt.Errorf("rtree: corrupt leaf page %d: count %d", id, count)
		}
		n.items = make([]Item, count)
		off := headerSize
		for i := 0; i < count; i++ {
			n.items[i] = Item{
				ID: int64(binary.LittleEndian.Uint64(buf[off:])),
				Pt: geo.Point{
					X: math.Float64frombits(binary.LittleEndian.Uint64(buf[off+8:])),
					Y: math.Float64frombits(binary.LittleEndian.Uint64(buf[off+16:])),
				},
			}
			off += leafEntrySize
		}
	case kindDir:
		if headerSize+count*dirEntrySize > len(buf) {
			return nil, fmt.Errorf("rtree: corrupt directory page %d: count %d", id, count)
		}
		n.childs = make([]dirEntry, count)
		off := headerSize
		for i := 0; i < count; i++ {
			n.childs[i] = dirEntry{
				child: storage.PageID(binary.LittleEndian.Uint32(buf[off:])),
				count: int(binary.LittleEndian.Uint32(buf[off+4:])),
				mbr: geo.Rect{
					Min: geo.Point{
						X: math.Float64frombits(binary.LittleEndian.Uint64(buf[off+8:])),
						Y: math.Float64frombits(binary.LittleEndian.Uint64(buf[off+16:])),
					},
					Max: geo.Point{
						X: math.Float64frombits(binary.LittleEndian.Uint64(buf[off+24:])),
						Y: math.Float64frombits(binary.LittleEndian.Uint64(buf[off+32:])),
					},
				},
			}
			off += dirEntrySize
		}
	default:
		return nil, fmt.Errorf("rtree: page %d has unknown kind %d", id, buf[0])
	}
	return n, nil
}
