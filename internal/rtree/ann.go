package rtree

import (
	"repro/internal/geo"
	"repro/internal/hilbert"
	"repro/internal/pqueue"
)

// NNSource produces, for each of a fixed set of query points, its nearest
// neighbors one at a time in ascending distance order. It abstracts the
// two ways the CCA algorithms fetch candidate edges from the R-tree:
// independent per-provider NN iterators, or the shared-I/O incremental
// all-nearest-neighbor search of §3.4.2.
type NNSource interface {
	// Next returns query point qi's next nearest neighbor.
	// ok is false when P is exhausted for qi.
	Next(qi int) (item Item, dist float64, ok bool, err error)
}

// PerQueryNN is the straightforward NNSource: one independent best-first
// iterator per query point. Simple, but nearby query points re-read the
// same pages, inflating I/O. Used as the ablation baseline for ANN.
type PerQueryNN struct {
	iters []*NNIterator
}

// NewPerQueryNN builds independent NN iterators over t for each query.
func NewPerQueryNN(t *Tree, queries []geo.Point) *PerQueryNN {
	s := &PerQueryNN{iters: make([]*NNIterator, len(queries))}
	for i, q := range queries {
		s.iters[i] = t.NewNNIterator(q)
	}
	return s
}

// Next implements NNSource.
func (s *PerQueryNN) Next(qi int) (Item, float64, bool, error) {
	it, d, ok := s.iters[qi].Next()
	return it, d, ok, s.iters[qi].Err()
}

// DefaultANNGroupSize is the number of Hilbert-consecutive query points
// that share one R-tree traversal in the grouped ANN search.
const DefaultANNGroupSize = 8

// ANNSearch implements the incremental all-nearest-neighbor search of
// §3.4.2: query points are grouped by Hilbert order; each group Gm owns a
// single heap Hm of R-tree entries keyed by mindist(MBR(Gm), MBR(e)), and
// every member qi keeps a candidate heap res_i of points keyed by
// dist(qi, p). A candidate is reported as qi's next NN once it is at
// least as close as every unexplored entry could be. Members share every
// page read, cutting the I/O cost relative to PerQueryNN.
type ANNSearch struct {
	t       *Tree
	queries []geo.Point
	groups  []*annGroup
	byQuery []*annGroup
	res     []pqueue.Heap[Item] // candidate heap per query point
}

type annGroup struct {
	mbr     geo.Rect
	members []int
	heap    pqueue.Heap[nnEntry] // Hm
}

// NewANNSearch builds the grouped searcher. groupSize <= 0 selects
// DefaultANNGroupSize. space is the data space used for Hilbert ordering.
func NewANNSearch(t *Tree, queries []geo.Point, space geo.Rect, groupSize int) *ANNSearch {
	if groupSize <= 0 {
		groupSize = DefaultANNGroupSize
	}
	s := &ANNSearch{
		t:       t,
		queries: queries,
		byQuery: make([]*annGroup, len(queries)),
		res:     make([]pqueue.Heap[Item], len(queries)),
	}
	order := hilbert.SortByKey(queries, space)
	for start := 0; start < len(order); start += groupSize {
		end := start + groupSize
		if end > len(order) {
			end = len(order)
		}
		g := &annGroup{mbr: geo.EmptyRect()}
		for _, qi := range order[start:end] {
			g.members = append(g.members, qi)
			g.mbr = g.mbr.ExtendPoint(queries[qi])
			s.byQuery[qi] = g
		}
		if t.Size() > 0 {
			g.heap.Push(nnEntry{page: t.root}, 0)
		}
		s.groups = append(s.groups, g)
	}
	return s
}

// Next implements NNSource (Algorithm 6 of the paper).
func (s *ANNSearch) Next(qi int) (Item, float64, bool, error) {
	g := s.byQuery[qi]
	res := &s.res[qi]
	for {
		top := res.Peek()
		htop := g.heap.Peek()
		if top != nil && (htop == nil || top.Key() <= htop.Key()) {
			// No unexplored entry can contain anything closer to qi.
			it := res.Pop()
			return it.Value, it.Key(), true, nil
		}
		if htop == nil {
			// Tree exhausted for this group.
			return Item{}, 0, false, nil
		}
		if err := s.expand(g); err != nil {
			return Item{}, 0, false, err
		}
	}
}

// expand pops the closest R-tree entry from the group heap. Directory
// entries are replaced by their children; leaf pages feed every member's
// candidate heap.
func (s *ANNSearch) expand(g *annGroup) error {
	e := g.heap.Pop().Value
	n, err := s.t.readNode(e.page)
	if err != nil {
		return err
	}
	if n.leaf {
		for _, item := range n.items {
			for _, qk := range g.members {
				s.res[qk].Push(item, s.queries[qk].Dist(item.Pt))
			}
		}
		return nil
	}
	for _, c := range n.childs {
		g.heap.Push(nnEntry{page: c.child}, g.mbr.MinDistRect(c.mbr))
	}
	return nil
}

// ensure interface compliance
var (
	_ NNSource = (*PerQueryNN)(nil)
	_ NNSource = (*ANNSearch)(nil)
)
