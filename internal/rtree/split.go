package rtree

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/geo"
	"repro/internal/storage"
)

func sortItemsByX(items []Item) {
	sort.Slice(items, func(i, j int) bool { return items[i].Pt.X < items[j].Pt.X })
}

func sortItemsByY(items []Item) {
	sort.Slice(items, func(i, j int) bool { return items[i].Pt.Y < items[j].Pt.Y })
}

func sortEntriesByX(es []dirEntry) {
	sort.Slice(es, func(i, j int) bool { return es[i].mbr.Center().X < es[j].mbr.Center().X })
}

func sortEntriesByY(es []dirEntry) {
	sort.Slice(es, func(i, j int) bool { return es[i].mbr.Center().Y < es[j].mbr.Center().Y })
}

// This file implements Guttman's quadratic split for leaves and
// directory nodes, and STR (sort-tile-recursive) bulk loading.

// splitLeaf distributes an overflowing leaf's items over the old page and
// a freshly allocated sibling, and returns both entries.
func (t *Tree) splitLeaf(n *node) (dirEntry, *dirEntry, error) {
	rects := make([]geo.Rect, len(n.items))
	for i, it := range n.items {
		rects[i] = geo.RectFromPoint(it.Pt)
	}
	left, right := t.splitIndexes(rects, minFill(t.leafCap))
	sibID, err := t.buf.Alloc()
	if err != nil {
		return dirEntry{}, nil, err
	}
	a := &node{id: n.id, leaf: true}
	b := &node{id: sibID, leaf: true}
	for _, i := range left {
		a.items = append(a.items, n.items[i])
	}
	for _, i := range right {
		b.items = append(b.items, n.items[i])
	}
	if err := t.writeNode(a); err != nil {
		return dirEntry{}, nil, err
	}
	if err := t.writeNode(b); err != nil {
		return dirEntry{}, nil, err
	}
	ea := dirEntry{child: a.id, count: len(a.items), mbr: a.mbr()}
	eb := dirEntry{child: b.id, count: len(b.items), mbr: b.mbr()}
	return ea, &eb, nil
}

// splitDir is the directory-node analogue of splitLeaf.
func (t *Tree) splitDir(n *node) (dirEntry, *dirEntry, error) {
	rects := make([]geo.Rect, len(n.childs))
	for i, c := range n.childs {
		rects[i] = c.mbr
	}
	left, right := t.splitIndexes(rects, minFill(t.dirCap))
	sibID, err := t.buf.Alloc()
	if err != nil {
		return dirEntry{}, nil, err
	}
	a := &node{id: n.id}
	b := &node{id: sibID}
	for _, i := range left {
		a.childs = append(a.childs, n.childs[i])
	}
	for _, i := range right {
		b.childs = append(b.childs, n.childs[i])
	}
	if err := t.writeNode(a); err != nil {
		return dirEntry{}, nil, err
	}
	if err := t.writeNode(b); err != nil {
		return dirEntry{}, nil, err
	}
	ea := dirEntry{child: a.id, count: a.subtreeCount(), mbr: a.mbr()}
	eb := dirEntry{child: b.id, count: b.subtreeCount(), mbr: b.mbr()}
	return ea, &eb, nil
}

func minFill(capacity int) int {
	m := int(MinFillRatio * float64(capacity))
	if m < 1 {
		m = 1
	}
	return m
}

// quadraticSplit partitions indexes 0..len(rects)-1 into two groups using
// Guttman's quadratic seeds + greedy assignment, honoring the min-fill
// constraint.
func quadraticSplit(rects []geo.Rect, minEntries int) (left, right []int) {
	n := len(rects)
	// Seeds: the pair wasting the most area if grouped together.
	s1, s2, worst := 0, 1, math.Inf(-1)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			waste := rects[i].Union(rects[j]).Area() - rects[i].Area() - rects[j].Area()
			if waste > worst {
				worst, s1, s2 = waste, i, j
			}
		}
	}
	left = append(left, s1)
	right = append(right, s2)
	lMBR, rMBR := rects[s1], rects[s2]
	assigned := make([]bool, n)
	assigned[s1], assigned[s2] = true, true
	remaining := n - 2
	for remaining > 0 {
		// Min-fill guard: if one side must take everything left, do so.
		if len(left)+remaining == minEntries {
			for i := 0; i < n; i++ {
				if !assigned[i] {
					left = append(left, i)
					lMBR = lMBR.Union(rects[i])
					assigned[i] = true
				}
			}
			return left, right
		}
		if len(right)+remaining == minEntries {
			for i := 0; i < n; i++ {
				if !assigned[i] {
					right = append(right, i)
					rMBR = rMBR.Union(rects[i])
					assigned[i] = true
				}
			}
			return left, right
		}
		// PickNext: the entry with the greatest preference for one group.
		next, bestDiff := -1, math.Inf(-1)
		var nextToLeft bool
		for i := 0; i < n; i++ {
			if assigned[i] {
				continue
			}
			dl := lMBR.Enlargement(rects[i])
			dr := rMBR.Enlargement(rects[i])
			diff := math.Abs(dl - dr)
			if diff > bestDiff {
				bestDiff = diff
				next = i
				nextToLeft = dl < dr ||
					(dl == dr && lMBR.Area() < rMBR.Area()) ||
					(dl == dr && lMBR.Area() == rMBR.Area() && len(left) < len(right))
			}
		}
		assigned[next] = true
		remaining--
		if nextToLeft {
			left = append(left, next)
			lMBR = lMBR.Union(rects[next])
		} else {
			right = append(right, next)
			rMBR = rMBR.Union(rects[next])
		}
	}
	return left, right
}

// Bulk builds a tree from items using sort-tile-recursive (STR) packing:
// items are sorted by x, cut into vertical slices, each slice sorted by y
// and packed into full leaves; directory levels are packed the same way
// over child centers. STR yields near-100% page utilization and square
// node MBRs, matching how the paper's datasets would be indexed.
func Bulk(buf *storage.Buffer, items []Item) (*Tree, error) {
	if len(items) == 0 {
		return New(buf)
	}
	t := &Tree{
		buf:     buf,
		leafCap: LeafCapacity(buf.Store().PageSize()),
		dirCap:  DirCapacity(buf.Store().PageSize()),
	}
	if t.leafCap < 2 || t.dirCap < 2 {
		return nil, fmt.Errorf("rtree: page size %d too small", buf.Store().PageSize())
	}
	if _, err := buf.Alloc(); err != nil { // meta page
		return nil, err
	}
	entries, err := t.packLeaves(items)
	if err != nil {
		return nil, err
	}
	height := 1
	// Pack directory levels until a single root remains.
	for len(entries) > 1 {
		entries, err = t.packDir(entries)
		if err != nil {
			return nil, err
		}
		height++
	}
	t.root = entries[0].child
	t.height = height
	t.size = len(items)
	return t, nil
}

func (t *Tree) packLeaves(items []Item) ([]dirEntry, error) {
	sorted := make([]Item, len(items))
	copy(sorted, items)
	sortItemsByX(sorted)
	cap := t.leafCap
	nLeaves := (len(sorted) + cap - 1) / cap
	nSlices := int(math.Ceil(math.Sqrt(float64(nLeaves))))
	sliceSize := nSlices * cap

	var entries []dirEntry
	for s := 0; s < len(sorted); s += sliceSize {
		end := s + sliceSize
		if end > len(sorted) {
			end = len(sorted)
		}
		slice := sorted[s:end]
		sortItemsByY(slice)
		for o := 0; o < len(slice); o += cap {
			oe := o + cap
			if oe > len(slice) {
				oe = len(slice)
			}
			id, err := t.buf.Alloc()
			if err != nil {
				return nil, err
			}
			n := &node{id: id, leaf: true, items: slice[o:oe]}
			if err := t.writeNode(n); err != nil {
				return nil, err
			}
			entries = append(entries, dirEntry{child: id, count: len(n.items), mbr: n.mbr()})
		}
	}
	return entries, nil
}

func (t *Tree) packDir(children []dirEntry) ([]dirEntry, error) {
	sorted := make([]dirEntry, len(children))
	copy(sorted, children)
	sortEntriesByX(sorted)
	cap := t.dirCap
	nNodes := (len(sorted) + cap - 1) / cap
	nSlices := int(math.Ceil(math.Sqrt(float64(nNodes))))
	sliceSize := nSlices * cap

	var entries []dirEntry
	for s := 0; s < len(sorted); s += sliceSize {
		end := s + sliceSize
		if end > len(sorted) {
			end = len(sorted)
		}
		slice := sorted[s:end]
		sortEntriesByY(slice)
		for o := 0; o < len(slice); o += cap {
			oe := o + cap
			if oe > len(slice) {
				oe = len(slice)
			}
			id, err := t.buf.Alloc()
			if err != nil {
				return nil, err
			}
			n := &node{id: id, childs: slice[o:oe]}
			if err := t.writeNode(n); err != nil {
				return nil, err
			}
			entries = append(entries, dirEntry{child: id, count: n.subtreeCount(), mbr: n.mbr()})
		}
	}
	return entries, nil
}
