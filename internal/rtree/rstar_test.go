package rtree

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geo"
	"repro/internal/storage"
)

func rstarTree(t *testing.T, pageSize int) *Tree {
	t.Helper()
	tr, err := NewWithPolicy(storage.NewBuffer(storage.NewMemStore(pageSize), 1<<20), RStar)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestRStarInsertInvariants(t *testing.T) {
	tr := rstarTree(t, 256)
	items := randItems(1200, 201)
	for _, it := range items {
		if err := tr.Insert(it); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Size() != 1200 {
		t.Fatalf("Size = %d", tr.Size())
	}
	if _, err := tr.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	all, err := tr.All()
	if err != nil || len(all) != 1200 {
		t.Fatalf("All: %d items, %v", len(all), err)
	}
}

func TestRStarQueriesMatchBruteForce(t *testing.T) {
	tr := rstarTree(t, 512)
	items := randItems(1500, 203)
	for _, it := range items {
		if err := tr.Insert(it); err != nil {
			t.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(204))
	for trial := 0; trial < 10; trial++ {
		center := geo.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}
		r := 30 + rng.Float64()*150
		got, err := tr.RangeSearch(center, r)
		if err != nil {
			t.Fatal(err)
		}
		var want []int64
		for _, it := range items {
			if center.Dist(it.Pt) <= r {
				want = append(want, it.ID)
			}
		}
		if !sameIDs(got, want) {
			t.Fatalf("trial %d: R* range mismatch: %d vs %d", trial, len(got), len(want))
		}
	}
}

func TestRStarDeleteWorks(t *testing.T) {
	tr := rstarTree(t, 256)
	items := randItems(500, 207)
	for _, it := range items {
		tr.Insert(it)
	}
	for _, it := range items[:250] {
		ok, err := tr.Delete(it)
		if err != nil || !ok {
			t.Fatalf("delete %d: %v %v", it.ID, ok, err)
		}
	}
	if tr.Size() != 250 {
		t.Fatalf("Size = %d", tr.Size())
	}
	if _, err := tr.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

// Property: R* split always respects min-fill and partitions the input.
func TestRStarSplitPartition(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(30)
		rects := make([]geo.Rect, n)
		for i := range rects {
			p := geo.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}
			q := geo.Point{X: p.X + rng.Float64()*10, Y: p.Y + rng.Float64()*10}
			rects[i] = geo.Rect{Min: p, Max: q}
		}
		minEntries := 2 + rng.Intn(n/3)
		left, right := rstarSplit(rects, minEntries)
		if len(left) < minEntries || len(right) < minEntries {
			return false
		}
		seen := make([]bool, n)
		for _, i := range append(append([]int{}, left...), right...) {
			if i < 0 || i >= n || seen[i] {
				return false
			}
			seen[i] = true
		}
		return len(left)+len(right) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// On clustered data, R*-built trees should have lower directory overlap
// than quadratic-built ones, which translates into fewer pages touched
// by range queries. (Statistical, with a generous margin.)
func TestRStarImprovesRangeIO(t *testing.T) {
	rng := rand.New(rand.NewSource(209))
	items := make([]Item, 4000)
	for i := range items {
		cx := float64(rng.Intn(5)) * 200
		cy := float64(rng.Intn(5)) * 200
		items[i] = Item{ID: int64(i), Pt: geo.Point{
			X: cx + rng.Float64()*120,
			Y: cy + rng.Float64()*120,
		}}
	}
	run := func(policy SplitPolicy) int {
		buf := storage.NewBuffer(storage.NewMemStore(1024), 1<<20)
		tr, err := NewWithPolicy(buf, policy)
		if err != nil {
			t.Fatal(err)
		}
		for _, it := range items {
			if err := tr.Insert(it); err != nil {
				t.Fatal(err)
			}
		}
		buf.DropCache()
		buf.ResetStats()
		for trial := 0; trial < 50; trial++ {
			center := geo.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}
			if _, err := tr.RangeSearch(center, 60); err != nil {
				t.Fatal(err)
			}
		}
		return buf.Stats().LogicalReads()
	}
	quad := run(Quadratic)
	rstar := run(RStar)
	t.Logf("range-query page reads: quadratic=%d R*=%d", quad, rstar)
	if float64(rstar) > 1.15*float64(quad) {
		t.Fatalf("R* reads %d pages vs quadratic %d — should not be clearly worse", rstar, quad)
	}
}

func TestKNN(t *testing.T) {
	items := randItems(800, 211)
	tr := bulkTree(t, items)
	q := geo.Point{X: 400, Y: 600}
	got, err := tr.KNN(q, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("KNN returned %d", len(got))
	}
	// Verify against brute force.
	best := append([]Item(nil), items...)
	for i := 0; i < 10; i++ {
		min := i
		for j := i + 1; j < len(best); j++ {
			if q.Dist(best[j].Pt) < q.Dist(best[min].Pt) {
				min = j
			}
		}
		best[i], best[min] = best[min], best[i]
		if got[i].ID != best[i].ID {
			// Ties can permute; compare distances instead.
			if d1, d2 := q.Dist(got[i].Pt), q.Dist(best[i].Pt); d1 != d2 {
				t.Fatalf("rank %d: got dist %v want %v", i, d1, d2)
			}
		}
	}
	// k larger than the tree returns everything.
	all, err := tr.KNN(q, 10000)
	if err != nil || len(all) != 800 {
		t.Fatalf("oversized k: %d items, %v", len(all), err)
	}
	// k=0 returns nothing.
	none, err := tr.KNN(q, 0)
	if err != nil || len(none) != 0 {
		t.Fatalf("k=0: %v %v", none, err)
	}
}

func TestSplitPolicyString(t *testing.T) {
	if Quadratic.String() != "quadratic" || RStar.String() != "R*" {
		t.Fatal("policy names changed")
	}
}
