package rtree

import (
	"repro/internal/geo"
	"repro/internal/pqueue"
)

// RefinedNN adapts an NNSource that reports candidates in ascending
// *Euclidean* order into one that reports them in ascending order of an
// arbitrary metric, provided the metric lower-bounds to Euclidean
// distance (metric.Dist(p,q) >= p.Dist(q), the geo.Metric contract for
// non-Euclidean backends — e.g. road-network shortest-path distance).
//
// It is the filter-and-refine step of spatial query processing: the base
// source streams candidates keyed by the cheap lower bound; each lands
// on a per-query refinement heap keyed by the best cheap lower bound
// available — the metric's geo.LowerBounder when it implements one
// (the network metric's ALT landmark bound), the Euclidean distance
// otherwise. The true metric distance is computed lazily, only when a
// candidate surfaces at the top of the heap; a candidate is emitted once
// its true distance is no greater than the lower bound of every
// candidate the base source has not yet produced (the Euclidean key of
// the most recent base candidate) and of everything still on the heap.
// Tight bounds therefore shrink both the refinement frontier and the
// number of exact Dist evaluations.
//
// Wrapping the shared ANN search (§3.4.2) preserves its I/O sharing: the
// refinement heaps sit on top of whatever page traversal the base does.
type RefinedNN struct {
	base      NNSource
	queries   []geo.Point
	metric    geo.Metric
	lb        func(p, q geo.Point) float64
	res       []pqueue.Heap[refEntry] // refinement heap per query
	lastLB    []float64               // last lower bound the base reported per query
	exhausted []bool
}

// refEntry is one refinement-heap candidate: exact marks whether its
// key is the true metric distance or still a lower bound.
type refEntry struct {
	item  Item
	exact bool
}

// NewRefinedNN wraps base, re-keying its stream by metric distance. base
// must yield each query's candidates in ascending Euclidean order (both
// PerQueryNN and ANNSearch do), and metric must satisfy the lower-bound
// contract; otherwise the emitted order is undefined.
func NewRefinedNN(base NNSource, queries []geo.Point, metric geo.Metric) *RefinedNN {
	return &RefinedNN{
		base:      base,
		queries:   queries,
		metric:    metric,
		lb:        geo.LowerBoundOf(metric),
		res:       make([]pqueue.Heap[refEntry], len(queries)),
		lastLB:    make([]float64, len(queries)),
		exhausted: make([]bool, len(queries)),
	}
}

// Next implements NNSource: query qi's next neighbor in ascending metric
// distance, with the true (metric) distance returned.
func (s *RefinedNN) Next(qi int) (Item, float64, bool, error) {
	h := &s.res[qi]
	for {
		if top := h.Peek(); top != nil && (s.exhausted[qi] || top.Key() <= s.lastLB[qi]) {
			// Every unseen candidate has metric distance >= its Euclidean
			// distance >= lastLB, and every heap key underestimates its
			// candidate's true distance — so once top's key is exact and
			// within the bound, top is final.
			if top.Value.exact {
				it := h.Pop()
				return it.Value.item, it.Key(), true, nil
			}
			// Resolve the surfacing candidate to its true distance in
			// place; it re-seats and may lose the top to a candidate
			// with a smaller bound.
			top.Value.exact = true
			h.Update(top, s.metric.Dist(s.queries[qi], top.Value.item.Pt))
			continue
		}
		if s.exhausted[qi] {
			return Item{}, 0, false, nil
		}
		item, lb, ok, err := s.base.Next(qi)
		if err != nil {
			return Item{}, 0, false, err
		}
		if !ok {
			s.exhausted[qi] = true
			continue
		}
		s.lastLB[qi] = lb
		h.Push(refEntry{item: item}, s.lb(s.queries[qi], item.Pt))
	}
}

// ensure interface compliance
var _ NNSource = (*RefinedNN)(nil)
