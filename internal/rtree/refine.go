package rtree

import (
	"repro/internal/geo"
	"repro/internal/pqueue"
)

// RefinedNN adapts an NNSource that reports candidates in ascending
// *Euclidean* order into one that reports them in ascending order of an
// arbitrary metric, provided the metric lower-bounds to Euclidean
// distance (metric.Dist(p,q) >= p.Dist(q), the geo.Metric contract for
// non-Euclidean backends — e.g. road-network shortest-path distance).
//
// It is the filter-and-refine step of spatial query processing: the base
// source streams candidates keyed by the cheap lower bound; each is
// re-keyed by its true metric distance on a per-query refinement heap;
// a candidate is emitted once its true distance is no greater than the
// lower bound of every candidate the base source has not yet produced.
// Because the base emits in ascending Euclidean order, that bound is
// simply the Euclidean key of the most recent candidate.
//
// Wrapping the shared ANN search (§3.4.2) preserves its I/O sharing: the
// refinement heaps sit on top of whatever page traversal the base does.
type RefinedNN struct {
	base      NNSource
	queries   []geo.Point
	metric    geo.Metric
	res       []pqueue.Heap[Item] // refinement heap per query, keyed by true distance
	lastLB    []float64           // last lower bound the base reported per query
	exhausted []bool
}

// NewRefinedNN wraps base, re-keying its stream by metric distance. base
// must yield each query's candidates in ascending Euclidean order (both
// PerQueryNN and ANNSearch do), and metric must satisfy the lower-bound
// contract; otherwise the emitted order is undefined.
func NewRefinedNN(base NNSource, queries []geo.Point, metric geo.Metric) *RefinedNN {
	return &RefinedNN{
		base:      base,
		queries:   queries,
		metric:    metric,
		res:       make([]pqueue.Heap[Item], len(queries)),
		lastLB:    make([]float64, len(queries)),
		exhausted: make([]bool, len(queries)),
	}
}

// Next implements NNSource: query qi's next neighbor in ascending metric
// distance, with the true (metric) distance returned.
func (s *RefinedNN) Next(qi int) (Item, float64, bool, error) {
	h := &s.res[qi]
	for {
		if top := h.Peek(); top != nil && (s.exhausted[qi] || top.Key() <= s.lastLB[qi]) {
			// Every unseen candidate has metric distance >= its Euclidean
			// distance >= lastLB >= top's true distance: top is final.
			it := h.Pop()
			return it.Value, it.Key(), true, nil
		}
		if s.exhausted[qi] {
			return Item{}, 0, false, nil
		}
		item, lb, ok, err := s.base.Next(qi)
		if err != nil {
			return Item{}, 0, false, err
		}
		if !ok {
			s.exhausted[qi] = true
			continue
		}
		s.lastLB[qi] = lb
		h.Push(item, s.metric.Dist(s.queries[qi], item.Pt))
	}
}

// ensure interface compliance
var _ NNSource = (*RefinedNN)(nil)
