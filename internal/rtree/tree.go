package rtree

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"repro/internal/geo"
	"repro/internal/storage"
)

// MinFillRatio is the minimum node occupancy after deletions; nodes that
// underflow are dissolved and their entries reinserted.
const MinFillRatio = 0.4

// Tree is a paged R-tree of points. Page 0 of the underlying store is a
// metadata page; tree nodes occupy the remaining pages. All node reads go
// through the LRU buffer so that I/O statistics reflect the access
// pattern.
type Tree struct {
	buf     *storage.Buffer
	root    storage.PageID
	height  int // 1 = root is a leaf
	size    int
	leafCap int
	dirCap  int
	policy  SplitPolicy // dynamic-insert heuristics (Quadratic default)
}

const metaMagic = 0x52545245 // "RTRE"

// New creates an empty tree on buf's store. The store must be fresh
// (page 0 and onward unallocated).
func New(buf *storage.Buffer) (*Tree, error) {
	t := &Tree{
		buf:     buf,
		leafCap: LeafCapacity(buf.Store().PageSize()),
		dirCap:  DirCapacity(buf.Store().PageSize()),
	}
	if t.leafCap < 2 || t.dirCap < 2 {
		return nil, fmt.Errorf("rtree: page size %d too small", buf.Store().PageSize())
	}
	if _, err := buf.Alloc(); err != nil { // meta page
		return nil, err
	}
	rootID, err := buf.Alloc()
	if err != nil {
		return nil, err
	}
	t.root = rootID
	t.height = 1
	if err := t.writeNode(&node{id: rootID, leaf: true}); err != nil {
		return nil, err
	}
	return t, nil
}

// Open loads a tree previously persisted with Flush from buf's store.
func Open(buf *storage.Buffer) (*Tree, error) {
	data, err := buf.Read(0)
	if err != nil {
		return nil, fmt.Errorf("rtree: read meta page: %w", err)
	}
	if binary.LittleEndian.Uint32(data[0:4]) != metaMagic {
		return nil, errors.New("rtree: store does not contain an R-tree")
	}
	t := &Tree{
		buf:     buf,
		root:    storage.PageID(binary.LittleEndian.Uint32(data[4:8])),
		height:  int(binary.LittleEndian.Uint32(data[8:12])),
		size:    int(binary.LittleEndian.Uint64(data[12:20])),
		leafCap: LeafCapacity(buf.Store().PageSize()),
		dirCap:  DirCapacity(buf.Store().PageSize()),
	}
	return t, nil
}

// Flush persists the tree metadata so the store can be reopened later.
func (t *Tree) Flush() error {
	data := make([]byte, 20)
	binary.LittleEndian.PutUint32(data[0:4], metaMagic)
	binary.LittleEndian.PutUint32(data[4:8], uint32(t.root))
	binary.LittleEndian.PutUint32(data[8:12], uint32(t.height))
	binary.LittleEndian.PutUint64(data[12:20], uint64(t.size))
	return t.buf.Write(0, data)
}

// Size returns the number of indexed points.
func (t *Tree) Size() int { return t.size }

// Height returns the tree height (1 when the root is a leaf).
func (t *Tree) Height() int { return t.height }

// Buffer returns the tree's buffer manager (for I/O statistics).
func (t *Tree) Buffer() *storage.Buffer { return t.buf }

// PageCount returns the number of pages in the underlying store,
// including the metadata page.
func (t *Tree) PageCount() int { return t.buf.Store().NumPages() }

func (t *Tree) readNode(id storage.PageID) (*node, error) {
	data, err := t.buf.Read(id)
	if err != nil {
		return nil, err
	}
	return decodeNode(id, data)
}

func (t *Tree) writeNode(n *node) error {
	data, err := encodeNode(n, t.buf.Store().PageSize())
	if err != nil {
		return err
	}
	return t.buf.Write(n.id, data)
}

// Insert adds item to the tree.
func (t *Tree) Insert(item Item) error {
	self, sib, err := t.insert(t.root, item, t.height)
	if err != nil {
		return err
	}
	if sib != nil {
		if err := t.growRoot(self, *sib); err != nil {
			return err
		}
	}
	t.size++
	return nil
}

// growRoot replaces the root with a new directory node over two entries.
func (t *Tree) growRoot(a, b dirEntry) error {
	id, err := t.buf.Alloc()
	if err != nil {
		return err
	}
	root := &node{id: id, childs: []dirEntry{a, b}}
	if err := t.writeNode(root); err != nil {
		return err
	}
	t.root = id
	t.height++
	return nil
}

// insert descends to a leaf, adds the item and splits on overflow.
// It returns the (updated) entry describing the visited node and, when a
// split occurred, the entry of the new sibling.
func (t *Tree) insert(id storage.PageID, item Item, level int) (dirEntry, *dirEntry, error) {
	n, err := t.readNode(id)
	if err != nil {
		return dirEntry{}, nil, err
	}
	if level == 1 {
		if !n.leaf {
			return dirEntry{}, nil, fmt.Errorf("rtree: expected leaf at page %d", id)
		}
		n.items = append(n.items, item)
		if len(n.items) <= t.leafCap {
			if err := t.writeNode(n); err != nil {
				return dirEntry{}, nil, err
			}
			return dirEntry{child: n.id, count: len(n.items), mbr: n.mbr()}, nil, nil
		}
		return t.splitLeaf(n)
	}
	if n.leaf {
		return dirEntry{}, nil, fmt.Errorf("rtree: unexpected leaf at level %d (page %d)", level, id)
	}
	var best int
	if t.policy == RStar {
		best = t.chooseSubtreeRStar(n, item.Pt, level == 2)
	} else {
		best = t.chooseSubtree(n, item.Pt)
	}
	self, sib, err := t.insert(n.childs[best].child, item, level-1)
	if err != nil {
		return dirEntry{}, nil, err
	}
	n.childs[best] = self
	if sib != nil {
		n.childs = append(n.childs, *sib)
	}
	if len(n.childs) <= t.dirCap {
		if err := t.writeNode(n); err != nil {
			return dirEntry{}, nil, err
		}
		return dirEntry{child: n.id, count: n.subtreeCount(), mbr: n.mbr()}, nil, nil
	}
	return t.splitDir(n)
}

// chooseSubtree picks the child whose MBR needs the least enlargement to
// cover p (ties by smaller area), per Guttman's ChooseLeaf.
func (t *Tree) chooseSubtree(n *node, p geo.Point) int {
	best := 0
	bestEnl := math.Inf(1)
	bestArea := math.Inf(1)
	for i, c := range n.childs {
		enl := c.mbr.Enlargement(geo.RectFromPoint(p))
		area := c.mbr.Area()
		if enl < bestEnl || (enl == bestEnl && area < bestArea) {
			best, bestEnl, bestArea = i, enl, area
		}
	}
	return best
}
