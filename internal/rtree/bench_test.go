package rtree

import (
	"math/rand"
	"testing"

	"repro/internal/geo"
	"repro/internal/storage"
)

func benchItems(n int) []Item {
	rng := rand.New(rand.NewSource(99))
	items := make([]Item, n)
	for i := range items {
		items[i] = Item{ID: int64(i), Pt: geo.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}}
	}
	return items
}

func BenchmarkBulkLoad10K(b *testing.B) {
	items := benchItems(10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Bulk(storage.NewBuffer(storage.NewMemStore(1024), 1<<20), items); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInsert(b *testing.B) {
	tr, err := New(storage.NewBuffer(storage.NewMemStore(1024), 1<<20))
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it := Item{ID: int64(i), Pt: geo.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}}
		if err := tr.Insert(it); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRangeSearch(b *testing.B) {
	tr, err := Bulk(storage.NewBuffer(storage.NewMemStore(1024), 1<<20), benchItems(20000))
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		center := geo.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}
		if _, err := tr.RangeSearch(center, 50); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNNIterator100(b *testing.B) {
	tr, err := Bulk(storage.NewBuffer(storage.NewMemStore(1024), 1<<20), benchItems(20000))
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it := tr.NewNNIterator(geo.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000})
		for k := 0; k < 100; k++ {
			if _, _, ok := it.Next(); !ok {
				b.Fatal("iterator ended early")
			}
		}
	}
}

func BenchmarkANNSearch(b *testing.B) {
	tr, err := Bulk(storage.NewBuffer(storage.NewMemStore(1024), 1<<20), benchItems(20000))
	if err != nil {
		b.Fatal(err)
	}
	queries := randQueries(16, 6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := NewANNSearch(tr, queries, testSpace, 8)
		for qi := range queries {
			for k := 0; k < 50; k++ {
				if _, _, ok, err := src.Next(qi); err != nil || !ok {
					b.Fatal("ANN ended early")
				}
			}
		}
	}
}
