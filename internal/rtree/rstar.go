package rtree

import (
	"math"
	"sort"

	"repro/internal/geo"
	"repro/internal/storage"
)

// SplitPolicy selects the node split / subtree choice heuristics used by
// dynamic insertion. Bulk loading (STR) is unaffected.
type SplitPolicy int

const (
	// Quadratic is Guttman's quadratic split [6] with least-enlargement
	// subtree choice — the classical R-tree the paper references.
	Quadratic SplitPolicy = iota
	// RStar uses the R*-tree heuristics [2] the paper cites as the
	// common variant: margin-driven axis choice with overlap-minimal
	// distribution on splits, and overlap-enlargement subtree choice at
	// the leaf level. (Forced reinsertion is not implemented; the split
	// and choose-subtree heuristics provide most of the query-quality
	// benefit for point data.)
	RStar
)

// String implements fmt.Stringer.
func (p SplitPolicy) String() string {
	if p == RStar {
		return "R*"
	}
	return "quadratic"
}

// NewWithPolicy creates an empty tree whose dynamic inserts use the
// given split policy.
func NewWithPolicy(buf *storage.Buffer, policy SplitPolicy) (*Tree, error) {
	t, err := New(buf)
	if err != nil {
		return nil, err
	}
	t.policy = policy
	return t, nil
}

// chooseSubtreeRStar implements the R* ChooseSubtree: when the children
// are leaves, pick the entry whose overlap with its siblings grows the
// least (ties: least area enlargement, then smallest area); otherwise
// fall back to least enlargement.
func (t *Tree) chooseSubtreeRStar(n *node, p geo.Point, childrenAreLeaves bool) int {
	if !childrenAreLeaves {
		return t.chooseSubtree(n, p)
	}
	pr := geo.RectFromPoint(p)
	best := 0
	bestOverlap := math.Inf(1)
	bestEnl := math.Inf(1)
	bestArea := math.Inf(1)
	for i, c := range n.childs {
		grown := c.mbr.Union(pr)
		overlapDelta := 0.0
		for j, o := range n.childs {
			if j == i {
				continue
			}
			overlapDelta += intersectionArea(grown, o.mbr) - intersectionArea(c.mbr, o.mbr)
		}
		enl := c.mbr.Enlargement(pr)
		area := c.mbr.Area()
		if overlapDelta < bestOverlap ||
			(overlapDelta == bestOverlap && enl < bestEnl) ||
			(overlapDelta == bestOverlap && enl == bestEnl && area < bestArea) {
			best, bestOverlap, bestEnl, bestArea = i, overlapDelta, enl, area
		}
	}
	return best
}

func intersectionArea(a, b geo.Rect) float64 {
	if !a.Intersects(b) {
		return 0
	}
	w := math.Min(a.Max.X, b.Max.X) - math.Max(a.Min.X, b.Min.X)
	h := math.Min(a.Max.Y, b.Max.Y) - math.Max(a.Min.Y, b.Min.Y)
	return w * h
}

// rstarSplit implements the R* split: choose the axis with the minimum
// total margin over all candidate distributions, then the distribution
// on that axis with minimal overlap (ties: minimal total area).
func rstarSplit(rects []geo.Rect, minEntries int) (left, right []int) {
	n := len(rects)
	type distribution struct {
		order []int
		k     int // left group = order[:k]
	}
	axisCandidates := func(byMin, byMax func(i, j int) bool) []distribution {
		minOrder := make([]int, n)
		maxOrder := make([]int, n)
		for i := range minOrder {
			minOrder[i] = i
			maxOrder[i] = i
		}
		sort.SliceStable(minOrder, func(a, b int) bool { return byMin(minOrder[a], minOrder[b]) })
		sort.SliceStable(maxOrder, func(a, b int) bool { return byMax(maxOrder[a], maxOrder[b]) })
		var out []distribution
		for _, order := range [][]int{minOrder, maxOrder} {
			for k := minEntries; k <= n-minEntries; k++ {
				out = append(out, distribution{order: order, k: k})
			}
		}
		return out
	}
	groupMBRs := func(d distribution) (geo.Rect, geo.Rect) {
		l, r := geo.EmptyRect(), geo.EmptyRect()
		for i, idx := range d.order {
			if i < d.k {
				l = l.Union(rects[idx])
			} else {
				r = r.Union(rects[idx])
			}
		}
		return l, r
	}

	xCands := axisCandidates(
		func(i, j int) bool { return rects[i].Min.X < rects[j].Min.X },
		func(i, j int) bool { return rects[i].Max.X < rects[j].Max.X },
	)
	yCands := axisCandidates(
		func(i, j int) bool { return rects[i].Min.Y < rects[j].Min.Y },
		func(i, j int) bool { return rects[i].Max.Y < rects[j].Max.Y },
	)
	marginSum := func(cands []distribution) float64 {
		s := 0.0
		for _, d := range cands {
			l, r := groupMBRs(d)
			s += l.Perimeter() + r.Perimeter()
		}
		return s
	}
	cands := xCands
	if marginSum(yCands) < marginSum(xCands) {
		cands = yCands
	}

	bestOverlap := math.Inf(1)
	bestArea := math.Inf(1)
	var best distribution
	for _, d := range cands {
		l, r := groupMBRs(d)
		ov := intersectionArea(l, r)
		area := l.Area() + r.Area()
		if ov < bestOverlap || (ov == bestOverlap && area < bestArea) {
			bestOverlap, bestArea, best = ov, area, d
		}
	}
	left = append(left, best.order[:best.k]...)
	right = append(right, best.order[best.k:]...)
	return left, right
}

// splitIndexes dispatches on the tree's split policy.
func (t *Tree) splitIndexes(rects []geo.Rect, minEntries int) ([]int, []int) {
	if t.policy == RStar {
		return rstarSplit(rects, minEntries)
	}
	return quadraticSplit(rects, minEntries)
}

// KNN returns the k points of the tree closest to q in ascending
// distance order (fewer if the tree holds fewer points) — the K-nearest
// neighbor query of §2.3, evaluated with the best-first algorithm [7].
func (t *Tree) KNN(q geo.Point, k int) ([]Item, error) {
	it := t.NewNNIterator(q)
	out := make([]Item, 0, k)
	for len(out) < k {
		item, _, ok := it.Next()
		if !ok {
			break
		}
		out = append(out, item)
	}
	return out, it.Err()
}
