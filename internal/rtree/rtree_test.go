package rtree

import (
	"math"
	"math/rand"
	"path/filepath"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/geo"
	"repro/internal/storage"
)

func memTree(t *testing.T, pageSize, frames int) *Tree {
	t.Helper()
	tr, err := New(storage.NewBuffer(storage.NewMemStore(pageSize), frames))
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func randItems(n int, seed int64) []Item {
	rng := rand.New(rand.NewSource(seed))
	items := make([]Item, n)
	for i := range items {
		items[i] = Item{ID: int64(i), Pt: geo.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}}
	}
	return items
}

func bulkTree(t *testing.T, items []Item) *Tree {
	t.Helper()
	tr, err := Bulk(storage.NewBuffer(storage.NewMemStore(1024), 1024), items)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestCapacities(t *testing.T) {
	if got := LeafCapacity(1024); got != 42 {
		t.Errorf("LeafCapacity(1024) = %d want 42", got)
	}
	if got := DirCapacity(1024); got != 25 {
		t.Errorf("DirCapacity(1024) = %d want 25", got)
	}
}

func TestNodeEncodeDecodeRoundTrip(t *testing.T) {
	leaf := &node{id: 7, leaf: true, items: []Item{
		{ID: 42, Pt: geo.Point{X: 1.5, Y: -2.25}},
		{ID: -1, Pt: geo.Point{X: math.Pi, Y: math.E}},
	}}
	data, err := encodeNode(leaf, 1024)
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeNode(7, data)
	if err != nil {
		t.Fatal(err)
	}
	if !got.leaf || len(got.items) != 2 || got.items[0] != leaf.items[0] || got.items[1] != leaf.items[1] {
		t.Fatalf("leaf round trip mismatch: %+v", got)
	}

	dir := &node{id: 9, childs: []dirEntry{
		{child: 3, count: 17, mbr: geo.Rect{Min: geo.Point{X: 0, Y: 1}, Max: geo.Point{X: 2, Y: 3}}},
		{child: 5, count: 23, mbr: geo.Rect{Min: geo.Point{X: -4, Y: -5}, Max: geo.Point{X: 6, Y: 7}}},
	}}
	data, err = encodeNode(dir, 1024)
	if err != nil {
		t.Fatal(err)
	}
	got, err = decodeNode(9, data)
	if err != nil {
		t.Fatal(err)
	}
	if got.leaf || len(got.childs) != 2 || got.childs[0] != dir.childs[0] || got.childs[1] != dir.childs[1] {
		t.Fatalf("dir round trip mismatch: %+v", got)
	}
}

func TestDecodeCorruptPage(t *testing.T) {
	if _, err := decodeNode(0, []byte{}); err == nil {
		t.Error("short page must fail")
	}
	bad := make([]byte, 64)
	bad[0] = 9 // unknown kind
	if _, err := decodeNode(0, bad); err == nil {
		t.Error("unknown kind must fail")
	}
	overflow := make([]byte, 64)
	overflow[0] = kindLeaf
	overflow[1] = 0xff // count 255 cannot fit in 64 bytes
	if _, err := decodeNode(0, overflow); err == nil {
		t.Error("overflowing count must fail")
	}
}

func TestInsertAndAll(t *testing.T) {
	tr := memTree(t, 256, 1024)
	items := randItems(500, 1)
	for _, it := range items {
		if err := tr.Insert(it); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Size() != 500 {
		t.Fatalf("Size = %d", tr.Size())
	}
	if _, err := tr.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	got, err := tr.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 500 {
		t.Fatalf("All returned %d items", len(got))
	}
	seen := make(map[int64]bool)
	for _, it := range got {
		if seen[it.ID] {
			t.Fatalf("duplicate item %d", it.ID)
		}
		seen[it.ID] = true
	}
}

func TestBulkLoad(t *testing.T) {
	for _, n := range []int{0, 1, 42, 43, 1000, 5000} {
		items := randItems(n, int64(n))
		tr := bulkTree(t, items)
		if tr.Size() != n {
			t.Fatalf("n=%d: Size = %d", n, tr.Size())
		}
		if n > 0 {
			if _, err := tr.checkInvariants(); err != nil {
				t.Fatalf("n=%d: %v", n, err)
			}
		}
		got, err := tr.All()
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != n {
			t.Fatalf("n=%d: All returned %d", n, len(got))
		}
	}
}

func TestBulkHeight(t *testing.T) {
	// 5000 points at leaf cap 42 -> 120 leaves -> needs 2 directory
	// levels at dir cap 25 (120 > 25).
	tr := bulkTree(t, randItems(5000, 3))
	if tr.Height() != 3 {
		t.Fatalf("Height = %d want 3", tr.Height())
	}
	// Utilization of STR should be near-full: pages ~= leaves + dirs + meta.
	leaves := int(math.Ceil(5000.0 / 42))
	if tr.PageCount() > leaves+10 {
		t.Fatalf("STR used %d pages for %d leaves", tr.PageCount(), leaves)
	}
}

func TestRangeSearchMatchesBruteForce(t *testing.T) {
	items := randItems(2000, 5)
	tr := bulkTree(t, items)
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 20; trial++ {
		center := geo.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}
		r := rng.Float64() * 200
		got, err := tr.RangeSearch(center, r)
		if err != nil {
			t.Fatal(err)
		}
		var want []int64
		for _, it := range items {
			if center.Dist(it.Pt) <= r {
				want = append(want, it.ID)
			}
		}
		if !sameIDs(got, want) {
			t.Fatalf("trial %d: range mismatch: got %d items want %d", trial, len(got), len(want))
		}
	}
}

func TestAnnularRangeMatchesBruteForce(t *testing.T) {
	items := randItems(2000, 7)
	tr := bulkTree(t, items)
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 20; trial++ {
		center := geo.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}
		rlo := rng.Float64() * 100
		rhi := rlo + rng.Float64()*150
		got, err := tr.AnnularRange(center, rlo, rhi)
		if err != nil {
			t.Fatal(err)
		}
		var want []int64
		for _, it := range items {
			d := center.Dist(it.Pt)
			if d > rlo && d <= rhi {
				want = append(want, it.ID)
			}
		}
		if !sameIDs(got, want) {
			t.Fatalf("trial %d: annular mismatch: got %d want %d", trial, len(got), len(want))
		}
	}
}

func TestAnnularDisjointCoversRange(t *testing.T) {
	// Consecutive annuli (T-θ, T] must partition the full range search,
	// the property RIA relies on to avoid duplicate edges.
	items := randItems(1000, 9)
	tr := bulkTree(t, items)
	center := geo.Point{X: 500, Y: 500}
	const theta = 100.0
	seen := make(map[int64]int)
	for step := 0; step < 15; step++ {
		lo, hi := float64(step)*theta, float64(step+1)*theta
		if step == 0 {
			lo = -1
		}
		got, err := tr.AnnularRange(center, lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		for _, it := range got {
			seen[it.ID]++
		}
	}
	if len(seen) != 1000 {
		t.Fatalf("annuli cover %d of 1000 points", len(seen))
	}
	for id, c := range seen {
		if c != 1 {
			t.Fatalf("point %d appeared %d times", id, c)
		}
	}
}

func TestSearchRect(t *testing.T) {
	items := randItems(1500, 11)
	tr := bulkTree(t, items)
	w := geo.Rect{Min: geo.Point{X: 200, Y: 300}, Max: geo.Point{X: 600, Y: 450}}
	got, err := tr.SearchRect(w)
	if err != nil {
		t.Fatal(err)
	}
	var want []int64
	for _, it := range items {
		if w.Contains(it.Pt) {
			want = append(want, it.ID)
		}
	}
	if !sameIDs(got, want) {
		t.Fatalf("window mismatch: got %d want %d", len(got), len(want))
	}
}

func TestNNIteratorFullOrder(t *testing.T) {
	items := randItems(1200, 13)
	tr := bulkTree(t, items)
	q := geo.Point{X: 333, Y: 667}

	want := append([]Item(nil), items...)
	sort.Slice(want, func(i, j int) bool { return q.Dist(want[i].Pt) < q.Dist(want[j].Pt) })

	it := tr.NewNNIterator(q)
	prev := -1.0
	for i := 0; ; i++ {
		item, d, ok := it.Next()
		if !ok {
			if i != len(items) {
				t.Fatalf("iterator stopped at %d of %d", i, len(items))
			}
			break
		}
		if d < prev {
			t.Fatalf("distances not monotone at %d: %f < %f", i, d, prev)
		}
		if math.Abs(d-q.Dist(want[i].Pt)) > 1e-9 {
			t.Fatalf("rank %d: got dist %f want %f (item %d)", i, d, q.Dist(want[i].Pt), item.ID)
		}
		prev = d
	}
	if it.Err() != nil {
		t.Fatal(it.Err())
	}
}

func TestNNIteratorEmptyTree(t *testing.T) {
	tr := memTree(t, 256, 16)
	it := tr.NewNNIterator(geo.Point{X: 1, Y: 2})
	if _, _, ok := it.Next(); ok {
		t.Fatal("empty tree must yield nothing")
	}
}

func TestDelete(t *testing.T) {
	items := randItems(800, 17)
	tr := memTree(t, 256, 1024)
	for _, it := range items {
		if err := tr.Insert(it); err != nil {
			t.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(18))
	perm := rng.Perm(len(items))
	// Delete half the items in random order.
	for _, i := range perm[:400] {
		ok, err := tr.Delete(items[i])
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("item %d not found for deletion", items[i].ID)
		}
	}
	if tr.Size() != 400 {
		t.Fatalf("Size after deletes = %d", tr.Size())
	}
	if _, err := tr.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	// Deleted items must be gone; survivors must remain.
	all, err := tr.All()
	if err != nil {
		t.Fatal(err)
	}
	alive := make(map[int64]bool)
	for _, it := range all {
		alive[it.ID] = true
	}
	for n, i := range perm {
		if n < 400 && alive[items[i].ID] {
			t.Fatalf("deleted item %d still present", items[i].ID)
		}
		if n >= 400 && !alive[items[i].ID] {
			t.Fatalf("surviving item %d lost", items[i].ID)
		}
	}
	// Deleting a missing item reports false.
	ok, err := tr.Delete(Item{ID: 99999, Pt: geo.Point{X: 1, Y: 1}})
	if err != nil || ok {
		t.Fatalf("Delete(missing) = %v, %v", ok, err)
	}
}

func TestDeleteAll(t *testing.T) {
	items := randItems(300, 19)
	tr := memTree(t, 256, 1024)
	for _, it := range items {
		tr.Insert(it)
	}
	for _, it := range items {
		ok, err := tr.Delete(it)
		if err != nil || !ok {
			t.Fatalf("Delete(%d) = %v, %v", it.ID, ok, err)
		}
	}
	if tr.Size() != 0 {
		t.Fatalf("Size = %d after deleting everything", tr.Size())
	}
	// The tree must still accept inserts.
	if err := tr.Insert(Item{ID: 1, Pt: geo.Point{X: 5, Y: 5}}); err != nil {
		t.Fatal(err)
	}
	got, _ := tr.RangeSearch(geo.Point{X: 5, Y: 5}, 1)
	if len(got) != 1 {
		t.Fatal("reuse after full deletion failed")
	}
}

func TestPersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tree.db")
	fs, err := storage.CreateFileStore(path, 512)
	if err != nil {
		t.Fatal(err)
	}
	items := randItems(700, 23)
	tr, err := Bulk(storage.NewBuffer(fs, 64), items)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}

	fs2, err := storage.OpenFileStore(path, 512)
	if err != nil {
		t.Fatal(err)
	}
	defer fs2.Close()
	tr2, err := Open(storage.NewBuffer(fs2, 64))
	if err != nil {
		t.Fatal(err)
	}
	if tr2.Size() != 700 || tr2.Height() != tr.Height() {
		t.Fatalf("reopened tree: size %d height %d", tr2.Size(), tr2.Height())
	}
	got, err := tr2.RangeSearch(geo.Point{X: 500, Y: 500}, 100)
	if err != nil {
		t.Fatal(err)
	}
	var want int
	for _, it := range items {
		if (geo.Point{X: 500, Y: 500}).Dist(it.Pt) <= 100 {
			want++
		}
	}
	if len(got) != want {
		t.Fatalf("post-reopen range: %d want %d", len(got), want)
	}
}

func TestOpenRejectsGarbage(t *testing.T) {
	s := storage.NewMemStore(256)
	s.Alloc()
	if _, err := Open(storage.NewBuffer(s, 4)); err == nil {
		t.Fatal("Open must reject stores without R-tree metadata")
	}
}

func TestTraversalCursor(t *testing.T) {
	items := randItems(2000, 29)
	tr := bulkTree(t, items)
	root, err := tr.RootEntry()
	if err != nil {
		t.Fatal(err)
	}
	if root.Count != 2000 {
		t.Fatalf("root count = %d", root.Count)
	}
	// Walk the entire tree via the cursor and count points.
	var walk func(e Entry) int
	walk = func(e Entry) int {
		if e.Leaf {
			its, err := tr.LeafItems(e)
			if err != nil {
				t.Fatal(err)
			}
			for _, it := range its {
				if !e.MBR.Contains(it.Pt) {
					t.Fatalf("leaf MBR does not contain its item")
				}
			}
			return len(its)
		}
		kids, err := tr.Children(e)
		if err != nil {
			t.Fatal(err)
		}
		total := 0
		for _, k := range kids {
			if !e.MBR.ContainsRect(k.MBR) {
				t.Fatal("child MBR escapes parent")
			}
			if k.Count <= 0 {
				t.Fatal("entry without count")
			}
			total += walk(k)
		}
		return total
	}
	if got := walk(root); got != 2000 {
		t.Fatalf("cursor walk found %d points", got)
	}
	// LeafItems on a directory entry must fail.
	if !root.Leaf {
		if _, err := tr.LeafItems(root); err == nil {
			t.Fatal("LeafItems on directory entry must fail")
		}
	}
}

func TestIOAccounting(t *testing.T) {
	items := randItems(3000, 31)
	buf := storage.NewBuffer(storage.NewMemStore(1024), 4)
	tr, err := Bulk(buf, items)
	if err != nil {
		t.Fatal(err)
	}
	buf.ResetStats()
	buf.DropCache()
	if _, err := tr.RangeSearch(geo.Point{X: 500, Y: 500}, 50); err != nil {
		t.Fatal(err)
	}
	st := buf.Stats()
	if st.Faults == 0 {
		t.Fatal("cold range search must fault")
	}
	if st.Faults > tr.PageCount() {
		t.Fatalf("faults %d exceed page count %d", st.Faults, tr.PageCount())
	}
	// A tiny range query must touch far fewer pages than the whole tree.
	if st.Faults*3 > tr.PageCount() {
		t.Fatalf("range search touched %d of %d pages — no pruning?", st.Faults, tr.PageCount())
	}
}

func TestInsertProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 50 + rng.Intn(300)
		tr := memTree(t, 256, 1024)
		pts := make(map[int64]geo.Point, n)
		for i := 0; i < n; i++ {
			it := Item{ID: int64(i), Pt: geo.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}}
			pts[it.ID] = it.Pt
			if err := tr.Insert(it); err != nil {
				return false
			}
		}
		if _, err := tr.checkInvariants(); err != nil {
			return false
		}
		all, err := tr.All()
		if err != nil || len(all) != n {
			return false
		}
		for _, it := range all {
			if pts[it.ID] != it.Pt {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func sameIDs(got []Item, want []int64) bool {
	if len(got) != len(want) {
		return false
	}
	g := make([]int64, len(got))
	for i, it := range got {
		g[i] = it.ID
	}
	sort.Slice(g, func(i, j int) bool { return g[i] < g[j] })
	w := append([]int64(nil), want...)
	sort.Slice(w, func(i, j int) bool { return w[i] < w[j] })
	for i := range g {
		if g[i] != w[i] {
			return false
		}
	}
	return true
}
