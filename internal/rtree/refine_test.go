package rtree

import (
	"math"
	"sort"
	"testing"

	"repro/internal/geo"
)

// warpedMetric is a deliberately non-Euclidean test metric that honors
// the lower-bound contract: Dist = euclid * (1.5 + 0.5·sin(x_p+x_q)),
// always in [euclid, 2·euclid], symmetric, and it reorders neighbors
// relative to Euclidean distance.
type warpedMetric struct{}

func (warpedMetric) Name() string { return "warped" }
func (warpedMetric) Dist(p, q geo.Point) float64 {
	return p.Dist(q) * (1.5 + 0.5*math.Sin(p.X+q.X))
}

func refinedOver(tr *Tree, queries []geo.Point, ann bool) *RefinedNN {
	var base NNSource
	if ann {
		base = NewANNSearch(tr, queries, testSpace, 4)
	} else {
		base = NewPerQueryNN(tr, queries)
	}
	return NewRefinedNN(base, queries, warpedMetric{})
}

// RefinedNN must stream every item exactly once, in ascending *metric*
// order, with the metric distance as the reported key — over both base
// sources.
func TestRefinedNNMatchesBruteForce(t *testing.T) {
	items := randItems(600, 51)
	queries := randQueries(6, 53)
	m := warpedMetric{}
	for name, ann := range map[string]bool{"per-query": false, "ann": true} {
		t.Run(name, func(t *testing.T) {
			src := refinedOver(bulkTree(t, items), queries, ann)
			for qi, q := range queries {
				want := make([]float64, 0, len(items))
				for _, it := range items {
					want = append(want, m.Dist(q, it.Pt))
				}
				sort.Float64s(want)
				seen := make(map[int64]bool)
				for k := range want {
					it, d, ok, err := src.Next(qi)
					if err != nil {
						t.Fatal(err)
					}
					if !ok {
						t.Fatalf("q%d exhausted at rank %d of %d", qi, k, len(want))
					}
					if seen[it.ID] {
						t.Fatalf("q%d: item %d delivered twice", qi, it.ID)
					}
					seen[it.ID] = true
					if math.Abs(d-want[k]) > 1e-9 {
						t.Fatalf("q%d rank %d: got %f want %f", qi, k, d, want[k])
					}
					if got := m.Dist(q, it.Pt); math.Abs(got-d) > 1e-9 {
						t.Fatalf("q%d rank %d: reported key %f is not the metric distance %f", qi, k, d, got)
					}
				}
				if _, _, ok, _ := src.Next(qi); ok {
					t.Fatalf("q%d: source yielded more than %d items", qi, len(items))
				}
			}
		})
	}
}

// Under the Euclidean metric the refinement layer must be a transparent
// pass-through (same order, same distances).
func TestRefinedNNEuclideanPassThrough(t *testing.T) {
	items := randItems(200, 57)
	queries := randQueries(3, 59)
	tr := bulkTree(t, items)
	plain := NewPerQueryNN(tr, queries)
	refined := NewRefinedNN(NewPerQueryNN(bulkTree(t, items), queries), queries, geo.Euclidean)
	for qi := range queries {
		for k := 0; k < len(items); k++ {
			pi, pd, pok, _ := plain.Next(qi)
			ri, rd, rok, _ := refined.Next(qi)
			if pok != rok || (pok && (pi.ID != ri.ID || math.Abs(pd-rd) > 1e-12)) {
				t.Fatalf("q%d rank %d: plain (%v,%f,%v) != refined (%v,%f,%v)",
					qi, k, pi.ID, pd, pok, ri.ID, rd, rok)
			}
		}
	}
}

// Interleaved consumption across queries must not cross-contaminate the
// per-query refinement heaps.
func TestRefinedNNInterleaved(t *testing.T) {
	items := randItems(150, 61)
	queries := randQueries(4, 63)
	m := warpedMetric{}
	src := refinedOver(bulkTree(t, items), queries, true)
	prev := make([]float64, len(queries))
	for round := 0; round < 30; round++ {
		for qi := range queries {
			_, d, ok, err := src.Next(qi)
			if err != nil || !ok {
				t.Fatalf("q%d round %d: ok=%v err=%v", qi, round, ok, err)
			}
			if d < prev[qi]-1e-9 {
				t.Fatalf("q%d round %d: distance went backwards (%f after %f)", qi, round, d, prev[qi])
			}
			prev[qi] = d
			_ = m
		}
	}
}
