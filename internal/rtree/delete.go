package rtree

import (
	"errors"

	"repro/internal/storage"
)

var errOnlyLeaf = errors.New("rtree: operation requires a leaf entry")

// Delete removes the exact (ID, point) entry from the tree. It returns
// false when no such entry exists.
//
// Condensing follows Guttman: a leaf that underflows below the minimum
// fill is dissolved and its remaining points reinserted; a directory node
// that becomes empty is removed from its parent. A root directory with a
// single child is collapsed.
func (t *Tree) Delete(item Item) (bool, error) {
	var orphans []Item
	found, empty, err := t.remove(t.root, item, t.height, &orphans)
	if err != nil {
		return false, err
	}
	if !found {
		return false, nil
	}
	t.size--
	if empty && t.height > 1 {
		// The root lost all children; reset to an empty leaf root.
		if err := t.writeNode(&node{id: t.root, leaf: true}); err != nil {
			return false, err
		}
		t.height = 1
	}
	// Collapse a root directory chain with single children.
	for t.height > 1 {
		n, err := t.readNode(t.root)
		if err != nil {
			return false, err
		}
		if n.leaf || len(n.childs) != 1 {
			break
		}
		t.root = n.childs[0].child
		t.height--
	}
	for _, o := range orphans {
		t.size-- // Insert will re-increment
		if err := t.Insert(o); err != nil {
			return false, err
		}
	}
	return true, nil
}

// remove deletes item from the subtree rooted at id. It reports whether
// the item was found and whether the subtree became empty. Underflowing
// leaves dump their remaining items into orphans and report empty.
func (t *Tree) remove(id storage.PageID, item Item, level int, orphans *[]Item) (found, empty bool, err error) {
	n, err := t.readNode(id)
	if err != nil {
		return false, false, err
	}
	if n.leaf {
		idx := -1
		for i, it := range n.items {
			if it.ID == item.ID && it.Pt == item.Pt {
				idx = i
				break
			}
		}
		if idx < 0 {
			return false, false, nil
		}
		n.items = append(n.items[:idx], n.items[idx+1:]...)
		// Root leaves may hold any number of items; non-root leaves that
		// underflow are dissolved.
		if level != t.height && len(n.items) < minFill(t.leafCap) {
			*orphans = append(*orphans, n.items...)
			return true, true, nil
		}
		if err := t.writeNode(n); err != nil {
			return false, false, err
		}
		return true, len(n.items) == 0, nil
	}
	for i, c := range n.childs {
		if !c.mbr.Contains(item.Pt) {
			continue
		}
		found, childEmpty, err := t.remove(c.child, item, level-1, orphans)
		if err != nil {
			return false, false, err
		}
		if !found {
			continue
		}
		if childEmpty {
			n.childs = append(n.childs[:i], n.childs[i+1:]...)
		} else {
			child, err := t.readNode(c.child)
			if err != nil {
				return false, false, err
			}
			n.childs[i] = dirEntry{child: c.child, count: child.subtreeCount(), mbr: child.mbr()}
		}
		if len(n.childs) == 0 {
			return true, true, nil
		}
		if err := t.writeNode(n); err != nil {
			return false, false, err
		}
		return true, false, nil
	}
	return false, false, nil
}

// checkInvariants verifies structural invariants for tests: every parent
// entry's MBR contains its child's MBR, subtree counts are accurate, and
// all leaves sit at the same depth. It returns the total point count.
func (t *Tree) checkInvariants() (int, error) {
	return t.check(t.root, t.height)
}

func (t *Tree) check(id storage.PageID, level int) (int, error) {
	n, err := t.readNode(id)
	if err != nil {
		return 0, err
	}
	if n.leaf {
		if level != 1 {
			return 0, errors.New("rtree: leaf not at level 1")
		}
		return len(n.items), nil
	}
	if level == 1 {
		return 0, errors.New("rtree: directory at leaf level")
	}
	total := 0
	for _, c := range n.childs {
		child, err := t.readNode(c.child)
		if err != nil {
			return 0, err
		}
		cm := child.mbr()
		if !c.mbr.ContainsRect(cm) {
			return 0, errors.New("rtree: parent MBR does not contain child MBR")
		}
		got, err := t.check(c.child, level-1)
		if err != nil {
			return 0, err
		}
		if got != c.count {
			return 0, errors.New("rtree: stale subtree count in directory entry")
		}
		total += got
	}
	return total, nil
}
