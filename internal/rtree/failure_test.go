package rtree

import (
	"errors"
	"testing"

	"repro/internal/geo"
	"repro/internal/storage"
)

// flakyStore wraps a MemStore and starts failing reads after a budget of
// successful ones — simulating a disk that dies mid-query. Every R-tree
// operation must surface the error instead of returning partial results
// silently.
type flakyStore struct {
	*storage.MemStore
	budget int
}

var errDiskDied = errors.New("injected disk failure")

func (f *flakyStore) Read(id storage.PageID, buf []byte) error {
	if f.budget <= 0 {
		return errDiskDied
	}
	f.budget--
	return f.MemStore.Read(id, buf)
}

func TestSearchSurfacesReadErrors(t *testing.T) {
	items := randItems(3000, 71)
	fs := &flakyStore{MemStore: storage.NewMemStore(1024), budget: 1 << 30}
	buf := storage.NewBuffer(fs, 4)
	tr, err := Bulk(buf, items)
	if err != nil {
		t.Fatal(err)
	}
	// Warm check: everything works with budget left.
	if _, err := tr.RangeSearch(geo.Point{X: 500, Y: 500}, 100); err != nil {
		t.Fatal(err)
	}

	kill := func() {
		buf.DropCache()
		fs.budget = 1 // allow the root read, then fail
	}

	kill()
	if _, err := tr.RangeSearch(geo.Point{X: 500, Y: 500}, 100); !errors.Is(err, errDiskDied) {
		t.Fatalf("RangeSearch must surface the failure, got %v", err)
	}
	kill()
	if _, err := tr.AnnularRange(geo.Point{X: 500, Y: 500}, 50, 200); !errors.Is(err, errDiskDied) {
		t.Fatalf("AnnularRange must surface the failure, got %v", err)
	}
	kill()
	if _, err := tr.All(); !errors.Is(err, errDiskDied) {
		t.Fatalf("All must surface the failure, got %v", err)
	}

	kill()
	it := tr.NewNNIterator(geo.Point{X: 500, Y: 500})
	for {
		if _, _, ok := it.Next(); !ok {
			break
		}
	}
	if !errors.Is(it.Err(), errDiskDied) {
		t.Fatalf("NNIterator must record the failure, got %v", it.Err())
	}

	kill()
	src := NewANNSearch(tr, []geo.Point{{X: 500, Y: 500}}, testSpace, 1)
	failed := false
	for i := 0; i < len(items); i++ {
		if _, _, ok, err := src.Next(0); err != nil {
			if !errors.Is(err, errDiskDied) {
				t.Fatalf("ANN returned wrong error: %v", err)
			}
			failed = true
			break
		} else if !ok {
			break
		}
	}
	if !failed {
		t.Fatal("ANN search never saw the injected failure")
	}
}

func TestInsertSurfacesWriteErrors(t *testing.T) {
	// A store whose writes fail after construction.
	ws := &writeFailStore{MemStore: storage.NewMemStore(256)}
	buf := storage.NewBuffer(ws, 64)
	tr, err := New(buf)
	if err != nil {
		t.Fatal(err)
	}
	ws.fail = true
	if err := tr.Insert(Item{ID: 1, Pt: geo.Point{X: 1, Y: 1}}); !errors.Is(err, errDiskDied) {
		t.Fatalf("Insert must surface write failure, got %v", err)
	}
}

type writeFailStore struct {
	*storage.MemStore
	fail bool
}

func (w *writeFailStore) Write(id storage.PageID, data []byte) error {
	if w.fail {
		return errDiskDied
	}
	return w.MemStore.Write(id, data)
}
