package rtree

import (
	"repro/internal/geo"
	"repro/internal/pqueue"
	"repro/internal/storage"
)

// RangeSearch returns all points within Euclidean distance r of center
// (boundary inclusive) — the T-range search RIA issues around each
// service provider (§3.1).
func (t *Tree) RangeSearch(center geo.Point, r float64) ([]Item, error) {
	return t.AnnularRange(center, -1, r)
}

// AnnularRange returns all points p with rlo < dist(center, p) <= rhi,
// the annular search RIA uses when it extends its radius from T-θ to T
// (§3.1). Pass rlo < 0 for a plain range search.
func (t *Tree) AnnularRange(center geo.Point, rlo, rhi float64) ([]Item, error) {
	var out []Item
	err := t.annular(t.root, center, rlo, rhi, &out)
	return out, err
}

func (t *Tree) annular(id storage.PageID, center geo.Point, rlo, rhi float64, out *[]Item) error {
	n, err := t.readNode(id)
	if err != nil {
		return err
	}
	if n.leaf {
		for _, it := range n.items {
			d := center.Dist(it.Pt)
			if d > rlo && d <= rhi {
				*out = append(*out, it)
			}
		}
		return nil
	}
	for _, c := range n.childs {
		// Prune subtrees entirely outside the annulus.
		if c.mbr.MinDist(center) > rhi {
			continue
		}
		if rlo >= 0 && c.mbr.MaxDist(center) <= rlo {
			continue
		}
		if err := t.annular(c.child, center, rlo, rhi, out); err != nil {
			return err
		}
	}
	return nil
}

// SearchRect returns all points inside the query window w.
func (t *Tree) SearchRect(w geo.Rect) ([]Item, error) {
	var out []Item
	err := t.searchRect(t.root, w, &out)
	return out, err
}

func (t *Tree) searchRect(id storage.PageID, w geo.Rect, out *[]Item) error {
	n, err := t.readNode(id)
	if err != nil {
		return err
	}
	if n.leaf {
		for _, it := range n.items {
			if w.Contains(it.Pt) {
				*out = append(*out, it)
			}
		}
		return nil
	}
	for _, c := range n.childs {
		if w.Intersects(c.mbr) {
			if err := t.searchRect(c.child, w, out); err != nil {
				return err
			}
		}
	}
	return nil
}

// nnEntry is a best-first search heap element: either an R-tree node to
// expand or a concrete point to report.
type nnEntry struct {
	isItem bool
	item   Item
	page   storage.PageID
}

// NNIterator yields the points of the tree in ascending distance from a
// query point, reading pages on demand — Hjaltason & Samet's distance
// browsing [7], the primitive behind NIA and IDA (§3.2, §3.3).
type NNIterator struct {
	t     *Tree
	query geo.Point
	heap  pqueue.Heap[nnEntry]
	err   error
}

// NewNNIterator starts an incremental nearest neighbor search at query.
func (t *Tree) NewNNIterator(query geo.Point) *NNIterator {
	it := &NNIterator{t: t, query: query}
	if t.size > 0 {
		it.heap.Push(nnEntry{page: t.root}, 0)
	}
	return it
}

// Next returns the next closest point and its distance. ok is false when
// the tree is exhausted or an error occurred (check Err).
func (it *NNIterator) Next() (item Item, dist float64, ok bool) {
	if it.err != nil {
		return Item{}, 0, false
	}
	for it.heap.Len() > 0 {
		top := it.heap.Pop()
		e := top.Value
		if e.isItem {
			return e.item, top.Key(), true
		}
		n, err := it.t.readNode(e.page)
		if err != nil {
			it.err = err
			return Item{}, 0, false
		}
		if n.leaf {
			for _, item := range n.items {
				it.heap.Push(nnEntry{isItem: true, item: item}, it.query.Dist(item.Pt))
			}
		} else {
			for _, c := range n.childs {
				it.heap.Push(nnEntry{page: c.child}, c.mbr.MinDist(it.query))
			}
		}
	}
	return Item{}, 0, false
}

// Err returns the first page-access error encountered, if any.
func (it *NNIterator) Err() error { return it.err }

// Entry describes an R-tree entry (a subtree) to traversal clients. CA
// partitioning (§4.2) walks entries top-down, descending those whose MBR
// diagonal exceeds δ; Count supplies representative weights without
// touching the subtree's pages.
type Entry struct {
	MBR    geo.Rect
	Count  int  // number of points in the subtree
	Leaf   bool // whether the page is a leaf
	page   storage.PageID
	height int // height of the subtree rooted at page (1 = leaf)
}

// RootEntry returns the entry describing the whole tree.
func (t *Tree) RootEntry() (Entry, error) {
	n, err := t.readNode(t.root)
	if err != nil {
		return Entry{}, err
	}
	return Entry{
		MBR:    n.mbr(),
		Count:  n.subtreeCount(),
		Leaf:   n.leaf,
		page:   t.root,
		height: t.height,
	}, nil
}

// Children expands a non-leaf entry into its child entries.
func (t *Tree) Children(e Entry) ([]Entry, error) {
	n, err := t.readNode(e.page)
	if err != nil {
		return nil, err
	}
	out := make([]Entry, 0, len(n.childs))
	for _, c := range n.childs {
		out = append(out, Entry{
			MBR:    c.mbr,
			Count:  c.count,
			Leaf:   e.height == 2,
			page:   c.child,
			height: e.height - 1,
		})
	}
	return out, nil
}

// LeafItems returns the points stored in a leaf entry.
func (t *Tree) LeafItems(e Entry) ([]Item, error) {
	n, err := t.readNode(e.page)
	if err != nil {
		return nil, err
	}
	if !n.leaf {
		return nil, errOnlyLeaf
	}
	return n.items, nil
}

// CollectItems returns every point in the subtree of an entry. CA's
// refinement phase (§4.3) uses it to materialize the actual customers of
// a partition group, paying the corresponding page reads.
func (t *Tree) CollectItems(e Entry) ([]Item, error) {
	if e.Leaf {
		return t.LeafItems(e)
	}
	kids, err := t.Children(e)
	if err != nil {
		return nil, err
	}
	var out []Item
	for _, k := range kids {
		items, err := t.CollectItems(k)
		if err != nil {
			return nil, err
		}
		out = append(out, items...)
	}
	return out, nil
}

// All returns every indexed point (by full traversal).
func (t *Tree) All() ([]Item, error) {
	out := make([]Item, 0, t.size)
	err := t.all(t.root, &out)
	return out, err
}

func (t *Tree) all(id storage.PageID, out *[]Item) error {
	n, err := t.readNode(id)
	if err != nil {
		return err
	}
	if n.leaf {
		*out = append(*out, n.items...)
		return nil
	}
	for _, c := range n.childs {
		if err := t.all(c.child, out); err != nil {
			return err
		}
	}
	return nil
}
