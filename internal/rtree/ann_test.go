package rtree

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/geo"
	"repro/internal/storage"
)

var testSpace = geo.Rect{Min: geo.Point{X: 0, Y: 0}, Max: geo.Point{X: 1000, Y: 1000}}

func randQueries(n int, seed int64) []geo.Point {
	rng := rand.New(rand.NewSource(seed))
	qs := make([]geo.Point, n)
	for i := range qs {
		qs[i] = geo.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}
	}
	return qs
}

// Both NN sources must yield, for every query point, exactly the
// brute-force distance order.
func TestNNSourcesMatchBruteForce(t *testing.T) {
	items := randItems(1500, 41)
	tr := bulkTree(t, items)
	queries := randQueries(10, 43)

	sources := map[string]NNSource{
		"per-query": NewPerQueryNN(tr, queries),
		"ann":       NewANNSearch(tr, queries, testSpace, 4),
	}
	for name, src := range sources {
		t.Run(name, func(t *testing.T) {
			for qi, q := range queries {
				// Pull the first 50 NNs and compare distances.
				want := make([]float64, 0, len(items))
				for _, it := range items {
					want = append(want, q.Dist(it.Pt))
				}
				sort.Float64s(want)
				for k := 0; k < 50; k++ {
					_, d, ok, err := src.Next(qi)
					if err != nil {
						t.Fatal(err)
					}
					if !ok {
						t.Fatalf("q%d exhausted at rank %d", qi, k)
					}
					if math.Abs(d-want[k]) > 1e-9 {
						t.Fatalf("q%d rank %d: got %f want %f", qi, k, d, want[k])
					}
				}
			}
		})
	}
}

// Exhausting an NN source must deliver each point exactly once per query.
func TestANNExhaustive(t *testing.T) {
	items := randItems(300, 47)
	tr := bulkTree(t, items)
	queries := randQueries(5, 49)
	src := NewANNSearch(tr, queries, testSpace, 2)
	for qi := range queries {
		seen := make(map[int64]bool)
		prev := -1.0
		for {
			it, d, ok, err := src.Next(qi)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
			if d < prev {
				t.Fatalf("q%d: non-monotone distances", qi)
			}
			prev = d
			if seen[it.ID] {
				t.Fatalf("q%d: duplicate item %d", qi, it.ID)
			}
			seen[it.ID] = true
		}
		if len(seen) != len(items) {
			t.Fatalf("q%d saw %d of %d items", qi, len(seen), len(items))
		}
	}
}

// The point of grouped ANN: fewer page faults than independent
// per-query search when the query points are clustered.
func TestANNSharesIO(t *testing.T) {
	items := randItems(5000, 53)
	rng := rand.New(rand.NewSource(54))
	// 16 clustered query points.
	queries := make([]geo.Point, 16)
	for i := range queries {
		queries[i] = geo.Point{X: 400 + rng.Float64()*50, Y: 600 + rng.Float64()*50}
	}

	run := func(mk func(*Tree) NNSource) int {
		buf := storage.NewBuffer(storage.NewMemStore(1024), 8)
		tr, err := Bulk(buf, items)
		if err != nil {
			t.Fatal(err)
		}
		buf.DropCache()
		buf.ResetStats()
		src := mk(tr)
		for qi := range queries {
			for k := 0; k < 100; k++ {
				if _, _, ok, err := src.Next(qi); err != nil || !ok {
					t.Fatalf("source ended early: %v", err)
				}
			}
		}
		return buf.Stats().Faults
	}

	perQuery := run(func(tr *Tree) NNSource { return NewPerQueryNN(tr, queries) })
	ann := run(func(tr *Tree) NNSource { return NewANNSearch(tr, queries, testSpace, 8) })
	if ann >= perQuery {
		t.Fatalf("ANN should save I/O: ann=%d per-query=%d faults", ann, perQuery)
	}
}

func TestANNEmptyTree(t *testing.T) {
	tr := memTree(t, 256, 16)
	src := NewANNSearch(tr, []geo.Point{{X: 1, Y: 1}}, testSpace, 0)
	if _, _, ok, _ := src.Next(0); ok {
		t.Fatal("empty tree must yield nothing")
	}
}

func TestANNGroupSizes(t *testing.T) {
	items := randItems(500, 59)
	tr := bulkTree(t, items)
	queries := randQueries(7, 61)
	for _, gs := range []int{1, 3, 7, 100} {
		src := NewANNSearch(tr, queries, testSpace, gs)
		for qi, q := range queries {
			_, d, ok, err := src.Next(qi)
			if err != nil || !ok {
				t.Fatalf("gs=%d q%d: %v", gs, qi, err)
			}
			// First NN distance must match brute force.
			best := math.Inf(1)
			for _, it := range items {
				if dd := q.Dist(it.Pt); dd < best {
					best = dd
				}
			}
			if math.Abs(d-best) > 1e-9 {
				t.Fatalf("gs=%d q%d: first NN %f want %f", gs, qi, d, best)
			}
		}
	}
}
