package core

import (
	"time"

	"repro/internal/obs"
	"repro/internal/rtree"
)

// SSPA solves CCA with the classical Successive Shortest Path Algorithm
// (§2.2) on the complete bipartite graph between Q and the in-memory
// customer set. It is the paper's main-memory baseline (Figure 8): exact,
// but it relaxes every one of the |Q|·|P| edges in each Dijkstra run and
// is therefore orders of magnitude slower than the incremental methods.
// The only error it can return is a mid-solve cancellation through
// Options.Ctx — precisely the solver you want a deadline on.
func SSPA(providers []Provider, customers []rtree.Item, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	start := time.Now()
	span := obs.FromContext(opts.Ctx)
	build := span.StartChild("flowgraph-build")
	g := newFlowGraph(providers, true, opts)
	// Deferred so every exit — including mid-solve cancellation — hands
	// the Dijkstra scratch back to the pool.
	defer g.Release()
	custTotal := 0
	for _, c := range customers {
		cap := opts.CustomerCap(c.ID)
		g.AddCustomer(c.Pt, cap, c.ID)
		custTotal += cap
	}
	build.End()
	gamma := g.TotalCapacity()
	if custTotal < gamma {
		gamma = custTotal
	}
	done := 0
	aug := span.StartChild("augment")
	defer func() {
		aug.SetInt("iterations", int64(done))
		aug.End()
	}()
	for i := 0; i < gamma; i++ {
		if err := opts.cancelled(); err != nil {
			return nil, err
		}
		g.BeginIteration()
		if _, _, ok := g.Search(); !ok {
			break // max flow reached early (possible with capacitated customers)
		}
		if err := g.Augment(); err != nil {
			break
		}
		done++
	}
	m := Metrics{
		FullGraphEdges: len(providers) * len(customers),
		Augments:       done,
		CPUTime:        time.Since(start),
	}
	res := finish(g, m)
	// SSPA's conceptual subgraph is the complete graph.
	res.Metrics.SubgraphEdges = res.Metrics.FullGraphEdges
	return res, nil
}
