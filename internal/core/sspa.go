package core

import (
	"time"

	"repro/internal/rtree"
)

// SSPA solves CCA with the classical Successive Shortest Path Algorithm
// (§2.2) on the complete bipartite graph between Q and the in-memory
// customer set. It is the paper's main-memory baseline (Figure 8): exact,
// but it relaxes every one of the |Q|·|P| edges in each Dijkstra run and
// is therefore orders of magnitude slower than the incremental methods.
func SSPA(providers []Provider, customers []rtree.Item, opts Options) *Result {
	opts = opts.withDefaults()
	start := time.Now()
	g := newFlowGraph(providers, true, opts)
	custTotal := 0
	for _, c := range customers {
		cap := opts.CustomerCap(c.ID)
		g.AddCustomer(c.Pt, cap, c.ID)
		custTotal += cap
	}
	gamma := g.TotalCapacity()
	if custTotal < gamma {
		gamma = custTotal
	}
	for i := 0; i < gamma; i++ {
		g.BeginIteration()
		if _, _, ok := g.Search(); !ok {
			break // max flow reached early (possible with capacitated customers)
		}
		if err := g.Augment(); err != nil {
			break
		}
	}
	m := Metrics{
		FullGraphEdges: len(providers) * len(customers),
		CPUTime:        time.Since(start),
	}
	res := finish(g, m)
	g.Release()
	// SSPA's conceptual subgraph is the complete graph.
	res.Metrics.SubgraphEdges = res.Metrics.FullGraphEdges
	return res
}
