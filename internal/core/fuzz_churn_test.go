package core

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/geo"
)

// FuzzDynamicChurn fuzzes full churn event streams — arrivals,
// departures, capacity resizes (including shocks to zero) — under
// fuzzed re-opt budgets, checking the invariants that must hold
// regardless of budget:
//
//   - capacity conservation after every resize (no provider carries
//     more than its current capacity);
//   - no orphaned assignments after a departure (departed customers
//     never appear in the matching, no customer is matched twice);
//   - Size() and Cost() agree with a recount of the pair list, and
//     every pair's distance is exactly what the metric says;
//   - stats counters partition the event history;
//   - duplicate-id arrivals and unknown-id departs/resizes fail with
//     the sentinel errors and leave the matching untouched.
//
// The Bellman–Ford oracle is deliberately absent here (too slow for a
// fuzz loop); optimality is the conformance suite's job.
func FuzzDynamicChurn(f *testing.F) {
	f.Add(int64(1), uint8(4), uint8(60), uint8(0))
	f.Add(int64(2), uint8(1), uint8(120), uint8(1))
	f.Add(int64(3), uint8(12), uint8(200), uint8(3))
	f.Add(int64(7), uint8(6), uint8(255), uint8(2))
	f.Add(int64(11), uint8(2), uint8(30), uint8(0))
	f.Fuzz(func(t *testing.T, seed int64, nqRaw, nRaw, budgetRaw uint8) {
		nq := 1 + int(nqRaw)%12
		n := int(nRaw)
		budget := int(budgetRaw) % 4 // 0 = unlimited, 1..3 = tight budgets
		rng := rand.New(rand.NewSource(seed))
		providers := make([]Provider, nq)
		for i := range providers {
			providers[i] = Provider{
				Pt:  geo.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100},
				Cap: 1 + rng.Intn(4),
			}
		}
		events := genChurnEvents(rng, n, nq, 5)

		m := NewDynamicMatcherOpts(providers, DynamicOptions{ReoptBudget: budget})
		o := newChurnMirror(providers)
		departed := []int64{}
		for step, ev := range events {
			applyChurnEvent(t, m, o, ev)
			if ev.kind == 1 {
				departed = append(departed, ev.id)
			}
			checkFeasible(t, step, m, o, nil)
			if err := m.g.CheckFlowConservation(); err != nil {
				t.Fatalf("step %d (%+v): %v", step, ev, err)
			}
			if m.Live() != len(o.order) {
				t.Fatalf("step %d: Live() %d, mirror has %d", step, m.Live(), len(o.order))
			}
		}

		st := m.Stats()
		if st.Events != len(events) {
			t.Fatalf("Events %d, applied %d", st.Events, len(events))
		}
		if st.Arrivals+st.Departures+st.Resizes != st.Events {
			t.Fatalf("counters %d+%d+%d don't partition %d events",
				st.Arrivals, st.Departures, st.Resizes, st.Events)
		}

		// Error paths must not disturb the matching.
		size, cost := m.Size(), m.Cost()
		for _, id := range o.order { // live id re-arrival
			if _, err := m.Arrive(geo.Point{}, id); !errors.Is(err, ErrDuplicateID) {
				t.Fatalf("re-arrive live %d: %v, want ErrDuplicateID", id, err)
			}
			break
		}
		for _, id := range departed { // departed ids stay burned
			if _, err := m.Arrive(geo.Point{}, id); !errors.Is(err, ErrDuplicateID) {
				t.Fatalf("re-arrive departed %d: %v, want ErrDuplicateID", id, err)
			}
			if _, err := m.Depart(id); !errors.Is(err, ErrUnknownID) {
				t.Fatalf("re-depart %d: %v, want ErrUnknownID", id, err)
			}
			break
		}
		if _, err := m.Depart(int64(len(events)) + 1e6); !errors.Is(err, ErrUnknownID) {
			t.Fatalf("depart unknown: %v, want ErrUnknownID", err)
		}
		if err := m.ResizeProvider(nq, 1); !errors.Is(err, ErrUnknownID) {
			t.Fatalf("resize out of range: %v, want ErrUnknownID", err)
		}
		if err := m.ResizeProvider(0, -1); err == nil || errors.Is(err, ErrUnknownID) {
			t.Fatalf("resize negative cap: %v, want plain validation error", err)
		}
		if m.Size() != size || m.Cost() != cost {
			t.Fatalf("rejected events changed the matching: size %d->%d cost %v->%v",
				size, m.Size(), cost, m.Cost())
		}
		checkFeasible(t, len(events), m, o, nil)
	})
}
