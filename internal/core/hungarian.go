package core

import (
	"fmt"
	"time"

	"repro/internal/hungarian"
	"repro/internal/rtree"
)

// maxHungarianCells caps the dense cost matrix the Hungarian reduction
// materializes — the very limitation §2.1 describes ("the matrix may not
// fit in main memory"). 64M float64 cells ≈ 512 MB.
const maxHungarianCells = 64 << 20

// HungarianAssign solves CCA with the classical Hungarian (Kuhn–Munkres)
// algorithm of §2.1 [8]: each provider is replicated once per unit of
// capacity, yielding a one-to-one assignment instance on a dense
// (Σ q.k)·|P| cost matrix. Exact, but Θ(n³) time and Θ(n·m) memory — the
// baseline the paper dismisses as "limited to small problem instances".
// It exists to reproduce that claim; use IDA for real workloads.
func HungarianAssign(providers []Provider, customers []rtree.Item, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	start := time.Now()
	slots := 0
	for _, p := range providers {
		slots += p.Cap
	}
	nc := len(customers)
	if slots == 0 || nc == 0 {
		return &Result{Metrics: Metrics{CPUTime: time.Since(start)}}, nil
	}
	if int64(slots)*int64(nc) > maxHungarianCells {
		return nil, fmt.Errorf(
			"core: Hungarian reduction needs a %d x %d matrix (%d cells > %d): exactly the blow-up §2.1 warns about — use IDA",
			slots, nc, int64(slots)*int64(nc), maxHungarianCells)
	}

	// slotOwner maps a replicated row/column back to its provider.
	slotOwner := make([]int, 0, slots)
	for qi, p := range providers {
		for i := 0; i < p.Cap; i++ {
			slotOwner = append(slotOwner, qi)
		}
	}

	// Hungarian needs rows <= columns; orient the matrix accordingly.
	rowsAreCustomers := nc <= slots
	var rows, cols int
	if rowsAreCustomers {
		rows, cols = nc, slots
	} else {
		rows, cols = slots, nc
	}
	cost := make([][]float64, rows)
	for r := 0; r < rows; r++ {
		if err := opts.cancelled(); err != nil {
			return nil, err
		}
		cost[r] = make([]float64, cols)
		for c := 0; c < cols; c++ {
			var qi, ci int
			if rowsAreCustomers {
				ci, qi = r, slotOwner[c]
			} else {
				qi, ci = slotOwner[r], c
			}
			cost[r][c] = opts.Metric.Dist(providers[qi].Pt, customers[ci].Pt)
		}
	}
	var cancel func() error
	if opts.Ctx != nil {
		cancel = opts.cancelled
	}
	assign, total, err := hungarian.SolveCancel(cost, cancel)
	if err != nil {
		return nil, err
	}

	pairs := make([]Pair, 0, rows)
	for r, c := range assign {
		var qi, ci int
		if rowsAreCustomers {
			ci, qi = r, slotOwner[c]
		} else {
			qi, ci = slotOwner[r], c
		}
		pairs = append(pairs, Pair{
			Provider:   qi,
			CustomerID: customers[ci].ID,
			CustomerPt: customers[ci].Pt,
			Dist:       opts.Metric.Dist(providers[qi].Pt, customers[ci].Pt),
		})
	}
	return &Result{
		Pairs: pairs,
		Cost:  total,
		Size:  len(pairs),
		Metrics: Metrics{
			SubgraphEdges:  slots * nc,
			FullGraphEdges: len(providers) * nc,
			CPUTime:        time.Since(start),
		},
	}, nil
}
