package core

import (
	"time"

	"repro/internal/obs"
	"repro/internal/rtree"
)

// RIA solves CCA with the Range Incremental Algorithm (§3.1, Algorithm
// 2). It seeds Esub with a T-range search around every provider
// (T starts at θ) and runs SSPA iterations on the subgraph; whenever the
// shortest path fails the Theorem 1 test (cost > T − τmax), the range is
// extended by θ through annular searches and the iteration retried.
func RIA(providers []Provider, tree *rtree.Tree, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	start := time.Now()
	io := snapshotIO(tree.Buffer())
	span := obs.FromContext(opts.Ctx)

	build := span.StartChild("flowgraph-build")
	g := newFlowGraph(providers, false, opts)
	// Deferred so every exit — including mid-solve cancellation — hands
	// the Dijkstra scratch back to the pool.
	defer g.Release()
	custIdx := make(map[int64]int32)
	m := Metrics{FullGraphEdges: len(providers) * tree.Size()}

	ensure := func(it rtree.Item) int32 {
		if idx, ok := custIdx[it.ID]; ok {
			return idx
		}
		idx := g.AddCustomer(it.Pt, opts.CustomerCap(it.ID), it.ID)
		custIdx[it.ID] = idx
		return idx
	}
	// addAnnulus inserts all edges (q, p) with dist in (lo, hi].
	addAnnulus := func(lo, hi float64) error {
		for q := range providers {
			m.RangeSearches++
			items, err := tree.AnnularRange(providers[q].Pt, lo, hi)
			if err != nil {
				return err
			}
			for _, it := range items {
				g.AddEdge(int32(q), ensure(it))
			}
		}
		return nil
	}

	gamma, err := gammaFor(providers, tree, opts)
	if err != nil {
		return nil, err
	}

	// Under a non-Euclidean metric the annular searches still prune by
	// Euclidean distance, so an annulus may contain edges costing more
	// than T — harmless extras. What keeps RIA exact is the converse:
	// every *undiscovered* edge has Euclidean length > T, hence metric
	// cost > T (the geo.Metric lower-bound contract), so T still
	// lower-bounds Φ(E−Esub) in the Theorem 1 test below.
	T := opts.Theta
	if err := addAnnulus(-1, T); err != nil {
		return nil, err
	}
	build.End()
	maxEdges := len(providers) * tree.Size()
	done := 0
	aug := span.StartChild("augment")
	defer func() {
		aug.SetInt("iterations", int64(done))
		aug.End()
	}()
	for done < gamma {
		if err := opts.cancelled(); err != nil {
			return nil, err
		}
		g.BeginIteration()
		_, cost, ok := g.Search()
		complete := g.EdgeCount() >= maxEdges
		if ok && (complete || cost <= T-g.TauMax()+validityEps) {
			if err := g.Augment(); err != nil {
				return nil, err
			}
			done++
			continue
		}
		if complete {
			break // Esub is the full graph and no augmenting path remains
		}
		// Extend the search range by θ (Lines 12-15).
		if err := addAnnulus(T, T+opts.Theta); err != nil {
			return nil, err
		}
		T += opts.Theta
	}

	m.Augments = done
	m.CPUTime = time.Since(start)
	m.IO = io.delta()
	m.IOTime = m.IO.IOTime()
	return finish(g, m), nil
}
