package core

import (
	"repro/internal/flowgraph"
	"repro/internal/geo"
)

// DynamicMatcher maintains an optimal CCA matching under customer
// arrivals — the incremental assignment extension the paper points to in
// its related work ([11], Toroslu & Üçoluk: Incremental Assignment
// Problem) and future-work discussion.
//
// The successive-shortest-path invariant makes this cheap: if the
// current matching is a minimum-cost maximum matching and a new customer
// node is added, augmenting along one shortest path (when capacity
// remains) restores optimality — no recomputation over the previous
// customers is needed. Each arrival therefore costs one Dijkstra run on
// the residual graph instead of a full solve.
//
// The matcher keeps the full bipartite graph in memory (complete mode),
// so it suits the moderate |P| of online scenarios rather than the
// disk-resident batch setting of RIA/NIA/IDA.
type DynamicMatcher struct {
	g     *flowgraph.Graph
	slots int // remaining provider capacity
}

// NewDynamicMatcher starts an empty matching over the given providers.
func NewDynamicMatcher(providers []Provider) *DynamicMatcher {
	g := flowgraph.NewGraph(flowProviders(providers), true)
	// Arrivals invalidate potential-based reduced costs (a fresh
	// customer's incident edges can be negative under old potentials),
	// so the matcher searches with label-correcting Bellman-Ford over
	// raw costs instead.
	g.DisablePotentials()
	total := 0
	for _, p := range providers {
		total += p.Cap
	}
	return &DynamicMatcher{g: g, slots: total}
}

// Arrive adds a customer and restores optimality. While provider
// capacity remains, the new customer is matched along one shortest
// augmenting path. Once capacity is exhausted the matching size cannot
// grow, but the arrival can still improve its composition: Arrive then
// cancels the minimum-cost residual cycle through the new customer,
// which (when negative) swaps out a more expensive customer. Either way
// the matching stays a minimum-cost maximum matching over everything
// that has arrived so far.
//
// The returned flag reports whether this customer is matched right now;
// later arrivals may re-route or even evict it (fetch the current state
// with Matching).
func (m *DynamicMatcher) Arrive(pt geo.Point, id int64) (bool, error) {
	c := m.g.AddCustomer(pt, 1, id)
	if m.slots == 0 {
		return m.g.SwapArrival(c)
	}
	if _, _, ok := m.g.SearchLabelCorrecting(); !ok {
		return false, nil
	}
	if err := m.g.Augment(); err != nil {
		return false, err
	}
	m.slots--
	return true, nil
}

// Matching returns the current optimal matching.
func (m *DynamicMatcher) Matching() *Result {
	return finish(m.g, Metrics{})
}

// Size returns the current matching size.
func (m *DynamicMatcher) Size() int { return m.g.AssignedCount() }

// Cost returns the current Ψ(M).
func (m *DynamicMatcher) Cost() float64 { return m.g.Cost() }
