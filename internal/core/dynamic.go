package core

import (
	"errors"
	"fmt"

	"repro/internal/flowgraph"
	"repro/internal/geo"
)

// Sentinel errors of the dynamic event API. Callers (the ccad session
// handlers) branch on these with errors.Is to map churn failures to
// HTTP statuses instead of string-matching.
var (
	// ErrDuplicateID rejects an arrival whose id was ever seen before,
	// including ids that have already departed.
	ErrDuplicateID = errors.New("dynamic: duplicate customer id")
	// ErrUnknownID rejects a departure for an id that is not currently
	// present, and a resize of a provider index out of range.
	ErrUnknownID = errors.New("dynamic: unknown id")
)

// DynamicOptions configures a DynamicMatcher beyond the zero-value
// behavior (Euclidean metric, unlimited re-optimization, no periodic
// oracle).
type DynamicOptions struct {
	// Metric is the edge-cost backend; nil means Euclidean.
	Metric geo.Metric
	// ReoptBudget bounds the repair work amortized per event: after an
	// event's mandatory fix-ups (the arrival's own augmenting path or
	// swap, a departure's capacity release, a resize's evictions, and
	// the augmentations that keep the matching maximum), at most
	// ReoptBudget negative residual cycles are canceled before the
	// event returns; remaining debt carries to later events. 0 means
	// unlimited: every event leaves a minimum-cost maximum matching.
	// The matching stays feasible and maximum under any budget — only
	// cost optimality drifts, which Drift/ChurnStats track.
	ReoptBudget int
	// OracleEvery, when positive, re-solves from scratch every n events
	// and records the cost drift in ChurnStats. The oracle is O(γ·V·E)
	// Bellman–Ford — a measurement tool, not a production setting.
	OracleEvery int
}

// ChurnStats counts a matcher's event history and the quality drift
// its re-optimization budget allowed.
type ChurnStats struct {
	Events     int // arrivals + departures + resizes accepted
	Arrivals   int
	Departures int
	Resizes    int

	Augments int // augmenting paths applied (arrivals + repairs)
	Swaps    int // full-capacity arrival swap-ins
	Cycles   int // negative residual cycles canceled
	Deferred int // events that exhausted ReoptBudget with debt left

	OracleChecks int
	LastDrift    float64 // (cost − opt) / opt at the last oracle check
	MaxDrift     float64 // worst drift seen at any oracle check
}

// DynamicMatcher maintains a minimum-cost maximum CCA matching under
// the full churn model — customer arrivals and departures plus
// provider capacity resizes — the incremental extension the paper
// points to in its related work ([11], Toroslu & Üçoluk: Incremental
// Assignment Problem) and future-work discussion.
//
// Arrivals ride the successive-shortest-path invariant: augmenting a
// new customer along one shortest path (or, at full capacity,
// canceling the best cycle through its sink edge) preserves
// optimality. Departures and resizes break that invariant — released
// flow or fresh source capacity can create negative residual cycles —
// so those events repair in two stages: restore maximality with
// augmenting searches (always run, so Size always equals the
// from-scratch optimum's), then cancel negative cycles until none
// remain or the per-event ReoptBudget is spent.
//
// The matcher keeps the full bipartite graph in memory (complete
// mode), so it suits the moderate |P| of online scenarios rather than
// the disk-resident batch setting of RIA/NIA/IDA.
type DynamicMatcher struct {
	g         *flowgraph.Graph
	providers []Provider
	opts      DynamicOptions

	ids  map[int64]int32 // live external id → customer index
	seen map[int64]bool  // every id ever accepted (duplicate detection)

	// exact records whether the current matching is known minimum-cost
	// (no repair debt). While true, events that provably preserve
	// optimality skip the cycle scan entirely — the arrival fast path
	// stays one search per event.
	exact bool

	stats ChurnStats
}

// NewDynamicMatcher starts an empty matching over the given providers
// with default options (Euclidean, unlimited re-optimization).
func NewDynamicMatcher(providers []Provider) *DynamicMatcher {
	return NewDynamicMatcherOpts(providers, DynamicOptions{})
}

// NewDynamicMatcherOpts starts an empty matching with explicit
// options. The provider slice is copied: ResizeProvider mutates the
// matcher's view, never the caller's.
func NewDynamicMatcherOpts(providers []Provider, opts DynamicOptions) *DynamicMatcher {
	own := make([]Provider, len(providers))
	copy(own, providers)
	g := flowgraph.NewGraph(flowProviders(own), true)
	// Churn invalidates potential-based reduced costs (a fresh
	// customer's incident edges, or a reopened provider's, can be
	// negative under old potentials), so the matcher searches with
	// label-correcting Bellman-Ford over raw costs instead.
	g.DisablePotentials()
	if opts.Metric != nil {
		g.SetMetric(opts.Metric)
	}
	return &DynamicMatcher{
		g:         g,
		providers: own,
		opts:      opts,
		ids:       make(map[int64]int32),
		seen:      make(map[int64]bool),
		exact:     true,
	}
}

// Arrive adds a customer and restores optimality. While provider
// capacity remains, the new customer is matched along one shortest
// augmenting path. Once capacity is exhausted the matching size cannot
// grow, but the arrival can still improve its composition: Arrive then
// cancels the minimum-cost residual cycle through the new customer,
// which (when negative) swaps out a more expensive customer. Ids must
// be unique across the session — re-arriving a departed id is
// ErrDuplicateID.
//
// The returned flag reports whether this customer is matched right
// now; later events may re-route or even evict it (fetch the current
// state with Matching).
func (m *DynamicMatcher) Arrive(pt geo.Point, id int64) (bool, error) {
	if m.seen[id] {
		return false, fmt.Errorf("%w: %d", ErrDuplicateID, id)
	}
	m.seen[id] = true
	c := m.g.AddCustomer(pt, 1, id)
	m.ids[id] = c
	m.stats.Events++
	m.stats.Arrivals++
	for {
		augmented, err := m.searchAugment()
		if err != nil {
			return false, err
		}
		if augmented {
			break
		}
		// No free capacity: try swapping in via the new customer's best
		// residual cycle.
		swapped, err := m.g.SwapArrival(c)
		if errors.Is(err, flowgraph.ErrNegativeCycle) {
			if err := m.forceCancel(); err != nil {
				return false, err
			}
			continue
		}
		if err != nil {
			return false, err
		}
		if swapped {
			m.stats.Swaps++
		}
		break
	}
	// From an exact state the arrival step itself preserves optimality;
	// only outstanding debt from earlier budgeted events needs work.
	if !m.exact {
		if err := m.reoptimize(); err != nil {
			return false, err
		}
	}
	m.maybeOracle()
	return m.g.CustomerFull(c), nil
}

// Depart removes a previously arrived customer, releasing any provider
// capacity it held, and repairs the matching: a freed slot may admit a
// waiting customer (augment), and released flow may leave the rest
// mis-routed (cancel cycles, subject to ReoptBudget). It returns
// whether the customer was matched at the moment it left. Departing an
// id that is not currently present is ErrUnknownID.
func (m *DynamicMatcher) Depart(id int64) (bool, error) {
	c, ok := m.ids[id]
	if !ok {
		return false, fmt.Errorf("%w: customer %d", ErrUnknownID, id)
	}
	delete(m.ids, id)
	wasMatched := m.g.CustomerFull(c)
	if err := m.g.RemoveCustomer(c); err != nil {
		return false, err
	}
	m.stats.Events++
	m.stats.Departures++
	if !wasMatched && m.exact {
		// Dropping an unmatched customer only deletes forward edges; no
		// residual cycle or augmenting path can appear.
		m.maybeOracle()
		return false, nil
	}
	if err := m.repair(); err != nil {
		return false, err
	}
	m.maybeOracle()
	return wasMatched, nil
}

// ResizeProvider changes provider i's capacity. Shrinking below the
// provider's current usage evicts its longest assignment edges (the
// evicted customers stay in the pool and are re-routed by the repair);
// growing opens augmenting opportunities for waiting customers. An
// index out of range is ErrUnknownID; a negative capacity is a plain
// validation error.
func (m *DynamicMatcher) ResizeProvider(i, newCap int) error {
	if i < 0 || i >= len(m.providers) {
		return fmt.Errorf("%w: provider %d out of range [0,%d)", ErrUnknownID, i, len(m.providers))
	}
	if newCap < 0 {
		return fmt.Errorf("dynamic: provider %d capacity %d is negative", i, newCap)
	}
	q := int32(i)
	if err := m.g.SetProviderCap(q, newCap); err != nil {
		return err
	}
	m.providers[i].Cap = newCap
	m.stats.Events++
	m.stats.Resizes++
	for m.g.ProviderUsed(q) > newCap {
		if _, err := m.g.EvictLongestAssignment(q); err != nil {
			return err
		}
	}
	if err := m.repair(); err != nil {
		return err
	}
	m.maybeOracle()
	return nil
}

// repair restores the two-stage invariant after a capacity-releasing
// event: augmenting paths until the matching is maximum again (never
// budgeted — feasibility and size are exact under any budget), then
// negative-cycle cancels under the budget.
func (m *DynamicMatcher) repair() error {
	for {
		augmented, err := m.searchAugment()
		if err != nil {
			return err
		}
		if !augmented {
			break
		}
	}
	return m.reoptimize()
}

// searchAugment runs one shortest-augmenting-path step, returning
// whether a path was found and applied. When the search trips over a
// negative cycle left by deferred budget debt, the cycle is canceled
// immediately and the search retried: correctness cannot be deferred,
// so the budget governs only the voluntary optimization pass.
func (m *DynamicMatcher) searchAugment() (bool, error) {
	for {
		_, _, ok, err := m.g.SearchLabelCorrecting()
		if errors.Is(err, flowgraph.ErrNegativeCycle) {
			if err := m.forceCancel(); err != nil {
				return false, err
			}
			continue
		}
		if err != nil {
			return false, err
		}
		if !ok {
			return false, nil
		}
		if err := m.g.Augment(); err != nil {
			return false, err
		}
		m.stats.Augments++
		return true, nil
	}
}

// forceCancel cancels one negative cycle a search just reported. The
// canceler not finding one would mean the detection epsilons diverged
// (see flowgraph.cycleEps) — fail loudly rather than spin.
func (m *DynamicMatcher) forceCancel() error {
	found, err := m.g.CancelNegativeCycle()
	if err != nil {
		return err
	}
	if !found {
		return errors.New("dynamic: search reported a negative cycle the canceler cannot find")
	}
	m.stats.Cycles++
	return nil
}

// reoptimize cancels negative residual cycles until none remain or the
// per-event budget is exhausted, tracking whether the state is exact.
func (m *DynamicMatcher) reoptimize() error {
	for i := 0; ; i++ {
		if m.opts.ReoptBudget > 0 && i >= m.opts.ReoptBudget {
			m.exact = false
			m.stats.Deferred++
			return nil
		}
		found, err := m.g.CancelNegativeCycle()
		if err != nil {
			return err
		}
		if !found {
			m.exact = true
			return nil
		}
		m.stats.Cycles++
	}
}

// maybeOracle runs the periodic full re-solve when configured.
func (m *DynamicMatcher) maybeOracle() {
	if m.opts.OracleEvery > 0 && m.stats.Events%m.opts.OracleEvery == 0 {
		m.OracleDrift()
	}
}

// OracleDrift re-solves the current live instance from scratch with
// the Bellman–Ford reference solver and returns the relative cost
// drift (cost − opt) / opt of the incremental matching, recording it
// in ChurnStats. Zero (to float noise) whenever the matcher is exact.
func (m *DynamicMatcher) OracleDrift() float64 {
	_, opt := flowgraph.RefSolveMetric(flowProviders(m.providers), m.g.LiveCustomers(), 1, m.g.Metric())
	cost := m.g.Cost()
	var drift float64
	switch {
	case opt > 0:
		drift = (cost - opt) / opt
	default:
		drift = cost
	}
	if drift < 0 {
		drift = 0 // float summation noise
	}
	m.stats.OracleChecks++
	m.stats.LastDrift = drift
	if drift > m.stats.MaxDrift {
		m.stats.MaxDrift = drift
	}
	return drift
}

// Stats returns the event and repair counters accumulated so far.
func (m *DynamicMatcher) Stats() ChurnStats { return m.stats }

// Exact reports whether the current matching is known minimum-cost
// (no repair debt outstanding from budgeted events).
func (m *DynamicMatcher) Exact() bool { return m.exact }

// Live returns the number of customers currently present.
func (m *DynamicMatcher) Live() int { return m.g.LiveCount() }

// Capacity returns the current total provider capacity Σ q.k.
func (m *DynamicMatcher) Capacity() int {
	total := 0
	for _, p := range m.providers {
		total += p.Cap
	}
	return total
}

// ProviderCap returns provider i's current capacity (after resizes).
func (m *DynamicMatcher) ProviderCap(i int) int { return m.providers[i].Cap }

// Matching returns the current matching.
func (m *DynamicMatcher) Matching() *Result {
	return finish(m.g, Metrics{})
}

// Size returns the current matching size.
func (m *DynamicMatcher) Size() int { return m.g.AssignedCount() }

// Cost returns the current Ψ(M).
func (m *DynamicMatcher) Cost() float64 { return m.g.Cost() }
