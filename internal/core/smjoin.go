package core

import (
	"time"

	"repro/internal/geo"
	"repro/internal/pqueue"
	"repro/internal/rtree"
)

// SMJoin computes the greedy spatial matching join of the related work
// (§2.3, [12,14]): it repeatedly commits the globally closest
// (provider, customer) pair among providers with remaining capacity and
// unassigned customers. SM performs local assignments and does not
// minimize the global cost Ψ(M) — the quality-ablation benchmark
// contrasts it with the optimal CCA matching.
func SMJoin(providers []Provider, tree *rtree.Tree, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	start := time.Now()
	io := snapshotIO(tree.Buffer())
	m := Metrics{FullGraphEdges: len(providers) * tree.Size()}

	pts := make([]geo.Point, len(providers))
	for i, p := range providers {
		pts[i] = p.Pt
	}
	var nn rtree.NNSource
	if opts.DisableANN {
		nn = rtree.NewPerQueryNN(tree, pts)
	} else {
		nn = rtree.NewANNSearch(tree, pts, opts.Space, opts.ANNGroupSize)
	}
	if !geo.IsEuclidean(opts.Metric) {
		// Greedily committing the globally closest pair only makes sense
		// if "closest" is measured in the cost metric; refine the
		// Euclidean candidate stream into true metric order.
		nn = rtree.NewRefinedNN(nn, pts, opts.Metric)
	}

	gamma, err := gammaFor(providers, tree, opts)
	if err != nil {
		return nil, err
	}

	type cand struct {
		q    int
		item rtree.Item
	}
	var h pqueue.Heap[cand]
	push := func(q int) error {
		item, d, ok, err := nn.Next(q)
		if err != nil {
			return err
		}
		if ok {
			m.NNRetrievals++
			h.Push(cand{q: q, item: item}, d)
		}
		return nil
	}
	for q := range providers {
		if err := push(q); err != nil {
			return nil, err
		}
	}

	assigned := make(map[int64]bool)
	remaining := make([]int, len(providers))
	for i, p := range providers {
		remaining[i] = p.Cap
	}
	var pairs []Pair
	cost := 0.0
	for len(pairs) < gamma && h.Len() > 0 {
		if err := opts.cancelled(); err != nil {
			return nil, err
		}
		top := h.Pop()
		c := top.Value
		if remaining[c.q] == 0 {
			continue // provider already full: drop its candidate stream
		}
		if assigned[c.item.ID] {
			// Customer taken by a closer pair; advance this provider.
			if err := push(c.q); err != nil {
				return nil, err
			}
			continue
		}
		pairs = append(pairs, Pair{Provider: c.q, CustomerID: c.item.ID, CustomerPt: c.item.Pt, Dist: top.Key()})
		cost += top.Key()
		assigned[c.item.ID] = true
		remaining[c.q]--
		if remaining[c.q] > 0 {
			if err := push(c.q); err != nil {
				return nil, err
			}
		}
	}

	m.CPUTime = time.Since(start)
	m.IO = io.delta()
	m.IOTime = m.IO.IOTime()
	return &Result{Pairs: pairs, Cost: cost, Size: len(pairs), Metrics: m}, nil
}
