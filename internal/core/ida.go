package core

import "repro/internal/rtree"

// IDA solves CCA with the Incremental On-demand Algorithm (§3.3,
// Algorithm 4), the paper's best exact method. It improves on NIA in two
// ways:
//
//   - Heap entries of full providers are keyed by q.α + dist(q,p)
//     (Φ(E−Esub)) instead of plain length, since any shortest path
//     through a full provider costs at least q.α. This prunes more edges
//     and terminates iterations earlier.
//   - While no provider is full, Theorem 2 yields each shortest path
//     directly from the heap — the path is {s, q, p, t} for the shortest
//     discovered edge with a non-full customer — so no Dijkstra runs at
//     all during the early iterations.
func IDA(providers []Provider, tree *rtree.Tree, opts Options) (*Result, error) {
	return runIncremental(providers, tree, opts, true)
}

// fastPhase executes the Theorem 2 regime: it pops edges in ascending
// length, inserts them into Esub, and assigns directly until either γ
// is reached, the edge supply is exhausted, or a provider becomes full.
// It returns the number of completed iterations. On leaving the regime
// it installs the equivalent potentials (see flowgraph.LeaveFastPhase).
func (r *incRunner) fastPhase(gamma int) (int, error) {
	g := r.g
	done := 0
	lastLen := 0.0
	entered := false
	for done < gamma {
		if err := r.opts.cancelled(); err != nil {
			return done, err
		}
		e, ok, err := r.pop()
		if err != nil {
			return done, err
		}
		if !ok {
			break // P exhausted
		}
		entered = true
		c := r.ensure(e.item)
		g.AddEdge(e.q, c)
		if g.CustomerFull(c) {
			continue // full customer: edge joins Esub, pop the next one
		}
		// Theorem 2: sp = {s, e.q, c, t}; always valid (the popped edge
		// is the shortest undiscovered-or-discovered edge with a
		// non-full customer, and τmax equals the source potential).
		// With per-pair capacity > 1 the same edge remains the shortest
		// path until either endpoint saturates, so push as many
		// instances as fit (capacitated customers, §4.2).
		n := g.ProviderRemaining(e.q)
		if rem := g.CustomerRemaining(c); rem < n {
			n = rem
		}
		if pc := g.PairCapacity(); pc < n {
			n = pc
		}
		if left := gamma - done; left < n {
			n = left
		}
		for i := 0; i < n; i++ {
			g.DirectAssign(e.q, c, e.dist)
		}
		lastLen = e.dist
		done += n
		if g.ProviderFull(e.q) {
			break // Definition 2: leave the Theorem 2 regime
		}
	}
	if entered {
		g.LeaveFastPhase(lastLen)
	}
	return done, nil
}
