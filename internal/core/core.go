// Package core implements the paper's contribution: exact capacity
// constrained assignment (CCA) algorithms that compute a minimum-cost,
// maximum-size matching between service providers Q (memory-resident,
// capacitated) and customers P (disk-resident, R-tree indexed) without
// materializing the complete bipartite flow graph.
//
// Algorithms:
//
//   - SSPA  (§2.2)  — the classical successive shortest path baseline on
//     the complete bipartite graph;
//   - RIA   (§3.1)  — Range Incremental Algorithm: grows Esub with
//     θ-stepped (annular) range searches around every provider;
//   - NIA   (§3.2)  — Nearest Neighbor Incremental Algorithm: grows Esub
//     one edge at a time via incremental NN search, gated by Theorem 1;
//   - IDA   (§3.3)  — Incremental On-demand Algorithm: NIA plus full-
//     provider-aware heap keys (q.α + dist) and the Theorem 2 fast path;
//   - SMJoin (§2.3) — the greedy exclusive-closest-pair spatial matching
//     baseline (related work; not cost-optimal).
//
// All of RIA/NIA/IDA produce matchings with exactly the same cost as
// SSPA on the full graph (verified by the test suite against an
// independent Bellman–Ford oracle).
package core

import (
	"context"
	"time"

	"repro/internal/flowgraph"
	"repro/internal/geo"
	"repro/internal/rtree"
	"repro/internal/storage"
)

// Provider is a capacitated service provider (a point q with q.k).
type Provider struct {
	Pt  geo.Point
	Cap int
}

// Pair is one assignment in the matching.
type Pair struct {
	Provider   int       // index into the providers slice
	CustomerID int64     // the customer's (R-tree item) identifier
	CustomerPt geo.Point // the customer's location
	Dist       float64   // Euclidean distance of the pair
}

// Metrics records the work an algorithm performed — the quantities the
// paper's evaluation plots (§5.1): subgraph size, CPU time and simulated
// I/O time (10 ms per page fault).
type Metrics struct {
	SubgraphEdges  int           // |Esub| at termination
	FullGraphEdges int           // |Q|·|P|, the paper's FULL reference
	Dijkstras      int           // shortest-path searches started
	Resumes        int           // PUA-repaired resumptions
	Pops           int           // Dijkstra finalizations
	Relaxations    int           // edge relaxations
	Repairs        int           // PUA repair propagations
	RangeSearches  int           // RIA (annular) range searches issued
	NNRetrievals   int           // NIA/IDA nearest neighbors fetched
	KeyUpdates     int           // IDA heap-key updates (full-provider α changes)
	Augments       int           // augmenting iterations run (successful augmentations)
	CPUTime        time.Duration // wall time spent computing
	IO             storage.Stats // buffer activity during the run
	IOTime         time.Duration // simulated I/O time (10 ms per fault)
}

// Result is a computed CCA matching M with its cost Ψ(M) and metrics.
type Result struct {
	Pairs   []Pair
	Cost    float64 // Ψ(M) — the summed Euclidean distance (Equation 1)
	Size    int     // |M|
	Metrics Metrics
}

// Options tunes the exact algorithms. The zero value selects the paper's
// configuration: θ = 0.8, PUA on, Theorem 2 fast path on, grouped ANN on.
type Options struct {
	// Theta is RIA's range increment θ (default 0.8, the paper's tuned
	// value for the [0,1000]² space).
	Theta float64
	// DisablePUA turns off the Dijkstra-state reuse of §3.4.1 (ablation).
	DisablePUA bool
	// DisableTheorem2 turns off IDA's fast path (ablation).
	DisableTheorem2 bool
	// DisableANN uses one independent NN iterator per provider instead
	// of the grouped incremental ANN search of §3.4.2 (ablation).
	DisableANN bool
	// ANNGroupSize is the Hilbert group size for ANN (default 8).
	ANNGroupSize int
	// Space is the data space, used for Hilbert ordering (default
	// [0,1000]², the paper's normalized space).
	Space geo.Rect
	// CustomerCap maps a customer ID to its capacity (default: 1 for
	// every customer). The CA approximation assigns representative
	// weights this way (§4.2).
	CustomerCap func(id int64) int
	// TotalCustomerCap overrides Σ customer capacities when the caller
	// knows it (avoids a full scan); 0 means "use tree size" under unit
	// capacities or a scan otherwise.
	TotalCustomerCap int
	// PairCapacity is the maximum number of matching instances per
	// (q,p) pair; 0 means 1 (the exact CCA setting). CA's concise
	// matching runs with an unbounded pair capacity (§4.2).
	PairCapacity int
	// Metric computes edge costs (default geo.Euclidean). Non-Euclidean
	// metrics must satisfy the lower-bound contract documented on
	// geo.Metric for the exact algorithms' pruning to remain exact.
	Metric geo.Metric
	// Ctx carries the caller's cancellation/deadline into the solve
	// loops: the algorithms check it between augmenting iterations and
	// return its error mid-solve. nil means "never cancelled". The
	// streaming engine threads each submission's context through here.
	Ctx context.Context
	// Shards is the number of spatial regions the "sharded" meta-solver
	// splits one instance into (internal/shard): 0 selects a
	// data-derived automatic count, 1 disables sharding. Ignored by the
	// non-sharded solvers.
	Shards int
	// ShardBoundary is the sharded meta-solver's boundary band width in
	// data-space units: customers whose distance to the nearest foreign-
	// shard provider is within this band of their own shard's nearest
	// provider are re-solved exactly across shards. 0 selects the
	// default (5% of the data-space diagonal). Ignored otherwise.
	ShardBoundary float64
	// ShardWorkers bounds the sharded meta-solver's concurrent shard
	// solves: 0 shares one process-wide GOMAXPROCS pool across all
	// sharded solves (bounded even under a full engine batch of them),
	// a positive value gives each solve a dedicated pool of that width.
	// It changes wall-clock time only, never results: the sharded merge
	// is deterministic by construction.
	ShardWorkers int
	// DistTable controls the bulk distance-table precompute the solver
	// registry runs for network metrics (netmetric.BuildTable): 0 (auto)
	// builds a provider-sourced table when the instance is large enough
	// and the sweep memory fits netmetric.DefaultTableBudget; -1
	// disables the precompute; a positive value overrides the memory
	// budget (in float64 cells). Like ShardWorkers it never changes
	// results — table lookups are byte-identical to point queries (the
	// conformance suite pins this) — so it is excluded from the
	// engine's result-cache digest.
	DistTable int

	// customCaps records whether the caller provided CustomerCap, so
	// γ computation can skip the full scan for unit capacities.
	customCaps bool
}

// cancelled reports the context's error, if a context was supplied.
// The augmenting-iteration loops call it once per iteration — cheap
// relative to the Dijkstra each iteration runs, and frequent enough
// that a cancelled batch solve returns within one iteration.
func (o Options) cancelled() error {
	if o.Ctx == nil {
		return nil
	}
	return o.Ctx.Err()
}

// validityEps absorbs floating-point drift in Theorem 1 comparisons.
// Erring low is safe: it only makes an algorithm insert extra edges.
const validityEps = 1e-9

// DefaultSpace is the paper's normalized data space.
var DefaultSpace = geo.Rect{Min: geo.Point{X: 0, Y: 0}, Max: geo.Point{X: 1000, Y: 1000}}

func (o Options) withDefaults() Options {
	if o.Theta <= 0 {
		o.Theta = 0.8
	}
	if o.ANNGroupSize <= 0 {
		o.ANNGroupSize = rtree.DefaultANNGroupSize
	}
	if o.Space.IsEmpty() {
		o.Space = DefaultSpace
	}
	if o.Metric == nil {
		o.Metric = geo.Euclidean
	}
	o.customCaps = o.CustomerCap != nil
	if o.CustomerCap == nil {
		o.CustomerCap = func(int64) int { return 1 }
	}
	return o
}

func flowProviders(providers []Provider) []flowgraph.Provider {
	out := make([]flowgraph.Provider, len(providers))
	for i, p := range providers {
		out[i] = flowgraph.Provider{Pt: p.Pt, Cap: p.Cap}
	}
	return out
}

// newFlowGraph builds the residual graph configured by opts (metric and
// per-pair capacity). opts must already carry defaults.
func newFlowGraph(providers []Provider, complete bool, opts Options) *flowgraph.Graph {
	g := flowgraph.NewGraph(flowProviders(providers), complete)
	g.SetMetric(opts.Metric)
	g.SetPairCapacity(opts.PairCapacity)
	return g
}

// gammaFor computes γ = min(Σ q.k, Σ p.cap) for a tree-resident P.
func gammaFor(providers []Provider, tree *rtree.Tree, opts Options) (int, error) {
	total := 0
	for _, p := range providers {
		total += p.Cap
	}
	custTotal := opts.TotalCustomerCap
	if custTotal == 0 {
		custTotal = tree.Size()
		if opts.customCaps {
			items, err := tree.All()
			if err != nil {
				return 0, err
			}
			custTotal = 0
			for _, it := range items {
				custTotal += opts.CustomerCap(it.ID)
			}
		}
	}
	if custTotal < total {
		total = custTotal
	}
	return total, nil
}

// finish extracts the result from a solved graph.
func finish(g *flowgraph.Graph, m Metrics) *Result {
	pairs := g.Pairs()
	out := make([]Pair, len(pairs))
	cost := 0.0
	for i, p := range pairs {
		out[i] = Pair{Provider: p.Provider, CustomerID: p.CustID, CustomerPt: p.CustPt, Dist: p.Dist}
		cost += p.Dist
	}
	st := g.Stats()
	m.SubgraphEdges = g.EdgeCount()
	m.Dijkstras = st.Dijkstras
	m.Resumes = st.Resumes
	m.Pops = st.Pops
	m.Relaxations = st.Relaxations
	m.Repairs = st.Repairs
	return &Result{Pairs: out, Cost: cost, Size: len(out), Metrics: m}
}

// ioSnapshot captures buffer stats so a run can report only its own I/O.
type ioSnapshot struct {
	buf  *storage.Buffer
	base storage.Stats
}

func snapshotIO(buf *storage.Buffer) ioSnapshot {
	if buf == nil {
		return ioSnapshot{}
	}
	return ioSnapshot{buf: buf, base: buf.Stats()}
}

func (s ioSnapshot) delta() storage.Stats {
	if s.buf == nil {
		return storage.Stats{}
	}
	now := s.buf.Stats()
	return storage.Stats{
		Hits:           now.Hits - s.base.Hits,
		Faults:         now.Faults - s.base.Faults,
		PhysicalReads:  now.PhysicalReads - s.base.PhysicalReads,
		PhysicalWrites: now.PhysicalWrites - s.base.PhysicalWrites,
	}
}
