package core

import (
	"math"
	"strings"
	"testing"

	"repro/internal/flowgraph"
	"repro/internal/geo"
	"repro/internal/rtree"
)

// The Hungarian reduction must match the flow-based optimum exactly.
func TestHungarianMatchesOptimal(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		in := genInstance(t, 3, 25, 4, 700+seed) // slots=12 < |P|=25
		res, err := HungarianAssign(in.providers, in.items, Options{})
		if err != nil {
			t.Fatal(err)
		}
		want := in.refCost()
		if math.Abs(res.Cost-want) > 1e-6*(1+want) {
			t.Fatalf("seed %d: Hungarian cost %v want %v", seed, res.Cost, want)
		}
		if res.Size != 12 {
			t.Fatalf("size %d want 12", res.Size)
		}
		checkValid(t, in, res, 12)
	}
}

// Over-capacitated orientation (|P| < slots) exercises the transposed
// matrix path.
func TestHungarianOverCapacitated(t *testing.T) {
	in := genInstance(t, 3, 10, 6, 800) // slots=18 > |P|=10
	res, err := HungarianAssign(in.providers, in.items, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := in.refCost()
	if math.Abs(res.Cost-want) > 1e-6*(1+want) {
		t.Fatalf("cost %v want %v", res.Cost, want)
	}
	if res.Size != 10 {
		t.Fatalf("size %d want 10", res.Size)
	}
}

func TestHungarianEmpty(t *testing.T) {
	res, err := HungarianAssign(nil, nil, Options{})
	if err != nil || res.Size != 0 {
		t.Fatalf("empty: %v %+v", err, res)
	}
	res, err = HungarianAssign([]Provider{{Pt: geo.Point{X: 1, Y: 1}, Cap: 2}}, nil, Options{})
	if err != nil || res.Size != 0 {
		t.Fatalf("no customers: %v %+v", err, res)
	}
}

// The §2.1 blow-up guard: absurd matrix sizes are refused with a clear
// error instead of exhausting memory.
func TestHungarianRefusesHugeMatrix(t *testing.T) {
	providers := []Provider{{Pt: geo.Point{X: 0, Y: 0}, Cap: 100000}}
	items := make([]rtree.Item, 100000)
	for i := range items {
		items[i] = rtree.Item{ID: int64(i), Pt: geo.Point{X: float64(i % 1000), Y: float64(i / 1000)}}
	}
	_, err := HungarianAssign(providers, items, Options{})
	if err == nil || !strings.Contains(err.Error(), "IDA") {
		t.Fatalf("expected the matrix blow-up refusal, got %v", err)
	}
}

// Hungarian must agree with SSPA and respect customer uniqueness when
// providers coincide (degenerate distances).
func TestHungarianDegenerate(t *testing.T) {
	providers := []Provider{
		{Pt: geo.Point{X: 5, Y: 5}, Cap: 2},
		{Pt: geo.Point{X: 5, Y: 5}, Cap: 2},
	}
	items := []rtree.Item{
		{ID: 0, Pt: geo.Point{X: 5, Y: 6}},
		{ID: 1, Pt: geo.Point{X: 5, Y: 4}},
		{ID: 2, Pt: geo.Point{X: 6, Y: 5}},
	}
	res, err := HungarianAssign(providers, items, Options{})
	if err != nil {
		t.Fatal(err)
	}
	customers := make([]flowgraph.Customer, len(items))
	for i, it := range items {
		customers[i] = flowgraph.Customer{Pt: it.Pt, Cap: 1, ExtID: it.ID}
	}
	_, want := flowgraph.RefSolve(flowProviders(providers), customers)
	if math.Abs(res.Cost-want) > 1e-9 {
		t.Fatalf("cost %v want %v", res.Cost, want)
	}
	seen := map[int64]bool{}
	for _, p := range res.Pairs {
		if seen[p.CustomerID] {
			t.Fatal("customer assigned twice")
		}
		seen[p.CustomerID] = true
	}
}
