package core

import (
	"math"
	"time"

	"repro/internal/flowgraph"
	"repro/internal/geo"
	"repro/internal/obs"
	"repro/internal/pqueue"
	"repro/internal/rtree"
)

// edgeEntry is a candidate edge e(q, p) held in the NIA/IDA heap H.
// Exactly one entry per provider is in the heap at any time (§3.2).
type edgeEntry struct {
	q    int32
	item rtree.Item
	dist float64
}

// incRunner carries the state shared by NIA and IDA: the growing flow
// graph, the candidate-edge heap H, and the incremental NN source.
type incRunner struct {
	g       *flowgraph.Graph
	tree    *rtree.Tree
	nn      rtree.NNSource
	heap    pqueue.Heap[edgeEntry]
	handles []*pqueue.Item[edgeEntry] // per-provider heap handle
	custIdx map[int64]int32
	opts    Options
	metrics *Metrics
	idaKeys bool // key entries by q.α + dist instead of dist (IDA)
}

func newIncRunner(providers []Provider, tree *rtree.Tree, opts Options, m *Metrics, idaKeys bool) (*incRunner, error) {
	pts := make([]geo.Point, len(providers))
	for i, p := range providers {
		pts[i] = p.Pt
	}
	var nn rtree.NNSource
	if opts.DisableANN {
		nn = rtree.NewPerQueryNN(tree, pts)
	} else {
		nn = rtree.NewANNSearch(tree, pts, opts.Space, opts.ANNGroupSize)
	}
	if !geo.IsEuclidean(opts.Metric) {
		// Non-Euclidean metric (e.g. road-network distance): the R-tree
		// streams candidates in ascending Euclidean order, which only
		// lower-bounds the true edge cost. Re-key the stream through the
		// refinement heap so H pops edges in true metric order — that is
		// what keeps the Theorem 1 gate (and IDA's Theorem 2 fast phase)
		// exact under any lower-bounded metric.
		nn = rtree.NewRefinedNN(nn, pts, opts.Metric)
	}
	g := newFlowGraph(providers, false, opts)
	r := &incRunner{
		g:       g,
		tree:    tree,
		nn:      nn,
		handles: make([]*pqueue.Item[edgeEntry], len(providers)),
		custIdx: make(map[int64]int32),
		opts:    opts,
		metrics: m,
		idaKeys: idaKeys,
	}
	// Seed H with every provider's first NN (Lines 3-5).
	for q := range providers {
		if err := r.enqueueNext(int32(q)); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// key computes the heap key of an edge: its length for NIA; q.α + length
// for IDA, where a full provider's α lower-bounds any path through it.
func (r *incRunner) key(e edgeEntry) float64 {
	if r.idaKeys && r.g.ProviderFull(e.q) {
		return r.g.LastAlpha(e.q) + e.dist
	}
	return e.dist
}

// enqueueNext fetches provider q's next nearest neighbor and inserts the
// corresponding edge into H.
func (r *incRunner) enqueueNext(q int32) error {
	item, d, ok, err := r.nn.Next(int(q))
	if err != nil {
		return err
	}
	if !ok {
		r.handles[q] = nil // P exhausted for q
		return nil
	}
	r.metrics.NNRetrievals++
	e := edgeEntry{q: q, item: item, dist: d}
	r.handles[q] = r.heap.Push(e, r.key(e))
	return nil
}

// pop removes the top edge from H and replenishes its provider's entry.
func (r *incRunner) pop() (edgeEntry, bool, error) {
	top := r.heap.Pop()
	if top == nil {
		return edgeEntry{}, false, nil
	}
	e := top.Value
	r.handles[e.q] = nil
	if err := r.enqueueNext(e.q); err != nil {
		return edgeEntry{}, false, err
	}
	return e, true, nil
}

// topKey returns Φ(E−Esub): the least possible cost through any
// undiscovered edge (∞ when every edge has been discovered).
func (r *incRunner) topKey() float64 {
	if top := r.heap.Peek(); top != nil {
		return top.Key()
	}
	return math.Inf(1)
}

// refreshKeys re-keys heap entries of full providers whose α changed in
// the last search (IDA Lines 10-12).
func (r *incRunner) refreshKeys() {
	if !r.idaKeys {
		return
	}
	for _, h := range r.handles {
		if h == nil || !h.InHeap() {
			continue
		}
		want := r.key(h.Value)
		if want != h.Key() {
			r.metrics.KeyUpdates++
			r.heap.Update(h, want)
		}
	}
}

// ensure registers a customer in the flow graph on first encounter.
func (r *incRunner) ensure(it rtree.Item) int32 {
	if idx, ok := r.custIdx[it.ID]; ok {
		return idx
	}
	idx := r.g.AddCustomer(it.Pt, r.opts.CustomerCap(it.ID), it.ID)
	r.custIdx[it.ID] = idx
	return idx
}

// runIteration performs one NIA/IDA outer-loop iteration: pop an edge,
// insert it, search, and keep popping/inserting until the shortest path
// passes the Theorem 1 validity test; then augment. Returns false when
// neither a path nor more edges exist (max flow reached).
func (r *incRunner) runIteration() (bool, error) {
	g := r.g
	// Line 7-10: de-heap the top edge, insert into Esub, fetch next NN.
	e, ok, err := r.pop()
	if err != nil {
		return false, err
	}
	first := true
	if ok {
		g.AddEdge(e.q, r.ensure(e.item))
	}
	for {
		if first {
			g.BeginIteration()
			first = false
		}
		_, cost, found := g.Search()
		r.refreshKeys()
		if found && cost <= r.topKey()-g.TauMax()+validityEps {
			if err := g.Augment(); err != nil {
				return false, err
			}
			return true, nil
		}
		// Invalid path (or none): discover the next edge and retry.
		e, ok, err = r.pop()
		if err != nil {
			return false, err
		}
		if !ok {
			// No undiscovered edges remain; the current path (if any)
			// is the true shortest path.
			if found {
				if err := g.Augment(); err != nil {
					return false, err
				}
				return true, nil
			}
			return false, nil
		}
		c := r.ensure(e.item)
		if r.opts.DisablePUA {
			g.AddEdge(e.q, c)
			first = true // restart Dijkstra from scratch
		} else {
			g.InsertEdgeAndRepair(e.q, c)
		}
	}
}

// NIA solves CCA with the Nearest Neighbor Incremental Algorithm (§3.2,
// Algorithm 3): Esub grows one edge at a time in ascending length order
// via incremental NN search, and Theorem 1 certifies each augmenting
// path against the shortest undiscovered edge (TopKey(H)).
func NIA(providers []Provider, tree *rtree.Tree, opts Options) (*Result, error) {
	return runIncremental(providers, tree, opts, false)
}

func runIncremental(providers []Provider, tree *rtree.Tree, opts Options, ida bool) (*Result, error) {
	opts = opts.withDefaults()
	start := time.Now()
	io := snapshotIO(tree.Buffer())
	m := Metrics{FullGraphEdges: len(providers) * tree.Size()}
	span := obs.FromContext(opts.Ctx)

	build := span.StartChild("flowgraph-build")
	r, err := newIncRunner(providers, tree, opts, &m, ida)
	build.End()
	if err != nil {
		return nil, err
	}
	// Deferred so every exit — including mid-solve cancellation — hands
	// the Dijkstra scratch back to the pool.
	defer r.g.Release()
	gamma, err := gammaFor(providers, tree, opts)
	if err != nil {
		return nil, err
	}

	done, fastDone := 0, 0
	aug := span.StartChild("augment")
	defer func() {
		aug.SetInt("iterations", int64(done))
		aug.SetInt("fast_iterations", int64(fastDone))
		aug.End()
	}()
	if ida && !opts.DisableTheorem2 {
		done, err = r.fastPhase(gamma)
		if err != nil {
			return nil, err
		}
		fastDone = done
	}
	for ; done < gamma; done++ {
		if err := opts.cancelled(); err != nil {
			return nil, err
		}
		ok, err := r.runIteration()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
	}

	m.Augments = done
	m.CPUTime = time.Since(start)
	m.IO = io.delta()
	m.IOTime = m.IO.IOTime()
	return finish(r.g, m), nil
}
