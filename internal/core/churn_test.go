package core

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/datagen"
	"repro/internal/flowgraph"
	"repro/internal/geo"
	"repro/internal/geo/netmetric"
)

// The churn conformance suite replays randomized arrive/depart/resize
// sequences against the Bellman–Ford full re-solve oracle. At every
// step the matching must be feasible and maximum; with an unlimited
// re-opt budget it must *be* the optimum (identical pair set under
// Euclidean, cost-identical to float noise under the network metric);
// with a bounded budget the cost drift must stay under the documented
// ceiling.

// churnDriftCeiling is the documented per-step drift bound for any
// ReoptBudget >= 1 over the conformance workloads (README "Online
// matching"). Measured maxima sit well under half of this.
const churnDriftCeiling = 0.10

// churnMirror tracks the instance the matcher should currently hold,
// for from-scratch oracle re-solves.
type churnMirror struct {
	providers []Provider
	order     []int64 // live ids in arrival order (deterministic oracle input)
	pts       map[int64]geo.Point
}

func newChurnMirror(providers []Provider) *churnMirror {
	own := make([]Provider, len(providers))
	copy(own, providers)
	return &churnMirror{providers: own, pts: map[int64]geo.Point{}}
}

func (o *churnMirror) arrive(id int64, pt geo.Point) {
	o.order = append(o.order, id)
	o.pts[id] = pt
}

func (o *churnMirror) depart(id int64) {
	delete(o.pts, id)
	for i, v := range o.order {
		if v == id {
			o.order = append(o.order[:i], o.order[i+1:]...)
			break
		}
	}
}

func (o *churnMirror) customers() []flowgraph.Customer {
	out := make([]flowgraph.Customer, 0, len(o.order))
	for _, id := range o.order {
		out = append(out, flowgraph.Customer{Pt: o.pts[id], Cap: 1, ExtID: id})
	}
	return out
}

func (o *churnMirror) solve(metric geo.Metric) ([]flowgraph.Pair, float64) {
	return flowgraph.RefSolveMetric(flowProviders(o.providers), o.customers(), 1, metric)
}

// pairKey canonicalizes a matching for set comparison.
func pairKey(provider int, custID int64) string {
	return fmt.Sprintf("%d:%d", provider, custID)
}

func matcherPairSet(m *DynamicMatcher) map[string]float64 {
	out := map[string]float64{}
	for _, p := range m.Matching().Pairs {
		out[pairKey(p.Provider, p.CustomerID)] = p.Dist
	}
	return out
}

func oraclePairSet(pairs []flowgraph.Pair) map[string]float64 {
	out := map[string]float64{}
	for _, p := range pairs {
		out[pairKey(p.Provider, p.CustID)] = p.Dist
	}
	return out
}

// checkFeasible validates the snapshot against the mirror: capacity
// conservation, no duplicate or departed customers, distances from the
// metric, and cost/size agreeing with a recount.
func checkFeasible(t *testing.T, step int, m *DynamicMatcher, o *churnMirror, metric geo.Metric) {
	t.Helper()
	if metric == nil {
		metric = geo.Euclidean
	}
	res := m.Matching()
	used := make(map[int]int)
	seen := make(map[int64]bool)
	cost := 0.0
	for _, p := range res.Pairs {
		used[p.Provider]++
		if seen[p.CustomerID] {
			t.Fatalf("step %d: customer %d matched twice", step, p.CustomerID)
		}
		seen[p.CustomerID] = true
		pt, live := o.pts[p.CustomerID]
		if !live {
			t.Fatalf("step %d: departed customer %d still matched", step, p.CustomerID)
		}
		if d := metric.Dist(o.providers[p.Provider].Pt, pt); d != p.Dist {
			t.Fatalf("step %d: pair (%d,%d) dist %v, metric says %v", step, p.Provider, p.CustomerID, p.Dist, d)
		}
		cost += p.Dist
	}
	for q, u := range used {
		if u > o.providers[q].Cap {
			t.Fatalf("step %d: provider %d carries %d > cap %d", step, q, u, o.providers[q].Cap)
		}
	}
	if len(res.Pairs) != m.Size() {
		t.Fatalf("step %d: Size() %d != recount %d", step, m.Size(), len(res.Pairs))
	}
	if math.Abs(cost-m.Cost()) > 1e-9*(1+cost) {
		t.Fatalf("step %d: Cost() %v != recount %v", step, m.Cost(), cost)
	}
}

// churnEvent is one generated conformance event.
type churnEvent struct {
	kind     int // 0 arrive, 1 depart, 2 resize
	id       int64
	pt       geo.Point
	provider int
	newCap   int
}

// genChurnEvents builds a deterministic random event stream with all
// three event kinds. maxCap bounds resize targets; departs pick a
// random live id.
func genChurnEvents(rng *rand.Rand, n, nq, maxCap int) []churnEvent {
	var events []churnEvent
	var live []int64
	nextID := int64(0)
	for len(events) < n {
		r := rng.Float64()
		switch {
		case r < 0.55 || len(live) == 0:
			pt := geo.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}
			events = append(events, churnEvent{kind: 0, id: nextID, pt: pt})
			live = append(live, nextID)
			nextID++
		case r < 0.85:
			i := rng.Intn(len(live))
			events = append(events, churnEvent{kind: 1, id: live[i]})
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
		default:
			events = append(events, churnEvent{
				kind:     2,
				provider: rng.Intn(nq),
				newCap:   rng.Intn(maxCap + 1), // 0 allowed: full capacity shock
			})
		}
	}
	return events
}

// applyChurnEvent drives one event into both the matcher and the
// mirror.
func applyChurnEvent(t *testing.T, m *DynamicMatcher, o *churnMirror, ev churnEvent) {
	t.Helper()
	switch ev.kind {
	case 0:
		if _, err := m.Arrive(ev.pt, ev.id); err != nil {
			t.Fatalf("arrive %d: %v", ev.id, err)
		}
		o.arrive(ev.id, ev.pt)
	case 1:
		if _, err := m.Depart(ev.id); err != nil {
			t.Fatalf("depart %d: %v", ev.id, err)
		}
		o.depart(ev.id)
	case 2:
		if err := m.ResizeProvider(ev.provider, ev.newCap); err != nil {
			t.Fatalf("resize %d->%d: %v", ev.provider, ev.newCap, err)
		}
		o.providers[ev.provider].Cap = ev.newCap
	}
}

// runChurnConformance replays events, checking the matcher against the
// oracle after every single event.
func runChurnConformance(t *testing.T, providers []Provider, events []churnEvent, opts DynamicOptions, exactPairs bool) {
	t.Helper()
	m := NewDynamicMatcherOpts(providers, opts)
	o := newChurnMirror(providers)
	metric := opts.Metric
	if metric == nil {
		metric = geo.Euclidean
	}
	for step, ev := range events {
		applyChurnEvent(t, m, o, ev)
		checkFeasible(t, step, m, o, metric)
		refPairs, refCost := o.solve(metric)
		if m.Size() != len(refPairs) {
			t.Fatalf("step %d (%+v): size %d, oracle %d", step, ev, m.Size(), len(refPairs))
		}
		cost := m.Cost()
		if opts.ReoptBudget == 0 {
			if math.Abs(cost-refCost) > 1e-9*(1+refCost) {
				t.Fatalf("step %d (%+v): cost %v, oracle %v", step, ev, cost, refCost)
			}
			if exactPairs {
				got, want := matcherPairSet(m), oraclePairSet(refPairs)
				if len(got) != len(want) {
					t.Fatalf("step %d: %d pairs vs oracle %d", step, len(got), len(want))
				}
				for k, d := range want {
					if gd, ok := got[k]; !ok || gd != d {
						t.Fatalf("step %d: pair %s missing or dist %v != oracle %v", step, k, got[k], d)
					}
				}
			}
		} else {
			if cost < refCost-1e-9*(1+refCost) {
				t.Fatalf("step %d: cost %v below oracle optimum %v — infeasible oracle or broken recount", step, cost, refCost)
			}
			drift := 0.0
			if refCost > 0 {
				drift = (cost - refCost) / refCost
			}
			if drift > churnDriftCeiling {
				t.Fatalf("step %d: drift %.4f exceeds documented ceiling %.2f (cost %v, opt %v)",
					step, drift, churnDriftCeiling, cost, refCost)
			}
		}
	}
}

func churnProviders(rng *rand.Rand, nq, lo, hi int) []Provider {
	out := make([]Provider, nq)
	for i := range out {
		out[i] = Provider{
			Pt:  geo.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100},
			Cap: lo + rng.Intn(hi-lo+1),
		}
	}
	return out
}

// Unlimited budget, Euclidean: every step must be the exact optimum,
// pair-for-pair. Tight (total capacity ~ a third of peak live set) and
// loose capacity regimes; >= 1k events total across the seeds.
func TestChurnConformanceEuclideanExact(t *testing.T) {
	cases := []struct {
		name       string
		seed       int64
		nq, lo, hi int
		events     int
	}{
		{"tight", 1, 5, 1, 3, 400},
		{"loose", 2, 6, 3, 6, 400},
		{"single-provider", 3, 1, 1, 2, 200},
		{"many-providers", 4, 12, 1, 2, 300},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(tc.seed))
			providers := churnProviders(rng, tc.nq, tc.lo, tc.hi)
			events := genChurnEvents(rng, tc.events, tc.nq, tc.hi+2)
			runChurnConformance(t, providers, events, DynamicOptions{}, true)
		})
	}
}

// Unlimited budget under the road-network metric: cost must match the
// oracle exactly (to float noise) at every step. Pair sets are not
// compared — network distances can tie across distinct assignments.
func TestChurnConformanceNetworkExact(t *testing.T) {
	net := datagen.NewNetwork(12, geo.Rect{Min: geo.Point{X: 0, Y: 0}, Max: geo.Point{X: 100, Y: 100}}, 2008)
	metric := netmetric.FromNetwork(net)
	rng := rand.New(rand.NewSource(7))
	qpts := net.Points(datagen.Config{N: 5, Seed: 8})
	providers := make([]Provider, len(qpts))
	for i, pt := range qpts {
		providers[i] = Provider{Pt: pt, Cap: 1 + rng.Intn(3)}
	}
	// Customers must sit on the network too for meaningful distances.
	cpts := net.Points(datagen.Config{N: 400, Seed: 9})
	events := genChurnEvents(rng, 350, len(providers), 4)
	next := 0
	for i := range events {
		if events[i].kind == 0 {
			events[i].pt = cpts[next]
			next++
		}
	}
	runChurnConformance(t, providers, events, DynamicOptions{Metric: metric}, false)
}

// Bounded budgets: feasibility and maximality stay exact at every
// step, and the cost drift stays under the documented ceiling.
func TestChurnConformanceBudgeted(t *testing.T) {
	for _, budget := range []int{1, 2, 8} {
		t.Run(fmt.Sprintf("budget=%d", budget), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(100 + budget)))
			providers := churnProviders(rng, 6, 1, 3)
			events := genChurnEvents(rng, 400, 6, 5)
			runChurnConformance(t, providers, events, DynamicOptions{ReoptBudget: budget}, false)
		})
	}
}

// The named datagen scenarios replay exactly against the oracle under
// an unlimited budget — the generators emit only valid event streams
// and the matcher stays optimal through all of them.
func TestChurnScenariosMatchOracle(t *testing.T) {
	space := geo.Rect{Min: geo.Point{X: 0, Y: 0}, Max: geo.Point{X: 100, Y: 100}}
	net := datagen.NewNetwork(8, space, 2008)
	for _, name := range datagen.ChurnScenarios() {
		t.Run(name, func(t *testing.T) {
			w, err := datagen.NewChurn(name, net, datagen.ChurnConfig{Events: 300, Providers: 6, Seed: 42})
			if err != nil {
				t.Fatal(err)
			}
			providers := make([]Provider, len(w.Providers))
			for i, p := range w.Providers {
				providers[i] = Provider{Pt: p.Pt, Cap: p.Cap}
			}
			m := NewDynamicMatcherOpts(providers, DynamicOptions{})
			o := newChurnMirror(providers)
			for step, ev := range w.Events {
				switch ev.Kind {
				case datagen.EventArrive:
					if _, err := m.Arrive(ev.Pt, ev.ID); err != nil {
						t.Fatalf("step %d arrive: %v", step, err)
					}
					o.arrive(ev.ID, ev.Pt)
				case datagen.EventDepart:
					if _, err := m.Depart(ev.ID); err != nil {
						t.Fatalf("step %d depart: %v", step, err)
					}
					o.depart(ev.ID)
				case datagen.EventResize:
					if err := m.ResizeProvider(ev.Provider, ev.NewCap); err != nil {
						t.Fatalf("step %d resize: %v", step, err)
					}
					o.providers[ev.Provider].Cap = ev.NewCap
				}
				if step%10 == 0 || step == len(w.Events)-1 {
					checkFeasible(t, step, m, o, nil)
					_, refCost := o.solve(nil)
					if math.Abs(m.Cost()-refCost) > 1e-9*(1+refCost) {
						t.Fatalf("step %d: cost %v, oracle %v", step, m.Cost(), refCost)
					}
				}
			}
			st := m.Stats()
			if st.Events != len(w.Events) {
				t.Fatalf("stats counted %d events, replayed %d", st.Events, len(w.Events))
			}
		})
	}
}

// Sentinel errors: duplicate arrivals (including re-arriving a
// departed id) and unknown departures/resizes must be typed.
func TestChurnSentinelErrors(t *testing.T) {
	m := NewDynamicMatcher([]Provider{{Pt: geo.Point{X: 0, Y: 0}, Cap: 1}})
	if _, err := m.Arrive(geo.Point{X: 1, Y: 1}, 7); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Arrive(geo.Point{X: 2, Y: 2}, 7); !errors.Is(err, ErrDuplicateID) {
		t.Fatalf("duplicate arrival: got %v, want ErrDuplicateID", err)
	}
	if _, err := m.Depart(99); !errors.Is(err, ErrUnknownID) {
		t.Fatalf("unknown depart: got %v, want ErrUnknownID", err)
	}
	if _, err := m.Depart(7); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Depart(7); !errors.Is(err, ErrUnknownID) {
		t.Fatalf("double depart: got %v, want ErrUnknownID", err)
	}
	if _, err := m.Arrive(geo.Point{X: 3, Y: 3}, 7); !errors.Is(err, ErrDuplicateID) {
		t.Fatalf("re-arrival of departed id: got %v, want ErrDuplicateID", err)
	}
	if err := m.ResizeProvider(5, 1); !errors.Is(err, ErrUnknownID) {
		t.Fatalf("out-of-range resize: got %v, want ErrUnknownID", err)
	}
	if err := m.ResizeProvider(0, -1); err == nil || errors.Is(err, ErrUnknownID) {
		t.Fatalf("negative capacity: got %v, want a plain validation error", err)
	}
}

// Directed micro-scenarios where the repair provably matters.
func TestChurnDepartRepairsDisplacedCustomer(t *testing.T) {
	// A at 0 (cap 1), B at 10 (cap 1). c0 at 4 takes A; c1 at 1 arrives
	// and re-routes c0 to B. When c1 departs, c0 must move back to A.
	providers := []Provider{
		{Pt: geo.Point{X: 0, Y: 0}, Cap: 1},
		{Pt: geo.Point{X: 10, Y: 0}, Cap: 1},
	}
	m := NewDynamicMatcher(providers)
	mustArrive := func(x float64, id int64) {
		if _, err := m.Arrive(geo.Point{X: x, Y: 0}, id); err != nil {
			t.Fatal(err)
		}
	}
	mustArrive(4, 0)
	mustArrive(1, 1)
	if pairFor(m, 0) != 1 {
		t.Fatalf("setup: c0 should be displaced to B, got %d", pairFor(m, 0))
	}
	wasMatched, err := m.Depart(1)
	if err != nil {
		t.Fatal(err)
	}
	if !wasMatched {
		t.Fatal("c1 was matched when it departed")
	}
	if q := pairFor(m, 0); q != 0 {
		t.Fatalf("after depart, c0 should return to A, got %d", q)
	}
	if m.Size() != 1 || math.Abs(m.Cost()-4) > 1e-9 {
		t.Fatalf("final state: size %d cost %v, want 1 / 4", m.Size(), m.Cost())
	}
}

func TestChurnResizeShrinkEvictsAndGrowReadmits(t *testing.T) {
	// One provider, cap 2, three customers; shrink to 1 must keep only
	// the closest, grow to 3 must re-admit the waiting two.
	providers := []Provider{{Pt: geo.Point{X: 0, Y: 0}, Cap: 2}}
	m := NewDynamicMatcher(providers)
	for i, x := range []float64{5, 3, 8} {
		if _, err := m.Arrive(geo.Point{X: x, Y: 0}, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if m.Size() != 2 || math.Abs(m.Cost()-8) > 1e-9 { // 3 + 5
		t.Fatalf("setup: size %d cost %v, want 2 / 8", m.Size(), m.Cost())
	}
	if err := m.ResizeProvider(0, 1); err != nil {
		t.Fatal(err)
	}
	if m.Size() != 1 || math.Abs(m.Cost()-3) > 1e-9 {
		t.Fatalf("after shrink: size %d cost %v, want 1 / 3 (closest kept)", m.Size(), m.Cost())
	}
	if err := m.ResizeProvider(0, 3); err != nil {
		t.Fatal(err)
	}
	if m.Size() != 3 || math.Abs(m.Cost()-16) > 1e-9 {
		t.Fatalf("after grow: size %d cost %v, want 3 / 16", m.Size(), m.Cost())
	}
	if err := m.ResizeProvider(0, 0); err != nil {
		t.Fatal(err)
	}
	if m.Size() != 0 || m.Cost() != 0 {
		t.Fatalf("after shock to 0: size %d cost %v", m.Size(), m.Cost())
	}
}

// Drift bookkeeping: with an unlimited budget the periodic oracle must
// read (near) zero drift; with budget 1 under heavy churn the deferred
// counter moves and MaxDrift stays under the ceiling.
func TestChurnDriftStats(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	providers := churnProviders(rng, 6, 1, 3)
	events := genChurnEvents(rng, 300, 6, 5)

	exact := NewDynamicMatcherOpts(providers, DynamicOptions{OracleEvery: 25})
	o := newChurnMirror(providers)
	for _, ev := range events {
		applyChurnEvent(t, exact, o, ev)
	}
	st := exact.Stats()
	if st.OracleChecks == 0 {
		t.Fatal("OracleEvery never fired")
	}
	if st.MaxDrift > 1e-9 {
		t.Fatalf("unlimited budget drifted: MaxDrift %v", st.MaxDrift)
	}
	if !exact.Exact() {
		t.Fatal("unlimited-budget matcher lost exactness")
	}

	budgeted := NewDynamicMatcherOpts(providers, DynamicOptions{ReoptBudget: 1, OracleEvery: 10})
	o2 := newChurnMirror(providers)
	for _, ev := range events {
		applyChurnEvent(t, budgeted, o2, ev)
	}
	st2 := budgeted.Stats()
	if st2.OracleChecks == 0 {
		t.Fatal("budgeted OracleEvery never fired")
	}
	if st2.MaxDrift > churnDriftCeiling {
		t.Fatalf("budget=1 MaxDrift %v exceeds ceiling %v", st2.MaxDrift, churnDriftCeiling)
	}
	if st2.Events != len(events) {
		t.Fatalf("events %d, want %d", st2.Events, len(events))
	}
}
