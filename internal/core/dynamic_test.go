package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/flowgraph"
	"repro/internal/geo"
)

// Online arrivals must reproduce the batch optimum after every prefix —
// the successive-shortest-path invariant that makes DynamicMatcher
// correct.
func TestDynamicMatchesBatchOnEveryPrefix(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	providers := randDynProviders(4, 3, rng)
	m := NewDynamicMatcher(providers)
	var arrived []flowgraph.Customer
	for i := 0; i < 30; i++ {
		pt := geo.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}
		arrived = append(arrived, flowgraph.Customer{Pt: pt, Cap: 1, ExtID: int64(i)})
		matched, err := m.Arrive(pt, int64(i))
		if err != nil {
			t.Fatal(err)
		}
		if i < 12 && !matched { // 4 providers × cap 3: capacity remains
			t.Fatalf("arrival %d should always match", i)
		}
		if size := m.Size(); size != min(i+1, 12) {
			t.Fatalf("arrival %d: size %d want %d", i, size, min(i+1, 12))
		}
		_, wantCost := flowgraph.RefSolve(flowProviders(providers), arrived)
		if math.Abs(m.Cost()-wantCost) > 1e-6*(1+wantCost) {
			t.Fatalf("after %d arrivals: cost %v want %v", i+1, m.Cost(), wantCost)
		}
	}
}

func randDynProviders(n, k int, rng *rand.Rand) []Provider {
	out := make([]Provider, n)
	for i := range out {
		out[i] = Provider{
			Pt:  geo.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100},
			Cap: k,
		}
	}
	return out
}

// Property: for random instances and arrival orders, the final dynamic
// matching equals the batch optimum.
func TestDynamicOrderInvariance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		providers := randDynProviders(2+rng.Intn(4), 1+rng.Intn(3), rng)
		n := 5 + rng.Intn(20)
		customers := make([]flowgraph.Customer, n)
		for i := range customers {
			customers[i] = flowgraph.Customer{
				Pt:    geo.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100},
				Cap:   1,
				ExtID: int64(i),
			}
		}
		m := NewDynamicMatcher(providers)
		for _, i := range rng.Perm(n) {
			if _, err := m.Arrive(customers[i].Pt, customers[i].ExtID); err != nil {
				return false
			}
		}
		_, wantCost := flowgraph.RefSolve(flowProviders(providers), customers)
		return math.Abs(m.Cost()-wantCost) <= 1e-6*(1+wantCost)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// The matching snapshot must validate like any batch result.
func TestDynamicMatchingSnapshot(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	providers := randDynProviders(3, 2, rng)
	m := NewDynamicMatcher(providers)
	for i := 0; i < 10; i++ {
		if _, err := m.Arrive(geo.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	res := m.Matching()
	if res.Size != 6 || m.Size() != 6 {
		t.Fatalf("size %d want 6", res.Size)
	}
	used := map[int]int{}
	seen := map[int64]bool{}
	for _, p := range res.Pairs {
		used[p.Provider]++
		if seen[p.CustomerID] {
			t.Fatal("duplicate customer")
		}
		seen[p.CustomerID] = true
	}
	for q, u := range used {
		if u > providers[q].Cap {
			t.Fatalf("provider %d over capacity", q)
		}
	}
	if math.Abs(res.Cost-m.Cost()) > 1e-9 {
		t.Fatalf("snapshot cost %v != matcher cost %v", res.Cost, m.Cost())
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// pairFor returns the provider index customer id is currently matched
// to, or -1.
func pairFor(m *DynamicMatcher, id int64) int {
	for _, p := range m.Matching().Pairs {
		if p.CustomerID == id {
			return p.Provider
		}
	}
	return -1
}

// Arrivals after capacity exhaustion: the swap path must evict a more
// expensive earlier customer for a strictly closer newcomer, keep the
// size pinned at Γ, and leave the matching the batch optimum; a worse
// newcomer must change nothing. This is the path the server's session
// /arrive endpoint rides once a session's providers fill up.
func TestDynamicArrivalsAfterExhaustion(t *testing.T) {
	providers := []Provider{{Pt: geo.Point{X: 0, Y: 0}, Cap: 2}}
	m := NewDynamicMatcher(providers)

	for i, x := range []float64{50, 40} {
		matched, err := m.Arrive(geo.Point{X: x, Y: 0}, int64(i))
		if err != nil {
			t.Fatal(err)
		}
		if !matched {
			t.Fatalf("arrival %d should match: capacity remains", i)
		}
	}
	if m.Size() != 2 || m.Cost() != 90 {
		t.Fatalf("pre-exhaustion state: size %d cost %v, want 2 / 90", m.Size(), m.Cost())
	}

	// Capacity exhausted. A closer customer evicts the most expensive one.
	matched, err := m.Arrive(geo.Point{X: 10, Y: 0}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !matched {
		t.Fatal("closer arrival after exhaustion should swap in")
	}
	if m.Size() != 2 {
		t.Fatalf("size grew past capacity: %d", m.Size())
	}
	if m.Cost() != 50 {
		t.Fatalf("cost after swap = %v, want 40+10 = 50", m.Cost())
	}
	if q := pairFor(m, 0); q != -1 {
		t.Fatalf("customer 0 (dist 50) should be evicted, still on provider %d", q)
	}
	if pairFor(m, 1) != 0 || pairFor(m, 2) != 0 {
		t.Fatal("customers 1 and 2 should hold the two slots")
	}

	// A farther customer must be rejected and change nothing.
	matched, err = m.Arrive(geo.Point{X: 60, Y: 0}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if matched {
		t.Fatal("farther arrival must not displace anyone")
	}
	if m.Size() != 2 || m.Cost() != 50 {
		t.Fatalf("rejected arrival mutated the matching: size %d cost %v", m.Size(), m.Cost())
	}

	// The snapshot equals the batch optimum over everything that arrived.
	all := []flowgraph.Customer{
		{Pt: geo.Point{X: 50, Y: 0}, Cap: 1, ExtID: 0},
		{Pt: geo.Point{X: 40, Y: 0}, Cap: 1, ExtID: 1},
		{Pt: geo.Point{X: 10, Y: 0}, Cap: 1, ExtID: 2},
		{Pt: geo.Point{X: 60, Y: 0}, Cap: 1, ExtID: 3},
	}
	_, wantCost := flowgraph.RefSolve(flowProviders(providers), all)
	if math.Abs(m.Cost()-wantCost) > 1e-9 {
		t.Fatalf("cost %v differs from batch optimum %v", m.Cost(), wantCost)
	}
}

// A later arrival can displace an earlier customer onto a different
// provider (re-route along the augmenting path) without evicting it:
// c0 initially takes the near provider A, then c1 arrives even nearer
// to A, and the optimum re-routes c0 to the far provider B.
func TestDynamicLaterArrivalReRoutes(t *testing.T) {
	providers := []Provider{
		{Pt: geo.Point{X: 0, Y: 0}, Cap: 1},  // A
		{Pt: geo.Point{X: 10, Y: 0}, Cap: 1}, // B
	}
	m := NewDynamicMatcher(providers)

	if matched, err := m.Arrive(geo.Point{X: 4, Y: 0}, 0); err != nil || !matched {
		t.Fatalf("c0: matched=%v err=%v", matched, err)
	}
	if pairFor(m, 0) != 0 {
		t.Fatalf("c0 should start on provider A, got %d", pairFor(m, 0))
	}

	// c1 at x=1: optimum is c1→A (1) + c0→B (6) = 7, beating c1→B (9) +
	// c0→A (4) = 13 — so c0 must be re-routed from A to B.
	if matched, err := m.Arrive(geo.Point{X: 1, Y: 0}, 1); err != nil || !matched {
		t.Fatalf("c1: matched=%v err=%v", matched, err)
	}
	if m.Size() != 2 {
		t.Fatalf("size = %d, want 2", m.Size())
	}
	if pairFor(m, 1) != 0 {
		t.Fatalf("c1 should take provider A, got %d", pairFor(m, 1))
	}
	if pairFor(m, 0) != 1 {
		t.Fatalf("c0 should be re-routed to provider B, got %d", pairFor(m, 0))
	}
	if math.Abs(m.Cost()-7) > 1e-9 {
		t.Fatalf("cost = %v, want 7", m.Cost())
	}
}

// Eviction + re-route combined, pinned against the batch oracle after
// every arrival: a capacity-1 chain where each newcomer cascades the
// previous assignments. Catches any optimality drift in the swap path
// (SwapArrival) that single-step tests cannot see.
func TestDynamicEvictionCascadeMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	providers := randDynProviders(3, 1, rng) // Γ = 3: exhausted quickly
	m := NewDynamicMatcher(providers)
	var arrived []flowgraph.Customer
	evictions := 0
	for i := 0; i < 24; i++ {
		pt := geo.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}
		arrived = append(arrived, flowgraph.Customer{Pt: pt, Cap: 1, ExtID: int64(i)})
		before := map[int64]bool{}
		for _, p := range m.Matching().Pairs {
			before[p.CustomerID] = true
		}
		if _, err := m.Arrive(pt, int64(i)); err != nil {
			t.Fatal(err)
		}
		for _, p := range m.Matching().Pairs {
			delete(before, p.CustomerID)
		}
		evictions += len(before) // earlier customers displaced out entirely
		if i >= 2 && m.Size() != 3 {
			t.Fatalf("arrival %d: size %d, want Γ=3", i, m.Size())
		}
		_, wantCost := flowgraph.RefSolve(flowProviders(providers), arrived)
		if math.Abs(m.Cost()-wantCost) > 1e-6*(1+wantCost) {
			t.Fatalf("after arrival %d: cost %v, want batch optimum %v", i, m.Cost(), wantCost)
		}
	}
	if evictions == 0 {
		t.Fatal("24 arrivals into Γ=3 never displaced anyone — swap path untested")
	}
}
