package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/flowgraph"
	"repro/internal/geo"
)

// Online arrivals must reproduce the batch optimum after every prefix —
// the successive-shortest-path invariant that makes DynamicMatcher
// correct.
func TestDynamicMatchesBatchOnEveryPrefix(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	providers := randDynProviders(4, 3, rng)
	m := NewDynamicMatcher(providers)
	var arrived []flowgraph.Customer
	for i := 0; i < 30; i++ {
		pt := geo.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}
		arrived = append(arrived, flowgraph.Customer{Pt: pt, Cap: 1, ExtID: int64(i)})
		matched, err := m.Arrive(pt, int64(i))
		if err != nil {
			t.Fatal(err)
		}
		if i < 12 && !matched { // 4 providers × cap 3: capacity remains
			t.Fatalf("arrival %d should always match", i)
		}
		if size := m.Size(); size != min(i+1, 12) {
			t.Fatalf("arrival %d: size %d want %d", i, size, min(i+1, 12))
		}
		_, wantCost := flowgraph.RefSolve(flowProviders(providers), arrived)
		if math.Abs(m.Cost()-wantCost) > 1e-6*(1+wantCost) {
			t.Fatalf("after %d arrivals: cost %v want %v", i+1, m.Cost(), wantCost)
		}
	}
}

func randDynProviders(n, k int, rng *rand.Rand) []Provider {
	out := make([]Provider, n)
	for i := range out {
		out[i] = Provider{
			Pt:  geo.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100},
			Cap: k,
		}
	}
	return out
}

// Property: for random instances and arrival orders, the final dynamic
// matching equals the batch optimum.
func TestDynamicOrderInvariance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		providers := randDynProviders(2+rng.Intn(4), 1+rng.Intn(3), rng)
		n := 5 + rng.Intn(20)
		customers := make([]flowgraph.Customer, n)
		for i := range customers {
			customers[i] = flowgraph.Customer{
				Pt:    geo.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100},
				Cap:   1,
				ExtID: int64(i),
			}
		}
		m := NewDynamicMatcher(providers)
		for _, i := range rng.Perm(n) {
			if _, err := m.Arrive(customers[i].Pt, customers[i].ExtID); err != nil {
				return false
			}
		}
		_, wantCost := flowgraph.RefSolve(flowProviders(providers), customers)
		return math.Abs(m.Cost()-wantCost) <= 1e-6*(1+wantCost)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// The matching snapshot must validate like any batch result.
func TestDynamicMatchingSnapshot(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	providers := randDynProviders(3, 2, rng)
	m := NewDynamicMatcher(providers)
	for i := 0; i < 10; i++ {
		if _, err := m.Arrive(geo.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	res := m.Matching()
	if res.Size != 6 || m.Size() != 6 {
		t.Fatalf("size %d want 6", res.Size)
	}
	used := map[int]int{}
	seen := map[int64]bool{}
	for _, p := range res.Pairs {
		used[p.Provider]++
		if seen[p.CustomerID] {
			t.Fatal("duplicate customer")
		}
		seen[p.CustomerID] = true
	}
	for q, u := range used {
		if u > providers[q].Cap {
			t.Fatalf("provider %d over capacity", q)
		}
	}
	if math.Abs(res.Cost-m.Cost()) > 1e-9 {
		t.Fatalf("snapshot cost %v != matcher cost %v", res.Cost, m.Cost())
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
