package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/flowgraph"
	"repro/internal/geo"
	"repro/internal/rtree"
	"repro/internal/storage"
)

// instance is a random CCA problem plus its R-tree.
type instance struct {
	providers []Provider
	items     []rtree.Item
	tree      *rtree.Tree
	buf       *storage.Buffer
}

// genInstance builds a clustered instance reminiscent of §5.1: most
// customers in a few dense clusters, the rest uniform.
func genInstance(t *testing.T, nq, nc, k int, seed int64) *instance {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	providers := make([]Provider, nq)
	for i := range providers {
		providers[i] = Provider{
			Pt:  geo.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000},
			Cap: k,
		}
	}
	items := make([]rtree.Item, nc)
	nClusters := 4
	centers := make([]geo.Point, nClusters)
	for i := range centers {
		centers[i] = geo.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}
	}
	for i := range items {
		var pt geo.Point
		if rng.Float64() < 0.8 {
			c := centers[rng.Intn(nClusters)]
			pt = geo.Point{
				X: clamp(c.X+rng.NormFloat64()*40, 0, 1000),
				Y: clamp(c.Y+rng.NormFloat64()*40, 0, 1000),
			}
		} else {
			pt = geo.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}
		}
		items[i] = rtree.Item{ID: int64(i), Pt: pt}
	}
	buf := storage.NewBuffer(storage.NewMemStore(1024), 256)
	tree, err := rtree.Bulk(buf, items)
	if err != nil {
		t.Fatal(err)
	}
	return &instance{providers: providers, items: items, tree: tree, buf: buf}
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// refCost computes the optimal cost with the independent oracle.
func (in *instance) refCost() float64 {
	customers := make([]flowgraph.Customer, len(in.items))
	for i, it := range in.items {
		customers[i] = flowgraph.Customer{Pt: it.Pt, Cap: 1, ExtID: it.ID}
	}
	_, cost := flowgraph.RefSolve(flowProviders(in.providers), customers)
	return cost
}

func checkValid(t *testing.T, in *instance, res *Result, wantSize int) {
	t.Helper()
	if res.Size != wantSize {
		t.Fatalf("matching size %d want %d", res.Size, wantSize)
	}
	provUsed := make([]int, len(in.providers))
	custSeen := make(map[int64]bool)
	sum := 0.0
	for _, p := range res.Pairs {
		provUsed[p.Provider]++
		if custSeen[p.CustomerID] {
			t.Fatalf("customer %d assigned twice", p.CustomerID)
		}
		custSeen[p.CustomerID] = true
		sum += p.Dist
	}
	for q, u := range provUsed {
		if u > in.providers[q].Cap {
			t.Fatalf("provider %d over capacity: %d > %d", q, u, in.providers[q].Cap)
		}
	}
	if math.Abs(sum-res.Cost) > 1e-6 {
		t.Fatalf("Cost field %v does not match pair sum %v", res.Cost, sum)
	}
}

// All exact algorithms, under every optimization toggle, must equal the
// oracle's optimal cost.
func TestExactAlgorithmsOptimal(t *testing.T) {
	cases := []struct {
		name      string
		nq, nc, k int
	}{
		{"under-capacitated", 4, 60, 5}, // k·|Q| < |P|: providers fill up
		{"over-capacitated", 4, 30, 10}, // k·|Q| > |P|: customers run out
		{"exact fit", 3, 30, 10},
		{"single provider", 1, 25, 10},
		{"k=1 matching", 6, 40, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for seed := int64(0); seed < 4; seed++ {
				in := genInstance(t, tc.nq, tc.nc, tc.k, 900+seed)
				want := in.refCost()
				gamma := tc.nq * tc.k
				if tc.nc < gamma {
					gamma = tc.nc
				}

				check := func(name string, res *Result, err error) {
					t.Helper()
					if err != nil {
						t.Fatalf("%s: %v", name, err)
					}
					checkValid(t, in, res, gamma)
					if math.Abs(res.Cost-want) > 1e-6*(1+want) {
						t.Fatalf("%s seed %d: cost %v want %v", name, seed, res.Cost, want)
					}
				}

				sspaRes, sspaErr := SSPA(in.providers, in.items, Options{})
				check("SSPA", sspaRes, sspaErr)
				res, err := RIA(in.providers, in.tree, Options{Theta: 25})
				check("RIA", res, err)
				res, err = NIA(in.providers, in.tree, Options{})
				check("NIA", res, err)
				res, err = IDA(in.providers, in.tree, Options{})
				check("IDA", res, err)
				res, err = NIA(in.providers, in.tree, Options{DisablePUA: true, DisableANN: true})
				check("NIA-noPUA-noANN", res, err)
				res, err = IDA(in.providers, in.tree, Options{DisableTheorem2: true})
				check("IDA-noT2", res, err)
				res, err = IDA(in.providers, in.tree, Options{DisablePUA: true, DisableTheorem2: true, DisableANN: true})
				check("IDA-bare", res, err)
				res, err = IDA(in.providers, in.tree, Options{ANNGroupSize: 2})
				check("IDA-ann2", res, err)
			}
		})
	}
}

// Mixed capacities (Figure 12's configuration) must also be optimal.
func TestMixedCapacities(t *testing.T) {
	rng := rand.New(rand.NewSource(321))
	for trial := 0; trial < 5; trial++ {
		in := genInstance(t, 5, 50, 1, int64(200+trial))
		total := 0
		for i := range in.providers {
			in.providers[i].Cap = 1 + rng.Intn(6)
			total += in.providers[i].Cap
		}
		want := in.refCost()
		gamma := total
		if len(in.items) < gamma {
			gamma = len(in.items)
		}
		for name, run := range map[string]func() (*Result, error){
			"RIA": func() (*Result, error) { return RIA(in.providers, in.tree, Options{Theta: 30}) },
			"NIA": func() (*Result, error) { return NIA(in.providers, in.tree, Options{}) },
			"IDA": func() (*Result, error) { return IDA(in.providers, in.tree, Options{}) },
		} {
			res, err := run()
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			checkValid(t, in, res, gamma)
			if math.Abs(res.Cost-want) > 1e-6*(1+want) {
				t.Fatalf("%s trial %d: cost %v want %v", name, trial, res.Cost, want)
			}
		}
	}
}

// The incremental algorithms must explore far fewer edges than the
// complete bipartite graph (the point of Theorem 1).
func TestSubgraphPruning(t *testing.T) {
	in := genInstance(t, 8, 400, 10, 42)
	full := 8 * 400
	for name, run := range map[string]func() (*Result, error){
		"RIA": func() (*Result, error) { return RIA(in.providers, in.tree, Options{Theta: 25}) },
		"NIA": func() (*Result, error) { return NIA(in.providers, in.tree, Options{}) },
		"IDA": func() (*Result, error) { return IDA(in.providers, in.tree, Options{}) },
	} {
		res, err := run()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Metrics.SubgraphEdges >= full/2 {
			t.Errorf("%s explored %d of %d edges — pruning ineffective",
				name, res.Metrics.SubgraphEdges, full)
		}
		if res.Metrics.FullGraphEdges != full {
			t.Errorf("%s: FullGraphEdges = %d want %d", name, res.Metrics.FullGraphEdges, full)
		}
	}
}

// IDA must prune at least as well as NIA when providers fill up
// (k·|Q| < |P|, Figure 9's observation).
func TestIDAPrunesMoreThanNIA(t *testing.T) {
	in := genInstance(t, 6, 300, 8, 77) // 48 slots for 300 customers
	nia, err := NIA(in.providers, in.tree, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ida, err := IDA(in.providers, in.tree, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ida.Metrics.SubgraphEdges > nia.Metrics.SubgraphEdges {
		t.Errorf("IDA explored %d edges, NIA %d — expected IDA <= NIA",
			ida.Metrics.SubgraphEdges, nia.Metrics.SubgraphEdges)
	}
}

// With every q.k > |P| no provider can ever fill, so IDA's Theorem 2
// fast path must complete the entire matching without a Dijkstra run.
func TestIDATheorem2FastPath(t *testing.T) {
	in := genInstance(t, 4, 40, 41, 11) // no provider can fill
	res, err := IDA(in.providers, in.tree, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Dijkstras != 0 {
		t.Errorf("fast path should avoid Dijkstra entirely, ran %d", res.Metrics.Dijkstras)
	}
	if math.Abs(res.Cost-in.refCost()) > 1e-6 {
		t.Errorf("fast path cost %v want %v", res.Cost, in.refCost())
	}
}

// SMJoin is greedy: always valid and full-size, never cheaper than the
// optimum (and typically more expensive on clustered data).
func TestSMJoinGreedy(t *testing.T) {
	in := genInstance(t, 5, 100, 10, 13)
	res, err := SMJoin(in.providers, in.tree, Options{})
	if err != nil {
		t.Fatal(err)
	}
	checkValid(t, in, res, 50)
	want := in.refCost()
	if res.Cost < want-1e-6 {
		t.Fatalf("greedy beat the optimum: %v < %v", res.Cost, want)
	}
}

// PUA must reduce Dijkstra work: with reuse on, the same matching is
// produced with fewer node finalizations.
func TestPUAReducesWork(t *testing.T) {
	in := genInstance(t, 6, 300, 8, 99)
	withPUA, err := NIA(in.providers, in.tree, Options{})
	if err != nil {
		t.Fatal(err)
	}
	without, err := NIA(in.providers, in.tree, Options{DisablePUA: true})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(withPUA.Cost-without.Cost) > 1e-6 {
		t.Fatalf("PUA changed the result: %v vs %v", withPUA.Cost, without.Cost)
	}
	if withPUA.Metrics.Pops >= without.Metrics.Pops {
		t.Errorf("PUA did not reduce pops: %d vs %d",
			withPUA.Metrics.Pops, without.Metrics.Pops)
	}
}

// Customer-side capacities (used by the CA refinement) stay optimal.
func TestCustomerCapacitiesViaOptions(t *testing.T) {
	in := genInstance(t, 3, 12, 6, 55)
	caps := map[int64]int{}
	rng := rand.New(rand.NewSource(56))
	total := 0
	for _, it := range in.items {
		caps[it.ID] = 1 + rng.Intn(3)
		total += caps[it.ID]
	}
	opts := Options{
		CustomerCap:      func(id int64) int { return caps[id] },
		TotalCustomerCap: total,
	}
	res, err := IDA(in.providers, in.tree, opts)
	if err != nil {
		t.Fatal(err)
	}
	customers := make([]flowgraph.Customer, len(in.items))
	for i, it := range in.items {
		customers[i] = flowgraph.Customer{Pt: it.Pt, Cap: caps[it.ID], ExtID: it.ID}
	}
	refPairs, refCost := flowgraph.RefSolve(flowProviders(in.providers), customers)
	if res.Size != len(refPairs) {
		t.Fatalf("size %d want %d", res.Size, len(refPairs))
	}
	if math.Abs(res.Cost-refCost) > 1e-6*(1+refCost) {
		t.Fatalf("cost %v want %v", res.Cost, refCost)
	}
}

// Empty edge cases.
func TestEmptyInputs(t *testing.T) {
	buf := storage.NewBuffer(storage.NewMemStore(1024), 16)
	tree, err := rtree.Bulk(buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	providers := []Provider{{Pt: geo.Point{X: 1, Y: 1}, Cap: 3}}
	for name, run := range map[string]func() (*Result, error){
		"RIA": func() (*Result, error) { return RIA(providers, tree, Options{Theta: 100}) },
		"NIA": func() (*Result, error) { return NIA(providers, tree, Options{}) },
		"IDA": func() (*Result, error) { return IDA(providers, tree, Options{}) },
		"SM":  func() (*Result, error) { return SMJoin(providers, tree, Options{}) },
	} {
		res, err := run()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Size != 0 || res.Cost != 0 {
			t.Fatalf("%s on empty P: %+v", name, res)
		}
	}
	if res, err := SSPA(nil, nil, Options{}); err != nil || res.Size != 0 {
		t.Fatalf("SSPA with no providers: %+v", res)
	}
}

// I/O accounting: a disk-resident run must report faults and the 10ms
// cost model.
func TestIOMetrics(t *testing.T) {
	in := genInstance(t, 4, 500, 8, 7)
	in.buf.DropCache()
	res, err := IDA(in.providers, in.tree, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.IO.Faults == 0 {
		t.Fatal("expected page faults on a cold cache")
	}
	wantIO := res.Metrics.IO.IOTime()
	if res.Metrics.IOTime != wantIO {
		t.Fatalf("IOTime %v want %v", res.Metrics.IOTime, wantIO)
	}
	if res.Metrics.CPUTime <= 0 {
		t.Fatal("CPU time not recorded")
	}
}
