package server_test

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	cca "repro"
	"repro/client"
	"repro/internal/datagen"
	"repro/internal/server"
)

// crashableServer boots a server whose durable state can be abandoned
// mid-flight: the returned crash func kills the listener and the engine
// but never calls srv.Close, so open WAL handles are simply dropped —
// the in-process analogue of SIGKILL. Every acknowledged event was
// fsynced, so the on-disk state is exactly what a real crash leaves.
func crashableServer(t *testing.T, cfg server.Config) (testHarness, func()) {
	t.Helper()
	if cfg.Engine == nil {
		cfg.Engine = &cca.Engine{Workers: 4}
	}
	srv, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	crash := func() {
		hs.Close()
		cfg.Engine.Close()
	}
	return testHarness{c: client.New(hs.URL, hs.Client()), srv: srv, engine: cfg.Engine, url: hs.URL}, crash
}

// rawMatching fetches GET /v1/sessions/{id}/matching as raw bytes — the
// strongest byte-identity witness the wire offers.
func rawMatching(t *testing.T, url, id string) []byte {
	t.Helper()
	resp, err := http.Get(url + "/v1/sessions/" + id + "/matching")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("matching: status %d: %s", resp.StatusCode, body)
	}
	return body
}

// applyChurnEvent drives one generated event through the HTTP session
// and the in-process reference matcher, asserting exact agreement.
func applyChurnEvent(t *testing.T, c *client.Client, id string, ref *cca.DynamicMatcher, i int, ev datagen.Event) {
	t.Helper()
	ctx := context.Background()
	switch ev.Kind {
	case datagen.EventArrive:
		resp, err := c.Arrive(ctx, id, client.ArriveRequest{ID: ev.ID, X: ev.Pt.X, Y: ev.Pt.Y})
		if err != nil {
			t.Fatalf("event %d arrive: %v", i, err)
		}
		wantMatched, err := ref.Arrive(cca.Point{X: ev.Pt.X, Y: ev.Pt.Y}, ev.ID)
		if err != nil {
			t.Fatalf("event %d ref arrive: %v", i, err)
		}
		if resp.Matched != wantMatched || resp.Size != ref.Size() || resp.Cost != ref.Cost() {
			t.Fatalf("event %d arrive: got (%v,%d,%v), in-process (%v,%d,%v)",
				i, resp.Matched, resp.Size, resp.Cost, wantMatched, ref.Size(), ref.Cost())
		}
	case datagen.EventDepart:
		resp, err := c.Depart(ctx, id, client.DepartRequest{ID: ev.ID})
		if err != nil {
			t.Fatalf("event %d depart: %v", i, err)
		}
		wantMatched, err := ref.Depart(ev.ID)
		if err != nil {
			t.Fatalf("event %d ref depart: %v", i, err)
		}
		if resp.WasMatched != wantMatched || resp.Size != ref.Size() || resp.Cost != ref.Cost() {
			t.Fatalf("event %d depart: got (%v,%d,%v), in-process (%v,%d,%v)",
				i, resp.WasMatched, resp.Size, resp.Cost, wantMatched, ref.Size(), ref.Cost())
		}
	case datagen.EventResize:
		resp, err := c.Resize(ctx, id, client.ResizeRequest{Provider: ev.Provider, Cap: ev.NewCap})
		if err != nil {
			t.Fatalf("event %d resize: %v", i, err)
		}
		if err := ref.ResizeProvider(ev.Provider, ev.NewCap); err != nil {
			t.Fatalf("event %d ref resize: %v", i, err)
		}
		if resp.Size != ref.Size() || resp.Cost != ref.Cost() || resp.Capacity != ref.Capacity() {
			t.Fatalf("event %d resize: got (%d,%v,%d), in-process (%d,%v,%d)",
				i, resp.Size, resp.Cost, resp.Capacity, ref.Size(), ref.Cost(), ref.Capacity())
		}
	}
}

// TestSessionCrashRecoveryConformance is the durability acceptance
// test: for every churn scenario generator, a session driven over HTTP
// with persistence on, crashed (no drain, no close), and recovered by a
// fresh server boot must serve a /matching byte-identical to both the
// pre-crash response and an uninterrupted in-process DynamicMatcher —
// and must keep accepting churn events conformantly afterwards.
func TestSessionCrashRecoveryConformance(t *testing.T) {
	for _, scenario := range []string{"ridehail", "delivery", "evacuation", "diurnal"} {
		t.Run(scenario, func(t *testing.T) {
			state := t.TempDir()
			w := churnWorkload(t, scenario, 160, 5, 41)
			core, wire := sessionProviders(w)
			split := len(w.Events) * 3 / 4

			a, crash := crashableServer(t, server.Config{StateDir: state, SnapshotEvery: 16})
			info, err := a.c.NewSession(context.Background(), client.SessionRequest{Providers: wire})
			if err != nil {
				t.Fatal(err)
			}
			if !info.Persisted {
				t.Fatal("session with a state dir must report persisted")
			}
			ref := cca.NewDynamicMatcherOpts(core, cca.DynamicOptions{})
			for i, ev := range w.Events[:split] {
				applyChurnEvent(t, a.c, info.ID, ref, i, ev)
			}
			pre := rawMatching(t, a.url, info.ID)
			crash()

			b := testServer(t, server.Config{StateDir: state, SnapshotEvery: 16})
			if n := b.srv.RecoveredSessions(); n != 1 {
				t.Fatalf("recovered %d sessions, want 1", n)
			}
			post := rawMatching(t, b.url, info.ID)
			if !bytes.Equal(pre, post) {
				t.Fatalf("recovered matching differs from pre-crash bytes:\n got %.300s…\nwant %.300s…", post, pre)
			}

			// The recovered session is live, not a read-only replica: the
			// rest of the stream must stay conformant with the in-process
			// matcher that never crashed.
			for i, ev := range w.Events[split:] {
				applyChurnEvent(t, b.c, info.ID, ref, split+i, ev)
			}
			res := ref.Matching()
			got, err := b.c.Matching(context.Background(), info.ID)
			if err != nil {
				t.Fatal(err)
			}
			if got.Size != res.Size || got.Cost != res.Cost {
				t.Fatalf("final matching: got size %d cost %v, in-process size %d cost %v",
					got.Size, got.Cost, res.Size, res.Cost)
			}
		})
	}
}

// TestSessionCrashRecoveryNetworkMetric: the WAL header carries the
// metric configuration, so a network-metric session must recover
// byte-identically too (the replay goes through the same network memo).
func TestSessionCrashRecoveryNetworkMetric(t *testing.T) {
	state := t.TempDir()
	w := churnWorkload(t, "ridehail", 80, 4, 7)
	_, wire := sessionProviders(w)

	a, crash := crashableServer(t, server.Config{StateDir: state})
	info, err := a.c.NewSession(context.Background(), client.SessionRequest{
		Providers: wire, Metric: "network", NetGrid: 8, NetSeed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, ev := range w.Events {
		ctx := context.Background()
		switch ev.Kind {
		case datagen.EventArrive:
			if _, err := a.c.Arrive(ctx, info.ID, client.ArriveRequest{ID: ev.ID, X: ev.Pt.X, Y: ev.Pt.Y}); err != nil {
				t.Fatalf("event %d: %v", i, err)
			}
		case datagen.EventDepart:
			if _, err := a.c.Depart(ctx, info.ID, client.DepartRequest{ID: ev.ID}); err != nil {
				t.Fatalf("event %d: %v", i, err)
			}
		case datagen.EventResize:
			if _, err := a.c.Resize(ctx, info.ID, client.ResizeRequest{Provider: ev.Provider, Cap: ev.NewCap}); err != nil {
				t.Fatalf("event %d: %v", i, err)
			}
		}
	}
	pre := rawMatching(t, a.url, info.ID)
	crash()

	b := testServer(t, server.Config{StateDir: state})
	if n := b.srv.RecoveredSessions(); n != 1 {
		t.Fatalf("recovered %d sessions, want 1", n)
	}
	if post := rawMatching(t, b.url, info.ID); !bytes.Equal(pre, post) {
		t.Fatalf("network-metric session diverged after recovery:\n got %.300s…\nwant %.300s…", post, pre)
	}
}

// TestSessionWALGarbageTail: a crash can leave garbage past the last
// fsynced record (a torn or preallocated page). Recovery must truncate
// to the valid prefix and serve the session — every acknowledged event
// survives, the garbage does not become a phantom record.
func TestSessionWALGarbageTail(t *testing.T) {
	state := t.TempDir()
	a, crash := crashableServer(t, server.Config{StateDir: state})
	info, err := a.c.NewSession(context.Background(), client.SessionRequest{
		Providers: []client.Provider{{X: 0, Y: 0, Cap: 4}},
	})
	if err != nil {
		t.Fatal(err)
	}
	for id := int64(1); id <= 3; id++ {
		if _, err := a.c.Arrive(context.Background(), info.ID, client.ArriveRequest{ID: id, X: float64(id), Y: 0}); err != nil {
			t.Fatal(err)
		}
	}
	pre := rawMatching(t, a.url, info.ID)
	crash()

	// Append one page of 0xFF garbage to the WAL — its frame length is
	// absurd, so the scan must treat it as a torn tail.
	walPath := filepath.Join(state, "sessions", info.ID+".wal")
	junk := bytes.Repeat([]byte{0xFF}, 1024)
	f, err := os.OpenFile(walPath, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(junk); err != nil {
		t.Fatal(err)
	}
	f.Close()

	b := testServer(t, server.Config{StateDir: state})
	if n := b.srv.RecoveredSessions(); n != 1 {
		t.Fatalf("recovered %d sessions, want 1", n)
	}
	if post := rawMatching(t, b.url, info.ID); !bytes.Equal(pre, post) {
		t.Fatalf("matching diverged after garbage-tail recovery:\n got %s\nwant %s", post, pre)
	}
	// The recovered log must accept appends cleanly after the truncation.
	if _, err := b.c.Arrive(context.Background(), info.ID, client.ArriveRequest{ID: 4, X: 4, Y: 0}); err != nil {
		t.Fatal(err)
	}
}

// metricsText scrapes /metrics.
func metricsText(t *testing.T, h testHarness) string {
	t.Helper()
	text, err := h.c.Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return text
}

// waitForMetric polls /metrics until line appears (the sweeper runs on
// its own ticker, so expiry is asynchronous).
func waitForMetric(t *testing.T, h testHarness, line string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if strings.Contains(metricsText(t, h), line) {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("metrics never showed %q", line)
}

// TestSessionTTLSweeper: an idle persisted session is checkpointed and
// unloaded by the TTL sweeper, then transparently reloaded — with a
// byte-identical matching and its arrival counter intact — when touched
// again.
func TestSessionTTLSweeper(t *testing.T) {
	state := t.TempDir()
	h := testServer(t, server.Config{
		StateDir:   state,
		SessionTTL: 50 * time.Millisecond,
	})
	ctx := context.Background()
	info, err := h.c.NewSession(ctx, client.SessionRequest{
		Providers: []client.Provider{{X: 0, Y: 0, Cap: 5}},
	})
	if err != nil {
		t.Fatal(err)
	}
	var lastArrivals int
	for id := int64(1); id <= 3; id++ {
		resp, err := h.c.Arrive(ctx, info.ID, client.ArriveRequest{ID: id, X: float64(id), Y: float64(id)})
		if err != nil {
			t.Fatal(err)
		}
		lastArrivals = resp.Arrivals
	}
	pre := rawMatching(t, h.url, info.ID)

	waitForMetric(t, h, "ccad_sessions_expired_total 1")
	waitForMetric(t, h, "ccad_sessions_active 0")
	if _, err := os.Stat(filepath.Join(state, "sessions", info.ID+".snap")); err != nil {
		t.Fatalf("unload must leave a checkpoint snapshot: %v", err)
	}

	// Touch: the read reloads the session from its WAL.
	if post := rawMatching(t, h.url, info.ID); !bytes.Equal(pre, post) {
		t.Fatalf("reloaded matching differs:\n got %s\nwant %s", post, pre)
	}
	text := metricsText(t, h)
	if !strings.Contains(text, "ccad_sessions_reloaded_total 1") {
		t.Fatal("metrics missing ccad_sessions_reloaded_total 1")
	}
	// The arrival counter (and with it the MaxArrivals bound) must
	// survive the unload/reload cycle.
	resp, err := h.c.Arrive(ctx, info.ID, client.ArriveRequest{ID: 4, X: 4, Y: 4})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Arrivals != lastArrivals+1 {
		t.Fatalf("arrivals after reload = %d, want %d", resp.Arrivals, lastArrivals+1)
	}
}

// TestSessionTTLWithoutPersistence: -session-ttl without -state-dir
// discards idle sessions outright — the documented in-memory behavior.
func TestSessionTTLWithoutPersistence(t *testing.T) {
	h := testServer(t, server.Config{SessionTTL: 50 * time.Millisecond})
	ctx := context.Background()
	info, err := h.c.NewSession(ctx, client.SessionRequest{
		Providers: []client.Provider{{Cap: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if info.Persisted {
		t.Fatal("session without a state dir must not report persisted")
	}
	waitForMetric(t, h, "ccad_sessions_expired_total 1")
	if _, err := h.c.Matching(ctx, info.ID); statusOf(err) != http.StatusNotFound {
		t.Fatalf("expired in-memory session: %v, want 404", err)
	}
}

// TestSessionDeleteAccounting pins the lifecycle counters — active =
// created + recovered + reloaded − deleted − expired — and that DELETE
// stays allowed during drain (an orchestrated shutdown cleans up its
// own sessions; wedging it on its own drain would deadlock teardown).
func TestSessionDeleteAccounting(t *testing.T) {
	h := testServer(t, server.Config{})
	ctx := context.Background()
	a, err := h.c.NewSession(ctx, client.SessionRequest{Providers: []client.Provider{{Cap: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	b, err := h.c.NewSession(ctx, client.SessionRequest{Providers: []client.Provider{{Cap: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.c.DeleteSession(ctx, a.ID); err != nil {
		t.Fatal(err)
	}
	text := metricsText(t, h)
	for _, want := range []string{
		"ccad_sessions_created_total 2",
		"ccad_sessions_deleted_total 1",
		"ccad_sessions_expired_total 0",
		"ccad_sessions_active 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	h.srv.Drain()
	if err := h.c.DeleteSession(ctx, b.ID); err != nil {
		t.Fatalf("DELETE during drain must stay allowed: %v", err)
	}
	text = metricsText(t, h)
	for _, want := range []string{
		"ccad_sessions_deleted_total 2",
		"ccad_sessions_active 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestSessionDeleteUnloaded: DELETE on a session the sweeper unloaded
// must remove its on-disk state — a deleted session is gone forever,
// unlike a swept one.
func TestSessionDeleteUnloaded(t *testing.T) {
	state := t.TempDir()
	h := testServer(t, server.Config{StateDir: state, SessionTTL: 50 * time.Millisecond})
	ctx := context.Background()
	info, err := h.c.NewSession(ctx, client.SessionRequest{Providers: []client.Provider{{Cap: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	waitForMetric(t, h, "ccad_sessions_expired_total 1")

	if err := h.c.DeleteSession(ctx, info.ID); err != nil {
		t.Fatalf("deleting an unloaded session: %v", err)
	}
	if _, err := os.Stat(filepath.Join(state, "sessions", info.ID+".wal")); !os.IsNotExist(err) {
		t.Fatalf("WAL must be removed on delete, stat: %v", err)
	}
	if _, err := h.c.Matching(ctx, info.ID); statusOf(err) != http.StatusNotFound {
		t.Fatalf("deleted session: %v, want 404", err)
	}
	if err := h.c.DeleteSession(ctx, info.ID); statusOf(err) != http.StatusNotFound {
		t.Fatalf("double delete: %v, want 404", err)
	}
}

// TestDatasetLifecycle walks the full dataset surface: upload over
// HTTP, list with residency stats, solve (paging the index through the
// file-backed buffer), evict, and re-solve — the post-eviction solve
// must reproduce the matching byte-identically from a cold buffer, with
// the faults of both loads visible in /metrics.
func TestDatasetLifecycle(t *testing.T) {
	dataDir, stateDir := t.TempDir(), t.TempDir()
	h := testServer(t, server.Config{DataDir: dataDir, StateDir: stateDir})
	ctx := context.Background()

	pts := testPoints(500, 91)
	var sb strings.Builder
	for i, p := range pts {
		fmt.Fprintf(&sb, "%d,%.6f,%.6f\n", i, p.X, p.Y)
	}
	up, err := h.c.UploadDataset(ctx, "town", strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if up.Customers != 500 {
		t.Fatalf("upload reported %d customers, want 500", up.Customers)
	}
	if _, err := os.Stat(filepath.Join(dataDir, "town.csv")); err != nil {
		t.Fatalf("upload must commit the CSV: %v", err)
	}

	// Malformed uploads must not replace a committed dataset.
	if _, err := h.c.UploadDataset(ctx, "town", strings.NewReader("not,a,number,row\n")); statusOf(err) != http.StatusBadRequest {
		t.Fatalf("malformed upload: %v, want 400", err)
	}
	if _, err := h.c.UploadDataset(ctx, ".hidden", strings.NewReader("0,1,1\n")); statusOf(err) != http.StatusBadRequest {
		t.Fatalf("dot-prefixed name: %v, want 400", err)
	}

	in := client.Instance{Solver: "nia", Providers: []client.Provider{
		{X: 100, Y: 100, Cap: 40}, {X: 900, Y: 900, Cap: 40},
	}, Dataset: "town"}
	first, err := h.c.Solve(ctx, client.SolveRequest{Instances: []client.Instance{in}})
	if err != nil {
		t.Fatal(err)
	}
	if first.Results[0].Error != "" {
		t.Fatal(first.Results[0].Error)
	}
	if first.Fleet.Faults == 0 || first.Fleet.IONS == 0 {
		t.Fatalf("file-backed solve must report faults, fleet = %+v", first.Fleet)
	}

	ds, err := h.c.Datasets(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 1 || !ds[0].Resident || ds[0].Customers != 500 {
		t.Fatalf("datasets = %+v", ds)
	}
	if ds[0].Pages == 0 || ds[0].PageSize != 1024 || ds[0].Bytes != int64(ds[0].Pages)*1024 {
		t.Fatalf("resident stats = %+v", ds[0])
	}
	if ds[0].BufferPages >= ds[0].Pages {
		t.Fatalf("buffer (%d frames) should be a small fraction of %d pages", ds[0].BufferPages, ds[0].Pages)
	}
	if ds[0].Faults == 0 {
		t.Fatalf("per-dataset fault accounting missing: %+v", ds[0])
	}
	if _, err := os.Stat(filepath.Join(stateDir, "datasets", "town.pages")); err != nil {
		t.Fatalf("state dir must hold the page file: %v", err)
	}

	ev, err := h.c.EvictDataset(ctx, "town")
	if err != nil {
		t.Fatal(err)
	}
	if !ev.WasResident {
		t.Fatalf("evict = %+v, want resident", ev)
	}
	if ds, err = h.c.Datasets(ctx); err != nil || ds[0].Resident {
		t.Fatalf("after evict: datasets = %+v, err = %v", ds, err)
	}

	// Re-solve: a fresh identity (cold reload) must miss the result
	// cache, fault its pages back in, and reproduce the same matching.
	second, err := h.c.Solve(ctx, client.SolveRequest{Instances: []client.Instance{in}})
	if err != nil {
		t.Fatal(err)
	}
	if second.Results[0].Error != "" {
		t.Fatal(second.Results[0].Error)
	}
	if second.Results[0].Cached {
		t.Fatal("post-eviction solve must not be served from the result cache")
	}
	if second.Fleet.Faults == 0 {
		t.Fatalf("post-eviction solve must fault, fleet = %+v", second.Fleet)
	}
	got, want := mustJSON(t, second.Results[0].Pairs), mustJSON(t, first.Results[0].Pairs)
	if !bytes.Equal(got, want) || second.Results[0].Cost != first.Results[0].Cost {
		t.Fatalf("post-eviction matching differs:\n got %.200s…\nwant %.200s…", got, want)
	}

	text := metricsText(t, h)
	for _, want := range []string{
		"ccad_datasets_uploaded_total 1",
		"ccad_datasets_evicted_total 1",
		`ccad_dataset_page_faults_total{dataset="town"}`,
		`ccad_dataset_io_seconds_total{dataset="town"}`,
		`ccad_dataset_resident_pages{dataset="town"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	// Unknown names: evicting a dataset with no CSV is 404.
	if _, err := h.c.EvictDataset(ctx, "nope"); statusOf(err) != http.StatusNotFound {
		t.Fatalf("evict unknown: %v, want 404", err)
	}
}

// TestDatasetUploadReplaces: re-uploading a name evicts the old index,
// so the next solve sees the new rows (no stale-index serving).
func TestDatasetUploadReplaces(t *testing.T) {
	dataDir := t.TempDir()
	h := testServer(t, server.Config{DataDir: dataDir})
	ctx := context.Background()

	if _, err := h.c.UploadDataset(ctx, "d", strings.NewReader("0,10,10\n1,20,20\n")); err != nil {
		t.Fatal(err)
	}
	in := client.Instance{Providers: []client.Provider{{X: 0, Y: 0, Cap: 5}}, Dataset: "d"}
	first, err := h.c.Solve(ctx, client.SolveRequest{Instances: []client.Instance{in}})
	if err != nil || first.Results[0].Error != "" {
		t.Fatalf("solve: %v %s", err, first.Results[0].Error)
	}
	if first.Results[0].Size != 2 {
		t.Fatalf("size = %d, want 2", first.Results[0].Size)
	}

	if _, err := h.c.UploadDataset(ctx, "d", strings.NewReader("0,1,1\n1,2,2\n2,3,3\n")); err != nil {
		t.Fatal(err)
	}
	second, err := h.c.Solve(ctx, client.SolveRequest{Instances: []client.Instance{in}})
	if err != nil || second.Results[0].Error != "" {
		t.Fatalf("solve: %v %s", err, second.Results[0].Error)
	}
	if second.Results[0].Size != 3 {
		t.Fatalf("after re-upload: size = %d, want 3 (stale index served?)", second.Results[0].Size)
	}
}

// TestDatasetEvictDuringSolve: eviction is refcounted — a solve holding
// the entry keeps its page store alive until it finishes, so a
// concurrent DELETE can never close the store under a reader.
func TestDatasetEvictDuringSolve(t *testing.T) {
	dataDir, stateDir := t.TempDir(), t.TempDir()
	h := testServer(t, server.Config{DataDir: dataDir, StateDir: stateDir})
	ctx := context.Background()

	pts := testPoints(800, 13)
	var sb strings.Builder
	for i, p := range pts {
		fmt.Fprintf(&sb, "%d,%.6f,%.6f\n", i, p.X, p.Y)
	}
	if _, err := h.c.UploadDataset(ctx, "big", strings.NewReader(sb.String())); err != nil {
		t.Fatal(err)
	}

	in := client.Instance{Solver: "nia", Providers: []client.Provider{
		{X: 500, Y: 500, Cap: 400},
	}, Dataset: "big"}
	done := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func() {
			resp, err := h.c.Solve(ctx, client.SolveRequest{Instances: []client.Instance{in}})
			if err == nil && resp.Results[0].Error != "" {
				err = fmt.Errorf("%s", resp.Results[0].Error)
			}
			done <- err
		}()
	}
	// Race evictions against the in-flight solves; each next solve
	// reloads the dataset cold.
	for i := 0; i < 4; i++ {
		if _, err := h.c.EvictDataset(ctx, "big"); err != nil {
			t.Fatal(err)
		}
		time.Sleep(time.Millisecond)
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatalf("solve during eviction churn: %v", err)
		}
	}
}
