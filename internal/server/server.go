// Package server implements ccad, the long-lived HTTP/JSON assignment
// service over one shared cca.Engine. It is the layer the ROADMAP's
// "serve heavy traffic from millions of users" north star asks for: the
// registry solvers, streaming scheduler, result cache, sharded
// meta-solver, and both distance backends become reachable over the
// network instead of only in-process.
//
// Endpoints:
//
//	POST   /v1/solve                  batch solving; buffered JSON or
//	                                  streamed (?stream=ndjson|sse)
//	POST   /v1/sessions               create an online session
//	POST   /v1/sessions/{id}/arrive   incremental customer arrival
//	POST   /v1/sessions/{id}/depart   customer departure (slot release)
//	POST   /v1/sessions/{id}/resize   provider capacity change
//	GET    /v1/sessions/{id}/matching current optimal matching
//	DELETE /v1/sessions/{id}          end a session
//	GET    /v1/datasets               list named datasets
//	GET    /metrics                   Prometheus text exposition
//	GET    /healthz                   liveness / drain state
//
// Production plumbing: admission control bounds concurrent solve
// requests (excess load is shed with 429 + Retry-After instead of
// queueing without bound), per-request timeouts map onto the engine's
// cancellation path, and Drain flips the server into a draining state
// for graceful shutdown (healthz 503, new work rejected) while
// cmd/ccad lets in-flight requests finish and then closes the engine.
//
// The wire format lives in repro/client, which is also the Go client
// used by the conformance tests and the ccabench -serve load mode.
package server

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	cca "repro"
	"repro/client"
	"repro/internal/geo/netmetric"
)

// Config sizes a Server.
type Config struct {
	// Engine is the shared solving engine (required). The server does
	// not close it; cmd/ccad owns the drain sequence.
	Engine *cca.Engine
	// MaxInFlight bounds concurrently admitted solve requests; excess
	// requests are shed with 429 + Retry-After. Values < 1 select
	// DefaultMaxInFlight.
	MaxInFlight int
	// MaxSessions bounds live online sessions (each holds an in-memory
	// incremental matcher). Values < 1 select DefaultMaxSessions.
	MaxSessions int
	// MaxInstances bounds the instances one solve request may carry —
	// admission control counts requests, so without this cap a single
	// admitted request could flood the engine queue. Values < 1 select
	// DefaultMaxInstances.
	MaxInstances int
	// MaxArrivals bounds arrivals per session: each arrival permanently
	// grows the session's in-memory matching graph (O(|Q|) edges), so
	// an unbounded session would be an unbounded allocation. Values < 1
	// select DefaultMaxArrivals.
	MaxArrivals int
	// DefaultTimeout bounds each instance's solve when the request does
	// not set its own timeout_ms; 0 means no limit.
	DefaultTimeout time.Duration
	// DataDir is the named-dataset directory (files <name>.csv in
	// dataio's id,x,y format); empty disables named datasets.
	DataDir string
	// StateDir is the durable-state directory. Non-empty enables the
	// storage layer: dataset R-tree pages live in page files under
	// <StateDir>/datasets (behind the paper's LRU buffer, so cold
	// datasets page out instead of pinning heap), and every session gets
	// a write-ahead log + snapshot under <StateDir>/sessions, replayed
	// on boot so a restart recovers byte-identical matchings. Empty
	// keeps everything in memory (the pre-durability behavior).
	StateDir string
	// SessionTTL unloads sessions idle longer than this: with StateDir
	// they checkpoint to disk and reload on the next touch; without it
	// they are simply deleted. 0 disables the sweeper.
	SessionTTL time.Duration
	// SnapshotEvery checkpoints a session's snapshot every N logged
	// events (<= 0 selects DefaultSnapshotEvery). Snapshots are
	// integrity checkpoints, not the recovery path — recovery always
	// replays the full WAL for byte-identical matchings.
	SnapshotEvery int
	// SlowSolveThreshold emits a structured slog warning for every solve
	// instance whose wall time reaches it; 0 disables the slow-solve log.
	SlowSolveThreshold time.Duration
	// Logger receives the server's structured logs (slow solves); nil
	// selects slog.Default().
	Logger *slog.Logger
}

// Defaults for Config's bounds.
const (
	DefaultMaxInFlight   = 64
	DefaultMaxSessions   = 1024
	DefaultMaxInstances  = 1024
	DefaultMaxArrivals   = 100_000
	DefaultSnapshotEvery = 64
)

// Server is the HTTP front end. Build one with New and mount Handler.
type Server struct {
	cfg    Config
	engine *cca.Engine
	mux    *http.ServeMux
	start  time.Time
	logger *slog.Logger

	// sem is the admission semaphore: one slot per in-flight solve
	// request (len(sem) is the inflight gauge). readSem is the wider
	// outer bound on solve handlers that are merely buffering/decoding
	// request bodies — without it, any number of concurrent (or slow)
	// clients could hold maxSolveBody-sized buffers before admission
	// ever applies.
	sem      chan struct{}
	readSem  chan struct{}
	draining atomic.Bool

	sessions sessionStore
	datasets datasetStore

	// netMu guards netMetrics, the (grid, seed) → metric memo. Reusing
	// one metric instance per network keeps its snap/node-pair caches
	// warm across requests and makes the engine's result cache able to
	// recognize repeats (the cache key embeds the metric identity).
	// Like the dataset store, the lock covers only the map — the
	// O(grid²) network build runs outside it under a per-entry Once.
	netMu      sync.Mutex
	netMetrics map[netKey]*netEntry

	stats counters

	// reloadMu serializes WAL reloads of unloaded sessions (persist.go).
	reloadMu sync.Mutex
	// recovered is the number of sessions replayed at boot.
	recovered int
	// stop ends the TTL sweeper; closeOnce guards Close.
	stop      chan struct{}
	closeOnce sync.Once
}

// netKey identifies a synthetic road network and its ALT landmark /
// contraction-hierarchy configuration. Landmark and hierarchy
// preprocessing mutate the metric (per-landmark distance vectors, the
// up/down graphs), so two requests with different counts or modes
// cannot share one instance; both are part of the identity.
type netKey struct {
	grid      int
	seed      int64
	landmarks int // resolved count: 0 = landmark pruning disabled
	ch        int // resolved mode: 0 = hierarchy off, 1 = on
}

// netEntry is one network's lazily built metric.
type netEntry struct {
	once sync.Once
	done atomic.Bool // set after once ran; guards m for non-waiters
	m    *netmetric.NetworkMetric
}

// metric returns the entry's metric, building it on first use (outside
// any map lock). The build cannot fail: the grid was validated before
// the entry was created.
func (e *netEntry) metric(key netKey) *netmetric.NetworkMetric {
	e.once.Do(func() {
		m := cca.RoadNetworkMetric(key.grid, netSpace, key.seed).(*netmetric.NetworkMetric)
		m.SetLandmarks(key.landmarks)
		m.SetCH(key.ch)
		e.m = m
		e.done.Store(true)
	})
	return e.m
}

// New builds a Server over cfg.Engine. With a StateDir configured it
// also recovers every persisted session (full WAL replay) before
// returning, so the first request after a restart already sees them.
func New(cfg Config) (*Server, error) {
	if cfg.MaxInFlight < 1 {
		cfg.MaxInFlight = DefaultMaxInFlight
	}
	if cfg.MaxSessions < 1 {
		cfg.MaxSessions = DefaultMaxSessions
	}
	if cfg.MaxInstances < 1 {
		cfg.MaxInstances = DefaultMaxInstances
	}
	if cfg.MaxArrivals < 1 {
		cfg.MaxArrivals = DefaultMaxArrivals
	}
	if cfg.SnapshotEvery < 1 {
		cfg.SnapshotEvery = DefaultSnapshotEvery
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	s := &Server{
		cfg:        cfg,
		engine:     cfg.Engine,
		mux:        http.NewServeMux(),
		start:      time.Now(),
		logger:     cfg.Logger,
		sem:        make(chan struct{}, cfg.MaxInFlight),
		readSem:    make(chan struct{}, 2*cfg.MaxInFlight),
		netMetrics: make(map[netKey]*netEntry),
		stop:       make(chan struct{}),
	}
	s.sessions.init(cfg.MaxSessions)
	if err := s.datasets.init(cfg.DataDir, cfg.StateDir); err != nil {
		return nil, err
	}
	s.stats.init()
	if s.persistEnabled() {
		if _, err := s.recoverSessions(); err != nil {
			return nil, err
		}
	}
	if cfg.SessionTTL > 0 {
		go s.sweepLoop()
	}

	s.handle("POST /v1/solve", "solve", s.handleSolve)
	s.handle("POST /v1/sessions", "session_create", s.handleSessionCreate)
	s.handle("POST /v1/sessions/{id}/arrive", "session_arrive", s.handleSessionArrive)
	s.handle("POST /v1/sessions/{id}/depart", "session_depart", s.handleSessionDepart)
	s.handle("POST /v1/sessions/{id}/resize", "session_resize", s.handleSessionResize)
	s.handle("GET /v1/sessions/{id}/matching", "session_matching", s.handleSessionMatching)
	s.handle("DELETE /v1/sessions/{id}", "session_delete", s.handleSessionDelete)
	s.handle("GET /v1/datasets", "datasets", s.handleDatasets)
	s.handle("POST /v1/datasets/{name}", "dataset_upload", s.handleDatasetUpload)
	s.handle("DELETE /v1/datasets/{name}", "dataset_evict", s.handleDatasetEvict)
	s.handle("GET /metrics", "metrics", s.handleMetrics)
	s.handle("GET /healthz", "healthz", s.handleHealthz)
	return s, nil
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// RecoveredSessions reports how many sessions boot-time recovery
// replayed from their WALs.
func (s *Server) RecoveredSessions() int { return s.recovered }

// Close stops the TTL sweeper and releases durable-state handles (open
// session WALs). It does not close the engine — cmd/ccad owns the drain
// sequence — and it must run after the HTTP listener stopped serving.
func (s *Server) Close() error {
	s.closeOnce.Do(func() {
		close(s.stop)
		for id, sess := range s.sessions.snapshot() {
			sess.mu.Lock()
			if sess.log != nil {
				sess.log.Close()
				sess.log = nil
			}
			sess.gone = true
			sess.mu.Unlock()
			s.sessions.removeIfSame(id, sess)
		}
	})
	return nil
}

// Drain flips the server into its draining state: healthz turns 503 and
// new solve/session work is rejected, while requests already admitted
// run to completion. cmd/ccad calls it on SIGTERM before shutting the
// listener down and closing the engine.
func (s *Server) Drain() { s.draining.Store(true) }

// Draining reports whether Drain was called.
func (s *Server) Draining() bool { return s.draining.Load() }

// handle mounts fn under pattern, recording per-endpoint request and
// status-code counts for /metrics.
func (s *Server) handle(pattern, name string, fn http.HandlerFunc) {
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		fn(rec, r)
		s.stats.recordRequest(name, rec.code)
	})
}

// statusRecorder captures the response status for telemetry.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

// Flush forwards to the underlying writer so streamed responses keep
// flushing through the recorder.
func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// admit reserves an admission slot, or sheds the request with 429 +
// Retry-After when MaxInFlight requests are already running. The
// returned release func must be called exactly once when admitted.
func (s *Server) admit(w http.ResponseWriter) (release func(), ok bool) {
	return s.acquire(w, s.sem)
}

// admitRead reserves a body-read slot (the wider outer bound on
// handlers buffering request bodies).
func (s *Server) admitRead(w http.ResponseWriter) (release func(), ok bool) {
	return s.acquire(w, s.readSem)
}

func (s *Server) acquire(w http.ResponseWriter, sem chan struct{}) (release func(), ok bool) {
	select {
	case sem <- struct{}{}:
		return func() { <-sem }, true
	default:
		s.stats.recordRejected()
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "server at capacity, retry later")
		return nil, false
	}
}

// Bounds on client-selected road networks: grids outside [MinNetGrid,
// MaxNetGrid] either divide by zero in the generator or allocate
// O(grid²) nodes, and each distinct (grid, seed) pins a network plus
// two caches for the life of the process (and one /metrics label set),
// so the memo itself is bounded too.
const (
	MinNetGrid      = 2
	MaxNetGrid      = 256
	MaxNetworks     = 8
	MaxNetLandmarks = 64
)

// networkMetric returns the shared road-network metric for (grid, seed,
// landmarks, ch), building it on first use. Concurrent requests for the
// same cold network share one build, and the build never blocks the map
// lock (so other networks' requests and /metrics scrapes proceed
// meanwhile). landmarks carries the wire encoding: 0 selects the
// default count, -1 disables landmark pruning, positive values pick an
// explicit count (each landmark costs one SSSP at build plus one O(V)
// distance vector for the life of the process, hence the bound).
// ch likewise: 0 = automatic (hierarchy on at DefaultCHMinNodes), 1 =
// forced on, -1 = off; the mode is resolved against the grid's node
// count here so "auto" and its resolution share one memo entry.
func (s *Server) networkMetric(grid int, seed int64, landmarks, ch int) (*netmetric.NetworkMetric, error) {
	if grid < MinNetGrid || grid > MaxNetGrid {
		return nil, fmt.Errorf("net_grid %d out of range [%d, %d]", grid, MinNetGrid, MaxNetGrid)
	}
	switch {
	case landmarks == 0:
		landmarks = netmetric.DefaultLandmarks
	case landmarks == -1:
		landmarks = 0
	case landmarks < -1 || landmarks > MaxNetLandmarks:
		return nil, fmt.Errorf("net_landmarks %d out of range [-1, %d]", landmarks, MaxNetLandmarks)
	}
	switch ch {
	case 0:
		if grid*grid >= netmetric.DefaultCHMinNodes {
			ch = 1
		} else {
			ch = -1
		}
	case 1, -1:
	default:
		return nil, fmt.Errorf("net_ch %d invalid (-1 = off, 0 = auto, 1 = on)", ch)
	}
	key := netKey{grid: grid, seed: seed, landmarks: landmarks, ch: max(0, ch)}
	s.netMu.Lock()
	e, ok := s.netMetrics[key]
	if !ok {
		if len(s.netMetrics) >= MaxNetworks {
			s.netMu.Unlock()
			return nil, fmt.Errorf("too many distinct road networks (limit %d); reuse an existing net_grid/net_seed", MaxNetworks)
		}
		e = &netEntry{}
		s.netMetrics[key] = e
	}
	s.netMu.Unlock()
	return e.metric(key), nil
}

// netSpace is the normalized data space of the paper's evaluation
// (expr.Space) — the space ccagen generates workloads in, so a server
// solving such a workload under "network" measures travel distance on
// the road network the points were placed on.
var netSpace = cca.Rect{Min: cca.Point{X: 0, Y: 0}, Max: cca.Point{X: 1000, Y: 1000}}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleDatasets(w http.ResponseWriter, r *http.Request) {
	infos, err := s.datasets.list()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, infos)
}

// decodeBody decodes one JSON request body bounded to limit bytes; on
// failure it writes the error response (413 for an oversized body, 400
// otherwise) and returns false. Every non-solve endpoint funnels its
// body through here so no endpoint offers an unbounded-allocation
// vector (solve has its own two-stage path).
func decodeBody(w http.ResponseWriter, r *http.Request, limit int64, v any) bool {
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, limit)).Decode(v); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", mbe.Limit))
			return false
		}
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return false
	}
	return true
}

// writeJSON writes v as a JSON response.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

// writeError writes the uniform error body.
func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, client.ErrorResponse{Error: msg})
}

// newID returns a 16-hex-char random identifier.
func newID() string {
	var b [8]byte
	rand.Read(b[:])
	return hex.EncodeToString(b[:])
}
