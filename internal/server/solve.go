package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	cca "repro"
	"repro/client"
	"repro/internal/obs"
	"repro/internal/rtree"
)

// maxSolveBody bounds a solve request's body — room for roughly two
// million inline customers. Together with the read-phase semaphore
// (2 × MaxInFlight handlers buffering at once) it bounds the heap that
// request bodies can pin; ship bigger point sets as named datasets.
const maxSolveBody = 64 << 20

// prepared is one instance after wire → engine conversion.
type prepared struct {
	in      cca.Instance
	cancel  context.CancelFunc
	cleanup func() // closes an inline dataset / releases a named one (nil otherwise)
	err     error  // conversion failure; the instance never runs
	label   string
	solver  string
	dataset string    // named dataset, for per-dataset fault accounting
	span    *obs.Span // per-instance trace span (nil when untraced)
}

// handleSolve serves POST /v1/solve: decode instances, admit, submit
// them all on the shared engine, and deliver results buffered (default)
// or streamed in completion order (?stream=ndjson|sse).
func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	// Two-stage admission. The outer (read) bound sheds when too many
	// handlers are buffering bodies; the inner (solve) bound is taken
	// only after the request is read and validated, so a slow client
	// trickling its body occupies a cheap read slot, never a solve slot.
	// MaxBytesReader makes an oversized body a distinguishable 413
	// instead of a confusing truncated-JSON 400.
	releaseRead, ok := s.admitRead(w)
	if !ok {
		return
	}
	defer releaseRead()

	// Tracing is opt-in per request: ?trace=1 (known before the body) or
	// "trace": true in the body (known only after decode, so that path
	// cannot cover the read phase). The root span carries the server's
	// point-query histogram as a sink, so traced solves feed
	// ccad_netmetric_point_query_seconds.
	ctx := r.Context()
	var root *obs.Span
	startTrace := func() {
		root = obs.NewRoot("server")
		root.SetSink(obs.PointQuerySink, s.stats.pointQuery)
		ctx = obs.WithSpan(ctx, root)
	}
	if r.URL.Query().Get("trace") == "1" {
		startTrace()
	}

	read := root.StartChild("read")
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxSolveBody))
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", mbe.Limit))
			return
		}
		writeError(w, http.StatusBadRequest, "read body: "+err.Error())
		return
	}
	instances, bodyTrace, err := decodeSolveRequest(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	read.SetInt("bytes", int64(len(body)))
	read.SetInt("instances", int64(len(instances)))
	read.End()
	if bodyTrace && root == nil {
		startTrace()
	}
	if len(instances) > s.cfg.MaxInstances {
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("request carries %d instances, limit is %d", len(instances), s.cfg.MaxInstances))
		return
	}

	release, ok := s.admit(w)
	if !ok {
		return
	}
	defer release()

	stream := strings.ToLower(r.URL.Query().Get("stream"))
	if stream == "" {
		switch {
		case acceptsMedia(r.Header.Get("Accept"), "application/x-ndjson"):
			stream = "ndjson"
		case acceptsMedia(r.Header.Get("Accept"), "text/event-stream"):
			stream = "sse"
		}
	}
	switch stream {
	case "", "ndjson", "sse":
	default:
		writeError(w, http.StatusBadRequest, fmt.Sprintf("unknown stream mode %q (ndjson, sse)", stream))
		return
	}

	preps := make([]*prepared, len(instances))
	for i, wi := range instances {
		preps[i] = s.prepare(ctx, i, wi)
	}
	defer func() {
		for _, p := range preps {
			if p.cancel != nil {
				p.cancel()
			}
			if p.cleanup != nil {
				p.cleanup()
			}
		}
	}()

	start := time.Now()
	chans := make([]<-chan cca.InstanceResult, len(preps))
	for i, p := range preps {
		if p.err != nil {
			continue
		}
		// Each instance gets its own child span; the engine's queue and
		// solve spans nest under it via the submitted context.
		ictx, ispan := obs.Start(ctx, "instance")
		ispan.SetInt("index", int64(i))
		p.span = ispan
		if d := s.timeoutFor(instances[i]); d > 0 {
			ictx, p.cancel = context.WithTimeout(ictx, d)
		}
		chans[i] = s.engine.Submit(ictx, p.in)
	}

	if stream == "" {
		s.solveBuffered(w, preps, chans, start, root)
		return
	}
	s.solveStreamed(w, stream, preps, chans, start, root)
}

// acceptsMedia reports whether an Accept header names mediatype,
// tolerating lists and parameters ("application/x-ndjson, */*" or
// "text/event-stream;charset=utf-8") — exact-string matching would
// silently ignore standards-conformant variants and hand a streaming
// client a buffered body.
func acceptsMedia(accept, mediatype string) bool {
	for _, part := range strings.Split(accept, ",") {
		mt, _, _ := strings.Cut(part, ";")
		if strings.EqualFold(strings.TrimSpace(mt), mediatype) {
			return true
		}
	}
	return false
}

// decodeSolveRequest accepts {"instances": [...]} or a single bare
// instance object. The second return is the body's "trace" flag (the
// wrapped form only — a bare instance has no request-level fields).
func decodeSolveRequest(body []byte) ([]client.Instance, bool, error) {
	var req client.SolveRequest
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, false, fmt.Errorf("bad request body: %v", err)
	}
	if req.Instances == nil {
		var one client.Instance
		if err := json.Unmarshal(body, &one); err != nil {
			return nil, false, fmt.Errorf("bad request body: %v", err)
		}
		if len(one.Providers) == 0 {
			return nil, false, fmt.Errorf(`empty request: send {"instances": [...]} or a single instance with providers`)
		}
		req.Instances = []client.Instance{one}
	}
	if len(req.Instances) == 0 {
		return nil, false, fmt.Errorf("no instances")
	}
	return req.Instances, req.Trace, nil
}

// timeoutFor resolves an instance's solve deadline.
func (s *Server) timeoutFor(wi client.Instance) time.Duration {
	if wi.TimeoutMS > 0 {
		return time.Duration(wi.TimeoutMS) * time.Millisecond
	}
	return s.cfg.DefaultTimeout
}

// prepare converts one wire instance into an engine instance. ctx is
// only used to fail fast on an already-dead client connection while
// indexing large inline customer sets.
func (s *Server) prepare(ctx context.Context, idx int, wi client.Instance) *prepared {
	p := &prepared{label: wi.Label, solver: wi.Solver}
	fail := func(format string, args ...any) *prepared {
		p.err = fmt.Errorf("instance %d: "+format, append([]any{idx}, args...)...)
		return p
	}
	if len(wi.Providers) == 0 {
		return fail("no providers")
	}
	providers := make([]cca.Provider, len(wi.Providers))
	for i, q := range wi.Providers {
		if q.Cap <= 0 {
			return fail("provider %d: capacity must be positive, got %d", i, q.Cap)
		}
		providers[i] = cca.Provider{Pt: cca.Point{X: q.X, Y: q.Y}, Cap: q.Cap}
	}

	var customers *cca.Customers
	noCache := false
	switch {
	case wi.Dataset != "" && len(wi.Customers) > 0:
		return fail("customers and dataset are mutually exclusive")
	case wi.Dataset != "":
		// Hold a reference for the lifetime of the solve so a concurrent
		// DELETE /v1/datasets/{name} cannot close the page store under us.
		e, err := s.datasets.acquire(wi.Dataset)
		if err != nil {
			return fail("%v", err)
		}
		customers = e.c
		p.cleanup = e.release
		p.dataset = wi.Dataset
	case len(wi.Customers) > 0:
		if err := ctx.Err(); err != nil {
			return fail("%v", err)
		}
		items := make([]rtree.Item, len(wi.Customers))
		seen := make(map[int64]bool, len(wi.Customers))
		for i, c := range wi.Customers {
			if seen[c.ID] {
				return fail("duplicate customer id %d", c.ID)
			}
			seen[c.ID] = true
			items[i] = rtree.Item{ID: c.ID, Pt: cca.Point{X: c.X, Y: c.Y}}
		}
		indexed, err := cca.IndexItems(items, cca.IndexConfig{})
		if err != nil {
			return fail("index customers: %v", err)
		}
		customers = indexed
		p.cleanup = func() { indexed.Close() }
		// A per-request dataset's identity is unique, so its result can
		// never be served again — keep it out of the result cache
		// instead of letting one-shot solves evict named-dataset entries.
		noCache = true
	default:
		return fail("customers or dataset is required")
	}

	var opts cca.SolverOptions
	if o := wi.Options; o != nil {
		opts.Delta = o.Delta
		opts.Core.Theta = o.Theta
		opts.Core.Shards = o.Shards
		opts.Core.ShardBoundary = o.ShardBoundary
		opts.Core.ShardWorkers = o.ShardWorkers
		opts.Core.DisablePUA = o.DisablePUA
		opts.Core.DisableTheorem2 = o.DisableTheorem2
		opts.Core.DisableANN = o.DisableANN
		opts.Core.ANNGroupSize = o.ANNGroupSize
		opts.Core.DistTable = o.DistTable
	}
	switch strings.ToLower(wi.Metric) {
	case "", "euclidean":
	case "network":
		grid, seed := wi.NetGrid, wi.NetSeed
		if grid == 0 {
			grid = 32
		}
		if seed == 0 {
			seed = 2008
		}
		m, err := s.networkMetric(grid, seed, wi.NetLandmarks, wi.NetCH)
		if err != nil {
			return fail("%v", err)
		}
		opts.Core.Metric = m
	default:
		return fail("unknown metric %q (euclidean, network)", wi.Metric)
	}

	var lane cca.Lane
	switch strings.ToLower(wi.Lane) {
	case "", "interactive":
		lane = cca.LaneInteractive
	case "batch":
		lane = cca.LaneBatch
	default:
		return fail("unknown lane %q (interactive, batch)", wi.Lane)
	}

	p.in = cca.Instance{
		Label:     wi.Label,
		Providers: providers,
		Customers: customers,
		Solver:    wi.Solver,
		Options:   opts,
		Lane:      lane,
		NoCache:   noCache,
	}
	return p
}

// collect receives instance i's result (or synthesizes one for a
// conversion failure) and releases its per-instance resources.
func collect(p *prepared, ch <-chan cca.InstanceResult, i int) cca.InstanceResult {
	if p.err != nil {
		return cca.InstanceResult{Index: i, Label: p.label, Solver: p.solver, Worker: -1, Err: p.err}
	}
	r := <-ch
	p.span.End()
	// Submit stamps every direct submission with index 0; results are
	// identified request-relative here.
	r.Index = i
	if p.cancel != nil {
		p.cancel()
		p.cancel = nil
	}
	if p.cleanup != nil {
		p.cleanup()
		p.cleanup = nil
	}
	return r
}

// recordDatasetIO folds a named-dataset solve's buffer stats into that
// dataset's lifetime fault accounting. Cache hits carry the original
// solve's metrics, which were already recorded once — counting them
// again would charge phantom faults.
func (s *Server) recordDatasetIO(p *prepared, r cca.InstanceResult) {
	if p.dataset == "" || r.Err != nil || r.Cached || r.Result == nil {
		return
	}
	s.datasets.recordIO(p.dataset, r.Result.Metrics.IO)
}

// noteSlow logs a structured warning for any solve whose wall time
// crossed the -slow-solve-threshold (0 disables).
func (s *Server) noteSlow(r cca.InstanceResult) {
	if s.cfg.SlowSolveThreshold <= 0 || r.Wall < s.cfg.SlowSolveThreshold {
		return
	}
	args := []any{
		"index", r.Index,
		"solver", r.Solver,
		"wall", r.Wall,
		"queue_wait", r.QueueWait,
		"cached", r.Cached,
		"worker", r.Worker,
	}
	if r.Label != "" {
		args = append(args, "label", r.Label)
	}
	if r.Err != nil {
		args = append(args, "error", r.Err.Error())
	} else if r.Result != nil {
		args = append(args, "pairs", r.Result.Size, "faults", r.Result.Metrics.IO.Faults)
	}
	s.logger.Warn("slow solve", args...)
}

// solveBuffered collects every result in submission order and writes
// one SolveResponse.
func (s *Server) solveBuffered(w http.ResponseWriter, preps []*prepared, chans []<-chan cca.InstanceResult, start time.Time, root *obs.Span) {
	results := make([]client.InstanceResult, len(preps))
	raw := make([]cca.InstanceResult, len(preps))
	for i, p := range preps {
		raw[i] = collect(p, chans[i], i)
		s.recordDatasetIO(p, raw[i])
		s.noteSlow(raw[i])
		results[i] = wireResult(raw[i])
	}
	fleet := fleetOf(raw, time.Since(start))
	s.stats.recordSolve(fleet, raw)
	resp := client.SolveResponse{Results: results, Fleet: fleet}
	if root != nil {
		root.End()
		resp.Trace = wireTrace(root.Tree())
	}
	writeJSON(w, http.StatusOK, resp)
}

// solveStreamed delivers results in completion order as NDJSON lines or
// SSE events, ending with the fleet aggregate.
func (s *Server) solveStreamed(w http.ResponseWriter, mode string, preps []*prepared, chans []<-chan cca.InstanceResult, start time.Time, root *obs.Span) {
	switch mode {
	case "ndjson":
		w.Header().Set("Content-Type", "application/x-ndjson")
	case "sse":
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
	}
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	emit := func(env client.StreamEnvelope, event string) {
		if mode == "sse" {
			fmt.Fprintf(w, "event: %s\ndata: ", event)
		}
		enc.Encode(env)
		if mode == "sse" {
			io.WriteString(w, "\n")
		}
		if flusher != nil {
			flusher.Flush()
		}
	}

	// Fan the per-instance channels into completion order.
	merged := make(chan cca.InstanceResult)
	var wg sync.WaitGroup
	for i, p := range preps {
		wg.Add(1)
		go func(i int, p *prepared) {
			defer wg.Done()
			r := collect(p, chans[i], i)
			s.recordDatasetIO(p, r)
			s.noteSlow(r)
			merged <- r
		}(i, p)
	}
	go func() {
		wg.Wait()
		close(merged)
	}()

	raw := make([]cca.InstanceResult, 0, len(preps))
	for r := range merged {
		raw = append(raw, r)
		wr := wireResult(r)
		emit(client.StreamEnvelope{Result: &wr}, "result")
	}
	fleet := fleetOf(raw, time.Since(start))
	s.stats.recordSolve(fleet, raw)
	env := client.StreamEnvelope{Fleet: &fleet}
	if root != nil {
		root.End()
		env.Trace = wireTrace(root.Tree())
	}
	emit(env, "fleet")
}

// wireResult converts an engine result to the wire form.
func wireResult(r cca.InstanceResult) client.InstanceResult {
	out := client.InstanceResult{
		Index:       r.Index,
		Label:       r.Label,
		Solver:      r.Solver,
		Cached:      r.Cached,
		WallNS:      int64(r.Wall),
		QueueWaitNS: int64(r.QueueWait),
		Worker:      r.Worker,
	}
	if r.Err != nil {
		out.Error = r.Err.Error()
		return out
	}
	res := r.Result
	out.Kind = res.Kind.String()
	out.Size = res.Size
	out.Cost = res.Cost
	out.ErrorBound = res.ErrorBound
	out.Pairs = wirePairs(res.Pairs)
	return out
}

// wirePairs converts matching pairs to the wire form — the single
// conversion point shared by solve and session responses, so the wire
// format cannot drift between them.
func wirePairs(pairs []cca.Pair) []client.Pair {
	out := make([]client.Pair, len(pairs))
	for i, p := range pairs {
		out[i] = client.Pair{
			Provider: p.Provider,
			Customer: p.CustomerID,
			X:        p.CustomerPt.X,
			Y:        p.CustomerPt.Y,
			Dist:     p.Dist,
		}
	}
	return out
}

// wireTrace converts a completed span tree to the wire form.
func wireTrace(n *obs.TraceNode) *client.TraceSpan {
	if n == nil {
		return nil
	}
	out := &client.TraceSpan{Name: n.Name, DurNS: n.DurNS, Attrs: n.Attrs, Overlay: n.Overlay}
	for _, c := range n.Children {
		out.Children = append(out.Children, wireTrace(c))
	}
	return out
}

// fleetOf aggregates a request's raw results (the server-side analogue
// of Engine.RunContext's fleet accounting).
func fleetOf(raw []cca.InstanceResult, wall time.Duration) client.Fleet {
	f := client.Fleet{Instances: len(raw), WallNS: int64(wall)}
	qh := obs.NewHistogram(obs.LatencyBounds)
	for _, r := range raw {
		f.SolveWallNS += int64(r.Wall)
		qh.ObserveDuration(r.QueueWait)
		if r.Cached {
			f.CacheHits++
		}
		if r.Err != nil {
			f.Errors++
			continue
		}
		f.Solved++
		f.Pairs += r.Result.Size
		f.Cost += r.Result.Cost
		if !r.Cached {
			// Cached results echo the original solve's metrics; charging
			// them again would double-count the paper's fault accounting.
			f.Faults += r.Result.Metrics.IO.Faults
			f.IONS += int64(r.Result.Metrics.IOTime)
		}
	}
	snap := qh.Snapshot()
	f.QueueWaitNS = int64(snap.MeanDuration())
	f.QueueWaitHist = &client.Histogram{Bounds: snap.Bounds, Counts: snap.Counts, Count: snap.Count, Sum: snap.Sum}
	return f
}
