package server

import (
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"

	cca "repro"
	"repro/client"
)

// Body bounds for the session endpoints: a provider set is small (the
// paper's |Q| ≈ 1K fits in kilobytes) and a churn event is one point
// or id.
const (
	maxSessionBody = 8 << 20
	maxArriveBody  = 1 << 20
)

// session is one server-held online matching: a DynamicMatcher plus the
// lock serializing its events (the matcher mutates a shared residual
// graph, so events within a session are ordered; distinct sessions
// proceed in parallel). Id bookkeeping lives in the matcher itself —
// the handlers branch on its sentinel errors rather than tracking a
// parallel seen-set.
type session struct {
	mu       sync.Mutex
	m        *cca.DynamicMatcher
	arrivals int
}

// sessionStore is the bounded id → session map.
type sessionStore struct {
	mu       sync.Mutex
	max      int
	sessions map[string]*session
}

func (st *sessionStore) init(max int) {
	st.max = max
	st.sessions = make(map[string]*session)
}

// add stores a new session, enforcing the bound.
func (st *sessionStore) add(s *session) (string, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if len(st.sessions) >= st.max {
		return "", fmt.Errorf("session limit reached (%d live sessions)", st.max)
	}
	id := newID()
	st.sessions[id] = s
	return id, nil
}

func (st *sessionStore) get(id string) (*session, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	s, ok := st.sessions[id]
	return s, ok
}

func (st *sessionStore) remove(id string) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	if _, ok := st.sessions[id]; !ok {
		return false
	}
	delete(st.sessions, id)
	return true
}

func (st *sessionStore) count() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.sessions)
}

// handleSessionCreate serves POST /v1/sessions: it builds a server-held
// incremental matcher over the request's providers, so each subsequent
// /arrive costs one augmenting path (or swap) instead of a re-solve.
// Sessions measure Euclidean distance by default; metric "network"
// routes every incremental assignment through the shared road-network
// metric (same memo and bounds as batch solves).
func (s *Server) handleSessionCreate(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	var req client.SessionRequest
	if !decodeBody(w, r, maxSessionBody, &req) {
		return
	}
	if len(req.Providers) == 0 {
		writeError(w, http.StatusBadRequest, "no providers")
		return
	}
	if req.ReoptBudget < 0 {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("reopt_budget must be >= 0, got %d", req.ReoptBudget))
		return
	}
	providers := make([]cca.Provider, len(req.Providers))
	capacity := 0
	for i, q := range req.Providers {
		if q.Cap <= 0 {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("provider %d: capacity must be positive, got %d", i, q.Cap))
			return
		}
		providers[i] = cca.Provider{Pt: cca.Point{X: q.X, Y: q.Y}, Cap: q.Cap}
		capacity += q.Cap
	}
	opts := cca.DynamicOptions{ReoptBudget: req.ReoptBudget}
	switch strings.ToLower(req.Metric) {
	case "", "euclidean":
	case "network":
		grid, seed := req.NetGrid, req.NetSeed
		if grid == 0 {
			grid = 32
		}
		if seed == 0 {
			seed = 2008
		}
		m, err := s.networkMetric(grid, seed, req.NetLandmarks, req.NetCH)
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		opts.Metric = m
	default:
		writeError(w, http.StatusBadRequest, fmt.Sprintf("unknown metric %q (euclidean, network)", req.Metric))
		return
	}
	sess := &session{
		m: cca.NewDynamicMatcherOpts(providers, opts),
	}
	id, err := s.sessions.add(sess)
	if err != nil {
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, err.Error())
		return
	}
	s.stats.recordSession()
	writeJSON(w, http.StatusOK, client.SessionInfo{ID: id, Capacity: capacity})
}

// handleSessionArrive serves POST /v1/sessions/{id}/arrive: one
// customer arrival through the incremental path.
func (s *Server) handleSessionArrive(w http.ResponseWriter, r *http.Request) {
	// Arrivals are new work: reject them during drain like solves and
	// session creation, so keep-alive arrival loops cannot hold
	// Shutdown open for the full drain timeout. Reads (matching) stay
	// available.
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	sess, ok := s.sessions.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such session")
		return
	}
	var req client.ArriveRequest
	if !decodeBody(w, r, maxArriveBody, &req) {
		return
	}

	sess.mu.Lock()
	// Each arrival permanently grows the in-memory matching graph, so
	// the per-session arrival count is bounded like every other
	// client-driven allocation; start a new session past the limit.
	if sess.arrivals >= s.cfg.MaxArrivals {
		sess.mu.Unlock()
		writeError(w, http.StatusTooManyRequests,
			fmt.Sprintf("session reached its arrival limit (%d); create a new session", s.cfg.MaxArrivals))
		return
	}
	matched, err := sess.m.Arrive(cca.Point{X: req.X, Y: req.Y}, req.ID)
	if errors.Is(err, cca.ErrDuplicateID) {
		sess.mu.Unlock()
		writeError(w, http.StatusConflict, fmt.Sprintf("customer %d already arrived", req.ID))
		return
	}
	if err != nil {
		sess.mu.Unlock()
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	sess.arrivals++
	resp := client.ArriveResponse{
		Matched:  matched,
		Size:     sess.m.Size(),
		Cost:     sess.m.Cost(),
		Arrivals: sess.arrivals,
	}
	sess.mu.Unlock()

	s.stats.recordArrival(matched)
	writeJSON(w, http.StatusOK, resp)
}

// handleSessionDepart serves POST /v1/sessions/{id}/depart: remove one
// customer, releasing its slot and repairing the matching. An id that
// never arrived, or already departed, is 404.
func (s *Server) handleSessionDepart(w http.ResponseWriter, r *http.Request) {
	// Like arrivals, churn events are new work: reject them during
	// drain so event loops cannot hold Shutdown open. Reads stay
	// available.
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	sess, ok := s.sessions.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such session")
		return
	}
	var req client.DepartRequest
	if !decodeBody(w, r, maxArriveBody, &req) {
		return
	}

	sess.mu.Lock()
	wasMatched, err := sess.m.Depart(req.ID)
	if errors.Is(err, cca.ErrUnknownID) {
		sess.mu.Unlock()
		writeError(w, http.StatusNotFound, fmt.Sprintf("customer %d is not present", req.ID))
		return
	}
	if err != nil {
		sess.mu.Unlock()
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	resp := client.DepartResponse{
		WasMatched: wasMatched,
		Size:       sess.m.Size(),
		Cost:       sess.m.Cost(),
		Live:       sess.m.Live(),
	}
	sess.mu.Unlock()

	s.stats.recordDepart()
	writeJSON(w, http.StatusOK, resp)
}

// handleSessionResize serves POST /v1/sessions/{id}/resize: change one
// provider's capacity. Shrinking evicts and re-routes assignees;
// growing admits waiting customers. An index out of range is 404, a
// negative capacity 400.
func (s *Server) handleSessionResize(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	sess, ok := s.sessions.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such session")
		return
	}
	var req client.ResizeRequest
	if !decodeBody(w, r, maxArriveBody, &req) {
		return
	}
	if req.Cap < 0 {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("capacity must be >= 0, got %d", req.Cap))
		return
	}

	sess.mu.Lock()
	err := sess.m.ResizeProvider(req.Provider, req.Cap)
	if errors.Is(err, cca.ErrUnknownID) {
		sess.mu.Unlock()
		writeError(w, http.StatusNotFound, fmt.Sprintf("no provider %d in this session", req.Provider))
		return
	}
	if err != nil {
		sess.mu.Unlock()
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	resp := client.ResizeResponse{
		Size:     sess.m.Size(),
		Cost:     sess.m.Cost(),
		Capacity: sess.m.Capacity(),
	}
	sess.mu.Unlock()

	s.stats.recordResize()
	writeJSON(w, http.StatusOK, resp)
}

// handleSessionMatching serves GET /v1/sessions/{id}/matching: the
// current optimal matching over everything that has arrived.
func (s *Server) handleSessionMatching(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.sessions.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such session")
		return
	}
	sess.mu.Lock()
	res := sess.m.Matching()
	sess.mu.Unlock()

	resp := client.MatchingResponse{Size: res.Size, Cost: res.Cost, Pairs: wirePairs(res.Pairs)}
	writeJSON(w, http.StatusOK, resp)
}

// handleSessionDelete serves DELETE /v1/sessions/{id}.
func (s *Server) handleSessionDelete(w http.ResponseWriter, r *http.Request) {
	if !s.sessions.remove(r.PathValue("id")) {
		writeError(w, http.StatusNotFound, "no such session")
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "deleted"})
}
