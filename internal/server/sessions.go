package server

import (
	"errors"
	"fmt"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	cca "repro"
	"repro/client"
	"repro/internal/storage"
)

// Body bounds for the session endpoints: a provider set is small (the
// paper's |Q| ≈ 1K fits in kilobytes) and a churn event is one point
// or id.
const (
	maxSessionBody = 8 << 20
	maxArriveBody  = 1 << 20
)

// session is one server-held online matching: a DynamicMatcher plus the
// lock serializing its events (the matcher mutates a shared residual
// graph, so events within a session are ordered; distinct sessions
// proceed in parallel). Id bookkeeping lives in the matcher itself —
// the handlers branch on its sentinel errors rather than tracking a
// parallel seen-set.
type session struct {
	mu       sync.Mutex
	m        *cca.DynamicMatcher
	arrivals int

	id string
	// gone marks a session unloaded by the TTL sweeper or deleted; a
	// handler that locked a stale pointer must re-resolve through the
	// store instead of mutating a zombie.
	gone bool
	// log is the session's write-ahead log (nil = persistence off or
	// unloaded). events counts churn events since creation; live tracks
	// the live customer set for snapshots.
	log    *storage.Log
	events int
	live   map[int64]client.Customer
	// lastTouch is the unix-nano time of the last handler access — the
	// TTL sweeper's idleness clock.
	lastTouch atomic.Int64
}

func (sess *session) touch() { sess.lastTouch.Store(time.Now().UnixNano()) }

// sessionStore is the bounded id → session map (resident sessions only;
// swept sessions live on disk until touched).
type sessionStore struct {
	mu       sync.Mutex
	max      int
	sessions map[string]*session
}

func (st *sessionStore) init(max int) {
	st.max = max
	st.sessions = make(map[string]*session)
}

// put stores a session under id, enforcing the bound.
func (st *sessionStore) put(id string, s *session) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if len(st.sessions) >= st.max {
		return fmt.Errorf("session limit reached (%d live sessions)", st.max)
	}
	st.sessions[id] = s
	return nil
}

func (st *sessionStore) get(id string) (*session, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	s, ok := st.sessions[id]
	return s, ok
}

func (st *sessionStore) remove(id string) (*session, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	s, ok := st.sessions[id]
	if !ok {
		return nil, false
	}
	delete(st.sessions, id)
	return s, true
}

// removeIfSame removes id only if it still maps to s — the sweeper uses
// it so a delete-then-recreate race can never drop a fresh session.
func (st *sessionStore) removeIfSame(id string, s *session) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.sessions[id] != s {
		return false
	}
	delete(st.sessions, id)
	return true
}

// snapshot returns a copy of the resident-session map for iteration
// without holding the store lock.
func (st *sessionStore) snapshot() map[string]*session {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make(map[string]*session, len(st.sessions))
	for id, s := range st.sessions {
		out[id] = s
	}
	return out
}

func (st *sessionStore) count() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.sessions)
}

// lockSession resolves id to a live session and returns it with its
// lock held (the caller must unlock). A session the TTL sweeper
// unloaded is transparently reloaded from its WAL; one marked gone
// between lookup and lock is re-resolved. On failure the HTTP error has
// been written already.
func (s *Server) lockSession(w http.ResponseWriter, id string) (*session, bool) {
	for tries := 0; tries < 4; tries++ {
		sess, ok := s.sessions.get(id)
		if !ok {
			var err error
			sess, err = s.loadSession(id)
			if err != nil {
				if errors.Is(err, os.ErrNotExist) {
					writeError(w, http.StatusNotFound, "no such session")
				} else {
					writeError(w, http.StatusInternalServerError, err.Error())
				}
				return nil, false
			}
		}
		sess.mu.Lock()
		if sess.gone {
			sess.mu.Unlock()
			continue
		}
		sess.touch()
		return sess, true
	}
	writeError(w, http.StatusServiceUnavailable, "session is being recycled, retry")
	return nil, false
}

// handleSessionCreate serves POST /v1/sessions: it builds a server-held
// incremental matcher over the request's providers, so each subsequent
// /arrive costs one augmenting path (or swap) instead of a re-solve.
// Sessions measure Euclidean distance by default; metric "network"
// routes every incremental assignment through the shared road-network
// metric (same memo and bounds as batch solves). With -state-dir, the
// session is durable: its configuration is the WAL's header record and
// every later event is logged before it is acknowledged.
func (s *Server) handleSessionCreate(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	var req client.SessionRequest
	if !decodeBody(w, r, maxSessionBody, &req) {
		return
	}
	m, capacity, err := s.buildMatcher(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	sess := &session{m: m, id: newID()}
	sess.touch()
	if s.persistEnabled() {
		if err := s.attachWAL(sess, req); err != nil {
			writeError(w, http.StatusInternalServerError, "session persistence: "+err.Error())
			return
		}
	}
	if err := s.sessions.put(sess.id, sess); err != nil {
		if sess.log != nil {
			sess.log.Close()
			s.removeSessionFiles(sess.id)
		}
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, err.Error())
		return
	}
	s.stats.recordSession()
	writeJSON(w, http.StatusOK, client.SessionInfo{
		ID:        sess.id,
		Capacity:  capacity,
		Persisted: sess.log != nil,
	})
}

// handleSessionArrive serves POST /v1/sessions/{id}/arrive: one
// customer arrival through the incremental path.
func (s *Server) handleSessionArrive(w http.ResponseWriter, r *http.Request) {
	// Arrivals are new work: reject them during drain like solves and
	// session creation, so keep-alive arrival loops cannot hold
	// Shutdown open for the full drain timeout. Reads (matching) stay
	// available.
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	var req client.ArriveRequest
	if !decodeBody(w, r, maxArriveBody, &req) {
		return
	}
	sess, ok := s.lockSession(w, r.PathValue("id"))
	if !ok {
		return
	}
	// Each arrival permanently grows the in-memory matching graph, so
	// the per-session arrival count is bounded like every other
	// client-driven allocation; start a new session past the limit.
	if sess.arrivals >= s.cfg.MaxArrivals {
		sess.mu.Unlock()
		writeError(w, http.StatusTooManyRequests,
			fmt.Sprintf("session reached its arrival limit (%d); create a new session", s.cfg.MaxArrivals))
		return
	}
	matched, err := sess.m.Arrive(cca.Point{X: req.X, Y: req.Y}, req.ID)
	if errors.Is(err, cca.ErrDuplicateID) {
		sess.mu.Unlock()
		writeError(w, http.StatusConflict, fmt.Sprintf("customer %d already arrived", req.ID))
		return
	}
	if err != nil {
		sess.mu.Unlock()
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	sess.arrivals++
	if err := s.logEvent(sess, walEvent{Op: walOpArrive, ID: req.ID, X: req.X, Y: req.Y}); err != nil {
		sess.mu.Unlock()
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	resp := client.ArriveResponse{
		Matched:  matched,
		Size:     sess.m.Size(),
		Cost:     sess.m.Cost(),
		Arrivals: sess.arrivals,
	}
	sess.mu.Unlock()

	s.stats.recordArrival(matched)
	writeJSON(w, http.StatusOK, resp)
}

// handleSessionDepart serves POST /v1/sessions/{id}/depart: remove one
// customer, releasing its slot and repairing the matching. An id that
// never arrived, or already departed, is 404.
func (s *Server) handleSessionDepart(w http.ResponseWriter, r *http.Request) {
	// Like arrivals, churn events are new work: reject them during
	// drain so event loops cannot hold Shutdown open. Reads stay
	// available.
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	var req client.DepartRequest
	if !decodeBody(w, r, maxArriveBody, &req) {
		return
	}
	sess, ok := s.lockSession(w, r.PathValue("id"))
	if !ok {
		return
	}
	wasMatched, err := sess.m.Depart(req.ID)
	if errors.Is(err, cca.ErrUnknownID) {
		sess.mu.Unlock()
		writeError(w, http.StatusNotFound, fmt.Sprintf("customer %d is not present", req.ID))
		return
	}
	if err != nil {
		sess.mu.Unlock()
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	if err := s.logEvent(sess, walEvent{Op: walOpDepart, ID: req.ID}); err != nil {
		sess.mu.Unlock()
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	resp := client.DepartResponse{
		WasMatched: wasMatched,
		Size:       sess.m.Size(),
		Cost:       sess.m.Cost(),
		Live:       sess.m.Live(),
	}
	sess.mu.Unlock()

	s.stats.recordDepart()
	writeJSON(w, http.StatusOK, resp)
}

// handleSessionResize serves POST /v1/sessions/{id}/resize: change one
// provider's capacity. Shrinking evicts and re-routes assignees;
// growing admits waiting customers. An index out of range is 404, a
// negative capacity 400.
func (s *Server) handleSessionResize(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	var req client.ResizeRequest
	if !decodeBody(w, r, maxArriveBody, &req) {
		return
	}
	if req.Cap < 0 {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("capacity must be >= 0, got %d", req.Cap))
		return
	}
	sess, ok := s.lockSession(w, r.PathValue("id"))
	if !ok {
		return
	}
	err := sess.m.ResizeProvider(req.Provider, req.Cap)
	if errors.Is(err, cca.ErrUnknownID) {
		sess.mu.Unlock()
		writeError(w, http.StatusNotFound, fmt.Sprintf("no provider %d in this session", req.Provider))
		return
	}
	if err != nil {
		sess.mu.Unlock()
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	if err := s.logEvent(sess, walEvent{Op: walOpResize, Provider: req.Provider, Cap: req.Cap}); err != nil {
		sess.mu.Unlock()
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	resp := client.ResizeResponse{
		Size:     sess.m.Size(),
		Cost:     sess.m.Cost(),
		Capacity: sess.m.Capacity(),
	}
	sess.mu.Unlock()

	s.stats.recordResize()
	writeJSON(w, http.StatusOK, resp)
}

// handleSessionMatching serves GET /v1/sessions/{id}/matching: the
// current optimal matching over everything that has arrived. Reads stay
// available during drain, and reading an unloaded session reloads it.
func (s *Server) handleSessionMatching(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.lockSession(w, r.PathValue("id"))
	if !ok {
		return
	}
	res := sess.m.Matching()
	sess.mu.Unlock()

	resp := client.MatchingResponse{Size: res.Size, Cost: res.Cost, Pairs: wirePairs(res.Pairs)}
	writeJSON(w, http.StatusOK, resp)
}

// handleSessionDelete serves DELETE /v1/sessions/{id}. Deletion is
// permanent — unlike a TTL unload, the WAL and snapshot are removed
// too. It stays allowed during drain: delete frees resources, and an
// orchestrated shutdown cleaning up its sessions must not be wedged by
// its own drain.
func (s *Server) handleSessionDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	sess, ok := s.sessions.remove(id)
	if !ok {
		// Not resident — but with persistence on, an unloaded session's
		// files may still exist and must die too.
		if s.persistEnabled() && validSessionID(id) {
			if _, err := os.Stat(s.sessionWALPath(id)); err == nil {
				s.removeSessionFiles(id)
				s.stats.recordDeleted()
				writeJSON(w, http.StatusOK, map[string]string{"status": "deleted"})
				return
			}
		}
		writeError(w, http.StatusNotFound, "no such session")
		return
	}
	sess.mu.Lock()
	sess.gone = true
	if sess.log != nil {
		sess.log.Close()
		sess.log = nil
	}
	sess.mu.Unlock()
	s.removeSessionFiles(id)
	s.stats.recordDeleted()
	writeJSON(w, http.StatusOK, map[string]string{"status": "deleted"})
}
