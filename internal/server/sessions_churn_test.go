package server_test

import (
	"context"
	"net/http"
	"strings"
	"testing"

	cca "repro"
	"repro/client"
	"repro/internal/datagen"
	"repro/internal/geo"
	"repro/internal/server"
)

// churnWorkload generates a deterministic scenario stream for the
// session churn tests.
func churnWorkload(t *testing.T, scenario string, events, providers int, seed int64) *datagen.ChurnWorkload {
	t.Helper()
	n := datagen.NewNetwork(8, geo.Rect{Max: geo.Point{X: 1000, Y: 1000}}, seed)
	w, err := datagen.NewChurn(scenario, n, datagen.ChurnConfig{Events: events, Providers: providers, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func sessionProviders(w *datagen.ChurnWorkload) ([]cca.Provider, []client.Provider) {
	core := make([]cca.Provider, len(w.Providers))
	wire := make([]client.Provider, len(w.Providers))
	for i, p := range w.Providers {
		core[i] = cca.Provider{Pt: cca.Point{X: p.Pt.X, Y: p.Pt.Y}, Cap: p.Cap}
		wire[i] = client.Provider{X: p.Pt.X, Y: p.Pt.Y, Cap: p.Cap}
	}
	return core, wire
}

// TestSessionChurnConformance replays a generated churn stream through
// the HTTP session endpoints and through an in-process DynamicMatcher
// with the same options, asserting every response's size/cost/flags
// equal the in-process values exactly — the wire format round-trips
// float64 losslessly, so any divergence is a real behavioral drift.
func TestSessionChurnConformance(t *testing.T) {
	for _, tc := range []struct {
		name   string
		budget int
	}{
		{"unlimited", 0},
		{"budget1", 1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			h := testServer(t, server.Config{})
			ctx := context.Background()
			w := churnWorkload(t, "ridehail", 300, 6, 17)
			core, wire := sessionProviders(w)

			info, err := h.c.NewSession(ctx, client.SessionRequest{Providers: wire, ReoptBudget: tc.budget})
			if err != nil {
				t.Fatal(err)
			}
			ref := cca.NewDynamicMatcherOpts(core, cca.DynamicOptions{ReoptBudget: tc.budget})

			for i, ev := range w.Events {
				switch ev.Kind {
				case datagen.EventArrive:
					resp, err := h.c.Arrive(ctx, info.ID, client.ArriveRequest{ID: ev.ID, X: ev.Pt.X, Y: ev.Pt.Y})
					if err != nil {
						t.Fatalf("event %d arrive: %v", i, err)
					}
					wantMatched, err := ref.Arrive(cca.Point{X: ev.Pt.X, Y: ev.Pt.Y}, ev.ID)
					if err != nil {
						t.Fatalf("event %d ref arrive: %v", i, err)
					}
					if resp.Matched != wantMatched || resp.Size != ref.Size() || resp.Cost != ref.Cost() {
						t.Fatalf("event %d arrive: got (%v,%d,%v), in-process (%v,%d,%v)",
							i, resp.Matched, resp.Size, resp.Cost, wantMatched, ref.Size(), ref.Cost())
					}
				case datagen.EventDepart:
					resp, err := h.c.Depart(ctx, info.ID, client.DepartRequest{ID: ev.ID})
					if err != nil {
						t.Fatalf("event %d depart: %v", i, err)
					}
					wantMatched, err := ref.Depart(ev.ID)
					if err != nil {
						t.Fatalf("event %d ref depart: %v", i, err)
					}
					if resp.WasMatched != wantMatched || resp.Size != ref.Size() || resp.Cost != ref.Cost() || resp.Live != ref.Live() {
						t.Fatalf("event %d depart: got (%v,%d,%v,%d), in-process (%v,%d,%v,%d)",
							i, resp.WasMatched, resp.Size, resp.Cost, resp.Live, wantMatched, ref.Size(), ref.Cost(), ref.Live())
					}
				case datagen.EventResize:
					resp, err := h.c.Resize(ctx, info.ID, client.ResizeRequest{Provider: ev.Provider, Cap: ev.NewCap})
					if err != nil {
						t.Fatalf("event %d resize: %v", i, err)
					}
					if err := ref.ResizeProvider(ev.Provider, ev.NewCap); err != nil {
						t.Fatalf("event %d ref resize: %v", i, err)
					}
					if resp.Size != ref.Size() || resp.Cost != ref.Cost() || resp.Capacity != ref.Capacity() {
						t.Fatalf("event %d resize: got (%d,%v,%d), in-process (%d,%v,%d)",
							i, resp.Size, resp.Cost, resp.Capacity, ref.Size(), ref.Cost(), ref.Capacity())
					}
				}
			}

			// The final matching must be byte-identical to the in-process one.
			got, err := h.c.Matching(ctx, info.ID)
			if err != nil {
				t.Fatal(err)
			}
			res := ref.Matching()
			want := make(map[client.Pair]bool, len(res.Pairs))
			for _, p := range res.Pairs {
				want[client.Pair{Provider: p.Provider, Customer: p.CustomerID, X: p.CustomerPt.X, Y: p.CustomerPt.Y, Dist: p.Dist}] = true
			}
			if len(got.Pairs) != len(want) || got.Size != res.Size || got.Cost != res.Cost {
				t.Fatalf("final matching: got size %d cost %v, in-process size %d cost %v",
					got.Size, got.Cost, res.Size, res.Cost)
			}
			for _, p := range got.Pairs {
				if !want[p] {
					t.Fatalf("final matching: pair %+v not in in-process matching", p)
				}
			}
		})
	}
}

// TestSessionChurnNetworkConformance replays a churn stream through a
// network-metric session and through an in-process DynamicMatcher over
// the same road network, asserting byte-identical sizes and costs at
// every event. The session forces the contraction hierarchy on
// (net_ch: 1) while the in-process reference keeps it off, so any
// divergence between hierarchy queries and plain forward Dijkstra
// surfaces here as a cost mismatch — the canonical-float contract,
// checked end to end through the wire.
func TestSessionChurnNetworkConformance(t *testing.T) {
	h := testServer(t, server.Config{})
	ctx := context.Background()
	w := churnWorkload(t, "ridehail", 200, 5, 23)
	core, wire := sessionProviders(w)

	const grid, seed = 16, int64(77)
	info, err := h.c.NewSession(ctx, client.SessionRequest{
		Providers: wire,
		Metric:    "network",
		NetGrid:   grid,
		NetSeed:   seed,
		NetCH:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	refMetric := cca.RoadNetworkMetric(grid, cca.Rect{Max: cca.Point{X: 1000, Y: 1000}}, seed)
	ref := cca.NewDynamicMatcherOpts(core, cca.DynamicOptions{Metric: refMetric})

	for i, ev := range w.Events {
		switch ev.Kind {
		case datagen.EventArrive:
			resp, err := h.c.Arrive(ctx, info.ID, client.ArriveRequest{ID: ev.ID, X: ev.Pt.X, Y: ev.Pt.Y})
			if err != nil {
				t.Fatalf("event %d arrive: %v", i, err)
			}
			wantMatched, err := ref.Arrive(cca.Point{X: ev.Pt.X, Y: ev.Pt.Y}, ev.ID)
			if err != nil {
				t.Fatalf("event %d ref arrive: %v", i, err)
			}
			if resp.Matched != wantMatched || resp.Size != ref.Size() || resp.Cost != ref.Cost() {
				t.Fatalf("event %d arrive: got (%v,%d,%v), in-process (%v,%d,%v)",
					i, resp.Matched, resp.Size, resp.Cost, wantMatched, ref.Size(), ref.Cost())
			}
		case datagen.EventDepart:
			resp, err := h.c.Depart(ctx, info.ID, client.DepartRequest{ID: ev.ID})
			if err != nil {
				t.Fatalf("event %d depart: %v", i, err)
			}
			wantMatched, err := ref.Depart(ev.ID)
			if err != nil {
				t.Fatalf("event %d ref depart: %v", i, err)
			}
			if resp.WasMatched != wantMatched || resp.Size != ref.Size() || resp.Cost != ref.Cost() {
				t.Fatalf("event %d depart: got (%v,%d,%v), in-process (%v,%d,%v)",
					i, resp.WasMatched, resp.Size, resp.Cost, wantMatched, ref.Size(), ref.Cost())
			}
		case datagen.EventResize:
			resp, err := h.c.Resize(ctx, info.ID, client.ResizeRequest{Provider: ev.Provider, Cap: ev.NewCap})
			if err != nil {
				t.Fatalf("event %d resize: %v", i, err)
			}
			if err := ref.ResizeProvider(ev.Provider, ev.NewCap); err != nil {
				t.Fatalf("event %d ref resize: %v", i, err)
			}
			if resp.Size != ref.Size() || resp.Cost != ref.Cost() || resp.Capacity != ref.Capacity() {
				t.Fatalf("event %d resize: got (%d,%v,%d), in-process (%d,%v,%d)",
					i, resp.Size, resp.Cost, resp.Capacity, ref.Size(), ref.Cost(), ref.Capacity())
			}
		}
	}

	got, err := h.c.Matching(ctx, info.ID)
	if err != nil {
		t.Fatal(err)
	}
	res := ref.Matching()
	if got.Size != res.Size || got.Cost != res.Cost {
		t.Fatalf("final matching: got size %d cost %v, in-process size %d cost %v",
			got.Size, got.Cost, res.Size, res.Cost)
	}
}

// TestSessionMetricErrors covers metric validation on session creation:
// unknown metric names, out-of-range grids, and invalid hierarchy modes
// are all 400.
func TestSessionMetricErrors(t *testing.T) {
	h := testServer(t, server.Config{})
	ctx := context.Background()
	providers := []client.Provider{{X: 0, Y: 0, Cap: 1}}

	if _, err := h.c.NewSession(ctx, client.SessionRequest{Providers: providers, Metric: "manhattan"}); statusOf(err) != http.StatusBadRequest {
		t.Fatalf("unknown metric: %v, want 400", err)
	}
	if _, err := h.c.NewSession(ctx, client.SessionRequest{Providers: providers, Metric: "network", NetGrid: 1}); statusOf(err) != http.StatusBadRequest {
		t.Fatalf("grid too small: %v, want 400", err)
	}
	if _, err := h.c.NewSession(ctx, client.SessionRequest{Providers: providers, Metric: "network", NetCH: 7}); statusOf(err) != http.StatusBadRequest {
		t.Fatalf("invalid net_ch: %v, want 400", err)
	}
	// Case-insensitive metric names, like solve instances.
	if _, err := h.c.NewSession(ctx, client.SessionRequest{Providers: providers, Metric: "Network", NetGrid: 8}); err != nil {
		t.Fatalf("capitalized metric name: %v", err)
	}
}

// TestSessionChurnErrors covers the churn endpoints' failure statuses:
// 409 for duplicate arrivals (including re-arriving a departed id),
// 404 for unknown ids, sessions, and provider indices, and 400 for
// invalid capacities and budgets.
func TestSessionChurnErrors(t *testing.T) {
	h := testServer(t, server.Config{})
	ctx := context.Background()
	providers := []client.Provider{{X: 0, Y: 0, Cap: 2}, {X: 10, Y: 10, Cap: 1}}

	if _, err := h.c.NewSession(ctx, client.SessionRequest{Providers: providers, ReoptBudget: -1}); statusOf(err) != http.StatusBadRequest {
		t.Fatalf("negative reopt_budget: %v, want 400", err)
	}

	info, err := h.c.NewSession(ctx, client.SessionRequest{Providers: providers})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.c.Arrive(ctx, info.ID, client.ArriveRequest{ID: 1, X: 1, Y: 1}); err != nil {
		t.Fatal(err)
	}

	if _, err := h.c.Arrive(ctx, info.ID, client.ArriveRequest{ID: 1, X: 2, Y: 2}); statusOf(err) != http.StatusConflict {
		t.Fatalf("duplicate arrive: %v, want 409", err)
	}
	if _, err := h.c.Depart(ctx, info.ID, client.DepartRequest{ID: 99}); statusOf(err) != http.StatusNotFound {
		t.Fatalf("depart unknown id: %v, want 404", err)
	}
	if _, err := h.c.Depart(ctx, info.ID, client.DepartRequest{ID: 1}); err != nil {
		t.Fatalf("depart: %v", err)
	}
	if _, err := h.c.Depart(ctx, info.ID, client.DepartRequest{ID: 1}); statusOf(err) != http.StatusNotFound {
		t.Fatalf("double depart: %v, want 404", err)
	}
	// A departed id stays burned: the session's id space is append-only.
	if _, err := h.c.Arrive(ctx, info.ID, client.ArriveRequest{ID: 1, X: 3, Y: 3}); statusOf(err) != http.StatusConflict {
		t.Fatalf("re-arrive departed id: %v, want 409", err)
	}
	if _, err := h.c.Resize(ctx, info.ID, client.ResizeRequest{Provider: 2, Cap: 1}); statusOf(err) != http.StatusNotFound {
		t.Fatalf("resize out of range: %v, want 404", err)
	}
	if _, err := h.c.Resize(ctx, info.ID, client.ResizeRequest{Provider: 0, Cap: -1}); statusOf(err) != http.StatusBadRequest {
		t.Fatalf("resize negative: %v, want 400", err)
	}
	if _, err := h.c.Depart(ctx, "nope", client.DepartRequest{ID: 1}); statusOf(err) != http.StatusNotFound {
		t.Fatalf("depart on unknown session: %v, want 404", err)
	}
	if _, err := h.c.Resize(ctx, "nope", client.ResizeRequest{Provider: 0, Cap: 1}); statusOf(err) != http.StatusNotFound {
		t.Fatalf("resize on unknown session: %v, want 404", err)
	}
}

// TestSessionChurnDrain: once draining, churn events are new work and
// are rejected with 503, while the matching stays readable.
func TestSessionChurnDrain(t *testing.T) {
	h := testServer(t, server.Config{})
	ctx := context.Background()
	info, err := h.c.NewSession(ctx, client.SessionRequest{Providers: []client.Provider{{Cap: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.c.Arrive(ctx, info.ID, client.ArriveRequest{ID: 1, X: 1, Y: 1}); err != nil {
		t.Fatal(err)
	}
	h.srv.Drain()
	if _, err := h.c.Depart(ctx, info.ID, client.DepartRequest{ID: 1}); statusOf(err) != http.StatusServiceUnavailable {
		t.Fatalf("depart while draining: %v, want 503", err)
	}
	if _, err := h.c.Resize(ctx, info.ID, client.ResizeRequest{Provider: 0, Cap: 2}); statusOf(err) != http.StatusServiceUnavailable {
		t.Fatalf("resize while draining: %v, want 503", err)
	}
	if m, err := h.c.Matching(ctx, info.ID); err != nil || m.Size != 1 {
		t.Fatalf("matching should stay readable while draining: %v %+v", err, m)
	}
}

// TestSessionChurnMetrics asserts the session churn counters appear in
// /metrics with the exact event counts.
func TestSessionChurnMetrics(t *testing.T) {
	h := testServer(t, server.Config{})
	ctx := context.Background()
	info, err := h.c.NewSession(ctx, client.SessionRequest{Providers: []client.Provider{{Cap: 3}}})
	if err != nil {
		t.Fatal(err)
	}
	for id := int64(1); id <= 3; id++ {
		if _, err := h.c.Arrive(ctx, info.ID, client.ArriveRequest{ID: id, X: float64(id), Y: 0}); err != nil {
			t.Fatal(err)
		}
	}
	for id := int64(1); id <= 2; id++ {
		if _, err := h.c.Depart(ctx, info.ID, client.DepartRequest{ID: id}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := h.c.Resize(ctx, info.ID, client.ResizeRequest{Provider: 0, Cap: 1}); err != nil {
		t.Fatal(err)
	}
	text, err := h.c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"ccad_sessions_arrivals_total 3",
		"ccad_sessions_departures_total 2",
		"ccad_sessions_resizes_total 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// statusOf extracts the HTTP status from a client error (0 when nil or
// not an APIError).
func statusOf(err error) int {
	if ae, ok := err.(*client.APIError); ok {
		return ae.StatusCode
	}
	return 0
}
