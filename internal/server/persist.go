// Session persistence: a write-ahead log per session plus periodic
// snapshots, so a ccad restart (including SIGKILL) recovers every
// session's matcher byte-identically.
//
// Design: the WAL is the source of truth. Every accepted event (the
// header "create" record, then arrive/depart/resize) is appended — and
// fsynced — after the matcher applied it and before the response is
// written, so an acknowledged event is durable and a crash loses at
// most an unacknowledged one. Recovery replays the full WAL through the
// same DynamicMatcher event API that served the live traffic; since the
// matcher is deterministic (the churn conformance suite pins this),
// the replayed matching is byte-identical to the uninterrupted one —
// replaying only a snapshot's live set would land on a different (if
// equally optimal) matching, so snapshots are *checkpoints*, not the
// recovery path: they give the TTL sweeper a verified on-disk summary
// when it unloads an idle session, and recovery cross-checks the
// replayed size/cost against the latest snapshot to detect divergence.
package server

import (
	"encoding/json"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	cca "repro"
	"repro/client"
	"repro/internal/storage"
)

// walOp is the record discriminator of a session WAL.
const (
	walOpCreate = "create"
	walOpArrive = "arrive"
	walOpDepart = "depart"
	walOpResize = "resize"
)

// walEvent is one JSON-encoded session WAL record. The first record of
// every log is a walOpCreate carrying the session's full configuration
// (providers, metric, options); every later record is one churn event.
// Coordinates travel through encoding/json, which round-trips float64
// exactly, so replay feeds the matcher bit-identical inputs.
type walEvent struct {
	Op string `json:"op"`
	// walOpCreate: the session header.
	Providers    []client.Provider `json:"providers,omitempty"`
	ReoptBudget  int               `json:"reopt_budget,omitempty"`
	Metric       string            `json:"metric,omitempty"`
	NetGrid      int               `json:"net_grid,omitempty"`
	NetSeed      int64             `json:"net_seed,omitempty"`
	NetLandmarks int               `json:"net_landmarks,omitempty"`
	NetCH        int               `json:"net_ch,omitempty"`
	// walOpArrive (ID, X, Y) / walOpDepart (ID).
	ID int64   `json:"id,omitempty"`
	X  float64 `json:"x,omitempty"`
	Y  float64 `json:"y,omitempty"`
	// walOpResize.
	Provider int `json:"provider,omitempty"`
	Cap      int `json:"cap,omitempty"`
}

// sessionSnapshot is the checkpoint payload: the live customer set and
// matching summary as of Events applied events. It is intentionally not
// sufficient to rebuild the matcher byte-identically (see the package
// comment); Size/Cost let recovery verify a full-WAL replay that caught
// up to Events, and Live documents the working set for operators.
type sessionSnapshot struct {
	ID       string            `json:"id"`
	Events   int               `json:"events"` // churn events applied (excludes create)
	Arrivals int               `json:"arrivals"`
	Size     int               `json:"size"`
	Cost     float64           `json:"cost"`
	Capacity int               `json:"capacity"`
	Live     []client.Customer `json:"live"`
}

func (s *Server) persistEnabled() bool { return s.cfg.StateDir != "" }

func (s *Server) sessionsDir() string { return filepath.Join(s.cfg.StateDir, "sessions") }

func (s *Server) sessionWALPath(id string) string {
	return filepath.Join(s.sessionsDir(), id+".wal")
}

func (s *Server) sessionSnapPath(id string) string {
	return filepath.Join(s.sessionsDir(), id+".snap")
}

// buildMatcher validates a session request and constructs its matcher.
// Shared by POST /v1/sessions and WAL replay, so a session that was
// valid at creation always revalidates on recovery (and both paths hit
// the same network-metric memo and bounds).
func (s *Server) buildMatcher(req client.SessionRequest) (*cca.DynamicMatcher, int, error) {
	if len(req.Providers) == 0 {
		return nil, 0, fmt.Errorf("no providers")
	}
	if req.ReoptBudget < 0 {
		return nil, 0, fmt.Errorf("reopt_budget must be >= 0, got %d", req.ReoptBudget)
	}
	providers := make([]cca.Provider, len(req.Providers))
	capacity := 0
	for i, q := range req.Providers {
		if q.Cap <= 0 {
			return nil, 0, fmt.Errorf("provider %d: capacity must be positive, got %d", i, q.Cap)
		}
		providers[i] = cca.Provider{Pt: cca.Point{X: q.X, Y: q.Y}, Cap: q.Cap}
		capacity += q.Cap
	}
	opts := cca.DynamicOptions{ReoptBudget: req.ReoptBudget}
	switch strings.ToLower(req.Metric) {
	case "", "euclidean":
	case "network":
		grid, seed := req.NetGrid, req.NetSeed
		if grid == 0 {
			grid = 32
		}
		if seed == 0 {
			seed = 2008
		}
		m, err := s.networkMetric(grid, seed, req.NetLandmarks, req.NetCH)
		if err != nil {
			return nil, 0, err
		}
		opts.Metric = m
	default:
		return nil, 0, fmt.Errorf("unknown metric %q (euclidean, network)", req.Metric)
	}
	return cca.NewDynamicMatcherOpts(providers, opts), capacity, nil
}

// attachWAL creates the session's log and writes its header record.
// Called for fresh sessions when persistence is on.
func (s *Server) attachWAL(sess *session, req client.SessionRequest) error {
	fs, err := storage.CreateFileStore(s.sessionWALPath(sess.id), storage.DefaultPageSize)
	if err != nil {
		return err
	}
	l, err := storage.NewLog(fs)
	if err != nil {
		fs.Close()
		return err
	}
	header := walEvent{
		Op:           walOpCreate,
		Providers:    req.Providers,
		ReoptBudget:  req.ReoptBudget,
		Metric:       req.Metric,
		NetGrid:      req.NetGrid,
		NetSeed:      req.NetSeed,
		NetLandmarks: req.NetLandmarks,
		NetCH:        req.NetCH,
	}
	data, err := json.Marshal(header)
	if err != nil {
		l.Close()
		return err
	}
	if err := l.Append(data); err != nil {
		l.Close()
		return err
	}
	sess.log = l
	return nil
}

// logEvent makes one churn event durable: append + fsync, then count it
// toward the snapshot cadence. Called with sess.mu held, after the
// matcher accepted the event and before the response is written — an
// error here is reported to the client as 500 (the matcher did advance,
// but the client cannot assume the event will survive a restart).
func (s *Server) logEvent(sess *session, ev walEvent) error {
	if sess.log == nil {
		return nil
	}
	data, err := json.Marshal(ev)
	if err != nil {
		return fmt.Errorf("session persistence: %w", err)
	}
	begin := time.Now()
	if err := sess.log.Append(data); err != nil {
		return fmt.Errorf("session persistence: %w", err)
	}
	s.stats.walFsync.ObserveDuration(time.Since(begin))
	switch ev.Op {
	case walOpArrive:
		if sess.live == nil {
			sess.live = make(map[int64]client.Customer)
		}
		sess.live[ev.ID] = client.Customer{ID: ev.ID, X: ev.X, Y: ev.Y}
	case walOpDepart:
		delete(sess.live, ev.ID)
	}
	sess.events++
	if s.cfg.SnapshotEvery > 0 && sess.events%s.cfg.SnapshotEvery == 0 {
		if err := s.writeSnapshot(sess); err != nil {
			// A failed checkpoint is not a failed event: the WAL already
			// holds the record. Log and continue.
			log.Printf("ccad: session %s: snapshot: %v", sess.id, err)
		} else {
			s.stats.recordSnapshot()
		}
	}
	return nil
}

// writeSnapshot checkpoints the session's live set and matching summary.
// Called with sess.mu held.
func (s *Server) writeSnapshot(sess *session) error {
	live := make([]client.Customer, 0, len(sess.live))
	for _, c := range sess.live {
		live = append(live, c)
	}
	sort.Slice(live, func(i, j int) bool { return live[i].ID < live[j].ID })
	snap := sessionSnapshot{
		ID:       sess.id,
		Events:   sess.events,
		Arrivals: sess.arrivals,
		Size:     sess.m.Size(),
		Cost:     sess.m.Cost(),
		Capacity: sess.m.Capacity(),
		Live:     live,
	}
	data, err := json.Marshal(snap)
	if err != nil {
		return err
	}
	return storage.WriteSnapshot(s.sessionSnapPath(sess.id), data)
}

// replaySession rebuilds one session from its WAL, feeding every record
// through the same DynamicMatcher event API the live handlers use.
// Replay is lenient the way recovery must be: a torn final record was
// truncated by the log layer (the event was never acknowledged), and a
// per-event sentinel error (duplicate arrive / unknown depart) can only
// mean the WAL and matcher disagree — that is corruption, reported as
// an error rather than papered over.
func (s *Server) replaySession(id string) (*session, error) {
	fs, err := storage.OpenFileStore(s.sessionWALPath(id), storage.DefaultPageSize)
	if err != nil {
		return nil, err
	}
	sess := &session{id: id}
	replayed := 0
	l, err := storage.OpenLog(fs, func(payload []byte) error {
		var ev walEvent
		if err := json.Unmarshal(payload, &ev); err != nil {
			return fmt.Errorf("record %d: %w", replayed, err)
		}
		switch ev.Op {
		case walOpCreate:
			if sess.m != nil {
				return fmt.Errorf("record %d: duplicate create", replayed)
			}
			req := client.SessionRequest{
				Providers:    ev.Providers,
				ReoptBudget:  ev.ReoptBudget,
				Metric:       ev.Metric,
				NetGrid:      ev.NetGrid,
				NetSeed:      ev.NetSeed,
				NetLandmarks: ev.NetLandmarks,
				NetCH:        ev.NetCH,
			}
			m, _, err := s.buildMatcher(req)
			if err != nil {
				return fmt.Errorf("create: %w", err)
			}
			sess.m = m
		case walOpArrive:
			if sess.m == nil {
				return fmt.Errorf("record %d: arrive before create", replayed)
			}
			if _, err := sess.m.Arrive(cca.Point{X: ev.X, Y: ev.Y}, ev.ID); err != nil {
				return fmt.Errorf("record %d: arrive %d: %w", replayed, ev.ID, err)
			}
			sess.arrivals++
			if sess.live == nil {
				sess.live = make(map[int64]client.Customer)
			}
			sess.live[ev.ID] = client.Customer{ID: ev.ID, X: ev.X, Y: ev.Y}
			sess.events++
		case walOpDepart:
			if sess.m == nil {
				return fmt.Errorf("record %d: depart before create", replayed)
			}
			if _, err := sess.m.Depart(ev.ID); err != nil {
				return fmt.Errorf("record %d: depart %d: %w", replayed, ev.ID, err)
			}
			delete(sess.live, ev.ID)
			sess.events++
		case walOpResize:
			if sess.m == nil {
				return fmt.Errorf("record %d: resize before create", replayed)
			}
			if err := sess.m.ResizeProvider(ev.Provider, ev.Cap); err != nil {
				return fmt.Errorf("record %d: resize provider %d: %w", replayed, ev.Provider, err)
			}
			sess.events++
		default:
			return fmt.Errorf("record %d: unknown op %q", replayed, ev.Op)
		}
		replayed++
		return nil
	})
	if err != nil {
		fs.Close()
		return nil, fmt.Errorf("session %s: replay: %w", id, err)
	}
	if sess.m == nil {
		l.Close()
		return nil, fmt.Errorf("session %s: empty WAL", id)
	}
	sess.log = l
	sess.touch()
	// Cross-check against the latest checkpoint when it is current: a
	// replay that caught up to the snapshot's event count must agree on
	// the matching summary, or the state diverged (corruption).
	if data, err := storage.ReadSnapshot(s.sessionSnapPath(id)); err == nil {
		var snap sessionSnapshot
		if json.Unmarshal(data, &snap) == nil && snap.Events == sess.events {
			if snap.Size != sess.m.Size() || snap.Cost != sess.m.Cost() {
				l.Close()
				return nil, fmt.Errorf("session %s: replay diverged from snapshot (size %d/%d, cost %v/%v)",
					id, sess.m.Size(), snap.Size, sess.m.Cost(), snap.Cost)
			}
		}
	}
	return sess, nil
}

// recoverSessions replays every session WAL under the state directory
// at boot. A session that fails to replay is left on disk (for post-
// mortem) but not served; recovery of the rest proceeds.
func (s *Server) recoverSessions() (int, error) {
	dir := s.sessionsDir()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return 0, fmt.Errorf("sessions dir: %w", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, fmt.Errorf("sessions dir: %w", err)
	}
	recovered := 0
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".wal") {
			continue
		}
		id := strings.TrimSuffix(e.Name(), ".wal")
		sess, err := s.replaySession(id)
		if err != nil {
			log.Printf("ccad: %v (session left on disk, not served)", err)
			continue
		}
		if err := s.sessions.put(id, sess); err != nil {
			sess.log.Close()
			log.Printf("ccad: session %s: %v", id, err)
			continue
		}
		recovered++
	}
	s.recovered = recovered
	s.stats.recordRecovered(recovered)
	return recovered, nil
}

// loadSession reloads one session from its WAL on demand — the reload
// half of the TTL sweeper's unload. Reloads are serialized (cold replay
// is expensive; two goroutines racing it would double the work and race
// the put), and the map is re-checked under that serialization.
func (s *Server) loadSession(id string) (*session, error) {
	if !s.persistEnabled() || !validSessionID(id) {
		return nil, os.ErrNotExist
	}
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	if sess, ok := s.sessions.get(id); ok {
		return sess, nil
	}
	sess, err := s.replaySession(id)
	if err != nil {
		return nil, err
	}
	if err := s.sessions.put(id, sess); err != nil {
		sess.log.Close()
		return nil, err
	}
	s.stats.recordReloaded()
	return sess, nil
}

// validSessionID mirrors newID's output: 16 lowercase hex characters.
// Path traversal through a session id is impossible by construction.
func validSessionID(id string) bool {
	if len(id) != 16 {
		return false
	}
	for _, c := range id {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// removeSessionFiles deletes a session's WAL and snapshot. Used by
// DELETE (a deleted session is gone permanently, unlike a swept one).
func (s *Server) removeSessionFiles(id string) {
	if !s.persistEnabled() || !validSessionID(id) {
		return
	}
	os.Remove(s.sessionWALPath(id))
	os.Remove(s.sessionSnapPath(id))
}

// sweepLoop runs the session TTL sweeper until stop closes.
func (s *Server) sweepLoop() {
	interval := s.cfg.SessionTTL / 4
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			s.sweepIdleSessions()
		}
	}
}

// sweepIdleSessions checkpoints and unloads every session idle past the
// TTL. With persistence on, an unloaded session's state lives entirely
// in its WAL + snapshot and a later touch reloads it; without a state
// directory, expiry is deletion (documented: -session-ttl without
// -state-dir discards idle sessions).
func (s *Server) sweepIdleSessions() int {
	cutoff := time.Now().Add(-s.cfg.SessionTTL).UnixNano()
	swept := 0
	for id, sess := range s.sessions.snapshot() {
		if sess.lastTouch.Load() > cutoff {
			continue
		}
		sess.mu.Lock()
		// Re-check under the session lock: a handler may have touched it
		// between the snapshot and here, or a concurrent delete won.
		if sess.gone || sess.lastTouch.Load() > cutoff {
			sess.mu.Unlock()
			continue
		}
		if sess.log != nil {
			if err := s.writeSnapshot(sess); err != nil {
				log.Printf("ccad: session %s: checkpoint on unload: %v", id, err)
			}
			sess.log.Close()
			sess.log = nil
		}
		sess.gone = true
		sess.mu.Unlock()
		s.sessions.removeIfSame(id, sess)
		s.stats.recordExpired()
		swept++
	}
	return swept
}
