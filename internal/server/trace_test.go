package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/client"
	"repro/internal/server"
)

// tracedSolve posts one solve request with ?trace=1 and returns the
// decoded response plus the client-measured wall time.
func tracedSolve(t *testing.T, url string, req client.SolveRequest) (client.SolveResponse, time.Duration) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	begin := time.Now()
	resp, err := http.Post(url+"/v1/solve?trace=1", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out client.SolveResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	wall := time.Since(begin)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve status %d", resp.StatusCode)
	}
	return out, wall
}

// shardedNetRequest is the canonical traced instance: the sharded
// meta-solver over the road-network metric, one shard worker so the
// region loop is sequential (deterministic span order).
func shardedNetRequest(nCustomers int) client.SolveRequest {
	pts := testPoints(nCustomers, 97)
	return client.SolveRequest{Instances: []client.Instance{{
		Solver:    "sharded:ida",
		Providers: []client.Provider{{X: 200, Y: 200, Cap: nCustomers / 3}, {X: 800, Y: 300, Cap: nCustomers / 3}, {X: 500, Y: 800, Cap: nCustomers / 3}},
		Customers: wireCustomers(pts),
		Metric:    "network",
		NetGrid:   8,
		NetSeed:   3,
		Options:   &client.Options{Shards: 2, ShardWorkers: 1},
	}}}
}

// traceShape renders a span tree's structure — names, nesting, sorted
// attribute keys — with durations and attribute values excluded, so
// two runs of the same request compare equal.
func traceShape(n *client.TraceSpan, indent string, sb *strings.Builder) {
	keys := make([]string, 0, len(n.Attrs))
	for k := range n.Attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Fprintf(sb, "%s%s[%s]\n", indent, n.Name, strings.Join(keys, ","))
	for _, c := range n.Children {
		traceShape(c, indent+"  ", sb)
	}
}

// findSpan returns the first span with the given name, depth-first.
func findSpan(n *client.TraceSpan, name string) *client.TraceSpan {
	if n == nil {
		return nil
	}
	if n.Name == name {
		return n
	}
	for _, c := range n.Children {
		if f := findSpan(c, name); f != nil {
			return f
		}
	}
	return nil
}

// countSpans counts spans with the given name.
func countSpans(n *client.TraceSpan, name string) int {
	if n == nil {
		return 0
	}
	c := 0
	if n.Name == name {
		c = 1
	}
	for _, ch := range n.Children {
		c += countSpans(ch, name)
	}
	return c
}

// sumSelfNS sums every span's self time (duration minus its children's
// durations, clamped at zero). Overlay spans are skipped — their time
// already lives inside the siblings they annotate.
func sumSelfNS(n *client.TraceSpan) int64 {
	if n.Overlay {
		return 0
	}
	var kids int64
	var total int64
	for _, c := range n.Children {
		if c.Overlay {
			continue
		}
		kids += c.DurNS
		total += sumSelfNS(c)
	}
	self := n.DurNS - kids
	if self < 0 {
		self = 0
	}
	return total + self
}

// TestTraceStructureDeterministic: the same traced request against two
// fresh servers yields byte-identical span structure — names, nesting,
// and attribute keys are part of the API surface; only durations and
// attribute values may differ between runs.
func TestTraceStructureDeterministic(t *testing.T) {
	req := shardedNetRequest(300)
	shapes := make([]string, 2)
	for i := range shapes {
		h := testServer(t, server.Config{})
		out, _ := tracedSolve(t, h.url, req)
		if out.Trace == nil {
			t.Fatal("trace=1 returned no trace")
		}
		var sb strings.Builder
		traceShape(out.Trace, "", &sb)
		shapes[i] = sb.String()
	}
	if shapes[0] != shapes[1] {
		t.Errorf("trace structure not deterministic:\nrun 1:\n%s\nrun 2:\n%s", shapes[0], shapes[1])
	}

	// Pin the phases the structure must carry and their nesting.
	h := testServer(t, server.Config{})
	out, _ := tracedSolve(t, h.url, req)
	root := out.Trace
	if root.Name != "server" {
		t.Fatalf("root span %q, want server", root.Name)
	}
	for _, name := range []string{"read", "instance", "queue", "solve", "solver", "partition", "region-solve", "reconcile", "netmetric-query", "flowgraph-build", "augment"} {
		if findSpan(root, name) == nil {
			var sb strings.Builder
			traceShape(root, "", &sb)
			t.Fatalf("trace carries no %q span:\n%s", name, sb.String())
		}
	}
	if n := countSpans(root, "region-solve"); n != 2 {
		t.Errorf("expected 2 region-solve spans for shards:2, got %d", n)
	}
	// Nesting: queue and solve live under instance; partition under the
	// meta solver span; the leaf solver nests inside each region.
	inst := findSpan(root, "instance")
	if findSpan(inst, "queue") == nil || findSpan(inst, "solve") == nil {
		t.Error("queue/solve spans not nested under instance")
	}
	meta := findSpan(root, "solver")
	if got := meta.Attrs["name"]; got != "sharded:ida" {
		t.Errorf("outer solver span names %v, want sharded:ida", got)
	}
	if findSpan(meta, "partition") == nil || findSpan(meta, "reconcile") == nil {
		t.Error("partition/reconcile not nested under the meta solver span")
	}
	region := findSpan(root, "region-solve")
	leaf := findSpan(region, "solver")
	if leaf == nil {
		t.Fatal("region-solve has no nested leaf solver span")
	}
	if got := leaf.Attrs["name"]; got != "ida" {
		t.Errorf("leaf solver span names %v, want ida", got)
	}
	aug := findSpan(leaf, "augment")
	if aug == nil {
		t.Fatal("leaf solver has no augment span")
	}
	if _, ok := aug.Attrs["iterations"]; !ok {
		t.Errorf("augment span missing iterations attribute: %v", aug.Attrs)
	}
	nq := findSpan(leaf, "netmetric-query")
	if nq == nil {
		t.Fatal("leaf solver has no netmetric-query span")
	}
	if _, ok := nq.Attrs["calls"]; !ok {
		t.Errorf("netmetric-query span missing calls attribute: %v", nq.Attrs)
	}
}

// TestTraceSelfTimeAcceptance: the span tree accounts for the request —
// summed self-times across all spans must land within 20% of the
// client-observed wall time, so the trace cannot silently omit a
// dominant phase.
func TestTraceSelfTimeAcceptance(t *testing.T) {
	h := testServer(t, server.Config{})
	out, wall := tracedSolve(t, h.url, shardedNetRequest(2000))
	if out.Trace == nil {
		t.Fatal("no trace in response")
	}
	if out.Fleet.Errors > 0 {
		t.Fatalf("solve errored: %+v", out.Results)
	}
	self := time.Duration(sumSelfNS(out.Trace))
	lo, hi := time.Duration(float64(wall)*0.8), time.Duration(float64(wall)*1.2)
	if self < lo || self > hi {
		t.Errorf("summed self-times %v outside ±20%% of wall %v", self, wall)
	}
}

// TestTraceBodyFlag: "trace": true inside the request body works like
// ?trace=1 (the SDK path), and an untraced request carries no trace.
func TestTraceBodyFlag(t *testing.T) {
	h := testServer(t, server.Config{})
	ctx := context.Background()
	req := shardedNetRequest(200)
	req.Trace = true
	out, err := h.c.Solve(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if out.Trace == nil || out.Trace.Name != "server" {
		t.Fatalf("body trace flag produced no trace: %+v", out.Trace)
	}
	// The body flag is only seen after the body is read, so the read
	// phase cannot be covered — but the instance must be.
	if findSpan(out.Trace, "instance") == nil {
		t.Error("body-flag trace has no instance span")
	}

	req.Trace = false
	out2, err := h.c.Solve(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if out2.Trace != nil {
		t.Error("untraced request returned a trace")
	}
	// Fleet queue-wait surfaces the histogram alongside the legacy mean.
	if out2.Fleet.QueueWaitHist == nil || out2.Fleet.QueueWaitHist.Count != 1 {
		t.Errorf("fleet queue-wait histogram missing or wrong count: %+v", out2.Fleet.QueueWaitHist)
	}
}

// TestTraceStreamed: streamed responses attach the trace to the final
// fleet envelope.
func TestTraceStreamed(t *testing.T) {
	h := testServer(t, server.Config{})
	body, err := json.Marshal(shardedNetRequest(200))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(h.url+"/v1/solve?trace=1&stream=ndjson", "application/x-ndjson", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	dec := json.NewDecoder(resp.Body)
	var last client.StreamEnvelope
	sawTrace := false
	for dec.More() {
		var env client.StreamEnvelope
		if err := dec.Decode(&env); err != nil {
			t.Fatal(err)
		}
		if env.Trace != nil {
			sawTrace = true
			if env.Fleet == nil {
				t.Error("trace attached to a non-fleet envelope")
			}
		}
		last = env
	}
	if !sawTrace {
		t.Fatal("no envelope carried the trace")
	}
	if last.Trace == nil || findSpan(last.Trace, "solve") == nil {
		t.Error("final envelope's trace misses the solve span")
	}
}

// TestSlowSolveLog: a threshold below any real solve's wall time makes
// every solve log a structured warning through the configured logger.
func TestSlowSolveLog(t *testing.T) {
	var mu sync.Mutex
	var buf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(lockedWriter{mu: &mu, w: &buf}, nil))
	h := testServer(t, server.Config{
		SlowSolveThreshold: time.Nanosecond,
		Logger:             logger,
	})
	if _, err := h.c.Solve(context.Background(), shardedNetRequest(200)); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	logged := buf.String()
	mu.Unlock()
	if !strings.Contains(logged, "slow solve") {
		t.Fatalf("no slow-solve warning logged; log: %q", logged)
	}
	var entry map[string]any
	if err := json.Unmarshal([]byte(strings.SplitN(logged, "\n", 2)[0]), &entry); err != nil {
		t.Fatalf("slow-solve log line is not JSON: %v", err)
	}
	if entry["solver"] != "sharded:ida" {
		t.Errorf("log entry solver = %v, want sharded:ida", entry["solver"])
	}
	for _, key := range []string{"wall", "queue_wait", "pairs"} {
		if _, ok := entry[key]; !ok {
			t.Errorf("slow-solve log misses %q: %v", key, entry)
		}
	}

	// Without a threshold nothing is logged.
	var quiet bytes.Buffer
	h2 := testServer(t, server.Config{Logger: slog.New(slog.NewJSONHandler(&quiet, nil))})
	if _, err := h2.c.Solve(context.Background(), shardedNetRequest(200)); err != nil {
		t.Fatal(err)
	}
	if s := quiet.String(); strings.Contains(s, "slow solve") {
		t.Errorf("slow-solve warning logged with no threshold: %q", s)
	}
}

// lockedWriter serializes concurrent slog writes in tests.
type lockedWriter struct {
	mu *sync.Mutex
	w  *bytes.Buffer
}

func (l lockedWriter) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.w.Write(p)
}

// TestUntracedOverheadPath: solving without trace=1 must leave the
// engine result identical to a traced run — tracing observes, never
// alters. (The zero-alloc guarantee itself is pinned in internal/obs.)
func TestUntracedOverheadPath(t *testing.T) {
	req := shardedNetRequest(300)
	h := testServer(t, server.Config{})
	traced, _ := tracedSolve(t, h.url, req)
	h2 := testServer(t, server.Config{})
	plain, err := h2.c.Solve(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	tj := mustJSON(t, traced.Results)
	pj := mustJSON(t, func() []client.InstanceResult {
		rs := plain.Results
		for i := range rs {
			rs[i].WallNS, rs[i].QueueWaitNS, rs[i].Worker = 0, 0, 0
		}
		return rs
	}())
	tr := traced.Results
	for i := range tr {
		tr[i].WallNS, tr[i].QueueWaitNS, tr[i].Worker = 0, 0, 0
	}
	tj = mustJSON(t, tr)
	if !bytes.Equal(tj, pj) {
		t.Errorf("traced and untraced solves disagree:\n%s\nvs\n%s", tj, pj)
	}
}

// mustSolve runs one solve through the harness client.
func mustSolve(t *testing.T, h testHarness, req client.SolveRequest) {
	t.Helper()
	if _, err := h.c.Solve(context.Background(), req); err != nil {
		t.Fatal(err)
	}
}

// TestMetricsConformance is a promlint-style check over a live scrape
// after mixed (traced and untraced) activity: every exposed series has
// HELP and TYPE metadata, no (name, labels) pair repeats, histograms
// are internally consistent (+Inf bucket == _count, buckets cumulative),
// and label cardinality stays bounded.
func TestMetricsConformance(t *testing.T) {
	h := testServer(t, server.Config{})
	mustSolve(t, h, shardedNetRequest(200))
	tracedSolve(t, h.url, shardedNetRequest(300))
	// An euclidean solve on a second family.
	pts := testPoints(100, 11)
	mustSolve(t, h, client.SolveRequest{Instances: []client.Instance{{
		Solver:    "sspa",
		Providers: []client.Provider{{X: 500, Y: 500, Cap: 40}},
		Customers: wireCustomers(pts),
	}}})

	text, err := h.c.Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	typeOf := map[string]string{} // metric family → TYPE
	helped := map[string]bool{}   // family → has HELP
	seen := map[string]int{}      // full series (name{labels}) → occurrences
	labelSets := map[string]int{} // family → distinct series count
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			helped[strings.Fields(line)[2]] = true
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if typeOf[f[2]] != "" {
				t.Errorf("duplicate TYPE for %s", f[2])
			}
			typeOf[f[2]] = f[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		series := line[:strings.LastIndex(line, " ")]
		seen[series]++
		name := series
		if i := strings.IndexByte(name, '{'); i >= 0 {
			name = name[:i]
		}
		labelSets[name]++
		base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_sum"), "_count")
		if typeOf[name] == "" && typeOf[base] == "" {
			t.Errorf("series %s has no TYPE metadata", name)
		}
		if !helped[name] && !helped[base] {
			t.Errorf("series %s has no HELP metadata", name)
		}
	}
	for series, n := range seen {
		if n > 1 {
			t.Errorf("duplicate series %s (%d occurrences)", series, n)
		}
	}
	for fam, n := range labelSets {
		if n > 64 {
			t.Errorf("family %s exposes %d series — unbounded label cardinality?", fam, n)
		}
	}

	// Histogram self-consistency for the new series.
	for _, name := range []string{"ccad_solve_latency_seconds", "ccad_solve_queue_wait_seconds", "ccad_netmetric_point_query_seconds", "ccad_wal_fsync_seconds"} {
		if typeOf[name] != "histogram" {
			t.Errorf("%s TYPE = %q, want histogram", name, typeOf[name])
		}
	}
	checkHistogram(t, text, "ccad_solve_queue_wait_seconds", "")
	checkHistogram(t, text, "ccad_solve_latency_seconds", `family="sharded"`)
	checkHistogram(t, text, "ccad_solve_latency_seconds", `family="sspa"`)
	checkHistogram(t, text, "ccad_netmetric_point_query_seconds", "")

	// The point-query histogram is fed by traced solves: one ran, so it
	// must carry observations.
	if !histogramHasSamples(text, "ccad_netmetric_point_query_seconds", "") {
		t.Error("point-query histogram empty after a traced network solve")
	}
	if !histogramHasSamples(text, "ccad_solve_latency_seconds", `family="sharded"`) {
		t.Error("sharded solve-latency histogram empty after sharded solves")
	}
}

// parseHistogram extracts a histogram's bucket lines for one label set.
func parseHistogram(text, name, labels string) (buckets []float64, count, inf float64, ok bool) {
	count, inf = -1, -1
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			continue
		}
		series, valStr := fields[0], fields[1]
		var v float64
		fmt.Sscanf(valStr, "%g", &v)
		switch {
		case strings.HasPrefix(series, name+"_bucket{"):
			if labels != "" && !strings.Contains(series, labels) {
				continue
			}
			if strings.Contains(series, `le="+Inf"`) {
				inf = v
			} else {
				buckets = append(buckets, v)
			}
		case labels == "" && series == name+"_count",
			labels != "" && strings.HasPrefix(series, name+"_count{") && strings.Contains(series, labels):
			count = v
		}
	}
	return buckets, count, inf, count >= 0 && inf >= 0
}

// checkHistogram asserts one exposed histogram is internally
// consistent: cumulative non-decreasing buckets, +Inf == _count.
func checkHistogram(t *testing.T, text, name, labels string) {
	t.Helper()
	buckets, count, inf, ok := parseHistogram(text, name, labels)
	if !ok {
		t.Errorf("%s{%s}: missing _count or +Inf bucket", name, labels)
		return
	}
	if inf != count {
		t.Errorf("%s{%s}: le=+Inf %g != _count %g", name, labels, inf, count)
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] < buckets[i-1] {
			t.Errorf("%s{%s}: bucket %d (%g) below bucket %d (%g) — not cumulative", name, labels, i, buckets[i], i-1, buckets[i-1])
		}
	}
	if len(buckets) > 0 && count < buckets[len(buckets)-1] {
		t.Errorf("%s{%s}: _count %g below last bucket %g", name, labels, count, buckets[len(buckets)-1])
	}
}

// histogramHasSamples reports whether the histogram observed anything.
func histogramHasSamples(text, name, labels string) bool {
	_, count, _, ok := parseHistogram(text, name, labels)
	return ok && count > 0
}
