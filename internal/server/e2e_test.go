package server_test

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	cca "repro"
	"repro/client"
	"repro/internal/core"
	"repro/internal/server"
	"repro/internal/solver"
)

// blockingSolverName is a test-only registry solver that parks until
// released (or its context dies). It makes admission-control tests
// deterministic: while a blocking solve holds an admission slot, the
// next request MUST be shed — no timing assumptions.
const blockingSolverName = "e2e-block"

var blockCtl struct {
	mu      sync.Mutex
	started chan struct{} // receives one token per solve that began
	release chan struct{} // closed to let parked solves finish
}

// blockSetup installs fresh control channels and restores the "park on
// context only" default (used by the timeout test) on cleanup.
func blockSetup(t *testing.T) (started chan struct{}, release chan struct{}) {
	t.Helper()
	started = make(chan struct{}, 64)
	release = make(chan struct{})
	blockCtl.mu.Lock()
	blockCtl.started, blockCtl.release = started, release
	blockCtl.mu.Unlock()
	t.Cleanup(func() {
		blockCtl.mu.Lock()
		blockCtl.started, blockCtl.release = nil, nil
		blockCtl.mu.Unlock()
	})
	return started, release
}

type blockSolver struct{}

func (blockSolver) Name() string      { return blockingSolverName }
func (blockSolver) Kind() solver.Kind { return solver.Heuristic }
func (blockSolver) Solve(ctx context.Context, providers []core.Provider, data solver.Dataset, opts solver.Options) (*solver.Result, error) {
	blockCtl.mu.Lock()
	started, release := blockCtl.started, blockCtl.release
	blockCtl.mu.Unlock()
	if started != nil {
		started <- struct{}{}
	}
	if release == nil {
		// Timeout mode: park until the caller's deadline fires.
		<-ctx.Done()
		return nil, ctx.Err()
	}
	select {
	case <-release:
		return &solver.Result{}, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func init() { solver.Register(blockSolver{}) }

// TestE2EMixedTraffic is the acceptance end-to-end: ≥8 concurrent
// clients mixing batch and session traffic against one server, under
// -race, with deterministic 429 backpressure while admission is
// saturated, and every client eventually served after release.
func TestE2EMixedTraffic(t *testing.T) {
	engine := &cca.Engine{Workers: 4}
	h := testServer(t, server.Config{Engine: engine, MaxInFlight: 2})
	c := h.c
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	pts := testPoints(80, 71)
	smallInstance := client.Instance{
		Solver:    "ida",
		Providers: []client.Provider{{X: 300, Y: 300, Cap: 7}, {X: 700, Y: 600, Cap: 9}},
		Customers: wireCustomers(pts),
	}
	// The answer every batch client must receive, computed in-process.
	wantPairs, wantCost, wantSize := inProcessPairs(t, "ida", []cca.Provider{
		{Pt: cca.Point{X: 300, Y: 300}, Cap: 7},
		{Pt: cca.Point{X: 700, Y: 600}, Cap: 9},
	}, pts, nil)
	wantJSON := mustJSON(t, wantPairs)

	// Phase 1 — saturate: two blocking solves hold both admission slots.
	started, release := blockSetup(t)
	blockReq := client.SolveRequest{Instances: []client.Instance{{
		Solver:    blockingSolverName,
		Providers: []client.Provider{{X: 0, Y: 0, Cap: 1}},
		Customers: []client.Customer{{ID: 0, X: 1, Y: 1}},
	}}}
	var blockers sync.WaitGroup
	for i := 0; i < 2; i++ {
		blockers.Add(1)
		go func() {
			defer blockers.Done()
			if _, err := c.Solve(ctx, blockReq); err != nil {
				t.Errorf("blocking solve failed: %v", err)
			}
		}()
	}
	<-started
	<-started // both admitted and running → the semaphore is full

	// Backpressure is now guaranteed, not probabilistic.
	_, err := c.Solve(ctx, client.SolveRequest{Instances: []client.Instance{smallInstance}})
	if !client.IsBackpressure(err) {
		t.Fatalf("solve while saturated: err = %v, want 429", err)
	}
	if ae := err.(*client.APIError); ae.RetryAfter < 1 {
		t.Fatalf("429 without a usable Retry-After: %+v", ae)
	}

	// Phase 2 — mixed traffic: 5 batch + 5 session clients (10 total)
	// racing the blockers' release. Batch clients retry on 429.
	var rejected atomic.Int64
	solveWithRetry := func(req client.SolveRequest, stream bool) (*client.SolveResponse, error) {
		for {
			var resp *client.SolveResponse
			var err error
			if stream {
				results := []client.InstanceResult{}
				var fleet *client.Fleet
				fleet, err = c.SolveStream(ctx, req, func(r client.InstanceResult) error {
					results = append(results, r)
					return nil
				})
				if err == nil {
					resp = &client.SolveResponse{Results: results, Fleet: *fleet}
				}
			} else {
				resp, err = c.Solve(ctx, req)
			}
			if client.IsBackpressure(err) {
				rejected.Add(1)
				select {
				case <-time.After(5 * time.Millisecond):
					continue
				case <-ctx.Done():
					return nil, ctx.Err()
				}
			}
			return resp, err
		}
	}

	var wg sync.WaitGroup
	errc := make(chan error, 64)
	for i := 0; i < 5; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := client.SolveRequest{Instances: []client.Instance{smallInstance}}
			resp, err := solveWithRetry(req, i%2 == 0)
			if err != nil {
				errc <- fmt.Errorf("batch client %d: %w", i, err)
				return
			}
			r := resp.Results[0]
			if r.Error != "" {
				errc <- fmt.Errorf("batch client %d: instance error %s", i, r.Error)
				return
			}
			if r.Size != wantSize || r.Cost != wantCost || string(mustJSON(t, r.Pairs)) != string(wantJSON) {
				errc <- fmt.Errorf("batch client %d: result diverged from in-process solve", i)
			}
		}(i)
	}
	for i := 0; i < 5; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			info, err := c.NewSession(ctx, client.SessionRequest{Providers: []client.Provider{
				{X: float64(i * 100), Y: 100, Cap: 2},
			}})
			if err != nil {
				errc <- fmt.Errorf("session client %d: create: %w", i, err)
				return
			}
			for a := 0; a < 5; a++ {
				resp, err := c.Arrive(ctx, info.ID, client.ArriveRequest{
					ID: int64(a), X: float64(i*100 + a*3), Y: float64(95 + a),
				})
				if err != nil {
					errc <- fmt.Errorf("session client %d: arrive %d: %w", i, a, err)
					return
				}
				if want := min(a+1, 2); resp.Size != want {
					errc <- fmt.Errorf("session client %d: size %d after %d arrivals, want %d", i, resp.Size, a+1, want)
					return
				}
			}
			m, err := c.Matching(ctx, info.ID)
			if err != nil {
				errc <- fmt.Errorf("session client %d: matching: %w", i, err)
				return
			}
			if m.Size != 2 || len(m.Pairs) != 2 {
				errc <- fmt.Errorf("session client %d: final matching %+v", i, m)
				return
			}
			if err := c.DeleteSession(ctx, info.ID); err != nil {
				errc <- fmt.Errorf("session client %d: delete: %w", i, err)
			}
		}(i)
	}

	// Let the mixed load contend with a saturated server briefly, then
	// release the blockers so everything drains.
	time.Sleep(20 * time.Millisecond)
	close(release)
	wg.Wait()
	blockers.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}

	// The two phase-1 sheds (the direct assert above) plus any phase-2
	// retries: backpressure must have been observed.
	text, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !containsMetricAtLeast(text, "ccad_http_rejected_total", 1) {
		t.Fatalf("no admission rejections recorded:\n%s", text)
	}
}

// containsMetricAtLeast parses one un-labeled sample line and checks
// its value ≥ want.
func containsMetricAtLeast(text, name string, want float64) bool {
	var v float64
	for _, line := range strings.Split(text, "\n") {
		if _, err := fmt.Sscanf(line, name+" %g", &v); err == nil {
			return v >= want
		}
	}
	return false
}
