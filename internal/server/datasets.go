package server

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	cca "repro"
	"repro/client"
	"repro/internal/dataio"
)

// datasetStore serves named customer datasets from a directory of
// <name>.csv files (dataio's id,x,y format). Each dataset is read and
// R-tree-indexed once, on first use, then shared across requests — the
// engine clones a cold buffer handle per solve, so sharing is safe, and
// because every request resolves to the same *cca.Customers (same
// dataset identity), repeated solves hit the engine's result cache.
//
// Loading runs outside the store lock (per-entry sync.Once), so one
// cold multi-million-row load never stalls requests for already-loaded
// datasets, listings, or metrics scrapes.
type datasetStore struct {
	dir    string
	mu     sync.Mutex // guards the map only, never a load
	loaded map[string]*dsEntry
}

// dsEntry is one named dataset's lazily computed load result.
type dsEntry struct {
	once sync.Once
	done atomic.Bool // set after once ran; guards c/err for non-waiters
	c    *cca.Customers
	err  error
}

func (d *datasetStore) init(dir string) {
	d.dir = dir
	d.loaded = make(map[string]*dsEntry)
}

// validName guards against path traversal: a dataset name is a bare
// file stem, no separators, no leading dot.
func validName(name string) bool {
	if name == "" || strings.HasPrefix(name, ".") {
		return false
	}
	return !strings.ContainsAny(name, `/\`)
}

// get returns the named dataset, loading and indexing it on first use.
// Concurrent callers of the same cold name share one load; a failed
// load is forgotten so the name can be retried (e.g. after the file
// appears).
func (d *datasetStore) get(name string) (*cca.Customers, error) {
	if d.dir == "" {
		return nil, fmt.Errorf("no dataset directory configured (ccad -data)")
	}
	if !validName(name) {
		return nil, fmt.Errorf("invalid dataset name %q", name)
	}
	d.mu.Lock()
	e, ok := d.loaded[name]
	if !ok {
		e = &dsEntry{}
		d.loaded[name] = e
	}
	d.mu.Unlock()

	e.once.Do(func() {
		defer e.done.Store(true)
		items, err := dataio.ReadCustomersFile(filepath.Join(d.dir, name+".csv"))
		if err != nil {
			if os.IsNotExist(err) {
				e.err = fmt.Errorf("unknown dataset %q", name)
			} else {
				e.err = fmt.Errorf("dataset %q: %w", name, err)
			}
			return
		}
		c, err := cca.IndexItems(items, cca.IndexConfig{})
		if err != nil {
			e.err = fmt.Errorf("dataset %q: index: %w", name, err)
			return
		}
		e.c = c
	})
	if e.err != nil {
		d.mu.Lock()
		if d.loaded[name] == e {
			delete(d.loaded, name)
		}
		d.mu.Unlock()
		return nil, e.err
	}
	return e.c, nil
}

// list scans the directory for datasets; loaded ones report their
// indexed size, unloaded ones -1.
func (d *datasetStore) list() ([]client.DatasetInfo, error) {
	out := []client.DatasetInfo{}
	if d.dir == "" {
		return out, nil
	}
	entries, err := os.ReadDir(d.dir)
	if err != nil {
		return nil, fmt.Errorf("dataset directory: %w", err)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".csv") {
			continue
		}
		name := strings.TrimSuffix(e.Name(), ".csv")
		if !validName(name) {
			continue
		}
		info := client.DatasetInfo{Name: name, Customers: -1}
		if e, ok := d.loaded[name]; ok && e.done.Load() && e.err == nil {
			info.Customers = e.c.Len()
		}
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// loadedCount returns how many datasets are currently indexed.
func (d *datasetStore) loadedCount() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := 0
	for _, e := range d.loaded {
		if e.done.Load() && e.err == nil {
			n++
		}
	}
	return n
}
