package server

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	cca "repro"
	"repro/client"
	"repro/internal/dataio"
	"repro/internal/storage"
)

// datasetStore serves named customer datasets from a directory of
// <name>.csv files (dataio's id,x,y format). Each dataset is read and
// R-tree-indexed once, on first use, then shared across requests — the
// engine clones a cold buffer handle per solve, so sharing is safe, and
// because every request resolves to the same *cca.Customers (same
// dataset identity), repeated solves hit the engine's result cache.
//
// With a state directory configured, the index pages live in a
// storage.FileStore behind the paper's 1% LRU buffer instead of the
// heap: the buffer's frames are the only resident pages, so cold
// datasets page out instead of pinning memory, and DELETE
// /v1/datasets/{name} evicts the whole index (the CSV stays; the next
// query reloads it cold, with its faults visible in /metrics under the
// paper's 10 ms-per-fault accounting).
//
// Loading runs outside the store lock (per-entry sync.Once), so one
// cold multi-million-row load never stalls requests for already-loaded
// datasets, listings, or metrics scrapes. Eviction is refcounted
// against in-flight solves: a solve holds its entry from prepare to
// collect, and an evicted entry's page store closes only after the last
// holder releases it.
type datasetStore struct {
	dir      string
	pagesDir string     // page-file directory; "" = in-memory page stores
	mu       sync.Mutex // guards the maps only, never a load
	loaded   map[string]*dsEntry
	io       map[string]*dsIO // per-name fault accounting, survives evictions
	evicted  uint64
	uploads  uint64
}

// dsEntry is one named dataset's lazily computed load result.
type dsEntry struct {
	once sync.Once
	done atomic.Bool // set after once ran; guards c/err for non-waiters
	c    *cca.Customers
	err  error

	mu       sync.Mutex // guards refs / gone
	refs     int        // in-flight solves holding this entry
	gone     bool       // evicted; close the store when refs drains to 0
	closeErr error
}

// dsIO accumulates the paper's fault accounting for one dataset name
// across loads (the entry itself dies on eviction, the counters do not).
type dsIO struct {
	faults uint64
	hits   uint64
	ioTime time.Duration
}

func (d *datasetStore) init(dir, stateDir string) error {
	d.dir = dir
	d.loaded = make(map[string]*dsEntry)
	d.io = make(map[string]*dsIO)
	if stateDir != "" {
		d.pagesDir = filepath.Join(stateDir, "datasets")
		if err := os.MkdirAll(d.pagesDir, 0o755); err != nil {
			return fmt.Errorf("dataset pages dir: %w", err)
		}
	}
	return nil
}

// validName guards against path traversal: a dataset name is a bare
// file stem, no separators, no leading dot.
func validName(name string) bool {
	if name == "" || strings.HasPrefix(name, ".") {
		return false
	}
	return !strings.ContainsAny(name, `/\`)
}

// acquire returns the named dataset with a reference held, loading and
// indexing it on first use. The caller must release() the entry when its
// solve finishes; eviction defers the store close until then.
// Concurrent callers of the same cold name share one load; a failed
// load is forgotten so the name can be retried (e.g. after the file
// appears).
func (d *datasetStore) acquire(name string) (*dsEntry, error) {
	if d.dir == "" {
		return nil, fmt.Errorf("no dataset directory configured (ccad -data)")
	}
	if !validName(name) {
		return nil, fmt.Errorf("invalid dataset name %q", name)
	}
	for {
		d.mu.Lock()
		e, ok := d.loaded[name]
		if !ok {
			e = &dsEntry{}
			d.loaded[name] = e
		}
		d.mu.Unlock()

		e.once.Do(func() {
			defer e.done.Store(true)
			items, err := dataio.ReadCustomersFile(filepath.Join(d.dir, name+".csv"))
			if err != nil {
				if os.IsNotExist(err) {
					e.err = fmt.Errorf("unknown dataset %q", name)
				} else {
					e.err = fmt.Errorf("dataset %q: %w", name, err)
				}
				return
			}
			cfg := cca.IndexConfig{}
			if d.pagesDir != "" {
				cfg.Path = filepath.Join(d.pagesDir, name+".pages")
			}
			c, err := cca.IndexItems(items, cfg)
			if err != nil {
				e.err = fmt.Errorf("dataset %q: index: %w", name, err)
				return
			}
			e.c = c
		})
		if e.err != nil {
			d.mu.Lock()
			if d.loaded[name] == e {
				delete(d.loaded, name)
			}
			d.mu.Unlock()
			return nil, e.err
		}
		e.mu.Lock()
		if e.gone {
			// Evicted between lookup and ref — retry against the fresh map
			// state (a new entry reloads the dataset).
			e.mu.Unlock()
			continue
		}
		e.refs++
		e.mu.Unlock()
		return e, nil
	}
}

// release drops one in-flight reference; the last release after an
// eviction closes the entry's page store.
func (e *dsEntry) release() {
	e.mu.Lock()
	e.refs--
	closeNow := e.gone && e.refs == 0 && e.c != nil
	e.mu.Unlock()
	if closeNow {
		e.closeErr = e.c.Close()
	}
}

// evict drops the named dataset's in-memory index. The files stay on
// disk; the page store closes once no in-flight solve holds the entry.
// It reports whether an index was resident.
func (d *datasetStore) evict(name string) bool {
	d.mu.Lock()
	e, ok := d.loaded[name]
	if ok {
		delete(d.loaded, name)
		d.evicted++
	}
	d.mu.Unlock()
	if !ok || !e.done.Load() || e.err != nil {
		return false
	}
	e.mu.Lock()
	e.gone = true
	closeNow := e.refs == 0 && e.c != nil
	e.mu.Unlock()
	if closeNow {
		e.closeErr = e.c.Close()
	}
	return true
}

// upload validates r as dataio CSV and commits it as <name>.csv,
// atomically replacing any existing dataset of that name (whose index,
// if resident, is evicted so the next query sees the new rows). It
// returns the row count.
func (d *datasetStore) upload(name string, r io.Reader) (int, error) {
	if d.dir == "" {
		return 0, fmt.Errorf("no dataset directory configured (ccad -data)")
	}
	if !validName(name) {
		return 0, fmt.Errorf("invalid dataset name %q", name)
	}
	items, err := dataio.ReadCustomers(r)
	if err != nil {
		return 0, fmt.Errorf("dataset %q: %w", name, err)
	}
	if len(items) == 0 {
		return 0, fmt.Errorf("dataset %q: no rows", name)
	}
	// Write normalized rows to a temp file in the same directory, then
	// rename over the final path so a crashed upload never leaves a
	// half-written CSV behind.
	tmp, err := os.CreateTemp(d.dir, name+".csv.tmp*")
	if err != nil {
		return 0, fmt.Errorf("dataset %q: %w", name, err)
	}
	defer os.Remove(tmp.Name())
	if err := dataio.WriteCustomers(tmp, items); err != nil {
		tmp.Close()
		return 0, fmt.Errorf("dataset %q: write: %w", name, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return 0, fmt.Errorf("dataset %q: sync: %w", name, err)
	}
	if err := tmp.Close(); err != nil {
		return 0, fmt.Errorf("dataset %q: close: %w", name, err)
	}
	if err := os.Rename(tmp.Name(), filepath.Join(d.dir, name+".csv")); err != nil {
		return 0, fmt.Errorf("dataset %q: commit: %w", name, err)
	}
	d.evict(name)
	d.mu.Lock()
	d.uploads++
	d.mu.Unlock()
	return len(items), nil
}

// recordIO folds one non-cached solve's buffer stats into the dataset's
// lifetime fault accounting.
func (d *datasetStore) recordIO(name string, st storage.Stats) {
	d.mu.Lock()
	agg := d.io[name]
	if agg == nil {
		agg = &dsIO{}
		d.io[name] = agg
	}
	agg.faults += uint64(st.Faults)
	agg.hits += uint64(st.Hits)
	agg.ioTime += st.IOTime()
	d.mu.Unlock()
}

// ioSnapshot returns the per-dataset fault accounting, sorted by name.
func (d *datasetStore) ioSnapshot() (names []string, aggs []dsIO) {
	d.mu.Lock()
	for name, agg := range d.io {
		names = append(names, name)
		aggs = append(aggs, *agg)
	}
	d.mu.Unlock()
	sort.Sort(&ioByName{names, aggs})
	return names, aggs
}

type ioByName struct {
	names []string
	aggs  []dsIO
}

func (s *ioByName) Len() int           { return len(s.names) }
func (s *ioByName) Less(i, j int) bool { return s.names[i] < s.names[j] }
func (s *ioByName) Swap(i, j int) {
	s.names[i], s.names[j] = s.names[j], s.names[i]
	s.aggs[i], s.aggs[j] = s.aggs[j], s.aggs[i]
}

// list scans the directory for datasets; resident ones report their
// index and residency stats, unloaded ones -1 customers.
func (d *datasetStore) list() ([]client.DatasetInfo, error) {
	out := []client.DatasetInfo{}
	if d.dir == "" {
		return out, nil
	}
	entries, err := os.ReadDir(d.dir)
	if err != nil {
		return nil, fmt.Errorf("dataset directory: %w", err)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".csv") {
			continue
		}
		name := strings.TrimSuffix(e.Name(), ".csv")
		if !validName(name) {
			continue
		}
		info := client.DatasetInfo{Name: name, Customers: -1}
		if le, ok := d.loaded[name]; ok && le.done.Load() && le.err == nil {
			info.Customers = le.c.Len()
			info.Resident = true
			info.Pages = le.c.Pages()
			info.PageSize = le.c.PageSize()
			info.Bytes = int64(info.Pages) * int64(info.PageSize)
			info.ResidentPages = le.c.BufferResident()
			info.BufferPages = le.c.BufferFrames()
		}
		if agg, ok := d.io[name]; ok {
			info.Faults = agg.faults
			info.IONS = int64(agg.ioTime)
		}
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// residentInfos returns stats for the currently resident datasets (for
// /metrics gauges), sorted by name.
func (d *datasetStore) residentInfos() []client.DatasetInfo {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := []client.DatasetInfo{}
	for name, e := range d.loaded {
		if e.done.Load() && e.err == nil {
			out = append(out, client.DatasetInfo{
				Name:          name,
				Pages:         e.c.Pages(),
				ResidentPages: e.c.BufferResident(),
				BufferPages:   e.c.BufferFrames(),
			})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// loadedCount returns how many datasets are currently indexed.
func (d *datasetStore) loadedCount() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := 0
	for _, e := range d.loaded {
		if e.done.Load() && e.err == nil {
			n++
		}
	}
	return n
}

// counts returns the lifetime upload and eviction counters.
func (d *datasetStore) counts() (uploads, evicted uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.uploads, d.evicted
}

// maxDatasetBody bounds an uploaded CSV — the same ceiling as a solve
// body (room for roughly two million rows).
const maxDatasetBody = maxSolveBody

// handleDatasetUpload serves POST /v1/datasets/{name}: the body is a
// dataio CSV (id,x,y per line); the server validates it fully before
// committing, so a malformed upload never replaces a good dataset.
func (s *Server) handleDatasetUpload(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	releaseRead, ok := s.admitRead(w)
	if !ok {
		return
	}
	defer releaseRead()
	name := r.PathValue("name")
	n, err := s.datasets.upload(name, http.MaxBytesReader(w, r.Body, maxDatasetBody))
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", mbe.Limit))
			return
		}
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, client.DatasetInfo{Name: name, Customers: n})
}

// handleDatasetEvict serves DELETE /v1/datasets/{name}: drop the
// in-memory index (refcounted against in-flight solves). The CSV stays;
// deletion of the data itself is an operator action on the directory,
// not an API surface.
func (s *Server) handleDatasetEvict(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if !validName(name) {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("invalid dataset name %q", name))
		return
	}
	if s.cfg.DataDir == "" {
		writeError(w, http.StatusBadRequest, "no dataset directory configured (ccad -data)")
		return
	}
	if _, err := os.Stat(filepath.Join(s.cfg.DataDir, name+".csv")); err != nil {
		writeError(w, http.StatusNotFound, fmt.Sprintf("unknown dataset %q", name))
		return
	}
	was := s.datasets.evict(name)
	writeJSON(w, http.StatusOK, client.DatasetEvictResponse{Name: name, WasResident: was})
}
