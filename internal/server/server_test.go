package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	cca "repro"
	"repro/client"
	"repro/internal/server"
)

// testHarness is one booted test server: the client, the server, its
// engine, and the base URL for raw-HTTP assertions.
type testHarness struct {
	c      *client.Client
	srv    *server.Server
	engine *cca.Engine
	url    string
}

// testServer boots a Server over a fresh engine on an httptest listener.
func testServer(t *testing.T, cfg server.Config) testHarness {
	t.Helper()
	if cfg.Engine == nil {
		cfg.Engine = &cca.Engine{Workers: 4}
	}
	srv, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		hs.Close()
		srv.Close()
		cfg.Engine.Close()
	})
	return testHarness{c: client.New(hs.URL, hs.Client()), srv: srv, engine: cfg.Engine, url: hs.URL}
}

// testPoints builds a deterministic point cloud in the [0,1000]² space.
func testPoints(n int, seed int64) []cca.Point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]cca.Point, n)
	for i := range pts {
		pts[i] = cca.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}
	}
	return pts
}

func wireCustomers(pts []cca.Point) []client.Customer {
	out := make([]client.Customer, len(pts))
	for i, p := range pts {
		out[i] = client.Customer{ID: int64(i), X: p.X, Y: p.Y}
	}
	return out
}

func wireProviders(providers []cca.Provider) []client.Provider {
	out := make([]client.Provider, len(providers))
	for i, q := range providers {
		out[i] = client.Provider{X: q.Pt.X, Y: q.Pt.Y, Cap: q.Cap}
	}
	return out
}

// inProcessPairs runs the same instance through cca.Solve and renders
// the matching in the wire format.
func inProcessPairs(t *testing.T, solverName string, providers []cca.Provider, pts []cca.Point, opts *cca.SolverOptions) ([]client.Pair, float64, int) {
	t.Helper()
	items := wireCustomers(pts)
	customers, err := cca.IndexItems(itemsOf(items), cca.IndexConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer customers.Close()
	res, err := cca.Solve(solverName, providers, customers, opts)
	if err != nil {
		t.Fatal(err)
	}
	pairs := make([]client.Pair, len(res.Pairs))
	for i, p := range res.Pairs {
		pairs[i] = client.Pair{Provider: p.Provider, Customer: p.CustomerID, X: p.CustomerPt.X, Y: p.CustomerPt.Y, Dist: p.Dist}
	}
	return pairs, res.Cost, res.Size
}

// itemsOf converts wire customers back to R-tree items (the same
// conversion the server performs).
func itemsOf(cs []client.Customer) []cca.Customer {
	out := make([]cca.Customer, len(cs))
	for i, c := range cs {
		out[i] = cca.Customer{ID: c.ID, Pt: cca.Point{X: c.X, Y: c.Y}}
	}
	return out
}

// mustJSON marshals v for byte-level comparison.
func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestSolveConformance: results fetched through the full HTTP path must
// be byte-identical to in-process cca.Solve for the same instance,
// across solver families and both metrics.
func TestSolveConformance(t *testing.T) {
	h := testServer(t, server.Config{})
	c := h.c
	pts := testPoints(400, 11)
	providers := []cca.Provider{
		{Pt: cca.Point{X: 200, Y: 300}, Cap: 30},
		{Pt: cca.Point{X: 700, Y: 200}, Cap: 40},
		{Pt: cca.Point{X: 500, Y: 800}, Cap: 25},
	}

	cases := []struct {
		name   string
		solver string
		metric string
		opts   *client.Options
	}{
		{name: "ida-euclidean", solver: "ida"},
		{name: "sspa-euclidean", solver: "sspa"},
		{name: "greedy-euclidean", solver: "greedy"},
		{name: "sharded-ida", solver: "sharded:ida", opts: &client.Options{Shards: 3}},
		{name: "ida-network", solver: "ida", metric: "network"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := c.Solve(context.Background(), client.SolveRequest{Instances: []client.Instance{{
				Label:     tc.name,
				Solver:    tc.solver,
				Providers: wireProviders(providers),
				Customers: wireCustomers(pts),
				Metric:    tc.metric,
				NetGrid:   16,
				NetSeed:   5,
				Options:   tc.opts,
			}}})
			if err != nil {
				t.Fatal(err)
			}
			if len(resp.Results) != 1 {
				t.Fatalf("got %d results", len(resp.Results))
			}
			r := resp.Results[0]
			if r.Error != "" {
				t.Fatalf("instance failed: %s", r.Error)
			}

			var opts cca.SolverOptions
			if tc.opts != nil {
				opts.Core.Shards = tc.opts.Shards
			}
			if tc.metric == "network" {
				opts.Core.Metric = cca.RoadNetworkMetric(16, cca.Rect{Min: cca.Point{}, Max: cca.Point{X: 1000, Y: 1000}}, 5)
			}
			wantPairs, wantCost, wantSize := inProcessPairs(t, tc.solver, providers, pts, &opts)

			if r.Size != wantSize {
				t.Fatalf("size %d, want %d", r.Size, wantSize)
			}
			if r.Cost != wantCost {
				t.Fatalf("cost %v, want %v (exact float equality)", r.Cost, wantCost)
			}
			got, want := mustJSON(t, r.Pairs), mustJSON(t, wantPairs)
			if !bytes.Equal(got, want) {
				t.Fatalf("HTTP matching differs from in-process solve:\n got %.200s…\nwant %.200s…", got, want)
			}
			if fl := resp.Fleet; fl.Instances != 1 || fl.Solved != 1 || fl.Pairs != wantSize {
				t.Fatalf("fleet = %+v", fl)
			}
		})
	}
}

// TestSolveNamedDataset: a dataset resolved by name must solve
// identically to the same points sent inline, and repeats must hit the
// engine's result cache (named datasets share identity across requests).
func TestSolveNamedDataset(t *testing.T) {
	pts := testPoints(300, 23)
	dir := t.TempDir()
	var sb strings.Builder
	for i, p := range pts {
		fmt.Fprintf(&sb, "%d,%.6f,%.6f\n", i, p.X, p.Y)
	}
	if err := os.WriteFile(filepath.Join(dir, "town.csv"), []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}

	h := testServer(t, server.Config{DataDir: dir})
	c := h.c
	providers := []client.Provider{{X: 100, Y: 100, Cap: 20}, {X: 900, Y: 900, Cap: 20}}

	ds, err := c.Datasets(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 1 || ds[0].Name != "town" || ds[0].Customers != -1 {
		t.Fatalf("datasets = %+v", ds)
	}

	in := client.Instance{Solver: "nia", Providers: providers, Dataset: "town"}
	first, err := c.Solve(context.Background(), client.SolveRequest{Instances: []client.Instance{in}})
	if err != nil {
		t.Fatal(err)
	}
	if first.Results[0].Error != "" {
		t.Fatal(first.Results[0].Error)
	}
	if first.Results[0].Cached {
		t.Fatal("first solve cannot be a cache hit")
	}

	// Same instance again: served from the result cache, same bytes.
	second, err := c.Solve(context.Background(), client.SolveRequest{Instances: []client.Instance{in}})
	if err != nil {
		t.Fatal(err)
	}
	if !second.Results[0].Cached {
		t.Fatal("repeat solve on a named dataset should hit the result cache")
	}
	if !bytes.Equal(mustJSON(t, first.Results[0].Pairs), mustJSON(t, second.Results[0].Pairs)) {
		t.Fatal("cached result differs")
	}

	// The CSV file's own id,x,y precision is what the dataset holds, so
	// compare inline vs named through a re-parse of the same file
	// contents rather than the original float64 points.
	if ds, err = c.Datasets(context.Background()); err != nil || ds[0].Customers != 300 {
		t.Fatalf("after load: datasets = %+v, err = %v", ds, err)
	}
}

// TestSolveStreamed: streamed responses carry the same per-instance
// results as the buffered path, arriving in completion order with a
// final fleet aggregate; both NDJSON and SSE framings work.
func TestSolveStreamed(t *testing.T) {
	h := testServer(t, server.Config{})
	c := h.c
	pts := testPoints(250, 31)
	req := client.SolveRequest{}
	for i := 0; i < 5; i++ {
		req.Instances = append(req.Instances, client.Instance{
			Label:     fmt.Sprintf("s%d", i),
			Solver:    []string{"ida", "sspa", "greedy"}[i%3],
			Providers: []client.Provider{{X: float64(100 * i), Y: 500, Cap: 10 + i}},
			Customers: wireCustomers(pts),
		})
	}

	buffered, err := c.Solve(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}

	byIndex := map[int]client.InstanceResult{}
	fleet, err := c.SolveStream(context.Background(), req, func(r client.InstanceResult) error {
		if _, dup := byIndex[r.Index]; dup {
			return fmt.Errorf("duplicate index %d", r.Index)
		}
		byIndex[r.Index] = r
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(byIndex) != 5 {
		t.Fatalf("streamed %d results, want 5", len(byIndex))
	}
	if fleet.Instances != 5 || fleet.Solved != 5 {
		t.Fatalf("fleet = %+v", fleet)
	}
	for i, want := range buffered.Results {
		got, ok := byIndex[i]
		if !ok {
			t.Fatalf("missing index %d", i)
		}
		if !bytes.Equal(mustJSON(t, got.Pairs), mustJSON(t, want.Pairs)) || got.Cost != want.Cost {
			t.Fatalf("instance %d: streamed result differs from buffered", i)
		}
	}

	// SSE framing: raw scrape, check event lines and valid payloads.
	body := mustJSON(t, req)
	resp, err := http.Post(h.url+"/v1/solve?stream=sse", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	text := buf.String()
	if strings.Count(text, "event: result") != 5 || strings.Count(text, "event: fleet") != 1 {
		t.Fatalf("SSE framing off:\n%s", text)
	}

	// Accept-header negotiation tolerates lists and parameters.
	hreq, err := http.NewRequest(http.MethodPost, h.url+"/v1/solve", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set("Accept", "application/x-ndjson, */*")
	hresp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	if ct := hresp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Accept list ignored: Content-Type = %q", ct)
	}
}

// TestSolveInstanceErrors: malformed instances fail individually with
// HTTP 200 batch semantics; malformed requests fail with 400.
func TestSolveInstanceErrors(t *testing.T) {
	h := testServer(t, server.Config{})
	c := h.c
	pts := testPoints(50, 41)
	good := client.Instance{Providers: []client.Provider{{X: 1, Y: 1, Cap: 2}}, Customers: wireCustomers(pts)}

	resp, err := c.Solve(context.Background(), client.SolveRequest{Instances: []client.Instance{
		{Customers: wireCustomers(pts)},                                           // no providers
		{Providers: good.Providers},                                               // no customers
		{Providers: good.Providers, Customers: good.Customers, Dataset: "x"},      // both
		{Providers: good.Providers, Customers: good.Customers, Metric: "taxicab"}, // bad metric
		{Providers: good.Providers, Customers: good.Customers, Lane: "turbo"},     // bad lane
		{Providers: good.Providers, Customers: good.Customers, Solver: "nope"},    // bad solver
		{Providers: good.Providers, Dataset: "missing"},                           // no data dir
		{Providers: good.Providers, Customers: good.Customers,
			Metric: "network", NetGrid: 1}, // grid below the generator's minimum
		{Providers: good.Providers, Customers: good.Customers,
			Metric: "network", NetGrid: 100000}, // grid would allocate O(grid²) nodes
		good, // sanity: the good one still solves
	}})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Fleet.Errors != 9 || resp.Fleet.Solved != 1 {
		t.Fatalf("fleet = %+v", resp.Fleet)
	}
	for i, r := range resp.Results[:9] {
		if r.Error == "" {
			t.Fatalf("instance %d should have failed", i)
		}
	}
	if resp.Results[9].Error != "" || resp.Results[9].Size != 2 {
		t.Fatalf("good instance: %+v", resp.Results[9])
	}

	// Request-level failures.
	for _, body := range []string{"{not json", `{}`, `{"instances": []}`} {
		hresp, err := http.Post(h.url+"/v1/solve", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		hresp.Body.Close()
		if hresp.StatusCode != http.StatusBadRequest {
			t.Fatalf("body %q: status %d, want 400", body, hresp.StatusCode)
		}
	}
}

// TestSolveInstanceCap: admission counts requests, so the per-request
// instance bound must stop one admitted request from flooding the
// engine queue.
func TestSolveInstanceCap(t *testing.T) {
	h := testServer(t, server.Config{MaxInstances: 2})
	c := h.c
	in := client.Instance{
		Providers: []client.Provider{{X: 0, Y: 0, Cap: 1}},
		Customers: []client.Customer{{ID: 0, X: 1, Y: 1}},
	}
	if _, err := c.Solve(context.Background(), client.SolveRequest{Instances: []client.Instance{in, in}}); err != nil {
		t.Fatalf("at the cap: %v", err)
	}
	_, err := c.Solve(context.Background(), client.SolveRequest{Instances: []client.Instance{in, in, in}})
	ae, ok := err.(*client.APIError)
	if !ok || ae.StatusCode != http.StatusBadRequest {
		t.Fatalf("over the cap: err = %v, want 400", err)
	}
}

// TestNetworkMemoBound: the server materializes a bounded number of
// distinct road networks; request MaxNetworks+1 seeds and the last one
// must fail its instance instead of growing the memo forever.
func TestNetworkMemoBound(t *testing.T) {
	h := testServer(t, server.Config{})
	c := h.c
	pts := testPoints(30, 61)
	for i := 0; i <= server.MaxNetworks; i++ {
		resp, err := c.Solve(context.Background(), client.SolveRequest{Instances: []client.Instance{{
			Solver:    "greedy",
			Providers: []client.Provider{{X: 500, Y: 500, Cap: 3}},
			Customers: wireCustomers(pts),
			Metric:    "network",
			NetGrid:   4,
			NetSeed:   int64(1000 + i),
		}}})
		if err != nil {
			t.Fatal(err)
		}
		r := resp.Results[0]
		if i < server.MaxNetworks && r.Error != "" {
			t.Fatalf("network %d rejected early: %s", i, r.Error)
		}
		if i == server.MaxNetworks {
			if r.Error == "" || !strings.Contains(r.Error, "too many distinct road networks") {
				t.Fatalf("network %d should exceed the memo bound, got %+v", i, r)
			}
		}
	}
	// Reusing an already-built network still works at the bound.
	resp, err := c.Solve(context.Background(), client.SolveRequest{Instances: []client.Instance{{
		Solver:    "greedy",
		Providers: []client.Provider{{X: 500, Y: 500, Cap: 3}},
		Customers: wireCustomers(pts),
		Metric:    "network",
		NetGrid:   4,
		NetSeed:   1000,
	}}})
	if err != nil || resp.Results[0].Error != "" {
		t.Fatalf("existing network rejected: %v %+v", err, resp.Results[0])
	}
}

// TestSessionBodyCap: session endpoints reject oversized bodies with
// 413 instead of buffering them.
func TestSessionBodyCap(t *testing.T) {
	h := testServer(t, server.Config{})
	info, err := h.c.NewSession(context.Background(), client.SessionRequest{
		Providers: []client.Provider{{X: 0, Y: 0, Cap: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	big := strings.Repeat(" ", 2<<20) + `{"id":1,"x":1,"y":1}`
	resp, err := http.Post(h.url+"/v1/sessions/"+info.ID+"/arrive", "application/json", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized arrive body: status %d, want 413", resp.StatusCode)
	}
}

// TestSolveTimeout: a per-instance timeout_ms must abort the solve with
// a context error instead of running to completion.
func TestSolveTimeout(t *testing.T) {
	h := testServer(t, server.Config{})
	c := h.c
	pts := testPoints(100, 43)
	resp, err := c.Solve(context.Background(), client.SolveRequest{Instances: []client.Instance{{
		Solver:    blockingSolverName, // parks until released or cancelled
		Providers: []client.Provider{{X: 0, Y: 0, Cap: 1}},
		Customers: wireCustomers(pts),
		TimeoutMS: 50,
	}}})
	if err != nil {
		t.Fatal(err)
	}
	r := resp.Results[0]
	if r.Error == "" || !strings.Contains(r.Error, "context deadline exceeded") {
		t.Fatalf("expected a deadline error, got %+v", r)
	}
}

// TestSessionLifecycle drives the online-session API end to end and
// pins it against an in-process DynamicMatcher replay.
func TestSessionLifecycle(t *testing.T) {
	h := testServer(t, server.Config{})
	c := h.c
	ctx := context.Background()
	providers := []client.Provider{{X: 0, Y: 0, Cap: 1}, {X: 100, Y: 0, Cap: 1}}

	info, err := c.NewSession(ctx, client.SessionRequest{Providers: providers})
	if err != nil {
		t.Fatal(err)
	}
	if info.Capacity != 2 || info.ID == "" {
		t.Fatalf("session info = %+v", info)
	}

	ref := cca.NewDynamicMatcher([]cca.Provider{
		{Pt: cca.Point{X: 0, Y: 0}, Cap: 1},
		{Pt: cca.Point{X: 100, Y: 0}, Cap: 1},
	})
	arrivals := []client.ArriveRequest{
		{ID: 0, X: 40, Y: 0},
		{ID: 1, X: 10, Y: 0}, // re-routes 0 to the far provider
		{ID: 2, X: 90, Y: 0}, // evicts 0 (swap after exhaustion)
		{ID: 3, X: 500, Y: 500},
	}
	for i, a := range arrivals {
		got, err := c.Arrive(ctx, info.ID, a)
		if err != nil {
			t.Fatal(err)
		}
		wantMatched, err := ref.Arrive(cca.Point{X: a.X, Y: a.Y}, a.ID)
		if err != nil {
			t.Fatal(err)
		}
		if got.Matched != wantMatched || got.Size != ref.Size() || got.Cost != ref.Cost() {
			t.Fatalf("arrival %d: got %+v, want matched=%v size=%d cost=%v",
				i, got, wantMatched, ref.Size(), ref.Cost())
		}
		if got.Arrivals != i+1 {
			t.Fatalf("arrival count = %d, want %d", got.Arrivals, i+1)
		}
	}

	m, err := c.Matching(ctx, info.ID)
	if err != nil {
		t.Fatal(err)
	}
	want := ref.Matching()
	if m.Size != want.Size || m.Cost != want.Cost || len(m.Pairs) != len(want.Pairs) {
		t.Fatalf("matching = %+v, want size=%d cost=%v", m, want.Size, want.Cost)
	}

	// Duplicate arrival id → 409.
	if _, err := c.Arrive(ctx, info.ID, arrivals[0]); err == nil {
		t.Fatal("duplicate arrival id accepted")
	} else if ae, ok := err.(*client.APIError); !ok || ae.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate arrival: %v", err)
	}

	if err := c.DeleteSession(ctx, info.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Matching(ctx, info.ID); err == nil {
		t.Fatal("deleted session still answers")
	}
	if _, err := c.Arrive(ctx, "nosuch", arrivals[0]); err == nil {
		t.Fatal("arrival on unknown session accepted")
	}
}

// TestSessionLimit: the session bound sheds with 429.
func TestSessionLimit(t *testing.T) {
	h := testServer(t, server.Config{MaxSessions: 2})
	c := h.c
	ctx := context.Background()
	req := client.SessionRequest{Providers: []client.Provider{{X: 0, Y: 0, Cap: 1}}}
	for i := 0; i < 2; i++ {
		if _, err := c.NewSession(ctx, req); err != nil {
			t.Fatal(err)
		}
	}
	_, err := c.NewSession(ctx, req)
	if !client.IsBackpressure(err) {
		t.Fatalf("third session: err = %v, want 429", err)
	}
}

// TestSessionArrivalLimit: a session's matching graph grows per
// arrival, so arrivals are bounded; past the limit the session sheds
// with 429 while a fresh session keeps working.
func TestSessionArrivalLimit(t *testing.T) {
	h := testServer(t, server.Config{MaxArrivals: 3})
	ctx := context.Background()
	info, err := h.c.NewSession(ctx, client.SessionRequest{Providers: []client.Provider{{X: 0, Y: 0, Cap: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := h.c.Arrive(ctx, info.ID, client.ArriveRequest{ID: int64(i), X: float64(i), Y: 1}); err != nil {
			t.Fatalf("arrival %d: %v", i, err)
		}
	}
	_, err = h.c.Arrive(ctx, info.ID, client.ArriveRequest{ID: 99, X: 9, Y: 9})
	if !client.IsBackpressure(err) {
		t.Fatalf("arrival past the limit: err = %v, want 429", err)
	}
	fresh, err := h.c.NewSession(ctx, client.SessionRequest{Providers: []client.Provider{{X: 0, Y: 0, Cap: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.c.Arrive(ctx, fresh.ID, client.ArriveRequest{ID: 0, X: 1, Y: 1}); err != nil {
		t.Fatalf("fresh session after limit: %v", err)
	}
}

// TestDrain: Drain flips healthz to 503 and rejects new solve/session
// work while leaving reads (metrics, matching) alive.
func TestDrain(t *testing.T) {
	h := testServer(t, server.Config{})
	c := h.c
	ctx := context.Background()
	if err := c.Healthz(ctx); err != nil {
		t.Fatal(err)
	}
	sess, err := c.NewSession(ctx, client.SessionRequest{Providers: []client.Provider{{X: 0, Y: 0, Cap: 2}}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Arrive(ctx, sess.ID, client.ArriveRequest{ID: 1, X: 1, Y: 1}); err != nil {
		t.Fatal(err)
	}
	h.srv.Drain()
	err = c.Healthz(ctx)
	ae, ok := err.(*client.APIError)
	if !ok || ae.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining: %v", err)
	}
	if _, err := c.Solve(ctx, client.SolveRequest{Instances: []client.Instance{{
		Providers: []client.Provider{{X: 0, Y: 0, Cap: 1}},
		Customers: []client.Customer{{ID: 0, X: 1, Y: 1}},
	}}}); err == nil {
		t.Fatal("solve accepted while draining")
	}
	if _, err := c.NewSession(ctx, client.SessionRequest{Providers: []client.Provider{{X: 0, Y: 0, Cap: 1}}}); err == nil {
		t.Fatal("session accepted while draining")
	}
	// Arrivals are new work too: they must be rejected so keep-alive
	// arrival loops cannot hold Shutdown open, while reads stay live.
	if _, err := c.Arrive(ctx, sess.ID, client.ArriveRequest{ID: 2, X: 2, Y: 2}); err == nil {
		t.Fatal("arrival accepted while draining")
	}
	if m, err := c.Matching(ctx, sess.ID); err != nil || m.Size != 1 {
		t.Fatalf("matching should stay readable while draining: %v %+v", err, m)
	}
	if _, err := c.Metrics(ctx); err != nil {
		t.Fatalf("metrics should stay scrapeable while draining: %v", err)
	}
}

// TestMetricsExposition: after mixed activity, the scrape exposes the
// engine pool, result cache, fleet aggregates, sessions, and netmetric
// cache counters in Prometheus text format.
func TestMetricsExposition(t *testing.T) {
	h := testServer(t, server.Config{})
	c := h.c
	ctx := context.Background()
	pts := testPoints(120, 53)
	in := client.Instance{
		Solver:    "sspa",
		Providers: []client.Provider{{X: 500, Y: 500, Cap: 15}},
		Customers: wireCustomers(pts),
		Metric:    "network",
		NetGrid:   8,
		NetSeed:   3,
	}
	if _, err := c.Solve(ctx, client.SolveRequest{Instances: []client.Instance{in, in}}); err != nil {
		t.Fatal(err)
	}
	info, err := c.NewSession(ctx, client.SessionRequest{Providers: []client.Provider{{X: 0, Y: 0, Cap: 5}}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Arrive(ctx, info.ID, client.ArriveRequest{ID: 1, X: 3, Y: 4}); err != nil {
		t.Fatal(err)
	}

	wants := []string{
		"ccad_uptime_seconds",
		`ccad_http_requests_total{handler="solve",code="200"} 1`,
		"ccad_http_admission_limit " + fmt.Sprint(server.DefaultMaxInFlight),
		"ccad_engine_workers 4",
		"ccad_engine_tasks_completed_total 2",
		"ccad_solve_instances_total 2",
		"ccad_solve_solved_total 2",
		"ccad_solve_pairs_total 30",
		"ccad_sessions_active 1",
		"ccad_sessions_created_total 1",
		"ccad_sessions_arrivals_total 1",
		"ccad_sessions_arrivals_matched_total 1",
		`ccad_netmetric_node_cache_hits_total{network="grid8-seed3-lm8-ch0"}`,
		`ccad_netmetric_pair_cache_hits_total{network="grid8-seed3-lm8-ch0"}`,
		// Inline per-request datasets can never repeat, so they must
		// bypass the result cache entirely — no misses, no dead inserts
		// evicting named-dataset entries.
		"ccad_result_cache_misses_total 0",
		"ccad_draining 0",
	}
	// Request accounting lands just after a handler returns, which can
	// trail the client seeing the response by a beat — poll briefly.
	deadline := time.Now().Add(2 * time.Second)
	for {
		text, err := c.Metrics(ctx)
		if err != nil {
			t.Fatal(err)
		}
		missing := ""
		for _, want := range wants {
			if !strings.Contains(text, want) {
				missing = want
				break
			}
		}
		if missing == "" {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("metrics missing %q in:\n%s", missing, text)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestUnknownRoutes: the mux 404s unknown paths and 405s wrong methods.
func TestUnknownRoutes(t *testing.T) {
	h := testServer(t, server.Config{})
	base := h.url
	resp, err := http.Get(base + "/v1/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /v1/nope = %d", resp.StatusCode)
	}
	resp, err = http.Get(base + "/v1/solve")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/solve = %d", resp.StatusCode)
	}
}
