package server

import (
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	cca "repro"
	"repro/client"
	"repro/internal/geo/netmetric"
	"repro/internal/obs"
)

// maxSolveFamilies bounds the family label's cardinality on
// ccad_solve_latency_seconds. A family is a solver name up to the
// first ':' ("sharded:ida" → "sharded"), so the registry keeps this
// naturally small; past the cap, new families fold into "other"
// rather than letting a hostile client mint unbounded series.
const maxSolveFamilies = 16

// counters is the server's own telemetry: per-endpoint request counts,
// admission sheds, and fleet-level solve aggregates across every
// request served. The engine and metric caches keep their own lifetime
// counters; /metrics stitches all of them into one exposition.
type counters struct {
	mu       sync.Mutex
	requests map[string]map[int]uint64 // handler → status code → count
	rejected uint64                    // solve requests shed by admission control

	instances uint64 // instances received by /v1/solve
	solved    uint64 // instances that produced a matching
	errored   uint64 // instances that failed (incl. timeouts)
	pairs     uint64 // Σ matching sizes
	cacheHits uint64 // results served from the engine result cache
	cost      float64
	solveWall time.Duration // Σ per-instance wall time
	queueWait time.Duration // Σ time instances waited for a worker
	faults    uint64        // Σ buffer faults across non-cached solves
	ioTime    time.Duration // simulated I/O time (10 ms per fault)

	sessionsCreated uint64
	arrivals        uint64
	arrivalsMatched uint64
	departures      uint64
	resizes         uint64
	// Lifecycle accounting: with these, the sessions_active gauge is
	// reconcilable from counters alone —
	//   active = created + recovered + reloaded − deleted − expired.
	sessionsDeleted   uint64 // DELETE /v1/sessions/{id}
	sessionsExpired   uint64 // unloaded (or dropped) by the TTL sweeper
	sessionsRecovered uint64 // replayed from WALs at boot
	sessionsReloaded  uint64 // lazily replayed on touch after a TTL unload
	sessionSnapshots  uint64 // checkpoint snapshots written

	// Latency histograms. The obs.Histogram is internally atomic, so
	// observations never take c.mu; only the solveLatency map (family →
	// histogram, created on demand) is guarded by it.
	solveLatency  map[string]*obs.Histogram // per solver family solve wall time
	queueWaitHist *obs.Histogram            // per-instance scheduler queue wait
	pointQuery    *obs.Histogram            // network-metric point-query latency (fed by traced solves)
	walFsync      *obs.Histogram            // session WAL append+fsync latency
}

func (c *counters) init() {
	c.requests = make(map[string]map[int]uint64)
	c.solveLatency = make(map[string]*obs.Histogram)
	c.queueWaitHist = obs.NewHistogram(obs.LatencyBounds)
	c.pointQuery = obs.NewHistogram(obs.MicroBounds)
	c.walFsync = obs.NewHistogram(obs.FsyncBounds)
}

// solveFamily returns the latency histogram for a solver's family —
// the name before the first ':' — creating it on first use and folding
// overflow past maxSolveFamilies into "other".
func (c *counters) solveFamily(solver string) *obs.Histogram {
	fam := solver
	if i := strings.IndexByte(fam, ':'); i >= 0 {
		fam = fam[:i]
	}
	if fam == "" {
		fam = "unknown"
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if h, ok := c.solveLatency[fam]; ok {
		return h
	}
	if len(c.solveLatency) >= maxSolveFamilies {
		fam = "other"
		if h, ok := c.solveLatency[fam]; ok {
			return h
		}
	}
	h := obs.NewHistogram(obs.LatencyBounds)
	c.solveLatency[fam] = h
	return h
}

func (c *counters) recordRequest(handler string, code int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	byCode := c.requests[handler]
	if byCode == nil {
		byCode = make(map[int]uint64)
		c.requests[handler] = byCode
	}
	byCode[code]++
}

func (c *counters) recordRejected() {
	c.mu.Lock()
	c.rejected++
	c.mu.Unlock()
}

func (c *counters) recordSolve(fleet client.Fleet, raw []cca.InstanceResult) {
	// Per-instance observations come from the raw results: the fleet's
	// QueueWaitNS is a mean now that QueueWaitHist exists, so the Σ
	// counter must be rebuilt from the originals.
	var queueSum time.Duration
	for _, r := range raw {
		queueSum += r.QueueWait
		c.queueWaitHist.Observe(r.QueueWait.Seconds())
		if r.Err == nil {
			c.solveFamily(r.Solver).Observe(r.Wall.Seconds())
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.instances += uint64(fleet.Instances)
	c.solved += uint64(fleet.Solved)
	c.errored += uint64(fleet.Errors)
	c.pairs += uint64(fleet.Pairs)
	c.cacheHits += uint64(fleet.CacheHits)
	c.cost += fleet.Cost
	c.solveWall += time.Duration(fleet.SolveWallNS)
	c.queueWait += queueSum
	c.faults += uint64(fleet.Faults)
	c.ioTime += time.Duration(fleet.IONS)
}

func (c *counters) recordSession() {
	c.mu.Lock()
	c.sessionsCreated++
	c.mu.Unlock()
}

func (c *counters) recordArrival(matched bool) {
	c.mu.Lock()
	c.arrivals++
	if matched {
		c.arrivalsMatched++
	}
	c.mu.Unlock()
}

func (c *counters) recordDepart() {
	c.mu.Lock()
	c.departures++
	c.mu.Unlock()
}

func (c *counters) recordResize() {
	c.mu.Lock()
	c.resizes++
	c.mu.Unlock()
}

func (c *counters) recordDeleted() {
	c.mu.Lock()
	c.sessionsDeleted++
	c.mu.Unlock()
}

func (c *counters) recordExpired() {
	c.mu.Lock()
	c.sessionsExpired++
	c.mu.Unlock()
}

func (c *counters) recordRecovered(n int) {
	c.mu.Lock()
	c.sessionsRecovered += uint64(n)
	c.mu.Unlock()
}

func (c *counters) recordReloaded() {
	c.mu.Lock()
	c.sessionsReloaded++
	c.mu.Unlock()
}

func (c *counters) recordSnapshot() {
	c.mu.Lock()
	c.sessionSnapshots++
	c.mu.Unlock()
}

// promWriter accumulates one Prometheus text exposition.
type promWriter struct {
	w http.ResponseWriter
}

func (p promWriter) header(name, help, typ string) {
	fmt.Fprintf(p.w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

func (p promWriter) val(name string, v float64) {
	fmt.Fprintf(p.w, "%s %s\n", name, strconv.FormatFloat(v, 'g', -1, 64))
}

func (p promWriter) labeled(name, labels string, v float64) {
	fmt.Fprintf(p.w, "%s{%s} %s\n", name, labels, strconv.FormatFloat(v, 'g', -1, 64))
}

// histogram emits one Prometheus histogram series set: cumulative
// _bucket lines (le is an inclusive upper bound, matching
// obs.Histogram), the mandatory le="+Inf" bucket, then _sum and
// _count. labels carries extra label pairs ("" for none).
func (p promWriter) histogram(name, labels string, s obs.Snapshot) {
	withLe := func(le string) string {
		if labels == "" {
			return `le="` + le + `"`
		}
		return labels + `,le="` + le + `"`
	}
	cum := s.Cumulative()
	for i, b := range s.Bounds {
		p.labeled(name+"_bucket", withLe(strconv.FormatFloat(b, 'g', -1, 64)), float64(cum[i]))
	}
	p.labeled(name+"_bucket", withLe("+Inf"), float64(s.Count))
	if labels == "" {
		p.val(name+"_sum", s.Sum)
		p.val(name+"_count", float64(s.Count))
		return
	}
	p.labeled(name+"_sum", labels, s.Sum)
	p.labeled(name+"_count", labels, float64(s.Count))
}

// handleMetrics serves GET /metrics: one scrape stitches together the
// HTTP layer (requests, admission), the engine (pool telemetry, result
// cache), the solve-level fleet aggregates, the session layer, and
// every road-network metric's snap/node-pair cache counters. All
// counters are process-lifetime; see README "Serving" for field
// meanings.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	p := promWriter{w: w}

	p.header("ccad_uptime_seconds", "Seconds since the server started.", "gauge")
	p.val("ccad_uptime_seconds", time.Since(s.start).Seconds())
	p.header("ccad_draining", "1 once graceful drain began, else 0.", "gauge")
	p.val("ccad_draining", boolGauge(s.draining.Load()))

	// HTTP layer. Snapshot everything under the lock, write after — the
	// counters mutex is on every request's hot path and must never wait
	// on a slow scraper's socket.
	s.stats.mu.Lock()
	requests := make(map[string]map[int]uint64, len(s.stats.requests))
	for h, byCode := range s.stats.requests {
		cp := make(map[int]uint64, len(byCode))
		for code, n := range byCode {
			cp[code] = n
		}
		requests[h] = cp
	}
	rejected := s.stats.rejected
	instances, solved, errored := s.stats.instances, s.stats.solved, s.stats.errored
	pairs, cacheHits, cost := s.stats.pairs, s.stats.cacheHits, s.stats.cost
	solveWall, queueWait := s.stats.solveWall, s.stats.queueWait
	faults, ioTime := s.stats.faults, s.stats.ioTime
	sessionsCreated, arrivals, arrivalsMatched := s.stats.sessionsCreated, s.stats.arrivals, s.stats.arrivalsMatched
	departures, resizes := s.stats.departures, s.stats.resizes
	sessionsDeleted, sessionsExpired := s.stats.sessionsDeleted, s.stats.sessionsExpired
	sessionsRecovered, sessionsReloaded := s.stats.sessionsRecovered, s.stats.sessionsReloaded
	sessionSnapshots := s.stats.sessionSnapshots
	s.stats.mu.Unlock()

	handlers := make([]string, 0, len(requests))
	for h := range requests {
		handlers = append(handlers, h)
	}
	sort.Strings(handlers)
	p.header("ccad_http_requests_total", "HTTP requests served, by handler and status code.", "counter")
	for _, h := range handlers {
		codes := make([]int, 0, len(requests[h]))
		for code := range requests[h] {
			codes = append(codes, code)
		}
		sort.Ints(codes)
		for _, code := range codes {
			p.labeled("ccad_http_requests_total",
				fmt.Sprintf("handler=%q,code=%q", h, strconv.Itoa(code)),
				float64(requests[h][code]))
		}
	}

	p.header("ccad_http_inflight_solves", "Solve requests currently admitted.", "gauge")
	p.val("ccad_http_inflight_solves", float64(len(s.sem)))
	p.header("ccad_http_admission_limit", "Admission bound on concurrent solve requests (MaxInFlight).", "gauge")
	p.val("ccad_http_admission_limit", float64(cap(s.sem)))
	p.header("ccad_http_rejected_total", "Solve requests shed with 429 by admission control.", "counter")
	p.val("ccad_http_rejected_total", float64(rejected))

	// Engine pool (sched lifetime telemetry).
	pm := s.engine.PoolMetrics()
	p.header("ccad_engine_workers", "Engine worker-pool size (0 until the pool first runs).", "gauge")
	p.val("ccad_engine_workers", float64(pm.Workers))
	p.header("ccad_engine_tasks_submitted_total", "Instances accepted by the engine scheduler.", "counter")
	p.val("ccad_engine_tasks_submitted_total", float64(pm.Submitted))
	p.header("ccad_engine_tasks_completed_total", "Instances that finished running.", "counter")
	p.val("ccad_engine_tasks_completed_total", float64(pm.Completed))
	p.header("ccad_engine_queue_depth", "Instances waiting for a worker, all lanes.", "gauge")
	p.val("ccad_engine_queue_depth", float64(pm.Queued))
	p.header("ccad_engine_queue_wait_seconds_total", "Total time completed instances waited for a worker.", "counter")
	p.val("ccad_engine_queue_wait_seconds_total", pm.QueueWait.Seconds())
	p.header("ccad_engine_queue_wait_max_seconds", "Worst single queue wait observed.", "gauge")
	p.val("ccad_engine_queue_wait_max_seconds", pm.MaxQueueWait.Seconds())
	p.header("ccad_engine_worker_tasks_total", "Tasks completed, by worker.", "counter")
	for i, ws := range pm.PerWorker {
		p.labeled("ccad_engine_worker_tasks_total", fmt.Sprintf("worker=%q", strconv.Itoa(i)), float64(ws.Tasks))
	}
	p.header("ccad_engine_worker_busy_seconds_total", "Time spent running tasks, by worker.", "counter")
	for i, ws := range pm.PerWorker {
		p.labeled("ccad_engine_worker_busy_seconds_total", fmt.Sprintf("worker=%q", strconv.Itoa(i)), ws.Busy.Seconds())
	}

	// Engine result cache.
	cs := s.engine.CacheStats()
	p.header("ccad_result_cache_hits_total", "Solves served from the cross-instance result cache.", "counter")
	p.val("ccad_result_cache_hits_total", float64(cs.Hits))
	p.header("ccad_result_cache_misses_total", "Result-cache lookups that found nothing.", "counter")
	p.val("ccad_result_cache_misses_total", float64(cs.Misses))
	p.header("ccad_result_cache_evictions_total", "Result-cache entries displaced by the LRU bound.", "counter")
	p.val("ccad_result_cache_evictions_total", float64(cs.Evictions))

	// Fleet aggregates across every solve request served.
	p.header("ccad_solve_instances_total", "Instances received by /v1/solve.", "counter")
	p.val("ccad_solve_instances_total", float64(instances))
	p.header("ccad_solve_solved_total", "Instances that produced a matching.", "counter")
	p.val("ccad_solve_solved_total", float64(solved))
	p.header("ccad_solve_errors_total", "Instances that failed (bad input, unknown solver, timeout).", "counter")
	p.val("ccad_solve_errors_total", float64(errored))
	p.header("ccad_solve_pairs_total", "Total assignment pairs across all matchings.", "counter")
	p.val("ccad_solve_pairs_total", float64(pairs))
	p.header("ccad_solve_cost_total", "Total matching cost sum(Psi(M)) across all solved instances.", "counter")
	p.val("ccad_solve_cost_total", cost)
	p.header("ccad_solve_cache_hits_total", "Instances served from the result cache.", "counter")
	p.val("ccad_solve_cache_hits_total", float64(cacheHits))
	p.header("ccad_solve_wall_seconds_total", "Total per-instance solve wall time.", "counter")
	p.val("ccad_solve_wall_seconds_total", solveWall.Seconds())
	p.header("ccad_solve_queue_wait_seconds_total", "Total time solve instances waited for a worker.", "counter")
	p.val("ccad_solve_queue_wait_seconds_total", queueWait.Seconds())
	p.header("ccad_solve_page_faults_total", "Buffer faults across non-cached solves (the paper's fault accounting).", "counter")
	p.val("ccad_solve_page_faults_total", float64(faults))
	p.header("ccad_solve_io_seconds_total", "Simulated I/O time across non-cached solves (10 ms per fault, the paper's cost model).", "counter")
	p.val("ccad_solve_io_seconds_total", ioTime.Seconds())

	// Latency histograms. The map needs the lock; the histograms are
	// atomic and snapshot lock-free.
	s.stats.mu.Lock()
	fams := make([]string, 0, len(s.stats.solveLatency))
	for f := range s.stats.solveLatency {
		fams = append(fams, f)
	}
	famHists := make(map[string]*obs.Histogram, len(fams))
	for _, f := range fams {
		famHists[f] = s.stats.solveLatency[f]
	}
	s.stats.mu.Unlock()
	sort.Strings(fams)
	p.header("ccad_solve_latency_seconds", "Per-instance solve wall time, by solver family (the solver name before the first ':').", "histogram")
	for _, f := range fams {
		p.histogram("ccad_solve_latency_seconds", fmt.Sprintf("family=%q", f), famHists[f].Snapshot())
	}
	p.header("ccad_solve_queue_wait_seconds", "Per-instance time waiting for an engine worker.", "histogram")
	p.histogram("ccad_solve_queue_wait_seconds", "", s.stats.queueWaitHist.Snapshot())
	p.header("ccad_netmetric_point_query_seconds", "Road-network point-query (Dist) latency. Fed only by traced solves (trace=1), which time every metric call.", "histogram")
	p.histogram("ccad_netmetric_point_query_seconds", "", s.stats.pointQuery.Snapshot())
	p.header("ccad_wal_fsync_seconds", "Session WAL append+fsync latency per logged event.", "histogram")
	p.histogram("ccad_wal_fsync_seconds", "", s.stats.walFsync.Snapshot())

	// Sessions.
	p.header("ccad_sessions_active", "Live online sessions.", "gauge")
	p.val("ccad_sessions_active", float64(s.sessions.count()))
	p.header("ccad_sessions_created_total", "Sessions created since start.", "counter")
	p.val("ccad_sessions_created_total", float64(sessionsCreated))
	p.header("ccad_sessions_arrivals_total", "Customer arrivals processed across all sessions.", "counter")
	p.val("ccad_sessions_arrivals_total", float64(arrivals))
	p.header("ccad_sessions_arrivals_matched_total", "Arrivals that held a slot immediately.", "counter")
	p.val("ccad_sessions_arrivals_matched_total", float64(arrivalsMatched))
	p.header("ccad_sessions_departures_total", "Customer departures processed across all sessions.", "counter")
	p.val("ccad_sessions_departures_total", float64(departures))
	p.header("ccad_sessions_resizes_total", "Provider capacity resizes processed across all sessions.", "counter")
	p.val("ccad_sessions_resizes_total", float64(resizes))
	p.header("ccad_sessions_deleted_total", "Sessions removed by DELETE /v1/sessions/{id}.", "counter")
	p.val("ccad_sessions_deleted_total", float64(sessionsDeleted))
	p.header("ccad_sessions_expired_total", "Sessions unloaded (or, without -state-dir, dropped) by the TTL sweeper.", "counter")
	p.val("ccad_sessions_expired_total", float64(sessionsExpired))
	p.header("ccad_sessions_recovered_total", "Sessions replayed from their WALs at boot.", "counter")
	p.val("ccad_sessions_recovered_total", float64(sessionsRecovered))
	p.header("ccad_sessions_reloaded_total", "Unloaded sessions replayed from their WALs on touch.", "counter")
	p.val("ccad_sessions_reloaded_total", float64(sessionsReloaded))
	p.header("ccad_session_snapshots_total", "Session checkpoint snapshots written.", "counter")
	p.val("ccad_session_snapshots_total", float64(sessionSnapshots))

	// Named datasets: lifecycle counters plus the paper's per-dataset
	// fault accounting and buffer residency.
	p.header("ccad_datasets_loaded", "Named datasets currently indexed in memory.", "gauge")
	p.val("ccad_datasets_loaded", float64(s.datasets.loadedCount()))
	uploads, evicted := s.datasets.counts()
	p.header("ccad_datasets_uploaded_total", "Datasets committed by POST /v1/datasets/{name}.", "counter")
	p.val("ccad_datasets_uploaded_total", float64(uploads))
	p.header("ccad_datasets_evicted_total", "Dataset indexes dropped by DELETE /v1/datasets/{name} (or replaced by an upload).", "counter")
	p.val("ccad_datasets_evicted_total", float64(evicted))
	dsNames, dsAggs := s.datasets.ioSnapshot()
	p.header("ccad_dataset_page_faults_total", "Buffer faults charged to non-cached solves of this dataset.", "counter")
	p.header("ccad_dataset_buffer_hits_total", "Buffer hits across non-cached solves of this dataset.", "counter")
	p.header("ccad_dataset_io_seconds_total", "Simulated I/O time charged to this dataset (10 ms per fault).", "counter")
	for i, name := range dsNames {
		labels := fmt.Sprintf("dataset=%q", name)
		p.labeled("ccad_dataset_page_faults_total", labels, float64(dsAggs[i].faults))
		p.labeled("ccad_dataset_buffer_hits_total", labels, float64(dsAggs[i].hits))
		p.labeled("ccad_dataset_io_seconds_total", labels, dsAggs[i].ioTime.Seconds())
	}
	p.header("ccad_dataset_pages", "R-tree pages in a resident dataset's page store.", "gauge")
	p.header("ccad_dataset_resident_pages", "Pages cached in a resident dataset's primary LRU buffer.", "gauge")
	p.header("ccad_dataset_buffer_pages", "LRU buffer capacity of a resident dataset (the paper's 1%).", "gauge")
	for _, info := range s.datasets.residentInfos() {
		labels := fmt.Sprintf("dataset=%q", info.Name)
		p.labeled("ccad_dataset_pages", labels, float64(info.Pages))
		p.labeled("ccad_dataset_resident_pages", labels, float64(info.ResidentPages))
		p.labeled("ccad_dataset_buffer_pages", labels, float64(info.BufferPages))
	}

	// Road-network metric caches, one series set per distinct (built)
	// network; entries still mid-build are skipped, never waited on.
	type netSample struct {
		key netKey
		m   *netmetric.NetworkMetric
	}
	s.netMu.Lock()
	nets := make([]netSample, 0, len(s.netMetrics))
	for k, e := range s.netMetrics {
		if e.done.Load() {
			nets = append(nets, netSample{key: k, m: e.m})
		}
	}
	s.netMu.Unlock()
	sort.Slice(nets, func(i, j int) bool {
		if nets[i].key.grid != nets[j].key.grid {
			return nets[i].key.grid < nets[j].key.grid
		}
		if nets[i].key.seed != nets[j].key.seed {
			return nets[i].key.seed < nets[j].key.seed
		}
		if nets[i].key.landmarks != nets[j].key.landmarks {
			return nets[i].key.landmarks < nets[j].key.landmarks
		}
		return nets[i].key.ch < nets[j].key.ch
	})
	p.header("ccad_netmetric_node_cache_hits_total", "Node-pair distances served from a network metric's cache (a hit avoids a bidirectional Dijkstra).", "counter")
	p.header("ccad_netmetric_node_cache_misses_total", "Node-pair distances computed by Dijkstra.", "counter")
	p.header("ccad_netmetric_node_cache_evictions_total", "Node-pair entries displaced by the LRU bound.", "counter")
	p.header("ccad_netmetric_snap_cache_hits_total", "Point snap positions served from cache.", "counter")
	p.header("ccad_netmetric_snap_cache_misses_total", "Point snap positions computed against the edge grid.", "counter")
	p.header("ccad_netmetric_snap_cache_evictions_total", "Snap entries displaced by the LRU bound.", "counter")
	p.header("ccad_netmetric_pair_cache_hits_total", "Finished point-pair distances served whole from a network metric's cache (a hit skips the snap and node layers entirely).", "counter")
	p.header("ccad_netmetric_pair_cache_misses_total", "Point-pair distances assembled from the snap and node layers.", "counter")
	p.header("ccad_netmetric_pair_cache_evictions_total", "Point-pair entries displaced by the LRU bound.", "counter")
	for _, n := range nets {
		st := n.m.Stats()
		labels := fmt.Sprintf("network=%q", fmt.Sprintf("grid%d-seed%d-lm%d-ch%d", n.key.grid, n.key.seed, n.key.landmarks, n.key.ch))
		p.labeled("ccad_netmetric_node_cache_hits_total", labels, float64(st.NodeHits))
		p.labeled("ccad_netmetric_node_cache_misses_total", labels, float64(st.NodeMisses))
		p.labeled("ccad_netmetric_node_cache_evictions_total", labels, float64(st.NodeEvictions))
		p.labeled("ccad_netmetric_snap_cache_hits_total", labels, float64(st.SnapHits))
		p.labeled("ccad_netmetric_snap_cache_misses_total", labels, float64(st.SnapMisses))
		p.labeled("ccad_netmetric_snap_cache_evictions_total", labels, float64(st.SnapEvictions))
		p.labeled("ccad_netmetric_pair_cache_hits_total", labels, float64(st.PairHits))
		p.labeled("ccad_netmetric_pair_cache_misses_total", labels, float64(st.PairMisses))
		p.labeled("ccad_netmetric_pair_cache_evictions_total", labels, float64(st.PairEvictions))
	}
}

func boolGauge(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
