package datagen

import (
	"math"
	"testing"

	"repro/internal/geo"
)

var space = geo.Rect{Min: geo.Point{X: 0, Y: 0}, Max: geo.Point{X: 1000, Y: 1000}}

func TestNetworkStructure(t *testing.T) {
	n := NewNetwork(20, space, 1)
	if len(n.Nodes) != 400 {
		t.Fatalf("nodes = %d want 400", len(n.Nodes))
	}
	// ~85% of the 2*20*19 lattice edges should survive.
	maxEdges := 2 * 20 * 19
	if len(n.Edges) < maxEdges/2 || len(n.Edges) > maxEdges {
		t.Fatalf("edges = %d out of plausible range (max %d)", len(n.Edges), maxEdges)
	}
	for _, pt := range n.Nodes {
		if !space.Contains(pt) {
			t.Fatalf("node %v escapes the space", pt)
		}
	}
	for _, e := range n.Edges {
		if e[0] == e[1] {
			t.Fatal("self-loop edge")
		}
	}
}

func TestNetworkDeterminism(t *testing.T) {
	a := NewNetwork(10, space, 42)
	b := NewNetwork(10, space, 42)
	if len(a.Edges) != len(b.Edges) || a.Nodes[7] != b.Nodes[7] {
		t.Fatal("same seed must give the same network")
	}
	c := NewNetwork(10, space, 43)
	if len(a.Edges) == len(c.Edges) && a.Nodes[7] == c.Nodes[7] {
		t.Fatal("different seeds should differ")
	}
}

func TestPointsOnEdges(t *testing.T) {
	n := NewNetwork(15, space, 2)
	pts := n.Points(Config{N: 500, Dist: Uniform, Seed: 3})
	if len(pts) != 500 {
		t.Fatalf("got %d points", len(pts))
	}
	// Every point must lie on some edge segment (within tolerance).
	for _, p := range pts {
		onEdge := false
		for _, e := range n.Edges {
			a, b := n.Nodes[e[0]], n.Nodes[e[1]]
			// distance from p to segment ab
			if distToSegment(p, a, b) < 1e-9 {
				onEdge = true
				break
			}
		}
		if !onEdge {
			t.Fatalf("point %v not on any edge", p)
		}
	}
}

func distToSegment(p, a, b geo.Point) float64 {
	abx, aby := b.X-a.X, b.Y-a.Y
	apx, apy := p.X-a.X, p.Y-a.Y
	len2 := abx*abx + aby*aby
	t := 0.0
	if len2 > 0 {
		t = (apx*abx + apy*aby) / len2
	}
	t = math.Max(0, math.Min(1, t))
	proj := geo.Point{X: a.X + t*abx, Y: a.Y + t*aby}
	return p.Dist(proj)
}

// Clustered generation must be visibly denser than uniform: the average
// nearest-neighbor distance should be clearly smaller.
func TestClusteredIsDenser(t *testing.T) {
	n := NewNetwork(25, space, 5)
	clustered := n.Points(Config{N: 1000, Dist: Clustered, Seed: 7})
	uniform := n.Points(Config{N: 1000, Dist: Uniform, Seed: 7})
	if avgNNDist(clustered) >= avgNNDist(uniform)*0.8 {
		t.Fatalf("clustered NN dist %.2f not clearly denser than uniform %.2f",
			avgNNDist(clustered), avgNNDist(uniform))
	}
}

func avgNNDist(pts []geo.Point) float64 {
	total := 0.0
	for i, p := range pts {
		best := math.Inf(1)
		for j, q := range pts {
			if i == j {
				continue
			}
			if d := p.Dist(q); d < best {
				best = d
			}
		}
		total += best
	}
	return total / float64(len(pts))
}

func TestItems(t *testing.T) {
	pts := []geo.Point{{X: 1, Y: 2}, {X: 3, Y: 4}}
	items := Items(pts)
	if len(items) != 2 || items[0].ID != 0 || items[1].ID != 1 || items[1].Pt != pts[1] {
		t.Fatalf("Items mismatch: %+v", items)
	}
}

func TestCapacities(t *testing.T) {
	fixed := Capacities(5, 80, 80, 1)
	for _, k := range fixed {
		if k != 80 {
			t.Fatalf("fixed capacities: %v", fixed)
		}
	}
	mixed := Capacities(1000, 40, 120, 2)
	lo, hi := 1<<30, 0
	for _, k := range mixed {
		if k < 40 || k > 120 {
			t.Fatalf("capacity %d out of [40,120]", k)
		}
		if k < lo {
			lo = k
		}
		if k > hi {
			hi = k
		}
	}
	if lo > 45 || hi < 115 {
		t.Fatalf("mixed capacities poorly spread: [%d,%d]", lo, hi)
	}
}

func TestDistributionString(t *testing.T) {
	if Clustered.String() != "C" || Uniform.String() != "U" {
		t.Fatal("distribution labels changed")
	}
}

func TestConfigDefaults(t *testing.T) {
	n := NewNetwork(10, space, 9)
	pts := n.Points(Config{N: 100, Seed: 1}) // all defaults: clustered
	if len(pts) != 100 {
		t.Fatalf("got %d points", len(pts))
	}
}
