package datagen

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/geo"
)

// Churn workloads: named, seeded generators of online event streams
// (arrive / depart / resize) for the dynamic matcher. Each scenario
// models a workload family from the ROADMAP's online-matching item —
// ride-hailing, delivery dispatch, disaster evacuation, diurnal load —
// and every stream is valid by construction: ids are unique, departs
// reference live customers, resize targets are in range with
// non-negative capacities. The expr harness, ccabench -serve, the ccad
// session wire format, and the fuzz/conformance suites all replay
// these streams.

// EventKind discriminates churn events.
type EventKind uint8

const (
	// EventArrive adds customer ID at Pt.
	EventArrive EventKind = iota
	// EventDepart removes customer ID.
	EventDepart
	// EventResize sets provider Provider's capacity to NewCap.
	EventResize
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case EventArrive:
		return "arrive"
	case EventDepart:
		return "depart"
	case EventResize:
		return "resize"
	}
	return fmt.Sprintf("EventKind(%d)", uint8(k))
}

// Event is one step of a churn stream.
type Event struct {
	Kind     EventKind
	ID       int64     // customer id (arrive / depart)
	Pt       geo.Point // arrival location, on the network
	Provider int       // resize target index
	NewCap   int       // resize capacity (>= 0; 0 is a full shock)
}

// ProviderSpec is a provider's initial placement and capacity.
type ProviderSpec struct {
	Pt  geo.Point
	Cap int
}

// ChurnWorkload is a generated scenario instance.
type ChurnWorkload struct {
	Scenario  string
	Providers []ProviderSpec
	Events    []Event
}

// ChurnConfig sizes a scenario.
type ChurnConfig struct {
	Events    int   // total events (default 1000)
	Providers int   // |Q| (default 32)
	Seed      int64 // deterministic: same config, same stream
}

func (c ChurnConfig) withDefaults() ChurnConfig {
	if c.Events <= 0 {
		c.Events = 1000
	}
	if c.Providers <= 0 {
		c.Providers = 32
	}
	return c
}

// churnScenario is a registry entry.
type churnScenario struct {
	desc string
	gen  func(n *Network, cfg ChurnConfig) *ChurnWorkload
}

var churnScenarios = map[string]churnScenario{
	"ridehail": {
		desc: "bursty arrivals, short-lived customers, steady provider fleet",
		gen:  genRidehail,
	},
	"delivery": {
		desc: "depot-skewed capacities: few large depots, many small couriers",
		gen:  genDelivery,
	},
	"evacuation": {
		desc: "capacity shocks: shelters drop to zero and recover via resize",
		gen:  genEvacuation,
	},
	"diurnal": {
		desc: "sinusoidal arrival rate over two simulated days",
		gen:  genDiurnal,
	},
}

// ChurnScenarios lists the registered scenario names, sorted.
func ChurnScenarios() []string {
	out := make([]string, 0, len(churnScenarios))
	for name := range churnScenarios {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// ChurnScenarioDescription returns the one-line description of a
// scenario ("" when unknown).
func ChurnScenarioDescription(name string) string {
	return churnScenarios[name].desc
}

// NewChurn generates the named scenario's workload on the given
// network.
func NewChurn(name string, n *Network, cfg ChurnConfig) (*ChurnWorkload, error) {
	s, ok := churnScenarios[name]
	if !ok {
		return nil, fmt.Errorf("datagen: unknown churn scenario %q (available: %v)", name, ChurnScenarios())
	}
	w := s.gen(n, cfg.withDefaults())
	w.Scenario = name
	return w, nil
}

// lifeEntry schedules a customer's departure.
type lifeEntry struct {
	at int // event index at which the customer departs
	id int64
}

type lifeHeap []lifeEntry

func (h lifeHeap) Len() int           { return len(h) }
func (h lifeHeap) Less(i, j int) bool { return h[i].at < h[j].at }
func (h lifeHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *lifeHeap) Push(x any)        { *h = append(*h, x.(lifeEntry)) }
func (h *lifeHeap) Pop() any          { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (h *lifeHeap) peek() lifeEntry   { return (*h)[0] }
func (h *lifeHeap) nonEmpty() bool    { return h.Len() > 0 }

// churnBuilder accumulates a valid event stream: arrivals get unique
// ids and scheduled lifetimes; due departures are emitted before new
// work.
type churnBuilder struct {
	events []Event
	lives  lifeHeap
	nextID int64
}

func (b *churnBuilder) len() int { return len(b.events) }

// arrive emits an arrival at pt whose departure falls due `lifetime`
// events from now (0 = never departs within the stream).
func (b *churnBuilder) arrive(pt geo.Point, lifetime int) {
	id := b.nextID
	b.nextID++
	b.events = append(b.events, Event{Kind: EventArrive, ID: id, Pt: pt})
	if lifetime > 0 {
		heap.Push(&b.lives, lifeEntry{at: len(b.events) + lifetime, id: id})
	}
}

// departDue emits at most one due departure; reports whether it did.
func (b *churnBuilder) departDue() bool {
	if !b.lives.nonEmpty() || b.lives.peek().at > len(b.events) {
		return false
	}
	e := heap.Pop(&b.lives).(lifeEntry)
	b.events = append(b.events, Event{Kind: EventDepart, ID: e.id})
	return true
}

func (b *churnBuilder) resize(provider, newCap int) {
	b.events = append(b.events, Event{Kind: EventResize, Provider: provider, NewCap: newCap})
}

// genRidehail models a ride-hailing floor: a steady fleet (capacities
// 2–5), arrivals in Poisson-like bursts (a burst state multiplies the
// arrival probability), and short customer lifetimes so the live set
// turns over constantly.
func genRidehail(n *Network, cfg ChurnConfig) *ChurnWorkload {
	rng := rand.New(rand.NewSource(cfg.Seed))
	providers := uniformProviders(n, rng, cfg.Providers, 2, 5)
	b := &churnBuilder{}
	burst := false
	for b.len() < cfg.Events {
		if rng.Float64() < 0.08 {
			burst = !burst
		}
		if b.departDue() {
			continue
		}
		pArrive := 0.55
		if burst {
			pArrive = 0.95
		}
		if rng.Float64() < pArrive {
			// Rides last 12–60 events.
			b.arrive(n.randomEdgePoint(rng), 12+rng.Intn(49))
		} else if b.lives.nonEmpty() {
			// Early cancellation of the next-scheduled rider.
			e := heap.Pop(&b.lives).(lifeEntry)
			b.events = append(b.events, Event{Kind: EventDepart, ID: e.id})
		}
	}
	return &ChurnWorkload{Providers: providers, Events: b.events}
}

// genDelivery models dispatch from depots: a handful of high-capacity
// depots at cluster hubs plus many capacity-1 couriers, arrivals
// clustered near the depots, medium lifetimes, and occasional ±1
// courier resizes as trucks return or leave.
func genDelivery(n *Network, cfg ChurnConfig) *ChurnWorkload {
	rng := rand.New(rand.NewSource(cfg.Seed))
	nDepots := cfg.Providers / 8
	if nDepots < 1 {
		nDepots = 1
	}
	providers := make([]ProviderSpec, cfg.Providers)
	for i := range providers {
		cap := 1 + rng.Intn(2)
		if i < nDepots {
			cap = 8 + rng.Intn(9) // depot-skewed: one depot ~ many couriers
		}
		providers[i] = ProviderSpec{Pt: n.randomEdgePoint(rng), Cap: cap}
	}
	// The spec reports initial state; a working copy tracks the ±1
	// resize walk so successive resizes stay a plausible random walk.
	working := make([]int, len(providers))
	for i, p := range providers {
		working[i] = p.Cap
	}
	// Orders arrive clustered around the depots' neighborhoods.
	pts := n.Points(Config{N: cfg.Events, Dist: Clustered, Clusters: nDepots + 2, Seed: cfg.Seed + 1})
	next := 0
	b := &churnBuilder{}
	for b.len() < cfg.Events {
		if b.departDue() {
			continue
		}
		switch {
		case rng.Float64() < 0.06:
			// A courier's truck returns (or leaves): bump a non-depot
			// provider by ±1, floor 0.
			i := nDepots + rng.Intn(cfg.Providers-nDepots)
			delta := 1
			if rng.Float64() < 0.5 {
				delta = -1
			}
			if working[i]+delta < 0 {
				delta = 1
			}
			working[i] += delta
			b.resize(i, working[i])
		default:
			b.arrive(pts[next%len(pts)], 20+rng.Intn(60))
			next++
		}
	}
	return &ChurnWorkload{Providers: providers, Events: b.events}
}

// genEvacuation models shelters under a disaster: clustered arrivals
// (population fleeing), very few departures, and capacity shocks — a
// shelter abruptly drops to zero (flooded, closed) and later recovers
// to its original capacity.
func genEvacuation(n *Network, cfg ChurnConfig) *ChurnWorkload {
	rng := rand.New(rand.NewSource(cfg.Seed))
	providers := uniformProviders(n, rng, cfg.Providers, 4, 10)
	initial := make([]int, len(providers))
	for i, p := range providers {
		initial[i] = p.Cap
	}
	down := map[int]int{} // shelter index → events until recovery
	pts := n.Points(Config{N: cfg.Events, Dist: Clustered, Clusters: 4, Seed: cfg.Seed + 1})
	next := 0
	b := &churnBuilder{}
	for b.len() < cfg.Events {
		// Recover shelters whose outage elapsed (index order: the down
		// set is a map, and streams must be deterministic by seed).
		recovered := -1
		for i := range providers {
			if until, isDown := down[i]; isDown && until <= b.len() {
				recovered = i
				break
			}
		}
		if recovered >= 0 {
			delete(down, recovered)
			b.resize(recovered, initial[recovered])
			continue
		}
		if b.departDue() {
			continue
		}
		switch {
		case rng.Float64() < 0.04 && len(down) < len(providers)/2:
			i := rng.Intn(len(providers))
			if _, isDown := down[i]; !isDown {
				down[i] = b.len() + 30 + rng.Intn(60)
				b.resize(i, 0)
				continue
			}
			fallthrough
		default:
			// Evacuees stay long; a few leave (found other arrangements).
			life := 0
			if rng.Float64() < 0.25 {
				life = 40 + rng.Intn(80)
			}
			b.arrive(pts[next%len(pts)], life)
			next++
		}
	}
	return &ChurnWorkload{Providers: providers, Events: b.events}
}

// genDiurnal modulates the arrival rate sinusoidally over two
// simulated days, with lifetimes long enough that the live population
// follows the curve.
func genDiurnal(n *Network, cfg ChurnConfig) *ChurnWorkload {
	rng := rand.New(rand.NewSource(cfg.Seed))
	providers := uniformProviders(n, rng, cfg.Providers, 2, 4)
	b := &churnBuilder{}
	for b.len() < cfg.Events {
		if b.departDue() {
			continue
		}
		// Two full cycles across the stream; rate swings 0.15..0.95.
		phase := 2 * math.Pi * 2 * float64(b.len()) / float64(cfg.Events)
		rate := 0.55 + 0.40*math.Sin(phase)
		if rng.Float64() < rate {
			b.arrive(n.randomEdgePoint(rng), 15+rng.Intn(40))
		} else {
			// Off-peak idle tick: emit the soonest scheduled departure
			// early so the pool drains when arrivals ebb.
			if b.lives.nonEmpty() {
				e := heap.Pop(&b.lives).(lifeEntry)
				b.events = append(b.events, Event{Kind: EventDepart, ID: e.id})
			} else {
				b.arrive(n.randomEdgePoint(rng), 15+rng.Intn(40))
			}
		}
	}
	return &ChurnWorkload{Providers: providers, Events: b.events}
}

func uniformProviders(n *Network, rng *rand.Rand, count, lo, hi int) []ProviderSpec {
	out := make([]ProviderSpec, count)
	for i := range out {
		out[i] = ProviderSpec{
			Pt:  n.randomEdgePoint(rng),
			Cap: lo + rng.Intn(hi-lo+1),
		}
	}
	return out
}
