package datagen

import (
	"reflect"
	"testing"

	"repro/internal/geo"
)

// TestChurnStreamsValid checks the by-construction guarantees every
// consumer of a churn workload relies on: exactly the requested event
// count, unique arrival ids, departures referencing currently live
// ids, resize targets in range with non-negative capacities, and
// arrival points inside the data space.
func TestChurnStreamsValid(t *testing.T) {
	n := NewNetwork(10, geo.Rect{Max: geo.Point{X: 1000, Y: 1000}}, 7)
	for _, name := range ChurnScenarios() {
		for _, cfg := range []ChurnConfig{
			{Events: 500, Providers: 16, Seed: 1},
			{Events: 1200, Providers: 3, Seed: 99},
			{}, // defaults
		} {
			w, err := NewChurn(name, n, cfg)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			wantEvents, wantProviders := cfg.Events, cfg.Providers
			if wantEvents == 0 {
				wantEvents = 1000
			}
			if wantProviders == 0 {
				wantProviders = 32
			}
			if w.Scenario != name {
				t.Errorf("%s: scenario label %q", name, w.Scenario)
			}
			if len(w.Events) != wantEvents {
				t.Errorf("%s: %d events, want %d", name, len(w.Events), wantEvents)
			}
			if len(w.Providers) != wantProviders {
				t.Errorf("%s: %d providers, want %d", name, len(w.Providers), wantProviders)
			}
			for i, p := range w.Providers {
				if p.Cap < 0 {
					t.Fatalf("%s: provider %d has negative cap %d", name, i, p.Cap)
				}
			}
			live := map[int64]bool{}
			seen := map[int64]bool{}
			arrives, departs, resizes := 0, 0, 0
			for i, ev := range w.Events {
				switch ev.Kind {
				case EventArrive:
					arrives++
					if seen[ev.ID] {
						t.Fatalf("%s: event %d re-arrives id %d", name, i, ev.ID)
					}
					seen[ev.ID] = true
					live[ev.ID] = true
					if ev.Pt.X < 0 || ev.Pt.X > 1000 || ev.Pt.Y < 0 || ev.Pt.Y > 1000 {
						t.Fatalf("%s: event %d arrival outside space: %+v", name, i, ev.Pt)
					}
				case EventDepart:
					departs++
					if !live[ev.ID] {
						t.Fatalf("%s: event %d departs non-live id %d", name, i, ev.ID)
					}
					delete(live, ev.ID)
				case EventResize:
					resizes++
					if ev.Provider < 0 || ev.Provider >= len(w.Providers) {
						t.Fatalf("%s: event %d resizes provider %d out of range", name, i, ev.Provider)
					}
					if ev.NewCap < 0 {
						t.Fatalf("%s: event %d resizes to negative cap %d", name, i, ev.NewCap)
					}
				default:
					t.Fatalf("%s: event %d has unknown kind %v", name, i, ev.Kind)
				}
			}
			if arrives == 0 {
				t.Errorf("%s: stream has no arrivals", name)
			}
			if cfg.Events >= 500 && departs == 0 {
				t.Errorf("%s: %d-event stream has no departures", name, wantEvents)
			}
			t.Logf("%s seed=%d: %d arrive / %d depart / %d resize",
				name, cfg.Seed, arrives, departs, resizes)
		}
	}
}

// TestChurnDeterministic pins seed-determinism: the same (scenario,
// network, config) must reproduce the identical stream, and a
// different seed must not.
func TestChurnDeterministic(t *testing.T) {
	n := NewNetwork(8, geo.Rect{Max: geo.Point{X: 500, Y: 500}}, 3)
	for _, name := range ChurnScenarios() {
		cfg := ChurnConfig{Events: 400, Providers: 12, Seed: 5}
		a, err := NewChurn(name, n, cfg)
		if err != nil {
			t.Fatal(err)
		}
		b, err := NewChurn(name, n, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: same seed produced different workloads", name)
		}
		cfg.Seed = 6
		c, err := NewChurn(name, n, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if reflect.DeepEqual(a.Events, c.Events) {
			t.Errorf("%s: different seeds produced identical streams", name)
		}
	}
}

// TestChurnRegistry covers the registry surface: sorted names,
// descriptions for each, and the unknown-name error.
func TestChurnRegistry(t *testing.T) {
	names := ChurnScenarios()
	want := []string{"delivery", "diurnal", "evacuation", "ridehail"}
	if !reflect.DeepEqual(names, want) {
		t.Fatalf("scenarios %v, want %v", names, want)
	}
	for _, name := range names {
		if ChurnScenarioDescription(name) == "" {
			t.Errorf("%s: empty description", name)
		}
	}
	if ChurnScenarioDescription("nope") != "" {
		t.Error("unknown scenario has a description")
	}
	n := NewNetwork(4, geo.Rect{Max: geo.Point{X: 10, Y: 10}}, 1)
	if _, err := NewChurn("nope", n, ChurnConfig{}); err == nil {
		t.Fatal("unknown scenario did not error")
	}
}

// TestChurnEventKindString pins the Stringer (the ccad wire format and
// ccabench logs print these).
func TestChurnEventKindString(t *testing.T) {
	for kind, want := range map[EventKind]string{
		EventArrive:   "arrive",
		EventDepart:   "depart",
		EventResize:   "resize",
		EventKind(97): "EventKind(97)",
	} {
		if got := kind.String(); got != want {
			t.Errorf("EventKind(%d).String() = %q, want %q", uint8(kind), got, want)
		}
	}
}
