package datagen

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"
	"testing"
)

// workloadDigest serializes a full generated workload — network nodes
// and edges, clustered and uniform point sets, and capacities — into a
// SHA-256 digest. Floats are hashed by their IEEE-754 bit patterns, so
// any drift, however small, changes the digest.
func workloadDigest(seed int64) string {
	h := sha256.New()
	put64 := func(v uint64) {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], v)
		h.Write(b[:])
	}
	putF := func(f float64) { put64(math.Float64bits(f)) }

	net := NewNetwork(16, space, seed)
	put64(uint64(len(net.Nodes)))
	for _, n := range net.Nodes {
		putF(n.X)
		putF(n.Y)
	}
	put64(uint64(len(net.Edges)))
	for _, e := range net.Edges {
		put64(uint64(uint32(e[0]))<<32 | uint64(uint32(e[1])))
	}
	for _, dist := range []Distribution{Clustered, Uniform} {
		for _, p := range net.Points(Config{N: 300, Dist: dist, Seed: seed + 1}) {
			putF(p.X)
			putF(p.Y)
		}
	}
	for _, k := range Capacities(64, 40, 120, seed+3) {
		put64(uint64(k))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// goldenWorkloadDigest locks in the exact bytes seed 2008 generates.
// If this test fails, some part of generation stopped being a pure
// function of the seed (e.g. map-iteration order leaking into cluster
// neighborhoods — the bug the sorted-neighborhood fix in network.go
// removed) or the recipe changed; either way downstream experiment
// results silently shift, so the change must be deliberate and this
// constant updated with it.
const goldenWorkloadDigest = "67495bd11304a2843299a4a1c686abd591ee88f7fc0694cdbfd468acae2d579f"

func TestWorkloadGoldenDeterminism(t *testing.T) {
	first := workloadDigest(2008)
	second := workloadDigest(2008)
	if first != second {
		t.Fatalf("same seed produced different workloads:\n  %s\n  %s", first, second)
	}
	if first != goldenWorkloadDigest {
		t.Fatalf("workload digest changed:\n  got  %s\n  want %s\n(see comment on goldenWorkloadDigest)", first, goldenWorkloadDigest)
	}
	if other := workloadDigest(7); other == first {
		t.Fatal("different seeds produced identical workloads")
	}
}

func TestCapacitiesRejectsNonPositiveLo(t *testing.T) {
	for _, lo := range []int{0, -3} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Capacities(5, %d, 10, 1) should panic", lo)
				}
			}()
			Capacities(5, lo, 10, 1)
		}()
	}
	// lo == 1 stays valid.
	for _, k := range Capacities(50, 1, 3, 9) {
		if k < 1 || k > 3 {
			t.Fatalf("capacity %d out of [1,3]", k)
		}
	}
}
