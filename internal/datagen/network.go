// Package datagen generates the synthetic workloads of the paper's
// evaluation (§5.1).
//
// The paper places points on the edges of the San Francisco road map
// using the Brinkhoff generator, with 80% of the points spread among 10
// dense clusters and 20% uniform, normalized to [0,1000]². Neither the SF
// dataset nor the generator binary ships with this reproduction, so this
// package substitutes a synthetic planar road network (a jittered grid
// with random edge deletions — statistically similar to an urban grid)
// and reimplements the placement recipe: points fall on network edges,
// with the same 80%/10-cluster/20%-uniform mix and the same normalized
// space. The substitution is behaviour-preserving for the algorithms
// under study, which consume only the resulting point distribution; see
// DESIGN.md §2.
package datagen

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/geo"
	"repro/internal/rtree"
)

// Network is a planar road network: nodes with coordinates and
// undirected edges between them.
type Network struct {
	Nodes []geo.Point
	Edges [][2]int32
	adj   [][]int32 // node -> incident edge indexes
	space geo.Rect
}

// NewNetwork builds a synthetic road network in space: a gridN×gridN
// lattice of intersections, each jittered, with a fraction of edges
// randomly removed (dead ends and irregular blocks, as in real road
// maps). The same seed always produces the same network.
func NewNetwork(gridN int, space geo.Rect, seed int64) *Network {
	rng := rand.New(rand.NewSource(seed))
	n := &Network{space: space}
	w := space.Max.X - space.Min.X
	h := space.Max.Y - space.Min.Y
	stepX := w / float64(gridN-1)
	stepY := h / float64(gridN-1)
	jx := stepX * 0.3
	jy := stepY * 0.3
	for r := 0; r < gridN; r++ {
		for c := 0; c < gridN; c++ {
			pt := geo.Point{
				X: space.Min.X + float64(c)*stepX + (rng.Float64()*2-1)*jx,
				Y: space.Min.Y + float64(r)*stepY + (rng.Float64()*2-1)*jy,
			}
			pt.X = clamp(pt.X, space.Min.X, space.Max.X)
			pt.Y = clamp(pt.Y, space.Min.Y, space.Max.Y)
			n.Nodes = append(n.Nodes, pt)
		}
	}
	id := func(r, c int) int32 { return int32(r*gridN + c) }
	const keepProb = 0.85
	for r := 0; r < gridN; r++ {
		for c := 0; c < gridN; c++ {
			if c+1 < gridN && rng.Float64() < keepProb {
				n.Edges = append(n.Edges, [2]int32{id(r, c), id(r, c+1)})
			}
			if r+1 < gridN && rng.Float64() < keepProb {
				n.Edges = append(n.Edges, [2]int32{id(r, c), id(r+1, c)})
			}
		}
	}
	n.adj = make([][]int32, len(n.Nodes))
	for ei, e := range n.Edges {
		n.adj[e[0]] = append(n.adj[e[0]], int32(ei))
		n.adj[e[1]] = append(n.adj[e[1]], int32(ei))
	}
	return n
}

// Space returns the network's bounding space.
func (n *Network) Space() geo.Rect { return n.space }

// pointOnEdge returns a uniformly random point along edge ei.
func (n *Network) pointOnEdge(ei int32, rng *rand.Rand) geo.Point {
	e := n.Edges[ei]
	a, b := n.Nodes[e[0]], n.Nodes[e[1]]
	t := rng.Float64()
	return geo.Point{X: a.X + t*(b.X-a.X), Y: a.Y + t*(b.Y-a.Y)}
}

// randomEdgePoint places a point on a uniformly random edge.
func (n *Network) randomEdgePoint(rng *rand.Rand) geo.Point {
	return n.pointOnEdge(int32(rng.Intn(len(n.Edges))), rng)
}

// neighborhoodEdges returns the edges reachable within `hops` hops from
// the given node — the "dense part of the city" around a cluster seed.
func (n *Network) neighborhoodEdges(start int32, hops int) []int32 {
	seen := map[int32]bool{start: true}
	frontier := []int32{start}
	edgeSet := map[int32]bool{}
	for h := 0; h < hops; h++ {
		var next []int32
		for _, v := range frontier {
			for _, ei := range n.adj[v] {
				edgeSet[ei] = true
				e := n.Edges[ei]
				for _, u := range []int32{e[0], e[1]} {
					if !seen[u] {
						seen[u] = true
						next = append(next, u)
					}
				}
			}
		}
		frontier = next
	}
	out := make([]int32, 0, len(edgeSet))
	for ei := range edgeSet {
		out = append(out, ei)
	}
	// Map iteration order is randomized; sort so that the same seed
	// always yields the same workload.
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Distribution selects how points are spread over the network.
type Distribution int

const (
	// Clustered is the paper's default: 80% of the points in dense
	// clusters around 10 random locations, 20% uniform on the network.
	Clustered Distribution = iota
	// Uniform spreads all points uniformly over the network edges.
	Uniform
)

// String implements fmt.Stringer, using the paper's U/C labels.
func (d Distribution) String() string {
	if d == Uniform {
		return "U"
	}
	return "C"
}

// Config parameterizes point generation.
type Config struct {
	N        int          // number of points
	Dist     Distribution // placement recipe
	Clusters int          // cluster count (default 10, as in §5.1)
	Fraction float64      // fraction of points in clusters (default 0.8)
	Hops     int          // cluster radius in network hops (default 2)
	Seed     int64
}

func (c Config) withDefaults() Config {
	if c.Clusters <= 0 {
		c.Clusters = 10
	}
	if c.Fraction <= 0 {
		c.Fraction = 0.8
	}
	if c.Hops <= 0 {
		c.Hops = 2
	}
	return c
}

// Points generates point locations on the network per cfg.
func (n *Network) Points(cfg Config) []geo.Point {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	out := make([]geo.Point, 0, cfg.N)
	if cfg.Dist == Uniform {
		for i := 0; i < cfg.N; i++ {
			out = append(out, n.randomEdgePoint(rng))
		}
		return out
	}
	// Clustered: pick cluster seeds, precompute their neighborhoods.
	hoods := make([][]int32, cfg.Clusters)
	for i := range hoods {
		seed := int32(rng.Intn(len(n.Nodes)))
		hoods[i] = n.neighborhoodEdges(seed, cfg.Hops)
		if len(hoods[i]) == 0 { // isolated node (all edges deleted)
			hoods[i] = []int32{int32(rng.Intn(len(n.Edges)))}
		}
	}
	for i := 0; i < cfg.N; i++ {
		if rng.Float64() < cfg.Fraction {
			hood := hoods[rng.Intn(len(hoods))]
			out = append(out, n.pointOnEdge(hood[rng.Intn(len(hood))], rng))
		} else {
			out = append(out, n.randomEdgePoint(rng))
		}
	}
	return out
}

// Items wraps generated points as R-tree items with sequential IDs.
func Items(pts []geo.Point) []rtree.Item {
	out := make([]rtree.Item, len(pts))
	for i, p := range pts {
		out[i] = rtree.Item{ID: int64(i), Pt: p}
	}
	return out
}

// Capacities returns n provider capacities: fixed k when lo == hi, or
// uniformly random in [lo, hi] (the mixed-capacity workloads of Fig 12).
// It panics when lo <= 0: a zero-capacity provider is outside the
// problem definition (every q.k >= 1, §2.1) and used to be produced
// silently here, which could send SSPA's augmentation loop spinning on
// providers that can never absorb flow.
func Capacities(n, lo, hi int, seed int64) []int {
	if lo <= 0 {
		panic(fmt.Sprintf("datagen: Capacities lower bound must be >= 1, got lo=%d", lo))
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]int, n)
	for i := range out {
		if hi <= lo {
			out[i] = lo
		} else {
			out[i] = lo + rng.Intn(hi-lo+1)
		}
	}
	return out
}
