package storage

import (
	"bytes"
	"errors"
	"math/rand"
	"path/filepath"
	"testing"
	"time"
)

func testStores(t *testing.T) map[string]Store {
	t.Helper()
	fs, err := CreateFileStore(filepath.Join(t.TempDir(), "pages.db"), 128)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fs.Close() })
	return map[string]Store{
		"mem":  NewMemStore(128),
		"file": fs,
	}
}

func TestStoreRoundTrip(t *testing.T) {
	for name, s := range testStores(t) {
		t.Run(name, func(t *testing.T) {
			id1, err := s.Alloc()
			if err != nil {
				t.Fatal(err)
			}
			id2, err := s.Alloc()
			if err != nil {
				t.Fatal(err)
			}
			if id1 == id2 {
				t.Fatal("Alloc returned duplicate IDs")
			}
			if s.NumPages() != 2 {
				t.Fatalf("NumPages = %d want 2", s.NumPages())
			}
			want := []byte("hello pages")
			if err := s.Write(id2, want); err != nil {
				t.Fatal(err)
			}
			buf := make([]byte, s.PageSize())
			if err := s.Read(id2, buf); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(buf[:len(want)], want) {
				t.Fatalf("read back %q want %q", buf[:len(want)], want)
			}
			// Rest of the page must be zero.
			for _, b := range buf[len(want):] {
				if b != 0 {
					t.Fatal("page tail not zeroed")
				}
			}
			// A short rewrite must zero the previous content's tail.
			if err := s.Write(id2, []byte("x")); err != nil {
				t.Fatal(err)
			}
			if err := s.Read(id2, buf); err != nil {
				t.Fatal(err)
			}
			if buf[0] != 'x' || buf[1] != 0 {
				t.Fatal("rewrite did not zero the page tail")
			}
		})
	}
}

func TestStoreErrors(t *testing.T) {
	for name, s := range testStores(t) {
		t.Run(name, func(t *testing.T) {
			buf := make([]byte, s.PageSize())
			if err := s.Read(99, buf); !errors.Is(err, ErrPageOutOfRange) {
				t.Fatalf("read out of range: %v", err)
			}
			if err := s.Write(99, nil); !errors.Is(err, ErrPageOutOfRange) {
				t.Fatalf("write out of range: %v", err)
			}
			id, _ := s.Alloc()
			if err := s.Write(id, make([]byte, s.PageSize()+1)); err == nil {
				t.Fatal("oversized write must fail")
			}
		})
	}
}

func TestFileStoreReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.db")
	fs, err := CreateFileStore(path, 64)
	if err != nil {
		t.Fatal(err)
	}
	id, _ := fs.Alloc()
	if err := fs.Write(id, []byte("persisted")); err != nil {
		t.Fatal(err)
	}
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := OpenFileStore(path, 64)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.NumPages() != 1 {
		t.Fatalf("NumPages after reopen = %d want 1", re.NumPages())
	}
	buf := make([]byte, 64)
	if err := re.Read(id, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf[:9]) != "persisted" {
		t.Fatalf("lost data across reopen: %q", buf[:9])
	}
}

func TestBufferHitAndFault(t *testing.T) {
	s := NewMemStore(64)
	id, _ := s.Alloc()
	s.Write(id, []byte("v"))
	b := NewBuffer(s, 4)
	if _, err := b.Read(id); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Read(id); err != nil {
		t.Fatal(err)
	}
	st := b.Stats()
	if st.Faults != 1 || st.Hits != 1 {
		t.Fatalf("stats = %+v want 1 fault, 1 hit", st)
	}
	if st.LogicalReads() != 2 {
		t.Fatalf("LogicalReads = %d", st.LogicalReads())
	}
	if st.IOTime() != 10*time.Millisecond {
		t.Fatalf("IOTime = %v want 10ms", st.IOTime())
	}
}

func TestBufferLRUEviction(t *testing.T) {
	s := NewMemStore(64)
	var ids []PageID
	for i := 0; i < 4; i++ {
		id, _ := s.Alloc()
		ids = append(ids, id)
	}
	b := NewBuffer(s, 2)
	b.Read(ids[0]) // cache: 0
	b.Read(ids[1]) // cache: 1,0
	b.Read(ids[0]) // cache: 0,1 (0 refreshed)
	b.Read(ids[2]) // evicts 1 -> cache: 2,0
	b.ResetStats()
	b.Read(ids[0]) // hit
	if b.Stats().Hits != 1 || b.Stats().Faults != 0 {
		t.Fatalf("expected hit on refreshed page, stats %+v", b.Stats())
	}
	b.Read(ids[1]) // fault (was evicted)
	if b.Stats().Faults != 1 {
		t.Fatalf("expected fault on evicted page, stats %+v", b.Stats())
	}
}

func TestBufferWriteThrough(t *testing.T) {
	s := NewMemStore(64)
	id, _ := s.Alloc()
	b := NewBuffer(s, 2)
	if err := b.Write(id, []byte("abc")); err != nil {
		t.Fatal(err)
	}
	// The store must already have the data (write-through).
	raw := make([]byte, 64)
	s.Read(id, raw)
	if string(raw[:3]) != "abc" {
		t.Fatal("write-through did not reach the store")
	}
	// And the read must be a buffer hit.
	b.ResetStats()
	got, err := b.Read(id)
	if err != nil {
		t.Fatal(err)
	}
	if string(got[:3]) != "abc" || b.Stats().Hits != 1 {
		t.Fatalf("cached read after write: %+v", b.Stats())
	}
}

func TestBufferDropCache(t *testing.T) {
	s := NewMemStore(64)
	id, _ := s.Alloc()
	b := NewBuffer(s, 2)
	b.Read(id)
	b.DropCache()
	b.ResetStats()
	b.Read(id)
	if b.Stats().Faults != 1 {
		t.Fatalf("DropCache must force a fault, stats %+v", b.Stats())
	}
}

func TestBufferNeverExceedsCapacity(t *testing.T) {
	s := NewMemStore(32)
	for i := 0; i < 100; i++ {
		s.Alloc()
	}
	const frames = 7
	b := NewBuffer(s, frames)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 1000; i++ {
		if _, err := b.Read(PageID(rng.Intn(100))); err != nil {
			t.Fatal(err)
		}
		if b.lru.Len() > frames || len(b.byID) > frames {
			t.Fatalf("buffer grew past capacity: %d frames", b.lru.Len())
		}
	}
	st := b.Stats()
	if st.Hits+st.Faults != 1000 {
		t.Fatalf("lost reads: %+v", st)
	}
}

// Sequential scans larger than the buffer must fault every time (LRU's
// classic worst case) — this pins down the replacement policy.
func TestBufferSequentialScanWorstCase(t *testing.T) {
	s := NewMemStore(32)
	for i := 0; i < 10; i++ {
		s.Alloc()
	}
	b := NewBuffer(s, 5)
	for round := 0; round < 3; round++ {
		for i := 0; i < 10; i++ {
			b.Read(PageID(i))
		}
	}
	if st := b.Stats(); st.Hits != 0 || st.Faults != 30 {
		t.Fatalf("LRU sequential scan: %+v, want 30 faults 0 hits", st)
	}
}

func TestBufferFraction(t *testing.T) {
	s := NewMemStore(32)
	for i := 0; i < 200; i++ {
		s.Alloc()
	}
	b := NewBufferFraction(s, 0.01)
	if b.Frames() != 2 {
		t.Fatalf("1%% of 200 pages = 2 frames, got %d", b.Frames())
	}
	// Fraction too small for tiny stores still yields one frame.
	small := NewMemStore(32)
	small.Alloc()
	if got := NewBufferFraction(small, 0.01).Frames(); got != 1 {
		t.Fatalf("minimum one frame, got %d", got)
	}
}

func TestBufferReadError(t *testing.T) {
	s := NewMemStore(32)
	b := NewBuffer(s, 2)
	if _, err := b.Read(5); err == nil {
		t.Fatal("reading an unallocated page must fail")
	}
}
