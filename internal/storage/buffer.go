package storage

import (
	"container/list"
	"fmt"
	"time"
)

// Stats aggregates buffer manager activity. Faults drive the paper's
// simulated I/O time (10 ms each, §5.1).
type Stats struct {
	Hits           int // logical reads served from the buffer
	Faults         int // logical reads that required a physical read
	PhysicalReads  int // pages fetched from the store
	PhysicalWrites int // pages written to the store
}

// IOTime returns the simulated I/O time under the paper's cost model.
func (s Stats) IOTime() time.Duration {
	return time.Duration(s.Faults) * CostPerFault
}

// LogicalReads returns the total number of page requests.
func (s Stats) LogicalReads() int { return s.Hits + s.Faults }

// Buffer is an LRU buffer manager over a Store. Writes are write-through:
// the cached frame and the store are updated together, so eviction never
// needs to flush.
//
// Frames returned by Read alias the internal cache and must be treated as
// read-only; they remain valid until the page is evicted.
type Buffer struct {
	store  Store
	frames int
	lru    *list.List // front = most recently used; values are *frame
	byID   map[PageID]*list.Element
	stats  Stats
}

type frame struct {
	id   PageID
	data []byte
}

// NewBuffer wraps store with an LRU buffer of the given number of frames
// (minimum 1).
func NewBuffer(store Store, frames int) *Buffer {
	if frames < 1 {
		frames = 1
	}
	return &Buffer{
		store:  store,
		frames: frames,
		lru:    list.New(),
		byID:   make(map[PageID]*list.Element),
	}
}

// NewBufferFraction wraps store with an LRU buffer sized at the given
// fraction of the store's current page count — the paper uses 1% of the
// R-tree size.
func NewBufferFraction(store Store, fraction float64) *Buffer {
	n := int(fraction * float64(store.NumPages()))
	return NewBuffer(store, n)
}

// Store returns the underlying page store.
func (b *Buffer) Store() Store { return b.store }

// Frames returns the buffer capacity in pages.
func (b *Buffer) Frames() int { return b.frames }

// Resident returns the number of pages currently cached in the buffer.
func (b *Buffer) Resident() int { return b.lru.Len() }

// Stats returns a snapshot of the activity counters.
func (b *Buffer) Stats() Stats { return b.stats }

// ResetStats zeroes the activity counters (the cache content is kept).
func (b *Buffer) ResetStats() { b.stats = Stats{} }

// DropCache evicts every cached frame, so that subsequent reads fault.
// The experiment harness calls this between runs for cold-cache starts.
func (b *Buffer) DropCache() {
	b.lru.Init()
	b.byID = make(map[PageID]*list.Element)
}

// Read returns the content of page id, serving it from the buffer when
// cached and reading through (with a fault) otherwise.
func (b *Buffer) Read(id PageID) ([]byte, error) {
	if el, ok := b.byID[id]; ok {
		b.lru.MoveToFront(el)
		b.stats.Hits++
		return el.Value.(*frame).data, nil
	}
	b.stats.Faults++
	b.stats.PhysicalReads++
	data := make([]byte, b.store.PageSize())
	if err := b.store.Read(id, data); err != nil {
		return nil, err
	}
	b.insert(id, data)
	return data, nil
}

// Write stores data as the new content of page id (write-through).
func (b *Buffer) Write(id PageID, data []byte) error {
	if len(data) > b.store.PageSize() {
		return fmt.Errorf("storage: buffered write of %d bytes exceeds page size %d",
			len(data), b.store.PageSize())
	}
	if err := b.store.Write(id, data); err != nil {
		return err
	}
	b.stats.PhysicalWrites++
	page := make([]byte, b.store.PageSize())
	copy(page, data)
	if el, ok := b.byID[id]; ok {
		el.Value.(*frame).data = page
		b.lru.MoveToFront(el)
		return nil
	}
	b.insert(id, page)
	return nil
}

// Alloc allocates a new page in the underlying store.
func (b *Buffer) Alloc() (PageID, error) { return b.store.Alloc() }

func (b *Buffer) insert(id PageID, data []byte) {
	for b.lru.Len() >= b.frames {
		back := b.lru.Back()
		b.lru.Remove(back)
		delete(b.byID, back.Value.(*frame).id)
	}
	b.byID[id] = b.lru.PushFront(&frame{id: id, data: data})
}
