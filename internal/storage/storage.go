// Package storage provides the disk substrate of the reproduction: fixed
// size pages, in-memory and file-backed page stores, and an LRU buffer
// manager with fault accounting.
//
// The paper's experimental setup (§5.1) stores the customer set P in an
// R-tree with 1 KB pages, caches it with an LRU buffer sized at 1% of the
// tree, and charges 10 ms per page fault for I/O time. This package
// reproduces that cost model exactly: the buffer counts faults and
// Stats.IOTime converts them at CostPerFault.
package storage

import (
	"errors"
	"fmt"
	"os"
	"time"
)

// DefaultPageSize is the page size used throughout the paper's
// experiments (1 KB).
const DefaultPageSize = 1024

// CostPerFault is the I/O time charged per page fault, following the
// paper's cost model of 10 ms per fault.
const CostPerFault = 10 * time.Millisecond

// PageID identifies a page within a Store. Valid IDs start at 0.
type PageID uint32

// InvalidPage is a sentinel for "no page".
const InvalidPage = PageID(^uint32(0))

// Store is raw page storage: a growable array of fixed-size pages.
//
// Concurrency contract: Read is safe for concurrent use by multiple
// goroutines (FileStore reads with pread, MemStore only indexes its page
// table) as long as no Alloc or Write runs concurrently. Alloc and Write
// mutate the page table / file length and require external serialization
// against every other method. Components that mutate a store from
// concurrent callers — the Buffer on a shared handle, or the Log appending
// from HTTP handler goroutines — must hold their own lock around those
// calls; Log does so internally.
type Store interface {
	// PageSize returns the fixed page size in bytes.
	PageSize() int
	// Alloc allocates a zeroed page and returns its ID.
	Alloc() (PageID, error)
	// Read fills buf with the page's content. buf must be at least
	// PageSize bytes long; a shorter buffer is an error, never a silent
	// short copy.
	Read(id PageID, buf []byte) error
	// Write replaces the page's content with data (length <= PageSize;
	// the remainder of the page is zeroed).
	Write(id PageID, data []byte) error
	// NumPages returns the number of allocated pages.
	NumPages() int
	// Sync flushes buffered writes to stable storage (no-op for MemStore).
	Sync() error
	// Close releases underlying resources.
	Close() error
}

// ErrPageOutOfRange is returned when a page ID is not allocated.
var ErrPageOutOfRange = errors.New("storage: page id out of range")

// ErrShortBuffer is returned by Read when the caller's buffer is smaller
// than the store's page size.
var ErrShortBuffer = errors.New("storage: read buffer shorter than page size")

// MemStore is an in-memory Store. It is used for "memory R-tree"
// configurations such as the small-instance SSPA comparison (Fig 8), and
// as the default backing for tests.
type MemStore struct {
	pageSize int
	pages    [][]byte
}

// NewMemStore returns an empty in-memory store with the given page size.
func NewMemStore(pageSize int) *MemStore {
	return &MemStore{pageSize: pageSize}
}

// PageSize implements Store.
func (m *MemStore) PageSize() int { return m.pageSize }

// Alloc implements Store.
func (m *MemStore) Alloc() (PageID, error) {
	m.pages = append(m.pages, make([]byte, m.pageSize))
	return PageID(len(m.pages) - 1), nil
}

// Read implements Store.
func (m *MemStore) Read(id PageID, buf []byte) error {
	if int(id) >= len(m.pages) {
		return fmt.Errorf("%w: %d of %d", ErrPageOutOfRange, id, len(m.pages))
	}
	if len(buf) < m.pageSize {
		return fmt.Errorf("%w: %d < %d", ErrShortBuffer, len(buf), m.pageSize)
	}
	copy(buf, m.pages[id])
	return nil
}

// Write implements Store.
func (m *MemStore) Write(id PageID, data []byte) error {
	if int(id) >= len(m.pages) {
		return fmt.Errorf("%w: %d of %d", ErrPageOutOfRange, id, len(m.pages))
	}
	if len(data) > m.pageSize {
		return fmt.Errorf("storage: write of %d bytes exceeds page size %d", len(data), m.pageSize)
	}
	p := m.pages[id]
	n := copy(p, data)
	for i := n; i < len(p); i++ {
		p[i] = 0
	}
	return nil
}

// NumPages implements Store.
func (m *MemStore) NumPages() int { return len(m.pages) }

// Sync implements Store (no-op: memory is as stable as it gets).
func (m *MemStore) Sync() error { return nil }

// Close implements Store.
func (m *MemStore) Close() error { return nil }

// FileStore is a Store backed by a single OS file; page i occupies byte
// range [i*pageSize, (i+1)*pageSize). It makes the "disk-resident P"
// configurations literal: the R-tree pages round-trip through the file
// system.
type FileStore struct {
	pageSize int
	f        *os.File
	n        int
}

// CreateFileStore creates (or truncates) a page file at path.
func CreateFileStore(path string, pageSize int) (*FileStore, error) {
	if pageSize <= 0 {
		return nil, fmt.Errorf("storage: invalid page size %d (must be >= 1)", pageSize)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: create page file: %w", err)
	}
	return &FileStore{pageSize: pageSize, f: f}, nil
}

// OpenFileStore opens an existing page file at path. The file's size must
// be an exact multiple of pageSize: a trailing partial page means the file
// is corrupt or was written with a different page size, and silently
// truncating it would drop data, so it is rejected with an error instead.
func OpenFileStore(path string, pageSize int) (*FileStore, error) {
	if pageSize <= 0 {
		return nil, fmt.Errorf("storage: invalid page size %d (must be >= 1)", pageSize)
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open page file: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: stat page file: %w", err)
	}
	size := st.Size()
	if rem := size % int64(pageSize); rem != 0 {
		f.Close()
		return nil, fmt.Errorf(
			"storage: page file %s has size %d, not a multiple of page size %d (%d trailing bytes; corrupt file or wrong page size)",
			path, size, pageSize, rem)
	}
	return &FileStore{pageSize: pageSize, f: f, n: int(size / int64(pageSize))}, nil
}

// PageSize implements Store.
func (s *FileStore) PageSize() int { return s.pageSize }

// Alloc implements Store.
func (s *FileStore) Alloc() (PageID, error) {
	id := PageID(s.n)
	// Extend the file by writing a zero page at the new offset.
	zero := make([]byte, s.pageSize)
	if _, err := s.f.WriteAt(zero, int64(id)*int64(s.pageSize)); err != nil {
		return InvalidPage, fmt.Errorf("storage: alloc: %w", err)
	}
	s.n++
	return id, nil
}

// Read implements Store.
func (s *FileStore) Read(id PageID, buf []byte) error {
	if int(id) >= s.n {
		return fmt.Errorf("%w: %d of %d", ErrPageOutOfRange, id, s.n)
	}
	if len(buf) < s.pageSize {
		return fmt.Errorf("%w: %d < %d", ErrShortBuffer, len(buf), s.pageSize)
	}
	_, err := s.f.ReadAt(buf[:s.pageSize], int64(id)*int64(s.pageSize))
	if err != nil {
		return fmt.Errorf("storage: read page %d: %w", id, err)
	}
	return nil
}

// Write implements Store.
func (s *FileStore) Write(id PageID, data []byte) error {
	if int(id) >= s.n {
		return fmt.Errorf("%w: %d of %d", ErrPageOutOfRange, id, s.n)
	}
	if len(data) > s.pageSize {
		return fmt.Errorf("storage: write of %d bytes exceeds page size %d", len(data), s.pageSize)
	}
	page := make([]byte, s.pageSize)
	copy(page, data)
	if _, err := s.f.WriteAt(page, int64(id)*int64(s.pageSize)); err != nil {
		return fmt.Errorf("storage: write page %d: %w", id, err)
	}
	return nil
}

// NumPages implements Store.
func (s *FileStore) NumPages() int { return s.n }

// Sync implements Store by fsyncing the page file.
func (s *FileStore) Sync() error {
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("storage: sync page file: %w", err)
	}
	return nil
}

// Close implements Store.
func (s *FileStore) Close() error { return s.f.Close() }
