package storage

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func TestOpenFileStoreValidation(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "pages.db")
	if _, err := CreateFileStore(path, 0); err == nil {
		t.Fatal("CreateFileStore must reject pageSize 0")
	}
	if _, err := CreateFileStore(path, -8); err == nil {
		t.Fatal("CreateFileStore must reject negative pageSize")
	}
	fs, err := CreateFileStore(path, 64)
	if err != nil {
		t.Fatal(err)
	}
	fs.Alloc()
	fs.Close()
	if _, err := OpenFileStore(path, 0); err == nil {
		t.Fatal("OpenFileStore must reject pageSize 0")
	}
	// A trailing partial page means corruption or a wrong page size:
	// opening must fail rather than silently dropping the tail.
	if err := os.Truncate(path, 50); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFileStore(path, 64); err == nil {
		t.Fatal("OpenFileStore must reject a size that is not a multiple of pageSize")
	}
	// Same file opened with a page size that divides it is fine.
	if err := os.Truncate(path, 64); err != nil {
		t.Fatal(err)
	}
	re, err := OpenFileStore(path, 32)
	if err != nil {
		t.Fatalf("aligned open failed: %v", err)
	}
	if re.NumPages() != 2 {
		t.Fatalf("NumPages = %d want 2", re.NumPages())
	}
	re.Close()
}

func TestReadShortBuffer(t *testing.T) {
	for name, s := range testStores(t) {
		t.Run(name, func(t *testing.T) {
			id, _ := s.Alloc()
			short := make([]byte, s.PageSize()-1)
			if err := s.Read(id, short); !errors.Is(err, ErrShortBuffer) {
				t.Fatalf("short-buffer read: got %v, want ErrShortBuffer", err)
			}
			// Exactly page-sized and longer buffers are fine.
			for _, n := range []int{s.PageSize(), s.PageSize() + 7} {
				if err := s.Read(id, make([]byte, n)); err != nil {
					t.Fatalf("read with %d-byte buffer: %v", n, err)
				}
			}
		})
	}
}

// TestStoreConcurrentReads enforces the documented half of the Store
// concurrency contract: concurrent Reads (same and distinct pages) are
// safe once no Alloc/Write runs. The race detector is the assertion.
func TestStoreConcurrentReads(t *testing.T) {
	for name, s := range testStores(t) {
		t.Run(name, func(t *testing.T) {
			for i := 0; i < 8; i++ {
				id, _ := s.Alloc()
				if err := s.Write(id, []byte{byte(i)}); err != nil {
					t.Fatal(err)
				}
			}
			var wg sync.WaitGroup
			for g := 0; g < 8; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					buf := make([]byte, s.PageSize())
					for i := 0; i < 100; i++ {
						id := PageID((g + i) % 8)
						if err := s.Read(id, buf); err != nil {
							t.Error(err)
							return
						}
						if buf[0] != byte(id) {
							t.Errorf("page %d read %d", id, buf[0])
							return
						}
					}
				}(g)
			}
			wg.Wait()
		})
	}
}

// TestLogConcurrentAppend enforces the other half of the contract: the
// Log holds its own lock, so handler-goroutine appends interleave safely
// over a Store whose Alloc/Write are not goroutine-safe.
func TestLogConcurrentAppend(t *testing.T) {
	s := NewMemStore(64)
	l, err := NewLog(s)
	if err != nil {
		t.Fatal(err)
	}
	const goroutines, per = 8, 25
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := l.Append([]byte(fmt.Sprintf("g%d-%d", g, i))); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if l.Records() != goroutines*per {
		t.Fatalf("Records = %d want %d", l.Records(), goroutines*per)
	}
	// Every record must survive a rescan intact.
	seen := map[string]bool{}
	if _, err := OpenLog(s, func(p []byte) error {
		seen[string(p)] = true
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(seen) != goroutines*per {
		t.Fatalf("rescan found %d records want %d", len(seen), goroutines*per)
	}
}

func TestLogRoundTrip(t *testing.T) {
	pageSizes := []int{32, 64, DefaultPageSize}
	for _, ps := range pageSizes {
		t.Run(fmt.Sprintf("page%d", ps), func(t *testing.T) {
			s := NewMemStore(ps)
			l, err := NewLog(s)
			if err != nil {
				t.Fatal(err)
			}
			var want [][]byte
			for i := 0; i < 50; i++ {
				// Lengths from tiny to multi-page exercise frame packing
				// across page boundaries.
				rec := bytes.Repeat([]byte{byte(i + 1)}, 1+(i*17)%(3*ps))
				want = append(want, rec)
				if err := l.Append(rec); err != nil {
					t.Fatal(err)
				}
			}
			var got [][]byte
			re, err := OpenLog(s, func(p []byte) error {
				got = append(got, append([]byte(nil), p...))
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if re.Truncated() {
				t.Fatal("clean log reported truncated")
			}
			if len(got) != len(want) {
				t.Fatalf("recovered %d records want %d", len(got), len(want))
			}
			for i := range want {
				if !bytes.Equal(got[i], want[i]) {
					t.Fatalf("record %d mismatch", i)
				}
			}
			// The log stays appendable after recovery.
			if err := re.Append([]byte("after")); err != nil {
				t.Fatal(err)
			}
			if re.Records() != len(want)+1 {
				t.Fatalf("Records = %d", re.Records())
			}
		})
	}
}

func TestLogEmptyAndErrors(t *testing.T) {
	s := NewMemStore(32)
	l, err := NewLog(s)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(nil); err == nil {
		t.Fatal("empty record must be rejected (zero length terminates the log)")
	}
	if _, err := NewLog(s2withPages(t)); err == nil {
		t.Fatal("NewLog must reject a non-empty store")
	}
	n := 0
	if _, err := OpenLog(s, func([]byte) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatal("empty log replayed records")
	}
}

func s2withPages(t *testing.T) Store {
	t.Helper()
	s := NewMemStore(32)
	s.Alloc()
	return s
}

// TestLogCrashRecovery simulates the crash path end to end on a real
// file: append records, drop the handle without closing cleanly, reopen,
// and verify the contents.
func TestLogCrashRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	fs, err := CreateFileStore(path, 64)
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLog(fs)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := l.Append([]byte(fmt.Sprintf("record-%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Crash: no Close. Append already synced every record, so a reopen
	// through a fresh descriptor must see all of them.
	var got []string
	fs2, err := OpenFileStore(path, 64)
	if err != nil {
		t.Fatal(err)
	}
	re, err := OpenLog(fs2, func(p []byte) error {
		got = append(got, string(p))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if len(got) != 20 || got[0] != "record-00" || got[19] != "record-19" {
		t.Fatalf("recovered %d records: %v", len(got), got)
	}
	if re.Truncated() {
		t.Fatal("clean crash recovery reported truncated")
	}
	fs.Close()
}

// TestLogTornFinalRecord covers the torn-tail cases: recovery must
// truncate to the last valid record rather than erroring, and appending
// afterwards must produce a log that scans cleanly.
func TestLogTornFinalRecord(t *testing.T) {
	corruptions := map[string]func(t *testing.T, path string){
		// The file ends mid-record: length field promises more bytes
		// than the file holds (file truncated to a page boundary so the
		// store itself opens).
		"torn-length": func(t *testing.T, path string) {
			st, _ := os.Stat(path)
			if err := os.Truncate(path, st.Size()-64); err != nil {
				t.Fatal(err)
			}
		},
		// A payload byte flipped: CRC mismatch on the final record.
		"crc-flip": func(t *testing.T, path string) {
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			// Flip a byte near the end of the last record's payload.
			raw[len(raw)-70] ^= 0xff
			if err := os.WriteFile(path, raw, 0o644); err != nil {
				t.Fatal(err)
			}
		},
	}
	for name, corrupt := range corruptions {
		t.Run(name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "wal")
			fs, err := CreateFileStore(path, 64)
			if err != nil {
				t.Fatal(err)
			}
			l, err := NewLog(fs)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 5; i++ {
				// 100-byte records span pages, so a 64-byte truncation
				// tears the final record mid-payload.
				rec := bytes.Repeat([]byte{byte('a' + i)}, 100)
				if err := l.Append(rec); err != nil {
					t.Fatal(err)
				}
			}
			fs.Close()
			corrupt(t, path)

			fs2, err := OpenFileStore(path, 64)
			if err != nil {
				t.Fatal(err)
			}
			var got []string
			re, err := OpenLog(fs2, func(p []byte) error {
				got = append(got, string(p[:1]))
				return nil
			})
			if err != nil {
				t.Fatalf("recovery must not error on a torn tail: %v", err)
			}
			if !re.Truncated() {
				t.Fatal("recovery did not report the torn tail")
			}
			if len(got) != 4 {
				t.Fatalf("recovered %d records want 4 (prefix before the torn record)", len(got))
			}
			for i, p := range got {
				if p != string(rune('a'+i)) {
					t.Fatalf("record %d = %q", i, p)
				}
			}
			// Appending after recovery overwrites the torn region; a
			// rescan sees the valid prefix plus the new record only.
			if err := re.Append([]byte("replacement")); err != nil {
				t.Fatal(err)
			}
			re.Close()

			fs3, err := OpenFileStore(path, 64)
			if err != nil {
				t.Fatal(err)
			}
			var again []string
			re2, err := OpenLog(fs3, func(p []byte) error {
				again = append(again, string(p))
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			defer re2.Close()
			if re2.Truncated() {
				t.Fatal("rescan after repair reported truncated")
			}
			if len(again) != 5 || again[4] != "replacement" {
				t.Fatalf("rescan after repair: %v", again)
			}
		})
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.snap")
	payload := []byte(`{"live":[1,2,3],"cost":42.5}`)
	if err := WriteSnapshot(path, payload); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("snapshot round trip: %q", got)
	}
	// Overwrite is atomic: the new content fully replaces the old.
	if err := WriteSnapshot(path, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if got, _ := ReadSnapshot(path); string(got) != "v2" {
		t.Fatalf("overwrite: %q", got)
	}
}

func TestSnapshotCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.snap")
	if err := WriteSnapshot(path, []byte("payload bytes here")); err != nil {
		t.Fatal(err)
	}
	raw, _ := os.ReadFile(path)
	for name, mangle := range map[string]func([]byte) []byte{
		"flip-payload": func(b []byte) []byte { b[len(b)-1] ^= 1; return b },
		"truncate":     func(b []byte) []byte { return b[:len(b)-4] },
		"bad-magic":    func(b []byte) []byte { b[0] ^= 1; return b },
		"too-short":    func(b []byte) []byte { return b[:5] },
	} {
		t.Run(name, func(t *testing.T) {
			bad := mangle(append([]byte(nil), raw...))
			if err := os.WriteFile(path, bad, 0o644); err != nil {
				t.Fatal(err)
			}
			if _, err := ReadSnapshot(path); !errors.Is(err, ErrCorruptSnapshot) {
				t.Fatalf("got %v, want ErrCorruptSnapshot", err)
			}
		})
	}
}
