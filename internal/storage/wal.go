package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
)

// Log is an append-only record log layered on a page Store. Records are
// framed as [length u32][crc32 u32][payload] in little-endian, packed
// back to back across page boundaries; a zero length terminates the log.
//
// Recovery is scan-based: OpenLog walks the frames from page 0 and stops
// at the first frame that is torn (length runs past the end of the file)
// or corrupt (CRC mismatch), truncating the log to the last valid record
// rather than erroring. The region past the valid prefix is re-zeroed so
// a later scan cannot misparse stale bytes as a frame.
//
// A Log serializes its own access: Append, Sync, and the accessors are
// safe to call from concurrent goroutines (the HTTP handlers append from
// request goroutines), upholding the Store concurrency contract on the
// caller's behalf.
type Log struct {
	mu        sync.Mutex
	store     Store
	tail      int64 // byte offset one past the last valid record
	records   int
	truncated bool // recovery dropped a torn/corrupt tail
}

const (
	logFrameHeader = 8       // u32 length + u32 crc
	logMaxRecord   = 1 << 26 // 64 MB; a longer length field is treated as torn
)

// NewLog starts a fresh log on an empty store.
func NewLog(store Store) (*Log, error) {
	if store.NumPages() != 0 {
		return nil, fmt.Errorf("storage: NewLog on non-empty store (%d pages); use OpenLog", store.NumPages())
	}
	return &Log{store: store}, nil
}

// OpenLog recovers a log from store, invoking fn for each valid record in
// append order. Scanning stops at the end of the valid prefix; if the
// final record is torn or corrupt it is dropped (Truncated reports this)
// and appends resume after the last valid record. A non-nil error from fn
// aborts recovery and is returned verbatim.
func OpenLog(store Store, fn func(payload []byte) error) (*Log, error) {
	l := &Log{store: store}
	end := int64(store.NumPages()) * int64(store.PageSize())
	var hdr [logFrameHeader]byte
	for {
		if l.tail+logFrameHeader > end {
			// No room for another header; nonzero leftovers are a torn frame.
			l.truncated = l.zeroRange(l.tail, end) || l.truncated
			break
		}
		if err := l.readAt(l.tail, hdr[:]); err != nil {
			return nil, err
		}
		length := int64(binary.LittleEndian.Uint32(hdr[0:4]))
		if length == 0 {
			// Clean end-of-log marker. Still sweep the remainder in case a
			// torn frame left nonzero bytes beyond a zeroed header.
			l.truncated = l.zeroRange(l.tail+logFrameHeader, end) || l.truncated
			break
		}
		if length > logMaxRecord || l.tail+logFrameHeader+length > end {
			l.truncated = true
			l.zeroRange(l.tail, end)
			break
		}
		payload := make([]byte, length)
		if err := l.readAt(l.tail+logFrameHeader, payload); err != nil {
			return nil, err
		}
		if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(hdr[4:8]) {
			l.truncated = true
			l.zeroRange(l.tail, end)
			break
		}
		if fn != nil {
			if err := fn(payload); err != nil {
				return nil, err
			}
		}
		l.records++
		l.tail += logFrameHeader + length
	}
	return l, nil
}

// Append frames payload, writes it at the log tail, and syncs the store
// so the record survives a crash once Append returns.
func (l *Log) Append(payload []byte) error {
	if len(payload) == 0 {
		return errors.New("storage: empty log record")
	}
	if len(payload) > logMaxRecord {
		return fmt.Errorf("storage: log record of %d bytes exceeds max %d", len(payload), logMaxRecord)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	framed := make([]byte, logFrameHeader+len(payload))
	binary.LittleEndian.PutUint32(framed[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(framed[4:8], crc32.ChecksumIEEE(payload))
	copy(framed[logFrameHeader:], payload)
	if err := l.writeAt(l.tail, framed); err != nil {
		return err
	}
	if err := l.store.Sync(); err != nil {
		return err
	}
	l.records++
	l.tail += int64(len(framed))
	return nil
}

// Records returns the number of valid records in the log (recovered plus
// appended).
func (l *Log) Records() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.records
}

// Size returns the log's valid length in bytes.
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.tail
}

// Truncated reports whether recovery dropped a torn or corrupt tail.
func (l *Log) Truncated() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.truncated
}

// Close closes the underlying store.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.store.Close()
}

// readAt fills buf from the byte range starting at off, crossing page
// boundaries as needed.
func (l *Log) readAt(off int64, buf []byte) error {
	ps := int64(l.store.PageSize())
	page := make([]byte, ps)
	for len(buf) > 0 {
		id := PageID(off / ps)
		at := int(off % ps)
		if err := l.store.Read(id, page); err != nil {
			return err
		}
		n := copy(buf, page[at:])
		buf = buf[n:]
		off += int64(n)
	}
	return nil
}

// writeAt writes data at byte offset off, allocating pages past the
// current end and read-modify-writing partially covered pages.
func (l *Log) writeAt(off int64, data []byte) error {
	ps := int64(l.store.PageSize())
	needPages := int((off + int64(len(data)) + ps - 1) / ps)
	for l.store.NumPages() < needPages {
		if _, err := l.store.Alloc(); err != nil {
			return err
		}
	}
	page := make([]byte, ps)
	for len(data) > 0 {
		id := PageID(off / ps)
		at := int(off % ps)
		n := int(ps) - at
		if n > len(data) {
			n = len(data)
		}
		if at == 0 && n == int(ps) {
			if err := l.store.Write(id, data[:n]); err != nil {
				return err
			}
		} else {
			if err := l.store.Read(id, page); err != nil {
				return err
			}
			copy(page[at:], data[:n])
			if err := l.store.Write(id, page); err != nil {
				return err
			}
		}
		data = data[n:]
		off += int64(n)
	}
	return nil
}

// zeroRange zeroes [from, to) and reports whether any nonzero byte was
// overwritten (i.e. stale frame bytes were present).
func (l *Log) zeroRange(from, to int64) bool {
	if from >= to {
		return false
	}
	ps := int64(l.store.PageSize())
	page := make([]byte, ps)
	dirty := false
	for off := from; off < to; {
		id := PageID(off / ps)
		at := int(off % ps)
		n := int(ps) - at
		if int64(n) > to-off {
			n = int(to - off)
		}
		if err := l.store.Read(id, page); err != nil {
			return dirty
		}
		changed := false
		for i := at; i < at+n; i++ {
			if page[i] != 0 {
				page[i] = 0
				changed = true
			}
		}
		if changed {
			dirty = true
			if err := l.store.Write(id, page); err != nil {
				return dirty
			}
		}
		off += int64(n)
	}
	return dirty
}

// ErrCorruptSnapshot is returned by ReadSnapshot when the file fails its
// integrity check; callers fall back to a full WAL replay.
var ErrCorruptSnapshot = errors.New("storage: corrupt snapshot")

// snapshotMagic marks snapshot files: "CCSN" little-endian.
const snapshotMagic = 0x4e534343

// WriteSnapshot atomically writes payload to path with an integrity
// header ([magic u32][length u32][crc32 u32]): the bytes go to a temp
// file in the same directory, are fsynced, then renamed over path.
func WriteSnapshot(path string, payload []byte) error {
	hdr := make([]byte, 12)
	binary.LittleEndian.PutUint32(hdr[0:4], snapshotMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[8:12], crc32.ChecksumIEEE(payload))
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("storage: snapshot temp: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(hdr); err == nil {
		_, err = tmp.Write(payload)
	}
	if err != nil {
		tmp.Close()
		return fmt.Errorf("storage: snapshot write: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("storage: snapshot sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("storage: snapshot close: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("storage: snapshot rename: %w", err)
	}
	return nil
}

// ReadSnapshot reads a snapshot written by WriteSnapshot, verifying the
// magic, length, and checksum. A failed check returns ErrCorruptSnapshot.
func ReadSnapshot(path string) ([]byte, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(raw) < 12 || binary.LittleEndian.Uint32(raw[0:4]) != snapshotMagic {
		return nil, fmt.Errorf("%w: %s: bad header", ErrCorruptSnapshot, path)
	}
	length := binary.LittleEndian.Uint32(raw[4:8])
	payload := raw[12:]
	if int(length) != len(payload) {
		return nil, fmt.Errorf("%w: %s: length %d != payload %d", ErrCorruptSnapshot, path, length, len(payload))
	}
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(raw[8:12]) {
		return nil, fmt.Errorf("%w: %s: checksum mismatch", ErrCorruptSnapshot, path)
	}
	return payload, nil
}
