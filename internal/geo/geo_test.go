package geo

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestDist(t *testing.T) {
	tests := []struct {
		name string
		p, q Point
		want float64
	}{
		{"same point", Point{1, 1}, Point{1, 1}, 0},
		{"unit x", Point{0, 0}, Point{1, 0}, 1},
		{"unit y", Point{0, 0}, Point{0, 1}, 1},
		{"3-4-5", Point{0, 0}, Point{3, 4}, 5},
		{"negative coords", Point{-1, -1}, Point{2, 3}, 5},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.p.Dist(tc.q); !almostEqual(got, tc.want) {
				t.Errorf("Dist(%v,%v) = %v, want %v", tc.p, tc.q, got, tc.want)
			}
			if got := tc.q.Dist(tc.p); !almostEqual(got, tc.want) {
				t.Errorf("Dist not symmetric: %v", got)
			}
			if got := tc.p.Dist2(tc.q); !almostEqual(got, tc.want*tc.want) {
				t.Errorf("Dist2 = %v, want %v", got, tc.want*tc.want)
			}
		})
	}
}

func TestDistTriangleInequality(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy float64) bool {
		a := Point{mod1000(ax), mod1000(ay)}
		b := Point{mod1000(bx), mod1000(by)}
		c := Point{mod1000(cx), mod1000(cy)}
		return a.Dist(c) <= a.Dist(b)+b.Dist(c)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func mod1000(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return math.Mod(math.Abs(v), 1000)
}

func TestEmptyRect(t *testing.T) {
	e := EmptyRect()
	if !e.IsEmpty() {
		t.Fatal("EmptyRect should be empty")
	}
	r := Rect{Point{1, 2}, Point{3, 4}}
	if got := e.Union(r); got != r {
		t.Errorf("empty union: got %v want %v", got, r)
	}
	if got := r.Union(e); got != r {
		t.Errorf("union empty: got %v want %v", got, r)
	}
	if e.Area() != 0 || e.Diagonal() != 0 || e.Perimeter() != 0 {
		t.Error("empty rect should have zero measures")
	}
	if e.Contains(Point{0, 0}) {
		t.Error("empty rect contains nothing")
	}
	if e.Intersects(r) || r.Intersects(e) {
		t.Error("empty rect intersects nothing")
	}
}

func TestRectFromPoints(t *testing.T) {
	pts := []Point{{3, 1}, {0, 5}, {2, 2}}
	r := RectFromPoints(pts)
	want := Rect{Point{0, 1}, Point{3, 5}}
	if r != want {
		t.Fatalf("got %v want %v", r, want)
	}
	for _, p := range pts {
		if !r.Contains(p) {
			t.Errorf("MBR should contain %v", p)
		}
	}
}

func TestRectPredicates(t *testing.T) {
	r := Rect{Point{0, 0}, Point{10, 10}}
	tests := []struct {
		name               string
		s                  Rect
		intersects, inside bool
	}{
		{"identical", r, true, true},
		{"inside", Rect{Point{2, 2}, Point{3, 3}}, true, true},
		{"overlap", Rect{Point{5, 5}, Point{15, 15}}, true, false},
		{"touch edge", Rect{Point{10, 0}, Point{20, 10}}, true, false},
		{"touch corner", Rect{Point{10, 10}, Point{20, 20}}, true, false},
		{"disjoint", Rect{Point{11, 11}, Point{20, 20}}, false, false},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := r.Intersects(tc.s); got != tc.intersects {
				t.Errorf("Intersects = %v want %v", got, tc.intersects)
			}
			if got := r.ContainsRect(tc.s); got != tc.inside {
				t.Errorf("ContainsRect = %v want %v", got, tc.inside)
			}
		})
	}
}

func TestRectMeasures(t *testing.T) {
	r := Rect{Point{1, 2}, Point{4, 6}}
	if got := r.Area(); !almostEqual(got, 12) {
		t.Errorf("Area = %v want 12", got)
	}
	if got := r.Perimeter(); !almostEqual(got, 7) {
		t.Errorf("Perimeter = %v want 7", got)
	}
	if got := r.Diagonal(); !almostEqual(got, 5) {
		t.Errorf("Diagonal = %v want 5", got)
	}
	if got := r.Center(); got != (Point{2.5, 4}) {
		t.Errorf("Center = %v", got)
	}
}

func TestEnlargement(t *testing.T) {
	r := Rect{Point{0, 0}, Point{2, 2}}
	if got := r.Enlargement(Rect{Point{1, 1}, Point{2, 2}}); !almostEqual(got, 0) {
		t.Errorf("contained rect should not enlarge, got %v", got)
	}
	if got := r.Enlargement(Rect{Point{0, 0}, Point{4, 2}}); !almostEqual(got, 4) {
		t.Errorf("Enlargement = %v want 4", got)
	}
}

func TestMinDist(t *testing.T) {
	r := Rect{Point{0, 0}, Point{10, 10}}
	tests := []struct {
		name string
		p    Point
		want float64
	}{
		{"inside", Point{5, 5}, 0},
		{"on boundary", Point{0, 5}, 0},
		{"left", Point{-3, 5}, 3},
		{"above", Point{5, 14}, 4},
		{"corner diagonal", Point{13, 14}, 5},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := r.MinDist(tc.p); !almostEqual(got, tc.want) {
				t.Errorf("MinDist = %v want %v", got, tc.want)
			}
		})
	}
}

// MinDist must lower-bound the distance from the query to every point in
// the rectangle (admissibility of best-first NN search).
func TestMinDistAdmissible(t *testing.T) {
	f := func(px, py, ax, ay, bx, by float64) bool {
		q := Point{mod1000(px), mod1000(py)}
		a := Point{mod1000(ax), mod1000(ay)}
		b := Point{mod1000(bx), mod1000(by)}
		r := RectFromPoints([]Point{a, b})
		md := r.MinDist(q)
		return md <= q.Dist(a)+1e-9 && md <= q.Dist(b)+1e-9 &&
			md <= q.Dist(r.Center())+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMinDistRect(t *testing.T) {
	r := Rect{Point{0, 0}, Point{2, 2}}
	tests := []struct {
		name string
		s    Rect
		want float64
	}{
		{"overlap", Rect{Point{1, 1}, Point{3, 3}}, 0},
		{"touching", Rect{Point{2, 0}, Point{4, 2}}, 0},
		{"right gap", Rect{Point{5, 0}, Point{6, 2}}, 3},
		{"diag gap", Rect{Point{5, 6}, Point{7, 8}}, 5},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := r.MinDistRect(tc.s); !almostEqual(got, tc.want) {
				t.Errorf("MinDistRect = %v want %v", got, tc.want)
			}
			if got := tc.s.MinDistRect(r); !almostEqual(got, tc.want) {
				t.Errorf("MinDistRect not symmetric: %v", got)
			}
		})
	}
}

// Group-MBR mindist must lower-bound the point mindist for any member
// point — the property §3.4.2's ANN search relies on.
func TestMinDistRectAdmissibleForMembers(t *testing.T) {
	f := func(qx, qy, gx, gy, ex1, ey1, ex2, ey2 float64) bool {
		member := Point{mod1000(qx), mod1000(qy)}
		other := Point{mod1000(gx), mod1000(gy)}
		group := RectFromPoints([]Point{member, other})
		e := RectFromPoints([]Point{{mod1000(ex1), mod1000(ey1)}, {mod1000(ex2), mod1000(ey2)}})
		return group.MinDistRect(e) <= e.MinDist(member)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMaxDist(t *testing.T) {
	r := Rect{Point{0, 0}, Point{3, 4}}
	if got := r.MaxDist(Point{0, 0}); !almostEqual(got, 5) {
		t.Errorf("MaxDist corner = %v want 5", got)
	}
	if got := r.MaxDist(Point{-3, 0}); !almostEqual(got, math.Sqrt(36+16)) {
		t.Errorf("MaxDist outside = %v", got)
	}
}

func TestSplitLongest(t *testing.T) {
	r := Rect{Point{0, 0}, Point{10, 4}}
	a, b := r.SplitLongest()
	if a != (Rect{Point{0, 0}, Point{5, 4}}) || b != (Rect{Point{5, 0}, Point{10, 4}}) {
		t.Fatalf("x-split wrong: %v %v", a, b)
	}
	r = Rect{Point{0, 0}, Point{4, 10}}
	a, b = r.SplitLongest()
	if a != (Rect{Point{0, 0}, Point{4, 5}}) || b != (Rect{Point{0, 5}, Point{4, 10}}) {
		t.Fatalf("y-split wrong: %v %v", a, b)
	}
}

func TestSplitLongestHalvesDiagonalEventually(t *testing.T) {
	r := Rect{Point{0, 0}, Point{100, 100}}
	parts := []Rect{r}
	const delta = 30.0
	for i := 0; i < 20; i++ {
		var next []Rect
		done := true
		for _, p := range parts {
			if p.Diagonal() > delta {
				a, b := p.SplitLongest()
				next = append(next, a, b)
				done = false
			} else {
				next = append(next, p)
			}
		}
		parts = next
		if done {
			break
		}
	}
	var area float64
	for _, p := range parts {
		if p.Diagonal() > delta {
			t.Fatalf("part %v still exceeds delta", p)
		}
		area += p.Area()
	}
	if !almostEqual(area, r.Area()) {
		t.Fatalf("splits must cover the rectangle: area %v want %v", area, r.Area())
	}
}

func TestCentroid(t *testing.T) {
	pts := []Point{{0, 0}, {10, 0}}
	if got := Centroid(pts, []float64{1, 1}); got != (Point{5, 0}) {
		t.Errorf("uniform centroid = %v", got)
	}
	// Capacity-weighted, as SA uses: weight 3 on the right point.
	if got := Centroid(pts, []float64{1, 3}); got != (Point{7.5, 0}) {
		t.Errorf("weighted centroid = %v", got)
	}
	// Zero total weight falls back to the mean.
	if got := Centroid(pts, []float64{0, 0}); got != (Point{5, 0}) {
		t.Errorf("zero-weight centroid = %v", got)
	}
}

func TestCentroidInsideMBR(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy, w1, w2, w3 float64) bool {
		pts := []Point{
			{mod1000(ax), mod1000(ay)},
			{mod1000(bx), mod1000(by)},
			{mod1000(cx), mod1000(cy)},
		}
		w := []float64{mod1000(w1), mod1000(w2), mod1000(w3)}
		c := Centroid(pts, w)
		r := RectFromPoints(pts)
		// Tiny tolerance for floating error at the boundary.
		grow := Rect{Point{r.Min.X - 1e-9, r.Min.Y - 1e-9}, Point{r.Max.X + 1e-9, r.Max.Y + 1e-9}}
		return grow.Contains(c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAddScale(t *testing.T) {
	if got := (Point{1, 2}).Add(Point{3, 4}); got != (Point{4, 6}) {
		t.Errorf("Add = %v", got)
	}
	if got := (Point{1, 2}).Scale(2.5); got != (Point{2.5, 5}) {
		t.Errorf("Scale = %v", got)
	}
}
