package geo

// Metric is a distance function over the plane. Edge costs throughout
// the assignment stack (flowgraph edge insertion, matching extraction,
// Ψ(M) accounting) are computed through a Metric, so alternative
// distance backends — e.g. shortest-path distance on the synthetic road
// network of internal/datagen — can be plugged in without touching the
// solvers.
//
// The spatial pruning bounds (R-tree mindist, Theorems 1–2) are stated
// for the Euclidean metric; a non-Euclidean Metric must lower-bound
// those estimates (i.e. Dist(p,q) >= Euclidean dist) for the exact
// algorithms to remain exact. EuclideanMetric is always safe.
type Metric interface {
	// Name identifies the metric (e.g. "euclidean").
	Name() string
	// Dist returns the distance between p and q. It must be
	// non-negative and symmetric.
	Dist(p, q Point) float64
}

// EuclideanMetric is the straight-line L2 metric — the paper's setting
// and the default everywhere.
type EuclideanMetric struct{}

// Name implements Metric.
func (EuclideanMetric) Name() string { return "euclidean" }

// Dist implements Metric.
func (EuclideanMetric) Dist(p, q Point) float64 { return p.Dist(q) }

// Euclidean is the shared default Metric instance.
var Euclidean Metric = EuclideanMetric{}

// IsEuclidean reports whether m is the straight-line metric (or nil,
// which every consumer defaults to Euclidean). Callers use it to skip
// the metric-refinement machinery when the R-tree's native Euclidean
// ordering is already exact.
func IsEuclidean(m Metric) bool {
	if m == nil {
		return true
	}
	_, ok := m.(EuclideanMetric)
	return ok
}
