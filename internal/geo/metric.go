package geo

// Metric is a distance function over the plane. Edge costs throughout
// the assignment stack (flowgraph edge insertion, matching extraction,
// Ψ(M) accounting) are computed through a Metric, so alternative
// distance backends — e.g. shortest-path distance on the synthetic road
// network of internal/datagen — can be plugged in without touching the
// solvers.
//
// The spatial pruning bounds (R-tree mindist, Theorems 1–2) are stated
// for the Euclidean metric; a non-Euclidean Metric must lower-bound
// those estimates (i.e. Dist(p,q) >= Euclidean dist) for the exact
// algorithms to remain exact. EuclideanMetric is always safe.
type Metric interface {
	// Name identifies the metric (e.g. "euclidean").
	Name() string
	// Dist returns the distance between p and q. It must be
	// non-negative and symmetric.
	Dist(p, q Point) float64
}

// LowerBounder is an optional Metric extension: a cheap admissible
// lower bound on Dist. Every Metric already lower-bounds to Euclidean
// distance (the contract above); a LowerBounder can do better — e.g.
// the road-network metric's ALT landmark bound — and filter-and-refine
// consumers (rtree.RefinedNN) key their candidate heaps with it to
// shrink the refinement frontier. LowerBound(p,q) <= Dist(p,q) must
// hold strictly in float arithmetic, and a tighter bound must never
// cost more than a small constant factor over the Euclidean distance,
// or the "cheap filter" premise breaks.
type LowerBounder interface {
	LowerBound(p, q Point) float64
}

// LowerBoundOf returns m's LowerBound when it implements LowerBounder,
// and the Euclidean fallback otherwise (nil-safe).
func LowerBoundOf(m Metric) func(p, q Point) float64 {
	if lb, ok := m.(LowerBounder); ok {
		return lb.LowerBound
	}
	return func(p, q Point) float64 { return p.Dist(q) }
}

// EuclideanMetric is the straight-line L2 metric — the paper's setting
// and the default everywhere.
type EuclideanMetric struct{}

// Name implements Metric.
func (EuclideanMetric) Name() string { return "euclidean" }

// Dist implements Metric.
func (EuclideanMetric) Dist(p, q Point) float64 { return p.Dist(q) }

// Euclidean is the shared default Metric instance.
var Euclidean Metric = EuclideanMetric{}

// IsEuclidean reports whether m is the straight-line metric (or nil,
// which every consumer defaults to Euclidean). Callers use it to skip
// the metric-refinement machinery when the R-tree's native Euclidean
// ordering is already exact.
func IsEuclidean(m Metric) bool {
	if m == nil {
		return true
	}
	_, ok := m.(EuclideanMetric)
	return ok
}
