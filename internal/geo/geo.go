// Package geo provides the planar geometry primitives shared by every
// module of the CCA reproduction: points, axis-aligned rectangles (MBRs),
// Euclidean distances and the standard spatial-index lower bounds
// (mindist, minmaxdist).
//
// All coordinates are float64 in an arbitrary, normalized space; the
// experiments in the paper use [0,1000]².
package geo

import "math"

// Point is a point in the plane.
type Point struct {
	X, Y float64
}

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	dx := p.X - q.X
	dy := p.Y - q.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// Dist2 returns the squared Euclidean distance between p and q. It is
// cheaper than Dist and order-equivalent, which suffices for nearest
// neighbor pruning.
func (p Point) Dist2(q Point) float64 {
	dx := p.X - q.X
	dy := p.Y - q.Y
	return dx*dx + dy*dy
}

// Add returns the vector sum p+q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Scale returns p scaled by f.
func (p Point) Scale(f float64) Point { return Point{p.X * f, p.Y * f} }

// Rect is a closed axis-aligned rectangle (minimum bounding rectangle).
// A Rect is valid when Min.X <= Max.X and Min.Y <= Max.Y. The zero Rect
// is the degenerate rectangle at the origin; use EmptyRect for an
// identity element under Union.
type Rect struct {
	Min, Max Point
}

// EmptyRect returns the identity element for Union: a rectangle that
// contains nothing and leaves any rectangle unchanged when united.
func EmptyRect() Rect {
	return Rect{
		Min: Point{math.Inf(1), math.Inf(1)},
		Max: Point{math.Inf(-1), math.Inf(-1)},
	}
}

// RectFromPoint returns the degenerate rectangle covering exactly p.
func RectFromPoint(p Point) Rect { return Rect{p, p} }

// RectFromPoints returns the MBR of a non-empty point slice.
func RectFromPoints(pts []Point) Rect {
	r := EmptyRect()
	for _, p := range pts {
		r = r.ExtendPoint(p)
	}
	return r
}

// IsEmpty reports whether r contains no points (as produced by EmptyRect).
func (r Rect) IsEmpty() bool { return r.Min.X > r.Max.X || r.Min.Y > r.Max.Y }

// ExtendPoint returns the MBR of r and p.
func (r Rect) ExtendPoint(p Point) Rect {
	return r.Union(RectFromPoint(p))
}

// Union returns the MBR of r and s.
func (r Rect) Union(s Rect) Rect {
	if r.IsEmpty() {
		return s
	}
	if s.IsEmpty() {
		return r
	}
	return Rect{
		Min: Point{math.Min(r.Min.X, s.Min.X), math.Min(r.Min.Y, s.Min.Y)},
		Max: Point{math.Max(r.Max.X, s.Max.X), math.Max(r.Max.Y, s.Max.Y)},
	}
}

// Contains reports whether p lies inside r (boundary inclusive).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Min.X && p.X <= r.Max.X && p.Y >= r.Min.Y && p.Y <= r.Max.Y
}

// ContainsRect reports whether s is fully inside r (boundary inclusive).
func (r Rect) ContainsRect(s Rect) bool {
	if s.IsEmpty() {
		return true
	}
	if r.IsEmpty() {
		return false
	}
	return s.Min.X >= r.Min.X && s.Max.X <= r.Max.X &&
		s.Min.Y >= r.Min.Y && s.Max.Y <= r.Max.Y
}

// Intersects reports whether r and s share at least one point.
func (r Rect) Intersects(s Rect) bool {
	if r.IsEmpty() || s.IsEmpty() {
		return false
	}
	return r.Min.X <= s.Max.X && s.Min.X <= r.Max.X &&
		r.Min.Y <= s.Max.Y && s.Min.Y <= r.Max.Y
}

// Area returns the area of r (0 for empty or degenerate rectangles).
func (r Rect) Area() float64 {
	if r.IsEmpty() {
		return 0
	}
	return (r.Max.X - r.Min.X) * (r.Max.Y - r.Min.Y)
}

// Perimeter returns half the perimeter (the margin) of r, the quantity
// minimized by R*-style split heuristics.
func (r Rect) Perimeter() float64 {
	if r.IsEmpty() {
		return 0
	}
	return (r.Max.X - r.Min.X) + (r.Max.Y - r.Min.Y)
}

// Diagonal returns the length of r's diagonal. The approximation methods
// of the paper (SA and CA, §4) bound group MBR diagonals by δ.
func (r Rect) Diagonal() float64 {
	if r.IsEmpty() {
		return 0
	}
	return r.Min.Dist(r.Max)
}

// Center returns the geometric center of r.
func (r Rect) Center() Point {
	return Point{(r.Min.X + r.Max.X) / 2, (r.Min.Y + r.Max.Y) / 2}
}

// Enlargement returns the area increase required for r to include s.
func (r Rect) Enlargement(s Rect) float64 {
	return r.Union(s).Area() - r.Area()
}

// MinDist returns the minimum Euclidean distance between p and any point
// of r; 0 when p is inside r. This is the classical admissible lower
// bound used by best-first nearest neighbor search on R-trees.
func (r Rect) MinDist(p Point) float64 {
	return math.Sqrt(r.MinDist2(p))
}

// MinDist2 returns the squared MinDist.
func (r Rect) MinDist2(p Point) float64 {
	dx := axisDist(p.X, r.Min.X, r.Max.X)
	dy := axisDist(p.Y, r.Min.Y, r.Max.Y)
	return dx*dx + dy*dy
}

// MinDistRect returns the minimum Euclidean distance between any point of
// r and any point of s; 0 when they intersect. Used by the grouped
// incremental ANN search (§3.4.2), where the heap key is
// mindist(MBR(Gm), MBR(e)).
func (r Rect) MinDistRect(s Rect) float64 {
	dx := gapDist(r.Min.X, r.Max.X, s.Min.X, s.Max.X)
	dy := gapDist(r.Min.Y, r.Max.Y, s.Min.Y, s.Max.Y)
	return math.Sqrt(dx*dx + dy*dy)
}

// MaxDist returns the maximum Euclidean distance between p and any point
// of r — an upper bound used when reasoning about group representatives.
func (r Rect) MaxDist(p Point) float64 {
	dx := math.Max(math.Abs(p.X-r.Min.X), math.Abs(p.X-r.Max.X))
	dy := math.Max(math.Abs(p.Y-r.Min.Y), math.Abs(p.Y-r.Max.Y))
	return math.Sqrt(dx*dx + dy*dy)
}

// SplitLongest cuts r into two equal halves across its longest dimension.
// CA partitioning (§4.2) applies this repeatedly to oversized R-tree leaf
// MBRs until every part's diagonal is at most δ.
func (r Rect) SplitLongest() (Rect, Rect) {
	if r.Max.X-r.Min.X >= r.Max.Y-r.Min.Y {
		mid := (r.Min.X + r.Max.X) / 2
		return Rect{r.Min, Point{mid, r.Max.Y}},
			Rect{Point{mid, r.Min.Y}, r.Max}
	}
	mid := (r.Min.Y + r.Max.Y) / 2
	return Rect{r.Min, Point{r.Max.X, mid}},
		Rect{Point{r.Min.X, mid}, r.Max}
}

// axisDist is the 1-D distance from v to the interval [lo,hi].
func axisDist(v, lo, hi float64) float64 {
	switch {
	case v < lo:
		return lo - v
	case v > hi:
		return v - hi
	default:
		return 0
	}
}

// gapDist is the 1-D distance between intervals [alo,ahi] and [blo,bhi].
func gapDist(alo, ahi, blo, bhi float64) float64 {
	switch {
	case ahi < blo:
		return blo - ahi
	case bhi < alo:
		return alo - bhi
	default:
		return 0
	}
}

// Centroid returns the weighted centroid of points pts with weights w
// (len(w) == len(pts), all weights >= 0, at least one positive). SA (§4.1)
// places a group representative at the capacity-weighted centroid; CA
// (§4.2) uses unit weights.
func Centroid(pts []Point, w []float64) Point {
	var sx, sy, sw float64
	for i, p := range pts {
		sx += p.X * w[i]
		sy += p.Y * w[i]
		sw += w[i]
	}
	if sw == 0 {
		// Fall back to the unweighted mean to stay total.
		for _, p := range pts {
			sx += p.X
			sy += p.Y
		}
		n := float64(len(pts))
		return Point{sx / n, sy / n}
	}
	return Point{sx / sw, sy / sw}
}
