package netmetric

// nheap is a flat, slice-backed binary min-heap keyed by float64. The
// shortest-path scratch uses it instead of pqueue.Heap because Push
// there allocates one node per call; nheap appends into a reusable
// backing array, so a pooled scratch reaches zero steady-state
// allocations per query (asserted by the AllocsPerRun budget tests).
// Decrease-key is lazy: callers push fresh entries and skip stale pops.
type nheap struct {
	a []nhEntry
}

type nhEntry struct {
	key float64
	v   int32
}

func (h *nheap) clear()       { h.a = h.a[:0] }
func (h *nheap) empty() bool  { return len(h.a) == 0 }
func (h *nheap) top() nhEntry { return h.a[0] }

func (h *nheap) push(key float64, v int32) {
	h.a = append(h.a, nhEntry{key: key, v: v})
	i := len(h.a) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h.a[p].key <= h.a[i].key {
			break
		}
		h.a[p], h.a[i] = h.a[i], h.a[p]
		i = p
	}
}

func (h *nheap) pop() nhEntry {
	top := h.a[0]
	n := len(h.a) - 1
	h.a[0] = h.a[n]
	h.a = h.a[:n]
	i := 0
	for {
		c := 2*i + 1
		if c >= n {
			break
		}
		if r := c + 1; r < n && h.a[r].key < h.a[c].key {
			c = r
		}
		if h.a[i].key <= h.a[c].key {
			break
		}
		h.a[i], h.a[c] = h.a[c], h.a[i]
		i = c
	}
	return top
}
