package netmetric

import (
	"math"
	"sync"

	"repro/internal/geo"
)

// DefaultLandmarks is the landmark count automatic mode selects for
// mid-sized networks. Eight farthest-point landmarks are the classic
// ALT sweet spot for planar road networks: enough directional coverage
// that the triangle lower bound is tight along most query axes, cheap
// enough that preprocessing stays a handful of single-source sweeps.
const DefaultLandmarks = 8

// AutoLandmarks returns the landmark count automatic mode (the
// default, or SetLandmarks with a negative count) selects for a
// network of n nodes. Small networks need little directional coverage
// — each sweep is cheap but so are the queries it prunes — while
// large ones amortize more landmarks over far more expensive searches.
// The middle band keeps DefaultLandmarks, so the benchmarked 128-grid
// workloads are unchanged by auto-tuning.
func AutoLandmarks(n int) int {
	switch {
	case n < 4096:
		return 4
	case n < 65536:
		return DefaultLandmarks
	default:
		return 16
	}
}

// landmarkState holds the ALT preprocessing output: the chosen landmark
// nodes and, for every network node, its shortest-path distance to each
// landmark. Vectors are stored node-major (byNode[v*k+l] = d(L_l, v)),
// so one lower-bound evaluation scans two contiguous k-strides.
// Immutable after construction; shared without locks.
type landmarkState struct {
	k      int
	nodes  []int32
	byNode []float64
}

// lbNodes returns the ALT lower bound on the shortest-path distance
// between nodes a and b: max over landmarks L of |d(L,a) − d(L,b)|.
// Admissible and consistent by the triangle inequality on node
// distances (FuzzLandmarkBound pins both properties).
func (ls *landmarkState) lbNodes(a, b int32) float64 {
	if a == b {
		return 0
	}
	k := ls.k
	da := ls.byNode[int(a)*k : int(a)*k+k]
	db := ls.byNode[int(b)*k : int(b)*k+k]
	lb := 0.0
	for i, x := range da {
		d := x - db[i]
		if d < 0 {
			d = -d
		}
		if d > lb {
			lb = d
		}
	}
	return lb
}

// SetLandmarks configures the ALT landmark count: 0 disables landmark
// pruning entirely (plain forward Dijkstra), positive counts override,
// negative values restore automatic selection (AutoLandmarks by node
// count, the default). Like SetCacheCapacity it must run during setup,
// before the metric is shared across goroutines: it drops any built
// landmark state without synchronization. Counts larger than the node
// count are clamped at build time.
func (m *NetworkMetric) SetLandmarks(k int) {
	if k < 0 {
		k = -1
	}
	m.lmCount = k
	m.lmOnce = new(sync.Once)
	m.lm = nil
}

// Landmarks returns the effective landmark count (0 when disabled),
// with automatic mode resolved against the network size.
func (m *NetworkMetric) Landmarks() int {
	if m.lmCount < 0 {
		return AutoLandmarks(len(m.nodes))
	}
	return m.lmCount
}

// landmarks returns the lazily built landmark state, or nil when
// disabled. The build runs at most once per configuration; concurrent
// first callers block on the same sync.Once, so a metric shared across
// engine workers pays the preprocessing exactly once.
func (m *NetworkMetric) landmarks() *landmarkState {
	k := m.Landmarks()
	if k <= 0 {
		return nil
	}
	m.lmOnce.Do(func() { m.lm = m.buildLandmarks(k) })
	return m.lm
}

// buildLandmarks runs farthest-point landmark selection: the first
// landmark is the node farthest from node 0, and each subsequent one
// maximizes the distance to the already-chosen set. Every selection's
// single-source sweep doubles as that landmark's distance vector, so
// preprocessing is k+1 full Dijkstras total. The graph is connected
// (virtual bridges), so every stored distance is finite.
func (m *NetworkMetric) buildLandmarks(k int) *landmarkState {
	n := len(m.nodes)
	if k > n {
		k = n
	}
	ls := &landmarkState{
		k:      k,
		nodes:  make([]int32, 0, k),
		byNode: make([]float64, k*n),
	}
	var h nheap
	dist := make([]float64, n)
	minDist := make([]float64, n)
	for i := range minDist {
		minDist[i] = math.Inf(1)
	}
	m.sssp(0, dist, &h)
	next := argmaxIndex(dist)
	for li := 0; li < k; li++ {
		ls.nodes = append(ls.nodes, next)
		m.sssp(next, dist, &h)
		for v := 0; v < n; v++ {
			ls.byNode[v*k+li] = dist[v]
			if dist[v] < minDist[v] {
				minDist[v] = dist[v]
			}
		}
		next = argmaxIndex(minDist)
	}
	return ls
}

// sssp fills dist with single-source shortest-path distances from src
// over the full routing graph (real edges plus bridges).
func (m *NetworkMetric) sssp(src int32, dist []float64, h *nheap) {
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	h.clear()
	dist[src] = 0
	h.push(0, src)
	for !h.empty() {
		e := h.pop()
		if e.key > dist[e.v] {
			continue // stale entry from lazy decrease-key
		}
		for _, a := range m.adj[e.v] {
			if nd := e.key + a.length; nd < dist[a.to] {
				dist[a.to] = nd
				h.push(nd, a.to)
			}
		}
	}
}

// argmaxIndex returns the index of the largest finite value,
// tie-breaking on the lowest index for determinism.
func argmaxIndex(vals []float64) int32 {
	best, bi := math.Inf(-1), int32(0)
	for i, v := range vals {
		if v > best && !math.IsInf(v, 1) {
			best, bi = v, int32(i)
		}
	}
	return bi
}

// lbSlack is subtracted from the composed landmark bound before it is
// returned. The ALT bound is admissible in real arithmetic, but float
// rounding can push it a few ulps *above* the true Dist; a consumer
// ordering candidates by lower bound (rtree.RefinedNN) would then see
// two near-tied candidates in an order that depends on which backend
// produced the bound, breaking the byte-identity conformance suite.
// Shaving a margin far above any rounding error and far below the
// workloads' distance scale restores a strict underestimate at no
// measurable pruning cost.
const lbSlack = 1e-6

// LowerBound implements geo.LowerBounder: a cheap admissible lower
// bound on Dist(p, q). With landmarks enabled it composes the snap
// offsets with the ALT node bound over the same four endpoint
// combinations Dist minimizes over (each true path term only shrinks
// when its node distance is replaced by lbNodes, so the minimum is a
// valid bound); the result is then floored at the Euclidean distance,
// which the network metric always dominates. With landmarks disabled
// it is exactly the Euclidean distance. rtree.RefinedNN keys its
// refinement heap with this, so exact NN refinement under the network
// metric prunes with the tight ALT bound instead of Euclidean.
func (m *NetworkMetric) LowerBound(p, q geo.Point) float64 {
	euclid := p.Dist(q)
	lm := m.landmarks()
	if lm == nil {
		return euclid
	}
	sp := m.snap(p)
	sq := m.snap(q)
	ep, eq := m.edges[sp.edge], m.edges[sq.edge]
	lp, lq := m.lengths[sp.edge], m.lengths[sq.edge]
	best := math.Inf(1)
	if sp.edge == sq.edge {
		best = math.Abs(sp.t-sq.t) * lp
	}
	pw := [2]float64{sp.t * lp, (1 - sp.t) * lp}
	qw := [2]float64{sq.t * lq, (1 - sq.t) * lq}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if d := pw[i] + lm.lbNodes(ep[i], eq[j]) + qw[j]; d < best {
				best = d
			}
		}
	}
	if lb := sp.offset + best + sq.offset - lbSlack; lb > euclid {
		return lb
	}
	return euclid
}
