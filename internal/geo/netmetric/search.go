package netmetric

import (
	"math"
	"sync"
)

// Canonical float semantics. Every shortest-path backend in this package
// — the plain forward Dijkstra, the ALT-pruned A*, and the bulk
// many-to-many sweeps — returns the *same* float64 for a node pair:
// the minimum over all src→dst paths of the left-associated float sum of
// edge lengths (the fixed point of forward relaxation from src). That
// value is well defined in float arithmetic because float addition of a
// non-negative length is monotone (x+l >= x), so Dijkstra's settle order
// cannot change it. Pinning one canonical semantics is what lets the
// conformance suite assert byte-identical solves whether distances come
// from plain Dijkstra, ALT, or a precomputed table — the three would
// otherwise differ in the last ulps (float addition is not associative,
// so e.g. a bidirectional search, which adds a forward and a backward
// partial, rounds differently). The pre-ALT bidirectional search is kept
// in bidijkstra.go as the benchmark baseline only.

// searchScratch is the pooled label state of one single-sided search:
// distance labels epoch-stamped so reuse pays no O(V) re-initialization,
// plus a flat nheap (no per-push allocation). A warm point query
// allocates nothing (asserted by TestAllocsPointQuery).
type searchScratch struct {
	epoch  int64
	dist   []float64
	seenAt []int64
	heap   nheap
}

var searchPool = sync.Pool{New: func() any { return &searchScratch{} }}

func (s *searchScratch) reset(n int) {
	s.epoch++
	for len(s.dist) < n {
		s.dist = append(s.dist, 0)
		s.seenAt = append(s.seenAt, 0)
	}
	s.heap.clear()
}

func (s *searchScratch) label(v int32) float64 {
	if s.seenAt[v] == s.epoch {
		return s.dist[v]
	}
	return math.Inf(1)
}

func (s *searchScratch) improve(v int32, d float64) {
	s.dist[v] = d
	s.seenAt[v] = s.epoch
}

// forwardDijkstra returns the canonical src→dst distance with plain
// forward Dijkstra. The early exit at dst's settle is exact, not
// heuristic: every later relaxation starts from a label >= dist[dst]
// and adds a non-negative length, so no improvement can follow.
func (m *NetworkMetric) forwardDijkstra(src, dst int32) float64 {
	s := searchPool.Get().(*searchScratch)
	defer searchPool.Put(s)
	s.reset(len(m.nodes))

	s.improve(src, 0)
	s.heap.push(0, src)
	for !s.heap.empty() {
		e := s.heap.pop()
		if e.key > s.dist[e.v] {
			continue // stale entry from lazy decrease-key
		}
		if e.v == dst {
			return e.key
		}
		for _, a := range m.adj[e.v] {
			if nd := e.key + a.length; nd < s.label(a.to) {
				s.improve(a.to, nd)
				s.heap.push(nd, a.to)
			}
		}
	}
	return math.Inf(1) // unreachable: bridges keep the graph connected
}

// altSlack is the termination margin of the ALT search. The landmark
// potential is consistent in real arithmetic but can violate consistency
// by a few ulps in float64, so an expanded node's label may still
// improve later; stopping only once the frontier minimum exceeds the
// best dst label by this margin (vastly larger than any accumulated
// rounding error at the workloads' coordinate scale, vanishingly small
// against real distances) guarantees the returned label is the same
// canonical fixed point forwardDijkstra computes — byte-identical, as
// TestALTMatchesPlainDijkstra asserts.
const altSlack = 1e-6

// astar returns the canonical src→dst distance with an ALT-pruned A*:
// heap keys carry the goal-directed potential π(v) = lb(v,dst), turning
// the search into Dijkstra over reduced weights aimed at dst. Distance
// labels always hold true (unshifted) distances; only heap order moves.
// Nodes are never marked settled — a label improved after its first
// expansion (possible only through ulp-level potential inconsistency)
// is simply re-expanded, and the altSlack termination bound makes the
// result exact.
func (m *NetworkMetric) astar(src, dst int32, lm *landmarkState) float64 {
	s := searchPool.Get().(*searchScratch)
	defer searchPool.Put(s)
	s.reset(len(m.nodes))

	s.improve(src, 0)
	s.heap.push(lm.lbNodes(src, dst), src)
	best := math.Inf(1) // dist[dst]; π(dst) = 0, so its key is its label
	for !s.heap.empty() {
		e := s.heap.pop()
		if e.key >= best+altSlack {
			break // no remaining entry can improve dst's label
		}
		dv := s.dist[e.v]
		if e.key > dv+lm.lbNodes(e.v, dst) {
			continue // stale entry from lazy decrease-key
		}
		for _, a := range m.adj[e.v] {
			nd := dv + a.length
			if nd < s.label(a.to) {
				s.improve(a.to, nd)
				if a.to == dst {
					best = nd
				}
				s.heap.push(nd+lm.lbNodes(a.to, dst), a.to)
			}
		}
	}
	return best
}
