package netmetric

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/datagen"
	"repro/internal/geo"
)

var space = geo.Rect{Min: geo.Point{X: 0, Y: 0}, Max: geo.Point{X: 1000, Y: 1000}}

// square builds the unit-square network 0-1-2-3 with side length 10:
//
//	2 (0,10) — 3 (10,10)
//	|              |
//	0 (0,0)  — 1 (10,0)
func square(t *testing.T) *NetworkMetric {
	t.Helper()
	m, err := New(
		[]geo.Point{{X: 0, Y: 0}, {X: 10, Y: 0}, {X: 0, Y: 10}, {X: 10, Y: 10}},
		[][2]int32{{0, 1}, {0, 2}, {1, 3}, {2, 3}},
	)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return m
}

func TestNodeDistSquare(t *testing.T) {
	m := square(t)
	cases := []struct {
		a, b int32
		want float64
	}{
		{0, 0, 0}, {0, 1, 10}, {0, 3, 20}, {2, 1, 20}, {3, 0, 20},
	}
	for _, c := range cases {
		if got := m.NodeDist(c.a, c.b); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("NodeDist(%d,%d) = %g want %g", c.a, c.b, got, c.want)
		}
	}
}

func TestDistOnSharedEdge(t *testing.T) {
	m := square(t)
	p := geo.Point{X: 2, Y: 0}
	q := geo.Point{X: 7, Y: 0}
	if got := m.Dist(p, q); math.Abs(got-5) > 1e-9 {
		t.Errorf("same-edge Dist = %g want 5", got)
	}
	if got := m.Dist(p, p); got != 0 {
		t.Errorf("Dist(p,p) = %g want 0 for an on-network point", got)
	}
}

func TestDistAcrossEdges(t *testing.T) {
	m := square(t)
	p := geo.Point{X: 2, Y: 0} // on edge 0-1
	q := geo.Point{X: 0, Y: 8} // on edge 0-2
	// Travel: 2 back to node 0, then 8 up.
	if got := m.Dist(p, q); math.Abs(got-10) > 1e-9 {
		t.Errorf("cross-edge Dist = %g want 10", got)
	}
}

func TestSnapOffset(t *testing.T) {
	m := square(t)
	p := geo.Point{X: 5, Y: 3} // interior: nearest edge is 0-1, offset 3
	pos, off := m.Snap(p)
	if math.Abs(off-3) > 1e-9 || math.Abs(pos.X-5) > 1e-9 || math.Abs(pos.Y) > 1e-9 {
		t.Errorf("Snap(%v) = %v, %g; want (5,0), 3", p, pos, off)
	}
	q := geo.Point{X: 5, Y: 7} // nearest edge is 2-3
	// p and q snap to opposite sides: travel 5+10+5, plus offsets 3+3.
	if got, want := m.Dist(p, q), 3.0+5+10+5+3; math.Abs(got-want) > 1e-9 {
		t.Errorf("Dist(%v,%v) = %g want %g", p, q, got, want)
	}
}

func TestLowerBoundsEuclidean(t *testing.T) {
	net := datagen.NewNetwork(16, space, 7)
	m := FromNetwork(net)
	rng := rand.New(rand.NewSource(11))
	pts := net.Points(datagen.Config{N: 200, Dist: datagen.Clustered, Seed: 3})
	for i := 0; i < 500; i++ {
		p := pts[rng.Intn(len(pts))]
		q := pts[rng.Intn(len(pts))]
		nd := m.Dist(p, q)
		ed := p.Dist(q)
		if nd < ed-1e-9 {
			t.Fatalf("Dist(%v,%v) = %g < Euclidean %g", p, q, nd, ed)
		}
		if back := m.Dist(q, p); math.Abs(back-nd) > 1e-9 {
			t.Fatalf("asymmetric: %g vs %g", nd, back)
		}
	}
}

func TestBridgingConnectsComponents(t *testing.T) {
	// Two disjoint segments; the bridge must make them reachable.
	m, err := New(
		[]geo.Point{{X: 0, Y: 0}, {X: 10, Y: 0}, {X: 30, Y: 0}, {X: 40, Y: 0}},
		[][2]int32{{0, 1}, {2, 3}},
	)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if m.Bridges() != 1 {
		t.Fatalf("Bridges() = %d want 1", m.Bridges())
	}
	// Bridge links the closest pair (nodes 1 and 2, gap 20).
	if got := m.NodeDist(0, 3); math.Abs(got-40) > 1e-9 {
		t.Errorf("NodeDist(0,3) = %g want 40", got)
	}
	// Snapping never targets the virtual bridge edge.
	pos, _ := m.Snap(geo.Point{X: 20, Y: 0})
	onBridge := pos.X > 10+1e-9 && pos.X < 30-1e-9
	if onBridge {
		t.Errorf("snap landed on the virtual bridge at %v", pos)
	}
}

func TestDatagenNetworkConnected(t *testing.T) {
	// Every pair of nodes must be reachable after bridging, for several
	// seeds and grid sizes.
	for _, seed := range []int64{1, 2, 2008} {
		net := datagen.NewNetwork(12, space, seed)
		m := FromNetwork(net)
		for i := 0; i < m.NumNodes(); i += 17 {
			if d := m.NodeDist(0, int32(i)); math.IsInf(d, 1) {
				t.Fatalf("seed %d: node %d unreachable from 0", seed, i)
			}
		}
	}
}

func TestNodeDistMatchesReferenceDijkstra(t *testing.T) {
	net := datagen.NewNetwork(10, space, 5)
	m := FromNetwork(net)
	// Single-source reference Dijkstra (plain, one-directional).
	ref := func(src int32) []float64 {
		dist := make([]float64, m.NumNodes())
		for i := range dist {
			dist[i] = math.Inf(1)
		}
		dist[src] = 0
		done := make([]bool, m.NumNodes())
		for {
			u, best := int32(-1), math.Inf(1)
			for i, d := range dist {
				if !done[i] && d < best {
					u, best = int32(i), d
				}
			}
			if u < 0 {
				return dist
			}
			done[u] = true
			for _, a := range m.adj[u] {
				if nd := best + a.length; nd < dist[a.to] {
					dist[a.to] = nd
				}
			}
		}
	}
	for _, src := range []int32{0, 13, 57} {
		want := ref(src)
		for dst := 0; dst < m.NumNodes(); dst += 7 {
			if got := m.NodeDist(src, int32(dst)); math.Abs(got-want[dst]) > 1e-9 {
				t.Fatalf("NodeDist(%d,%d) = %g want %g", src, dst, got, want[dst])
			}
		}
	}
}

func TestCacheStats(t *testing.T) {
	net := datagen.NewNetwork(8, space, 3)
	m := FromNetwork(net)
	p := geo.Point{X: 100, Y: 100}
	q := geo.Point{X: 800, Y: 700}
	m.Dist(p, q)
	first := m.Stats()
	if first.NodeMisses == 0 || first.SnapMisses != 2 || first.PairMisses != 1 {
		t.Fatalf("expected cold misses, got %+v", first)
	}
	// A finished point pair is memoized whole: the repeat answers from
	// the pair cache without touching the snap or node layers at all.
	m.Dist(p, q)
	second := m.Stats()
	if second.PairHits != first.PairHits+1 {
		t.Errorf("repeat query missed the pair cache: %+v -> %+v", first, second)
	}
	if second.NodeMisses != first.NodeMisses || second.SnapMisses != first.SnapMisses ||
		second.SnapHits != first.SnapHits || second.NodeHits != first.NodeHits {
		t.Errorf("repeat query fell through the pair cache: %+v -> %+v", first, second)
	}
	// New point pairs resolving to already-searched node pairs are
	// served by the inner layers: the node-pair entries written by the
	// first query satisfy a direct node query without a new search.
	m.NodeDist(m.SnapNode(p), m.SnapNode(q))
	third := m.Stats()
	if third.NodeMisses != second.NodeMisses || third.NodeHits != second.NodeHits+1 {
		t.Errorf("known node pair re-searched: %+v -> %+v", second, third)
	}
	if third.SnapHits != second.SnapHits+2 {
		t.Errorf("known snaps recomputed: %+v -> %+v", second, third)
	}
	if r := third.NodeHitRate(); r <= 0 || r >= 1 {
		t.Errorf("NodeHitRate = %g, want in (0,1)", r)
	}
}

// TestCacheEviction: with deliberately tiny caches the metric keeps
// answering correctly — recomputing displaced entries — and the stats
// expose the eviction pressure a long-lived server would tune on. The
// caches are sharded, so a tiny capacity rounds up to one entry per
// shard; sweeping more distinct keys than shards makes eviction a
// pigeonhole certainty, not a hash accident.
func TestCacheEviction(t *testing.T) {
	net := datagen.NewNetwork(8, space, 3)
	m := FromNetwork(net)
	m.SetCacheCapacity(4, 4)
	keys := m.snapCache.Cap() + 1 // > total bound ⇒ some shard overflows

	pts := make([]geo.Point, keys)
	for i := range pts {
		pts[i] = geo.Point{X: float64(7 + 90*i%987), Y: float64((911*i + 13) % 997)}
	}
	want := make([]float64, len(pts))
	for i, p := range pts {
		want[i] = m.Dist(p, pts[0])
	}
	// A second sweep over a working set exceeding the cache bound must
	// evict on the snap cache, yet every distance stays identical.
	for i, p := range pts {
		if got := m.Dist(p, pts[0]); got != want[i] {
			t.Fatalf("Dist(%v) changed after eviction: %g vs %g", p, got, want[i])
		}
	}
	// Node-pair keys: more distinct pairs than the node cache holds.
	for b := int32(1); int(b) < m.NumNodes() && int(b) <= m.nodeCache.Cap()+1; b++ {
		m.NodeDist(0, b)
	}
	st := m.Stats()
	if st.SnapEvictions == 0 || st.NodeEvictions == 0 {
		t.Fatalf("expected evictions on tiny caches, got %+v", st)
	}

	// Resetting to defaults clears the counters and the pressure.
	m.SetCacheCapacity(0, 0)
	m.Dist(pts[1], pts[2])
	if st := m.Stats(); st.SnapEvictions != 0 || st.NodeEvictions != 0 {
		t.Fatalf("stats survived a cache rebuild: %+v", st)
	}
}

// TestConcurrentDist hammers one shared metric from many goroutines;
// run with -race to verify the cache guards (the engine batch test in
// the root package exercises the same path end-to-end).
func TestConcurrentDist(t *testing.T) {
	net := datagen.NewNetwork(10, space, 9)
	m := FromNetwork(net)
	pts := net.Points(datagen.Config{N: 64, Dist: datagen.Uniform, Seed: 4})
	// Sequential reference answers.
	want := make([]float64, 0, len(pts)/2)
	refM := FromNetwork(net)
	for i := 0; i+1 < len(pts); i += 2 {
		want = append(want, refM.Dist(pts[i], pts[i+1]))
	}
	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for rep := 0; rep < 3; rep++ {
				for i := 0; i+1 < len(pts); i += 2 {
					if got := m.Dist(pts[i], pts[i+1]); math.Abs(got-want[i/2]) > 1e-9 {
						errs <- "concurrent Dist mismatch"
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

func TestNewRejectsBadInput(t *testing.T) {
	if _, err := New(nil, nil); err == nil {
		t.Error("New(nil, nil) should fail")
	}
	if _, err := New([]geo.Point{{X: 0, Y: 0}}, [][2]int32{{0, 5}}); err == nil {
		t.Error("out-of-range edge should fail")
	}
}

func TestMetricName(t *testing.T) {
	m := square(t)
	var iface geo.Metric = m
	if iface.Name() != "network" {
		t.Errorf("Name() = %q want %q", iface.Name(), "network")
	}
}
