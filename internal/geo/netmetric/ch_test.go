package netmetric

import (
	"sync"
	"testing"

	"repro/internal/datagen"
)

// TestCHMatchesPlainDijkstra pins the canonical-float contract for the
// hierarchy backend: chDist must return the *same* float64 as the
// plain forward Dijkstra for every oriented node pair — not merely
// close. The conformance suite's byte-identical solves rest on this.
func TestCHMatchesPlainDijkstra(t *testing.T) {
	m := FromNetwork(datagen.NewNetwork(16, space, 2008))
	m.SetCH(1)
	ch := m.hierarchy()
	if ch == nil {
		t.Fatal("forced-on hierarchy did not build")
	}
	t.Logf("hierarchy: %d up arcs, %d shortcuts", len(ch.upTo), ch.shortcuts)
	for _, pr := range testPairs(m, 2000, 1) {
		got := m.chDist(ch, pr[0], pr[1])
		want := m.forwardDijkstra(pr[0], pr[1])
		if got != want {
			t.Fatalf("chDist(%d,%d) = %v, forwardDijkstra = %v (must be byte-identical)",
				pr[0], pr[1], got, want)
		}
	}
	q, f := m.CHStats()
	t.Logf("ch stats: %d queries, %d fallbacks", q, f)
	if q == 0 {
		t.Fatal("no hierarchy queries counted")
	}
	// Jittered networks must answer almost everything on the fast
	// path; a high fallback rate means the ambiguity detection is
	// misfiring and CH is quietly degrading to plain Dijkstra.
	if f*10 > q {
		t.Fatalf("fallback rate too high: %d of %d", f, q)
	}
}

// TestCHFallbackStaysExact forces the hierarchy onto a tie-heavy graph
// — the unit square, where two opposite corners are joined by two
// exactly equal paths — and checks the ambiguity fallback keeps every
// answer byte-identical instead of picking an arbitrary winner.
func TestCHFallbackStaysExact(t *testing.T) {
	m := square(t)
	m.SetCH(1)
	ch := m.hierarchy()
	if ch == nil {
		t.Fatal("forced-on hierarchy did not build")
	}
	for a := int32(0); a < 4; a++ {
		for b := int32(0); b < 4; b++ {
			got := m.chDist(ch, a, b)
			want := m.forwardDijkstra(a, b)
			if got != want {
				t.Fatalf("chDist(%d,%d) = %v, forwardDijkstra = %v", a, b, got, want)
			}
		}
	}
	if _, f := m.CHStats(); f == 0 {
		t.Fatal("tied diagonal paths should have triggered the fallback")
	}
}

// TestCHSweepMatchesSSSP pins the bulk side of the contract: the
// PHAST-ordered canonical replay must fill the identical vector the
// plain Dijkstra sweep fills, byte for byte, for every node.
func TestCHSweepMatchesSSSP(t *testing.T) {
	m := FromNetwork(datagen.NewNetwork(16, space, 2008))
	m.SetCH(1)
	ch := m.hierarchy()
	if ch == nil {
		t.Fatal("forced-on hierarchy did not build")
	}
	if ch.minEdge <= chSweepMinEdge {
		t.Fatalf("jittered grid should clear the sweep gate (minEdge %g)", ch.minEdge)
	}
	n := m.NumNodes()
	want := make([]float64, n)
	got := make([]float64, n)
	var h nheap
	var order []int32
	for _, src := range []int32{0, 7, int32(n / 2), int32(n - 1)} {
		m.sssp(src, want, &h)
		order = m.chSSSP(ch, src, got, &h, order)
		for v := 0; v < n; v++ {
			if got[v] != want[v] {
				t.Fatalf("src %d: chSSSP[%d] = %v, sssp = %v (must be byte-identical)",
					src, v, got[v], want[v])
			}
		}
	}
}

// TestCHModes pins the knob semantics: automatic mode keys on
// DefaultCHMinNodes, and SetCH forces either way.
func TestCHModes(t *testing.T) {
	small := FromNetwork(datagen.NewNetwork(8, space, 2008))
	if small.CH() {
		t.Fatalf("auto mode enabled CH on %d nodes (< %d)", small.NumNodes(), DefaultCHMinNodes)
	}
	if small.hierarchy() != nil {
		t.Fatal("disabled hierarchy still built")
	}
	small.SetCH(1)
	if !small.CH() || small.hierarchy() == nil {
		t.Fatal("SetCH(1) did not force the hierarchy on")
	}
	small.SetCH(0)
	if small.CH() || small.hierarchy() != nil {
		t.Fatal("SetCH(0) did not disable the hierarchy")
	}
	big := FromNetwork(datagen.NewNetwork(64, space, 2008))
	if !big.CH() {
		t.Fatalf("auto mode left CH off on %d nodes (>= %d)", big.NumNodes(), DefaultCHMinNodes)
	}
}

// TestAllocsCHPointQuery pins the zero-allocation budget of warm
// hierarchy queries, like TestAllocsPointQuery does for the other
// search backends.
func TestAllocsCHPointQuery(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool reuse is defeated under -race")
	}
	m := FromNetwork(datagen.NewNetwork(16, space, 2008))
	m.SetCH(1)
	ch := m.hierarchy()
	pairs := testPairs(m, 64, 7)
	run := func() {
		for _, pr := range pairs {
			sinkDist = m.chDist(ch, pr[0], pr[1])
		}
	}
	run() // warm the scratch pool
	if avg := testing.AllocsPerRun(100, run); avg != 0 {
		t.Fatalf("warm CH point queries allocated %v times per run, want 0", avg)
	}
}

// fuzzCHMetrics caches one forced-CH metric per (grid, seed) fuzz
// coordinate so each exec pays cached lookups, not a contraction.
var fuzzCHMetrics sync.Map // [2]int64 -> *NetworkMetric

func fuzzCHMetric(grid int, seed int64) *NetworkMetric {
	key := [2]int64{int64(grid), seed}
	if m, ok := fuzzCHMetrics.Load(key); ok {
		return m.(*NetworkMetric)
	}
	m := FromNetwork(datagen.NewNetwork(grid, space, seed))
	m.SetCH(1)
	got, _ := fuzzCHMetrics.LoadOrStore(key, m)
	return got.(*NetworkMetric)
}

// FuzzCHMatchesDijkstra hammers the byte-equality contract over random
// small grids, seeds, and node pairs: any input where the hierarchy's
// unpack-and-resum (or its ambiguity fallback) diverges from the plain
// forward Dijkstra by even one ulp is a crasher.
func FuzzCHMatchesDijkstra(f *testing.F) {
	f.Add(uint8(12), int64(2008), uint16(0), uint16(143))
	f.Add(uint8(8), int64(1), uint16(63), uint16(5))
	f.Add(uint8(16), int64(42), uint16(255), uint16(255))
	f.Fuzz(func(t *testing.T, grid uint8, seed int64, a, b uint16) {
		g := 6 + int(grid)%11  // grids 6..16
		s := 1 + (seed&7)*1000 // 8 distinct seeds
		m := fuzzCHMetric(g, s)
		ch := m.hierarchy()
		if ch == nil {
			t.Fatal("forced-on hierarchy did not build")
		}
		n := int32(m.NumNodes())
		x, y := int32(a)%n, int32(b)%n
		got := m.chDist(ch, x, y)
		want := m.forwardDijkstra(x, y)
		if got != want {
			t.Fatalf("grid %d seed %d: chDist(%d,%d) = %v, forwardDijkstra = %v",
				g, s, x, y, got, want)
		}
	})
}
