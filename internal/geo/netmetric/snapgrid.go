package netmetric

import (
	"math"

	"repro/internal/geo"
)

// snapGrid is a uniform spatial hash over the real network edges, used
// to answer nearest-edge queries without scanning every segment. Each
// cell lists the edges whose bounding box overlaps it; a query scans
// cells in expanding rings around the query point until the scanned
// box's boundary is farther than the best segment found.
type snapGrid struct {
	bounds       geo.Rect
	nx, ny       int
	cellW, cellH float64
	cells        [][]int32
}

func buildSnapGrid(nodes []geo.Point, edges [][2]int32) snapGrid {
	bounds := geo.EmptyRect()
	for _, e := range edges {
		bounds = bounds.ExtendPoint(nodes[e[0]]).ExtendPoint(nodes[e[1]])
	}
	// Aim for O(1) edges per cell on a roughly uniform network.
	n := int(math.Sqrt(float64(len(edges))))
	if n < 1 {
		n = 1
	}
	g := snapGrid{bounds: bounds, nx: n, ny: n}
	g.cellW = (bounds.Max.X - bounds.Min.X) / float64(n)
	g.cellH = (bounds.Max.Y - bounds.Min.Y) / float64(n)
	if g.cellW <= 0 {
		g.cellW = 1
	}
	if g.cellH <= 0 {
		g.cellH = 1
	}
	g.cells = make([][]int32, n*n)
	for ei, e := range edges {
		mbr := geo.RectFromPoint(nodes[e[0]]).ExtendPoint(nodes[e[1]])
		x0, y0 := g.cellOf(mbr.Min)
		x1, y1 := g.cellOf(mbr.Max)
		for y := y0; y <= y1; y++ {
			for x := x0; x <= x1; x++ {
				g.cells[y*g.nx+x] = append(g.cells[y*g.nx+x], int32(ei))
			}
		}
	}
	return g
}

// cellOf returns p's cell coordinates, clamped into the grid.
func (g *snapGrid) cellOf(p geo.Point) (int, int) {
	x := int((p.X - g.bounds.Min.X) / g.cellW)
	y := int((p.Y - g.bounds.Min.Y) / g.cellH)
	return clampInt(x, 0, g.nx-1), clampInt(y, 0, g.ny-1)
}

// nearestEdge returns the index of the edge whose segment is closest to
// p. Ring r scans the cells at Chebyshev distance r from p's cell; the
// search stops once the boundary of the fully-scanned box is farther
// than the best segment seen (any unseen edge lies entirely outside that
// box, so it cannot be closer).
func (g *snapGrid) nearestEdge(p geo.Point, nodes []geo.Point, edges [][2]int32) int32 {
	cx, cy := g.cellOf(p)
	best := math.Inf(1)
	bestEdge := int32(0)
	maxR := g.nx
	if g.ny > maxR {
		maxR = g.ny
	}
	for r := 0; r <= maxR; r++ {
		if !math.IsInf(best, 1) && g.scannedBoxClearance(p, cx, cy, r-1) > best {
			break
		}
		g.scanRing(cx, cy, r, func(ei int32) {
			e := edges[ei]
			_, pos := projectOntoSegment(p, nodes[e[0]], nodes[e[1]])
			if d := p.Dist(pos); d < best {
				best = d
				bestEdge = ei
			}
		})
	}
	return bestEdge
}

// scannedBoxClearance returns the distance from p to the boundary of the
// box of cells [cx-r..cx+r]×[cy-r..cy+r] (clamped to the grid); +Inf
// when the box already covers the whole grid, since then every edge has
// been scanned.
func (g *snapGrid) scannedBoxClearance(p geo.Point, cx, cy, r int) float64 {
	if r < 0 {
		return 0
	}
	x0, x1 := cx-r, cx+r
	y0, y1 := cy-r, cy+r
	if x0 <= 0 && y0 <= 0 && x1 >= g.nx-1 && y1 >= g.ny-1 {
		return math.Inf(1)
	}
	clear := math.Inf(1)
	if x0 > 0 {
		clear = math.Min(clear, p.X-(g.bounds.Min.X+float64(x0)*g.cellW))
	}
	if x1 < g.nx-1 {
		clear = math.Min(clear, g.bounds.Min.X+float64(x1+1)*g.cellW-p.X)
	}
	if y0 > 0 {
		clear = math.Min(clear, p.Y-(g.bounds.Min.Y+float64(y0)*g.cellH))
	}
	if y1 < g.ny-1 {
		clear = math.Min(clear, g.bounds.Min.Y+float64(y1+1)*g.cellH-p.Y)
	}
	return clear
}

// scanRing visits every edge listed in the cells at Chebyshev distance r
// from (cx, cy), skipping cells outside the grid.
func (g *snapGrid) scanRing(cx, cy, r int, visit func(int32)) {
	if r == 0 {
		g.scanCell(cx, cy, visit)
		return
	}
	for x := cx - r; x <= cx+r; x++ {
		g.scanCell(x, cy-r, visit)
		g.scanCell(x, cy+r, visit)
	}
	for y := cy - r + 1; y <= cy+r-1; y++ {
		g.scanCell(cx-r, y, visit)
		g.scanCell(cx+r, y, visit)
	}
}

func (g *snapGrid) scanCell(x, y int, visit func(int32)) {
	if x < 0 || x >= g.nx || y < 0 || y >= g.ny {
		return
	}
	for _, ei := range g.cells[y*g.nx+x] {
		visit(ei)
	}
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
