package netmetric

// Offline contraction ordering for the hierarchy backend (ch.go):
// nodes are contracted one at a time in a lazy-update priority order
// (edge difference + contracted-neighbor count), inserting shortcut
// edges whenever removing a node would disconnect a shortest path that
// no witness path replaces. Each contracted node's surviving adjacency
// becomes its upward-arc block in the final CSR hierarchy; targets are
// all higher-ranked by construction, because every remaining neighbor
// is contracted later.
//
// Exactness stance: the witness search is *conservative*. A candidate
// shortcut is skipped only when a witness path beats it by at least
// chWitnessEps — far above any float rounding error, well below the
// query-time ambiguity slack (chSlack). Near-tied alternatives
// therefore stay representable in the hierarchy, surface at query time
// as competing meets, and trigger the forwardDijkstra fallback instead
// of a silently wrong unpack. Budget exhaustion also adds the shortcut:
// extra shortcuts cost memory, never correctness.

import (
	"cmp"
	"math"
	"slices"
)

const (
	// chWitnessEps is the margin a witness path must win by before a
	// candidate shortcut is dropped. Strictly conservative: the true
	// witness length can exceed the float label by ulps only, so a
	// dropped shortcut always has a strictly shorter path around it.
	chWitnessEps = 1e-7
	// chWitnessBudget caps the nodes one witness search settles when a
	// contraction actually applies; chPriorityBudget is the cheaper cap
	// used inside priority estimation, which runs an order of magnitude
	// more often and only needs a rough shortcut count. Giving up early
	// just adds a shortcut (or overestimates a priority) — never a
	// wrong distance.
	chWitnessBudget  = 512
	chPriorityBudget = 24
	// Hop caps for the same two settings: in the dense contraction
	// endgame nearly every witness is 2–3 hops, and an uncapped search
	// there pushes a frontier proportional to the core degree squared.
	chWitnessHops  = 24
	chPriorityHops = 6
)

// coreArc is one directed half of an undirected edge of the shrinking
// core graph. mid < 0 marks an original network edge (length is the
// pristine float from NetworkMetric.lengths); otherwise mid is the
// contracted node the shortcut bypasses, and the arc unpacks through
// mid's upward-arc block.
type coreArc struct {
	to     int32
	mid    int32
	length float64
}

type coreShortcut struct {
	a, b   int32
	length float64
}

// chBuilder is the single-goroutine working state of one contraction
// run. The witness scratch is epoch-stamped like searchScratch so the
// ~deg² witness searches per contraction pay no re-initialization.
type chBuilder struct {
	adj     [][]coreArc // live core graph, compacted as nodes contract
	delNbrs []int32     // contracted-neighbor count per node
	dirty   []bool      // priority may be stale (a neighbor contracted)

	epoch  int64
	dist   []float64
	hops   []int32
	seenAt []int64
	heap   nheap

	nbs     []coreArc // live-neighbor scratch of simulate
	cert    []bool    // per-partner certification marks of one witness search
	pending []coreShortcut
}

// addArc inserts the undirected arc x–y into the core graph, deduping
// parallel edges by keeping the shorter one. Keeping a single arc per
// node pair is what makes shortcut unpacking unambiguous: an up-block
// lookup by target node has exactly one answer.
func (b *chBuilder) addArc(x, y int32, l float64, mid int32) {
	for i, a := range b.adj[x] {
		if a.to != y {
			continue
		}
		if a.length <= l {
			return
		}
		b.adj[x][i] = coreArc{to: y, mid: mid, length: l}
		for j, ba := range b.adj[y] {
			if ba.to == x {
				b.adj[y][j] = coreArc{to: x, mid: mid, length: l}
				break
			}
		}
		return
	}
	b.adj[x] = append(b.adj[x], coreArc{to: y, mid: mid, length: l})
	b.adj[y] = append(b.adj[y], coreArc{to: x, mid: mid, length: l})
}

// witnesses runs one budget-bounded Dijkstra from `from` (the length-
// fromLen neighbor of the contraction candidate) on the live core graph
// minus excluded, labelling everything reachable within the partners'
// largest through-length. Callers then read b.dist/b.seenAt (at the
// returned epoch) to test each candidate target: any label is the
// length of a real path, so `label ≤ slen−chWitnessEps` certifies a
// witness even when the label is unsettled or not yet optimal —
// conservative in exactly the direction exactness needs (a missing or
// loose label just means a redundant shortcut). One search per
// neighbor replaces the deg²/2 pairwise probes of the naive scheme.
// Contracted nodes are already compacted out of the adjacency lists,
// so only the excluded node needs filtering.
//
// The search stops the moment every partner holds a certifying label:
// labels only improve, so a partner certified once stays certified, and
// stopping then cannot change any shortcut decision — most witnesses
// are 2–3 hops out, so this early exit does the bulk of the saving
// while budget and hops remain backstops for the dense endgame.
func (b *chBuilder) witnesses(from, excluded int32, fromLen float64, partners []coreArc, budget int, maxHops int32) int64 {
	b.epoch++
	b.heap.clear()
	b.dist[from] = 0
	b.hops[from] = 0
	b.seenAt[from] = b.epoch
	b.heap.push(0, from)
	limit := 0.0
	for _, p := range partners {
		if l := fromLen + p.length; l > limit {
			limit = l
		}
	}
	cert := b.cert[:0]
	for range partners {
		cert = append(cert, false)
	}
	b.cert = cert
	remaining := len(partners)
	settled := 0
	for !b.heap.empty() && remaining > 0 {
		e := b.heap.pop()
		if e.key > b.dist[e.v] {
			continue // stale entry from lazy decrease-key
		}
		if settled++; settled > budget {
			break
		}
		nh := b.hops[e.v] + 1
		if nh > maxHops {
			continue
		}
		for _, a := range b.adj[e.v] {
			if a.to == excluded {
				continue
			}
			nd := e.key + a.length
			if nd > limit-chWitnessEps {
				continue
			}
			if b.seenAt[a.to] != b.epoch || nd < b.dist[a.to] {
				b.dist[a.to] = nd
				b.hops[a.to] = nh
				b.seenAt[a.to] = b.epoch
				b.heap.push(nd, a.to)
				for j, p := range partners {
					if !cert[j] && p.to == a.to && nd <= fromLen+p.length-chWitnessEps {
						cert[j] = true
						remaining--
					}
				}
			}
		}
	}
	return b.epoch
}

// simulate contracts v hypothetically (apply=false, for the priority
// term) or actually (apply=true): every pair of live neighbors whose
// through-v path has no witness needs a shortcut. One witness search
// per neighbor covers all of its partners. Shortcuts are collected
// first and inserted after all witness searches, so the outcome does
// not depend on pair enumeration order.
func (b *chBuilder) simulate(v int32, apply bool) (shortcuts, degree int) {
	nbs := append(b.nbs[:0], b.adj[v]...)
	b.nbs = nbs
	budget, maxHops := chPriorityBudget, int32(chPriorityHops)
	if apply {
		budget, maxHops = chWitnessBudget, chWitnessHops
	}
	pending := b.pending[:0]
	for i := 0; i < len(nbs)-1; i++ {
		u := nbs[i]
		epoch := b.witnesses(u.to, v, u.length, nbs[i+1:], budget, maxHops)
		for j := i + 1; j < len(nbs); j++ {
			w := nbs[j]
			slen := u.length + w.length
			if b.seenAt[w.to] == epoch && b.dist[w.to] <= slen-chWitnessEps {
				continue
			}
			shortcuts++
			if apply {
				pending = append(pending, coreShortcut{a: u.to, b: w.to, length: slen})
			}
		}
	}
	b.pending = pending
	if apply {
		for _, p := range pending {
			b.addArc(p.a, p.b, p.length, v)
		}
	}
	return shortcuts, len(nbs)
}

// priority is the lazy-update contraction key: edge difference
// (shortcuts added minus arcs removed) plus the count of already
// contracted neighbors, the classic term that spreads contraction
// evenly instead of hollowing out one region.
func (b *chBuilder) priority(v int32) float64 {
	s, d := b.simulate(v, false)
	return float64(s-d) + float64(b.delNbrs[v])
}

// buildCH runs the full contraction and freezes the result into the
// CSR hierarchy chDist and chSSSP query. Deterministic: iteration
// orders are fixed and the priority heap is seeded in node order.
func (m *NetworkMetric) buildCH() *chState {
	n := len(m.nodes)
	b := &chBuilder{
		adj:     make([][]coreArc, n),
		delNbrs: make([]int32, n),
		dirty:   make([]bool, n),
		dist:    make([]float64, n),
		hops:    make([]int32, n),
		seenAt:  make([]int64, n),
	}
	minEdge := math.Inf(1)
	for i, e := range m.edges {
		if e[0] == e[1] {
			continue // self-loops never carry a shortest path
		}
		b.addArc(e[0], e[1], m.lengths[i], -1)
		if m.lengths[i] < minEdge {
			minEdge = m.lengths[i]
		}
	}

	ch := &chState{
		rank:    make([]int32, n),
		byRank:  make([]int32, n),
		minEdge: minEdge,
	}
	upArcs := make([][]coreArc, n)

	var pq nheap
	for v := int32(0); v < int32(n); v++ {
		pq.push(b.priority(v), v)
	}
	next := int32(0)
	for !pq.empty() {
		e := pq.pop()
		v := e.v
		// Lazy update: the popped key is stale only if a neighbor was
		// contracted since it was computed (nothing else changes v's
		// adjacency or delNbrs). Clean keys are accepted as popped;
		// dirty ones are recomputed and re-pushed unless v still
		// belongs at the front. State is unchanged while re-pushing, so
		// the loop settles on the node whose fresh priority is minimal.
		if b.dirty[v] {
			p := b.priority(v)
			b.dirty[v] = false
			if !pq.empty() && p > pq.top().key {
				pq.push(p, v)
				continue
			}
		}
		b.simulate(v, true)
		live := b.nbs // simulate(apply) leaves v's live arcs here
		upArcs[v] = append([]coreArc(nil), live...)
		ch.rank[v] = next
		ch.byRank[next] = v
		next++
		// Compact v out of its neighbors' lists right away: witness
		// searches scan these lists constantly, and letting dead arcs
		// accumulate turns the contraction endgame quadratic.
		for _, a := range live {
			b.delNbrs[a.to]++
			b.dirty[a.to] = true
			na := b.adj[a.to]
			for i, x := range na {
				if x.to == v {
					na[i] = na[len(na)-1]
					b.adj[a.to] = na[:len(na)-1]
					break
				}
			}
		}
		b.adj[v] = nil
	}

	// Flatten the per-node snapshots into the up-CSR and its reverse
	// (the down-CSR the PHAST sweep scans).
	arcs := 0
	for _, ua := range upArcs {
		arcs += len(ua)
	}
	ch.upOff = make([]int32, n+1)
	ch.upFrom = make([]int32, arcs)
	ch.upTo = make([]int32, arcs)
	ch.upLen = make([]float64, arcs)
	ch.upMid = make([]int32, arcs)
	g := int32(0)
	for v, ua := range upArcs {
		ch.upOff[v] = g
		// Ascending (length, target) order makes the CSR layout — and
		// with it every cone and every unpack — deterministic across
		// builds regardless of contraction-time list mutations.
		slices.SortFunc(ua, func(x, y coreArc) int {
			if c := cmp.Compare(x.length, y.length); c != 0 {
				return c
			}
			return cmp.Compare(x.to, y.to)
		})
		for _, a := range ua {
			ch.upFrom[g] = int32(v)
			ch.upTo[g] = a.to
			ch.upLen[g] = a.length
			ch.upMid[g] = a.mid
			if a.mid >= 0 {
				ch.shortcuts++
			}
			g++
		}
	}
	ch.upOff[n] = g

	deg := make([]int32, n+1)
	for i := int32(0); i < g; i++ {
		deg[ch.upTo[i]+1]++
	}
	ch.downOff = make([]int32, n+1)
	for v := 0; v < n; v++ {
		ch.downOff[v+1] = ch.downOff[v] + deg[v+1]
	}
	ch.downTo = make([]int32, arcs)
	ch.downLen = make([]float64, arcs)
	fill := append([]int32(nil), ch.downOff[:n]...)
	for i := int32(0); i < g; i++ {
		w := ch.upTo[i]
		ch.downTo[fill[w]] = ch.upFrom[i]
		ch.downLen[fill[w]] = ch.upLen[i]
		fill[w]++
	}
	ch.buildExpansions()
	return ch
}

// buildExpansions memoizes every shortcut arc's original-edge length
// sequence, turning query-time unpack into slice scans instead of
// recursive middle-node lookups. One DP pass in contraction order
// suffices: a shortcut's two halves are arcs owned by its middle node,
// which was contracted before the shortcut's endpoints, so both halves
// are already expanded when the shortcut's turn comes. A reversed
// traversal of an arc is exactly the reversed length sequence, so one
// forward copy per arc covers both directions. Skipped wholesale (exp
// stays nil) when the total would exceed chExpBudget floats.
func (ch *chState) buildExpansions() {
	n := len(ch.upOff) - 1
	span := func(g int32) int {
		if e := ch.exp[g]; e != nil {
			return len(e)
		}
		return 1
	}
	total := 0
	exp := make([][]float64, len(ch.upFrom))
	ch.exp = exp
	for r := 0; r < n; r++ {
		v := ch.byRank[r]
		for g := ch.upOff[v]; g < ch.upOff[v+1]; g++ {
			mid := ch.upMid[g]
			if mid < 0 {
				continue
			}
			la := ch.findUpArc(mid, v)          // mid→from half, traversed reversed
			ra := ch.findUpArc(mid, ch.upTo[g]) // mid→to half, traversed forward
			e := make([]float64, 0, span(la)+span(ra))
			if x := exp[la]; x == nil {
				e = append(e, ch.upLen[la])
			} else {
				for i := len(x) - 1; i >= 0; i-- {
					e = append(e, x[i])
				}
			}
			if x := exp[ra]; x == nil {
				e = append(e, ch.upLen[ra])
			} else {
				e = append(e, x...)
			}
			exp[g] = e
			if total += len(e); total > chExpBudget {
				ch.exp = nil
				return
			}
		}
	}
}
