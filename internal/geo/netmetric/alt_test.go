package netmetric

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/datagen"
	"repro/internal/geo"
)

// raceEnabled is set by race_test.go under -race, where sync.Pool reuse
// is deliberately defeated and allocation budgets cannot hold.
var raceEnabled bool

// testPairs returns deterministic pseudo-random node pairs over m.
func testPairs(m *NetworkMetric, n int, seed int64) [][2]int32 {
	rng := rand.New(rand.NewSource(seed))
	out := make([][2]int32, n)
	for i := range out {
		out[i] = [2]int32{int32(rng.Intn(m.NumNodes())), int32(rng.Intn(m.NumNodes()))}
	}
	return out
}

// TestALTMatchesPlainDijkstra pins the canonical-float contract of
// search.go: the ALT A* and the plain forward Dijkstra must return the
// *same* float64 for every oriented node pair — not merely close. The
// conformance suite's byte-identical solves across backends rest on
// this.
func TestALTMatchesPlainDijkstra(t *testing.T) {
	m := FromNetwork(datagen.NewNetwork(16, space, 2008))
	lm := m.landmarks()
	if lm == nil {
		t.Fatal("landmarks disabled by default")
	}
	for _, pr := range testPairs(m, 2000, 1) {
		a, b := pr[0], pr[1]
		if a == b {
			continue
		}
		plain := m.forwardDijkstra(a, b)
		alt := m.astar(a, b, lm)
		if plain != alt {
			t.Fatalf("astar(%d,%d)=%v != forwardDijkstra=%v (diff %g)", a, b, alt, plain, alt-plain)
		}
	}
}

// TestBidiAgreesWithinEps cross-checks the legacy bidirectional
// baseline against the canonical forward search: the two sum the same
// real path in different orders, so they agree to rounding error but
// not byte-for-byte (which is why bidi is benchmark-only).
func TestBidiAgreesWithinEps(t *testing.T) {
	m := FromNetwork(datagen.NewNetwork(16, space, 2008))
	for _, pr := range testPairs(m, 500, 2) {
		a, b := pr[0], pr[1]
		if a == b {
			continue
		}
		fwd := m.forwardDijkstra(a, b)
		bidi := m.bidiDijkstra(a, b)
		if math.Abs(fwd-bidi) > 1e-9*(1+fwd) {
			t.Fatalf("bidi(%d,%d)=%v vs forward=%v", a, b, bidi, fwd)
		}
	}
}

// TestLegacyBidiMode checks the SetLegacyBidi knob routes point queries
// through the baseline search and still satisfies the metric contract.
func TestLegacyBidiMode(t *testing.T) {
	net := datagen.NewNetwork(12, space, 7)
	pts := net.Points(datagen.Config{N: 64, Dist: datagen.Uniform, Seed: 3})
	legacy := FromNetwork(net)
	legacy.SetLegacyBidi(true)
	canon := FromNetwork(net)
	for i := 0; i+1 < len(pts); i += 2 {
		dl := legacy.Dist(pts[i], pts[i+1])
		dc := canon.Dist(pts[i], pts[i+1])
		if math.Abs(dl-dc) > 1e-9*(1+dc) {
			t.Fatalf("legacy bidi Dist=%v vs canonical %v", dl, dc)
		}
	}
}

// TestManyToManyMatchesPointQueries pins byte-identity of the bulk
// path: ManyToMany, Table.Dist and point-query Dist must agree
// exactly, with landmarks on and off.
func TestManyToManyMatchesPointQueries(t *testing.T) {
	net := datagen.NewNetwork(12, space, 2008)
	sources := net.Points(datagen.Config{N: 24, Dist: datagen.Uniform, Seed: 4})
	targets := net.Points(datagen.Config{N: 200, Dist: datagen.Clustered, Seed: 5})
	for _, lmk := range []int{DefaultLandmarks, 0} {
		bulk := FromNetwork(net)
		bulk.SetLandmarks(lmk)
		mat := bulk.ManyToMany(sources, targets)
		tab := bulk.BuildTable(sources, 0)
		if tab == nil {
			t.Fatal("BuildTable declined within default budget")
		}
		point := FromNetwork(net)
		point.SetLandmarks(lmk)
		for i, s := range sources {
			for j, q := range targets {
				want := point.Dist(s, q)
				if mat[i][j] != want {
					t.Fatalf("landmarks=%d ManyToMany[%d][%d]=%v != Dist=%v", lmk, i, j, mat[i][j], want)
				}
				if got := tab.Dist(s, q); got != want {
					t.Fatalf("landmarks=%d Table.Dist[%d][%d]=%v != Dist=%v", lmk, i, j, got, want)
				}
			}
		}
		// Uncovered sources fall back to point queries, byte-identically.
		for j := 0; j+1 < len(targets); j += 7 {
			want := point.Dist(targets[j], targets[j+1])
			if got := tab.Dist(targets[j], targets[j+1]); got != want {
				t.Fatalf("landmarks=%d fallback Table.Dist=%v != Dist=%v", lmk, got, want)
			}
		}
	}
}

// TestBuildTableBudget checks the size gate: a budget too small for the
// source set's endpoint vectors declines instead of materializing.
func TestBuildTableBudget(t *testing.T) {
	net := datagen.NewNetwork(12, space, 2008)
	m := FromNetwork(net)
	sources := net.Points(datagen.Config{N: 16, Dist: datagen.Uniform, Seed: 6})
	if tab := m.BuildTable(sources, m.NumNodes()); tab != nil {
		t.Fatalf("BuildTable built %d vectors under a 1-vector budget", tab.Coverage())
	}
	tab := m.BuildTable(sources, 0)
	if tab == nil {
		t.Fatal("BuildTable declined the default budget")
	}
	if got, max := tab.Coverage(), 2*len(sources); got < 1 || got > max {
		t.Fatalf("table coverage %d outside [1,%d]", got, max)
	}
}

// TestAllocsPointQuery pins the pooled-scratch budget of the cold point
// searches: once pools and landmark state are warm, a query must not
// allocate.
func TestAllocsPointQuery(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation budgets don't hold under the race detector")
	}
	m := FromNetwork(datagen.NewNetwork(16, space, 2008))
	lm := m.landmarks()
	pairs := testPairs(m, 64, 7)
	var sink float64
	run := func(f func(i int)) float64 {
		f(0) // warm pools to steady-state sizes
		i := 0
		return testing.AllocsPerRun(100, func() { f(i % len(pairs)); i++ })
	}
	if avg := run(func(i int) { sink = m.astar(pairs[i][0], pairs[i][1], lm) }); avg != 0 {
		t.Errorf("astar allocates %.1f per query; want 0", avg)
	}
	if avg := run(func(i int) { sink = m.forwardDijkstra(pairs[i][0], pairs[i][1]) }); avg != 0 {
		t.Errorf("forwardDijkstra allocates %.1f per query; want 0", avg)
	}
	if avg := run(func(i int) { sink = m.bidiDijkstra(pairs[i][0], pairs[i][1]) }); avg != 0 {
		t.Errorf("bidiDijkstra allocates %.1f per query; want 0", avg)
	}
	_ = sink
}

// TestAllocsManyToMany pins the bulk sweep's budget: with a warm snap
// cache and pooled scratch, a ManyToManyInto call into a caller buffer
// must not allocate.
func TestAllocsManyToMany(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation budgets don't hold under the race detector")
	}
	net := datagen.NewNetwork(12, space, 2008)
	m := FromNetwork(net)
	sources := net.Points(datagen.Config{N: 16, Dist: datagen.Uniform, Seed: 8})
	targets := net.Points(datagen.Config{N: 128, Dist: datagen.Clustered, Seed: 9})
	out := make([]float64, len(sources)*len(targets))
	m.ManyToManyInto(sources, targets, out) // warm snap cache + scratch pool
	if avg := testing.AllocsPerRun(20, func() {
		m.ManyToManyInto(sources, targets, out)
	}); avg != 0 {
		t.Errorf("ManyToManyInto allocates %.1f per sweep; want 0", avg)
	}
}

// FuzzLandmarkBound fuzzes the ALT bound's contract: admissibility
// against both the point metric and the node distances, symmetry, and
// agreement with the Euclidean floor.
func FuzzLandmarkBound(f *testing.F) {
	f.Add(0.0, 0.0, 1000.0, 1000.0)
	f.Add(13.5, 900.25, 800.0, 17.75)
	f.Add(500.0, 500.0, 500.0, 500.0)
	f.Fuzz(func(t *testing.T, x1, y1, x2, y2 float64) {
		coords := [4]float64{x1, y1, x2, y2}
		for i, v := range coords {
			c, ok := clampToSpace(v)
			if !ok {
				t.Skip("non-finite input")
			}
			coords[i] = c
		}
		p := geo.Point{X: coords[0], Y: coords[1]}
		q := geo.Point{X: coords[2], Y: coords[3]}
		m := fuzzMetric()
		lm := m.landmarks()

		lb := m.LowerBound(p, q)
		d := m.Dist(p, q)
		if lb > d {
			t.Fatalf("landmark bound not admissible: lb=%v > Dist=%v for %v -> %v", lb, d, p, q)
		}
		if euclid := p.Dist(q); lb < euclid {
			t.Fatalf("bound below Euclidean floor: lb=%v < %v", lb, euclid)
		}
		if rev := m.LowerBound(q, p); math.Abs(lb-rev) > 1e-9*(1+lb) {
			t.Fatalf("bound asymmetric: %v vs %v", lb, rev)
		}
		// Node-level admissibility and exact symmetry, consistent with
		// the node triangle contract in FuzzMetricContract.
		a, b := m.SnapNode(p), m.SnapNode(q)
		nb := lm.lbNodes(a, b)
		if rev := lm.lbNodes(b, a); rev != nb {
			t.Fatalf("lbNodes asymmetric: %v vs %v", nb, rev)
		}
		if nd := m.NodeDist(a, b); nb > nd+1e-9*(1+nd) {
			t.Fatalf("lbNodes(%d,%d)=%v exceeds NodeDist=%v", a, b, nb, nd)
		}
	})
}
