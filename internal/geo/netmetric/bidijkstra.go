package netmetric

import (
	"math"
	"sync"
)

// This file keeps the pre-ALT point-query search: plain bidirectional
// Dijkstra. It is no longer on any default path — point queries run the
// forward-canonical searches in search.go (see the semantics note there)
// — but it survives as the honest benchmark baseline: the BENCH_net.json
// speedup rows and the cross-check fuzz compare against it via
// SetLegacyBidi. Its result can differ from the canonical value in the
// last ulps (it sums a forward and a backward partial), which is exactly
// why it cannot serve the byte-identity conformance suite.

// bidiScratch is the pooled label state of one bidirectional search:
// forward and backward distance labels with settled marks, epoch-stamped
// so reuse pays no O(V) re-initialization. The heaps are flat nheaps
// (no per-push allocation), so a warm query allocates nothing.
type bidiScratch struct {
	epoch  int64
	dist   [2][]float64
	seenAt [2][]int64
	doneAt [2][]int64
	heap   [2]nheap
}

var bidiPool = sync.Pool{New: func() any { return &bidiScratch{} }}

func (s *bidiScratch) reset(n int) {
	s.epoch++
	for side := 0; side < 2; side++ {
		for len(s.dist[side]) < n {
			s.dist[side] = append(s.dist[side], 0)
			s.seenAt[side] = append(s.seenAt[side], 0)
			s.doneAt[side] = append(s.doneAt[side], 0)
		}
		s.heap[side].clear()
	}
}

func (s *bidiScratch) seen(side int, v int32) bool { return s.seenAt[side][v] == s.epoch }
func (s *bidiScratch) done(side int, v int32) bool { return s.doneAt[side][v] == s.epoch }

func (s *bidiScratch) label(side int, v int32) float64 {
	if s.seen(side, v) {
		return s.dist[side][v]
	}
	return math.Inf(1)
}

// SetLegacyBidi switches point queries to the pre-ALT plain
// bidirectional Dijkstra. Benchmark-only: the returned distances agree
// with the canonical backends to within a few ulps but are not
// byte-identical, so never mix modes on one metric instance (the
// node-pair cache would blend the two semantics). Like SetLandmarks it
// must run during setup, before the metric is shared across goroutines.
func (m *NetworkMetric) SetLegacyBidi(on bool) { m.legacyBidi = on }

// bidiDijkstra returns the shortest-path distance from src to dst by
// growing Dijkstra balls from both endpoints and stopping when the two
// frontiers together can no longer improve the best meeting point. The
// graph is undirected, so the backward search uses the same adjacency.
func (m *NetworkMetric) bidiDijkstra(src, dst int32) float64 {
	s := bidiPool.Get().(*bidiScratch)
	defer bidiPool.Put(s)
	s.reset(len(m.nodes))

	start := [2]int32{src, dst}
	for side := 0; side < 2; side++ {
		v := start[side]
		s.dist[side][v] = 0
		s.seenAt[side][v] = s.epoch
		s.heap[side].push(0, v)
	}
	best := math.Inf(1)
	for {
		fKey, bKey := math.Inf(1), math.Inf(1)
		if !s.heap[0].empty() {
			fKey = s.heap[0].top().key
		}
		if !s.heap[1].empty() {
			bKey = s.heap[1].top().key
		}
		if math.IsInf(fKey, 1) && math.IsInf(bKey, 1) {
			break
		}
		// Termination: every undiscovered meeting point costs at least
		// the sum of the two frontier minima. When one search has
		// exhausted its heap the sum is +Inf and we stop: an exhausted
		// side has settled everything reachable from its endpoint, so
		// best is already exact — or the endpoints are disconnected.
		if fKey+bKey >= best {
			break
		}
		// Expand the side with the smaller frontier key.
		side := 0
		if bKey < fKey {
			side = 1
		}
		v := s.heap[side].pop().v
		if s.done(side, v) {
			continue // stale entry from lazy decrease-key
		}
		s.doneAt[side][v] = s.epoch
		dv := s.dist[side][v]
		other := 1 - side
		for _, a := range m.adj[v] {
			nd := dv + a.length
			if nd < s.label(side, a.to) {
				s.dist[side][a.to] = nd
				s.seenAt[side][a.to] = s.epoch
				// Lazy decrease-key: push a fresh entry, skip stale pops.
				s.heap[side].push(nd, a.to)
			}
			// Meeting point: settled-or-labeled on the other side.
			if s.seen(other, a.to) {
				if cand := nd + s.dist[other][a.to]; cand < best {
					best = cand
				}
			}
		}
		if s.seen(other, v) {
			if cand := dv + s.dist[other][v]; cand < best {
				best = cand
			}
		}
	}
	return best
}
