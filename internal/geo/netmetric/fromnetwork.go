package netmetric

import "repro/internal/datagen"

// FromNetwork builds the shortest-path metric over a datagen road
// network. datagen networks always have valid edges, so construction
// cannot fail; a panic here means the Network was built by hand with
// out-of-range endpoints.
func FromNetwork(n *datagen.Network) *NetworkMetric {
	m, err := New(n.Nodes, n.Edges)
	if err != nil {
		panic("netmetric: invalid datagen network: " + err.Error())
	}
	return m
}
