package netmetric

import (
	"math"
	"sync"

	"repro/internal/geo"
)

// DefaultTableBudget is the default cap, in float64 cells, on the
// distance vectors a bulk precompute may materialize (64 MB). A table
// needs one full node vector per distinct snap-edge endpoint of its
// source set, so the cost is (distinct endpoints)·NumNodes cells; above
// the budget BuildTable declines and callers fall back to point queries.
const DefaultTableBudget = 1 << 23

// Table is a NetworkMetric with a provider-sourced bulk distance table:
// one single-source sweep per distinct snap-edge endpoint of the source
// points, stored as dense node vectors. Dist(p, q) where p is a source
// (or shares a snap edge with one) assembles the answer from the
// vectors in O(1) — byte-identical to the point-query value, because
// the sweeps compute the same canonical forward labels the point
// searches return (see search.go) and the assembly mirrors pathDist
// expression for expression. Queries from uncovered points fall through
// to the embedded metric unchanged, in the same p→q orientation.
//
// A Table is as concurrency-safe as its NetworkMetric: the vectors are
// immutable after BuildTable.
type Table struct {
	*NetworkMetric
	vecIdx map[int32]int32 // endpoint node → row index in vecs
	vecs   []float64       // row-major, NumNodes() cells per row
}

// BuildTable precomputes distance vectors for the snap-edge endpoints
// of sources. budget caps the materialized float64 cells (values < 1
// select DefaultTableBudget); BuildTable returns nil when the source
// set's endpoint count would exceed it, and callers should then keep
// using point queries. The sweeps run on the calling goroutine; for the
// solver integration that places the build cost inside the solve's
// measured CPU time, where it belongs.
func (m *NetworkMetric) BuildTable(sources []geo.Point, budget int) *Table {
	if budget < 1 {
		budget = DefaultTableBudget
	}
	n := len(m.nodes)
	t := &Table{NetworkMetric: m, vecIdx: make(map[int32]int32, 2*len(sources))}
	var h nheap
	var order []int32
	for _, p := range sources {
		sp := m.snap(p)
		for _, v := range m.edges[sp.edge] {
			if _, ok := t.vecIdx[v]; ok {
				continue
			}
			if (len(t.vecIdx)+1)*n > budget {
				return nil
			}
			t.vecIdx[v] = int32(len(t.vecIdx))
			t.vecs = append(t.vecs, make([]float64, n)...)
			m.bulkSSSP(v, t.vecs[len(t.vecs)-n:], &h, &order)
		}
	}
	return t
}

// Coverage returns the number of endpoint vectors the table holds.
func (t *Table) Coverage() int { return len(t.vecIdx) }

// Dist implements geo.Metric. When p's snap-edge endpoints are covered
// the answer comes from the table in O(1); otherwise it falls back to
// the embedded metric's point query with the same orientation, so mixed
// workloads stay byte-identical with the non-table run.
func (t *Table) Dist(p, q geo.Point) float64 {
	sp := t.snap(p)
	ep := t.edges[sp.edge]
	r0, ok0 := t.vecIdx[ep[0]]
	r1, ok1 := t.vecIdx[ep[1]]
	if !ok0 || !ok1 {
		return t.NetworkMetric.Dist(p, q)
	}
	n := len(t.nodes)
	sq := t.snap(q)
	return t.assembleDist(sp, t.vecs[int(r0)*n:int(r0)*n+n], t.vecs[int(r1)*n:int(r1)*n+n], sq)
}

// assembleDist computes Dist(p, q) from p's snap position and the two
// distance vectors of p's snap-edge endpoints. The arithmetic mirrors
// Dist/pathDist expression for expression — same terms, same
// association order — so the result is byte-identical to the point
// query (row[v] is the canonical forward label, and row[endpoint
// itself] is exactly 0, matching nodeDist's diagonal short-circuit).
func (m *NetworkMetric) assembleDist(sp snapPos, row0, row1 []float64, sq snapPos) float64 {
	eq := m.edges[sq.edge]
	lp, lq := m.lengths[sp.edge], m.lengths[sq.edge]
	best := math.Inf(1)
	if sp.edge == sq.edge {
		best = math.Abs(sp.t-sq.t) * lp
	}
	pw := [2]float64{sp.t * lp, (1 - sp.t) * lp}
	qw := [2]float64{sq.t * lq, (1 - sq.t) * lq}
	rows := [2][]float64{row0, row1}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if d := pw[i] + rows[i][eq[j]] + qw[j]; d < best {
				best = d
			}
		}
	}
	return sp.offset + best + sq.offset
}

// m2mScratch is the pooled working state of one ManyToManyInto call:
// the endpoint→row map, the vector arena and the sweep heap all reuse
// their backing storage, so a steady-state bulk sweep allocates nothing
// (asserted by TestAllocsManyToMany).
type m2mScratch struct {
	vecIdx map[int32]int32
	vecs   []float64
	heap   nheap
	order  []int32 // chSSSP replay-order buffer
}

var m2mPool = sync.Pool{New: func() any { return &m2mScratch{vecIdx: make(map[int32]int32)} }}

// ManyToMany returns the full sources×targets distance matrix with one
// single-source sweep per distinct source snap-edge endpoint — the bulk
// counterpart of len(sources)·len(targets) Dist calls, with identical
// (byte-for-byte) results.
func (m *NetworkMetric) ManyToMany(sources, targets []geo.Point) [][]float64 {
	flat := m.ManyToManyInto(sources, targets, make([]float64, len(sources)*len(targets)))
	out := make([][]float64, len(sources))
	for i := range out {
		out[i] = flat[i*len(targets) : (i+1)*len(targets)]
	}
	return out
}

// ManyToManyInto is ManyToMany into a caller-provided flat buffer
// (row-major, len(sources)·len(targets) cells; reallocated only if too
// small). Scratch is pooled, so repeated calls at steady state perform
// zero allocations beyond the caller's buffer.
func (m *NetworkMetric) ManyToManyInto(sources, targets []geo.Point, out []float64) []float64 {
	need := len(sources) * len(targets)
	if cap(out) < need {
		out = make([]float64, need)
	}
	out = out[:need]
	n := len(m.nodes)
	s := m2mPool.Get().(*m2mScratch)
	defer m2mPool.Put(s)
	clear(s.vecIdx)
	s.vecs = s.vecs[:0]
	for si, p := range sources {
		sp := m.snap(p)
		ep := m.edges[sp.edge]
		// Ensure both endpoint vectors exist before slicing into the
		// arena: a sweep may grow (and so reallocate) s.vecs.
		var ri [2]int32
		for k, v := range ep {
			r, ok := s.vecIdx[v]
			if !ok {
				r = int32(len(s.vecIdx))
				s.vecIdx[v] = r
				for cap(s.vecs) < int(r+1)*n {
					s.vecs = append(s.vecs[:cap(s.vecs)], 0)
				}
				s.vecs = s.vecs[:int(r+1)*n]
				m.bulkSSSP(v, s.vecs[int(r)*n:int(r+1)*n], &s.heap, &s.order)
			}
			ri[k] = r
		}
		rows := [2][]float64{
			s.vecs[int(ri[0])*n : int(ri[0]+1)*n],
			s.vecs[int(ri[1])*n : int(ri[1]+1)*n],
		}
		row := out[si*len(targets) : (si+1)*len(targets)]
		for ti, q := range targets {
			row[ti] = m.assembleDist(sp, rows[0], rows[1], m.snap(q))
		}
	}
	return out
}
