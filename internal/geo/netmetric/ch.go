package netmetric

// Contraction-hierarchy point queries and bulk sweeps.
//
// A plain bidirectional CH search sums a forward and a backward partial
// and so diverges from the canonical forward-relaxation float contract
// (search.go) in the last ulps, exactly like the demoted bidirectional
// Dijkstra. chDist therefore uses the up/down meet only to *identify*
// the shortest path: it unpacks the winning up-down path's shortcuts
// down to original network edges and re-evaluates that edge sequence as
// a left-associated forward sum from src — the canonical value itself.
// Whenever path identification is ambiguous — a competing meet or a
// relaxation tie within chSlack — it falls back to forwardDijkstra
// instead of guessing. On the jittered synthetic networks ambiguity is
// vanishingly rare (CHStats measures it), so the fast path dominates;
// on adversarial tie-heavy graphs CH degrades to plain Dijkstra but
// never to a wrong byte (FuzzCHMatchesDijkstra and the backend
// conformance suite pin this).

import (
	"cmp"
	"math"
	"slices"
	"sync"
)

// DefaultCHMinNodes is the network size at which automatic mode turns
// the hierarchy on. Below it the ALT search is already a few hundred
// settles per cold query, so CH preprocessing cannot pay for itself;
// above it the up/down cones stay near-constant while ALT keeps
// growing with the grid.
const DefaultCHMinNodes = 4096

// chSlack is the ambiguity margin of the hierarchy query: when the
// second-best meet (or any relaxation tie) is within this margin of
// the winner, the shortest *path* is not unambiguously identified and
// chDist falls back to forwardDijkstra. Same scale rationale as
// altSlack: vastly above accumulated rounding error, vanishingly small
// against real distances.
const chSlack = 1e-6

// chSweepMinEdge gates the PHAST-ordered bulk sweep: the canonical
// replay pass is valid only when the shortest original edge dwarfs the
// float error of the approximate distances (see chSSSP). Networks with
// degenerate (near-zero) edges keep the plain Dijkstra sweep.
const chSweepMinEdge = 1e-6

// chState is the frozen hierarchy: contraction ranks plus the upward
// arc CSR (each node's arcs lead to higher-ranked nodes only) and its
// reverse for the downward sweep scan. Immutable after buildCH; shared
// without locks.
type chState struct {
	rank   []int32 // node → contraction order (0 = contracted first)
	byRank []int32 // contraction order → node

	upOff  []int32 // CSR offsets into the arc arrays, len n+1
	upFrom []int32
	upTo   []int32
	upLen  []float64
	upMid  []int32 // −1 = original edge, else the bypassed middle node

	downOff []int32 // reverse CSR: arcs into each node from lower rank
	downTo  []int32
	downLen []float64

	// exp memoizes each shortcut arc's expansion: the original-edge
	// lengths of the path it represents, in from→to order (nil for
	// original edges — their length is upLen[g] itself). Built by one
	// DP pass in buildCH; nil as a whole when the total size exceeded
	// chExpBudget, in which case queries expand recursively.
	exp [][]float64

	minEdge   float64
	shortcuts int // shortcut arcs (upMid >= 0)
}

// findUpArc returns the index of owner's upward arc to target. The
// core graph dedupes parallel edges, so the answer is unique; a miss
// is a construction bug, not an input condition.
func (ch *chState) findUpArc(owner, target int32) int32 {
	for g := ch.upOff[owner]; g < ch.upOff[owner+1]; g++ {
		if ch.upTo[g] == target {
			return g
		}
	}
	panic("netmetric: hierarchy unpack: missing middle arc")
}

// SetCH configures the contraction-hierarchy backend: v > 0 forces it
// on, v == 0 disables it, v < 0 restores automatic mode (on for
// networks of at least DefaultCHMinNodes nodes). Like SetLandmarks it
// must run during setup, before the metric is shared across
// goroutines: it drops any built hierarchy without synchronization.
func (m *NetworkMetric) SetCH(v int) {
	switch {
	case v < 0:
		v = -1
	case v > 0:
		v = 1
	}
	m.chMode = v
	m.chOnce = new(sync.Once)
	m.ch = nil
	// Cached cones index arcs of the dropped hierarchy; drop them too.
	m.chLabelMu.Lock()
	m.chLabels = nil
	m.chLabelN = 0
	m.chLabelMu.Unlock()
}

// CH reports whether hierarchy queries are enabled under the current
// mode and network size. It does not trigger the build.
func (m *NetworkMetric) CH() bool {
	return m.chMode > 0 || (m.chMode < 0 && len(m.nodes) >= DefaultCHMinNodes)
}

// CHStats returns the hierarchy query counters: total point queries
// answered by chDist and how many of them fell back to forwardDijkstra
// because path identification was ambiguous. The fallback fraction is
// the price of exactness; tests pin it near zero on jittered networks.
func (m *NetworkMetric) CHStats() (queries, fallbacks uint64) {
	return m.chQueries.Load(), m.chFallbacks.Load()
}

// hierarchy returns the lazily built contraction hierarchy, or nil
// when disabled. Like landmarks(), concurrent first callers block on
// one sync.Once, so a shared metric pays the contraction exactly once.
func (m *NetworkMetric) hierarchy() *chState {
	if !m.CH() {
		return nil
	}
	m.chOnce.Do(func() { m.ch = m.buildCH() })
	return m.ch
}

// unpackFrame is one pending arc expansion: arc g traversed from→to,
// or to→from when rev.
type unpackFrame struct {
	g   int32
	rev bool
}

// chLabelBudget caps the total entries the cone (hub-label) cache may
// hold across all nodes — 1<<22 entries ≈ 64 MB, the same ceiling
// DefaultTableBudget puts on bulk distance tables. When an insert would
// exceed it the whole cache is dropped and regrows from the current
// working set — a generation reset, not an LRU, because cones are tiny
// and rebuilt in ~100µs.
var chLabelBudget = 1 << 22

// chExpBudget caps the total floats the expansion memo (chState.exp)
// may hold — 1<<23 ≈ 64 MB. Grids stay far below it (total expansion
// size grows like arcs × average span, ~1M floats at 128×128); the
// guard exists for adversarial inputs. A var so tests can force the
// recursive-unpack path.
var chExpBudget = 1 << 23

// chCone is one node's hub label: its full upward search space (every
// node reachable over upward arcs), sorted by node id, with the
// canonical up-distance and the parent arc of each entry. tie records
// whether any relaxation during the build landed within chSlack of an
// existing label, making parent choice float-determined; queries
// touching a tied cone fall back. Immutable once built; shared without
// locks.
type chCone struct {
	nodes  []int32
	dist   []float64
	par    []int32 // parent up-arc id; −1 at the cone's source
	parIdx []int32 // the parent's own index in nodes; −1 at the source
	tie    bool
}

// chScratch is the pooled working state of one cone build plus the
// query-side unpack buffers, epoch-stamped like searchScratch so a
// build pays no O(V) re-initialization. A warm query allocates nothing
// (asserted by TestAllocsCHPointQuery).
type chScratch struct {
	epoch   int64
	dist    []float64
	seen    []int64
	par     []int32
	pos     []int32 // node id -> index in the sorted touched set
	ranked  []int64 // (rank<<32 | id) keys: one Sort orders topologically
	heap    nheap
	touched []int32
	chain   []int32
	stack   []unpackFrame
	lens    []float64

	// Scattered copy of the last query's source cone, dense by node id.
	// Solver workloads query one provider against thousands of
	// customers in runs, so consecutive queries usually reuse the
	// scatter and pay only one scan of the destination cone. srcCone
	// (the cached cone's identity) guards staleness: a different
	// source, metric, or hierarchy generation yields a different cone
	// pointer and forces a re-scatter.
	srcCone  *chCone // scattered cone, or nil
	lastCone *chCone // previous query's source cone (scatter trigger)
	srcEpoch int32
	scatter  []chScatterEntry
}

// chScatterEntry is one slot of the dense scattered-cone index: a
// single 16-byte struct so each probe during the scan touches one
// cache line instead of three parallel arrays.
type chScatterEntry struct {
	seen int32 // epoch stamp
	idx  int32 // entry's index in the scattered cone
	dist float64
}

var chPool = sync.Pool{New: func() any { return &chScratch{} }}

func (s *chScratch) reset(n int) {
	s.epoch++
	for len(s.dist) < n {
		s.dist = append(s.dist, 0)
		s.seen = append(s.seen, 0)
		s.par = append(s.par, 0)
		s.pos = append(s.pos, 0)
	}
}

// cone returns v's hub label, building and caching it on first use.
// Cones are deterministic functions of the frozen hierarchy, so a
// racing double build stores one winner and both callers see identical
// bytes either way.
func (m *NetworkMetric) cone(ch *chState, v int32) *chCone {
	m.chLabelMu.RLock()
	c := m.chLabels[v]
	m.chLabelMu.RUnlock()
	if c != nil {
		return c
	}
	c = m.buildCone(ch, v)
	m.chLabelMu.Lock()
	if ex := m.chLabels[v]; ex != nil {
		c = ex
	} else {
		if m.chLabels == nil {
			m.chLabels = make(map[int32]*chCone)
		}
		if m.chLabelN+len(c.nodes) > chLabelBudget {
			clear(m.chLabels)
			m.chLabelN = 0
		}
		m.chLabels[v] = c
		m.chLabelN += len(c.nodes)
	}
	m.chLabelMu.Unlock()
	return c
}

// buildCone computes the exhaustive upward shortest-path labels from
// src and freezes the reached set into a node-id-sorted label. The
// upward graph is a DAG — every arc goes strictly rank-up — so instead
// of a Dijkstra the build enumerates membership with a plain FIFO
// sweep and relaxes in contraction-rank (topological) order: each
// node's label is final before its out-arcs fire, no heap anywhere.
// The label values are byte-identical to what the Dijkstra computed —
// each is the float min over the same candidate set (final in-neighbor
// label + arc length) — only the visit order changes. Any relaxation
// landing within chSlack of an existing label makes the parent choice
// float-determined rather than path-determined, so it taints the whole
// cone and every query through it falls back.
func (m *NetworkMetric) buildCone(ch *chState, src int32) *chCone {
	s := chPool.Get().(*chScratch)
	defer chPool.Put(s)
	s.reset(len(m.nodes))
	s.touched = s.touched[:0]
	tie := false
	s.seen[src] = s.epoch
	s.dist[src] = 0
	s.par[src] = -1
	s.touched = append(s.touched, src)
	byRank := s.ranked[:0]
	byRank = append(byRank, int64(ch.rank[src])<<32|int64(src))
	for qi := 0; qi < len(s.touched); qi++ {
		v := s.touched[qi]
		for g := ch.upOff[v]; g < ch.upOff[v+1]; g++ {
			if to := ch.upTo[g]; s.seen[to] != s.epoch {
				s.seen[to] = s.epoch
				s.dist[to] = math.Inf(1)
				s.par[to] = -1
				s.touched = append(s.touched, to)
				byRank = append(byRank, int64(ch.rank[to])<<32|int64(to))
			}
		}
	}
	s.ranked = byRank
	slices.Sort(byRank) // rank is the high word: ascending = topological
	for _, rv := range byRank {
		v := int32(rv & 0xffffffff)
		dv := s.dist[v]
		for g := ch.upOff[v]; g < ch.upOff[v+1]; g++ {
			to := ch.upTo[g]
			nd := dv + ch.upLen[g]
			if d := nd - s.dist[to]; d < chSlack && d > -chSlack {
				tie = true
			}
			if nd < s.dist[to] {
				s.dist[to] = nd
				s.par[to] = g
			}
		}
	}
	slices.Sort(s.touched)
	c := &chCone{
		nodes:  append([]int32(nil), s.touched...),
		dist:   make([]float64, len(s.touched)),
		par:    make([]int32, len(s.touched)),
		parIdx: make([]int32, len(s.touched)),
		tie:    tie,
	}
	// Invert the sorted membership once so parent links resolve by
	// array lookup; cone membership is closed under parents, so the
	// lookup cannot miss, and freezing the index here keeps the
	// query's chain walk free of searches.
	for i, v := range c.nodes {
		s.pos[v] = int32(i)
	}
	for i, v := range c.nodes {
		c.dist[i] = s.dist[v]
		c.par[i] = s.par[v]
		if g := s.par[v]; g >= 0 {
			c.parIdx[i] = s.pos[ch.upFrom[g]]
		} else {
			c.parIdx[i] = -1
		}
	}
	return c
}

// chDist returns the canonical src→dst distance through the hierarchy.
// Both endpoints' cached cones are merge-intersected (both are sorted
// by node id), tracking the best and second-best meet over the common
// nodes — the complete meet set of the classic exhaustive up/up CH
// query, because a shortest up-down path meets at a node present in
// both cones. The winning meet's two parent chains are unpacked through
// the shortcut middles down to original edges and re-summed
// left-associated from a — the canonical value. Ambiguity (a competing
// meet within chSlack of the winner, or a relaxation tie recorded in
// either cone) falls back to forwardDijkstra.
func (m *NetworkMetric) chDist(ch *chState, a, b int32) float64 {
	if a == b {
		return 0
	}
	m.chQueries.Add(1)
	ca := m.cone(ch, a)
	cb := m.cone(ch, b)

	s := chPool.Get().(*chScratch)
	defer chPool.Put(s)
	best, second := math.Inf(1), math.Inf(1)
	meetI, meetJ := -1, -1
	an, bn := ca.nodes, cb.nodes
	if s.srcCone == ca || s.lastCone == ca {
		// Source-run fast path: solver workloads query one provider
		// against thousands of customers in a row, so the second
		// consecutive query from the same source scatters its cone into
		// dense-by-node-id arrays and every query in the run is a single
		// scan of the destination cone. Common nodes are visited in the
		// same ascending-id order the merge below produces, so
		// best/second/meet land on identical values. The scattered cone
		// stays referenced by the scratch, so its address cannot be
		// recycled and the pointer comparison cannot alias a stale
		// scatter.
		if s.srcCone != ca {
			for len(s.scatter) < len(m.nodes) {
				s.scatter = append(s.scatter, chScatterEntry{})
			}
			if s.srcEpoch++; s.srcEpoch == 0 {
				// int32 epoch wrapped: clear every stale stamp once.
				for i := range s.scatter {
					s.scatter[i].seen = 0
				}
				s.srcEpoch = 1
			}
			for i, v := range an {
				s.scatter[v] = chScatterEntry{seen: s.srcEpoch, idx: int32(i), dist: ca.dist[i]}
			}
			s.srcCone = ca
		}
		for j, v := range bn {
			e := &s.scatter[v]
			if e.seen != s.srcEpoch {
				continue
			}
			if t := e.dist + cb.dist[j]; t < best {
				second, best, meetI, meetJ = best, t, int(e.idx), j
			} else if t < second {
				second = t
			}
		}
	} else {
		// Run-based merge: each inner loop skims a run of one side
		// until it catches up with the other, which the branch
		// predictor handles far better than element-by-element
		// alternation.
		s.lastCone = ca
		i, j := 0, 0
	merge:
		for i < len(an) && j < len(bn) {
			x := an[i]
			for bn[j] < x {
				if j++; j == len(bn) {
					break merge
				}
			}
			if bn[j] == x {
				if t := ca.dist[i] + cb.dist[j]; t < best {
					second, best, meetI, meetJ = best, t, i, j
				} else if t < second {
					second = t
				}
				i++
				j++
				continue
			}
			y := bn[j]
			for i < len(an) && an[i] < y {
				i++
			}
		}
	}

	if meetI < 0 || ca.tie || cb.tie || second < best+chSlack {
		m.chFallbacks.Add(1)
		return m.forwardDijkstra(a, b)
	}

	// Unpack a→meet (parent chain walks meet→a, so expand in reverse)
	// then meet→b (chain order is already path order; arcs reversed).
	// With the expansion memo the sum accumulates straight off each
	// arc's length sequence — same sequence, same left-association,
	// same bytes as the recursive path below.
	s.chain = s.chain[:0]
	for k := meetI; ca.par[k] >= 0; k = int(ca.parIdx[k]) {
		s.chain = append(s.chain, ca.par[k])
	}
	d := 0.0
	if ch.exp != nil {
		for i := len(s.chain) - 1; i >= 0; i-- {
			g := s.chain[i]
			if e := ch.exp[g]; e != nil {
				for _, l := range e {
					d += l
				}
			} else {
				d += ch.upLen[g]
			}
		}
		for k := meetJ; cb.par[k] >= 0; k = int(cb.parIdx[k]) {
			g := cb.par[k]
			if e := ch.exp[g]; e != nil {
				for i := len(e) - 1; i >= 0; i-- {
					d += e[i]
				}
			} else {
				d += ch.upLen[g]
			}
		}
		return d
	}
	s.lens = s.lens[:0]
	for i := len(s.chain) - 1; i >= 0; i-- {
		s.lens = ch.expand(s.chain[i], false, s.lens, &s.stack)
	}
	for k := meetJ; cb.par[k] >= 0; k = int(cb.parIdx[k]) {
		s.lens = ch.expand(cb.par[k], true, s.lens, &s.stack)
	}
	for _, l := range s.lens {
		d += l
	}
	return d
}

// expand appends the original-edge lengths of the path arc g
// represents, in traversal order (from→to, or to→from when rev).
// Shortcuts recurse through the middle node's up-arc block with an
// explicit stack; the second segment is pushed first so pops emit the
// path in order.
func (ch *chState) expand(g int32, rev bool, lens []float64, stack *[]unpackFrame) []float64 {
	st := append((*stack)[:0], unpackFrame{g: g, rev: rev})
	for len(st) > 0 {
		f := st[len(st)-1]
		st = st[:len(st)-1]
		mid := ch.upMid[f.g]
		if mid < 0 {
			lens = append(lens, ch.upLen[f.g])
			continue
		}
		u, w := ch.upFrom[f.g], ch.upTo[f.g]
		if f.rev {
			u, w = w, u
		}
		st = append(st,
			unpackFrame{g: ch.findUpArc(mid, w), rev: false},
			unpackFrame{g: ch.findUpArc(mid, u), rev: true})
	}
	*stack = st
	return lens
}

// chSSSP fills dist with the canonical single-source vector through
// the hierarchy: a PHAST pass (upward Dijkstra from src, then one
// downward scan in decreasing rank order) yields every node's distance
// up to float rounding, and ascending order of those values is a
// topological order of the canonical forward-relaxation dependency —
// a canonical argmin predecessor is nearer by at least one original
// edge (≥ minEdge), which dwarfs the PHAST rounding error whenever
// chSweepMinEdge gates the sweep in. One relaxation replay over the
// original adjacency in that order therefore reproduces sssp's
// canonical labels byte for byte (TestCHSweepMatchesSSSP pins it).
// order is a reusable buffer; the grown slice is returned.
func (m *NetworkMetric) chSSSP(ch *chState, src int32, dist []float64, h *nheap, order []int32) []int32 {
	n := len(m.nodes)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	h.clear()
	dist[src] = 0
	h.push(0, src)
	for !h.empty() {
		e := h.pop()
		if e.key > dist[e.v] {
			continue // stale entry from lazy decrease-key
		}
		for g := ch.upOff[e.v]; g < ch.upOff[e.v+1]; g++ {
			if nd := e.key + ch.upLen[g]; nd < dist[ch.upTo[g]] {
				dist[ch.upTo[g]] = nd
				h.push(nd, ch.upTo[g])
			}
		}
	}
	for i := n - 1; i >= 0; i-- {
		v := ch.byRank[i]
		dv := dist[v]
		if math.IsInf(dv, 1) {
			continue
		}
		for g := ch.downOff[v]; g < ch.downOff[v+1]; g++ {
			if nd := dv + ch.downLen[g]; nd < dist[ch.downTo[g]] {
				dist[ch.downTo[g]] = nd
			}
		}
	}

	order = order[:0]
	for v := 0; v < n; v++ {
		order = append(order, int32(v))
	}
	slices.SortFunc(order, func(x, y int32) int { return cmp.Compare(dist[x], dist[y]) })
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[src] = 0
	for _, v := range order {
		dv := dist[v]
		for _, a := range m.adj[v] {
			if nd := dv + a.length; nd < dist[a.to] {
				dist[a.to] = nd
			}
		}
	}
	return order
}

// bulkSSSP dispatches one bulk single-source sweep: the hierarchy
// sweep when it is built and safe (no degenerate edges), else the
// plain Dijkstra sweep. Both fill the identical canonical vector.
func (m *NetworkMetric) bulkSSSP(src int32, dist []float64, h *nheap, order *[]int32) {
	if ch := m.hierarchy(); ch != nil && ch.minEdge > chSweepMinEdge {
		*order = m.chSSSP(ch, src, dist, h, *order)
		return
	}
	m.sssp(src, dist, h)
}
