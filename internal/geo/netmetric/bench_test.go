package netmetric

import (
	"testing"

	"repro/internal/datagen"
	"repro/internal/geo"
)

// BenchmarkNetworkMetric measures Dist on the paper-shaped workload
// (clustered points on a 32x32 network) and reports the node-pair cache
// hit rate — the number that decides whether shared-metric batches
// amortize their Dijkstras.
func BenchmarkNetworkMetric(b *testing.B) {
	net := datagen.NewNetwork(32, space, 2008)
	pts := net.Points(datagen.Config{N: 4096, Dist: datagen.Clustered, Seed: 1})
	m := FromNetwork(net)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pts[i%len(pts)]
		q := pts[(i*31+7)%len(pts)]
		m.Dist(p, q)
	}
	b.StopTimer()
	st := m.Stats()
	b.ReportMetric(st.NodeHitRate(), "node-cache-hit-rate")
	b.ReportMetric(float64(st.NodeMisses), "dijkstras")
}

// BenchmarkNetworkMetricCold isolates the uncached cost: every
// iteration queries a fresh metric, so each Dist pays its snap and
// bidirectional Dijkstra in full.
func BenchmarkNetworkMetricCold(b *testing.B) {
	net := datagen.NewNetwork(32, space, 2008)
	pts := net.Points(datagen.Config{N: 256, Dist: datagen.Uniform, Seed: 2})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := FromNetwork(net)
		m.Dist(pts[i%len(pts)], pts[(i+1)%len(pts)])
	}
}

// BenchmarkNetworkMetricParallel exercises the concurrent read path the
// engine's workers take against a warm shared cache.
func BenchmarkNetworkMetricParallel(b *testing.B) {
	net := datagen.NewNetwork(32, space, 2008)
	pts := net.Points(datagen.Config{N: 1024, Dist: datagen.Clustered, Seed: 3})
	m := FromNetwork(net)
	// Warm the caches.
	for i := 0; i+1 < len(pts); i += 2 {
		m.Dist(pts[i], pts[i+1])
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			m.Dist(pts[i%len(pts)], pts[(i*17+5)%len(pts)])
			i++
		}
	})
	b.StopTimer()
	b.ReportMetric(m.Stats().NodeHitRate(), "node-cache-hit-rate")
}

var sinkDist float64

// BenchmarkEuclideanBaseline anchors the comparison: the straight-line
// metric the rest of the repo defaults to.
func BenchmarkEuclideanBaseline(b *testing.B) {
	pts := datagen.NewNetwork(32, space, 2008).Points(datagen.Config{N: 1024, Dist: datagen.Clustered, Seed: 3})
	for i := 0; i < b.N; i++ {
		sinkDist = geo.Euclidean.Dist(pts[i%len(pts)], pts[(i*17+5)%len(pts)])
	}
}
