package netmetric

import (
	"testing"

	"repro/internal/datagen"
	"repro/internal/geo"
)

// BenchmarkNetworkMetric measures Dist on the paper-shaped workload
// (clustered points on a 32x32 network) and reports the node-pair cache
// hit rate — the number that decides whether shared-metric batches
// amortize their Dijkstras.
func BenchmarkNetworkMetric(b *testing.B) {
	net := datagen.NewNetwork(32, space, 2008)
	pts := net.Points(datagen.Config{N: 4096, Dist: datagen.Clustered, Seed: 1})
	m := FromNetwork(net)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pts[i%len(pts)]
		q := pts[(i*31+7)%len(pts)]
		m.Dist(p, q)
	}
	b.StopTimer()
	st := m.Stats()
	b.ReportMetric(st.NodeHitRate(), "node-cache-hit-rate")
	b.ReportMetric(float64(st.NodeMisses), "dijkstras")
}

// BenchmarkNetworkMetricCold isolates the uncached cost the way a cold
// solve pays it: every iteration builds a fresh metric and runs a batch
// of point queries, so the one-time ALT preprocessing is amortized over
// the batch exactly as it is over an instance's P×C distance calls.
func BenchmarkNetworkMetricCold(b *testing.B) {
	net := datagen.NewNetwork(32, space, 2008)
	pts := net.Points(datagen.Config{N: 256, Dist: datagen.Uniform, Seed: 2})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := FromNetwork(net)
		for j := 0; j < 64; j++ {
			k := (i*64 + j) % len(pts)
			m.Dist(pts[k], pts[(k+1)%len(pts)])
		}
	}
}

// BenchmarkNetworkMetricPointQuery compares the cold point-query
// backends on identical node pairs: the legacy bidirectional baseline,
// the plain forward Dijkstra, the default ALT A*, and the contraction
// hierarchy (one-time preprocessing is excluded here — BENCH_net.json
// charges it to the end-to-end solve where it belongs).
func BenchmarkNetworkMetricPointQuery(b *testing.B) {
	m := FromNetwork(datagen.NewNetwork(32, space, 2008))
	m.SetCH(1)
	lm := m.landmarks()
	ch := m.hierarchy()
	pairs := testPairs(m, 1024, 11)
	b.Run("bidi", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pr := pairs[i%len(pairs)]
			sinkDist = m.bidiDijkstra(pr[0], pr[1])
		}
	})
	b.Run("plain", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pr := pairs[i%len(pairs)]
			sinkDist = m.forwardDijkstra(pr[0], pr[1])
		}
	})
	b.Run("alt", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pr := pairs[i%len(pairs)]
			sinkDist = m.astar(pr[0], pr[1], lm)
		}
	})
	b.Run("ch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pr := pairs[i%len(pairs)]
			sinkDist = m.chDist(ch, pr[0], pr[1])
		}
	})
}

// BenchmarkCHLargeGrid is the scale the hierarchy exists for: cold
// point queries on the 128x128 benchmark grid (16384 nodes), where ALT
// still expands thousands of nodes per query. The build sub-benchmark
// prices the one-time contraction so the preprocessing cost stays
// visible next to the per-query win; CI smokes this family with
// -bench=CH -benchtime=1x.
func BenchmarkCHLargeGrid(b *testing.B) {
	net := datagen.NewNetwork(128, space, 2008)
	b.Run("build", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m := FromNetwork(net)
			m.SetCH(1)
			if m.hierarchy() == nil {
				b.Fatal("hierarchy did not build")
			}
		}
	})
	m := FromNetwork(net)
	m.SetCH(1)
	ch := m.hierarchy()
	lm := m.landmarks()
	pairs := testPairs(m, 4096, 11)
	b.Run("query", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pr := pairs[i%len(pairs)]
			sinkDist = m.chDist(ch, pr[0], pr[1])
		}
	})
	b.Run("alt-query", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pr := pairs[i%len(pairs)]
			sinkDist = m.astar(pr[0], pr[1], lm)
		}
	})
	// The solver shape: one provider queried against a run of
	// customers, which is what the scatter fast path in chDist exists
	// for. Rotate the source every 4096 queries, mirroring a solve's
	// per-provider edge batches.
	b.Run("query-run", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			src := pairs[(i/4096)%len(pairs)][0]
			sinkDist = m.chDist(ch, src, pairs[i%len(pairs)][1])
		}
	})
}

// BenchmarkManyToMany measures the bulk sweep at roughly the default
// ccabench instance shape (|Q|=50 sources, |P|=2000 targets): one
// matrix fill versus what would otherwise be |Q|·|P| point queries.
func BenchmarkManyToMany(b *testing.B) {
	net := datagen.NewNetwork(32, space, 2008)
	m := FromNetwork(net)
	sources := net.Points(datagen.Config{N: 50, Dist: datagen.Uniform, Seed: 12})
	targets := net.Points(datagen.Config{N: 2000, Dist: datagen.Clustered, Seed: 13})
	out := make([]float64, len(sources)*len(targets))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out = m.ManyToManyInto(sources, targets, out)
	}
}

// BenchmarkNetworkMetricParallel exercises the concurrent read path the
// engine's workers take against a warm shared cache.
func BenchmarkNetworkMetricParallel(b *testing.B) {
	net := datagen.NewNetwork(32, space, 2008)
	pts := net.Points(datagen.Config{N: 1024, Dist: datagen.Clustered, Seed: 3})
	m := FromNetwork(net)
	// Warm the caches.
	for i := 0; i+1 < len(pts); i += 2 {
		m.Dist(pts[i], pts[i+1])
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			m.Dist(pts[i%len(pts)], pts[(i*17+5)%len(pts)])
			i++
		}
	})
	b.StopTimer()
	b.ReportMetric(m.Stats().NodeHitRate(), "node-cache-hit-rate")
}

var sinkDist float64

// BenchmarkEuclideanBaseline anchors the comparison: the straight-line
// metric the rest of the repo defaults to.
func BenchmarkEuclideanBaseline(b *testing.B) {
	pts := datagen.NewNetwork(32, space, 2008).Points(datagen.Config{N: 1024, Dist: datagen.Clustered, Seed: 3})
	for i := 0; i < b.N; i++ {
		sinkDist = geo.Euclidean.Dist(pts[i%len(pts)], pts[(i*17+5)%len(pts)])
	}
}

// BenchmarkCHConeBuild prices one cold hub-label cone on the 128-grid
// hierarchy — the dominant cost of a cold CH point query (a probe pays
// up to two of these for never-seen endpoints), and the number the
// topological heap-free build keeps small.
func BenchmarkCHConeBuild(b *testing.B) {
	net := datagen.NewNetwork(128, space, 2008)
	m := FromNetwork(net)
	m.SetCH(1)
	ch := m.hierarchy()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := m.buildCone(ch, int32(i%len(m.nodes)))
		if len(c.nodes) == 0 {
			b.Fatal("empty cone")
		}
	}
}
