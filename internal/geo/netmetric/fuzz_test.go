package netmetric

import (
	"math"
	"sync"
	"testing"

	"repro/internal/datagen"
	"repro/internal/geo"
)

// fuzzMetric is the shared fuzz-target network; building it once keeps
// the per-input cost at a few cached lookups.
var fuzzMetric = sync.OnceValue(func() *NetworkMetric {
	return FromNetwork(datagen.NewNetwork(12, space, 2008))
})

// clampToSpace pulls arbitrary fuzzed coordinates into a sane window
// around the data space (2x the space on every side), discarding NaN and
// infinities: the metric contract is stated over finite points.
func clampToSpace(v float64) (float64, bool) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, false
	}
	lo, hi := -1000.0, 2000.0
	return math.Max(lo, math.Min(hi, v)), true
}

// FuzzMetricContract asserts the geo.Metric contract plus the
// lower-bound property the exact algorithms' pruning relies on:
// non-negativity, symmetry, Dist >= Euclidean, and the triangle
// inequality for shortest-path distances between snapped nodes.
func FuzzMetricContract(f *testing.F) {
	f.Add(0.0, 0.0, 1000.0, 1000.0, 500.0, 500.0)
	f.Add(13.5, 900.25, 800.0, 17.75, 1.0, 2.0)
	f.Add(-50.0, 1200.0, 333.3, 333.3, 999.0, 0.0)
	f.Fuzz(func(t *testing.T, x1, y1, x2, y2, x3, y3 float64) {
		coords := [6]float64{x1, y1, x2, y2, x3, y3}
		for i, v := range coords {
			c, ok := clampToSpace(v)
			if !ok {
				t.Skip("non-finite input")
			}
			coords[i] = c
		}
		p := geo.Point{X: coords[0], Y: coords[1]}
		q := geo.Point{X: coords[2], Y: coords[3]}
		r := geo.Point{X: coords[4], Y: coords[5]}
		m := fuzzMetric()

		dpq := m.Dist(p, q)
		if dpq < 0 {
			t.Fatalf("negative distance %g for %v -> %v", dpq, p, q)
		}
		if dqp := m.Dist(q, p); math.Abs(dpq-dqp) > 1e-9*(1+dpq) {
			t.Fatalf("asymmetric: Dist(p,q)=%g Dist(q,p)=%g", dpq, dqp)
		}
		if euclid := p.Dist(q); dpq < euclid-1e-9*(1+euclid) {
			t.Fatalf("lower bound violated: network %g < Euclidean %g for %v -> %v",
				dpq, euclid, p, q)
		}

		// Triangle inequality on the snapped nodes (shortest-path node
		// distances are a true metric; the point-level Dist is not,
		// because snap offsets are paid per call).
		a, b, c := m.SnapNode(p), m.SnapNode(q), m.SnapNode(r)
		ab, bc, ac := m.NodeDist(a, b), m.NodeDist(b, c), m.NodeDist(a, c)
		if ac > ab+bc+1e-9*(1+ac) {
			t.Fatalf("node triangle inequality violated: d(%d,%d)=%g > d(%d,%d)+d(%d,%d)=%g+%g",
				a, c, ac, a, b, b, c, ab, bc)
		}
		if aa := m.NodeDist(a, a); aa != 0 {
			t.Fatalf("NodeDist(%d,%d) = %g, want 0", a, a, aa)
		}
	})
}
