//go:build race

package netmetric

// The race detector intentionally defeats sync.Pool reuse to widen its
// observation window, so allocation budgets cannot hold under -race.
func init() { raceEnabled = true }
