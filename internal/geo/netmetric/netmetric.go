// Package netmetric implements geo.Metric over a road network: the
// distance between two points is the length of the shortest path along
// the network's edges, plus the straight-line offsets from each point to
// its snap position on the nearest edge.
//
// The paper's evaluation places every point *on* a network edge (§5.1),
// so for generated workloads the snap offsets are zero and Dist is the
// pure travel distance. Arbitrary points (e.g. CLI CSV input) snap to
// the nearest edge first.
//
// Contract. Every edge is weighted by the Euclidean length of its
// segment, and Dist(p,q) is the length of an actual polyline from p to
// q in the plane (p → snap(p) → network path → snap(q) → q), so
//
//	Dist(p,q) >= EuclideanDist(p,q)
//
// always holds — the lower-bound property geo.Metric requires for the
// exact algorithms' R-tree pruning (Theorems 1–2) to remain exact.
// Dist is symmetric and non-negative; note Dist(p,p) = 2·offset(p),
// which is 0 exactly when p lies on the network (the generated
// workloads' case). Shortest-path distances between snapped nodes
// satisfy the triangle inequality (see NodeDist).
//
// Concurrency. A NetworkMetric is safe for concurrent use: the snap and
// node-pair distance caches are bounded, concurrency-safe LRUs
// (internal/lru), so cca.Engine workers can share one metric instance
// (and its warm caches) across a whole batch — and a long-lived server
// process holds a fixed-size working set instead of growing the caches
// without bound. Both caches are sharded by key hash (lru.Sharded), so
// warm hits from many workers take independent shard mutexes instead of
// convoying behind one cache-wide lock (BenchmarkNetworkMetricParallel
// here and BenchmarkWarmHitParallel* in internal/lru measure the win).
// Cache capacities default to DefaultSnapCacheSize and
// DefaultNodeCacheSize; tune them with SetCacheCapacity before first
// use, and read eviction pressure from Stats.
package netmetric

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/geo"
	"repro/internal/lru"
)

// Name is the registry/CLI name of this distance backend.
const Name = "network"

// arc is one directed half of an undirected edge in the routing graph.
type arc struct {
	to     int32
	length float64
}

// snapPos is a point's position on the network: the nearest (real) edge,
// the projection parameter t along it, the projected point, and the
// straight-line offset from the original point to the projection.
type snapPos struct {
	edge   int32
	t      float64
	pos    geo.Point
	offset float64
}

// Default cache capacities: generous working sets for the paper-scale
// workloads (every snap entry is one customer/provider point; every
// node entry one shortest-path distance), yet bounded so a server
// process serving an endless stream of scenarios cannot grow them
// without limit.
const (
	DefaultSnapCacheSize = 1 << 17 // ≈131K snapped points
	DefaultNodeCacheSize = 1 << 19 // ≈524K node-pair distances
	DefaultPairCacheSize = 1 << 20 // ≈1M finished point-pair distances
)

// cacheShards is the lock-shard count of the snap and node-pair caches.
// 32 keeps shard-mutex collisions rare for the worker counts an engine
// realistically runs (GOMAXPROCS on big servers) while leaving thousands
// of entries per shard even at small SetCacheCapacity values.
const cacheShards = 32

// CacheStats reports the metric's cache activity. The node-pair numbers
// are the interesting ones: a hit avoids a bidirectional Dijkstra, and
// sustained evictions mean the working set outgrew the cache — size it
// up with SetCacheCapacity.
type CacheStats struct {
	NodeHits      uint64 // node-pair distances served from the cache
	NodeMisses    uint64 // node-pair distances computed by Dijkstra
	NodeEvictions uint64 // node-pair entries displaced by the LRU bound
	SnapHits      uint64 // snap positions served from the cache
	SnapMisses    uint64 // snap positions computed against the edge grid
	SnapEvictions uint64 // snap entries displaced by the LRU bound
	PairHits      uint64 // whole Dist calls served from the point-pair cache
	PairMisses    uint64 // Dist calls that ran the snap + node-pair path
	PairEvictions uint64 // point-pair entries displaced by the LRU bound
}

// NodeHitRate returns the fraction of node-pair lookups served from the
// cache (0 when no lookups happened).
func (s CacheStats) NodeHitRate() float64 {
	total := s.NodeHits + s.NodeMisses
	if total == 0 {
		return 0
	}
	return float64(s.NodeHits) / float64(total)
}

// NetworkMetric is a shortest-path distance backend over a road network.
// Build one with New or FromNetwork.
type NetworkMetric struct {
	nodes []geo.Point
	// edges holds the real (snappable) edges first, then any virtual
	// bridge edges appended by connectComponents; realEdges counts the
	// former.
	edges     [][2]int32
	lengths   []float64
	realEdges int
	adj       [][]arc

	grid snapGrid

	// ALT landmark state, built lazily on first shortest-path query
	// (see landmarks.go). lmCount is the configured landmark count;
	// 0 disables ALT pruning, negative selects AutoLandmarks by node
	// count. legacyBidi reroutes point queries to the pre-ALT
	// bidirectional Dijkstra (benchmark baseline only).
	lmCount    int
	lmOnce     *sync.Once
	lm         *landmarkState
	legacyBidi bool

	// Contraction-hierarchy state, built lazily like the landmarks
	// (see ch.go). chMode: −1 auto by network size, 0 off, 1 on.
	chMode                 int
	chOnce                 *sync.Once
	ch                     *chState
	chQueries, chFallbacks atomic.Uint64

	// Cone (hub-label) cache of the hierarchy backend: node → its
	// upward search space, built lazily per queried node (see ch.go).
	chLabelMu sync.RWMutex
	chLabels  map[int32]*chCone
	chLabelN  int

	nodeCache *lru.Sharded[[2]int32, float64]
	snapCache *lru.Sharded[geo.Point, snapPos]
	pairCache *lru.Sharded[pointPair, float64]
}

// pointPair keys the finished-distance cache by the ordered query
// points themselves. Solvers re-evaluate the same provider–customer
// edge many times across augmenting iterations, and each repeat through
// the layered path costs two snap lookups plus four node-pair lookups;
// one hit here replaces all six. Ordered (not normalized) because Dist
// is canonical per ordered pair, like the node-pair cache.
type pointPair struct {
	p, q geo.Point
}

// New builds a NetworkMetric from nodes and undirected edges. Edge
// weights are the Euclidean lengths of the segments. Disconnected
// components are bridged with virtual edges (straight segments between
// the closest node pairs), so every distance is finite; bridges are
// routable but never snap targets. It returns an error on an empty
// network or an out-of-range edge endpoint.
func New(nodes []geo.Point, edges [][2]int32) (*NetworkMetric, error) {
	if len(nodes) == 0 || len(edges) == 0 {
		return nil, fmt.Errorf("netmetric: need at least one node and one edge (got %d, %d)", len(nodes), len(edges))
	}
	m := &NetworkMetric{
		nodes:     append([]geo.Point(nil), nodes...),
		realEdges: len(edges),
		lmCount:   -1, // automatic: AutoLandmarks by node count
		lmOnce:    new(sync.Once),
		chMode:    -1, // automatic: on at DefaultCHMinNodes nodes
		chOnce:    new(sync.Once),
		nodeCache: lru.NewSharded[[2]int32, float64](DefaultNodeCacheSize, cacheShards),
		snapCache: lru.NewSharded[geo.Point, snapPos](DefaultSnapCacheSize, cacheShards),
		pairCache: lru.NewSharded[pointPair, float64](DefaultPairCacheSize, cacheShards),
	}
	m.edges = make([][2]int32, len(edges), len(edges)+8)
	copy(m.edges, edges)
	for i, e := range m.edges {
		if e[0] < 0 || int(e[0]) >= len(nodes) || e[1] < 0 || int(e[1]) >= len(nodes) {
			return nil, fmt.Errorf("netmetric: edge %d endpoints %v out of range [0,%d)", i, e, len(nodes))
		}
	}
	m.connectComponents()
	m.lengths = make([]float64, len(m.edges))
	m.adj = make([][]arc, len(m.nodes))
	for i, e := range m.edges {
		l := m.nodes[e[0]].Dist(m.nodes[e[1]])
		m.lengths[i] = l
		m.adj[e[0]] = append(m.adj[e[0]], arc{to: e[1], length: l})
		m.adj[e[1]] = append(m.adj[e[1]], arc{to: e[0], length: l})
	}
	m.grid = buildSnapGrid(m.nodes, m.edges[:m.realEdges])
	return m, nil
}

// Name implements geo.Metric.
func (m *NetworkMetric) Name() string { return Name }

// NumNodes returns the number of network nodes.
func (m *NetworkMetric) NumNodes() int { return len(m.nodes) }

// NumEdges returns the number of real (snappable) edges.
func (m *NetworkMetric) NumEdges() int { return m.realEdges }

// Bridges returns the number of virtual edges added to connect the
// network's components (0 for a connected network).
func (m *NetworkMetric) Bridges() int { return len(m.edges) - m.realEdges }

// SetCacheCapacity rebuilds the snap and node-pair caches with the
// given entry bounds (values < 1 keep the defaults), dropping any
// cached content and counters. The point-pair cache is rebuilt at its
// default size, scaled down to the node-pair bound when that is smaller
// (a caller shrinking the layered caches wants the top layer bounded
// too). It swaps the cache pointers without synchronization, so it must
// be called during setup, before the metric is shared across goroutines
// — resizing while Dist runs concurrently is a data race.
func (m *NetworkMetric) SetCacheCapacity(snapEntries, nodeEntries int) {
	if snapEntries < 1 {
		snapEntries = DefaultSnapCacheSize
	}
	if nodeEntries < 1 {
		nodeEntries = DefaultNodeCacheSize
	}
	m.snapCache = lru.NewSharded[geo.Point, snapPos](snapEntries, cacheShards)
	m.nodeCache = lru.NewSharded[[2]int32, float64](nodeEntries, cacheShards)
	m.pairCache = lru.NewSharded[pointPair, float64](min(DefaultPairCacheSize, nodeEntries*2), cacheShards)
}

// Stats returns a snapshot of the cache counters.
func (m *NetworkMetric) Stats() CacheStats {
	node := m.nodeCache.Stats()
	snap := m.snapCache.Stats()
	pair := m.pairCache.Stats()
	return CacheStats{
		NodeHits:      node.Hits,
		NodeMisses:    node.Misses,
		NodeEvictions: node.Evictions,
		SnapHits:      snap.Hits,
		SnapMisses:    snap.Misses,
		SnapEvictions: snap.Evictions,
		PairHits:      pair.Hits,
		PairMisses:    pair.Misses,
		PairEvictions: pair.Evictions,
	}
}

// Dist implements geo.Metric: offset(p) + travel(snap(p), snap(q)) +
// offset(q). The finished value is memoized per ordered point pair:
// solvers re-evaluate edges across augmenting iterations, and serving
// the repeat from one lookup instead of re-walking the snap and
// node-pair layers is the difference between the metric and the solver
// dominating a large solve. Racing misses compute identical values, so
// the duplicate Put is harmless.
func (m *NetworkMetric) Dist(p, q geo.Point) float64 {
	k := pointPair{p: p, q: q}
	if d, ok := m.pairCache.Get(k); ok {
		return d
	}
	sp := m.snap(p)
	sq := m.snap(q)
	d := sp.offset + m.pathDist(sp, sq) + sq.offset
	m.pairCache.Put(k, d)
	return d
}

// Snap returns p's position on the network (the nearest point of the
// nearest real edge) and the straight-line offset to it.
func (m *NetworkMetric) Snap(p geo.Point) (geo.Point, float64) {
	s := m.snap(p)
	return s.pos, s.offset
}

// SnapNode returns the network node nearest to p's snap position — the
// endpoint of the snap edge closest along the edge. Property tests use
// it to exercise the node-level triangle inequality.
func (m *NetworkMetric) SnapNode(p geo.Point) int32 {
	s := m.snap(p)
	e := m.edges[s.edge]
	if s.t <= 0.5 {
		return e[0]
	}
	return e[1]
}

// NodeDist returns the shortest-path distance between two network nodes.
// It panics on out-of-range indexes. Node distances are a metric on the
// node set: non-negative, zero on the diagonal, symmetric and
// triangle-inequality consistent up to float rounding. The returned
// float is canonical per *ordered* pair — the fixed point of forward
// relaxation from a (see search.go) — so NodeDist(a,b) and NodeDist(b,a)
// may differ in the last ulps; every backend (plain, ALT, bulk table)
// agrees byte-for-byte on the oriented value, which is what the
// conformance suite pins.
func (m *NetworkMetric) NodeDist(a, b int32) float64 {
	if a < 0 || int(a) >= len(m.nodes) || b < 0 || int(b) >= len(m.nodes) {
		panic(fmt.Sprintf("netmetric: NodeDist(%d, %d) out of range [0,%d)", a, b, len(m.nodes)))
	}
	return m.nodeDist(a, b)
}

// pathDist returns the travel distance between two snap positions.
func (m *NetworkMetric) pathDist(sp, sq snapPos) float64 {
	ep, eq := m.edges[sp.edge], m.edges[sq.edge]
	lp, lq := m.lengths[sp.edge], m.lengths[sq.edge]
	best := math.Inf(1)
	if sp.edge == sq.edge {
		best = math.Abs(sp.t-sq.t) * lp
	}
	// Walking distances from each snap position to its edge endpoints.
	pw := [2]float64{sp.t * lp, (1 - sp.t) * lp}
	qw := [2]float64{sq.t * lq, (1 - sq.t) * lq}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			// A path through the endpoints can beat the direct walk
			// along a shared edge only via a shortcut elsewhere in the
			// network, but it is always a valid path — take the min.
			if d := pw[i] + m.nodeDist(ep[i], eq[j]) + qw[j]; d < best {
				best = d
			}
		}
	}
	return best
}

// snap resolves p's snap position through the cache. Two goroutines
// missing on the same point both compute it — identical results, so
// the duplicate Put is harmless.
func (m *NetworkMetric) snap(p geo.Point) snapPos {
	if s, ok := m.snapCache.Get(p); ok {
		return s
	}
	ei := m.grid.nearestEdge(p, m.nodes, m.edges)
	e := m.edges[ei]
	t, pos := projectOntoSegment(p, m.nodes[e[0]], m.nodes[e[1]])
	s := snapPos{edge: ei, t: t, pos: pos, offset: p.Dist(pos)}
	m.snapCache.Put(p, s)
	return s
}

// nodeDist resolves an oriented node-pair distance through the cache,
// running a point search on a miss. The cache key is the ordered pair:
// the canonical a→b value differs from b→a in the last ulps, and every
// caller orients consistently (provider side first), so the directed
// key costs little extra cache pressure.
func (m *NetworkMetric) nodeDist(a, b int32) float64 {
	if a == b {
		return 0
	}
	key := [2]int32{a, b}
	if d, ok := m.nodeCache.Get(key); ok {
		return d
	}
	d := m.searchDist(a, b)
	m.nodeCache.Put(key, d)
	return d
}

// searchDist runs one cold point query a→b with the configured backend:
// the contraction hierarchy when enabled (large networks by default),
// ALT A* when landmarks are enabled, plain forward Dijkstra when both
// are disabled, or the legacy bidirectional baseline when benchmarking.
// All but the baseline return the identical canonical float.
func (m *NetworkMetric) searchDist(a, b int32) float64 {
	if m.legacyBidi {
		return m.bidiDijkstra(a, b)
	}
	if ch := m.hierarchy(); ch != nil {
		return m.chDist(ch, a, b)
	}
	if lm := m.landmarks(); lm != nil {
		return m.astar(a, b, lm)
	}
	return m.forwardDijkstra(a, b)
}

// projectOntoSegment returns the parameter t ∈ [0,1] and position of the
// point of segment ab closest to p.
func projectOntoSegment(p, a, b geo.Point) (float64, geo.Point) {
	abx, aby := b.X-a.X, b.Y-a.Y
	len2 := abx*abx + aby*aby
	t := 0.0
	if len2 > 0 {
		t = ((p.X-a.X)*abx + (p.Y-a.Y)*aby) / len2
		t = math.Max(0, math.Min(1, t))
	}
	return t, geo.Point{X: a.X + t*abx, Y: a.Y + t*aby}
}

// connectComponents appends virtual bridge edges until the node set is
// one component: union-find over the real edges, then each remaining
// component is linked to the growing main component through its closest
// node pair. Deterministic (no randomness, stable iteration orders).
func (m *NetworkMetric) connectComponents() {
	parent := make([]int32, len(m.nodes))
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(x int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int32) { parent[find(a)] = find(b) }
	for _, e := range m.edges {
		union(e[0], e[1])
	}
	// Group nodes by root; the component containing node 0 seeds "main".
	comps := make(map[int32][]int32)
	for i := range m.nodes {
		r := find(int32(i))
		comps[r] = append(comps[r], int32(i))
	}
	if len(comps) == 1 {
		return
	}
	main := comps[find(0)]
	delete(comps, find(0))
	// Deterministic order: repeatedly bridge the component whose closest
	// approach to the main component is smallest.
	for len(comps) > 0 {
		bestD := math.Inf(1)
		var bestRoot int32
		var bestA, bestB int32 // bestA in main, bestB in the component
		for root, nodes := range comps {
			for _, u := range nodes {
				for _, v := range main {
					d := m.nodes[u].Dist(m.nodes[v])
					// Strict tie-break on indexes keeps map iteration
					// order from leaking into the result.
					if d < bestD || (d == bestD && (v < bestA || (v == bestA && u < bestB))) {
						bestD, bestRoot, bestA, bestB = d, root, v, u
					}
				}
			}
		}
		m.edges = append(m.edges, [2]int32{bestA, bestB})
		main = append(main, comps[bestRoot]...)
		delete(comps, bestRoot)
	}
}
