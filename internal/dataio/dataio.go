// Package dataio reads and writes the CSV dataset formats used by the
// command-line tools (ccagen, ccarun):
//
//	providers: x,y,capacity
//	customers: id,x,y
//	matchings: provider,customer,dist
//
// Blank lines and lines starting with '#' are ignored.
package dataio

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/rtree"
)

// WriteProviders writes providers as x,y,capacity rows.
func WriteProviders(w io.Writer, providers []core.Provider) error {
	bw := bufio.NewWriter(w)
	for _, p := range providers {
		if _, err := fmt.Fprintf(bw, "%.6f,%.6f,%d\n", p.Pt.X, p.Pt.Y, p.Cap); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadProviders parses x,y,capacity rows.
func ReadProviders(r io.Reader) ([]core.Provider, error) {
	var out []core.Provider
	err := eachRecord(r, 3, func(line int, f []string) error {
		x, err := parseFloat(f[0])
		if err != nil {
			return fmt.Errorf("line %d: x: %w", line, err)
		}
		y, err := parseFloat(f[1])
		if err != nil {
			return fmt.Errorf("line %d: y: %w", line, err)
		}
		k, err := strconv.Atoi(strings.TrimSpace(f[2]))
		if err != nil {
			return fmt.Errorf("line %d: capacity: %w", line, err)
		}
		if k <= 0 {
			return fmt.Errorf("line %d: capacity must be positive, got %d", line, k)
		}
		out = append(out, core.Provider{Pt: geo.Point{X: x, Y: y}, Cap: k})
		return nil
	})
	return out, err
}

// WriteCustomers writes customers as id,x,y rows.
func WriteCustomers(w io.Writer, items []rtree.Item) error {
	bw := bufio.NewWriter(w)
	for _, it := range items {
		if _, err := fmt.Fprintf(bw, "%d,%.6f,%.6f\n", it.ID, it.Pt.X, it.Pt.Y); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCustomers parses id,x,y rows.
func ReadCustomers(r io.Reader) ([]rtree.Item, error) {
	var out []rtree.Item
	seen := make(map[int64]bool)
	err := eachRecord(r, 3, func(line int, f []string) error {
		id, err := strconv.ParseInt(strings.TrimSpace(f[0]), 10, 64)
		if err != nil {
			return fmt.Errorf("line %d: id: %w", line, err)
		}
		if seen[id] {
			return fmt.Errorf("line %d: duplicate customer id %d", line, id)
		}
		seen[id] = true
		x, err := parseFloat(f[1])
		if err != nil {
			return fmt.Errorf("line %d: x: %w", line, err)
		}
		y, err := parseFloat(f[2])
		if err != nil {
			return fmt.Errorf("line %d: y: %w", line, err)
		}
		out = append(out, rtree.Item{ID: id, Pt: geo.Point{X: x, Y: y}})
		return nil
	})
	return out, err
}

// WriteMatching writes pairs as provider,customer,dist rows.
func WriteMatching(w io.Writer, pairs []core.Pair) error {
	bw := bufio.NewWriter(w)
	for _, p := range pairs {
		if _, err := fmt.Fprintf(bw, "%d,%d,%.6f\n", p.Provider, p.CustomerID, p.Dist); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadProvidersFile and ReadCustomersFile are file-path conveniences.
func ReadProvidersFile(path string) ([]core.Provider, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out, err := ReadProviders(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return out, nil
}

// ReadCustomersFile reads a customer CSV from disk.
func ReadCustomersFile(path string) ([]rtree.Item, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out, err := ReadCustomers(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return out, nil
}

func parseFloat(s string) (float64, error) {
	return strconv.ParseFloat(strings.TrimSpace(s), 64)
}

// eachRecord scans CSV-ish lines, skipping blanks and '#' comments.
func eachRecord(r io.Reader, fields int, fn func(line int, f []string) error) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		parts := strings.Split(text, ",")
		if len(parts) != fields {
			return fmt.Errorf("line %d: want %d fields, got %d", line, fields, len(parts))
		}
		if err := fn(line, parts); err != nil {
			return err
		}
	}
	return sc.Err()
}
