package dataio

import (
	"bytes"
	"os"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/rtree"
)

func TestProvidersRoundTrip(t *testing.T) {
	in := []core.Provider{
		{Pt: geo.Point{X: 1.5, Y: 2.25}, Cap: 80},
		{Pt: geo.Point{X: 0, Y: 999.999999}, Cap: 1},
	}
	var buf bytes.Buffer
	if err := WriteProviders(&buf, in); err != nil {
		t.Fatal(err)
	}
	got, err := ReadProviders(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != in[0] || got[1] != in[1] {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestCustomersRoundTrip(t *testing.T) {
	in := []rtree.Item{
		{ID: 7, Pt: geo.Point{X: 3.5, Y: 4.5}},
		{ID: 0, Pt: geo.Point{X: 0, Y: 0}},
	}
	var buf bytes.Buffer
	if err := WriteCustomers(&buf, in); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCustomers(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != in[0] || got[1] != in[1] {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestCommentsAndBlanksSkipped(t *testing.T) {
	src := "# providers\n\n1,2,3\n  \n# trailing\n4,5,6\n"
	got, err := ReadProviders(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Cap != 3 || got[1].Cap != 6 {
		t.Fatalf("got %+v", got)
	}
}

func TestReadErrors(t *testing.T) {
	cases := map[string]string{
		"wrong field count": "1,2\n",
		"bad x":             "x,2,3\n",
		"bad capacity":      "1,2,three\n",
		"zero capacity":     "1,2,0\n",
		"negative capacity": "1,2,-5\n",
	}
	for name, src := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := ReadProviders(strings.NewReader(src)); err == nil {
				t.Fatalf("input %q must fail", src)
			}
		})
	}
	custCases := map[string]string{
		"bad id":       "x,1,2\n",
		"duplicate id": "1,0,0\n1,5,5\n",
		"bad y":        "1,2,y\n",
	}
	for name, src := range custCases {
		t.Run(name, func(t *testing.T) {
			if _, err := ReadCustomers(strings.NewReader(src)); err == nil {
				t.Fatalf("input %q must fail", src)
			}
		})
	}
}

func TestWriteMatching(t *testing.T) {
	pairs := []core.Pair{
		{Provider: 0, CustomerID: 5, Dist: 1.25},
		{Provider: 2, CustomerID: 9, Dist: 3},
	}
	var buf bytes.Buffer
	if err := WriteMatching(&buf, pairs); err != nil {
		t.Fatal(err)
	}
	want := "0,5,1.250000\n2,9,3.000000\n"
	if buf.String() != want {
		t.Fatalf("got %q want %q", buf.String(), want)
	}
}

func TestFileHelpers(t *testing.T) {
	dir := t.TempDir()
	ppath := dir + "/q.csv"
	cpath := dir + "/p.csv"
	if err := writeFile(ppath, "10,20,3\n"); err != nil {
		t.Fatal(err)
	}
	if err := writeFile(cpath, "0,1,2\n1,3,4\n"); err != nil {
		t.Fatal(err)
	}
	ps, err := ReadProvidersFile(ppath)
	if err != nil || len(ps) != 1 {
		t.Fatalf("%v %v", ps, err)
	}
	cs, err := ReadCustomersFile(cpath)
	if err != nil || len(cs) != 2 {
		t.Fatalf("%v %v", cs, err)
	}
	if _, err := ReadProvidersFile(dir + "/missing.csv"); err == nil {
		t.Fatal("missing file must fail")
	}
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}
