// Package obs is the repository's zero-dependency observability
// substrate: context-propagated phase spans (a lightweight trace of one
// solve's journey through server → engine → solver → core) and bounded
// histograms for latency distributions.
//
// The design center is the disabled path. Tracing is opt-in per request
// (trace=1 on /v1/solve, ccarun -trace); every other solve must pay
// nothing. Start on a context with no span installed returns the same
// context and a nil *Span without allocating, and every *Span method is
// a no-op on nil — so instrumentation sites write straight-line code
// with no "if tracing" branches, and the hot paths stay zero-alloc
// (pinned by AllocsPerRun in obs_test.go).
//
// Typical use:
//
//	root := obs.NewRoot("server")
//	ctx = obs.WithSpan(ctx, root)
//	...
//	ctx, span := obs.Start(ctx, "solve") // child of the context's span
//	span.SetStr("solver", name)
//	defer span.End()
//	...
//	root.End()
//	json.Marshal(root.Tree())
//
// Spans are safe for concurrent children (a streamed batch fans out
// goroutines that all append under the same root); attribute writes and
// tree reads are mutex-guarded per span.
package obs

import (
	"context"
	"math"
	"sync"
	"time"
)

// PointQuerySink names the root-span histogram sink the solver layer
// feeds per-Dist metric-query latencies into (seconds). The server
// installs its /metrics point-query histogram under this name on traced
// solves' roots, which is why that histogram is populated only by
// traced requests.
const PointQuerySink = "point_query"

// ctxKey is the context key the current span travels under.
type ctxKey struct{}

// Span is one timed phase of a trace. The zero value is not useful;
// build roots with NewRoot and children with StartChild/Start. A nil
// *Span is a valid no-op receiver for every method, so callers never
// branch on "is tracing on".
type Span struct {
	name  string
	start time.Time
	root  *Span // the tree's root (self for a root span); never nil

	mu       sync.Mutex
	dur      time.Duration
	ended    bool
	overlay  bool // duration overlaps sibling spans; excluded from self-time accounting
	attrs    []Attr
	children []*Span
	sinks    map[string]*Histogram // root only
}

// Attr is one span attribute. Exactly one of the value fields is
// meaningful, selected by kind.
type Attr struct {
	Key  string
	kind byte // 'i', 'f', 's'
	i    int64
	f    float64
	s    string
}

// Value returns the attribute's value as an any (int64, float64, or
// string).
func (a Attr) Value() any {
	switch a.kind {
	case 'f':
		return a.f
	case 's':
		return a.s
	default:
		return a.i
	}
}

// NewRoot starts a new trace and returns its root span.
func NewRoot(name string) *Span {
	s := &Span{name: name, start: time.Now()}
	s.root = s
	return s
}

// WithSpan returns a context carrying s as the current span. A nil span
// returns ctx unchanged.
func WithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, s)
}

// FromContext returns the context's current span, or nil when no tracer
// is installed (or ctx is nil).
func FromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}

// Start begins a child span of the context's current span and returns a
// derived context carrying it. When no span is installed it returns ctx
// unchanged and a nil span — the zero-alloc disabled path.
func Start(ctx context.Context, name string) (context.Context, *Span) {
	parent := FromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	child := parent.StartChild(name)
	return context.WithValue(ctx, ctxKey{}, child), child
}

// StartChild begins a child span without threading it through a
// context. Nil-safe: a nil receiver returns nil.
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	child := &Span{name: name, start: time.Now(), root: s.root}
	s.mu.Lock()
	s.children = append(s.children, child)
	s.mu.Unlock()
	return child
}

// AddTimed attaches an already-measured child span with an explicit
// duration — used for accumulated time that was not bracketed by a
// single Start/End pair (e.g. the sum of thousands of metric point
// queries). Nil-safe.
func (s *Span) AddTimed(name string, d time.Duration) *Span {
	if s == nil {
		return nil
	}
	child := &Span{name: name, root: s.root, dur: d, ended: true}
	s.mu.Lock()
	s.children = append(s.children, child)
	s.mu.Unlock()
	return child
}

// AddOverlay is AddTimed for time that was accumulated *inside* the
// sibling spans — e.g. metric point queries issued from within the
// flowgraph-build and augment phases. The overlay span reports where
// that time went without claiming it a second time: self-time
// accounting (SelfNS/SumSelfNS) skips overlay spans, so the tree still
// telescopes to the root duration. Nil-safe.
func (s *Span) AddOverlay(name string, d time.Duration) *Span {
	if s == nil {
		return nil
	}
	child := &Span{name: name, root: s.root, dur: d, ended: true, overlay: true}
	s.mu.Lock()
	s.children = append(s.children, child)
	s.mu.Unlock()
	return child
}

// End stamps the span's duration. Idempotent: the first End wins.
// Nil-safe.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		s.dur = time.Since(s.start)
		s.ended = true
	}
	s.mu.Unlock()
}

// SetInt sets an integer attribute. Nil-safe.
func (s *Span) SetInt(key string, v int64) {
	if s == nil {
		return
	}
	s.set(Attr{Key: key, kind: 'i', i: v})
}

// SetFloat sets a float attribute. Nil-safe.
func (s *Span) SetFloat(key string, v float64) {
	if s == nil {
		return
	}
	s.set(Attr{Key: key, kind: 'f', f: v})
}

// SetStr sets a string attribute. Nil-safe.
func (s *Span) SetStr(key, v string) {
	if s == nil {
		return
	}
	s.set(Attr{Key: key, kind: 's', s: v})
}

// set replaces an existing attribute with the same key, else appends.
func (s *Span) set(a Attr) {
	s.mu.Lock()
	for i := range s.attrs {
		if s.attrs[i].Key == a.Key {
			s.attrs[i] = a
			s.mu.Unlock()
			return
		}
	}
	s.attrs = append(s.attrs, a)
	s.mu.Unlock()
}

// SetSink installs a named histogram on the span's root, where any
// descendant can fetch it with Sink. Nil-safe (both receiver and h).
func (s *Span) SetSink(name string, h *Histogram) {
	if s == nil || h == nil {
		return
	}
	r := s.root
	r.mu.Lock()
	if r.sinks == nil {
		r.sinks = make(map[string]*Histogram)
	}
	r.sinks[name] = h
	r.mu.Unlock()
}

// Sink returns the root's histogram registered under name, or nil.
// Nil-safe, and a nil *Histogram observes nothing, so instrumentation
// sites call Sink(...).Observe(v) unconditionally.
func (s *Span) Sink(name string) *Histogram {
	if s == nil {
		return nil
	}
	r := s.root
	r.mu.Lock()
	h := r.sinks[name]
	r.mu.Unlock()
	return h
}

// TraceNode is the JSON form of a completed span (sub)tree. Durations
// are nanoseconds; attrs marshal as a sorted-key object (encoding/json
// sorts map keys), so two traces of the same request shape are
// structurally identical once dur_ns values are stripped.
type TraceNode struct {
	Name  string         `json:"name"`
	DurNS int64          `json:"dur_ns"`
	Attrs map[string]any `json:"attrs,omitempty"`
	// Overlay marks a span whose duration was accumulated inside its
	// sibling spans (see AddOverlay); self-time accounting skips it.
	Overlay  bool         `json:"overlay,omitempty"`
	Children []*TraceNode `json:"children,omitempty"`
}

// Tree snapshots the span subtree rooted at s. Call after End; a span
// still running reports the duration observed so far. Nil-safe (returns
// nil).
func (s *Span) Tree() *TraceNode {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	n := &TraceNode{Name: s.name, DurNS: int64(s.dur), Overlay: s.overlay}
	if !s.ended {
		n.DurNS = int64(time.Since(s.start))
	}
	if len(s.attrs) > 0 {
		n.Attrs = make(map[string]any, len(s.attrs))
		for _, a := range s.attrs {
			n.Attrs[a.Key] = a.Value()
		}
	}
	children := make([]*Span, len(s.children))
	copy(children, s.children)
	s.mu.Unlock()
	for _, c := range children {
		n.Children = append(n.Children, c.Tree())
	}
	return n
}

// SelfNS returns the node's self time: its duration minus the summed
// durations of its children, clamped at zero (concurrent children can
// overlap their parent). The whole-tree sum of self times telescopes to
// the root duration when every phase ran sequentially.
func (n *TraceNode) SelfNS() int64 {
	if n == nil {
		return 0
	}
	self := n.DurNS
	for _, c := range n.Children {
		if c.Overlay {
			continue // its time already lives inside the other children
		}
		self -= c.DurNS
	}
	return max(self, 0)
}

// SumSelfNS returns the summed self times over the whole subtree.
// Overlay spans are skipped — counting them would charge their time
// twice (once here, once inside the sibling spans it overlaps).
func (n *TraceNode) SumSelfNS() int64 {
	if n == nil {
		return 0
	}
	if n.Overlay {
		return 0
	}
	total := n.SelfNS()
	for _, c := range n.Children {
		total += c.SumSelfNS()
	}
	return total
}

// Find returns the first node named name in a pre-order walk of the
// subtree, or nil.
func (n *TraceNode) Find(name string) *TraceNode {
	if n == nil {
		return nil
	}
	if n.Name == name {
		return n
	}
	for _, c := range n.Children {
		if m := c.Find(name); m != nil {
			return m
		}
	}
	return nil
}

// Shape renders the subtree's structure — names, nesting, sorted
// attribute keys — with every duration and attribute value excluded,
// for deterministic-structure assertions.
func (n *TraceNode) Shape() string {
	if n == nil {
		return ""
	}
	var b []byte
	n.shape(&b, 0)
	return string(b)
}

func (n *TraceNode) shape(b *[]byte, depth int) {
	for i := 0; i < depth; i++ {
		*b = append(*b, ' ', ' ')
	}
	*b = append(*b, n.Name...)
	if len(n.Attrs) > 0 {
		keys := make([]string, 0, len(n.Attrs))
		for k := range n.Attrs {
			keys = append(keys, k)
		}
		// Insertion sort: the key sets are tiny and this keeps the
		// package dependency-free of sort's reflection paths.
		for i := 1; i < len(keys); i++ {
			for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
				keys[j], keys[j-1] = keys[j-1], keys[j]
			}
		}
		*b = append(*b, '[')
		for i, k := range keys {
			if i > 0 {
				*b = append(*b, ' ')
			}
			*b = append(*b, k...)
		}
		*b = append(*b, ']')
	}
	*b = append(*b, '\n')
	for _, c := range n.Children {
		c.shape(b, depth+1)
	}
}

// max is a local helper (kept explicit: package obs must not grow
// dependencies).
func max(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// roundSeconds converts a seconds value to a duration, rounding to the
// nearest nanosecond. Shared by Snapshot.MeanDuration and callers that
// need the identical conversion.
func roundSeconds(s float64) time.Duration {
	return time.Duration(math.Round(s * float64(time.Second)))
}
