package obs

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.01, 0.05, 0.5, 2, 100} {
		h.Observe(v)
	}
	s := h.Snapshot()
	// Bounds are inclusive upper edges: 0.01 lands in bucket 0.
	want := []uint64{2, 1, 1, 2}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != 6 {
		t.Fatalf("count = %d, want 6", s.Count)
	}
	if math.Abs(s.Sum-102.565) > 1e-9 {
		t.Fatalf("sum = %g, want 102.565", s.Sum)
	}
	cum := s.Cumulative()
	if cum[0] != 2 || cum[1] != 3 || cum[2] != 4 {
		t.Fatalf("cumulative wrong: %v", cum)
	}
}

func TestHistogramMean(t *testing.T) {
	h := NewHistogram(LatencyBounds)
	if h.Snapshot().Mean() != 0 {
		t.Fatal("empty histogram mean must be 0")
	}
	h.ObserveDuration(100 * time.Millisecond)
	h.ObserveDuration(300 * time.Millisecond)
	s := h.Snapshot()
	if math.Abs(s.Mean()-0.2) > 1e-12 {
		t.Fatalf("mean = %g, want 0.2", s.Mean())
	}
	if got := s.MeanDuration(); got != 200*time.Millisecond {
		t.Fatalf("mean duration = %v, want 200ms", got)
	}
}

func TestHistogramNaNDropped(t *testing.T) {
	h := NewHistogram([]float64{1})
	h.Observe(math.NaN())
	if s := h.Snapshot(); s.Count != 0 || s.Sum != 0 {
		t.Fatalf("NaN was recorded: %+v", s)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram(LatencyBounds)
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(0.003)
			}
		}()
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != workers*per {
		t.Fatalf("count = %d, want %d", s.Count, workers*per)
	}
	if math.Abs(s.Sum-0.003*workers*per) > 1e-6 {
		t.Fatalf("sum = %g, want %g", s.Sum, 0.003*workers*per)
	}
}

func TestNewHistogramValidation(t *testing.T) {
	for _, bounds := range [][]float64{nil, {}, {1, 1}, {2, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewHistogram(%v) did not panic", bounds)
				}
			}()
			NewHistogram(bounds)
		}()
	}
}

func TestStockBoundsAscending(t *testing.T) {
	// The stock bound sets must satisfy NewHistogram's contract.
	for name, bounds := range map[string][]float64{
		"LatencyBounds": LatencyBounds,
		"MicroBounds":   MicroBounds,
		"FsyncBounds":   FsyncBounds,
	} {
		h := NewHistogram(bounds)
		if len(h.Snapshot().Counts) != len(bounds)+1 {
			t.Fatalf("%s: wrong bucket count", name)
		}
	}
}
