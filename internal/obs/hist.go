package obs

import (
	"math"
	"sync/atomic"
	"time"
)

// Default bucket boundary sets, all in seconds. These are deliberately
// coarse (≤ 16 buckets) so a histogram is a few hundred bytes and an
// Observe is one linear scan over a cacheline or two.
var (
	// LatencyBounds covers whole-solve and queue-wait latencies:
	// 1 ms … 10 s, roughly ×2.5 steps.
	LatencyBounds = []float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}
	// MicroBounds covers metric point queries: 1 µs … 10 ms.
	MicroBounds = []float64{1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4, 1e-3, 1e-2}
	// FsyncBounds covers WAL append+fsync: 10 µs … 1 s.
	FsyncBounds = []float64{1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 5e-2, 0.1, 1}
)

// Histogram is a bounded, lock-free latency histogram: fixed ascending
// upper bounds plus one overflow bucket, atomic counts, and an atomic
// float64 sum. A nil *Histogram observes nothing, so callers can feed
// an optional histogram unconditionally.
type Histogram struct {
	bounds []float64       // ascending upper bounds (inclusive)
	counts []atomic.Uint64 // len(bounds)+1; last bucket is overflow
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

// NewHistogram builds a histogram over the given ascending upper
// bounds (a copy is taken). Panics on empty or unsorted bounds —
// bucket layouts are compile-time decisions, not runtime input.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("obs: NewHistogram needs at least one bound")
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			panic("obs: NewHistogram bounds must be strictly ascending")
		}
	}
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one value (same unit as the bounds; seconds for the
// stock bound sets). Nil-safe; NaN is dropped.
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		new := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, new) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) {
	h.Observe(d.Seconds())
}

// Snapshot is a point-in-time copy of a histogram. Counts are
// per-bucket (not cumulative) with len(Bounds)+1 entries, the last
// being the overflow bucket. The zero value is a valid empty snapshot.
type Snapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"`
	Count  uint64    `json:"count"`
	Sum    float64   `json:"sum"`
}

// Snapshot copies the histogram's current state. Nil-safe (returns the
// zero Snapshot). Concurrent Observes may straddle the copy; each
// bucket is individually consistent, which is all Prometheus scrapes
// need.
func (h *Histogram) Snapshot() Snapshot {
	if h == nil {
		return Snapshot{}
	}
	s := Snapshot{
		Bounds: h.bounds, // immutable after NewHistogram
		Counts: make([]uint64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    math.Float64frombits(h.sum.Load()),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// Mean returns the mean observed value, or 0 when empty.
func (s Snapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// MeanDuration returns the mean as a duration, assuming the histogram's
// unit is seconds.
func (s Snapshot) MeanDuration() time.Duration {
	return roundSeconds(s.Mean())
}

// Cumulative returns the Prometheus-style cumulative bucket counts: one
// entry per bound (observations ≤ bound); the final +Inf bucket is
// Count itself.
func (s Snapshot) Cumulative() []uint64 {
	cum := make([]uint64, len(s.Bounds))
	var run uint64
	for i := range s.Bounds {
		run += s.Counts[i]
		cum[i] = run
	}
	return cum
}
